// Ablation: host-side batching (bulk PUT, the Dotori / KV-CSD approach of
// Section 1) vs. BandSlim's fine-grained transfer, on a mixgraph-style
// small-value stream. Host batching amortizes command round trips but (a)
// the whole batch sits in volatile host memory until submission — a
// data-loss window the paper calls out — and (b) the device pays per-record
// unpack copies and indexing.
#include <vector>

#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  PrintPlatform("Ablation: host-side batching (bulk PUT) vs BandSlim", base,
                args);

  // Reference points: per-op adaptive and piggyback transfers.
  for (auto method :
       {driver::TransferMethod::kAdaptive, driver::TransferMethod::kPiggyback}) {
    KvSsdOptions o = base;
    o.driver.method = method;
    auto ssd = KvSsd::Open(o).value();
    auto spec = workload::MakeWorkloadM(args.ops);
    auto r = workload::RunPutWorkload(*ssd, spec, driver::MethodName(method));
    std::printf("%-18s | %9.1f us/op | %7.1f Kops/s | %8.3f GB | loss window: 0 ops\n",
                driver::MethodName(method), r.MeanResponseUs(), r.KopsPerSec(),
                ScaledGB(args, r.TrafficPerOpBytes()));
  }

  // Bulk PUT at several batch sizes.
  for (std::size_t batch_size : {1u, 8u, 32u, 128u, 512u}) {
    KvSsdOptions o = base;
    auto ssd = KvSsd::Open(o).value();
    auto spec = workload::MakeWorkloadM(args.ops);
    spec.keys->Reset();
    Xoshiro256 rng(spec.seed);
    const auto start = ssd->clock().Now();
    const KvSsdStats before = ssd->GetStats();
    std::uint64_t sent = 0;
    std::vector<driver::KvDriver::KvPair> batch;
    while (sent < args.ops) {
      batch.clear();
      while (batch.size() < batch_size && sent + batch.size() < args.ops) {
        const std::size_t size = spec.sizes->Next(rng);
        batch.push_back({spec.keys->Next(), Bytes(size, 0xA5)});
      }
      if (!ssd->PutBatch(batch).ok()) {
        std::printf("bulk(%zu): FAILED\n", batch_size);
        return 1;
      }
      sent += batch.size();
    }
    const KvSsdStats delta = workload::StatsDelta(ssd->GetStats(), before);
    const double per_op_us =
        static_cast<double>(ssd->clock().Now() - start) /
        static_cast<double>(args.ops) / 1000.0;
    std::printf("bulk PUT, batch=%-4zu | %9.1f us/op | %7.1f Kops/s | %8.3f GB "
                "| loss window: %zu ops\n",
                batch_size, per_op_us, 1e3 / per_op_us,
                ScaledGB(args, static_cast<double>(delta.pcie_h2d_bytes) /
                                   static_cast<double>(args.ops)),
                batch_size);
  }
  std::printf("\ntake-away: batching matches BandSlim's round-trip savings "
              "only at large batches, which widen the power-failure loss "
              "window; BandSlim gets the traffic cut per op, with none at "
              "risk (Section 1's argument, quantified)\n");
  return 0;
}
