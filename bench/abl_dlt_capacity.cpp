// Ablation: DMA Log Table capacity (Section 3.3.3). The paper caps the DLT
// at the buffer entry count (512) and argues ~4 KiB of SRAM suffices. This
// bench shrinks the DLT under the backfilling policy on W(B) (many DMA
// extents) and W(M), showing when forced evictions start abandoning gaps
// and how much NAND efficiency that costs.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  base.buffer.policy = buffer::PackingPolicy::kSelectiveBackfill;
  PrintPlatform("Ablation: DMA Log Table capacity", base, args);

  std::printf("\n%8s %6s | %14s %16s %14s %12s\n", "DLT", "wl",
              "NAND I/O (K)", "forced evicts", "waste (MB)", "resp (us)");
  for (std::size_t dlt : {4u, 16u, 64u, 256u, 512u}) {
    for (int w = 0; w < 2; ++w) {
      KvSsdOptions o = base;
      o.buffer.dlt_entries = dlt;
      auto ssd = KvSsd::Open(o).value();
      auto spec = w == 0 ? workload::MakeWorkloadB(args.ops)
                         : workload::MakeWorkloadM(args.ops);
      auto r = workload::RunPutWorkload(*ssd, spec, "Backfill");
      const double nand_per_op =
          static_cast<double>(r.delta.nand_pages_programmed) /
          static_cast<double>(r.ops);
      const double waste_per_op =
          static_cast<double>(r.delta.buffer_wasted_bytes) /
          static_cast<double>(r.ops);
      std::printf("%8zu %6s | %14.1f %16llu %14.1f %12.1f\n", dlt,
                  spec.name.c_str(), ScaledMillions(args, nand_per_op) * 1000.0,
                  static_cast<unsigned long long>(r.delta.dlt_forced_evictions),
                  ScaledGB(args, waste_per_op) * 1000.0, r.MeanResponseUs());
    }
  }
  std::printf("\nexpectation: tiny DLTs evict pending extents, wasting gap "
              "space; the paper's 512-entry table is comfortably sized\n");
  return 0;
}
