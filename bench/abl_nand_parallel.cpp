// Ablation: synchronous vs. asynchronous NAND programming. The Cosmos+
// firmware path the paper measures programs pages synchronously, which is
// why buffer-flush frequency dominates write response (Figs 11-12). A
// firmware that dispatches programs to the 4ch x 8way array and returns
// immediately hides most of that cost — this bench quantifies how much of
// BandSlim's packing win depends on the synchronous-flush assumption.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Ablation: NAND program dispatch (sync vs 4ch x 8way async)",
                base, args);

  std::printf("\n%9s %6s | %13s %13s | %13s\n", "policy", "wl", "sync us/op",
              "async us/op", "async speedup");
  for (auto policy : {buffer::PackingPolicy::kBlock, buffer::PackingPolicy::kAll,
                      buffer::PackingPolicy::kSelectiveBackfill}) {
    for (int w = 0; w < 2; ++w) {
      double resp[2];
      for (int mode = 0; mode < 2; ++mode) {
        KvSsdOptions o = base;
        o.buffer.policy = policy;
        o.cost.nand_async_program = (mode == 1);
        auto ssd = KvSsd::Open(o).value();
        auto spec = w == 0 ? workload::MakeWorkloadB(args.ops)
                           : workload::MakeWorkloadM(args.ops);
        resp[mode] =
            workload::RunPutWorkload(*ssd, spec, "x").MeanResponseUs();
      }
      std::printf("%9s %6s | %13.1f %13.1f | %12.2fx\n",
                  buffer::PolicyName(policy), w == 0 ? "W(B)" : "W(M)",
                  resp[0], resp[1], resp[0] / resp[1]);
    }
  }
  std::printf("\ntake-away: async dispatch compresses the Block-vs-packed "
              "response gap (NAND time leaves the critical path), but the "
              "NAND I/O count — endurance and bandwidth — still differs by "
              "the full packing factor, so BandSlim's packing win survives "
              "a smarter flush path\n");
  return 0;
}
