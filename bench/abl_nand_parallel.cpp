// Ablation: synchronous vs. parallel NAND dispatch. The Cosmos+ firmware
// path the paper measures programs pages synchronously, which is why
// buffer-flush frequency dominates write response (Figs 11-12). Parallel
// mode routes the same programs through the channel/way scheduler
// (per-channel and per-die busy timelines, bounded per-die queues) with
// die-striped FTL allocation, so flushes leave the critical path — this
// bench quantifies how much of BandSlim's packing win depends on the
// synchronous-flush assumption.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Ablation: NAND program dispatch (sync vs 4ch x 8way parallel)",
                base, args);

  CsvWriter csv(args);
  csv.Header("policy,workload,sync_us_per_op,parallel_us_per_op,speedup");

  std::printf("\n%9s %6s | %13s %13s | %13s\n", "policy", "wl", "sync us/op",
              "par us/op", "par speedup");
  for (auto policy : {buffer::PackingPolicy::kBlock, buffer::PackingPolicy::kAll,
                      buffer::PackingPolicy::kSelectiveBackfill}) {
    for (int w = 0; w < 2; ++w) {
      const char* wl = w == 0 ? "W(B)" : "W(M)";
      double resp[2];
      for (int mode = 0; mode < 2; ++mode) {
        KvSsdOptions o = base;
        o.buffer.policy = policy;
        o.cost.nand_async_program = (mode == 1);
        o.ftl.stripe_across_dies = (mode == 1);
        auto ssd = KvSsd::Open(o).value();
        auto spec = w == 0 ? workload::MakeWorkloadB(args.ops)
                           : workload::MakeWorkloadM(args.ops);
        resp[mode] =
            workload::RunPutWorkload(*ssd, spec, "x").MeanResponseUs();
      }
      std::printf("%9s %6s | %13.1f %13.1f | %12.2fx\n",
                  buffer::PolicyName(policy), wl, resp[0], resp[1],
                  resp[0] / resp[1]);
      csv.Row("%s,%s,%.3f,%.3f,%.3f", buffer::PolicyName(policy), wl, resp[0],
              resp[1], resp[0] / resp[1]);
    }
  }
  std::printf("\ntake-away: async dispatch compresses the Block-vs-packed "
              "response gap (NAND time leaves the critical path), but the "
              "NAND I/O count — endurance and bandwidth — still differs by "
              "the full packing factor, so BandSlim's packing win survives "
              "a smarter flush path\n");
  return 0;
}
