// Ablation: the paper attributes piggybacking's large-value response
// penalty to its serialized passthrough ("no subsequent commands can be
// sent until the controller signals completion", Section 4.2). This bench
// removes that constraint with pipelined batch submission (one doorbell,
// device-cadence-limited trailing commands) and shows how far the
// piggyback/DMA crossover (threshold1) moves.
#include "bench_util.h"
#include "driver/calibration.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.controller.nand_io_enabled = false;
  PrintPlatform("Ablation: pipelined command submission", base, args);

  CsvWriter csv(args);
  csv.Header("value_bytes,base_us,piggy_sync_us,piggy_pipelined_us");

  std::printf("\n%8s | %12s %14s %14s | %10s\n", "vsize", "Base us",
              "Piggy sync us", "Piggy pipe us", "pipe/base");
  for (std::size_t size : {32u, 128u, 512u, 1024u, 2048u, 4096u}) {
    double resp[3];
    int i = 0;
    for (int mode = 0; mode < 3; ++mode) {
      KvSsdOptions o = base;
      o.driver.method = mode == 0 ? driver::TransferMethod::kPrp
                                  : driver::TransferMethod::kPiggyback;
      o.driver.pipelined_submission = (mode == 2);
      auto ssd = KvSsd::Open(o).value();
      auto spec = workload::MakeWorkloadA(size, args.ops);
      resp[i++] =
          workload::RunPutWorkload(*ssd, spec, "pipe").MeanResponseUs();
    }
    std::printf("%8s | %12.1f %14.1f %14.1f | %10.2f\n", SizeLabel(size),
                resp[0], resp[1], resp[2], resp[2] / resp[0]);
    csv.Row("%zu,%.3f,%.3f,%.3f", size, resp[0], resp[1], resp[2]);
  }

  // Where do the thresholds land with pipelining on?
  KvSsdOptions piped = base;
  piped.controller.nand_io_enabled = true;
  piped.driver.pipelined_submission = true;
  auto thr = driver::CalibrateThresholds(piped);
  KvSsdOptions sync = piped;
  sync.driver.pipelined_submission = false;
  auto thr_sync = driver::CalibrateThresholds(sync);
  if (thr.ok() && thr_sync.ok()) {
    std::printf("\ncalibrated threshold1: serialized %u B -> pipelined %u B\n",
                thr_sync.value().threshold1, thr.value().threshold1);
  }
  std::printf("\ntake-away: with an asynchronous driver, inline transfer "
              "stays competitive far beyond 128 B — the paper's crossover is "
              "a property of the passthrough path, not of piggybacking\n");
  return 0;
}
