// Ablation: NVMe queue-pair scaling. The paper's passthrough path drives
// one submission queue synchronously; this bench shards the same PUT
// sequence across 1..8 queue pairs (workload runner multi-stream mode) and
// crosses that with the NAND dispatch mode. With synchronous NAND the
// device serializes everything and extra queues buy little; with the
// channel/way scheduler + die-striped FTL allocation the modeled throughput
// scales until the shared command-fetch unit or the NAND array saturates.
#include <chrono>

#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Ablation: queue-pair scaling x NAND dispatch (Workload B)",
                base, args);

  CsvWriter csv(args);
  csv.Header("queues,nand,modeled_kops,wall_kops,speedup_vs_sync1");

  std::printf("\n%7s %9s | %13s %13s | %14s\n", "queues", "nand",
              "modeled Kops/s", "wall Kops/s", "vs 1q sync");
  double baseline_kops = 0.0;
  for (int mode = 0; mode < 2; ++mode) {
    const bool parallel = (mode == 1);
    for (std::uint16_t queues : {1, 2, 4, 8}) {
      KvSsdOptions o = base;
      o.num_queues = queues;
      o.cost.nand_async_program = parallel;
      // Geometry-aware dispatch only pays off when programs can actually
      // overlap; the sync path keeps the paper-faithful allocator.
      o.ftl.stripe_across_dies = parallel;
      auto ssd = KvSsd::Open(o).value();
      auto spec = workload::MakeWorkloadB(args.ops);

      const auto wall_start = std::chrono::steady_clock::now();
      const auto r =
          workload::RunShardedPutWorkload(*ssd, spec, queues, "scaling");
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      const double wall_kops =
          wall_s > 0.0 ? static_cast<double>(r.ops) / wall_s / 1000.0 : 0.0;

      if (baseline_kops == 0.0) baseline_kops = r.KopsPerSec();
      const double speedup = r.KopsPerSec() / baseline_kops;
      std::printf("%7u %9s | %13.1f %13.1f | %13.2fx\n", queues,
                  parallel ? "parallel" : "sync", r.KopsPerSec(), wall_kops,
                  speedup);
      csv.Row("%u,%s,%.3f,%.3f,%.3f", queues, parallel ? "parallel" : "sync",
              r.KopsPerSec(), wall_kops, speedup);
    }
  }
  std::printf("\ntake-away: extra queue pairs overlap host round trips and "
              "device KVS work either way, but with synchronous NAND every "
              "flush funnels into one active block's die and scaling bends "
              "over by 8 queues; the channel/way scheduler + die striping "
              "spreads flushes across the 4ch x 8way array and keeps the "
              "scaling near-linear until the shared fetch unit binds\n");
  return 0;
}
