// Ablation: range queries (SEEK/NEXT, the interface of the base KV-SSD
// [22] this work extends). Fine-grained packing improves scans too: with
// Block packing every small value occupies its own 4 KiB slot, so a scan
// touches 64x more NAND pages than with byte-dense packing.
#include "bench_util.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/20000);
  KvSsdOptions base = DefaultBenchOptions();
  base.retain_payloads = false;
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Ablation: range scans under packing policies", base, args);

  std::printf("\nscan of all records, 64 B values, sequential keys:\n");
  std::printf("%9s | %14s %16s %14s\n", "policy", "us/record",
              "NAND rd/record", "records/s (K)");
  for (auto policy : {buffer::PackingPolicy::kBlock, buffer::PackingPolicy::kAll,
                      buffer::PackingPolicy::kSelectiveBackfill}) {
    KvSsdOptions o = base;
    o.buffer.policy = policy;
    auto ssd = KvSsd::Open(o).value();
    Bytes value(64, 0x3C);
    for (std::uint64_t i = 0; i < args.ops; ++i) {
      char key[12];
      std::snprintf(key, sizeof key, "%010llu",
                    static_cast<unsigned long long>(i));
      if (!ssd->Put(key, ByteSpan(value)).ok()) return 1;
    }
    if (!ssd->Flush().ok()) return 1;

    const KvSsdStats before = ssd->GetStats();
    const auto t0 = ssd->clock().Now();
    auto iter = ssd->Seek("");
    if (!iter.ok()) return 1;
    std::uint64_t scanned = 0;
    for (auto& it = iter.value(); it.Valid(); ++scanned) {
      if (!it.Next().ok()) return 1;
    }
    const auto dt = ssd->clock().Now() - t0;
    const KvSsdStats after = ssd->GetStats();
    if (scanned != args.ops) {
      std::printf("scan mismatch: %llu\n",
                  static_cast<unsigned long long>(scanned));
      return 1;
    }
    const double per = static_cast<double>(scanned);
    std::printf("%9s | %14.2f %16.3f %14.1f\n", buffer::PolicyName(policy),
                static_cast<double>(dt) / per / 1000.0,
                static_cast<double>(after.nand_pages_read -
                                    before.nand_pages_read) / per,
                per / (static_cast<double>(dt) / 1e9) / 1000.0);
  }
  std::printf("\nexpectation: dense packing cuts NAND reads per scanned "
              "record by up to the slot/value ratio (4096/64 = 64x here); "
              "scans use the batched NEXT command (one NVMe round trip per "
              "~32 KiB of records, after [22])\n");
  return 0;
}
