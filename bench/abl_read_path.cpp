// Ablation: the GET path. The paper evaluates the write path; this bench
// characterizes read-side behaviour of the same stack: device-to-host PCIe
// traffic per GET (page-unit PRP reads amplify small values too) and NAND
// reads per GET under fine-grained (byte) vs block (4 KiB slot) value
// addressing — fine-grained packing can make a value straddle NAND pages.
#include "bench_util.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/4000);
  KvSsdOptions base = DefaultBenchOptions();
  base.retain_payloads = false;
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Ablation: GET path amplification", base, args);

  std::printf("\n%8s %9s | %14s %14s %12s %14s\n", "vsize", "policy",
              "d2h B/get", "NAND rd/get", "resp (us)", "dataset pages");
  for (std::size_t size : {32u, 512u, 3000u, 8192u}) {
    for (auto policy :
         {buffer::PackingPolicy::kBlock, buffer::PackingPolicy::kAll}) {
      KvSsdOptions o = base;
      o.buffer.policy = policy;
      auto ssd = KvSsd::Open(o).value();
      Bytes value(size, 0x5A);
      for (std::uint64_t i = 0; i < args.ops; ++i) {
        std::string key = "k" + std::to_string(i);
        if (!ssd->Put(key, ByteSpan(value)).ok()) return 1;
      }
      if (!ssd->Flush().ok()) return 1;  // Push everything to NAND.
      const KvSsdStats before = ssd->GetStats();
      const auto t0 = ssd->clock().Now();
      for (std::uint64_t i = 0; i < args.ops; ++i) {
        std::string key = "k" + std::to_string(i);
        if (!ssd->Get(key).ok()) return 1;
      }
      const auto dt = ssd->clock().Now() - t0;
      const KvSsdStats after = ssd->GetStats();
      const double ops = static_cast<double>(args.ops);
      std::printf("%8s %9s | %14.1f %14.2f %12.1f %14llu\n", SizeLabel(size),
                  buffer::PolicyName(policy),
                  static_cast<double>(after.pcie_d2h_bytes -
                                      before.pcie_d2h_bytes) / ops,
                  static_cast<double>(after.nand_pages_read -
                                      before.nand_pages_read) / ops,
                  static_cast<double>(dt) / ops / 1000.0,
                  static_cast<unsigned long long>(before.vlog_pages_flushed));
    }
  }
  std::printf("\nexpectation: d2h traffic rounds up to 4 KiB pages (read-side "
              "Problem #1); dense packing adds occasional extra NAND reads "
              "for straddling values but far fewer total pages hold the "
              "same data set\n");
  return 0;
}
