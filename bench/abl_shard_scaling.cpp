// Ablation: shard scaling of the KvCluster router (extension beyond the
// paper — the scale-out serving layer from the roadmap). A fixed mixed
// GET/PUT workload over a preloaded key space is run against clusters of
// 1/2/4/8 shards under uniform and Zipfian key popularity; every shard is
// an independent simulated KV-SSD, so throughput should scale near-linearly
// until key skew concentrates the load.
//
// Two built-in gates (exit nonzero on violation, used by ci/verify.sh):
//   1. A 1-shard cluster run is bit-identical in virtual time and device
//      counters to the same ops on a bare KvSsd — the router adds zero
//      simulated overhead when there is nothing to route.
//   2. Under uniform keys, 4 shards sustain >= 3x the 1-shard mixed
//      throughput.
#include "bench_util.h"
#include "cluster/kv_cluster.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

workload::MixedWorkloadSpec MakeSpec(std::uint64_t ops, bool zipfian) {
  workload::MixedWorkloadSpec spec;
  spec.name = zipfian ? "mixed-zipf" : "mixed-uniform";
  spec.ops = ops;
  spec.num_keys = 4096;
  spec.value_size = 128;
  spec.get_permille = 500;
  spec.zipfian = zipfian;
  spec.seed = 17;
  return spec;
}

cluster::ClusterConfig MakeCluster(const KvSsdOptions& shard,
                                   std::uint32_t num_shards) {
  cluster::ClusterConfig cc;
  cc.num_shards = num_shards;
  cc.shard = shard;
  return cc;
}

// Gate 1: the N=1 sanity anchor. Returns false (and prints) on mismatch.
bool CheckSingleShardAnchor(const KvSsdOptions& shard_options,
                            const workload::MixedWorkloadSpec& spec) {
  auto bare = KvSsd::Open(shard_options).value();
  if (!workload::PreloadMixedKeys(*bare, spec).ok()) return false;
  const workload::RunResult device =
      workload::RunMixedWorkload(*bare, spec, "bare");

  auto fleet = cluster::KvCluster::Open(MakeCluster(shard_options, 1)).value();
  if (!workload::PreloadMixedKeys(*fleet, spec).ok()) return false;
  const workload::RunResult routed =
      workload::RunClusterMixedWorkload(*fleet, spec, "n1");

  const bool same =
      device.elapsed_ns == routed.elapsed_ns &&
      bare->Now() == fleet->Now() &&
      device.delta.commands_submitted == routed.delta.commands_submitted &&
      device.delta.pcie_h2d_bytes == routed.delta.pcie_h2d_bytes &&
      device.delta.pcie_d2h_bytes == routed.delta.pcie_d2h_bytes &&
      device.delta.nand_pages_programmed ==
          routed.delta.nand_pages_programmed &&
      device.delta.nand_pages_read == routed.delta.nand_pages_read &&
      device.delta.values_written == routed.delta.values_written;
  if (!same) {
    std::fprintf(stderr,
                 "GATE FAILED: 1-shard cluster diverged from bare device "
                 "(elapsed %llu vs %llu ns, now %llu vs %llu ns)\n",
                 static_cast<unsigned long long>(device.elapsed_ns),
                 static_cast<unsigned long long>(routed.elapsed_ns),
                 static_cast<unsigned long long>(bare->Now()),
                 static_cast<unsigned long long>(fleet->Now()));
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/6000);
  KvSsdOptions shard = DefaultBenchOptions();
  shard.retain_payloads = true;  // The mix reads values back.
  PrintPlatform("Ablation: cluster shard scaling", shard, args);
  CsvWriter csv(args);
  csv.Header("distribution,shards,ops,elapsed_ns,kops_per_sec,speedup");

  if (!CheckSingleShardAnchor(shard, MakeSpec(args.ops, false))) return 1;
  std::printf("\nsanity: 1-shard cluster == bare KvSsd (bit-identical "
              "virtual times)\n");

  double uniform_speedup_n4 = 0.0;
  for (const bool zipfian : {false, true}) {
    const workload::MixedWorkloadSpec spec = MakeSpec(args.ops, zipfian);
    std::printf("\n%s keys: %llu ops (50%% GET / 50%% PUT), %zu B values, "
                "%llu-key space\n",
                zipfian ? "zipfian(0.99)" : "uniform",
                static_cast<unsigned long long>(spec.ops), spec.value_size,
                static_cast<unsigned long long>(spec.num_keys));
    std::printf("%8s | %12s %12s %10s\n", "shards", "elapsed ms", "Kops/s",
                "speedup");
    double base_kops = 0.0;
    for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
      auto fleet = cluster::KvCluster::Open(MakeCluster(shard, n)).value();
      if (!workload::PreloadMixedKeys(*fleet, spec).ok()) return 1;
      const workload::RunResult r =
          workload::RunClusterMixedWorkload(*fleet, spec, "n" +
                                            std::to_string(n));
      if (r.workload.find("FAILED") != std::string::npos) {
        std::fprintf(stderr, "run failed: %s\n", r.workload.c_str());
        return 1;
      }
      const double kops = r.KopsPerSec();
      if (n == 1) base_kops = kops;
      const double speedup = base_kops > 0.0 ? kops / base_kops : 0.0;
      if (!zipfian && n == 4) uniform_speedup_n4 = speedup;
      std::printf("%8u | %12.2f %12.1f %9.2fx\n", n,
                  static_cast<double>(r.elapsed_ns) / 1e6, kops, speedup);
      csv.Row("%s,%u,%llu,%llu,%.1f,%.3f", zipfian ? "zipfian" : "uniform", n,
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.elapsed_ns), kops, speedup);
    }
  }

  std::printf("\nexpectation: uniform keys scale near-linearly (independent "
              "devices); zipfian skew concentrates the hot keys on fewer "
              "shards and caps the speedup\n");
  if (uniform_speedup_n4 < 3.0) {
    std::fprintf(stderr,
                 "GATE FAILED: uniform 4-shard speedup %.2fx < 3.0x\n",
                 uniform_speedup_n4);
    return 1;
  }
  return 0;
}
