// Ablation: the Figure 1 comparison, quantified. The same small-value PUT
// stream runs against (a) a host-side WiscKey-style KVS on a block SSD
// through a modeled kernel path (syscalls + FS/block layers + 4 KiB-block
// I/O), durable per PUT, (b) its page-cache-buffered variant (volatile
// window), (c) the baseline NVMe KV-SSD, and (d) the full BandSlim KV-SSD.
#include "bench_util.h"
#include "blockdev/block_ssd.h"
#include "hostkvs/host_kvs.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

struct Row {
  const char* name;
  double us_per_op;
  double pcie_gb;
  double nand_k;
  const char* durability;
};

Row RunHostKvs(const char* name, bool fsync_each, const BenchArgs& args) {
  sim::VirtualClock clock;
  sim::CostModel cost;
  pcie::PcieLink link;
  stats::MetricsRegistry metrics;
  nand::NandGeometry geometry = DefaultBenchOptions().geometry;
  blockdev::BlockSsdConfig ssd_config;
  ssd_config.retain_payloads = false;
  blockdev::BlockSsd ssd(geometry, &clock, &cost, &link, &metrics, ssd_config);
  hostkvs::HostKvs kvs(&ssd, &clock, &cost, &metrics,
                       hostkvs::HostKvsConfig{.fsync_each_put = fsync_each});

  auto spec = workload::MakeWorkloadM(args.ops);
  Xoshiro256 rng(spec.seed);
  Bytes value(spec.sizes->MaxSize(), 0xA5);
  const auto t0 = clock.Now();
  for (std::uint64_t i = 0; i < args.ops; ++i) {
    const std::string key = spec.keys->Next();
    const std::size_t size = spec.sizes->Next(rng);
    if (!kvs.Put(key, ByteSpan(value).subspan(0, size)).ok()) break;
  }
  const double ops = static_cast<double>(args.ops);
  return Row{name,
             static_cast<double>(clock.Now() - t0) / ops / 1000.0,
             ScaledGB(args, static_cast<double>(link.HostToDeviceBytes()) / ops),
             ScaledMillions(args, static_cast<double>(ssd.nand().pages_programmed()) / ops) * 1000.0,
             fsync_each ? "per-PUT" : "volatile window"};
}

Row RunKvSsd(const char* name, driver::TransferMethod method,
             buffer::PackingPolicy policy, const BenchArgs& args) {
  KvSsdOptions o = DefaultBenchOptions();
  o.driver.method = method;
  o.buffer.policy = policy;
  auto ssd = KvSsd::Open(o).value();
  auto spec = workload::MakeWorkloadM(args.ops);
  auto r = workload::RunPutWorkload(*ssd, spec, name);
  const double ops = static_cast<double>(args.ops);
  return Row{name, r.MeanResponseUs(),
             ScaledGB(args, r.TrafficPerOpBytes()),
             ScaledMillions(args,
                            static_cast<double>(r.delta.nand_pages_programmed) / ops) * 1000.0,
             "per-PUT"};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  PrintPlatform("Ablation: storage-stack comparison (Figure 1, quantified)",
                DefaultBenchOptions(), args);
  std::printf("\nworkload: W(M) (mixgraph-style small values)\n\n");
  std::printf("%-28s | %10s %12s %14s | %s\n", "stack", "us/op", "PCIe (GB)",
              "NAND I/O (K)", "durability");

  const Row rows[] = {
      RunHostKvs("host KVS (fsync/PUT)", true, args),
      RunHostKvs("host KVS (page cache)", false, args),
      RunKvSsd("KV-SSD baseline", driver::TransferMethod::kPrp,
               buffer::PackingPolicy::kBlock, args),
      RunKvSsd("KV-SSD + BandSlim", driver::TransferMethod::kAdaptive,
               buffer::PackingPolicy::kSelectiveBackfill, args),
  };
  for (const Row& r : rows) {
    std::printf("%-28s | %10.1f %12.3f %14.1f | %s\n", r.name, r.us_per_op,
                r.pcie_gb, r.nand_k, r.durability);
  }
  std::printf(
      "\ntake-away: the durable host stack moves ~4 GB over PCIe for ~36 MB\n"
      "of payload — the same block-unit amplification as the baseline KV-SSD\n"
      "— while BandSlim moves 30x less with equal durability. (Latencies are\n"
      "not directly comparable: this host KVS keeps its whole index in host\n"
      "RAM and runs no compaction, flattering the host rows; the kernel-path\n"
      "cost it does pay is the Figure 1 overhead the KV-SSD removes.)\n");
  return 0;
}
