// Ablation: the adaptive-transfer coefficients alpha and beta (Section 3.2).
// alpha scales threshold1 (piggyback/DMA crossover), beta scales threshold2
// (hybrid remainder). Larger coefficients trade response time for PCIe
// traffic — this bench quantifies that trade on W(D) and W(M), and prints
// the thresholds the calibration benchmark derives.
#include "bench_util.h"
#include "driver/calibration.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  base.controller.nand_io_enabled = false;
  PrintPlatform("Ablation: adaptive transfer thresholds (alpha/beta sweep)",
                base, args);

  auto thresholds = driver::CalibrateThresholds(base);
  if (thresholds.ok()) {
    std::printf("\ncalibration benchmark (Sec 4.1): threshold1 = %u B, "
                "threshold2 = %u B (paper: 128 / 56)\n",
                thresholds.value().threshold1, thresholds.value().threshold2);
  }

  std::printf("\n%7s %7s %14s | %12s %12s %14s\n", "alpha", "beta", "wl",
              "resp (us)", "Kops/s", "PCIe (GB)");
  for (double alpha : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (double beta : {1.0, 8.0}) {
      // W(D)/W(M) exercise alpha (sub-4K values); the fillseq run at
      // 4 KiB + 256 B exercises beta (sub-page remainder handling).
      for (int w = 0; w < 3; ++w) {
        KvSsdOptions o = base;
        o.driver.alpha = alpha;
        o.driver.beta = beta;
        auto ssd = KvSsd::Open(o).value();
        auto spec = w == 0   ? workload::MakeWorkloadD(args.ops)
                    : w == 1 ? workload::MakeWorkloadM(args.ops)
                             : workload::MakeWorkloadA(4096 + 256, args.ops);
        auto r = workload::RunPutWorkload(*ssd, spec, "Adaptive");
        std::printf("%7.1f %7.1f %14s | %12.1f %12.1f %14.3f\n", alpha, beta,
                    spec.name.c_str(), r.MeanResponseUs(), r.KopsPerSec(),
                    ScaledGB(args, r.TrafficPerOpBytes()));
      }
    }
  }
  std::printf("\nexpectation: alpha/beta = 1 minimizes response; larger "
              "coefficients shed PCIe traffic at a response-time cost "
              "(Section 3.2's user preference knob)\n");
  return 0;
}
