// Ablation: vLog garbage collection (log cleaning), an extension beyond the
// paper. An overwrite-heavy workload leaves most of the log dead; cleaning
// reclaims it by relocating live values. Compares oldest-first cleaning
// (scan window = 1) against cost-benefit victim selection (scan window = 8).
#include "bench_util.h"
#include "workload/key_gen.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/40000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  base.buffer.policy = buffer::PackingPolicy::kSelectiveBackfill;
  base.controller.gc_segment_pages = 64;
  PrintPlatform("Ablation: vLog garbage collection", base, args);

  std::printf("\noverwrite workload: %llu PUTs over 2000 keys (~%.0fx updates "
              "per key), 512 B values\n",
              static_cast<unsigned long long>(args.ops),
              static_cast<double>(args.ops) / 2000.0);
  std::printf("%14s | %12s %14s %14s %12s\n", "gc policy", "gc runs",
              "relocated", "pages freed", "gc ms");
  for (std::uint64_t scan : {1u, 8u}) {
    KvSsdOptions o = base;
    o.controller.gc_scan_segments = scan;
    auto ssd = KvSsd::Open(o).value();
    workload::ZipfianKeyChooser zipf(2000, 0.99, 7);
    Bytes value(512, 0x42);
    for (std::uint64_t i = 0; i < args.ops; ++i) {
      const std::string key = "k" + std::to_string(zipf.NextIndex());
      if (!ssd->Put(key, ByteSpan(value)).ok()) return 1;
    }
    if (!ssd->Flush().ok()) return 1;

    const std::uint64_t mapped_before = ssd->InspectDevice().ftl_mapped_pages;
    const auto t0 = ssd->clock().Now();
    std::uint64_t relocated = 0;
    std::uint64_t runs = 0;
    for (int round = 0; round < 24; ++round) {
      auto r = ssd->CollectVlogGarbage();
      if (!r.ok()) return 1;
      relocated += r.value();
      ++runs;
    }
    if (!ssd->Flush().ok()) return 1;
    const std::uint64_t mapped_after = ssd->InspectDevice().ftl_mapped_pages;
    std::printf("%14s | %12llu %14llu %14lld %12.2f\n",
                scan == 1 ? "oldest-first" : "cost-benefit",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(relocated),
                static_cast<long long>(mapped_before) -
                    static_cast<long long>(mapped_after),
                static_cast<double>(ssd->clock().Now() - t0) / 1e6);
  }
  std::printf("\nexpectation: cost-benefit cleaning relocates fewer live "
              "values per freed page (it picks the deadest segments first)\n");
  return 0;
}
