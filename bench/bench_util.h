// Shared helpers for the figure-reproduction harnesses.
//
// Scaling: the paper issues 1 M PUTs per point (10 M for Figure 11). The
// harnesses default to fewer simulated ops so the whole suite finishes in
// minutes on one core, then report totals scaled to the paper's op count
// (per-op traffic and NAND-pages are independent of run length; the scale
// factor is printed). Use --ops=N to change the per-point op count.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/kvssd.h"
#include "workload/runner.h"

namespace bandslim::bench {

struct BenchArgs {
  std::uint64_t ops = 0;           // 0 = use the bench's default.
  std::uint64_t paper_ops = 1000000;  // What the paper ran per point.
  std::string csv_path;            // --csv=FILE: machine-readable series.
};

inline BenchArgs ParseArgs(int argc, char** argv, std::uint64_t default_ops) {
  BenchArgs args;
  args.ops = default_ops;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      args.ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      args.csv_path = argv[i] + 6;
    }
  }
  return args;
}

// Optional CSV sink for plotting: one header + data rows, written only when
// --csv=FILE was passed.
class CsvWriter {
 public:
  explicit CsvWriter(const BenchArgs& args) {
    if (!args.csv_path.empty()) {
      file_ = std::fopen(args.csv_path.c_str(), "w");
      if (file_ == nullptr) {
        std::fprintf(stderr, "warning: --csv: cannot open %s for writing\n",
                     args.csv_path.c_str());
      }
    }
  }
  ~CsvWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void Header(const char* columns) {
    if (file_ != nullptr) std::fprintf(file_, "%s\n", columns);
  }
  template <typename... Args>
  void Row(const char* fmt, Args... args) {
    if (file_ != nullptr) {
      std::fprintf(file_, fmt, args...);
      std::fprintf(file_, "\n");
    }
  }

 private:
  std::FILE* file_ = nullptr;
};

// Tables 1 & 2 analog: what this simulated platform looks like.
inline void PrintPlatform(const char* bench_name, const KvSsdOptions& o,
                          const BenchArgs& args) {
  const auto& g = o.geometry;
  std::printf("================================================================\n");
  std::printf("%s  (BandSlim reproduction, simulated Cosmos+ OpenSSD)\n", bench_name);
  std::printf("  NAND    : %u ch x %u way, %.1f GiB, %zu B pages\n", g.channels,
              g.ways, static_cast<double>(g.capacity_bytes()) / (1ull << 30),
              g.page_size);
  std::printf("  costs   : cmd RT %.1f us, DMA/page %.1f us, NAND prog %.0f us, "
              "memcpy %.0f ns/B\n",
              o.cost.cmd_round_trip_ns / 1e3, o.cost.dma_page_ns / 1e3,
              o.cost.nand_program_ns / 1e3,
              static_cast<double>(o.cost.memcpy_ns_per_byte));
  std::printf("  ops     : %llu per point (totals scaled to the paper's %llu)\n",
              static_cast<unsigned long long>(args.ops),
              static_cast<unsigned long long>(args.paper_ops));
  std::printf("================================================================\n");
}

inline double ScaledGB(const BenchArgs& args, double bytes_per_op) {
  return bytes_per_op * static_cast<double>(args.paper_ops) / 1e9;
}

inline double ScaledMillions(const BenchArgs& args, double count_per_op) {
  return count_per_op * static_cast<double>(args.paper_ops) / 1e6;
}

inline KvSsdOptions DefaultBenchOptions() {
  KvSsdOptions o;
  // 64 GiB geometry in the testbed's 4ch x 8way shape: large enough for the
  // scaled runs, small enough to keep FTL metadata light.
  o.geometry.channels = 4;
  o.geometry.ways = 8;
  o.geometry.blocks_per_die = 512;
  o.geometry.pages_per_block = 256;
  o.retain_payloads = false;  // Write benches never read values back.
  return o;
}

inline const char* SizeLabel(std::size_t bytes) {
  static char buf[32];
  if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes / 1024);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  }
  return buf;
}

}  // namespace bandslim::bench
