// Fault campaign: PUT throughput under injected NAND program failures.
// Sweeps the per-program failure probability (perfect media, 0.1 %, 1 %) and
// reports sustained throughput plus every fault-handling counter — failures
// absorbed, blocks remapped from the reserve, host-level retries, ECC
// corrections. The run is deterministic for a given seed: re-running a rate
// point reproduces the identical fault trace and the identical clock.
//
//   fault_campaign [--ops=N] [--csv=FILE] [--seed=S]
#include <cinttypes>

#include "bench_util.h"
#include "workload/value_gen.h"

namespace bandslim {
namespace {

struct RatePoint {
  const char* label;
  double program_fail_rate;
};

constexpr RatePoint kRates[] = {
    {"0%", 0.0},
    {"0.1%", 0.001},
    {"1%", 0.01},
};

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv, /*default_ops=*/20000);
  std::uint64_t seed = 0xFA017;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  KvSsdOptions base = bench::DefaultBenchOptions();
  base.ftl.reserved_blocks = 64;
  bench::PrintPlatform("fault_campaign", base, args);

  bench::CsvWriter csv(args);
  csv.Header(
      "rate,kops_per_s,elapsed_ms,program_failures,bad_block_remaps,"
      "nvme_retries,ecc_corrections,reserve_remaining");

  std::printf("%-6s %12s %12s %10s %8s %8s %8s %9s\n", "rate", "kops/s",
              "elapsed_ms", "prog_fail", "remaps", "retries", "ecc",
              "reserve");
  for (const RatePoint& point : kRates) {
    KvSsdOptions o = base;
    o.fault.seed = seed;
    o.fault.program_fail_rate = point.program_fail_rate;
    // A light read-disturb load keeps the ECC column meaningful without
    // dominating the write path.
    o.fault.read_correctable_rate =
        point.program_fail_rate > 0.0 ? 0.0005 : 0.0;
    auto ssd = KvSsd::Open(o).value();

    const Bytes value = workload::MakeValue(1024, seed, /*tag=*/1);
    std::uint64_t failed_puts = 0;
    for (std::uint64_t i = 0; i < args.ops; ++i) {
      const std::string key = "k" + std::to_string(i);
      if (!ssd->Put(key, ByteSpan(value)).ok()) ++failed_puts;
      // Periodic checkpoints, as a real ingest loop would issue.
      if (i % 4096 == 4095 && !ssd->Flush().ok()) ++failed_puts;
    }

    const KvSsdStats s = ssd->GetStats();
    const double secs = static_cast<double>(s.elapsed_ns) / 1e9;
    const double kops = static_cast<double>(args.ops - failed_puts) / secs / 1e3;
    std::printf("%-6s %12.1f %12.2f %10" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %9" PRIu64 "\n",
                point.label, kops, secs * 1e3, s.nand_program_failures,
                s.bad_block_remaps, s.nvme_retries, s.ecc_corrections,
                ssd->Inspect().ftl_reserve_blocks);
    if (failed_puts != 0) {
      std::printf("       (%" PRIu64 " of %" PRIu64 " PUTs failed)\n",
                  failed_puts, args.ops);
    }
    csv.Row("%s,%.1f,%.2f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64,
            point.label, kops, secs * 1e3, s.nand_program_failures,
            s.bad_block_remaps, s.nvme_retries, s.ecc_corrections,
            ssd->Inspect().ftl_reserve_blocks);
  }
  return 0;
}

}  // namespace
}  // namespace bandslim

int main(int argc, char** argv) { return bandslim::Run(argc, argv); }
