// Fault campaign: PUT throughput under injected NAND program failures.
// Sweeps the per-program failure probability (perfect media, 0.1 %, 1 %) and
// reports sustained throughput plus every fault-handling counter — failures
// absorbed, blocks remapped from the reserve, host-level retries, ECC
// corrections. The run is deterministic for a given seed: re-running a rate
// point reproduces the identical fault trace and the identical clock.
//
//   fault_campaign [--ops=N] [--csv=FILE] [--seed=S]
#include <cinttypes>

#include "bench_util.h"
#include "workload/value_gen.h"

namespace bandslim {
namespace {

struct RatePoint {
  const char* label;
  double program_fail_rate;
};

constexpr RatePoint kRates[] = {
    {"0%", 0.0},
    {"0.1%", 0.001},
    {"1%", 0.01},
};

// --- closed-loop GC headroom demo (--control) ------------------------------
// A deliberately tiny die (48 blocks) under an overwrite-heavy 1 % program-
// failure storm: every PUT rewrites one of 64 hot keys, so the FTL lives off
// garbage collection while failed programs burn blocks. Uncontrolled, the
// free pool rides the stop-the-world gc_low_watermark and the free-blocks-low
// rule fires; with the GC-pacing knob the controller collects a budgeted
// step per tick above the watermark, holding headroom without kOutOfSpace.

struct HeadroomRun {
  std::uint64_t min_free = ~0ULL;
  std::uint64_t out_of_space = 0;
  std::uint64_t other_failures = 0;
  std::uint64_t free_low_fires = 0;
  std::uint64_t gc_actuations = 0;
  std::uint64_t reserve_remaining = 0;
};

HeadroomRun RunHeadroom(std::uint64_t ops, std::uint64_t seed,
                        bool controlled) {
  KvSsdOptions o;
  o.geometry.channels = 1;
  o.geometry.ways = 1;
  o.geometry.blocks_per_die = 48;
  o.geometry.pages_per_block = 32;
  o.ftl.reserved_blocks = 8;
  o.retain_payloads = false;
  o.fault.seed = seed;
  o.fault.program_fail_rate = 0.01;
  o.telemetry.enabled = true;
  o.telemetry.sample_interval_ns = 50 * sim::kMicrosecond;
  // This workload's uncontrolled floor is 7 free blocks (the stop-the-world
  // watermark of 4 never even engages) — the rule marks the headroom the
  // controller must defend. GC here is victim-limited: invalid pages only
  // appear as compaction trims land, so pacing buys one block of floor.
  o.telemetry.rules.push_back(
      telemetry::FreeBlocksLowRule(/*blocks=*/7, /*n=*/1));
  if (controlled) {
    o.control.enabled = true;
    o.control.gc.enabled = true;
    o.control.gc.soft_watermark = 12;   // Pace well above the alert line.
    o.control.gc.escalate_watermark = 10;
    o.control.gc.escalated_steps = 4;
    o.control.gc.target_free = 14;
  }
  auto ssd = KvSsd::Open(o).value();

  const Bytes value = workload::MakeValue(1024, seed, /*tag=*/2);
  HeadroomRun run;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const Status st = ssd->Put("hot" + std::to_string(i % 64), ByteSpan(value));
    if (!st.ok()) {
      if (st.code() == StatusCode::kOutOfSpace) {
        ++run.out_of_space;
      } else {
        ++run.other_failures;
      }
    }
    // Log cleaning + checkpoint, as any real ingest loop schedules them: the
    // trims only land at checkpoint, and only then does FTL-level GC have
    // victims. Identical in both runs — the knob under test is *when* the
    // freed blocks are collected, not the cleaning.
    if (i % 256 == 255) {
      (void)ssd->CollectVlogGarbage();
      (void)ssd->Flush();
    }
  }
  ssd->Hooks().sampler->Finalize();

  const telemetry::Sampler& t = ssd->telemetry();
  const std::int64_t id = t.series().Find("gauge.ftl.free_blocks");
  for (const telemetry::Sample& s : t.samples()) {
    if (id >= 0) {
      run.min_free =
          std::min(run.min_free, s.Value(static_cast<std::uint32_t>(id)));
    }
  }
  for (const auto& alert : ssd->InspectDevice().alerts) {
    if (alert.rule == "free_blocks_low") run.free_low_fires = alert.fired;
  }
  if (ssd->control() != nullptr) {
    for (const auto& rec : ssd->control()->actuations()) {
      if (rec.rule == control::ControlRule::kGcStep) ++run.gc_actuations;
    }
  }
  run.reserve_remaining = ssd->InspectDevice().ftl_reserve_blocks;
  return run;
}

int RunControlHeadroom(std::uint64_t ops, std::uint64_t seed) {
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what, std::uint64_t got) {
    if (ok) {
      std::printf("CHECK ok: %-48s %" PRIu64 "\n", what, got);
    } else {
      std::fprintf(stderr, "CHECK FAILED: %s (got %" PRIu64 ")\n", what, got);
      ++failures;
    }
  };
  std::printf("\n--- control headroom: 1%% program failures, 48-block die "
              "---\n");
  const HeadroomRun unc = RunHeadroom(ops, seed, /*controlled=*/false);
  const HeadroomRun ctl = RunHeadroom(ops, seed, /*controlled=*/true);
  std::printf("%-14s %10s %12s %10s %10s %9s\n", "run", "min_free",
              "out_of_space", "free_low", "gc_steps", "reserve");
  std::printf("%-14s %10" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %9" PRIu64 "\n",
              "uncontrolled", unc.min_free, unc.out_of_space,
              unc.free_low_fires, unc.gc_actuations, unc.reserve_remaining);
  std::printf("%-14s %10" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %9" PRIu64 "\n",
              "controlled", ctl.min_free, ctl.out_of_space,
              ctl.free_low_fires, ctl.gc_actuations, ctl.reserve_remaining);

  check(unc.free_low_fires >= 1, "uncontrolled run hits 7-block alert line",
        unc.free_low_fires);
  check(ctl.out_of_space == 0, "controlled run never sees kOutOfSpace",
        ctl.out_of_space);
  check(ctl.other_failures == 0, "controlled run PUTs all succeed",
        ctl.other_failures);
  check(ctl.free_low_fires == 0, "controlled run never fires free-blocks-low",
        ctl.free_low_fires);
  check(ctl.min_free > unc.min_free, "controlled min free above uncontrolled",
        ctl.min_free);
  check(ctl.gc_actuations >= 1, "GC pacing actuated at least once",
        ctl.gc_actuations);
  return failures;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv, /*default_ops=*/20000);
  std::uint64_t seed = 0xFA017;
  bool control_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--control") == 0) {
      control_mode = true;
    }
  }

  KvSsdOptions base = bench::DefaultBenchOptions();
  base.ftl.reserved_blocks = 64;
  bench::PrintPlatform("fault_campaign", base, args);

  bench::CsvWriter csv(args);
  csv.Header(
      "rate,kops_per_s,elapsed_ms,program_failures,bad_block_remaps,"
      "nvme_retries,ecc_corrections,reserve_remaining");

  std::printf("%-6s %12s %12s %10s %8s %8s %8s %9s\n", "rate", "kops/s",
              "elapsed_ms", "prog_fail", "remaps", "retries", "ecc",
              "reserve");
  for (const RatePoint& point : kRates) {
    KvSsdOptions o = base;
    o.fault.seed = seed;
    o.fault.program_fail_rate = point.program_fail_rate;
    // A light read-disturb load keeps the ECC column meaningful without
    // dominating the write path.
    o.fault.read_correctable_rate =
        point.program_fail_rate > 0.0 ? 0.0005 : 0.0;
    auto ssd = KvSsd::Open(o).value();

    const Bytes value = workload::MakeValue(1024, seed, /*tag=*/1);
    std::uint64_t failed_puts = 0;
    for (std::uint64_t i = 0; i < args.ops; ++i) {
      const std::string key = "k" + std::to_string(i);
      if (!ssd->Put(key, ByteSpan(value)).ok()) ++failed_puts;
      // Periodic checkpoints, as a real ingest loop would issue.
      if (i % 4096 == 4095 && !ssd->Flush().ok()) ++failed_puts;
    }

    const KvSsdStats s = ssd->GetStats();
    const double secs = static_cast<double>(s.elapsed_ns) / 1e9;
    const double kops = static_cast<double>(args.ops - failed_puts) / secs / 1e3;
    std::printf("%-6s %12.1f %12.2f %10" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %9" PRIu64 "\n",
                point.label, kops, secs * 1e3, s.nand_program_failures,
                s.bad_block_remaps, s.nvme_retries, s.ecc_corrections,
                ssd->InspectDevice().ftl_reserve_blocks);
    if (failed_puts != 0) {
      std::printf("       (%" PRIu64 " of %" PRIu64 " PUTs failed)\n",
                  failed_puts, args.ops);
    }
    csv.Row("%s,%.1f,%.2f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64,
            point.label, kops, secs * 1e3, s.nand_program_failures,
            s.bad_block_remaps, s.nvme_retries, s.ecc_corrections,
            ssd->InspectDevice().ftl_reserve_blocks);
  }
  if (control_mode) {
    // Fixed op count: the headroom scenario is a calibrated pass/fail
    // experiment (a 48-block die under sustained 1 % program failures
    // eventually bricks at ANY op count — the demo window is where paced GC
    // visibly defends the floor), so --ops scales only the sweep above.
    const int failures = RunControlHeadroom(/*ops=*/5000, seed);
    if (failures != 0) {
      std::fprintf(stderr, "\nfault_campaign --control: %d check(s) FAILED\n",
                   failures);
      return 1;
    }
    std::printf("\nfault_campaign --control: all checks passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace bandslim

int main(int argc, char** argv) { return bandslim::Run(argc, argv); }
