// Figure 3 (Section 2.4): PCIe traffic amplification of the baseline
// NVMe KV-SSD. (a) total PCIe traffic + average transfer response time for
// value sizes 1-16 KiB; (b) Traffic Amplification Factor for 32 B - 1 KiB.
// NAND I/O is disabled to isolate the transfer path.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/100000);
  KvSsdOptions options = DefaultBenchOptions();
  options.driver.method = driver::TransferMethod::kPrp;
  options.controller.nand_io_enabled = false;
  PrintPlatform("Figure 3: baseline PCIe traffic amplification", options, args);
  CsvWriter csv(args);
  csv.Header("series,value_size_bytes,traffic_gb,response_us,taf");

  std::printf("\n-- Fig 3(a): total PCIe traffic & avg transfer response "
              "(Workload A, Baseline) --\n");
  std::printf("%8s %16s %18s\n", "vsize", "traffic (GB)", "response (us)");
  for (std::size_t kb = 1; kb <= 16; ++kb) {
    auto ssd = KvSsd::Open(options).value();
    auto spec = workload::MakeWorkloadA(kb * 1024, args.ops);
    auto r = workload::RunPutWorkload(*ssd, spec, "Baseline");
    std::printf("%8s %16.2f %18.2f\n", SizeLabel(kb * 1024),
                ScaledGB(args, r.TrafficPerOpBytes()), r.MeanResponseUs());
    csv.Row("fig3a,%zu,%.3f,%.2f,", kb * 1024,
            ScaledGB(args, r.TrafficPerOpBytes()), r.MeanResponseUs());
  }

  std::printf("\n-- Fig 3(b): Traffic Amplification Factor --\n");
  std::printf("%8s %12s\n", "vsize", "TAF");
  for (std::size_t size : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    auto ssd = KvSsd::Open(options).value();
    auto spec = workload::MakeWorkloadA(size, args.ops);
    auto r = workload::RunPutWorkload(*ssd, spec, "Baseline");
    std::printf("%8s %12.1f\n", SizeLabel(size), r.TrafficAmplification());
    csv.Row("fig3b,%zu,,,%.2f", size, r.TrafficAmplification());
  }
  std::printf("\npaper: TAF 130.0 / 65.0 / 32.5 / 16.3 / 8.1 / 4.1; traffic "
              "steps at exact 4 KiB boundaries\n");
  return 0;
}
