// Figure 4 (Section 2.4): NAND write amplification of the baseline KV-SSD.
// (a) total NAND page writes + average write response for 1-16 KiB values;
// (b) Write Amplification Factor for 32 B - 1 KiB (includes LSM-tree
// compaction writes, as the paper notes).
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/50000);
  KvSsdOptions options = DefaultBenchOptions();
  options.driver.method = driver::TransferMethod::kPrp;
  options.buffer.policy = buffer::PackingPolicy::kBlock;
  PrintPlatform("Figure 4: baseline NAND write amplification", options, args);

  std::printf("\n-- Fig 4(a): NAND page writes & avg write response "
              "(Workload A, Baseline) --\n");
  std::printf("%8s %18s %18s\n", "vsize", "NAND I/O (M)", "response (us)");
  for (std::size_t kb = 1; kb <= 16; ++kb) {
    auto ssd = KvSsd::Open(options).value();
    auto spec = workload::MakeWorkloadA(kb * 1024, args.ops);
    auto r = workload::RunPutWorkload(*ssd, spec, "Baseline");
    const double nand_per_op =
        static_cast<double>(r.delta.nand_pages_programmed) /
        static_cast<double>(r.ops);
    std::printf("%8s %18.3f %18.1f\n", SizeLabel(kb * 1024),
                ScaledMillions(args, nand_per_op), r.MeanResponseUs());
  }

  std::printf("\n-- Fig 4(b): Write Amplification Factor --\n");
  std::printf("%8s %12s\n", "vsize", "WAF");
  for (std::size_t size : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    auto ssd = KvSsd::Open(options).value();
    auto spec = workload::MakeWorkloadA(size, args.ops);
    auto r = workload::RunPutWorkload(*ssd, spec, "Baseline");
    std::printf("%8s %12.1f\n", SizeLabel(size), r.WriteAmplification());
  }
  std::printf("\npaper: WAF 129.9 / 64.9 / 32.4 / 16.2 / 8.1 / 4.0 — WAF "
              "mirrors TAF; write response ~10x transfer response\n");
  return 0;
}
