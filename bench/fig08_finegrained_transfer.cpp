// Figure 8 (Section 4.2): effects of fine-grained value transfer.
// Baseline (PRP page-unit DMA) vs Piggyback (NVMe-command inlining) across
// value sizes 4 B - 4 KiB: total PCIe traffic and average response time.
// NAND I/O disabled, Workload A, unique keys.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/100000);
  KvSsdOptions base = DefaultBenchOptions();
  base.controller.nand_io_enabled = false;
  PrintPlatform("Figure 8: fine-grained value transfer", base, args);
  CsvWriter csv(args);
  csv.Header("value_size_bytes,baseline_gb,piggyback_gb,baseline_us,piggyback_us");

  std::printf("\n%8s | %14s %14s | %14s %14s | %9s %9s\n", "vsize",
              "Base GB", "Piggy GB", "Base us", "Piggy us", "cut%", "resp x");
  const std::size_t sizes[] = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  for (std::size_t size : sizes) {
    workload::RunResult results[2];
    int i = 0;
    for (auto method :
         {driver::TransferMethod::kPrp, driver::TransferMethod::kPiggyback}) {
      KvSsdOptions o = base;
      o.driver.method = method;
      auto ssd = KvSsd::Open(o).value();
      auto spec = workload::MakeWorkloadA(size, args.ops);
      results[i++] = workload::RunPutWorkload(*ssd, spec,
                                              driver::MethodName(method));
    }
    const double cut = 100.0 * (1.0 - results[1].TrafficPerOpBytes() /
                                          results[0].TrafficPerOpBytes());
    csv.Row("%zu,%.3f,%.3f,%.2f,%.2f", size,
            ScaledGB(args, results[0].TrafficPerOpBytes()),
            ScaledGB(args, results[1].TrafficPerOpBytes()),
            results[0].MeanResponseUs(), results[1].MeanResponseUs());
    std::printf("%8s | %14.3f %14.3f | %14.2f %14.2f | %8.1f%% %9.2f\n",
                SizeLabel(size), ScaledGB(args, results[0].TrafficPerOpBytes()),
                ScaledGB(args, results[1].TrafficPerOpBytes()),
                results[0].MeanResponseUs(), results[1].MeanResponseUs(), cut,
                results[1].MeanResponseUs() / results[0].MeanResponseUs());
  }
  std::printf("\npaper: up to 97.9%% traffic cut at 4-32 B; piggyback response "
              "~0.5x baseline at <=32 B, equal at 64 B, degrading from 128 B; "
              "traffic crossover between 2 KiB and 4 KiB\n");
  return 0;
}
