// Figure 9 (Section 4.2): hybrid value transfer for values of 4 KiB plus
// trailing bytes (4 B - 4 KiB). Baseline ships two whole pages; Hybrid
// ships one page by DMA and the remainder piggybacked; Piggyback inlines
// everything. NAND I/O disabled, Workload A.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/50000);
  KvSsdOptions base = DefaultBenchOptions();
  base.controller.nand_io_enabled = false;
  PrintPlatform("Figure 9: hybrid value transfer (4 KiB + trailing)", base, args);

  std::printf("\n%9s | %11s %11s %11s | %11s %11s %11s\n", "trailing",
              "Base GB", "Piggy GB", "Hybr GB", "Base us", "Piggy us",
              "Hybr us");
  const std::size_t trailings[] = {4, 8, 16, 32, 64, 128, 256, 512,
                                   1024, 2048, 4096};
  for (std::size_t t : trailings) {
    const std::size_t size = 4096 + t;
    workload::RunResult r[3];
    int i = 0;
    for (auto method :
         {driver::TransferMethod::kPrp, driver::TransferMethod::kPiggyback,
          driver::TransferMethod::kHybrid}) {
      KvSsdOptions o = base;
      o.driver.method = method;
      auto ssd = KvSsd::Open(o).value();
      auto spec = workload::MakeWorkloadA(size, args.ops);
      r[i++] = workload::RunPutWorkload(*ssd, spec, driver::MethodName(method));
    }
    std::printf("%9s | %11.3f %11.3f %11.3f | %11.1f %11.1f %11.1f\n",
                SizeLabel(t), ScaledGB(args, r[0].TrafficPerOpBytes()),
                ScaledGB(args, r[1].TrafficPerOpBytes()),
                ScaledGB(args, r[2].TrafficPerOpBytes()), r[0].MeanResponseUs(),
                r[1].MeanResponseUs(), r[2].MeanResponseUs());
  }
  std::printf("\npaper: hybrid traffic-optimal up to ~6 KiB total; hybrid "
              "response ~= baseline for small trailings (<=64 B), piggyback "
              "response far worse throughout\n");
  return 0;
}
