// Figure 10 (Section 4.2): adaptive value transfer on the mixed workloads
// W(B), W(C), W(D) and the mixgraph-style W(M). Compares Baseline,
// Piggyback and Adaptive on (a) average response time, (b) throughput,
// (c) total PCIe traffic and (d) host MMIO (doorbell) traffic.
// NAND I/O disabled.
#include <functional>
#include <vector>

#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/100000);
  KvSsdOptions base = DefaultBenchOptions();
  base.controller.nand_io_enabled = false;
  PrintPlatform("Figure 10: adaptive value transfer", base, args);
  CsvWriter csv(args);
  csv.Header("method,workload,response_us,kops,pcie_gb,mmio_mb");

  using Factory = std::function<workload::WorkloadSpec(std::uint64_t)>;
  const std::vector<std::pair<const char*, Factory>> workloads = {
      {"W(B)", [](std::uint64_t n) { return workload::MakeWorkloadB(n); }},
      {"W(C)", [](std::uint64_t n) { return workload::MakeWorkloadC(n); }},
      {"W(D)", [](std::uint64_t n) { return workload::MakeWorkloadD(n); }},
      {"W(M)", [](std::uint64_t n) { return workload::MakeWorkloadM(n); }},
  };
  const driver::TransferMethod methods[] = {driver::TransferMethod::kPrp,
                                            driver::TransferMethod::kPiggyback,
                                            driver::TransferMethod::kAdaptive};

  std::printf("\n%10s %6s | %12s %12s %14s %14s\n", "method", "wl",
              "resp (us)", "Kops/s", "PCIe (GB)", "MMIO (MB)");
  for (auto method : methods) {
    for (const auto& [name, factory] : workloads) {
      KvSsdOptions o = base;
      o.driver.method = method;
      auto ssd = KvSsd::Open(o).value();
      auto spec = factory(args.ops);
      auto r = workload::RunPutWorkload(*ssd, spec, driver::MethodName(method));
      const double mmio_per_op = static_cast<double>(r.delta.mmio_bytes) /
                                 static_cast<double>(r.ops);
      std::printf("%10s %6s | %12.1f %12.1f %14.3f %14.1f\n",
                  driver::MethodName(method), name, r.MeanResponseUs(),
                  r.KopsPerSec(), ScaledGB(args, r.TrafficPerOpBytes()),
                  ScaledGB(args, mmio_per_op) * 1000.0);
      csv.Row("%s,%s,%.1f,%.1f,%.3f,%.1f", driver::MethodName(method), name,
              r.MeanResponseUs(), r.KopsPerSec(),
              ScaledGB(args, r.TrafficPerOpBytes()),
              ScaledGB(args, mmio_per_op) * 1000.0);
    }
    std::printf("\n");
  }
  std::printf("paper: Adaptive best everywhere; Piggyback worst on B/C/D but "
              "~22%% better response than Baseline on W(M) with 97.9%% less "
              "traffic; MMIO explodes for Piggyback on W(C)\n");
  return 0;
}
