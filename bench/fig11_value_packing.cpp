// Figure 11 (Section 4.3): effects of fine-grained value packing with NAND
// I/O enabled (All Packing Policy). Configurations: Baseline (PRP + Block),
// Piggyback (piggyback + Block), Packing (PRP + All), Piggy+Pack
// (piggyback + All). Workload A across value sizes 4 B - 4 KiB. The paper
// runs 10 M pairs; totals here are scaled to 10 M.
#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/30000);
  args.paper_ops = 10000000;  // Figure 11 uses 10 M pairs.
  KvSsdOptions base = DefaultBenchOptions();
  PrintPlatform("Figure 11: fine-grained value packing", base, args);

  struct Config {
    const char* name;
    driver::TransferMethod method;
    buffer::PackingPolicy policy;
  };
  const Config configs[] = {
      {"Baseline", driver::TransferMethod::kPrp, buffer::PackingPolicy::kBlock},
      {"Piggyback", driver::TransferMethod::kPiggyback,
       buffer::PackingPolicy::kBlock},
      {"Packing", driver::TransferMethod::kPrp, buffer::PackingPolicy::kAll},
      {"Piggy+Pack", driver::TransferMethod::kPiggyback,
       buffer::PackingPolicy::kAll},
  };

  const std::size_t sizes[] = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  std::printf("\n%8s", "vsize");
  for (const auto& c : configs) std::printf(" | %10s I/O(M)  resp(us)", c.name);
  std::printf("\n");
  for (std::size_t size : sizes) {
    std::printf("%8s", SizeLabel(size));
    for (const auto& c : configs) {
      KvSsdOptions o = base;
      o.driver.method = c.method;
      o.buffer.policy = c.policy;
      auto ssd = KvSsd::Open(o).value();
      auto spec = workload::MakeWorkloadA(size, args.ops);
      auto r = workload::RunPutWorkload(*ssd, spec, c.name);
      const double nand_per_op =
          static_cast<double>(r.delta.nand_pages_programmed) /
          static_cast<double>(r.ops);
      std::printf(" | %10s %6.2f  %8.1f", "",
                  ScaledMillions(args, nand_per_op), r.MeanResponseUs());
    }
    std::printf("\n");
  }
  std::printf("\npaper: packing cuts NAND writes by 98.1%% and response by "
              "67.6%% at 4-32 B; Piggy+Pack shaves a further ~4%% at 32 B but "
              "collapses from 128 B (serialized trailing commands)\n");
  return 0;
}
