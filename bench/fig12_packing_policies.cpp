// Figure 12 (Section 4.3): comparison of in-device packing policies —
// Block (baseline), All Packing, Selective Packing, Selective Packing with
// Backfilling — under the adaptive value transfer, NAND I/O enabled, on
// W(B), W(C), W(D) and W(M). Reports (a) average response time,
// (b) throughput, (c) NAND page writes and (d) average device memcpy time.
#include <functional>
#include <vector>

#include "bench_util.h"
#include "workload/workloads.h"

using namespace bandslim;
using namespace bandslim::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/60000);
  KvSsdOptions base = DefaultBenchOptions();
  base.driver.method = driver::TransferMethod::kAdaptive;
  PrintPlatform("Figure 12: in-device packing policies", base, args);
  CsvWriter csv(args);
  csv.Header("policy,workload,response_us,kops,nand_io_k,memcpy_us,waste_mb");

  using Factory = std::function<workload::WorkloadSpec(std::uint64_t)>;
  const std::vector<std::pair<const char*, Factory>> workloads = {
      {"W(B)", [](std::uint64_t n) { return workload::MakeWorkloadB(n); }},
      {"W(C)", [](std::uint64_t n) { return workload::MakeWorkloadC(n); }},
      {"W(D)", [](std::uint64_t n) { return workload::MakeWorkloadD(n); }},
      {"W(M)", [](std::uint64_t n) { return workload::MakeWorkloadM(n); }},
  };
  const buffer::PackingPolicy policies[] = {
      buffer::PackingPolicy::kBlock, buffer::PackingPolicy::kAll,
      buffer::PackingPolicy::kSelective,
      buffer::PackingPolicy::kSelectiveBackfill};

  std::printf("\n%9s %6s | %11s %9s %14s %14s %12s\n", "policy", "wl",
              "resp (us)", "Kops/s", "NAND I/O (K)", "memcpy (us)",
              "waste (MB)");
  for (auto policy : policies) {
    for (const auto& [name, factory] : workloads) {
      KvSsdOptions o = base;
      o.buffer.policy = policy;
      auto ssd = KvSsd::Open(o).value();
      auto spec = factory(args.ops);
      auto r = workload::RunPutWorkload(*ssd, spec, buffer::PolicyName(policy));
      const double nand_per_op =
          static_cast<double>(r.delta.nand_pages_programmed) /
          static_cast<double>(r.ops);
      const double memcpy_us_per_op =
          static_cast<double>(r.delta.device_memcpy_bytes) *
          static_cast<double>(o.cost.memcpy_ns_per_byte) /
          static_cast<double>(r.ops) / 1000.0;
      const double waste_per_op =
          static_cast<double>(r.delta.buffer_wasted_bytes) /
          static_cast<double>(r.ops);
      std::printf("%9s %6s | %11.1f %9.1f %14.1f %14.2f %12.1f\n",
                  buffer::PolicyName(policy), name, r.MeanResponseUs(),
                  r.KopsPerSec(),
                  ScaledMillions(args, nand_per_op) * 1000.0,
                  memcpy_us_per_op,
                  ScaledGB(args, waste_per_op) * 1000.0);
      csv.Row("%s,%s,%.1f,%.1f,%.1f,%.2f,%.1f", buffer::PolicyName(policy),
              name, r.MeanResponseUs(), r.KopsPerSec(),
              ScaledMillions(args, nand_per_op) * 1000.0, memcpy_us_per_op,
              ScaledGB(args, waste_per_op) * 1000.0);
    }
    std::printf("\n");
  }
  std::printf("paper: Block worst everywhere; Select ~= Block on W(C); All "
              "pays the largest memcpy time (growing W(M)<W(B)<W(D)<W(C)); "
              "Backfill best on small-value-dominant W(B)/W(M)\n");
  return 0;
}
