// Fleet timeline: the cluster-wide observability gate. Drives a 4-shard
// KvCluster with the FleetAggregator (telemetry/fleet.h) sampling every
// shard's registry on the router clock, prints the fleet timeline, and
// cross-checks the plane's three aggregation invariants plus the watchdog
// and federation behaviour:
//
//   1. Reconciliation — every fleet sample's delta.ops equals the sum of the
//      per-shard deltas over the same interval, the deltas telescope to the
//      summed final GetStats() counters exactly (ops, H2D bytes, NAND pages,
//      value bytes), and the last sample's cumulatives equal GetStats().
//   2. Mergeable percentiles — the fleet's lifetime.trace.op.p50/.p95/.p99
//      must equal the quantiles of a histogram rebuilt by merging every
//      shard's cumulative op-latency buckets (the union), exactly.
//   3. Watchdog — uniform routing raises zero fleet alerts; a hot-shard run
//      (every PUT owned by shard 0) must fire shard_imbalance (max/mean
//      pinned at exactly 4.000), ring_skew, and straggler_shard.
//   4. Determinism — the uniform run executes twice; the Prometheus, JSONL
//      and shards.jsonl exports must be byte-identical. The live scrape
//      server is attached to pass 1 only, so the compare also proves the
//      server cannot perturb outcomes.
//   5. Observation only — a third uniform run with the aggregator disabled
//      must be bit-identical to the enabled run in virtual time and every
//      per-shard counter.
//   6. Scrape — with --serve=PORT, GET /metrics, /timeline.jsonl and
//      /shards.jsonl over the wire must byte-match the in-process exports.
//
// Any violation prints CHECK FAILED and exits nonzero (ci/verify.sh gate).
// --export=PREFIX writes PREFIX.prom / .jsonl / .shards.jsonl. --serve=PORT
// (0 = ephemeral) starts the HTTP exporter; with --export, the resolved port
// is written to PREFIX.port and --serve-hold=MS keeps the server up until
// the port file is deleted (or MS elapses) for an external scraper.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/kv_cluster.h"
#include "stats/histogram.h"
#include "telemetry/fleet.h"
#include "telemetry/http_exporter.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

constexpr std::uint32_t kShards = 4;

int failures = 0;

void Check(bool ok, const char* what, std::uint64_t got, std::uint64_t want) {
  if (ok) {
    std::printf("CHECK ok: %-48s %llu\n", what,
                static_cast<unsigned long long>(got));
  } else {
    std::fprintf(stderr, "CHECK FAILED: %s: got %llu want %llu\n", what,
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    ++failures;
  }
}

std::uint64_t SampleValue(const telemetry::FleetAggregator& agg,
                          const telemetry::Sample& s, const std::string& name) {
  const std::int64_t id = agg.series().Find(name);
  return id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id));
}

std::uint64_t SumSeries(const telemetry::FleetAggregator& agg,
                        const std::string& name) {
  std::uint64_t sum = 0;
  for (const telemetry::Sample& s : agg.samples()) {
    sum += SampleValue(agg, s, name);
  }
  return sum;
}

std::uint64_t MaxSeries(const telemetry::FleetAggregator& agg,
                        const std::string& name) {
  std::uint64_t max = 0;
  for (const telemetry::Sample& s : agg.samples()) {
    max = std::max(max, SampleValue(agg, s, name));
  }
  return max;
}

std::uint64_t AlertFires(const StoreSnapshot& snap, const char* rule) {
  for (const auto& alert : snap.alerts) {
    if (alert.rule == rule) return alert.fired;
  }
  return 0;
}

cluster::ClusterConfig FleetOptions(bool enabled) {
  cluster::ClusterConfig cc;
  cc.num_shards = kShards;
  cc.shard = DefaultBenchOptions();
  cc.shard.trace.enabled = true;  // Feeds the per-shard / merged percentiles.
  cc.fleet.enabled = enabled;
  // Dozens of routed commands per interval even in the slow 1 KiB phase of
  // the workload: enough signal that uniform routing stays below every
  // threshold (a shard never idles six 2 ms intervals in a row) while a hot
  // shard pins the imbalance ratio at its 4-shard ceiling.
  cc.fleet.sample_interval_ns = 2 * sim::kMillisecond;
  cc.fleet.rules = {telemetry::ShardImbalanceRule(/*ratio_milli=*/3000,
                                                  /*n=*/3),
                    telemetry::RingSkewRule(/*skew_permille=*/500, /*n=*/3),
                    telemetry::StragglerShardRule(/*n=*/6)};
  return cc;
}

struct FleetRun {
  std::string prom, jsonl, shards;
  KvSsdStats stats;
  sim::Nanoseconds now_ns = 0;
  std::vector<std::map<std::string, std::uint64_t>> counters;  // Per shard.
  StoreSnapshot snap;
};

// The workload. Uniform: hashed keys with a value-size step at ops/2 (so the
// fleet's TAF/throughput curves move) plus one cross-shard batch. Hot: every
// key owned by shard 0 — the sharpest imbalance a router can see.
void Drive(cluster::KvCluster& fleet, std::uint64_t ops, bool hot) {
  std::uint64_t put_errors = 0;
  if (hot) {
    std::uint64_t done = 0;
    for (std::uint64_t i = 0; done < ops; ++i) {
      const std::string key = "hot" + std::to_string(i);
      if (fleet.ShardOf(key) != 0) continue;
      Bytes value = workload::MakeValue(64, 19, done);
      if (!fleet.Put(key, ByteSpan(value)).ok()) ++put_errors;
      ++done;
    }
  } else {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::size_t size = i < ops / 2 ? 64 : 1024;
      Bytes value = workload::MakeValue(size, 19, i);
      if (!fleet.Put("fl" + std::to_string(i), ByteSpan(value)).ok()) {
        ++put_errors;
      }
    }
    std::vector<KvStore::KvPair> batch;
    for (std::uint64_t i = 0; i < 32; ++i) {
      batch.push_back({"flb" + std::to_string(i),
                       workload::MakeValue(256, 19, i)});
    }
    if (!fleet.PutBatch(batch).ok()) ++put_errors;
  }
  const bool flushed = fleet.Flush().ok();
  if (put_errors != 0 || !flushed) {
    std::fprintf(stderr, "CHECK FAILED: workload rejected %llu PUT(s)%s\n",
                 static_cast<unsigned long long>(put_errors),
                 flushed ? "" : " and the flush");
    ++failures;
  }
}

// Invariants 1 and 2, checked against the live aggregator before teardown.
void CheckReconciliation(cluster::KvCluster& fleet, const KvSsdStats& stats) {
  const telemetry::FleetAggregator& agg = fleet.fleet();
  Check(agg.dropped_samples() == 0, "no fleet samples dropped",
        agg.dropped_samples(), 0);
  Check(agg.samples_emitted() >= 3, "fleet emitted multiple samples",
        agg.samples_emitted(), 3);

  // Every interval: the fleet delta is the sum of the per-shard deltas, and
  // the fleet cumulative is the sum of the per-shard cumulatives.
  std::uint64_t skewed_intervals = 0;
  for (const telemetry::Sample& s : agg.samples()) {
    std::uint64_t shard_delta = 0, shard_cum = 0;
    for (std::uint32_t i = 0; i < kShards; ++i) {
      const std::string base = "shard" + std::to_string(i);
      shard_delta += SampleValue(agg, s, base + ".delta.ops");
      shard_cum += SampleValue(agg, s, base + ".ops");
    }
    if (SampleValue(agg, s, "delta.ops") != shard_delta ||
        SampleValue(agg, s, "nvme.commands_submitted") != shard_cum) {
      ++skewed_intervals;
    }
  }
  Check(skewed_intervals == 0, "every interval sums its shard deltas",
        skewed_intervals, 0);

  // The deltas telescope to the summed final GetStats() counters exactly.
  Check(SumSeries(agg, "delta.ops") == stats.commands_submitted,
        "sum(delta.ops) == commands_submitted", SumSeries(agg, "delta.ops"),
        stats.commands_submitted);
  Check(SumSeries(agg, "delta.value_bytes") == stats.value_bytes_written,
        "sum(delta.value_bytes) == value_bytes_written",
        SumSeries(agg, "delta.value_bytes"), stats.value_bytes_written);
  Check(SumSeries(agg, "delta.nand.pages_programmed") ==
            stats.nand_pages_programmed,
        "sum(delta.nand.pages) == nand_pages_programmed",
        SumSeries(agg, "delta.nand.pages_programmed"),
        stats.nand_pages_programmed);
  Check(agg.Latest("nvme.commands_submitted") == stats.commands_submitted,
        "last cumulative == commands_submitted",
        agg.Latest("nvme.commands_submitted"), stats.commands_submitted);
  const std::uint64_t h2d = agg.Latest("pcie.mmio.h2d_bytes") +
                            agg.Latest("pcie.cmd_fetch.h2d_bytes") +
                            agg.Latest("pcie.dma_data.h2d_bytes") +
                            agg.Latest("pcie.completion.h2d_bytes");
  Check(h2d == stats.pcie_h2d_bytes, "last cumulative h2d == pcie_h2d_bytes",
        h2d, stats.pcie_h2d_bytes);

  // Mergeable percentiles: the fleet's lifetime quantiles must equal the
  // quantiles of the union histogram rebuilt from the shard buckets.
  stats::Histogram union_hist;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const auto hists = fleet.shard(s).metrics().SnapshotHistogramBuckets();
    const auto it = hists.find("trace.op.latency_ns");
    if (it == hists.end()) continue;
    union_hist.MergeFrom(it->second.buckets, it->second.count, it->second.sum);
  }
  Check(agg.Latest("hist.trace.op.count") == union_hist.count(),
        "fleet hist count == union of shard histograms",
        agg.Latest("hist.trace.op.count"), union_hist.count());
  Check(agg.Latest("lifetime.trace.op.p50") == union_hist.QuantilePermille(500),
        "fleet lifetime p50 == union quantile",
        agg.Latest("lifetime.trace.op.p50"), union_hist.QuantilePermille(500));
  Check(agg.Latest("lifetime.trace.op.p95") == union_hist.QuantilePermille(950),
        "fleet lifetime p95 == union quantile",
        agg.Latest("lifetime.trace.op.p95"), union_hist.QuantilePermille(950));
  Check(agg.Latest("lifetime.trace.op.p99") == union_hist.QuantilePermille(990),
        "fleet lifetime p99 == union quantile",
        agg.Latest("lifetime.trace.op.p99"), union_hist.QuantilePermille(990));
  Check(agg.Latest("lifetime.trace.op.p99") > 0, "fleet lifetime p99 nonzero",
        agg.Latest("lifetime.trace.op.p99"), 1);
}

void PrintFleetTimeline(const telemetry::FleetAggregator& agg) {
  const auto& samples = agg.samples();
  std::printf("\n%9s %9s %7s %8s %8s %8s  %s\n", "t_ms", "kops/s", "d.ops",
              "max/mean", "skew", "stalled", "shard delta ops");
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / 12);
  for (std::size_t i = 0; i < samples.size();
       i = (i + stride < samples.size() || i + 1 == samples.size())
               ? i + stride
               : samples.size() - 1) {
    const telemetry::Sample& s = samples[i];
    std::printf("%9.2f %9.1f %7llu %8.3f %7llu%% %8llu  [",
                static_cast<double>(s.t_ns) / 1e6,
                static_cast<double>(
                    SampleValue(agg, s, "rate.ops_per_sec_milli")) /
                    1e6,
                static_cast<unsigned long long>(
                    SampleValue(agg, s, "delta.ops")),
                static_cast<double>(SampleValue(
                    agg, s, "fleet.imbalance.ops_max_over_mean_milli")) /
                    1e3,
                static_cast<unsigned long long>(
                    SampleValue(agg, s, "fleet.ring.skew_permille") / 10),
                static_cast<unsigned long long>(
                    SampleValue(agg, s, "fleet.straggler.stalled_shards")));
    for (std::uint32_t sh = 0; sh < kShards; ++sh) {
      std::printf("%s%llu", sh == 0 ? "" : " ",
                  static_cast<unsigned long long>(SampleValue(
                      agg, s, "shard" + std::to_string(sh) + ".delta.ops")));
    }
    std::printf("]\n");
    if (i + 1 == samples.size()) break;
  }
  std::printf("samples=%zu events=%llu\n\n", samples.size(),
              static_cast<unsigned long long>(
                  agg.event_log().total_emitted()));
}

// One full campaign. `server` non-null attaches the live federated scrape to
// this run and self-scrapes it afterwards; `print` renders the timeline.
FleetRun RunFleet(std::uint64_t ops, bool hot, bool enabled,
                  telemetry::HttpExporter* server = nullptr,
                  bool print = false) {
  auto fleet = cluster::KvCluster::Open(FleetOptions(enabled)).value();
  if (server != nullptr) fleet->fleet().SetSink(server);
  Drive(*fleet, ops, hot);
  fleet->fleet().Finalize();

  FleetRun out;
  out.stats = fleet->GetStats();
  out.now_ns = fleet->Now();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    out.counters.push_back(fleet->shard(s).metrics().SnapshotCounters());
  }
  out.snap = fleet->Inspect();
  if (enabled && hot) {
    // All traffic on one of four shards: max/mean pins at exactly 4.000 in
    // every interval with traffic — the ratio's ceiling for this fleet.
    Check(MaxSeries(fleet->fleet(),
                    "fleet.imbalance.ops_max_over_mean_milli") == 4000,
          "hot run pins max/mean ops ratio at 4.000",
          MaxSeries(fleet->fleet(),
                    "fleet.imbalance.ops_max_over_mean_milli"),
          4000);
  }
  if (enabled) {
    out.prom = fleet->fleet().ToPrometheusText();
    out.jsonl = fleet->fleet().ToJsonl();
    out.shards = fleet->fleet().ShardsJsonl();
    CheckReconciliation(*fleet, out.stats);
    Check(out.snap.fleet_samples == fleet->fleet().samples_emitted(),
          "snapshot surfaces the fleet sample count", out.snap.fleet_samples,
          fleet->fleet().samples_emitted());
    if (print) PrintFleetTimeline(fleet->fleet());
  }

  // Self-scrape: the federated documents served over the wire must equal
  // the in-process exports at the same (final) published sample.
  if (server != nullptr) {
    const auto metrics = telemetry::HttpGet(server->port(), "/metrics");
    Check(metrics.ok() && metrics.value() == out.prom,
          "GET /metrics byte-matches ToPrometheusText",
          metrics.ok() ? metrics.value().size() : 0, out.prom.size());
    const auto jsonl = telemetry::HttpGet(server->port(), "/timeline.jsonl");
    Check(jsonl.ok() && jsonl.value() == out.jsonl,
          "GET /timeline.jsonl byte-matches ToJsonl",
          jsonl.ok() ? jsonl.value().size() : 0, out.jsonl.size());
    const auto shards = telemetry::HttpGet(server->port(), "/shards.jsonl");
    Check(shards.ok() && shards.value() == out.shards,
          "GET /shards.jsonl byte-matches ShardsJsonl",
          shards.ok() ? shards.value().size() : 0, out.shards.size());
    const auto health = telemetry::HttpGet(server->port(), "/healthz");
    Check(health.ok() &&
              health.value().find("\"shards\":4") != std::string::npos,
          "GET /healthz reports 4 shards", health.ok() ? 1 : 0, 1);
  }
  return out;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "CHECK FAILED: cannot write %s\n", path.c_str());
    ++failures;
    return;
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/6000);
  std::string export_prefix;
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::uint64_t serve_hold_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--export=", 9) == 0) {
      export_prefix = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve = true;
      serve_port =
          static_cast<std::uint16_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--serve-hold=", 13) == 0) {
      serve_hold_ms = std::strtoull(argv[i] + 13, nullptr, 10);
    }
  }
  PrintPlatform("Fleet timeline: cluster observability over virtual time",
                FleetOptions(true).shard, args);
  std::printf("  fleet   : %u shards, 2 ms sample interval, rules "
              "{shard_imbalance, ring_skew, straggler_shard}\n\n", kShards);

  telemetry::HttpExporter server;
  if (serve) {
    const Status started = server.Start(serve_port);
    if (!started.ok()) {
      std::fprintf(stderr, "CHECK FAILED: --serve: %s\n",
                   started.message().c_str());
      return 1;
    }
    std::printf("serving federated /metrics on http://127.0.0.1:%u\n",
                server.port());
  }

  std::printf("--- uniform run (pass 1%s) ---\n",
              serve ? ", live scrape attached" : "");
  FleetRun a = RunFleet(args.ops, /*hot=*/false, /*enabled=*/true,
                        serve ? &server : nullptr, /*print=*/true);
  std::uint64_t uniform_fires = 0;
  for (const auto& alert : a.snap.alerts) uniform_fires += alert.fired;
  Check(uniform_fires == 0, "uniform routing raises no fleet alerts",
        uniform_fires, 0);

  std::printf("--- uniform run (pass 2: determinism, no server) ---\n");
  FleetRun b = RunFleet(args.ops, /*hot=*/false, /*enabled=*/true);
  Check(a.prom == b.prom, "double-run Prometheus byte-identical",
        a.prom.size(), b.prom.size());
  Check(a.jsonl == b.jsonl, "double-run JSONL byte-identical", a.jsonl.size(),
        b.jsonl.size());
  Check(a.shards == b.shards, "double-run shards.jsonl byte-identical",
        a.shards.size(), b.shards.size());
  Check(a.prom.find("bandslim_shard_ops_total{shard=\"3\"}") !=
            std::string::npos,
        "scrape carries shard-labeled families", 1, 1);

  std::printf("--- uniform run (pass 3: aggregator disabled) ---\n");
  FleetRun c = RunFleet(args.ops, /*hot=*/false, /*enabled=*/false);
  Check(c.now_ns == b.now_ns, "disabled aggregator: virtual time identical",
        static_cast<std::uint64_t>(c.now_ns),
        static_cast<std::uint64_t>(b.now_ns));
  std::uint64_t counter_mismatches = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    if (c.counters[s] != b.counters[s]) ++counter_mismatches;
  }
  Check(counter_mismatches == 0,
        "disabled aggregator: shard counters identical", counter_mismatches,
        0);
  Check(c.snap.fleet_samples == 0, "disabled aggregator emits no samples",
        c.snap.fleet_samples, 0);

  std::printf("--- hot-shard storm (every PUT owned by shard 0) ---\n");
  FleetRun h = RunFleet(std::max<std::uint64_t>(args.ops / 3, 1000),
                        /*hot=*/true, /*enabled=*/true);
  Check(AlertFires(h.snap, "shard_imbalance") >= 1,
        "hot shard fires shard_imbalance",
        AlertFires(h.snap, "shard_imbalance"), 1);
  Check(AlertFires(h.snap, "ring_skew") >= 1, "hot shard fires ring_skew",
        AlertFires(h.snap, "ring_skew"), 1);
  Check(AlertFires(h.snap, "straggler_shard") >= 1,
        "hot shard fires straggler_shard",
        AlertFires(h.snap, "straggler_shard"), 1);

  if (!export_prefix.empty()) {
    WriteFile(export_prefix + ".prom", a.prom);
    WriteFile(export_prefix + ".jsonl", a.jsonl);
    WriteFile(export_prefix + ".shards.jsonl", a.shards);
    std::printf("exported %s.{prom,jsonl,shards.jsonl}\n",
                export_prefix.c_str());
  }

  // Hold the server up for an external scraper: publish the resolved port,
  // then wait (wall-clock; virtual time is finished) until the scraper
  // deletes the port file or the hold expires.
  if (serve && serve_hold_ms > 0 && !export_prefix.empty()) {
    const std::string port_path = export_prefix + ".port";
    WriteFile(port_path, std::to_string(server.port()) + "\n");
    std::printf("holding server up to %llu ms (delete %s to release)\n",
                static_cast<unsigned long long>(serve_hold_ms),
                port_path.c_str());
    std::fflush(stdout);
    std::uint64_t waited_ms = 0;
    while (waited_ms < serve_hold_ms &&
           ::access(port_path.c_str(), F_OK) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      waited_ms += 50;
    }
    std::remove(port_path.c_str());
  }
  server.Stop();

  if (failures != 0) {
    std::fprintf(stderr, "\nfleet_timeline: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nfleet_timeline: all checks passed\n");
  return 0;
}
