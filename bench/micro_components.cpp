// google-benchmark microbenchmarks for the hot components: command codec,
// skiplist MemTable, NAND page buffer packing, SSTable serialization.
// These measure *simulator* (wall-clock) performance, not modeled device
// time — they exist to keep the simulation itself fast.
#include <benchmark/benchmark.h>

#include "buffer/page_buffer.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "nvme/command.h"
#include "workload/key_gen.h"
#include "workload/value_gen.h"

namespace bandslim {
namespace {

void BM_CommandPiggybackEncode(benchmark::State& state) {
  Bytes payload = workload::MakeValue(35, 1, 1);
  for (auto _ : state) {
    nvme::NvmeCommand cmd;
    benchmark::DoNotOptimize(
        nvme::codec::SetWritePiggyback(cmd, ByteSpan(payload)));
    benchmark::DoNotOptimize(cmd);
  }
}
BENCHMARK(BM_CommandPiggybackEncode);

void BM_CommandPiggybackDecode(benchmark::State& state) {
  nvme::NvmeCommand cmd;
  Bytes payload = workload::MakeValue(35, 1, 1);
  nvme::codec::SetWritePiggyback(cmd, ByteSpan(payload));
  Bytes out(35);
  for (auto _ : state) {
    nvme::codec::GetWritePiggyback(cmd, MutByteSpan(out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CommandPiggybackDecode);

void BM_MemTableInsert(benchmark::State& state) {
  lsm::MemTable mem(1);
  workload::UniqueHashKeyGenerator keys(7);
  for (auto _ : state) {
    if (mem.entry_count() >= 100000) {
      state.PauseTiming();
      mem.Clear();
      state.ResumeTiming();
    }
    mem.Put(keys.Next(), lsm::ValueRef{1, 1, false});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableInsert);

void BM_MemTableLookup(benchmark::State& state) {
  lsm::MemTable mem(1);
  workload::UniqueHashKeyGenerator keys(7);
  std::vector<std::string> inserted;
  for (int i = 0; i < 100000; ++i) {
    inserted.push_back(keys.Next());
    mem.Put(inserted.back(), lsm::ValueRef{1, 1, false});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Get(inserted[i++ % inserted.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableLookup);

void BM_BufferPackPiggybacked(benchmark::State& state) {
  sim::VirtualClock clock;
  sim::CostModel cost;
  stats::MetricsRegistry metrics;
  buffer::BufferConfig config;
  config.policy = buffer::PackingPolicy::kAll;
  buffer::NandPageBuffer buf(
      config, &clock, &cost, &metrics,
      [](std::uint64_t, ByteSpan, std::uint32_t) { return Status::Ok(); });
  Bytes value = workload::MakeValue(static_cast<std::size_t>(state.range(0)), 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.PackPiggybacked(ByteSpan(value)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BufferPackPiggybacked)->Arg(32)->Arg(512)->Arg(4096);

void BM_SSTableEncodeDecode(benchmark::State& state) {
  std::vector<lsm::SSTableEntry> entries;
  workload::UniqueHashKeyGenerator keys(3);
  for (int i = 0; i < 1000; ++i) {
    entries.push_back({keys.Next(), {static_cast<std::uint64_t>(i), 8, false}});
  }
  for (auto _ : state) {
    Bytes stream;
    for (const auto& e : entries) lsm::EncodeEntry(&stream, e);
    std::size_t offset = 0;
    lsm::SSTableEntry out;
    for (int i = 0; i < 1000; ++i) {
      if (!lsm::DecodeEntry(ByteSpan(stream), &offset, &out).ok()) {
        state.SkipWithError("decode failed");
        break;
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SSTableEncodeDecode);

void BM_KeyGeneration(benchmark::State& state) {
  workload::UniqueHashKeyGenerator gen(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_KeyGeneration);

void BM_MixgraphSample(benchmark::State& state) {
  Xoshiro256 rng(5);
  workload::MixgraphSizes dist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Next(rng));
  }
}
BENCHMARK(BM_MixgraphSample);

}  // namespace
}  // namespace bandslim

BENCHMARK_MAIN();
