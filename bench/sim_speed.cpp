// sim_speed: wall-clock throughput of the simulator itself.
//
// Every figure harness and campaign in this repo is bounded by how many
// simulated NVMe commands the *host machine* can execute per second, not by
// anything the virtual clock says. This harness measures exactly that:
// wall-clock Mops/s (millions of KV operations per second of real time) and
// the virtual-to-wall ratio (how many nanoseconds of simulated device time
// one nanosecond of host CPU buys) across six profiles:
//
//   put_1q / get_1q / mixed_1q   — synchronous single-queue driver loop
//   put_4q / get_4q / mixed_4q   — four queue pairs interleaved through the
//                                  event engine (the sharded-runner path)
//   cluster_mixed_4shard         — the KvCluster router: a mixed campaign
//                                  sharded across four devices through the
//                                  parallel cluster workload runner
//
// All profiles run 128 B values over a fixed 4096-key working set, so PUTs
// take the piggyback path (1 write + 2 transfer commands) and GETs are
// PRP reads — the command mix the paper's Section 4.2 measurements stress.
// Ops overwrite/reread the same keys, so the device reaches steady state
// and the numbers reflect the per-op hot path, not data-structure growth.
//
// Usage:
//   sim_speed [--ops=N] [--reps=N] [--csv=FILE]
//             [--profiles=a,b,...]             # run a subset (default: all)
//             [--write-baseline=FILE]          # emit baseline JSON
//             [--check=FILE] [--tolerance=T]   # CI regression gate
//
// The gate fails (exit 1) if any profile's Mops/s drops below
// baseline * (1 - tolerance). Wall-clock numbers are machine-dependent:
// regenerate the baseline with --write-baseline on the machine class that
// runs the gate (CI uses bench/baseline_sim_speed.json with T = 0.15).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/event_engine.h"

namespace bandslim::bench {
namespace {

enum class OpMix { kPut, kGet, kMixed };

struct Profile {
  const char* name;
  OpMix mix;
  std::uint16_t streams;  // 1 = synchronous loop; >1 = event-engine sharded.
  std::uint32_t shards = 0;  // >0 = run through a KvCluster of this size.
};

constexpr Profile kProfiles[] = {
    {"put_1q", OpMix::kPut, 1},     {"put_4q", OpMix::kPut, 4},
    {"get_1q", OpMix::kGet, 1},     {"get_4q", OpMix::kGet, 4},
    {"mixed_1q", OpMix::kMixed, 1}, {"mixed_4q", OpMix::kMixed, 4},
    {"cluster_mixed_4shard", OpMix::kMixed, 1, 4},
};
constexpr int kNumProfiles = static_cast<int>(std::size(kProfiles));

constexpr std::size_t kValueSize = 128;
constexpr std::size_t kNumKeys = 4096;

struct ProfileResult {
  std::uint64_t ops = 0;
  double wall_ms = 0.0;     // Best rep.
  double virtual_ms = 0.0;  // Virtual time of the best rep.
  double mops = 0.0;
  double v2w = 0.0;  // Virtual ns per wall ns.
};

struct SpeedArgs {
  std::uint64_t ops = 100000;  // Per profile, per rep.
  int reps = 2;
  std::string csv_path;
  std::string profiles;  // Comma-separated subset; empty = all.
  std::string write_baseline;
  std::string check_path;
  double tolerance = 0.15;

  bool ProfileSelected(const char* name) const {
    if (profiles.empty()) return true;
    const std::string needle(name);
    std::size_t pos = 0;
    while (pos <= profiles.size()) {
      std::size_t end = profiles.find(',', pos);
      if (end == std::string::npos) end = profiles.size();
      if (profiles.compare(pos, end - pos, needle) == 0) return true;
      pos = end + 1;
    }
    return false;
  }
};

SpeedArgs ParseSpeedArgs(int argc, char** argv) {
  SpeedArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      args.ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      args.reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      args.csv_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--profiles=", 11) == 0) {
      args.profiles = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--write-baseline=", 17) == 0) {
      args.write_baseline = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      args.check_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      args.tolerance = std::atof(argv[i] + 12);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.reps < 1) args.reps = 1;
  return args;
}

// One op of the profile's mix against one stream's driver. Returns false on
// the first device error (the bench must not silently keep going). `got` is
// the stream's long-lived receive buffer: GETs go through GetInto so the
// steady-state loop performs zero heap allocations per op.
bool RunOp(driver::KvDriver* d, OpMix mix, std::uint64_t index,
           const std::vector<std::string>& keys, Bytes& value, Bytes& got) {
  const std::string& key = keys[index % keys.size()];
  const bool is_get =
      mix == OpMix::kGet || (mix == OpMix::kMixed && (index & 1) != 0);
  if (is_get) {
    return d->GetInto(key, &got).ok();
  }
  for (int b = 0; b < 8; ++b) {
    value[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(index >> (8 * b));
  }
  return d->Put(key, ByteSpan(value)).ok();
}

// Cluster profile: the same mixed steady-state pass, but routed through a
// KvCluster and executed by the parallel cluster workload runner — measures
// the router + per-shard stream hot path end to end.
ProfileResult RunClusterProfile(const Profile& p, const SpeedArgs& args) {
  cluster::ClusterConfig cc;
  cc.num_shards = p.shards;
  cc.shard = DefaultBenchOptions();
  cc.shard.retain_payloads = true;
  auto opened = cluster::KvCluster::Open(cc);
  if (!opened.ok()) {
    std::fprintf(stderr, "cluster open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(2);
  }
  cluster::KvCluster& fleet = *opened.value();

  workload::MixedWorkloadSpec spec;
  spec.ops = args.ops;
  spec.num_keys = kNumKeys;
  spec.value_size = kValueSize;
  spec.get_permille = 500;
  spec.seed = 29;
  if (!workload::PreloadMixedKeys(fleet, spec).ok()) {
    std::fprintf(stderr, "cluster preload failed\n");
    std::exit(2);
  }

  ProfileResult best;
  best.ops = args.ops;
  for (int rep = 0; rep < args.reps; ++rep) {
    const auto wall_start = std::chrono::steady_clock::now();
    const workload::RunResult r =
        workload::RunClusterMixedWorkload(fleet, spec, p.name);
    const auto wall_end = std::chrono::steady_clock::now();
    if (r.workload.find("FAILED") != std::string::npos) {
      std::fprintf(stderr, "%s: device op failed mid-run\n", p.name);
      std::exit(2);
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count();
    if (rep == 0 || wall_ms < best.wall_ms) {
      best.wall_ms = wall_ms;
      best.virtual_ms = static_cast<double>(r.elapsed_ns) / 1e6;
    }
  }
  best.mops = best.wall_ms > 0.0
                  ? static_cast<double>(best.ops) / (best.wall_ms * 1e3)
                  : 0.0;
  best.v2w = best.wall_ms > 0.0 ? best.virtual_ms / best.wall_ms : 0.0;
  return best;
}

// Runs one profile on a freshly opened device: preload the working set,
// then time `reps` identical passes of `ops` operations and keep the best.
ProfileResult RunProfile(const Profile& p, const SpeedArgs& args) {
  if (p.shards > 0) return RunClusterProfile(p, args);
  KvSsdOptions o = DefaultBenchOptions();
  o.retain_payloads = true;  // GETs must exercise the real read path.
  o.num_queues = 4;
  auto opened = KvSsd::Open(o);
  if (!opened.ok()) {
    std::fprintf(stderr, "device open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(2);
  }
  KvSsd& ssd = *opened.value();
  KvSsd::TestHooks hooks = ssd.Hooks();

  std::vector<std::string> keys;
  keys.reserve(kNumKeys);
  for (std::size_t i = 0; i < kNumKeys; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "k%06zu", i);
    keys.emplace_back(buf);
  }

  // Preload so GETs always hit and PUTs are steady-state overwrites.
  Bytes value(kValueSize, 0xA5);
  for (const std::string& key : keys) {
    if (!ssd.Put(key, ByteSpan(value)).ok()) {
      std::fprintf(stderr, "preload PUT failed\n");
      std::exit(2);
    }
  }

  std::vector<driver::KvDriver*> drivers(p.streams, hooks.driver);
  for (std::uint16_t s = 1; s < p.streams; ++s) {
    auto d = ssd.CreateQueueDriver(s, o.driver);
    if (!d.ok()) {
      std::fprintf(stderr, "queue driver creation failed\n");
      std::exit(2);
    }
    drivers[s] = d.value();
  }
  // One value buffer per stream: fragments of different streams' PUTs
  // interleave, so a shared buffer would tear. Same for the GET receive
  // buffers, which GetInto reuses across ops.
  std::vector<Bytes> values(p.streams, value);
  std::vector<Bytes> gots(p.streams);

  const bool was_parallel = hooks.transport->parallel_arbitration();
  if (p.streams > 1) hooks.transport->SetParallelArbitration(true);

  ProfileResult best;
  best.ops = args.ops;
  for (int rep = 0; rep < args.reps; ++rep) {
    sim::VirtualClock& clock = *hooks.clock;
    const sim::Nanoseconds virt_start = clock.Now();
    sim::Nanoseconds latest_finish = virt_start;
    bool failed = false;
    const auto wall_start = std::chrono::steady_clock::now();

    if (p.streams == 1) {
      for (std::uint64_t i = 0; i < args.ops && !failed; ++i) {
        failed = !RunOp(drivers[0], p.mix, i, keys, values[0], gots[0]);
      }
      latest_finish = clock.Now();
    } else {
      sim::EventEngine engine(&clock);
      engine.Reserve(2u * p.streams + 4u);
      std::function<void(std::uint16_t, std::uint64_t)> run_op =
          [&](std::uint16_t stream, std::uint64_t index) {
            if (failed) return;
            failed = !RunOp(drivers[stream], p.mix, index, keys,
                            values[stream], gots[stream]);
            latest_finish = std::max(latest_finish, clock.Now());
            const std::uint64_t next = index + p.streams;
            if (next < args.ops) {
              engine.Schedule(clock.Now(),
                              [&run_op, stream, next] { run_op(stream, next); });
            }
          };
      for (std::uint16_t s = 0; s < p.streams && s < args.ops; ++s) {
        const std::uint16_t stream = s;
        engine.Schedule(clock.Now(), [&run_op, stream] { run_op(stream, stream); });
      }
      engine.RunUntilIdle();
      clock.SetTime(std::max(clock.Now(), latest_finish));
    }

    const auto wall_end = std::chrono::steady_clock::now();
    if (failed) {
      std::fprintf(stderr, "%s: device op failed mid-run\n", p.name);
      std::exit(2);
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count();
    if (rep == 0 || wall_ms < best.wall_ms) {
      best.wall_ms = wall_ms;
      best.virtual_ms =
          static_cast<double>(latest_finish - virt_start) / 1e6;
    }
  }
  if (p.streams > 1) hooks.transport->SetParallelArbitration(was_parallel);

  best.mops = best.wall_ms > 0.0
                  ? static_cast<double>(best.ops) / (best.wall_ms * 1e3)
                  : 0.0;
  best.v2w = best.wall_ms > 0.0 ? best.virtual_ms / best.wall_ms : 0.0;
  return best;
}

// --- Baseline JSON (flat, hand-parsed: no JSON dependency in the tree) ----
//
//   {"schema": "bandslim.sim_speed.v1", "ops": N,
//    "profiles": {"put_1q": 1.2345, ...}}    # Mops/s per profile

void WriteBaseline(const char* path, const ProfileResult (&results)[kNumProfiles],
                   std::uint64_t ops) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\"schema\": \"bandslim.sim_speed.v1\", \"ops\": %" PRIu64
                  ",\n \"profiles\": {",
               ops);
  bool first = true;
  for (int i = 0; i < kNumProfiles; ++i) {
    if (results[i].ops == 0) continue;  // Profile not selected.
    std::fprintf(f, "%s\"%s\": %.4f", first ? "" : ", ", kProfiles[i].name,
                 results[i].mops);
    first = false;
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
  std::printf("baseline written to %s\n", path);
}

// Extracts `"name": <number>` from the baseline; returns false if absent.
bool ParseBaselineEntry(const std::string& text, const char* name,
                        double* out) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

int CheckBaseline(const char* path, double tolerance,
                  const ProfileResult (&results)[kNumProfiles]) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open baseline %s\n", path);
    return 2;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  int failures = 0;
  std::printf("\nregression gate (tolerance %.0f%% vs %s):\n", tolerance * 100,
              path);
  for (int i = 0; i < kNumProfiles; ++i) {
    if (results[i].ops == 0) continue;  // Profile not selected.
    double base = 0.0;
    if (!ParseBaselineEntry(text, kProfiles[i].name, &base)) {
      std::printf("  %-20s  no baseline entry — skipped\n", kProfiles[i].name);
      continue;
    }
    const double floor = base * (1.0 - tolerance);
    const bool ok = results[i].mops >= floor;
    std::printf("  %-20s  %7.4f Mops/s vs baseline %7.4f (floor %7.4f)  %s\n",
                kProfiles[i].name, results[i].mops, base, floor,
                ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "sim_speed: %d profile(s) regressed more than %.0f%%\n",
                 failures, tolerance * 100);
    return 1;
  }
  std::printf("  all profiles within tolerance\n");
  return 0;
}

}  // namespace
}  // namespace bandslim::bench

int main(int argc, char** argv) {
  using namespace bandslim;
  using namespace bandslim::bench;
  const SpeedArgs args = ParseSpeedArgs(argc, argv);

  std::printf("sim_speed: %" PRIu64 " ops/profile, %zu B values, %zu keys, "
              "best of %d rep(s)\n\n",
              args.ops, kValueSize, kNumKeys, args.reps);
  std::printf("%-20s  %10s  %10s  %10s  %10s\n", "profile", "wall_ms",
              "Mops/s", "virt_ms", "virt/wall");

  ProfileResult results[kNumProfiles];
  for (int i = 0; i < kNumProfiles; ++i) {
    if (!args.ProfileSelected(kProfiles[i].name)) continue;
    results[i] = RunProfile(kProfiles[i], args);
    std::printf("%-20s  %10.2f  %10.4f  %10.2f  %9.2fx\n", kProfiles[i].name,
                results[i].wall_ms, results[i].mops, results[i].virtual_ms,
                results[i].v2w);
    std::fflush(stdout);
  }

  if (!args.csv_path.empty()) {
    std::FILE* f = std::fopen(args.csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   args.csv_path.c_str());
      return 2;
    }
    std::fprintf(f, "profile,ops,wall_ms,mops_per_sec,virtual_ms,"
                    "virtual_to_wall\n");
    for (int i = 0; i < kNumProfiles; ++i) {
      if (results[i].ops == 0) continue;  // Profile not selected.
      std::fprintf(f, "%s,%" PRIu64 ",%.3f,%.4f,%.3f,%.3f\n",
                   kProfiles[i].name, results[i].ops, results[i].wall_ms,
                   results[i].mops, results[i].virtual_ms, results[i].v2w);
    }
    std::fclose(f);
  }

  if (!args.write_baseline.empty()) {
    WriteBaseline(args.write_baseline.c_str(), results, args.ops);
  }
  if (!args.check_path.empty()) {
    return CheckBaseline(args.check_path.c_str(), args.tolerance, results);
  }
  return 0;
}
