// Tenant SLO report: the "who is hurting whom" observability gate. Drives a
// 4-shard KvCluster carrying two tenants — "frontend" (the victim: small
// uniform GET/PUT mix over its own key space) and "batch" (metered on its
// own NVMe queue pair) — with the attribution plane (telemetry/attribution)
// folding per-tenant charges, key-space heat, and SLO burn rates into the
// fleet sample grid, prints the per-tenant report, and cross-checks:
//
//   1. Reconciliation — in EVERY fleet interval, the per-tenant device
//      deltas plus the untagged residual equal the fleet delta exactly, for
//      all four charged dimensions (commands, value bytes, PCIe H2D bytes,
//      NAND pages), and the deltas telescope to the summed final GetStats()
//      counters. The preload runs shard-direct, so the untagged bucket is
//      exercised for real, not vacuously zero.
//   2. Ledger — the plane's per-tenant op/shed counts equal what the blend
//      runner actually issued and had shed.
//   3. Noisy neighbor — a storm run (batch hammers one hot key owned by
//      shard 0 with 2 KiB PUTs far above its admission credits) must fire
//      slo_burn_fast_t1 (the hog's sheds burn its error budget >= 4x) and
//      hot_key_range (the hog's key range dominates the decayed heat), while
//      the victim's error budget drains versus the clean run (hog-induced
//      flush stalls on shard 0 push victim ops past their latency target).
//   4. Clean run silent — the same cluster (same tenants, credits, rules)
//      under a within-budget uniform blend raises zero alerts and sheds
//      nothing.
//   5. Determinism — the clean run executes twice; Prometheus, timeline
//      JSONL and slo.jsonl exports must be byte-identical.
//   6. Observation only — a clean run with attribution disabled must be
//      bit-identical to the enabled run in virtual time and every per-shard
//      counter.
//   7. Scrape — with --serve=PORT, GET /metrics and /slo.jsonl over the
//      wire must byte-match the in-process exports.
//
// Any violation prints CHECK FAILED and exits nonzero (ci/verify.sh gate).
// --export=PREFIX writes PREFIX.prom / .jsonl / .slo.jsonl. --serve=PORT
// (0 = ephemeral) starts the HTTP exporter; with --export, the resolved
// port is written to PREFIX.port and --serve-hold=MS keeps the server up
// until the port file is deleted (or MS elapses) for an external scraper.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/kv_cluster.h"
#include "telemetry/attribution/attribution.h"
#include "telemetry/fleet.h"
#include "telemetry/http_exporter.h"
#include "workload/runner.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

constexpr std::uint32_t kShards = 4;
constexpr std::size_t kVictim = 0;  // Tenant indices in the cluster roster.
constexpr std::size_t kHog = 1;

int failures = 0;

void Check(bool ok, const char* what, std::uint64_t got, std::uint64_t want) {
  if (ok) {
    std::printf("CHECK ok: %-52s %llu\n", what,
                static_cast<unsigned long long>(got));
  } else {
    std::fprintf(stderr, "CHECK FAILED: %s: got %llu want %llu\n", what,
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    ++failures;
  }
}

std::uint64_t SampleValue(const telemetry::FleetAggregator& agg,
                          const telemetry::Sample& s, const std::string& name) {
  const std::int64_t id = agg.series().Find(name);
  return id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id));
}

std::uint64_t SumSeries(const telemetry::FleetAggregator& agg,
                        const std::string& name) {
  std::uint64_t sum = 0;
  for (const telemetry::Sample& s : agg.samples()) {
    sum += SampleValue(agg, s, name);
  }
  return sum;
}

std::uint64_t MaxSeries(const telemetry::FleetAggregator& agg,
                        const std::string& name) {
  std::uint64_t max = 0;
  for (const telemetry::Sample& s : agg.samples()) {
    max = std::max(max, SampleValue(agg, s, name));
  }
  return max;
}

std::uint64_t AlertFires(const StoreSnapshot& snap, const char* rule) {
  for (const auto& alert : snap.alerts) {
    if (alert.rule == rule) return alert.fired;
  }
  return 0;
}

// The cluster every scenario runs on: identical tenants, credits, SLOs and
// rules — only the workload differs between the clean and the storm pass,
// so "the clean run is silent" is a statement about the rules, not about a
// defanged config.
cluster::ClusterConfig BlendOptions(bool attribution_enabled) {
  cluster::ClusterConfig cc;
  cc.num_shards = kShards;
  cc.shard = DefaultBenchOptions();
  // Small memtables: flush stalls land INSIDE the run, so a hog flooding a
  // shard with 2 KiB values degrades the victim's ops on that shard — the
  // cross-tenant interference the attribution plane exists to expose.
  cc.shard.lsm.memtable_limit_bytes = 64 << 10;
  cc.tenants.resize(2);
  cc.tenants[kVictim].name = "frontend";
  cc.tenants[kVictim].queue_id = 0;
  cc.tenants[kHog].name = "batch";
  cc.tenants[kHog].queue_id = 1;
  // 8 admitted commands per 2 ms window per shard = 4k admitted ops/s. The
  // clean batch blend issues an order of magnitude below that (even its
  // burstiest window stays under credit); the storm's closed-loop flood on
  // shard 0 runs far above it and sheds.
  cc.tenants[kHog].credits_per_window = 8;
  cc.qos_refill_window_ns = 2 * sim::kMillisecond;

  cc.fleet.enabled = true;
  cc.fleet.sample_interval_ns = 2 * sim::kMillisecond;
  cc.fleet.rules = {
      telemetry::attribution::TenantBurnRateFastRule(kHog),
      telemetry::attribution::TenantBurnRateSlowRule(kHog),
      telemetry::attribution::HotRangeRule(/*share_permille=*/300, /*n=*/2),
  };

  cc.attribution.enabled = attribution_enabled;
  cc.attribution.heat_fanout = 64;
  cc.attribution.slo.resize(2);
  // Victim: latency SLO on the router timeline. The target sits above the
  // bulk of the clean run's ops but below a hog-induced flush stall, so the
  // budget drains visibly faster when the neighbor misbehaves.
  cc.attribution.slo[kVictim].latency_target_ns = 200 * sim::kMicrosecond;
  cc.attribution.slo[kVictim].availability_target_permille = 990;
  // Hog: availability-only SLO — admission sheds are its bad ops.
  cc.attribution.slo[kHog].latency_target_ns = 0;
  cc.attribution.slo[kHog].availability_target_permille = 990;
  return cc;
}

// A key prefix whose first `num_keys` MixedKeyNames are ALL owned by shard
// 0 under this cluster's ring — the hot key set for the storm.
std::string FindShard0Prefix(const cluster::KvCluster& fleet,
                             std::uint64_t num_keys) {
  for (std::uint64_t j = 0;; ++j) {
    const std::string prefix = "h" + std::to_string(j) + ":";
    bool all_on_0 = true;
    for (std::uint64_t i = 0; i < num_keys && all_on_0; ++i) {
      all_on_0 = fleet.ShardOf(prefix + workload::MixedKeyName(i)) == 0;
    }
    if (all_on_0) return prefix;
  }
}

// The victim's traffic is IDENTICAL in both scenarios; only the neighbor
// changes. Clean: batch runs a modest uniform mix over its own key space,
// well under its admission credits. Storm: batch floods ONE shard-0-owned
// hot key with 2 KiB PUTs at the victim's own rate — a single heat bucket
// soaks up the hog's half of all touches.
workload::TenantBlendSpec BlendFor(const cluster::KvCluster& fleet,
                                   std::uint64_t ops, bool storm) {
  workload::TenantBlendSpec blend;
  blend.seed = 7;
  blend.tenants.resize(2);
  workload::MixedWorkloadSpec& victim = blend.tenants[kVictim];
  victim.name = "frontend";
  victim.ops = ops;
  victim.num_keys = 512;
  victim.value_size = 128;
  victim.get_permille = 500;
  victim.seed = 11;
  victim.key_prefix = "v:";
  workload::MixedWorkloadSpec& hog = blend.tenants[kHog];
  hog.name = "batch";
  hog.seed = 23;
  if (storm) {
    hog.ops = ops;
    hog.num_keys = 1;
    hog.value_size = 2048;
    hog.get_permille = 0;  // All PUTs: maximum bytes, maximum interference.
    hog.key_prefix = FindShard0Prefix(fleet, hog.num_keys);
  } else {
    hog.ops = ops / 8;  // Modest share: stays under the credit rate.
    hog.num_keys = 512;
    hog.value_size = 128;
    hog.get_permille = 500;
    hog.key_prefix = "b:";
  }
  return blend;
}

struct BlendRun {
  std::string prom, jsonl, slo;
  KvSsdStats stats;
  sim::Nanoseconds now_ns = 0;
  std::vector<std::map<std::string, std::uint64_t>> counters;  // Per shard.
  StoreSnapshot snap;
  workload::BlendRunResult result;
  telemetry::attribution::AttributionPlane::SloState victim_slo, hog_slo;
  std::uint64_t victim_bad = 0;
};

// Invariant 1: tenant deltas + untagged residual == fleet delta, per
// interval and per dimension, telescoping to the final summed counters.
void CheckReconciliation(cluster::KvCluster& fleet, const KvSsdStats& stats) {
  const telemetry::FleetAggregator& agg = fleet.fleet();
  struct Dim {
    const char* what;
    std::string fleet_delta;
    std::string part;  // tenant<i>.delta.<part> / untagged.delta.<part>
    std::uint64_t final_total;
  };
  const Dim dims[] = {
      {"dev.ops", "delta.ops", "dev.ops", stats.commands_submitted},
      {"value_bytes", "delta.value_bytes", "value_bytes",
       stats.value_bytes_written},
      {"pcie.h2d", "delta.pcie.h2d_bytes", "pcie.h2d_bytes",
       stats.pcie_h2d_bytes},
      {"nand.pages", "delta.nand.pages_programmed", "nand.pages_programmed",
       stats.nand_pages_programmed},
  };
  for (const Dim& dim : dims) {
    std::uint64_t skewed = 0, telescoped = 0;
    for (const telemetry::Sample& s : agg.samples()) {
      std::uint64_t attributed =
          SampleValue(agg, s, "untagged.delta." + dim.part);
      for (std::size_t t = 0; t < fleet.num_tenants(); ++t) {
        attributed += SampleValue(
            agg, s, "tenant" + std::to_string(t) + ".delta." + dim.part);
      }
      if (attributed != SampleValue(agg, s, dim.fleet_delta)) ++skewed;
      telescoped += attributed;
    }
    const std::string what_intervals =
        std::string("every interval attributes ") + dim.what + " exactly";
    Check(skewed == 0, what_intervals.c_str(), skewed, 0);
    const std::string what_total =
        std::string("attributed ") + dim.what + " telescopes to GetStats";
    Check(telescoped == dim.final_total, what_total.c_str(), telescoped,
          dim.final_total);
  }
  Check(agg.dropped_samples() == 0, "no fleet samples dropped",
        agg.dropped_samples(), 0);
}

void PrintTenantReport(const cluster::KvCluster& fleet,
                       const workload::BlendRunResult& result) {
  const auto& plane = fleet.attribution();
  std::printf("\n%-10s %8s %6s %10s %12s %10s %10s %8s\n", "tenant", "ops",
              "shed", "p99_us", "dev_bytes", "burn_fast", "burn_slow",
              "budget");
  // "budget" is lifetime error-budget spend in permille (1000 = exhausted).
  for (std::size_t t = 0; t < plane.num_tenants(); ++t) {
    const auto& c = plane.tenant_charges(t);
    const auto& s = plane.slo_state(t);
    std::printf("%-10s %8llu %6llu %10.1f %12llu %9.2fx %9.2fx %6llupm\n",
                plane.tenant_name(t).c_str(),
                static_cast<unsigned long long>(c.ops),
                static_cast<unsigned long long>(c.shed_ops),
                static_cast<double>(
                    plane.tenant_latency(t).QuantilePermille(990)) /
                    1e3,
                static_cast<unsigned long long>(c.pcie_h2d_bytes),
                static_cast<double>(s.burn_fast_milli) / 1e3,
                static_cast<double>(s.burn_slow_milli) / 1e3,
                static_cast<unsigned long long>(s.budget_spent_permille));
    (void)result;
  }
  const auto& u = plane.untagged();
  std::printf("%-10s %8s %6s %10s %12llu\n\n", "untagged", "-", "-", "-",
              static_cast<unsigned long long>(u.pcie_h2d_bytes));
}

// One full campaign: open the blend cluster, preload shard-direct
// (untagged), run the interleaved blend, finalize, collect everything.
BlendRun RunBlend(std::uint64_t ops, bool storm, bool enabled,
                  telemetry::HttpExporter* server = nullptr,
                  bool print = false) {
  auto fleet = cluster::KvCluster::Open(BlendOptions(enabled)).value();
  if (server != nullptr) fleet->fleet().SetSink(server);
  const workload::TenantBlendSpec blend = BlendFor(*fleet, ops, storm);

  BlendRun out;
  const Status preloaded = workload::PreloadTenantBlend(*fleet, blend);
  if (!preloaded.ok()) {
    std::fprintf(stderr, "CHECK FAILED: preload: %s\n",
                 preloaded.ToString().c_str());
    ++failures;
    return out;
  }
  out.result = workload::RunTenantBlendWorkload(*fleet, blend, "blend");
  if (out.result.workload.find("FAILED") != std::string::npos) {
    std::fprintf(stderr, "CHECK FAILED: blend: %s\n",
                 out.result.workload.c_str());
    ++failures;
  }
  if (!fleet->Flush().ok()) {
    std::fprintf(stderr, "CHECK FAILED: final flush rejected\n");
    ++failures;
  }
  fleet->fleet().Finalize();

  out.stats = fleet->GetStats();
  out.now_ns = fleet->Now();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    out.counters.push_back(fleet->shard(s).metrics().SnapshotCounters());
  }
  out.snap = fleet->Inspect();
  if (enabled) {
    const auto& plane = fleet->attribution();
    out.prom = fleet->fleet().ToPrometheusText();
    out.jsonl = fleet->fleet().ToJsonl();
    out.slo = plane.SloJsonl();
    out.victim_slo = plane.slo_state(kVictim);
    out.hog_slo = plane.slo_state(kHog);
    out.victim_bad = plane.tenant_charges(kVictim).bad_ops;
    CheckReconciliation(*fleet, out.stats);
    // Invariant 2: the plane's ledger matches what the runner issued.
    for (std::size_t t = 0; t < blend.tenants.size(); ++t) {
      const auto& charges = plane.tenant_charges(t);
      const std::string who = "ledger ops match runner (" +
                              plane.tenant_name(t) + ")";
      Check(charges.ops == out.result.tenants[t].ops, who.c_str(),
            charges.ops, out.result.tenants[t].ops);
      const std::string shed_who = "ledger sheds match runner (" +
                                   plane.tenant_name(t) + ")";
      Check(charges.shed_ops == out.result.tenants[t].shed, shed_who.c_str(),
            charges.shed_ops, out.result.tenants[t].shed);
    }
    if (print) PrintTenantReport(*fleet, out.result);
  }

  // Invariant 7: the wire documents equal the in-process exports.
  if (server != nullptr) {
    const auto metrics = telemetry::HttpGet(server->port(), "/metrics");
    Check(metrics.ok() && metrics.value() == out.prom,
          "GET /metrics byte-matches ToPrometheusText",
          metrics.ok() ? metrics.value().size() : 0, out.prom.size());
    const auto slo = telemetry::HttpGet(server->port(), "/slo.jsonl");
    Check(slo.ok() && slo.value() == out.slo,
          "GET /slo.jsonl byte-matches SloJsonl",
          slo.ok() ? slo.value().size() : 0, out.slo.size());
  }
  return out;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "CHECK FAILED: cannot write %s\n", path.c_str());
    ++failures;
    return;
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/3000);
  std::string export_prefix;
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::uint64_t serve_hold_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--export=", 9) == 0) {
      export_prefix = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve = true;
      serve_port =
          static_cast<std::uint16_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--serve-hold=", 13) == 0) {
      serve_hold_ms = std::strtoull(argv[i] + 13, nullptr, 10);
    }
  }
  PrintPlatform("Tenant SLO report: per-tenant attribution over virtual time",
                BlendOptions(true).shard, args);
  std::printf("  tenants : frontend (victim, 200 us / 99.0%% SLO) + batch "
              "(8 credits / 2 ms window)\n");
  std::printf("  rules   : {slo_burn_fast_t1, slo_burn_slow_t1, "
              "hot_key_range >= 30%%}\n\n");

  telemetry::HttpExporter server;
  if (serve) {
    const Status started = server.Start(serve_port);
    if (!started.ok()) {
      std::fprintf(stderr, "CHECK FAILED: --serve: %s\n",
                   started.message().c_str());
      return 1;
    }
    std::printf("serving tenant-labeled /metrics on http://127.0.0.1:%u\n",
                server.port());
  }

  std::printf("--- clean blend (pass 1%s) ---\n",
              serve ? ", live scrape attached" : "");
  BlendRun a = RunBlend(args.ops, /*storm=*/false, /*enabled=*/true,
                        serve ? &server : nullptr, /*print=*/true);
  std::uint64_t clean_fires = 0;
  for (const auto& alert : a.snap.alerts) clean_fires += alert.fired;
  Check(clean_fires == 0, "clean blend raises no alerts", clean_fires, 0);
  std::uint64_t clean_sheds = 0;
  for (const auto& t : a.result.tenants) clean_sheds += t.shed;
  Check(clean_sheds == 0, "clean blend sheds nothing", clean_sheds, 0);

  std::printf("--- clean blend (pass 2: determinism, no server) ---\n");
  BlendRun b = RunBlend(args.ops, /*storm=*/false, /*enabled=*/true);
  Check(a.prom == b.prom, "double-run Prometheus byte-identical",
        a.prom.size(), b.prom.size());
  Check(a.jsonl == b.jsonl, "double-run timeline JSONL byte-identical",
        a.jsonl.size(), b.jsonl.size());
  Check(a.slo == b.slo, "double-run slo.jsonl byte-identical", a.slo.size(),
        b.slo.size());
  Check(a.prom.find("bandslim_tenant_ops_total{tenant=\"batch\"}") !=
            std::string::npos,
        "scrape carries tenant-labeled families", 1, 1);
  Check(a.slo.find("\"budget_spent_permille\":") != std::string::npos,
        "slo.jsonl carries the budget ledger", 1, 1);

  std::printf("--- clean blend (pass 3: attribution disabled) ---\n");
  BlendRun c = RunBlend(args.ops, /*storm=*/false, /*enabled=*/false);
  Check(c.now_ns == b.now_ns, "disabled attribution: virtual time identical",
        static_cast<std::uint64_t>(c.now_ns),
        static_cast<std::uint64_t>(b.now_ns));
  std::uint64_t counter_mismatches = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    if (c.counters[s] != b.counters[s]) ++counter_mismatches;
  }
  Check(counter_mismatches == 0,
        "disabled attribution: shard counters identical", counter_mismatches,
        0);
  Check(c.slo.empty(), "disabled attribution exports no slo.jsonl",
        c.slo.size(), 0);

  std::printf("--- noisy-neighbor storm (batch floods a hot shard-0 key) "
              "---\n");
  BlendRun h = RunBlend(args.ops, /*storm=*/true, /*enabled=*/true, nullptr,
                        /*print=*/true);
  std::uint64_t hog_sheds = h.result.tenants[kHog].shed;
  Check(hog_sheds > 0, "storm sheds the hog's overdraft", hog_sheds, 1);
  Check(AlertFires(h.snap, "slo_burn_fast_t1") >= 1,
        "storm fires the hog's fast burn-rate alert",
        AlertFires(h.snap, "slo_burn_fast_t1"), 1);
  Check(AlertFires(h.snap, "hot_key_range") >= 1,
        "storm fires the hot key-range alert",
        AlertFires(h.snap, "hot_key_range"), 1);
  Check(h.victim_bad > a.victim_bad,
        "storm drains the victim's error budget", h.victim_bad,
        a.victim_bad + 1);
  Check(h.victim_slo.budget_spent_permille > a.victim_slo.budget_spent_permille,
        "victim budget spend exceeds the clean run",
        h.victim_slo.budget_spent_permille,
        a.victim_slo.budget_spent_permille + 1);

  if (!export_prefix.empty()) {
    WriteFile(export_prefix + ".prom", a.prom);
    WriteFile(export_prefix + ".jsonl", a.jsonl);
    WriteFile(export_prefix + ".slo.jsonl", a.slo);
    std::printf("exported %s.{prom,jsonl,slo.jsonl}\n", export_prefix.c_str());
  }

  // Hold the server up for an external scraper: publish the resolved port,
  // then wait (wall-clock; virtual time is finished) until the scraper
  // deletes the port file or the hold expires.
  if (serve && serve_hold_ms > 0 && !export_prefix.empty()) {
    const std::string port_path = export_prefix + ".port";
    WriteFile(port_path, std::to_string(server.port()) + "\n");
    std::printf("holding server up to %llu ms (delete %s to release)\n",
                static_cast<unsigned long long>(serve_hold_ms),
                port_path.c_str());
    std::fflush(stdout);
    std::uint64_t waited_ms = 0;
    while (waited_ms < serve_hold_ms &&
           ::access(port_path.c_str(), F_OK) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      waited_ms += 50;
    }
    std::remove(port_path.c_str());
  }
  server.Stop();

  if (failures != 0) {
    std::fprintf(stderr, "\ntenant_slo_report: %d check(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("\ntenant_slo_report: all checks passed\n");
  return 0;
}
