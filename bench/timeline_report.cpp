// Timeline report: the paper's rates-over-time view, produced from telemetry
// alone. Replays a fig08/fig11-style PUT workload (piggyback transfer, All
// packing, NAND on) whose value size shifts mid-run, so throughput, PCIe
// traffic, and the TAF/WAF curves visibly change shape, then prints the
// timeline and cross-checks every derived series against the device's final
// counters:
//
//   1. Reconciliation — per-interval deltas telescoped over all samples must
//      equal GetStats() exactly (ops, H2D/D2H bytes, NAND pages, value
//      bytes), and the per-interval latency-histogram deltas must telescope
//      to the lifetime histogram (count, sum, and the terminal cumulative
//      hist.* series).
//   2. Determinism — the whole run is executed twice; the Prometheus, JSONL
//      and CSV exports must be byte-identical. The live scrape server is
//      attached to pass 1 only, so the byte-compare doubles as proof the
//      server cannot perturb simulated outcomes.
//   3. Watchdog — zero alerts on the clean run (including the LSM rules);
//      with --faults (a command-drop storm) the retry-storm rule must fire,
//      and the compaction storm (a deliberately undersized LSM config) must
//      fire compaction-debt-budget, level-0-pileup, and memtable-stall.
//   4. Scrape — with --serve=PORT, GET /metrics and /timeline.jsonl over the
//      wire must byte-match the in-process exports at the same sample seq.
//
// Any violation prints CHECK FAILED and exits nonzero, making this bench a
// CI gate (ci/verify.sh). --export=PREFIX writes PREFIX.prom / .jsonl / .csv.
// --serve=PORT (0 = ephemeral) starts the HTTP exporter; with --export, the
// resolved port is written to PREFIX.port and --serve-hold=MS keeps the
// server up until the port file is deleted (or MS elapses), so an external
// scraper (curl/promtool in CI) can hit the live endpoint.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <thread>

#include "bench_util.h"
#include "telemetry/export.h"
#include "telemetry/http_exporter.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

int failures = 0;

void Check(bool ok, const char* what, std::uint64_t got, std::uint64_t want) {
  if (ok) {
    std::printf("CHECK ok: %-44s %llu\n", what,
                static_cast<unsigned long long>(got));
  } else {
    std::fprintf(stderr, "CHECK FAILED: %s: got %llu want %llu\n", what,
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    ++failures;
  }
}

std::uint64_t SumSeries(const telemetry::Sampler& sampler,
                        const std::string& name) {
  const std::int64_t id = sampler.series().Find(name);
  if (id < 0) return 0;
  std::uint64_t sum = 0;
  for (const telemetry::Sample& s : sampler.samples()) {
    sum += s.Value(static_cast<std::uint32_t>(id));
  }
  return sum;
}

std::uint64_t MaxSeries(const telemetry::Sampler& sampler,
                        const std::string& name) {
  const std::int64_t id = sampler.series().Find(name);
  if (id < 0) return 0;
  std::uint64_t max = 0;
  for (const telemetry::Sample& s : sampler.samples()) {
    max = std::max(max, s.Value(static_cast<std::uint32_t>(id)));
  }
  return max;
}

std::uint64_t AlertFires(const DeviceSnapshot& snap, const char* rule) {
  for (const auto& alert : snap.alerts) {
    if (alert.rule == rule) return alert.fired;
  }
  return 0;
}

// Per-channel busy permille columns are the heatmap's raw data (the bench
// geometry has 4 channels).
const std::vector<std::string> kCsvSeries = {
    "delta.ops",
    "rate.ops_per_sec_milli",
    "rate.pcie.h2d_bytes_per_sec",
    "rate.taf_milli",
    "rate.waf_milli",
    "total.taf_milli",
    "gauge.ftl.free_blocks",
    "gauge.buffer.resident_bytes",
    "gauge.lsm.memtable_bytes",
    "gauge.lsm.compaction_debt_bytes",
    "trace.op.put.p50",
    "trace.op.put.p99",
    "gauge.nand.ch0.busy_permille",
    "gauge.nand.ch1.busy_permille",
    "gauge.nand.ch2.busy_permille",
    "gauge.nand.ch3.busy_permille",
};

struct RunOutput {
  std::string prom, jsonl, csv;
  KvSsdStats stats;
  std::uint64_t alerts_fired = 0;
  std::uint64_t timeout_events = 0;
};

KvSsdOptions ReportOptions(bool faults) {
  KvSsdOptions o = DefaultBenchOptions();
  o.driver.method = driver::TransferMethod::kPiggyback;
  o.buffer.policy = buffer::PackingPolicy::kAll;
  o.trace.enabled = true;  // Feeds the per-op latency percentile series.
  o.telemetry.enabled = true;
  o.telemetry.sample_interval_ns = 50 * sim::kMicrosecond;
  // Clean runs must stay silent on every rule; the fault storm trips the
  // retry rule on the first interval containing a resubmission, and the
  // compaction storm (separate, undersized config) trips the LSM rules.
  o.telemetry.rules = {
      telemetry::RetryStormRule(/*retries=*/1, /*n=*/1),
      telemetry::ZeroOpStallRule(/*n=*/10),
      telemetry::CompactionDebtRule(/*budget_bytes=*/2048, /*n=*/1),
      telemetry::L0PileupRule(/*tables=*/4, /*n=*/1),
      telemetry::MemtableStallRule(/*stalls=*/1, /*n=*/1),
  };
  if (faults) o.fault.command_drop_rate = 0.1;
  return o;
}

// The workload: ops/2 small values (fig08's fine-grained regime), then ops/2
// at 2 KiB (approaching the crossover), so every over-time curve has a step.
// `server` non-null attaches the live scrape endpoint to this run and
// self-scrapes it afterwards.
RunOutput RunTimeline(std::uint64_t ops, bool faults,
                      telemetry::HttpExporter* server = nullptr) {
  auto ssd = KvSsd::Open(ReportOptions(faults)).value();
  if (server != nullptr) ssd->Hooks().sampler->SetSink(server);
  std::uint64_t put_errors = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::size_t size = i < ops / 2 ? 64 : 2048;
    Bytes value = workload::MakeValue(size, 11, i);
    // Under the drop storm a command can exhaust its retries; that surfaced
    // timeout IS the scenario the watchdog watches, not a harness failure.
    if (!ssd->Put("tl" + std::to_string(i), ByteSpan(value)).ok()) {
      ++put_errors;
    }
  }
  const bool flushed = ssd->Flush().ok();
  if (!faults && (put_errors != 0 || !flushed)) {
    std::fprintf(stderr, "CHECK FAILED: clean run rejected %llu PUT(s)%s\n",
                 static_cast<unsigned long long>(put_errors),
                 flushed ? "" : " and the flush");
    ++failures;
  }
  if (faults && put_errors != 0) {
    std::printf("fault storm surfaced %llu host-visible PUT timeout(s)\n",
                static_cast<unsigned long long>(put_errors));
  }
  ssd->Hooks().sampler->Finalize();

  RunOutput out;
  const telemetry::Sampler& t = ssd->telemetry();
  out.prom = telemetry::ToPrometheusText(t);
  out.jsonl = telemetry::ToJsonl(t);
  out.csv = telemetry::ToTimeSeriesCsv(t, kCsvSeries);
  out.stats = ssd->GetStats();
  out.timeout_events = t.event_log().count(telemetry::EventType::kTimeout);
  for (const auto& alert : ssd->InspectDevice().alerts) {
    out.alerts_fired += alert.fired;
  }

  // Reconciliation: deltas telescope to the final counters (the closing
  // sample is stamped at run end, so nothing falls off either edge).
  Check(t.dropped_samples() == 0, "no samples dropped", t.dropped_samples(),
        0);
  Check(SumSeries(t, "delta.ops") == out.stats.commands_submitted,
        "sum(delta.ops) == commands_submitted",
        SumSeries(t, "delta.ops"), out.stats.commands_submitted);
  Check(SumSeries(t, "delta.pcie.h2d_bytes") == out.stats.pcie_h2d_bytes,
        "sum(delta.pcie.h2d_bytes) == pcie_h2d_bytes",
        SumSeries(t, "delta.pcie.h2d_bytes"), out.stats.pcie_h2d_bytes);
  Check(SumSeries(t, "delta.pcie.d2h_bytes") == out.stats.pcie_d2h_bytes,
        "sum(delta.pcie.d2h_bytes) == pcie_d2h_bytes",
        SumSeries(t, "delta.pcie.d2h_bytes"), out.stats.pcie_d2h_bytes);
  Check(SumSeries(t, "delta.nand.pages_programmed") ==
            out.stats.nand_pages_programmed,
        "sum(delta.nand.pages) == nand_pages_programmed",
        SumSeries(t, "delta.nand.pages_programmed"),
        out.stats.nand_pages_programmed);
  Check(SumSeries(t, "delta.value_bytes") == out.stats.value_bytes_written,
        "sum(delta.value_bytes) == value_bytes_written",
        SumSeries(t, "delta.value_bytes"), out.stats.value_bytes_written);
  Check(t.Latest("pcie.h2d_bytes") == out.stats.pcie_h2d_bytes,
        "last sample cumulative == pcie_h2d_bytes",
        t.Latest("pcie.h2d_bytes"), out.stats.pcie_h2d_bytes);

  // Percentile pipeline reconciliation: the per-interval histogram deltas
  // must telescope to the lifetime PUT-latency histogram, and the cumulative
  // hist.* series must land on the same lifetime count.
  const auto hists = ssd->metrics().SnapshotHistograms();
  const auto put_hist = hists.find("trace.op.put.latency_ns");
  if (put_hist == hists.end()) {
    std::fprintf(stderr,
                 "CHECK FAILED: trace.op.put.latency_ns histogram missing\n");
    ++failures;
  } else {
    Check(SumSeries(t, "delta.trace.op.put.count") == put_hist->second.count,
          "sum(delta.put.count) == lifetime hist count",
          SumSeries(t, "delta.trace.op.put.count"), put_hist->second.count);
    Check(SumSeries(t, "delta.trace.op.put.sum") == put_hist->second.sum,
          "sum(delta.put.sum) == lifetime hist sum",
          SumSeries(t, "delta.trace.op.put.sum"), put_hist->second.sum);
    Check(t.Latest("hist.trace.op.put.count") == put_hist->second.count,
          "last hist.put.count == lifetime hist count",
          t.Latest("hist.trace.op.put.count"), put_hist->second.count);
    // The closing interval can contain zero PUTs (the trailing Flush), in
    // which case its percentile is legitimately 0 — assert over the run.
    Check(MaxSeries(t, "trace.op.put.p50") > 0, "some interval put p50 nonzero",
          MaxSeries(t, "trace.op.put.p50"), 1);
  }

  // Self-scrape: the bytes served over the wire at the final published
  // sample must equal the file export taken at the same point.
  if (server != nullptr) {
    const auto metrics = telemetry::HttpGet(server->port(), "/metrics");
    Check(metrics.ok() && metrics.value() == out.prom,
          "GET /metrics byte-matches ToPrometheusText",
          metrics.ok() ? metrics.value().size() : 0, out.prom.size());
    const auto jsonl = telemetry::HttpGet(server->port(), "/timeline.jsonl");
    Check(jsonl.ok() && jsonl.value() == out.jsonl,
          "GET /timeline.jsonl byte-matches ToJsonl",
          jsonl.ok() ? jsonl.value().size() : 0, out.jsonl.size());
    const auto health = telemetry::HttpGet(server->port(), "/healthz");
    Check(health.ok() &&
              health.value().find("\"status\":\"ok\"") != std::string::npos,
          "GET /healthz reports ok", health.ok() ? 1 : 0, 1);
    const auto missing = telemetry::HttpGet(server->port(), "/nope");
    Check(!missing.ok(), "GET /nope returns an HTTP error", missing.ok(), 0);
    Check(server->requests_served() >= 4, "server counted the scrapes",
          server->requests_served(), 4);
  }

  // The timeline table, printed from the samples alone.
  if (!faults) {
    const auto& samples = t.samples();
    std::printf("\n%9s %9s %10s %8s %8s %9s %9s %10s\n", "t_ms", "kops/s",
                "H2D MB/s", "TAF", "WAF", "p50 us", "p99 us", "free_blk");
    const std::size_t stride = std::max<std::size_t>(1, samples.size() / 12);
    for (std::size_t i = 0; i < samples.size();
         i = (i + stride < samples.size() || i + 1 == samples.size())
                 ? i + stride
                 : samples.size() - 1) {
      const telemetry::Sample& s = samples[i];
      const auto val = [&](const char* name) -> std::uint64_t {
        const std::int64_t id = t.series().Find(name);
        return id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id));
      };
      std::printf("%9.2f %9.1f %10.1f %8.2f %8.2f %9.2f %9.2f %10llu\n",
                  static_cast<double>(s.t_ns) / 1e6,
                  static_cast<double>(val("rate.ops_per_sec_milli")) / 1e6,
                  static_cast<double>(val("rate.pcie.h2d_bytes_per_sec")) /
                      1e6,
                  static_cast<double>(val("rate.taf_milli")) / 1e3,
                  static_cast<double>(val("rate.waf_milli")) / 1e3,
                  static_cast<double>(val("trace.op.put.p50")) / 1e3,
                  static_cast<double>(val("trace.op.put.p99")) / 1e3,
                  static_cast<unsigned long long>(
                      val("gauge.ftl.free_blocks")));
      if (i + 1 == samples.size()) break;
    }
    std::printf("samples=%zu events=%llu\n\n", samples.size(),
                static_cast<unsigned long long>(
                    t.event_log().total_emitted()));
  }
  return out;
}

// Compaction storm: an LSM sized far below the workload (tiny MemTable, L0
// trigger past 100 runs, L1 target of 1 KiB) so flushes stall behind a full
// L0, the eventual L0 compaction floods L1 well past its target, and the
// 64-pass MaybeCompact budget leaves visible compaction debt at sample
// points. All three LSM watchdog rules must fire, with the compaction and
// stall events in the log to explain them.
void RunCompactionStorm(std::uint64_t ops) {
  KvSsdOptions o = ReportOptions(/*faults=*/false);
  o.lsm.memtable_limit_bytes = 512;
  o.lsm.l0_compaction_trigger = 128;
  o.lsm.level_base_bytes = 1024;
  // Encoded reference entries are ~20 B, so a 128-run L0 flood splits into
  // ~100 output tables — more than one 64-pass MaybeCompact can drain, which
  // is what leaves compaction debt standing at sample points.
  o.lsm.sstable_target_bytes = 128;
  o.lsm.max_levels = 3;
  auto ssd = KvSsd::Open(o).value();
  for (std::uint64_t i = 0; i < ops; ++i) {
    Bytes value = workload::MakeValue(64, 13, i);
    if (!ssd->Put("cs" + std::to_string(i), ByteSpan(value)).ok()) {
      std::fprintf(stderr, "CHECK FAILED: storm PUT %llu rejected\n",
                   static_cast<unsigned long long>(i));
      ++failures;
      return;
    }
  }
  if (!ssd->Flush().ok()) {
    std::fprintf(stderr, "CHECK FAILED: storm flush rejected\n");
    ++failures;
  }
  ssd->Hooks().sampler->Finalize();

  const DeviceSnapshot snap = ssd->InspectDevice();
  const telemetry::Sampler& t = ssd->telemetry();
  Check(AlertFires(snap, "compaction_debt_over_budget") >= 1,
        "storm fires compaction-debt-budget rule",
        AlertFires(snap, "compaction_debt_over_budget"), 1);
  Check(AlertFires(snap, "l0_pileup") >= 1, "storm fires level-0-pileup rule",
        AlertFires(snap, "l0_pileup"), 1);
  Check(AlertFires(snap, "memtable_stall") >= 1,
        "storm fires memtable-stall rule", AlertFires(snap, "memtable_stall"),
        1);
  Check(t.event_log().count(telemetry::EventType::kCompactionStart) >= 1,
        "compaction_start events logged",
        t.event_log().count(telemetry::EventType::kCompactionStart), 1);
  Check(t.event_log().count(telemetry::EventType::kCompactionEnd) >= 1,
        "compaction_end events logged",
        t.event_log().count(telemetry::EventType::kCompactionEnd), 1);
  Check(t.event_log().count(telemetry::EventType::kMemtableStall) >= 1,
        "memtable_stall events logged",
        t.event_log().count(telemetry::EventType::kMemtableStall), 1);
  // Reconciliation against introspection: the closing sample's L0 gauge is
  // the same table count Inspect() reports, and the telescoped stall deltas
  // equal the stall events (one event per stall).
  Check(!snap.lsm_levels.empty() &&
            t.Latest("gauge.lsm.l0.tables") == snap.lsm_levels[0].tables,
        "last gauge.lsm.l0.tables == Inspect()",
        t.Latest("gauge.lsm.l0.tables"),
        snap.lsm_levels.empty() ? 0 : snap.lsm_levels[0].tables);
  Check(SumSeries(t, "delta.lsm.memtable_stalls") ==
            t.event_log().count(telemetry::EventType::kMemtableStall),
        "sum(delta.memtable_stalls) == stall events",
        SumSeries(t, "delta.lsm.memtable_stalls"),
        t.event_log().count(telemetry::EventType::kMemtableStall));
}

// ----------------------- closed-loop control storm -------------------------
// The --control section: the same deliberately undersized LSM, run (a)
// uncontrolled, (b) with the null policy (controller built, every knob off —
// must be byte-identical to (a)), and (c) with the storm policy (paced
// compaction + flush admission + GC pacing + SQ credits). Uncontrolled, the
// L0 trigger of 2 makes almost every flush a stall and the inline merge
// cascade spikes per-interval p99; controlled, the per-tick CompactStep
// keeps L0 drained and flush deferral spaces the flushes out, so stalls
// never persist and the worst interval stays bounded.

std::vector<std::uint64_t> SeriesVec(const telemetry::Sampler& t,
                                     const std::string& name) {
  const std::int64_t id = t.series().Find(name);
  std::vector<std::uint64_t> out;
  out.reserve(t.samples().size());
  for (const telemetry::Sample& s : t.samples()) {
    out.push_back(id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id)));
  }
  return out;
}

std::uint64_t MaxStreak(const std::vector<std::uint64_t>& v) {
  std::uint64_t best = 0, run = 0;
  for (std::uint64_t x : v) {
    run = x > 0 ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

KvSsdOptions ControlStormOptions() {
  KvSsdOptions o = ReportOptions(/*faults=*/false);
  o.lsm.memtable_limit_bytes = 512;
  // Trigger 2: a flush landing on ANY standing L0 run counts as a stall, so
  // the uncontrolled run stalls nearly every flush — the regime the
  // controller has to dig the device out of.
  o.lsm.l0_compaction_trigger = 2;
  o.lsm.level_base_bytes = 1024;
  o.lsm.sstable_target_bytes = 128;
  o.lsm.max_levels = 3;
  o.telemetry.rules.push_back(
      telemetry::FreeBlocksLowRule(/*blocks=*/4, /*n=*/1));
  return o;
}

control::ControlPolicy StormControlPolicy() {
  control::ControlPolicy p;
  p.enabled = true;
  p.gc.enabled = true;  // Defaults: pace below 8 free, escalate at 5.
  p.flush.enabled = true;
  p.flush.l0_pace_runs = 1;  // Drain every standing L0 run each tick.
  p.admission.enabled = true;
  p.admission.credits_per_tick = 256;  // Sheds only under gross overload.
  return p;
}

struct StormRun {
  std::string prom, jsonl, csv;
  std::vector<std::uint64_t> t_ns, p50, p95, p99, stalls;
  std::uint64_t max_stall_streak = 0;
  std::uint64_t worst_p99 = 0;
  std::uint64_t free_low_fires = 0;
  std::uint64_t stall_fires = 0;
  std::uint64_t busy_sheds = 0;
  std::uint64_t actuation_count = 0;
  std::string actuations_csv;
  // t_ns -> actuations recorded at that control tick.
  std::map<std::uint64_t, std::uint64_t> actuations_at;
};

StormRun RunControlStorm(std::uint64_t ops,
                         const control::ControlPolicy& policy) {
  KvSsdOptions o = ControlStormOptions();
  o.control = policy;
  auto ssd = KvSsd::Open(o).value();
  for (std::uint64_t i = 0; i < ops; ++i) {
    Bytes value = workload::MakeValue(64, 13, i);
    Status st = ssd->Put("st" + std::to_string(i), ByteSpan(value));
    // Admission control may shed under overload; kBusy is retryable by
    // contract (the shed already charged the backoff wait).
    while (st.IsBusy()) {
      st = ssd->Put("st" + std::to_string(i), ByteSpan(value));
    }
    if (!st.ok()) {
      std::fprintf(stderr, "CHECK FAILED: control storm PUT %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   st.ToString().c_str());
      ++failures;
      break;
    }
  }
  if (!ssd->Flush().ok()) {
    std::fprintf(stderr, "CHECK FAILED: control storm flush rejected\n");
    ++failures;
  }
  ssd->Hooks().sampler->Finalize();

  StormRun run;
  const telemetry::Sampler& t = ssd->telemetry();
  run.prom = telemetry::ToPrometheusText(t);
  run.jsonl = telemetry::ToJsonl(t);
  run.csv = telemetry::ToTimeSeriesCsv(t, kCsvSeries);
  for (const telemetry::Sample& s : t.samples()) run.t_ns.push_back(s.t_ns);
  run.p50 = SeriesVec(t, "trace.op.put.p50");
  run.p95 = SeriesVec(t, "trace.op.put.p95");
  run.p99 = SeriesVec(t, "trace.op.put.p99");
  run.stalls = SeriesVec(t, "delta.lsm.memtable_stalls");
  run.max_stall_streak = MaxStreak(run.stalls);
  run.worst_p99 = MaxSeries(t, "trace.op.put.p99");
  const DeviceSnapshot snap = ssd->InspectDevice();
  run.free_low_fires = AlertFires(snap, "free_blocks_low");
  run.stall_fires = AlertFires(snap, "memtable_stall");
  run.busy_sheds = ssd->Hooks().transport->busy_rejections();
  if (ssd->control() != nullptr) {
    run.actuation_count = ssd->control()->actuation_count();
    run.actuations_csv = ssd->control()->ActuationsCsv();
    for (const auto& rec : ssd->control()->actuations()) {
      ++run.actuations_at[static_cast<std::uint64_t>(rec.t_ns)];
    }
  }
  return run;
}

// Side-by-side per-interval percentiles (aligned by sample index; each side
// keeps its own timestamps — the runs advance virtual time differently).
std::string SideBySideCsv(const StormRun& unc, const StormRun& ctl) {
  std::string out =
      "idx,unc_t_ns,unc_p50,unc_p95,unc_p99,unc_stalls,"
      "ctl_t_ns,ctl_p50,ctl_p95,ctl_p99,ctl_stalls,ctl_actuations\n";
  const std::size_t rows = std::max(unc.t_ns.size(), ctl.t_ns.size());
  const auto cell = [](const std::vector<std::uint64_t>& v, std::size_t i) {
    return i < v.size() ? std::to_string(v[i]) : std::string();
  };
  for (std::size_t i = 0; i < rows; ++i) {
    out += std::to_string(i);
    for (const auto* v : {&unc.t_ns, &unc.p50, &unc.p95, &unc.p99,
                          &unc.stalls, &ctl.t_ns, &ctl.p50, &ctl.p95,
                          &ctl.p99, &ctl.stalls}) {
      out += ',';
      out += cell(*v, i);
    }
    out += ',';
    if (i < ctl.t_ns.size()) {
      const auto it = ctl.actuations_at.find(ctl.t_ns[i]);
      out += std::to_string(it == ctl.actuations_at.end() ? 0 : it->second);
    }
    out += '\n';
  }
  return out;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "CHECK FAILED: cannot write %s\n", path.c_str());
    ++failures;
    return;
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/20000);
  std::string export_prefix;
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::uint64_t serve_hold_ms = 0;
  bool control_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--export=", 9) == 0) {
      export_prefix = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve = true;
      serve_port =
          static_cast<std::uint16_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--serve-hold=", 13) == 0) {
      serve_hold_ms = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strcmp(argv[i], "--control") == 0) {
      control_mode = true;
    }
  }
  PrintPlatform("Timeline report: telemetry over virtual time",
                ReportOptions(false), args);

  telemetry::HttpExporter server;
  if (serve) {
    const Status started = server.Start(serve_port);
    if (!started.ok()) {
      std::fprintf(stderr, "CHECK FAILED: --serve: %s\n",
                   started.message().c_str());
      return 1;
    }
    std::printf("serving /metrics on http://127.0.0.1:%u\n", server.port());
  }

  std::printf("\n--- clean run (pass 1%s) ---\n",
              serve ? ", live scrape attached" : "");
  RunOutput a = RunTimeline(args.ops, /*faults=*/false,
                            serve ? &server : nullptr);
  std::printf("--- clean run (pass 2: determinism, no server) ---\n");
  RunOutput b = RunTimeline(args.ops, /*faults=*/false);
  Check(a.prom == b.prom, "double-run Prometheus byte-identical",
        a.prom.size(), b.prom.size());
  Check(a.jsonl == b.jsonl, "double-run JSONL byte-identical",
        a.jsonl.size(), b.jsonl.size());
  Check(a.csv == b.csv, "double-run CSV byte-identical", a.csv.size(),
        b.csv.size());
  Check(a.alerts_fired == 0, "clean run raises no alerts", a.alerts_fired, 0);

  std::printf("--- fault storm (command drops) ---\n");
  RunOutput f = RunTimeline(args.ops / 4, /*faults=*/true);
  Check(f.alerts_fired >= 1, "fault storm fires the retry-storm rule",
        f.alerts_fired, 1);
  Check(f.timeout_events >= 1, "timeout events logged under faults",
        f.timeout_events, 1);

  std::printf("--- compaction storm (undersized LSM) ---\n");
  RunCompactionStorm(std::max<std::uint64_t>(args.ops, 2000));

  if (control_mode) {
    const std::uint64_t storm_ops = std::max<std::uint64_t>(args.ops, 2000);
    std::printf("\n--- control storm: uncontrolled baseline ---\n");
    StormRun unc = RunControlStorm(storm_ops, control::ControlPolicy{});

    std::printf("--- control storm: null policy (every knob off) ---\n");
    control::ControlPolicy null_policy;
    null_policy.enabled = true;  // Controller built and ticked, zero knobs.
    StormRun nul = RunControlStorm(storm_ops, null_policy);
    Check(nul.prom == unc.prom, "null policy Prometheus byte-identical",
          nul.prom.size(), unc.prom.size());
    Check(nul.jsonl == unc.jsonl, "null policy JSONL byte-identical",
          nul.jsonl.size(), unc.jsonl.size());
    Check(nul.csv == unc.csv, "null policy CSV byte-identical",
          nul.csv.size(), unc.csv.size());
    Check(nul.actuation_count == 0, "null policy actuates nothing",
          nul.actuation_count, 0);

    std::printf("--- control storm: controlled (paced GC + flush admission) "
                "---\n");
    StormRun ctl = RunControlStorm(storm_ops, StormControlPolicy());
    StormRun ctl2 = RunControlStorm(storm_ops, StormControlPolicy());
    Check(ctl.actuations_csv == ctl2.actuations_csv,
          "double-run actuation log byte-identical",
          ctl.actuations_csv.size(), ctl2.actuations_csv.size());
    Check(ctl.actuation_count >= 1, "controller actuated at least once",
          ctl.actuation_count, 1);
    // The trigger-2 LSM makes nearly every uncontrolled flush a stall (the
    // memtable-stall rule re-fires all run long); controlled, stalls must
    // never persist past 2 consecutive intervals — the ISSUE's bound.
    Check(unc.stall_fires > 2, "uncontrolled memtable-stall fires repeatedly",
          unc.stall_fires, 3);
    Check(ctl.max_stall_streak <= 2,
          "controlled stall streak bounded (<=2 intervals)",
          ctl.max_stall_streak, 2);
    Check(ctl.worst_p99 < unc.worst_p99,
          "controlled worst-interval p99 below uncontrolled", ctl.worst_p99,
          unc.worst_p99);
    Check(ctl.free_low_fires == 0, "controlled run keeps free-block headroom",
          ctl.free_low_fires, 0);
    std::printf(
        "control storm: worst p99 %llu -> %llu ns, stall streak %llu -> %llu "
        "intervals, stall fires %llu -> %llu, %llu actuations, %llu sheds\n",
        static_cast<unsigned long long>(unc.worst_p99),
        static_cast<unsigned long long>(ctl.worst_p99),
        static_cast<unsigned long long>(unc.max_stall_streak),
        static_cast<unsigned long long>(ctl.max_stall_streak),
        static_cast<unsigned long long>(unc.stall_fires),
        static_cast<unsigned long long>(ctl.stall_fires),
        static_cast<unsigned long long>(ctl.actuation_count),
        static_cast<unsigned long long>(ctl.busy_sheds));
    if (!export_prefix.empty()) {
      WriteFile(export_prefix + ".control.csv", SideBySideCsv(unc, ctl));
      WriteFile(export_prefix + ".actuations.csv", ctl.actuations_csv);
      std::printf("exported %s.control.csv and %s.actuations.csv\n",
                  export_prefix.c_str(), export_prefix.c_str());
    }
  }

  if (!export_prefix.empty()) {
    WriteFile(export_prefix + ".prom", a.prom);
    WriteFile(export_prefix + ".jsonl", a.jsonl);
    WriteFile(export_prefix + ".csv", a.csv);
    std::printf("exported %s.{prom,jsonl,csv}\n", export_prefix.c_str());
  }

  // Hold the server up for an external scraper: publish the resolved port,
  // then wait (wall-clock; virtual time is finished) until the scraper
  // deletes the port file or the hold expires.
  if (serve && serve_hold_ms > 0 && !export_prefix.empty()) {
    const std::string port_path = export_prefix + ".port";
    WriteFile(port_path, std::to_string(server.port()) + "\n");
    std::printf("holding server up to %llu ms (delete %s to release)\n",
                static_cast<unsigned long long>(serve_hold_ms),
                port_path.c_str());
    std::fflush(stdout);
    std::uint64_t waited_ms = 0;
    while (waited_ms < serve_hold_ms && ::access(port_path.c_str(), F_OK) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      waited_ms += 50;
    }
    std::remove(port_path.c_str());
  }
  server.Stop();

  if (failures != 0) {
    std::fprintf(stderr, "\ntimeline_report: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ntimeline_report: all checks passed\n");
  return 0;
}
