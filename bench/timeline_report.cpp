// Timeline report: the paper's rates-over-time view, produced from telemetry
// alone. Replays a fig08/fig11-style PUT workload (piggyback transfer, All
// packing, NAND on) whose value size shifts mid-run, so throughput, PCIe
// traffic, and the TAF/WAF curves visibly change shape, then prints the
// timeline and cross-checks every derived series against the device's final
// counters:
//
//   1. Reconciliation — per-interval deltas telescoped over all samples must
//      equal GetStats() exactly (ops, H2D/D2H bytes, NAND pages, value bytes).
//   2. Determinism — the whole run is executed twice; the Prometheus, JSONL
//      and CSV exports must be byte-identical.
//   3. Watchdog — zero alerts on the clean run; with --faults (a command-drop
//      storm) the retry-storm rule must fire and timeout events must appear.
//
// Any violation prints CHECK FAILED and exits nonzero, making this bench a
// CI gate (ci/verify.sh). --export=PREFIX writes PREFIX.prom / .jsonl / .csv.
#include <fstream>

#include "bench_util.h"
#include "telemetry/export.h"
#include "workload/value_gen.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

int failures = 0;

void Check(bool ok, const char* what, std::uint64_t got, std::uint64_t want) {
  if (ok) {
    std::printf("CHECK ok: %-44s %llu\n", what,
                static_cast<unsigned long long>(got));
  } else {
    std::fprintf(stderr, "CHECK FAILED: %s: got %llu want %llu\n", what,
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    ++failures;
  }
}

std::uint64_t SumSeries(const telemetry::Sampler& sampler,
                        const std::string& name) {
  const std::int64_t id = sampler.series().Find(name);
  if (id < 0) return 0;
  std::uint64_t sum = 0;
  for (const telemetry::Sample& s : sampler.samples()) {
    sum += s.Value(static_cast<std::uint32_t>(id));
  }
  return sum;
}

// Per-channel busy permille columns are the heatmap's raw data (the bench
// geometry has 4 channels).
const std::vector<std::string> kCsvSeries = {
    "delta.ops",
    "rate.ops_per_sec_milli",
    "rate.pcie.h2d_bytes_per_sec",
    "rate.taf_milli",
    "rate.waf_milli",
    "total.taf_milli",
    "gauge.ftl.free_blocks",
    "gauge.buffer.resident_bytes",
    "gauge.nand.ch0.busy_permille",
    "gauge.nand.ch1.busy_permille",
    "gauge.nand.ch2.busy_permille",
    "gauge.nand.ch3.busy_permille",
};

struct RunOutput {
  std::string prom, jsonl, csv;
  KvSsdStats stats;
  std::uint64_t alerts_fired = 0;
  std::uint64_t timeout_events = 0;
};

KvSsdOptions ReportOptions(bool faults) {
  KvSsdOptions o = DefaultBenchOptions();
  o.driver.method = driver::TransferMethod::kPiggyback;
  o.buffer.policy = buffer::PackingPolicy::kAll;
  o.telemetry.enabled = true;
  o.telemetry.sample_interval_ns = 50 * sim::kMicrosecond;
  // Clean runs must stay silent on both rules; the fault storm trips the
  // retry rule on the first interval containing a resubmission.
  o.telemetry.rules = {telemetry::RetryStormRule(/*retries=*/1, /*n=*/1),
                      telemetry::ZeroOpStallRule(/*n=*/10)};
  if (faults) o.fault.command_drop_rate = 0.1;
  return o;
}

// The workload: ops/2 small values (fig08's fine-grained regime), then ops/2
// at 2 KiB (approaching the crossover), so every over-time curve has a step.
RunOutput RunTimeline(std::uint64_t ops, bool faults) {
  auto ssd = KvSsd::Open(ReportOptions(faults)).value();
  std::uint64_t put_errors = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::size_t size = i < ops / 2 ? 64 : 2048;
    Bytes value = workload::MakeValue(size, 11, i);
    // Under the drop storm a command can exhaust its retries; that surfaced
    // timeout IS the scenario the watchdog watches, not a harness failure.
    if (!ssd->Put("tl" + std::to_string(i), ByteSpan(value)).ok()) {
      ++put_errors;
    }
  }
  const bool flushed = ssd->Flush().ok();
  if (!faults && (put_errors != 0 || !flushed)) {
    std::fprintf(stderr, "CHECK FAILED: clean run rejected %llu PUT(s)%s\n",
                 static_cast<unsigned long long>(put_errors),
                 flushed ? "" : " and the flush");
    ++failures;
  }
  if (faults && put_errors != 0) {
    std::printf("fault storm surfaced %llu host-visible PUT timeout(s)\n",
                static_cast<unsigned long long>(put_errors));
  }
  ssd->Hooks().sampler->Finalize();

  RunOutput out;
  const telemetry::Sampler& t = ssd->telemetry();
  out.prom = telemetry::ToPrometheusText(t);
  out.jsonl = telemetry::ToJsonl(t);
  out.csv = telemetry::ToTimeSeriesCsv(t, kCsvSeries);
  out.stats = ssd->GetStats();
  out.timeout_events = t.event_log().count(telemetry::EventType::kTimeout);
  for (const auto& alert : ssd->Inspect().alerts) {
    out.alerts_fired += alert.fired;
  }

  // Reconciliation: deltas telescope to the final counters (the closing
  // sample is stamped at run end, so nothing falls off either edge).
  Check(t.dropped_samples() == 0, "no samples dropped", t.dropped_samples(),
        0);
  Check(SumSeries(t, "delta.ops") == out.stats.commands_submitted,
        "sum(delta.ops) == commands_submitted",
        SumSeries(t, "delta.ops"), out.stats.commands_submitted);
  Check(SumSeries(t, "delta.pcie.h2d_bytes") == out.stats.pcie_h2d_bytes,
        "sum(delta.pcie.h2d_bytes) == pcie_h2d_bytes",
        SumSeries(t, "delta.pcie.h2d_bytes"), out.stats.pcie_h2d_bytes);
  Check(SumSeries(t, "delta.pcie.d2h_bytes") == out.stats.pcie_d2h_bytes,
        "sum(delta.pcie.d2h_bytes) == pcie_d2h_bytes",
        SumSeries(t, "delta.pcie.d2h_bytes"), out.stats.pcie_d2h_bytes);
  Check(SumSeries(t, "delta.nand.pages_programmed") ==
            out.stats.nand_pages_programmed,
        "sum(delta.nand.pages) == nand_pages_programmed",
        SumSeries(t, "delta.nand.pages_programmed"),
        out.stats.nand_pages_programmed);
  Check(SumSeries(t, "delta.value_bytes") == out.stats.value_bytes_written,
        "sum(delta.value_bytes) == value_bytes_written",
        SumSeries(t, "delta.value_bytes"), out.stats.value_bytes_written);
  Check(t.Latest("pcie.h2d_bytes") == out.stats.pcie_h2d_bytes,
        "last sample cumulative == pcie_h2d_bytes",
        t.Latest("pcie.h2d_bytes"), out.stats.pcie_h2d_bytes);

  // The timeline table, printed from the samples alone.
  if (!faults) {
    const auto& samples = t.samples();
    std::printf("\n%9s %9s %10s %8s %8s %8s %10s\n", "t_ms", "kops/s",
                "H2D MB/s", "TAF", "WAF", "cumTAF", "free_blk");
    const std::size_t stride = std::max<std::size_t>(1, samples.size() / 12);
    for (std::size_t i = 0; i < samples.size();
         i = (i + stride < samples.size() || i + 1 == samples.size())
                 ? i + stride
                 : samples.size() - 1) {
      const telemetry::Sample& s = samples[i];
      const auto val = [&](const char* name) -> std::uint64_t {
        const std::int64_t id = t.series().Find(name);
        return id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id));
      };
      std::printf("%9.2f %9.1f %10.1f %8.2f %8.2f %8.2f %10llu\n",
                  static_cast<double>(s.t_ns) / 1e6,
                  static_cast<double>(val("rate.ops_per_sec_milli")) / 1e6,
                  static_cast<double>(val("rate.pcie.h2d_bytes_per_sec")) /
                      1e6,
                  static_cast<double>(val("rate.taf_milli")) / 1e3,
                  static_cast<double>(val("rate.waf_milli")) / 1e3,
                  static_cast<double>(val("total.taf_milli")) / 1e3,
                  static_cast<unsigned long long>(
                      val("gauge.ftl.free_blocks")));
      if (i + 1 == samples.size()) break;
    }
    std::printf("samples=%zu events=%llu\n\n", samples.size(),
                static_cast<unsigned long long>(
                    t.event_log().total_emitted()));
  }
  return out;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "CHECK FAILED: cannot write %s\n", path.c_str());
    ++failures;
    return;
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_ops=*/20000);
  std::string export_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--export=", 9) == 0) export_prefix = argv[i] + 9;
  }
  PrintPlatform("Timeline report: telemetry over virtual time",
                ReportOptions(false), args);

  std::printf("\n--- clean run (pass 1) ---\n");
  RunOutput a = RunTimeline(args.ops, /*faults=*/false);
  std::printf("--- clean run (pass 2: determinism) ---\n");
  RunOutput b = RunTimeline(args.ops, /*faults=*/false);
  Check(a.prom == b.prom, "double-run Prometheus byte-identical",
        a.prom.size(), b.prom.size());
  Check(a.jsonl == b.jsonl, "double-run JSONL byte-identical",
        a.jsonl.size(), b.jsonl.size());
  Check(a.csv == b.csv, "double-run CSV byte-identical", a.csv.size(),
        b.csv.size());
  Check(a.alerts_fired == 0, "clean run raises no alerts", a.alerts_fired, 0);

  std::printf("--- fault storm (command drops) ---\n");
  RunOutput f = RunTimeline(args.ops / 4, /*faults=*/true);
  Check(f.alerts_fired >= 1, "fault storm fires the retry-storm rule",
        f.alerts_fired, 1);
  Check(f.timeout_events >= 1, "timeout events logged under faults",
        f.timeout_events, 1);

  if (!export_prefix.empty()) {
    WriteFile(export_prefix + ".prom", a.prom);
    WriteFile(export_prefix + ".jsonl", a.jsonl);
    WriteFile(export_prefix + ".csv", a.csv);
    std::printf("exported %s.{prom,jsonl,csv}\n", export_prefix.c_str());
  }

  if (failures != 0) {
    std::fprintf(stderr, "\ntimeline_report: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ntimeline_report: all checks passed\n");
  return 0;
}
