// Response-time decomposition from traces alone (Figure 8 companion).
//
// Runs the three value-transfer techniques with per-command tracing enabled
// and rebuilds the paper's latency story purely from the trace sink: for
// every NVMe command the per-stage exclusive times sum to the measured
// submit->completion window EXACTLY (the tracer's core invariant), so the
// stage shares printed here are an accounting identity, not a sampling
// estimate. Also exercises >=2 queue configurations to show the invariant
// holds under interleaving.
//
//   --export=chrome|csv   write the last run's trace to stdout (the human
//                         report moves to stderr); loadable in Perfetto /
//                         chrome://tracing or any CSV tool.
//   --out=FILE            write the export to FILE instead of stdout.
#include <cinttypes>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "trace/trace.h"

using namespace bandslim;
using namespace bandslim::bench;

namespace {

struct TraceArgs {
  std::string export_format;  // "", "chrome" or "csv".
  std::string out_path;
  std::uint64_t ops = 200;
};

TraceArgs ParseTraceArgs(int argc, char** argv) {
  TraceArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--export=", 9) == 0) {
      args.export_format = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      args.export_format = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      args.ops = std::strtoull(argv[i] + 6, nullptr, 10);
    }
  }
  return args;
}

// Deterministic PUT stream: fixed sizes cycling through small / sub-page /
// multi-page so every transfer path inside a technique gets exercised.
void DrivePuts(driver::KvDriver* drv, std::uint64_t ops) {
  static const std::size_t kSizes[] = {32, 200, 4096 + 48, 8192};
  Bytes value(8192, 0xA5);
  char key[32];
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::size_t size = kSizes[i % 4];
    std::snprintf(key, sizeof key, "key-%08" PRIu64, i);
    if (!drv->Put(key, ByteSpan(value).subspan(0, size)).ok()) {
      std::fprintf(stderr, "PUT failed at op %" PRIu64 "\n", i);
      std::exit(1);
    }
  }
}

// The tracer's exactness invariant, checked over every retained command.
// Returns the number of commands inspected; exits nonzero on violation.
std::uint64_t CheckExactness(const trace::Tracer& tracer, const char* label) {
  std::uint64_t n = 0;
  for (const auto& cmd : tracer.commands()) {
    const std::uint64_t window = cmd.end_ns - cmd.start_ns;
    if (cmd.stages.TotalNs() != window) {
      std::fprintf(stderr,
                   "EXACTNESS VIOLATION [%s]: cmd seq=%" PRIu64
                   " stages sum %" PRIu64 " ns != window %" PRIu64 " ns\n",
                   label, cmd.seq, cmd.stages.TotalNs(), window);
      std::exit(1);
    }
    ++n;
  }
  if (tracer.orphan_spans() != 0) {
    std::fprintf(stderr, "ORPHAN SPANS [%s]: %" PRIu64 "\n", label,
                 tracer.orphan_spans());
    std::exit(1);
  }
  return n;
}

void PrintBreakdown(std::FILE* out, const char* label,
                    const trace::Tracer& tracer) {
  const trace::StageBreakdown agg = tracer.AggregateCommandStages();
  const std::uint64_t total = agg.TotalNs();
  const std::uint64_t cmds = tracer.commands().size();
  std::fprintf(out, "\n%s: %" PRIu64 " commands, %.2f us mean\n", label, cmds,
               cmds == 0 ? 0.0
                         : static_cast<double>(total) / 1e3 /
                               static_cast<double>(cmds));
  for (int c = 0; c < trace::kNumCategories; ++c) {
    if (agg.ns[c] == 0 && agg.bytes[c] == 0) continue;
    std::fprintf(out, "  %-14s %12.2f us  %6.2f%%  %12" PRIu64 " B\n",
                 trace::CategoryName(static_cast<trace::Category>(c)),
                 static_cast<double>(agg.ns[c]) / 1e3,
                 total == 0 ? 0.0
                            : 100.0 * static_cast<double>(agg.ns[c]) /
                                  static_cast<double>(total),
                 agg.bytes[c]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const TraceArgs args = ParseTraceArgs(argc, argv);
  const bool exporting = !args.export_format.empty();
  std::FILE* report = exporting ? stderr : stdout;

  std::fprintf(report,
               "================================================================\n"
               "Per-command latency attribution from traces "
               "(%" PRIu64 " PUTs per configuration)\n"
               "================================================================\n",
               args.ops);

  std::string last_export;
  std::uint64_t checked = 0;

  // Pass 1: the three transfer techniques, single queue.
  for (auto method : {driver::TransferMethod::kPrp,
                      driver::TransferMethod::kPiggyback,
                      driver::TransferMethod::kHybrid}) {
    KvSsdOptions o = DefaultBenchOptions();
    o.driver.method = method;
    o.trace.enabled = true;
    auto ssd = KvSsd::Open(o).value();
    DrivePuts(ssd->Hooks().driver, args.ops);
    checked += CheckExactness(ssd->tracer(), driver::MethodName(method));
    PrintBreakdown(report, driver::MethodName(method), ssd->tracer());
    if (exporting) {
      last_export = args.export_format == "csv"
                        ? trace::ToBreakdownCsv(ssd->tracer())
                        : trace::ToChromeTraceJson(ssd->tracer());
    }
  }

  // Pass 2: adaptive method on 1-queue and 2-queue devices; the invariant
  // must survive command interleaving across queue pairs.
  for (std::uint16_t queues : {std::uint16_t{1}, std::uint16_t{2}}) {
    KvSsdOptions o = DefaultBenchOptions();
    o.num_queues = queues;
    o.trace.enabled = true;
    auto ssd = KvSsd::Open(o).value();
    DrivePuts(ssd->Hooks().driver, args.ops);
    if (queues > 1) {
      auto d1 = ssd->CreateQueueDriver(1, o.driver);
      if (!d1.ok()) {
        std::fprintf(stderr, "CreateQueueDriver failed\n");
        return 1;
      }
      DrivePuts(d1.value(), args.ops);
    }
    char label[32];
    std::snprintf(label, sizeof label, "adaptive %uq", queues);
    checked += CheckExactness(ssd->tracer(), label);
    PrintBreakdown(report, label, ssd->tracer());
  }

  std::fprintf(report,
               "\nexactness: per-stage sums matched the submit->completion "
               "window on all %" PRIu64 " commands\n",
               checked);

  if (exporting) {
    std::FILE* sink = stdout;
    if (!args.out_path.empty()) {
      sink = std::fopen(args.out_path.c_str(), "w");
      if (sink == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", args.out_path.c_str());
        return 1;
      }
    }
    std::fwrite(last_export.data(), 1, last_export.size(), sink);
    if (sink != stdout) std::fclose(sink);
  }
  return 0;
}
