#!/usr/bin/env bash
# Tier-1 verification, run twice:
#   1. Release           — the configuration the benches and figures use.
#   2. Debug + ASan/UBSan — assertions on (the clock-overflow and CID-reuse
#      checks live behind assert) and memory/UB errors fatal.
# Usage: ci/verify.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build-ci}"

run_pass() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== verify pass: ${name} ==="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

# Fault campaign under the sanitized build: nonzero failure rates drive the
# bad-block remap, retry, and ECC paths that a clean run never enters.
fault_campaign() {
  local build_dir="$1"
  echo "=== verify pass: fault campaign (${build_dir}) ==="
  "${build_dir}/bench/fault_campaign" --ops=5000
}

# Trace export: the bench itself enforces the exactness invariant (per-stage
# sums == submit->completion window on every command, all three transfer
# techniques, 1q and 2q) and exits nonzero on violation; jq then checks the
# exported file is valid Chrome trace_event JSON with well-formed events.
trace_export() {
  local build_dir="$1"
  echo "=== verify pass: trace export (${build_dir}) ==="
  local out="${build_dir}/trace_breakdown.json"
  "${build_dir}/bench/trace_breakdown" --ops=100 --export=chrome --out="${out}"
  if command -v jq > /dev/null; then
    jq -e '.traceEvents | type == "array" and length > 0' "${out}" > /dev/null
    jq -e '[.traceEvents[] | select(.ph == "X")]
           | length > 0 and all(has("name") and has("ts") and has("dur")
                                and has("pid") and has("tid"))' \
      "${out}" > /dev/null
    echo "trace export: jq schema checks passed"
  else
    echo "trace export: jq not found, schema checks skipped"
  fi
}

# Telemetry timeline: the bench itself enforces the hard invariants
# (telescoped per-interval deltas == final counters, histogram deltas
# telescoping to the lifetime percentile pipeline, double-run byte-identical
# exports, in-process scrape == file export, watchdog firing under the drop
# and compaction storms and silent on the clean run) and exits nonzero on
# violation; here we additionally scrape the live HTTP endpoint from a real
# external client (curl) and validate the exported formats — Prometheus text
# exposition via promtool when installed (falling back to a line-grammar
# check), and the JSONL stream's per-line schema and timestamp ordering via
# jq.
telemetry_timeline() {
  local build_dir="$1"
  echo "=== verify pass: telemetry timeline (${build_dir}) ==="
  local out="${build_dir}/timeline"
  rm -f "${out}.port"
  "${build_dir}/bench/timeline_report" --ops=2000 --export="${out}" \
    --serve=0 --serve-hold=30000 &
  local bench_pid=$!
  # The bench writes PREFIX.port once the run finished and the exports are
  # on disk, then holds the server up until the file is deleted.
  local waited=0
  while [ ! -f "${out}.port" ]; do
    if ! kill -0 "${bench_pid}" 2> /dev/null; then
      wait "${bench_pid}"
      echo "telemetry: bench exited before serving" >&2
      return 1
    fi
    sleep 0.2
    waited=$((waited + 1))
    if [ "${waited}" -gt 1500 ]; then
      echo "telemetry: timed out waiting for ${out}.port" >&2
      kill "${bench_pid}" 2> /dev/null || true
      return 1
    fi
  done
  local port
  port="$(cat "${out}.port")"
  if command -v curl > /dev/null; then
    curl -sf "http://127.0.0.1:${port}/healthz" | grep -q '"status":"ok"'
    curl -sf "http://127.0.0.1:${port}/metrics" -o "${out}.scraped.prom"
    curl -sf "http://127.0.0.1:${port}/timeline.jsonl" -o "${out}.scraped.jsonl"
    cmp "${out}.scraped.prom" "${out}.prom"
    cmp "${out}.scraped.jsonl" "${out}.jsonl"
    echo "telemetry: live scrape byte-matches the file exports"
  else
    echo "telemetry: curl not found, external scrape skipped"
  fi
  rm -f "${out}.port"  # Releases the hold.
  wait "${bench_pid}"
  if command -v promtool > /dev/null; then
    promtool check metrics < "${out}.prom"
    echo "telemetry: promtool exposition check passed"
  else
    # Exposition format 0.0.4: comment lines, or
    #   metric_name[{labels}] value [timestamp_ms]
    awk '
      /^#/ { next }
      /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+( [0-9]+)?$/ { next }
      { print "bad exposition line " NR ": " $0; bad = 1 }
      END { exit bad }
    ' "${out}.prom"
    echo "telemetry: exposition line-grammar check passed (promtool not found)"
  fi
  if command -v jq > /dev/null; then
    jq -e -s '
      length > 0
      and all(has("kind") and has("t_ns") and has("seq"))
      and all(select(.kind == "sample")
              | has("interval_ns") and (.values | type == "object"))
      and all(select(.kind == "event")
              | (.type | type == "string") and has("a") and has("b")
                and has("tenant"))
      and ([.[].t_ns] as $t | $t == ($t | sort))
    ' "${out}.jsonl" > /dev/null
    echo "telemetry: jq JSONL schema checks passed"
  else
    echo "telemetry: jq not found, JSONL schema checks skipped"
  fi
}

# Fleet observability: the bench itself enforces the aggregation invariants
# (every fleet interval sums its per-shard deltas, the deltas telescope to
# the summed final shard counters, merged-bucket percentiles equal the union
# quantiles, double-run byte-identical exports, a disabled aggregator
# bit-identical to an enabled run, the hot-shard storm firing the
# shard-imbalance/ring-skew/straggler rules while uniform routing stays
# silent) and exits nonzero on violation; here we additionally scrape the
# live federated endpoint from a real external client (curl), byte-compare
# both documents against the file exports, and validate the formats —
# Prometheus text exposition (promtool or the line-grammar fallback) for the
# shard-labeled scrape, and the per-shard JSONL document's schema via jq.
fleet_timeline() {
  local build_dir="$1" ops="${2:-2000}"
  echo "=== verify pass: fleet timeline (${build_dir}) ==="
  local out="${build_dir}/fleet"
  rm -f "${out}.port"
  "${build_dir}/bench/fleet_timeline" --ops="${ops}" --export="${out}" \
    --serve=0 --serve-hold=30000 &
  local bench_pid=$!
  local waited=0
  while [ ! -f "${out}.port" ]; do
    if ! kill -0 "${bench_pid}" 2> /dev/null; then
      wait "${bench_pid}"
      echo "fleet: bench exited before serving" >&2
      return 1
    fi
    sleep 0.2
    waited=$((waited + 1))
    if [ "${waited}" -gt 1500 ]; then
      echo "fleet: timed out waiting for ${out}.port" >&2
      kill "${bench_pid}" 2> /dev/null || true
      return 1
    fi
  done
  local port
  port="$(cat "${out}.port")"
  if command -v curl > /dev/null; then
    curl -sf "http://127.0.0.1:${port}/healthz" | grep -q '"shards":4'
    curl -sf "http://127.0.0.1:${port}/metrics" -o "${out}.scraped.prom"
    curl -sf "http://127.0.0.1:${port}/shards.jsonl" \
      -o "${out}.scraped.shards.jsonl"
    cmp "${out}.scraped.prom" "${out}.prom"
    cmp "${out}.scraped.shards.jsonl" "${out}.shards.jsonl"
    echo "fleet: live federated scrape byte-matches the file exports"
  else
    echo "fleet: curl not found, external scrape skipped"
  fi
  rm -f "${out}.port"  # Releases the hold.
  wait "${bench_pid}"
  if command -v promtool > /dev/null; then
    promtool check metrics < "${out}.prom"
    echo "fleet: promtool exposition check passed"
  else
    awk '
      /^#/ { next }
      /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+( [0-9]+)?$/ { next }
      { print "bad exposition line " NR ": " $0; bad = 1 }
      END { exit bad }
    ' "${out}.prom"
    echo "fleet: exposition line-grammar check passed (promtool not found)"
  fi
  grep -q 'bandslim_shard_ops_total{shard="3"}' "${out}.prom"
  if command -v jq > /dev/null; then
    jq -e -s '
      length == 4
      and all(has("shard") and has("t_ns") and has("ops") and has("delta_ops")
              and has("routed_keys") and has("expected_share_permille")
              and has("actual_share_permille"))
      and ([.[].shard] == [0, 1, 2, 3])
    ' "${out}.shards.jsonl" > /dev/null
    echo "fleet: jq shards.jsonl schema checks passed"
  else
    echo "fleet: jq not found, shards.jsonl schema checks skipped"
  fi
}

# Tenant/key-space attribution: the bench itself enforces the attribution
# invariants (every fleet interval's tenant + untagged deltas sum exactly to
# the fleet delta across all four charge dimensions and telescope to the
# summed final counters, the attribution ledger matches the runner's issued
# op/shed counts, double-run byte-identical prom/timeline/slo exports, a
# disabled plane bit-identical in virtual time and device counters, the
# noisy-neighbor storm firing the burn-rate and hot-key-range rules while
# the clean blend stays silent and shed-free) and exits nonzero on
# violation; here we additionally scrape /metrics and /slo.jsonl from a real
# external client (curl), byte-compare both against the file exports,
# validate the tenant-labeled exposition (promtool or the line-grammar
# fallback), and check the /slo.jsonl per-tenant schema via jq.
tenant_slo() {
  local build_dir="$1" ops="${2:-3000}"
  echo "=== verify pass: tenant SLO attribution (${build_dir}) ==="
  local out="${build_dir}/tenant_slo"
  rm -f "${out}.port"
  "${build_dir}/bench/tenant_slo_report" --ops="${ops}" --export="${out}" \
    --serve=0 --serve-hold=30000 &
  local bench_pid=$!
  local waited=0
  while [ ! -f "${out}.port" ]; do
    if ! kill -0 "${bench_pid}" 2> /dev/null; then
      wait "${bench_pid}"
      echo "tenant_slo: bench exited before serving" >&2
      return 1
    fi
    sleep 0.2
    waited=$((waited + 1))
    if [ "${waited}" -gt 1500 ]; then
      echo "tenant_slo: timed out waiting for ${out}.port" >&2
      kill "${bench_pid}" 2> /dev/null || true
      return 1
    fi
  done
  local port
  port="$(cat "${out}.port")"
  if command -v curl > /dev/null; then
    curl -sf "http://127.0.0.1:${port}/healthz" | grep -q '"status":"ok"'
    curl -sf "http://127.0.0.1:${port}/metrics" -o "${out}.scraped.prom"
    curl -sf "http://127.0.0.1:${port}/slo.jsonl" -o "${out}.scraped.slo.jsonl"
    cmp "${out}.scraped.prom" "${out}.prom"
    cmp "${out}.scraped.slo.jsonl" "${out}.slo.jsonl"
    echo "tenant_slo: live scrape byte-matches the file exports"
  else
    echo "tenant_slo: curl not found, external scrape skipped"
  fi
  rm -f "${out}.port"  # Releases the hold.
  wait "${bench_pid}"
  if command -v promtool > /dev/null; then
    promtool check metrics < "${out}.prom"
    echo "tenant_slo: promtool exposition check passed"
  else
    awk '
      /^#/ { next }
      /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+( [0-9]+)?$/ { next }
      { print "bad exposition line " NR ": " $0; bad = 1 }
      END { exit bad }
    ' "${out}.prom"
    echo "tenant_slo: exposition line-grammar check passed (promtool not found)"
  fi
  grep -q 'bandslim_tenant_ops_total{tenant="frontend"}' "${out}.prom"
  grep -q 'bandslim_keyspace_heat_max_share_permille' "${out}.prom"
  if command -v jq > /dev/null; then
    jq -e -s '
      length == 2
      and all(has("tenant") and has("name") and has("ops") and has("good")
              and has("bad") and has("shed") and has("errors")
              and has("latency_target_ns")
              and has("availability_target_permille")
              and has("allowed_bad_permille") and has("budget_spent_permille")
              and has("burn_fast_milli") and has("burn_slow_milli")
              and has("p99_ns") and has("dev_ops") and has("value_bytes")
              and has("pcie_h2d_bytes") and has("nand_pages_programmed")
              and has("taf_milli"))
      and ([.[].tenant] == [0, 1])
    ' "${out}.slo.jsonl" > /dev/null
    echo "tenant_slo: jq slo.jsonl schema checks passed"
  else
    echo "tenant_slo: jq not found, slo.jsonl schema checks skipped"
  fi
}

# Closed-loop control storm: the bench replays the undersized-LSM storm
# three ways — uncontrolled, null policy (controller built with every knob
# off; exports must byte-match the uncontrolled run), and controlled — and
# exits nonzero unless the controlled run bounds the stall streak (<= 2
# consecutive intervals), beats the uncontrolled worst-interval p99, never
# fires free-blocks-low, and produces a byte-identical actuation log across
# a double run. The GC-headroom demo does the same for the FTL knob under
# 1 % program failures. Here we additionally sanity-check the side-by-side
# CSV's shape.
control_storm() {
  local build_dir="$1"
  echo "=== verify pass: control storm (${build_dir}) ==="
  local out="${build_dir}/control"
  "${build_dir}/bench/timeline_report" --ops=2000 --control --export="${out}"
  awk -F, '
    NR == 1 { cols = NF; if (cols != 12) { print "bad header: " NF " cols"; exit 1 } next }
    NF != cols { print "ragged row " NR; exit 1 }
    END { if (NR < 2) { print "no data rows"; exit 1 } }
  ' "${out}.control.csv"
  awk -F, 'NR == 1 && $0 != "t_ns,seq,rule,observed,old_setting,new_setting" \
             { print "bad actuation header"; exit 1 }
           END { if (NR < 2) { print "empty actuation log"; exit 1 } }' \
    "${out}.actuations.csv"
  echo "control storm: side-by-side and actuation CSVs well-formed"
  "${build_dir}/bench/fault_campaign" --ops=2000 --control
}

# Simulator-throughput regression gate. Release only: wall-clock numbers
# from a sanitized build measure the sanitizer, not the simulator, so the
# ASan pass skips it. The gate fails when any profile drops more than the
# tolerance below bench/baseline_sim_speed.json; regenerate the baseline
# with --write-baseline on the machine class that runs CI after intentional
# perf changes.
sim_speed_gate() {
  local build_dir="$1"
  echo "=== verify pass: sim_speed regression gate (${build_dir}) ==="
  "${build_dir}/bench/sim_speed" --ops=60000 --reps=5 \
    --check=bench/baseline_sim_speed.json --tolerance=0.15
}

# Cluster shard-scaling gates. The bench itself exits nonzero unless
# (1) a 1-shard cluster run is bit-identical in virtual time and device
# counters to the same ops on a bare KvSsd (the router adds zero simulated
# overhead), and (2) uniform-key 4-shard mixed throughput is >= 3x the
# 1-shard run. Here we additionally check the CSV shape: 2 distributions
# x 4 cluster sizes = 8 data rows.
shard_scaling() {
  local build_dir="$1" ops="${2:-6000}"
  echo "=== verify pass: cluster shard scaling (${build_dir}) ==="
  local out="${build_dir}/shard_scaling.csv"
  "${build_dir}/bench/abl_shard_scaling" --ops="${ops}" --csv="${out}"
  awk -F, '
    NR == 1 { if ($0 != "distribution,shards,ops,elapsed_ns,kops_per_sec,speedup")
                { print "bad header: " $0; exit 1 } next }
    NF != 6 { print "ragged row " NR; exit 1 }
    END { if (NR - 1 != 8) { print "expected 8 data rows, got " NR - 1; exit 1 } }
  ' "${out}"
  echo "shard scaling: N=1 identity + 4-shard speedup gates passed, CSV well-formed"
}

# New code must use Inspect()/Hooks(): calling a [[deprecated]] accessor is a
# build error in CI, so the legacy API can only shrink.
run_pass release "${prefix}-release" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Werror=deprecated-declarations"

trace_export "${prefix}-release"
telemetry_timeline "${prefix}-release"
fleet_timeline "${prefix}-release"
tenant_slo "${prefix}-release"
control_storm "${prefix}-release"
sim_speed_gate "${prefix}-release"
shard_scaling "${prefix}-release"

run_pass asan-ubsan "${prefix}-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-Werror=deprecated-declarations -fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

fault_campaign "${prefix}-asan"
trace_export "${prefix}-asan"
telemetry_timeline "${prefix}-asan"
fleet_timeline "${prefix}-asan" 1200
tenant_slo "${prefix}-asan" 1500
control_storm "${prefix}-asan"
shard_scaling "${prefix}-asan" 1500

echo "=== verify: all passes green ==="
