#!/usr/bin/env bash
# Tier-1 verification, run twice:
#   1. Release           — the configuration the benches and figures use.
#   2. Debug + ASan/UBSan — assertions on (the clock-overflow and CID-reuse
#      checks live behind assert) and memory/UB errors fatal.
# Usage: ci/verify.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build-ci}"

run_pass() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== verify pass: ${name} ==="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

# Fault campaign under the sanitized build: nonzero failure rates drive the
# bad-block remap, retry, and ECC paths that a clean run never enters.
fault_campaign() {
  local build_dir="$1"
  echo "=== verify pass: fault campaign (${build_dir}) ==="
  "${build_dir}/bench/fault_campaign" --ops=5000
}

# Trace export: the bench itself enforces the exactness invariant (per-stage
# sums == submit->completion window on every command, all three transfer
# techniques, 1q and 2q) and exits nonzero on violation; jq then checks the
# exported file is valid Chrome trace_event JSON with well-formed events.
trace_export() {
  local build_dir="$1"
  echo "=== verify pass: trace export (${build_dir}) ==="
  local out="${build_dir}/trace_breakdown.json"
  "${build_dir}/bench/trace_breakdown" --ops=100 --export=chrome --out="${out}"
  if command -v jq > /dev/null; then
    jq -e '.traceEvents | type == "array" and length > 0' "${out}" > /dev/null
    jq -e '[.traceEvents[] | select(.ph == "X")]
           | length > 0 and all(has("name") and has("ts") and has("dur")
                                and has("pid") and has("tid"))' \
      "${out}" > /dev/null
    echo "trace export: jq schema checks passed"
  else
    echo "trace export: jq not found, schema checks skipped"
  fi
}

run_pass release "${prefix}-release" \
  -DCMAKE_BUILD_TYPE=Release

trace_export "${prefix}-release"

run_pass asan-ubsan "${prefix}-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

fault_campaign "${prefix}-asan"
trace_export "${prefix}-asan"

echo "=== verify: all passes green ==="
