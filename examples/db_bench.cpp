// db_bench: a CLI mirroring the paper's (modified) RocksDB db_bench driver
// (Section 4.1). Runs one workload against one device configuration and
// prints the metrics the paper reports.
//
//   $ ./build/examples/db_bench --workload=M --method=adaptive \
//        --policy=backfill --ops=100000
//   $ ./build/examples/db_bench --workload=A --value_size=64 --nand=off
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/kvssd.h"
#include "workload/runner.h"
#include "workload/trace.h"
#include "workload/workloads.h"

using namespace bandslim;

namespace {

void Usage() {
  std::printf(
      "usage: db_bench [options]\n"
      "  --workload=A|B|C|D|M   (default A)\n"
      "  --value_size=N         value bytes for workload A (default 64)\n"
      "  --ops=N                number of PUTs (default 100000)\n"
      "  --method=baseline|piggyback|hybrid|adaptive  (default adaptive)\n"
      "  --policy=block|all|select|backfill           (default backfill)\n"
      "  --nand=on|off          NAND I/O enabled (default on)\n"
      "  --seed=N               workload seed (default 1)\n"
      "  --dump_trace=FILE      write the op stream as a trace and exit\n"
      "  --replay=FILE          replay a trace file instead of a workload\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "A";
  std::size_t value_size = 64;
  std::uint64_t ops = 100000;
  std::uint64_t seed = 1;
  std::string dump_trace;
  std::string replay;
  KvSsdOptions options;
  options.retain_payloads = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--workload=", 0) == 0) {
      workload = value_of("--workload=");
    } else if (arg.rfind("--value_size=", 0) == 0) {
      value_size = std::strtoull(value_of("--value_size="), nullptr, 10);
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = std::strtoull(value_of("--ops="), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value_of("--seed="), nullptr, 10);
    } else if (arg.rfind("--method=", 0) == 0) {
      const std::string m = value_of("--method=");
      if (m == "baseline") options.driver.method = driver::TransferMethod::kPrp;
      else if (m == "piggyback") options.driver.method = driver::TransferMethod::kPiggyback;
      else if (m == "hybrid") options.driver.method = driver::TransferMethod::kHybrid;
      else if (m == "adaptive") options.driver.method = driver::TransferMethod::kAdaptive;
      else { Usage(); return 2; }
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string p = value_of("--policy=");
      if (p == "block") options.buffer.policy = buffer::PackingPolicy::kBlock;
      else if (p == "all") options.buffer.policy = buffer::PackingPolicy::kAll;
      else if (p == "select") options.buffer.policy = buffer::PackingPolicy::kSelective;
      else if (p == "backfill") options.buffer.policy = buffer::PackingPolicy::kSelectiveBackfill;
      else { Usage(); return 2; }
    } else if (arg.rfind("--dump_trace=", 0) == 0) {
      dump_trace = value_of("--dump_trace=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay = value_of("--replay=");
    } else if (arg == "--nand=off") {
      options.controller.nand_io_enabled = false;
    } else if (arg == "--nand=on") {
      options.controller.nand_io_enabled = true;
    } else {
      Usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  workload::WorkloadSpec spec =
      workload == "A"   ? workload::MakeWorkloadA(value_size, ops, seed)
      : workload == "B" ? workload::MakeWorkloadB(ops, seed)
      : workload == "C" ? workload::MakeWorkloadC(ops, seed)
      : workload == "D" ? workload::MakeWorkloadD(ops, seed)
                        : workload::MakeWorkloadM(ops, seed);

  if (!dump_trace.empty()) {
    std::ofstream out(dump_trace);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", dump_trace.c_str());
      return 1;
    }
    workload::WriteTrace(workload::TraceFromSpec(spec), out);
    std::printf("wrote %llu-op trace to %s\n",
                static_cast<unsigned long long>(spec.ops), dump_trace.c_str());
    return 0;
  }

  auto device = KvSsd::Open(options);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n", device.status().ToString().c_str());
    return 1;
  }

  if (!replay.empty()) {
    std::ifstream in(replay);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay.c_str());
      return 1;
    }
    auto trace = workload::ReadTrace(in);
    if (!trace.ok()) {
      std::fprintf(stderr, "bad trace: %s\n", trace.status().ToString().c_str());
      return 1;
    }
    auto rr = workload::ReplayTrace(*device.value(), trace.value());
    if (!rr.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", rr.status().ToString().c_str());
      return 1;
    }
    const auto& r = rr.value();
    std::printf("replayed %s: %llu puts, %llu gets (%llu misses), %llu dels "
                "in %.2f ms virtual\n",
                replay.c_str(), static_cast<unsigned long long>(r.puts),
                static_cast<unsigned long long>(r.gets),
                static_cast<unsigned long long>(r.get_misses),
                static_cast<unsigned long long>(r.deletes),
                static_cast<double>(r.elapsed_ns) / 1e6);
    return 0;
  }

  auto result = workload::RunPutWorkload(*device.value(), spec, "db_bench");

  std::printf("workload          : %s\n", result.workload.c_str());
  std::printf("transfer method   : %s\n", driver::MethodName(options.driver.method));
  std::printf("packing policy    : %s\n", buffer::PolicyName(options.buffer.policy));
  std::printf("nand io           : %s\n",
              options.controller.nand_io_enabled ? "on" : "off");
  std::printf("ops               : %llu\n",
              static_cast<unsigned long long>(result.ops));
  std::printf("mean response     : %.2f us   (p99 %.2f us)\n",
              result.MeanResponseUs(), result.P99ResponseUs());
  std::printf("throughput        : %.1f Kops/s\n", result.KopsPerSec());
  std::printf("PCIe h2d traffic  : %.3f MB  (%.1f B/op, TAF %.1f)\n",
              static_cast<double>(result.delta.pcie_h2d_bytes) / 1e6,
              result.TrafficPerOpBytes(), result.TrafficAmplification());
  std::printf("MMIO traffic      : %.3f MB\n",
              static_cast<double>(result.delta.mmio_bytes) / 1e6);
  std::printf("NVMe commands     : %llu\n",
              static_cast<unsigned long long>(result.delta.commands_submitted));
  std::printf("NAND pages written: %llu  (vLog %llu, LSM %llu, GC %llu)\n",
              static_cast<unsigned long long>(result.delta.nand_pages_programmed),
              static_cast<unsigned long long>(result.delta.vlog_pages_flushed),
              static_cast<unsigned long long>(result.delta.lsm_pages_programmed),
              static_cast<unsigned long long>(result.delta.gc_pages_programmed));
  std::printf("device memcpy     : %.3f MB\n",
              static_cast<double>(result.delta.device_memcpy_bytes) / 1e6);
  std::printf("buffer waste      : %.3f MB\n",
              static_cast<double>(result.delta.buffer_wasted_bytes) / 1e6);
  return 0;
}
