// metadata_store: a domain example motivated by the paper's introduction —
// real KV workloads are dominated by tiny values (Meta reports production
// values mostly under a hundred bytes). This models a filesystem metadata
// service storing inode records (~80 B) and directory entries (~30 B) on a
// KV-SSD, and contrasts the full BandSlim configuration against the
// baseline NVMe KV-SSD on the same operation stream.
//
//   $ ./build/examples/metadata_store [num_files]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/kvssd.h"

using namespace bandslim;

namespace {

// An inode record: fixed 80-byte binary attribute block.
Bytes InodeRecord(std::uint64_t ino, Xoshiro256& rng) {
  Bytes rec(80);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    rec[i] = static_cast<std::uint8_t>(SplitMix64(ino + i) ^ rng());
  }
  return rec;
}

// A directory entry: "name -> ino", ~20-40 bytes.
Bytes DirentRecord(std::uint64_t ino) {
  std::string s = "file_" + std::to_string(ino) + ".dat:" + std::to_string(ino);
  return Bytes(s.begin(), s.end());
}

struct Outcome {
  KvSsdStats stats;
  std::uint64_t ops = 0;
};

Outcome RunWorkload(KvStore& ssd, std::uint64_t num_files) {
  Xoshiro256 rng(2024);
  Outcome out;
  for (std::uint64_t ino = 1; ino <= num_files; ++ino) {
    const std::string ino_key = "i:" + std::to_string(ino);
    const std::string dir_key = "d:" + std::to_string(ino);
    if (!ssd.Put(ino_key, ByteSpan(InodeRecord(ino, rng))).ok()) break;
    if (!ssd.Put(dir_key, ByteSpan(DirentRecord(ino))).ok()) break;
    out.ops += 2;
    // 10% of files get a 2 KiB extended-attribute blob (the "occasional
    // large value" the backfilling policy is designed around).
    if (ino % 10 == 0) {
      Bytes xattr(2048, static_cast<std::uint8_t>(ino));
      if (!ssd.Put("x:" + std::to_string(ino), ByteSpan(xattr)).ok()) break;
      ++out.ops;
    }
  }
  out.stats = ssd.GetStats();
  return out;
}

void Report(const char* name, const Outcome& o) {
  std::printf("%-22s: %8.1f us/op | PCIe %8.2f MB | NAND pages %7llu | "
              "memcpy %6.2f MB\n",
              name,
              static_cast<double>(o.stats.elapsed_ns) / 1e3 /
                  static_cast<double>(o.ops),
              static_cast<double>(o.stats.pcie_h2d_bytes) / 1e6,
              static_cast<unsigned long long>(o.stats.nand_pages_programmed),
              static_cast<double>(o.stats.device_memcpy_bytes) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t num_files =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  std::printf("filesystem metadata store: %llu files "
              "(inode 80 B + dirent ~30 B + 10%% xattr 2 KiB)\n\n",
              static_cast<unsigned long long>(num_files));

  KvSsdOptions baseline;
  baseline.driver.method = driver::TransferMethod::kPrp;
  baseline.buffer.policy = buffer::PackingPolicy::kBlock;
  baseline.retain_payloads = false;

  KvSsdOptions bandslim_cfg;
  bandslim_cfg.driver.method = driver::TransferMethod::kAdaptive;
  bandslim_cfg.buffer.policy = buffer::PackingPolicy::kSelectiveBackfill;
  // Keep payloads so the sanity lookup below returns real bytes.
  bandslim_cfg.retain_payloads = true;

  auto base_dev = KvSsd::Open(baseline);
  auto slim_dev = KvSsd::Open(bandslim_cfg);
  if (!base_dev.ok() || !slim_dev.ok()) return 1;

  const Outcome base = RunWorkload(*base_dev.value(), num_files);
  const Outcome slim = RunWorkload(*slim_dev.value(), num_files);

  Report("baseline KV-SSD", base);
  Report("BandSlim KV-SSD", slim);

  std::printf("\nBandSlim vs baseline on this metadata stream:\n");
  std::printf("  PCIe traffic : -%.1f%%\n",
              100.0 * (1.0 - static_cast<double>(slim.stats.pcie_h2d_bytes) /
                                 static_cast<double>(base.stats.pcie_h2d_bytes)));
  std::printf("  NAND writes  : -%.1f%%\n",
              100.0 *
                  (1.0 - static_cast<double>(slim.stats.nand_pages_programmed) /
                             static_cast<double>(base.stats.nand_pages_programmed)));
  std::printf("  mean latency : -%.1f%%\n",
              100.0 * (1.0 - (static_cast<double>(slim.stats.elapsed_ns) /
                              static_cast<double>(slim.ops)) /
                                 (static_cast<double>(base.stats.elapsed_ns) /
                                  static_cast<double>(base.ops))));

  // Sanity: lookup a few records through the BandSlim device.
  auto v = slim_dev.value()->Get("d:7");
  if (v.ok()) {
    std::printf("\nlookup d:7 -> %s\n", ToString(ByteSpan(v.value())).c_str());
  }
  return 0;
}
