// Quickstart: open a simulated BandSlim KV-SSD, write/read/scan/delete
// key-value pairs, and inspect the traffic/NAND statistics the device kept.
// The session logic is written once against the topology-neutral KvStore
// interface, then run unchanged against a single device AND a 4-shard
// KvCluster — switching topologies is a one-line change at the call site.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "cluster/kv_cluster.h"
#include "core/kvssd.h"

using namespace bandslim;

// Everything below drives ANY KvStore: a bare KvSsd, a sharded KvCluster,
// or the conventional HostKvs stack.
static int RunSession(KvStore& store) {
  // --- PUT a few user records (small values: the KV-SSD sweet spot) -------
  if (!store.Put("user:1001", "alice,admin,2024-01-15").ok() ||
      !store.Put("user:1002", "bob,editor,2024-02-20").ok() ||
      !store.Put("user:1003", "carol,viewer,2024-03-08").ok()) {
    std::fprintf(stderr, "put failed\n");
    return 1;
  }

  // --- GET ----------------------------------------------------------------
  auto value = store.Get("user:1002");
  if (!value.ok()) {
    std::fprintf(stderr, "get failed: %s\n", value.status().ToString().c_str());
    return 1;
  }
  std::printf("user:1002 -> %s\n", ToString(ByteSpan(value.value())).c_str());

  // --- Batched GET: results come back in request order, even when the
  // keys live on different shards of a cluster -----------------------------
  const std::string keys[] = {"user:1003", "user:1001", "user:9999"};
  auto batch = store.GetBatch(keys);
  if (!batch.ok()) return 1;
  for (std::size_t i = 0; i < std::size(keys); ++i) {
    const auto& r = batch.value()[i];
    std::printf("  %s -> %s\n", keys[i].c_str(),
                r.found ? ToString(ByteSpan(r.value)).c_str() : "(not found)");
  }

  // --- DELETE -------------------------------------------------------------
  if (!store.Delete("user:1003").ok()) return 1;
  std::printf("after delete, user:1003 -> %s\n",
              store.Get("user:1003").status().ToString().c_str());

  // --- Durability + stats -------------------------------------------------
  if (!store.Flush().ok()) return 1;
  const StoreSnapshot snap = store.Inspect();
  std::printf("store statistics (%u shard%s):\n", snap.num_shards(),
              snap.num_shards() == 1 ? "" : "s");
  std::printf("  NVMe commands        : %llu\n",
              static_cast<unsigned long long>(snap.stats.commands_submitted));
  std::printf("  PCIe host->device    : %llu B\n",
              static_cast<unsigned long long>(snap.stats.pcie_h2d_bytes));
  std::printf("  NAND pages programmed: %llu\n",
              static_cast<unsigned long long>(snap.stats.nand_pages_programmed));
  std::printf("  device memcpy        : %llu B\n",
              static_cast<unsigned long long>(snap.stats.device_memcpy_bytes));
  std::printf("  virtual elapsed      : %.1f us\n",
              static_cast<double>(snap.stats.elapsed_ns) / 1e3);
  return 0;
}

int main() {
  // Default options: adaptive value transfer + selective packing with
  // backfilling — the full BandSlim configuration.
  KvSsdOptions options;
  auto device = KvSsd::Open(options);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 device.status().ToString().c_str());
    return 1;
  }
  KvSsd& ssd = *device.value();

  std::printf("=== single KV-SSD ===\n");
  if (int rc = RunSession(ssd); rc != 0) return rc;

  // The device-only interface (not part of KvStore): a SEEK/NEXT range
  // scan over the surviving records.
  auto iter = ssd.Seek("user:");
  if (!iter.ok()) return 1;
  std::printf("range scan:\n");
  for (auto& it = iter.value(); it.Valid();) {
    std::printf("  %s = %s\n", it.key().c_str(),
                ToString(ByteSpan(it.value())).c_str());
    if (!it.Next().ok()) break;
  }

  // --- Same session, sharded across a 4-device cluster --------------------
  cluster::ClusterConfig cc;
  cc.num_shards = 4;
  cc.shard = options;
  auto fleet = cluster::KvCluster::Open(cc);
  if (!fleet.ok()) {
    std::fprintf(stderr, "cluster open failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== 4-shard KvCluster (same code, via KvStore&) ===\n");
  return RunSession(*fleet.value());
}
