// Quickstart: open a simulated BandSlim KV-SSD, write/read/scan/delete
// key-value pairs, and inspect the traffic/NAND statistics the device kept.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/kvssd.h"

using namespace bandslim;

int main() {
  // Default options: adaptive value transfer + selective packing with
  // backfilling — the full BandSlim configuration.
  KvSsdOptions options;
  auto device = KvSsd::Open(options);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n", device.status().ToString().c_str());
    return 1;
  }
  KvSsd& ssd = *device.value();

  // --- PUT a few user records (small values: the KV-SSD sweet spot) -------
  if (!ssd.Put("user:1001", "alice,admin,2024-01-15").ok() ||
      !ssd.Put("user:1002", "bob,editor,2024-02-20").ok() ||
      !ssd.Put("user:1003", "carol,viewer,2024-03-08").ok()) {
    std::fprintf(stderr, "put failed\n");
    return 1;
  }

  // --- GET ----------------------------------------------------------------
  auto value = ssd.Get("user:1002");
  if (!value.ok()) {
    std::fprintf(stderr, "get failed: %s\n", value.status().ToString().c_str());
    return 1;
  }
  std::printf("user:1002 -> %s\n", ToString(ByteSpan(value.value())).c_str());

  // --- SEEK/NEXT range scan (iterator interface, after [22]) --------------
  auto iter = ssd.Seek("user:");
  if (!iter.ok()) return 1;
  std::printf("\nall users:\n");
  for (auto& it = iter.value(); it.Valid();) {
    std::printf("  %s = %s\n", it.key().c_str(),
                ToString(ByteSpan(it.value())).c_str());
    if (!it.Next().ok()) break;
  }

  // --- DELETE ---------------------------------------------------------------
  if (!ssd.Delete("user:1003").ok()) return 1;
  std::printf("\nafter delete, user:1003 -> %s\n",
              ssd.Get("user:1003").status().ToString().c_str());

  // --- Durability + stats ----------------------------------------------------
  if (!ssd.Flush().ok()) return 1;
  const KvSsdStats stats = ssd.GetStats();
  std::printf("\ndevice statistics:\n");
  std::printf("  NVMe commands        : %llu\n",
              static_cast<unsigned long long>(stats.commands_submitted));
  std::printf("  PCIe host->device    : %llu B\n",
              static_cast<unsigned long long>(stats.pcie_h2d_bytes));
  std::printf("  NAND pages programmed: %llu\n",
              static_cast<unsigned long long>(stats.nand_pages_programmed));
  std::printf("  device memcpy        : %llu B\n",
              static_cast<unsigned long long>(stats.device_memcpy_bytes));
  std::printf("  virtual elapsed      : %.1f us\n", stats.elapsed_ns / 1e3);
  return 0;
}
