// traffic_explorer: interactive-style tour of BandSlim's transfer-method
// decision space. Runs the threshold calibration benchmark (Section 4.1),
// prints the per-size decision table of the adaptive driver, and shows the
// exact PCIe byte breakdown (doorbell / command fetch / DMA / completion)
// for one PUT of each size class.
//
//   $ ./build/examples/traffic_explorer
#include <cstdio>

#include "core/kvssd.h"
#include "driver/calibration.h"
#include "nvme/command.h"

using namespace bandslim;

namespace {

const char* DecisionName(driver::KvDriver::Decision d) {
  switch (d) {
    case driver::KvDriver::Decision::kPiggyback: return "piggyback";
    case driver::KvDriver::Decision::kPrp: return "page-unit DMA";
    case driver::KvDriver::Decision::kHybrid: return "hybrid";
  }
  return "?";
}

}  // namespace

int main() {
  KvSsdOptions options;
  options.retain_payloads = false;

  // --- 1. calibration --------------------------------------------------------
  std::printf("running the threshold calibration benchmark (Section 4.1)...\n");
  auto thresholds = driver::CalibrateThresholds(options);
  if (!thresholds.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 thresholds.status().ToString().c_str());
    return 1;
  }
  std::printf("  threshold1 (piggyback -> DMA)      : %u B\n",
              thresholds.value().threshold1);
  std::printf("  threshold2 (hybrid remainder limit): %u B\n\n",
              thresholds.value().threshold2);
  options.driver.threshold1 = thresholds.value().threshold1;
  options.driver.threshold2 = thresholds.value().threshold2;

  // --- 2. decision table ------------------------------------------------------
  auto device = KvSsd::Open(options);
  if (!device.ok()) return 1;
  KvSsd& ssd = *device.value();
  std::printf("adaptive driver decisions (alpha = beta = 1):\n");
  std::printf("  %10s  %-14s %s\n", "value size", "path", "NVMe commands");
  for (std::size_t size : {8u, 35u, 64u, 128u, 129u, 2048u, 4096u, 4128u,
                           4160u, 8192u, 12320u}) {
    const auto decision = ssd.Hooks().driver->Decide(size);
    std::uint64_t commands = 1;
    if (decision == driver::KvDriver::Decision::kPiggyback) {
      commands = nvme::codec::PiggybackCommandCount(size);
    } else if (decision == driver::KvDriver::Decision::kHybrid) {
      commands = 1 + CeilDiv(size % kMemPageSize, kTransferCmdPiggybackCapacity);
    }
    std::printf("  %9zuB  %-14s %llu\n", size, DecisionName(decision),
                static_cast<unsigned long long>(commands));
  }

  // --- 3. per-PUT byte breakdown ----------------------------------------------
  std::printf("\nPCIe bytes for one PUT (host->device):\n");
  std::printf("  %10s | %9s %10s %9s | %7s\n", "value size", "doorbell",
              "cmd fetch", "DMA", "total");
  for (std::size_t size : {8u, 32u, 128u, 2048u, 4096u, 4128u, 8192u}) {
    KvSsdOptions o = options;
    auto dev = KvSsd::Open(o).value();
    Bytes v(size, 0x11);
    if (!dev->Put("k", ByteSpan(v)).ok()) return 1;
    const auto& link = dev->link();
    const auto mmio = link.MmioBytes();
    const auto fetch = link.BytesOf(pcie::TrafficClass::kCommandFetch,
                                    pcie::Direction::kHostToDevice);
    const auto dma = link.BytesOf(pcie::TrafficClass::kDmaData,
                                  pcie::Direction::kHostToDevice);
    std::printf("  %9zuB | %9llu %10llu %9llu | %7llu\n", size,
                static_cast<unsigned long long>(mmio),
                static_cast<unsigned long long>(fetch),
                static_cast<unsigned long long>(dma),
                static_cast<unsigned long long>(mmio + fetch + dma));
  }
  std::printf("\nbaseline would move %zu B of DMA for ANY sub-4K value — "
              "that is the paper's Problem #1.\n", kMemPageSize);
  return 0;
}
