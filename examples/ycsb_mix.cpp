// ycsb_mix: YCSB-style mixed read/write workloads against the KV-SSD,
// contrasting the baseline and BandSlim configurations. Uses small records
// (the workload class the paper targets) with YCSB's Zipfian (theta = 0.99)
// request popularity.
//
//   Workload A: 50 % reads / 50 % updates
//   Workload B: 95 % reads /  5 % updates
//   Workload C: 100 % reads
//
//   $ ./build/examples/ycsb_mix [ops_per_workload]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/kvssd.h"
#include "workload/key_gen.h"
#include "workload/value_gen.h"

using namespace bandslim;

namespace {

constexpr std::uint64_t kRecords = 10000;
constexpr std::size_t kValueSize = 100;  // YCSB default field size.

std::string KeyOf(std::uint64_t i) { return "user" + std::to_string(i); }

struct Outcome {
  double read_us = 0;
  double update_us = 0;
  double pcie_mb = 0;
  std::uint64_t nand_reads = 0;
};

Result<Outcome> RunMix(KvStore& ssd, double read_fraction, std::uint64_t ops,
                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  workload::ZipfianKeyChooser zipf(kRecords, 0.99, seed);
  Outcome out;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  sim::Nanoseconds read_ns = 0;
  sim::Nanoseconds update_ns = 0;
  const KvSsdStats before = ssd.GetStats();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::string key = KeyOf(zipf.NextIndex());
    const auto t0 = ssd.Now();
    if (rng.NextDouble() < read_fraction) {
      auto v = ssd.Get(key);
      if (!v.ok()) return v.status();
      read_ns += ssd.Now() - t0;
      ++reads;
    } else {
      Bytes v = workload::MakeValue(kValueSize, seed, i);
      BANDSLIM_RETURN_IF_ERROR(ssd.Put(key, ByteSpan(v)));
      update_ns += ssd.Now() - t0;
      ++updates;
    }
  }
  const KvSsdStats after = ssd.GetStats();
  if (reads > 0) out.read_us = static_cast<double>(read_ns) / static_cast<double>(reads) / 1e3;
  if (updates > 0) {
    out.update_us =
        static_cast<double>(update_ns) / static_cast<double>(updates) / 1e3;
  }
  out.pcie_mb = static_cast<double>(after.pcie_h2d_bytes + after.pcie_d2h_bytes -
                                    before.pcie_h2d_bytes - before.pcie_d2h_bytes) / 1e6;
  out.nand_reads = after.nand_pages_read - before.nand_pages_read;
  return out;
}

Result<std::unique_ptr<KvSsd>> LoadedDevice(bool bandslim_config) {
  KvSsdOptions o;
  o.retain_payloads = false;
  if (bandslim_config) {
    o.driver.method = driver::TransferMethod::kAdaptive;
    o.buffer.policy = buffer::PackingPolicy::kSelectiveBackfill;
  } else {
    o.driver.method = driver::TransferMethod::kPrp;
    o.buffer.policy = buffer::PackingPolicy::kBlock;
  }
  auto ssd = KvSsd::Open(o);
  if (!ssd.ok()) return ssd.status();
  // Load phase.
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    Bytes v = workload::MakeValue(kValueSize, 7, i);
    BANDSLIM_RETURN_IF_ERROR(ssd.value()->Put(KeyOf(i), ByteSpan(v)));
  }
  BANDSLIM_RETURN_IF_ERROR(ssd.value()->Flush());
  return std::move(ssd).value();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  std::printf("YCSB-style mixes: %llu records x %zu B, %llu ops per mix\n\n",
              static_cast<unsigned long long>(kRecords), kValueSize,
              static_cast<unsigned long long>(ops));
  std::printf("%-10s %-10s | %10s %11s %10s %11s\n", "mix", "config",
              "read us", "update us", "PCIe MB", "NAND reads");

  const struct {
    const char* name;
    double read_fraction;
  } mixes[] = {{"YCSB-A", 0.5}, {"YCSB-B", 0.95}, {"YCSB-C", 1.0}};

  for (const auto& mix : mixes) {
    for (int cfg = 0; cfg < 2; ++cfg) {
      auto ssd = LoadedDevice(cfg == 1);
      if (!ssd.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     ssd.status().ToString().c_str());
        return 1;
      }
      auto out = RunMix(*ssd.value(), mix.read_fraction, ops, 42);
      if (!out.ok()) {
        std::fprintf(stderr, "run failed: %s\n", out.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %-10s | %10.1f %11.1f %10.2f %11llu\n", mix.name,
                  cfg == 1 ? "BandSlim" : "baseline", out.value().read_us,
                  out.value().update_us, out.value().pcie_mb,
                  static_cast<unsigned long long>(out.value().nand_reads));
    }
  }
  std::printf("\nBandSlim cuts the update path (~2.5x here) and halves PCIe "
              "bytes on write-heavy mixes; random reads cost the same either "
              "way — they are dominated by the page-unit read DMA, the "
              "read-side analogue of Problem #1.\n");
  return 0;
}
