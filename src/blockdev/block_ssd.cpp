#include "blockdev/block_ssd.h"

#include <algorithm>
#include <cstring>

namespace bandslim::blockdev {

BlockSsd::BlockSsd(const nand::NandGeometry& geometry, sim::VirtualClock* clock,
                   const sim::CostModel* cost, pcie::PcieLink* link,
                   stats::MetricsRegistry* metrics, BlockSsdConfig config)
    : clock_(clock),
      cost_(cost),
      link_(link),
      config_(config),
      nand_(geometry, clock, cost, metrics),
      ftl_(&nand_, metrics) {}

void BlockSsd::ChargeCommand(std::uint64_t prp_pages) {
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);
  const std::uint64_t list_bytes = prp_pages > 2 ? (prp_pages - 1) * 8 : 0;
  link_->Record(pcie::TrafficClass::kCommandFetch,
                pcie::Direction::kHostToDevice,
                cost_->cmd_fetch_bytes + list_bytes);
  link_->Record(pcie::TrafficClass::kCompletion, pcie::Direction::kDeviceToHost,
                cost_->cqe_bytes);
  clock_->Advance(cost_->cmd_round_trip_ns);
}

Status BlockSsd::FlushEntry(std::uint64_t lpn) {
  auto it = cache_.find(lpn);
  if (it == cache_.end()) return Status::Ok();
  CacheEntry& entry = it->second;
  // Read-modify-write when the page is partially dirty and already mapped.
  const bool partial = std::find(entry.valid.begin(), entry.valid.end(),
                                 false) != entry.valid.end();
  if (partial && ftl_.IsMapped(lpn)) {
    Bytes old(kNandPageSize);
    BANDSLIM_RETURN_IF_ERROR(ftl_.Read(lpn, MutByteSpan(old)));
    for (std::size_t b = 0; b < kBlocksPerNandPage; ++b) {
      if (!entry.valid[b]) {
        std::memcpy(entry.data.data() + b * kBlockSize,
                    old.data() + b * kBlockSize, kBlockSize);
      }
    }
  }
  BANDSLIM_RETURN_IF_ERROR(ftl_.Write(lpn, ByteSpan(entry.data),
                                      ftl::Stream::kVlog,
                                      config_.retain_payloads));
  cache_.erase(it);
  return Status::Ok();
}

Status BlockSsd::EvictIfNeeded() {
  while (cache_.size() > config_.write_buffer_entries && !fifo_.empty()) {
    const std::uint64_t lpn = fifo_.front();
    fifo_.pop_front();
    BANDSLIM_RETURN_IF_ERROR(FlushEntry(lpn));
  }
  return Status::Ok();
}

Status BlockSsd::Write(std::uint64_t lba, ByteSpan data) {
  if (data.empty() || !IsAlignedPow2(data.size(), kBlockSize)) {
    return Status::InvalidArgument("block writes must be 4 KiB multiples");
  }
  const std::uint64_t pages = data.size() / kBlockSize;
  ChargeCommand(pages);
  // Page-unit DMA host -> device.
  link_->Record(pcie::TrafficClass::kDmaData, pcie::Direction::kHostToDevice,
                data.size());
  clock_->Advance(cost_->DmaCost(data.size()));

  for (std::uint64_t i = 0; i < pages; ++i) {
    const std::uint64_t block = lba + i;
    const std::uint64_t lpn = block / kBlocksPerNandPage;
    const std::size_t slot = block % kBlocksPerNandPage;
    auto it = cache_.find(lpn);
    if (it == cache_.end()) {
      it = cache_.emplace(lpn, CacheEntry{}).first;
      fifo_.push_back(lpn);
    }
    std::memcpy(it->second.data.data() + slot * kBlockSize,
                data.data() + i * kBlockSize, kBlockSize);
    it->second.valid[slot] = true;
    // A fully-populated entry persists immediately — the amortization that
    // block SSDs get from 4 KiB-aligned traffic (Section 1).
    if (std::find(it->second.valid.begin(), it->second.valid.end(), false) ==
        it->second.valid.end()) {
      BANDSLIM_RETURN_IF_ERROR(FlushEntry(lpn));
      auto pos = std::find(fifo_.begin(), fifo_.end(), lpn);
      if (pos != fifo_.end()) fifo_.erase(pos);
    }
  }
  ++writes_issued_;
  return EvictIfNeeded();
}

Status BlockSsd::Read(std::uint64_t lba, MutByteSpan out) {
  if (out.empty() || !IsAlignedPow2(out.size(), kBlockSize)) {
    return Status::InvalidArgument("block reads must be 4 KiB multiples");
  }
  const std::uint64_t pages = out.size() / kBlockSize;
  ChargeCommand(pages);
  Bytes scratch(kNandPageSize);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const std::uint64_t block = lba + i;
    const std::uint64_t lpn = block / kBlocksPerNandPage;
    const std::size_t slot = block % kBlocksPerNandPage;
    MutByteSpan dst = out.subspan(i * kBlockSize, kBlockSize);
    auto it = cache_.find(lpn);
    if (it != cache_.end() && it->second.valid[slot]) {
      std::memcpy(dst.data(), it->second.data.data() + slot * kBlockSize,
                  kBlockSize);
      continue;
    }
    if (!ftl_.IsMapped(lpn)) {
      std::memset(dst.data(), 0, kBlockSize);  // Never-written block.
      continue;
    }
    BANDSLIM_RETURN_IF_ERROR(ftl_.Read(lpn, MutByteSpan(scratch)));
    std::memcpy(dst.data(), scratch.data() + slot * kBlockSize, kBlockSize);
  }
  // Page-unit DMA device -> host.
  link_->Record(pcie::TrafficClass::kDmaData, pcie::Direction::kDeviceToHost,
                out.size());
  clock_->Advance(cost_->DmaCost(out.size()));
  ++reads_issued_;
  return Status::Ok();
}

Status BlockSsd::FlushCache() {
  ChargeCommand(0);
  while (!fifo_.empty()) {
    const std::uint64_t lpn = fifo_.front();
    fifo_.pop_front();
    BANDSLIM_RETURN_IF_ERROR(FlushEntry(lpn));
  }
  return Status::Ok();
}

}  // namespace bandslim::blockdev
