// Block-interface NVMe SSD model (the conventional device of Figure 1a).
// Exposes 4 KiB logical blocks; internally it aligns four blocks per 16 KiB
// NAND page through a battery-backed write-back page buffer — the standard
// technique (Section 1) that lets block SSDs amortize NAND page writes,
// and exactly what a KV-SSD cannot do for variable-size records without
// BandSlim's packing.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>

#include "common/status.h"
#include "common/types.h"
#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"

namespace bandslim::blockdev {

inline constexpr std::size_t kBlockSize = kMemPageSize;  // 4 KiB LBAs.
inline constexpr std::size_t kBlocksPerNandPage =
    kNandPageSize / kBlockSize;

struct BlockSsdConfig {
  // Write-back buffer capacity in 16 KiB NAND-page entries.
  std::size_t write_buffer_entries = 64;
  bool retain_payloads = true;
};

class BlockSsd {
 public:
  BlockSsd(const nand::NandGeometry& geometry, sim::VirtualClock* clock,
           const sim::CostModel* cost, pcie::PcieLink* link,
           stats::MetricsRegistry* metrics, BlockSsdConfig config = {});

  // One NVMe block-write command: `data` must be a multiple of 4 KiB.
  // Accounts command traffic + page-unit DMA + buffered NAND programs.
  Status Write(std::uint64_t lba, ByteSpan data);

  // One NVMe block-read command (multiple of 4 KiB).
  Status Read(std::uint64_t lba, MutByteSpan out);

  // NVMe flush: drains the write-back buffer to NAND.
  Status FlushCache();

  const nand::NandFlash& nand() const { return nand_; }
  const ftl::PageFtl& ftl() const { return ftl_; }
  std::uint64_t writes_issued() const { return writes_issued_; }
  std::uint64_t reads_issued() const { return reads_issued_; }

 private:
  struct CacheEntry {
    Bytes data{Bytes(kNandPageSize, 0)};
    std::array<bool, kBlocksPerNandPage> valid{};
  };

  // Per-command protocol accounting (doorbell + fetch + completion + RT).
  void ChargeCommand(std::uint64_t prp_list_entries);
  Status FlushEntry(std::uint64_t lpn);
  Status EvictIfNeeded();

  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  pcie::PcieLink* link_;
  BlockSsdConfig config_;
  nand::NandFlash nand_;
  ftl::PageFtl ftl_;

  std::map<std::uint64_t, CacheEntry> cache_;  // lpn -> buffered page.
  std::deque<std::uint64_t> fifo_;             // Eviction order.

  std::uint64_t writes_issued_ = 0;
  std::uint64_t reads_issued_ = 0;
};

}  // namespace bandslim::blockdev
