// DMA Log Table (DLT), Section 3.3.3: a circular queue recording the
// destination address and size of every page-unit DMA whose extent the
// Write Pointer must not overwrite. The head always points at the oldest
// unconsumed entry; the backfilling write pointer consults only that head,
// keeping the check O(1).
//
// The paper stores each destination compactly as (logical NAND page number,
// memory-page offset) — (26+2) bits for a 1 TB / 16 KiB-page device instead
// of a 40-bit byte address. EncodeCompact/DecodeCompact implement that
// encoding (destinations are always 4 KiB aligned, so the low 12 bits are
// zero by construction); the queue itself keeps decoded addresses for
// simulation convenience.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace bandslim::buffer {

struct DltEntry {
  std::uint64_t dest_addr = 0;  // Byte address in vLog logical space; 4K aligned.
  std::uint64_t size = 0;       // Bytes actually occupied by the DMA'd value.

  std::uint64_t end() const { return dest_addr + size; }
};

class DmaLogTable {
 public:
  explicit DmaLogTable(std::size_t capacity) : ring_(capacity) {}

  bool Empty() const { return count_ == 0; }
  bool Full() const { return count_ == ring_.size(); }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }

  // Appends an extent; returns false when the table is full (the caller must
  // consume the oldest entry first).
  bool Push(std::uint64_t dest_addr, std::uint64_t size) {
    if (Full()) return false;
    ring_[(head_ + count_) % ring_.size()] = {dest_addr, size};
    ++count_;
    return true;
  }

  // Oldest unconsumed entry, or nullptr when empty.
  const DltEntry* Oldest() const {
    return Empty() ? nullptr : &ring_[head_];
  }

  void ConsumeOldest() {
    if (Empty()) return;
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }

  // Compact (logical NAND page number, memory-page offset) encoding.
  static std::uint32_t EncodeCompact(std::uint64_t dest_addr) {
    const std::uint64_t lpn = dest_addr / kNandPageSize;
    const std::uint64_t slot = (dest_addr % kNandPageSize) / kMemPageSize;
    return static_cast<std::uint32_t>((lpn << 2) | slot);
  }
  static std::uint64_t DecodeCompact(std::uint32_t compact) {
    const std::uint64_t lpn = compact >> 2;
    const std::uint64_t slot = compact & 0x3;
    return lpn * kNandPageSize + slot * kMemPageSize;
  }

 private:
  std::vector<DltEntry> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace bandslim::buffer
