#include "buffer/page_buffer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace bandslim::buffer {

const char* PolicyName(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kBlock: return "Block";
    case PackingPolicy::kAll: return "All";
    case PackingPolicy::kSelective: return "Select";
    case PackingPolicy::kSelectiveBackfill: return "Backfill";
  }
  return "?";
}

NandPageBuffer::NandPageBuffer(const BufferConfig& config,
                               sim::VirtualClock* clock,
                               const sim::CostModel* cost,
                               stats::MetricsRegistry* metrics, FlushFn flush,
                               trace::Tracer* tracer)
    : config_(config),
      clock_(clock),
      cost_(cost),
      tracer_(tracer),
      flush_(std::move(flush)),
      dlt_(config.dlt_entries),
      memcpy_bytes_counter_(metrics->GetCounter("buffer.memcpy_bytes")),
      flushed_pages_counter_(metrics->GetCounter("buffer.flushed_pages")),
      wasted_bytes_counter_(metrics->GetCounter("buffer.wasted_bytes")),
      dlt_evictions_counter_(
          metrics->GetCounter("buffer.dlt_forced_evictions")) {
  assert(config_.num_entries >= 2 && "window must hold at least two entries");
  base_lpn_ = config_.initial_lpn;
  wp_ = base_lpn_ * kNandPageSize;
  dma_frontier_ = wp_;
}

void NandPageBuffer::ChargeMemcpy(std::uint64_t bytes) {
  {
    trace::SpanScope span(tracer_, trace::Category::kBufferCopy, bytes);
    clock_->Advance(cost_->MemcpyCost(bytes));
  }
  memcpy_bytes_ += bytes;
  memcpy_bytes_counter_->Add(bytes);
}

void NandPageBuffer::CopyIn(std::uint64_t addr, ByteSpan src) {
  std::size_t off = 0;
  while (off < src.size()) {
    const std::uint64_t a = addr + off;
    const std::size_t idx = static_cast<std::size_t>(a / kNandPageSize - base_lpn_);
    const std::size_t within = a % kNandPageSize;
    const std::size_t n = std::min(kNandPageSize - within, src.size() - off);
    assert(idx < entries_.size());
    std::memcpy(entries_[idx].data.data() + within, src.data() + off, n);
    off += n;
  }
}

void NandPageBuffer::CopyOut(std::uint64_t addr, MutByteSpan dst) const {
  std::size_t off = 0;
  while (off < dst.size()) {
    const std::uint64_t a = addr + off;
    const std::size_t idx = static_cast<std::size_t>(a / kNandPageSize - base_lpn_);
    const std::size_t within = a % kNandPageSize;
    const std::size_t n = std::min(kNandPageSize - within, dst.size() - off);
    assert(idx < entries_.size());
    std::memcpy(dst.data() + off, entries_[idx].data.data() + within, n);
    off += n;
  }
}

void NandPageBuffer::AddUsed(std::uint64_t addr, std::uint64_t size) {
  std::uint64_t off = 0;
  while (off < size) {
    const std::uint64_t a = addr + off;
    const std::size_t idx = static_cast<std::size_t>(a / kNandPageSize - base_lpn_);
    const std::uint64_t within = a % kNandPageSize;
    const std::uint64_t n = std::min<std::uint64_t>(kNandPageSize - within, size - off);
    assert(idx < entries_.size());
    entries_[idx].used += static_cast<std::uint32_t>(n);
    assert(entries_[idx].used <= kNandPageSize);
    off += n;
  }
}

Status NandPageBuffer::EnsureCoverage(std::uint64_t end_addr) {
  const std::uint64_t needed_pages = CeilDiv(end_addr, kNandPageSize);
  while (base_lpn_ + entries_.size() < needed_pages) {
    entries_.push_back(Entry{page_pool_.Acquire(), 0});
  }
  while (entries_.size() > config_.num_entries) {
    BANDSLIM_RETURN_IF_ERROR(ForceFlushFront());
  }
  return Status::Ok();
}

Status NandPageBuffer::FlushFront() {
  assert(!entries_.empty());
  Entry& e = entries_.front();
  {
    trace::SpanScope span(tracer_, trace::Category::kVlogFlush, kNandPageSize);
    BANDSLIM_RETURN_IF_ERROR(flush_(base_lpn_, ByteSpan(e.data), e.used));
  }
  wasted_bytes_ += kNandPageSize - e.used;
  wasted_bytes_counter_->Add(kNandPageSize - e.used);
  ++flushed_pages_;
  flushed_pages_counter_->Increment();
  page_pool_.Release(std::move(e.data));
  entries_.pop_front();
  ++base_lpn_;
  return Status::Ok();
}

Status NandPageBuffer::ForceFlushFront() {
  assert(!entries_.empty());
  const std::uint64_t end = EntryEndAddr(0);
  // Any DMA extent starting inside the victim entry can no longer be
  // backfilled around: consume it and advance the WP past it.
  while (!dlt_.Empty() && dlt_.Oldest()->dest_addr < end) {
    wp_ = std::max(wp_, dlt_.Oldest()->end());
    dlt_.ConsumeOldest();
  }
  wp_ = std::max(wp_, end);
  dma_frontier_ = std::max(dma_frontier_, wp_);
  return FlushFront();
}

Status NandPageBuffer::FlushCompleted() {
  while (!entries_.empty() && wp_ >= EntryEndAddr(0)) {
    BANDSLIM_RETURN_IF_ERROR(FlushFront());
  }
  return Status::Ok();
}

void NandPageBuffer::LeapOverExtents(std::uint64_t size) {
  // Section 3.3.3: if WP + value size would cross the oldest unconsumed
  // extent, leap to the address right after that extent and re-check.
  while (!dlt_.Empty()) {
    const DltEntry* oldest = dlt_.Oldest();
    if (wp_ + size > oldest->dest_addr) {
      wp_ = std::max(wp_, oldest->end());
      dlt_.ConsumeOldest();
    } else {
      break;
    }
  }
}

Result<std::uint64_t> NandPageBuffer::PackPiggybacked(ByteSpan value) {
  assert(!value.empty());
  const std::uint64_t size = value.size();
  if (size >= (config_.num_entries - 1) * kNandPageSize) {
    return Status::InvalidArgument("value larger than the buffer window");
  }
  std::uint64_t dest = 0;
  std::uint64_t consume = 0;
  // Window pressure during EnsureCoverage can advance the WP; recompute the
  // placement until it is stable.
  for (;;) {
    if (config_.policy == PackingPolicy::kSelectiveBackfill) {
      LeapOverExtents(size);
    }
    if (config_.policy == PackingPolicy::kBlock) {
      dest = RoundUpPow2(wp_, kMemPageSize);
      consume = RoundUpPow2(size, kMemPageSize);
    } else {
      dest = wp_;
      consume = size;
    }
    const std::uint64_t wp_before = wp_;
    BANDSLIM_RETURN_IF_ERROR(EnsureCoverage(dest + consume));
    if (wp_ == wp_before) break;
  }
  CopyIn(dest, value);
  AddUsed(dest, size);
  // Extracting piggybacked fragments into the buffer is a device-CPU copy
  // under every policy (Section 3.3.1).
  ChargeMemcpy(size);
  wp_ = dest + consume;
  BANDSLIM_RETURN_IF_ERROR(FlushCompleted());
  return dest;
}

Result<NandPageBuffer::DmaReservation> NandPageBuffer::ReserveDma(
    std::uint64_t prp_bytes, std::uint64_t total_size) {
  assert(prp_bytes > 0 && IsAlignedPow2(prp_bytes, kMemPageSize));
  assert(total_size > 0);
  if (std::max(prp_bytes, total_size) >=
      (config_.num_entries - 1) * kNandPageSize) {
    return Status::InvalidArgument("value larger than the buffer window");
  }
  DmaReservation r;
  r.prp_bytes = prp_bytes;
  r.total_size = total_size;
  for (;;) {
    std::uint64_t place_base = wp_;
    if (config_.policy == PackingPolicy::kSelectiveBackfill) {
      // DMA extents stack after the last pending extent; the WP lags behind,
      // backfilling the gaps.
      place_base = std::max(wp_, dma_frontier_);
    }
    r.dest_addr = RoundUpPow2(place_base, kMemPageSize);
    const std::uint64_t end =
        r.dest_addr + std::max(prp_bytes, total_size);
    const std::uint64_t wp_before = wp_;
    const std::uint64_t frontier_before = dma_frontier_;
    BANDSLIM_RETURN_IF_ERROR(EnsureCoverage(end));
    if (wp_ == wp_before && dma_frontier_ == frontier_before) break;
  }
  return r;
}

MutByteSpan NandPageBuffer::DmaPageSlice(const DmaReservation& r,
                                         std::uint64_t byte_offset) {
  assert(IsAlignedPow2(byte_offset, kMemPageSize));
  assert(byte_offset < r.prp_bytes);
  const std::uint64_t addr = r.dest_addr + byte_offset;
  const std::size_t idx = static_cast<std::size_t>(addr / kNandPageSize - base_lpn_);
  const std::size_t within = addr % kNandPageSize;
  assert(idx < entries_.size());
  return {entries_[idx].data.data() + within, kMemPageSize};
}

Status NandPageBuffer::AppendTrailing(const DmaReservation& r,
                                      std::uint64_t offset, ByteSpan fragment) {
  if (offset + fragment.size() > r.total_size) {
    return Status::InvalidArgument("trailing fragment beyond reserved extent");
  }
  CopyIn(r.dest_addr + offset, fragment);
  ChargeMemcpy(fragment.size());
  return Status::Ok();
}

Result<std::uint64_t> NandPageBuffer::CommitDma(const DmaReservation& r) {
  std::uint64_t final_addr = r.dest_addr;
  switch (config_.policy) {
    case PackingPolicy::kBlock:
      AddUsed(r.dest_addr, r.total_size);
      wp_ = r.dest_addr + RoundUpPow2(r.total_size, kMemPageSize);
      break;
    case PackingPolicy::kAll:
      if (r.dest_addr == wp_) {
        // WP happened to be page-aligned: the DMA landed in place and the
        // memory copy is skipped (Section 3.3.1).
        AddUsed(wp_, r.total_size);
        wp_ += r.total_size;
      } else {
        Bytes tmp(r.total_size);
        CopyOut(r.dest_addr, MutByteSpan(tmp));
        CopyIn(wp_, ByteSpan(tmp));
        ChargeMemcpy(r.total_size);
        AddUsed(wp_, r.total_size);
        final_addr = wp_;
        wp_ += r.total_size;
      }
      break;
    case PackingPolicy::kSelective:
      AddUsed(r.dest_addr, r.total_size);
      wp_ = r.dest_addr + r.total_size;
      break;
    case PackingPolicy::kSelectiveBackfill:
      AddUsed(r.dest_addr, r.total_size);
      if (dlt_.Full()) {
        // Capacity-capped DLT (Section 3.3.3): retire the oldest extent,
        // abandoning whatever gap remains before it.
        wp_ = std::max(wp_, dlt_.Oldest()->end());
        dlt_.ConsumeOldest();
        ++dlt_forced_evictions_;
        dlt_evictions_counter_->Increment();
      }
      dlt_.Push(r.dest_addr, r.total_size);
      break;
  }
  dma_frontier_ = std::max(dma_frontier_, r.dest_addr + r.total_size);
  BANDSLIM_RETURN_IF_ERROR(FlushCompleted());
  return final_addr;
}

bool NandPageBuffer::Contains(std::uint64_t addr, std::uint64_t size) const {
  const std::uint64_t lo = window_base_addr();
  const std::uint64_t hi = (base_lpn_ + entries_.size()) * kNandPageSize;
  return addr >= lo && addr + size <= hi;
}

Status NandPageBuffer::ReadRange(std::uint64_t addr, MutByteSpan out) const {
  if (!Contains(addr, out.size())) {
    return Status::InvalidArgument("range not resident in buffer window");
  }
  CopyOut(addr, out);
  return Status::Ok();
}

Status NandPageBuffer::FlushAll() {
  while (!dlt_.Empty()) {
    wp_ = std::max(wp_, dlt_.Oldest()->end());
    dlt_.ConsumeOldest();
  }
  wp_ = std::max(wp_, dma_frontier_);
  // Flush up to the last entry holding payload; trailing untouched entries
  // are simply dropped (they were never written).
  std::size_t last_used = entries_.size();
  for (std::size_t i = entries_.size(); i > 0; --i) {
    if (entries_[i - 1].used > 0) {
      last_used = i;
      break;
    }
    last_used = i - 1;
  }
  for (std::size_t i = 0; i < last_used; ++i) {
    BANDSLIM_RETURN_IF_ERROR(FlushFront());
  }
  for (Entry& e : entries_) page_pool_.Release(std::move(e.data));
  entries_.clear();
  base_lpn_ = CeilDiv(std::max(wp_, base_lpn_ * kNandPageSize), kNandPageSize);
  wp_ = base_lpn_ * kNandPageSize;
  dma_frontier_ = wp_;
  return Status::Ok();
}

}  // namespace bandslim::buffer
