// The in-device NAND page buffer (Sections 2.2 and 3.3). A sliding window
// of 16 KiB buffer entries over the tail of the vLog's logical NAND page
// space, held in (battery-backed) device DRAM. Incoming values are placed
// into the window according to the active packing policy; entries are
// written to NAND (through the flush callback) once the Write Pointer has
// passed them, or earlier under window pressure.
//
// Packing policies (Figure 7):
//  * kBlock             — the baseline: every payload consumes whole 4 KiB
//                         memory-page slots, as block-interface SSDs pack.
//  * kAll               — KAML-style All Packing: everything is memcpy'd to
//                         the Write Pointer, byte-dense (copies cost time).
//  * kSelective         — piggybacked values pack at the WP; DMA'd values
//                         stay where the page-aligned DMA dropped them and
//                         the WP moves past (alignment gap is lost).
//  * kSelectiveBackfill — like kSelective, but the WP does NOT move past a
//                         DMA extent: the extent is recorded in the DMA Log
//                         Table and later piggybacked values backfill the
//                         gap, the WP leaping over each extent when the
//                         next value no longer fits before it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "buffer/dma_log_table.h"
#include "common/pool.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "trace/trace.h"

namespace bandslim::buffer {

enum class PackingPolicy {
  kBlock = 0,
  kAll = 1,
  kSelective = 2,
  kSelectiveBackfill = 3,
};

const char* PolicyName(PackingPolicy policy);

struct BufferConfig {
  PackingPolicy policy = PackingPolicy::kSelectiveBackfill;
  std::size_t num_entries = 512;  // 512 x 16 KiB = 8 MiB window.
  std::size_t dlt_entries = 512;  // Capped to the entry count (Sec 3.3.3).
  // Logical NAND page the window starts at (used when reassembling a device
  // after a power cycle: the vLog tail resumes at the checkpointed page).
  std::uint64_t initial_lpn = 0;
};

// Flush callback: persist one logical NAND page. `used_bytes` is the number
// of payload bytes actually packed into the page (for waste accounting).
using FlushFn =
    std::function<Status(std::uint64_t lpn, ByteSpan page, std::uint32_t used_bytes)>;

class NandPageBuffer {
 public:
  NandPageBuffer(const BufferConfig& config, sim::VirtualClock* clock,
                 const sim::CostModel* cost, stats::MetricsRegistry* metrics,
                 FlushFn flush, trace::Tracer* tracer = nullptr);

  PackingPolicy policy() const { return config_.policy; }

  // ---- Write path ---------------------------------------------------------

  // Packs a fully reassembled piggybacked value (device memcpy is charged).
  // Returns the byte address of the value in vLog logical space.
  Result<std::uint64_t> PackPiggybacked(ByteSpan value);

  // Reserves a landing zone for a page-unit DMA of `prp_bytes` (a multiple
  // of 4 KiB) belonging to a value of `total_size` bytes (> prp_bytes - 4 KiB;
  // hybrid transfers append trailing bytes beyond the DMA'd pages).
  struct DmaReservation {
    std::uint64_t dest_addr = 0;  // 4 KiB aligned.
    std::uint64_t prp_bytes = 0;
    std::uint64_t total_size = 0;
  };
  Result<DmaReservation> ReserveDma(std::uint64_t prp_bytes,
                                    std::uint64_t total_size);

  // 4 KiB-page sink for the DMA engine: returns the in-window span for the
  // page at dest_addr + byte_offset. Pages never straddle buffer entries
  // (both are 4 KiB-aligned).
  MutByteSpan DmaPageSlice(const DmaReservation& r, std::uint64_t byte_offset);

  // Appends hybrid trailing bytes at dest + offset (device memcpy charged).
  Status AppendTrailing(const DmaReservation& r, std::uint64_t offset,
                        ByteSpan fragment);

  // Applies the packing policy to the completed arrival and returns the
  // final byte address of the value (All Packing may move it to the WP).
  Result<std::uint64_t> CommitDma(const DmaReservation& r);

  // ---- Read path ----------------------------------------------------------

  // Whether [addr, addr+size) is still resident in the window (not flushed).
  bool Contains(std::uint64_t addr, std::uint64_t size) const;
  // First byte address still resident; everything below went to NAND.
  std::uint64_t window_base_addr() const { return base_lpn_ * kNandPageSize; }
  Status ReadRange(std::uint64_t addr, MutByteSpan out) const;

  // ---- Maintenance --------------------------------------------------------

  // Drains every entry to NAND (consuming pending DLT extents); the window
  // restarts at the next NAND page boundary.
  Status FlushAll();

  // ---- Introspection ------------------------------------------------------
  std::uint64_t wp() const { return wp_; }
  std::uint64_t dma_frontier() const { return dma_frontier_; }
  std::uint64_t flushed_pages() const { return flushed_pages_; }
  std::uint64_t wasted_bytes() const { return wasted_bytes_; }
  std::uint64_t memcpy_bytes() const { return memcpy_bytes_; }
  std::uint64_t dlt_forced_evictions() const { return dlt_forced_evictions_; }
  const DmaLogTable& dlt() const { return dlt_; }

 private:
  struct Entry {
    Bytes data;
    std::uint32_t used = 0;
  };

  std::uint64_t EntryEndAddr(std::size_t index) const {
    return (base_lpn_ + index + 1) * kNandPageSize;
  }
  // Grows the window to cover [*, end_addr), force-flushing the front when
  // the entry cap is exceeded.
  Status EnsureCoverage(std::uint64_t end_addr);
  // Flushes the front entry regardless of fill level (window pressure),
  // consuming any DLT extents that start inside it and advancing the WP.
  Status ForceFlushFront();
  // Flushes every leading entry the WP has fully passed.
  Status FlushCompleted();
  Status FlushFront();

  // Scatter/gather between the logical byte range and window entries.
  void CopyIn(std::uint64_t addr, ByteSpan src);
  void CopyOut(std::uint64_t addr, MutByteSpan dst) const;
  void AddUsed(std::uint64_t addr, std::uint64_t size);
  void ChargeMemcpy(std::uint64_t bytes);

  // Backfilling helper: leaps the WP over DLT extents until `size` bytes fit
  // before the oldest pending extent (Section 3.3.3).
  void LeapOverExtents(std::uint64_t size);

  BufferConfig config_;
  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  trace::Tracer* tracer_;  // Optional; null = untraced.
  FlushFn flush_;

  std::deque<Entry> entries_;
  // Entry buffers recycle through this pool: a flushed entry's 16 KiB page
  // is reused (re-zeroed) by the next EnsureCoverage instead of returning to
  // the allocator, so steady-state packing never mallocs.
  BufferPool page_pool_{kNandPageSize};
  std::uint64_t base_lpn_ = 0;   // Logical NAND page of entries_.front().
  std::uint64_t wp_ = 0;         // Write Pointer (byte address).
  std::uint64_t dma_frontier_ = 0;  // End of the last placed DMA extent.
  DmaLogTable dlt_;

  std::uint64_t flushed_pages_ = 0;
  std::uint64_t wasted_bytes_ = 0;
  std::uint64_t memcpy_bytes_ = 0;
  std::uint64_t dlt_forced_evictions_ = 0;

  stats::Counter* memcpy_bytes_counter_;
  stats::Counter* flushed_pages_counter_;
  stats::Counter* wasted_bytes_counter_;
  stats::Counter* dlt_evictions_counter_;
};

}  // namespace bandslim::buffer
