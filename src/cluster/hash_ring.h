// Consistent-hash ring for the KvCluster router. Each shard contributes
// `virtual_nodes` points on a 64-bit ring; a key is owned by the shard of
// the first point at or clockwise-after the key's hash. Virtual nodes keep
// the per-shard key share close to uniform (stddev shrinks ~ 1/sqrt(V)),
// and the construction is a pure function of (num_shards, virtual_nodes,
// seed) — no RNG state, so ownership is bit-stable across runs and
// processes, which the cluster's determinism tests rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace bandslim::cluster {

// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  HashRing(std::uint32_t num_shards, std::uint32_t virtual_nodes,
           std::uint64_t seed)
      : seed_(seed) {
    points_.reserve(static_cast<std::size_t>(num_shards) * virtual_nodes);
    for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
      for (std::uint32_t replica = 0; replica < virtual_nodes; ++replica) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(shard) << 32) | replica;
        points_.emplace_back(Mix64(seed ^ Mix64(id)), shard);
      }
    }
    // Sort by (hash, shard): ties — astronomically unlikely but possible —
    // resolve to the lowest shard index, deterministically.
    std::sort(points_.begin(), points_.end());
  }

  std::uint64_t HashKey(std::string_view key) const {
    // FNV-1a over the key bytes, then mixed with the ring seed so distinct
    // seeds induce independent placements of the same key set.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return Mix64(h ^ seed_);
  }

  std::uint32_t OwnerOf(std::string_view key) const {
    const std::uint64_t h = HashKey(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, std::uint64_t hash) { return p.first < hash; });
    if (it == points_.end()) it = points_.begin();  // Wrap around.
    return it->second;
  }

  std::size_t num_points() const { return points_.size(); }

  // Fraction of the 64-bit ring each shard owns, in permille. Keys hash
  // uniformly over the ring, so these are the EXPECTED keys-per-shard
  // shares implied by the virtual-node placement — the baseline the fleet
  // ring-skew watchdog compares actual routed counts against. Entries sum
  // to ~1000 (truncation can lose up to num_shards - 1 permille).
  std::vector<std::uint64_t> OwnershipWeightsPermille(
      std::uint32_t num_shards) const {
    std::vector<std::uint64_t> weights(num_shards, 0);
    if (points_.empty() || num_shards == 0) return weights;
    if (num_shards == 1) {
      weights[0] = 1000;
      return weights;
    }
    // OwnerOf resolves a hash to the first point at or clockwise-after it,
    // so the arc (prev_point, point] belongs to point's shard. Unsigned
    // wraparound handles both the first point's arc and per-shard sums
    // (each strictly below 2^64 once num_shards >= 2).
    std::vector<std::uint64_t> arcs(num_shards, 0);
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const std::uint64_t prev =
          points_[i == 0 ? points_.size() - 1 : i - 1].first;
      arcs[points_[i].second] += points_[i].first - prev;
    }
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      weights[s] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(arcs[s]) * 1000) >> 64);
    }
    return weights;
  }

 private:
  using Point = std::pair<std::uint64_t, std::uint32_t>;  // (hash, shard).
  std::vector<Point> points_;
  std::uint64_t seed_;
};

}  // namespace bandslim::cluster
