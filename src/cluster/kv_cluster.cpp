#include "cluster/kv_cluster.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bandslim::cluster {

// ---------------------------------------------------------------------------
// TenantView: a KvStore facade bound to one tenant index.
// ---------------------------------------------------------------------------

class KvCluster::TenantView : public KvStore {
 public:
  TenantView(KvCluster* cluster, std::size_t tenant)
      : cluster_(cluster), tenant_(tenant) {}

  using KvStore::Put;
  using KvStore::PutBatch;
  Status Put(std::string_view key, ByteSpan value) override {
    return cluster_->DoPut(tenant_, key, value);
  }
  Result<Bytes> Get(std::string_view key) override {
    return cluster_->DoGet(tenant_, key);
  }
  Status GetInto(std::string_view key, Bytes* value) override {
    return cluster_->DoGetInto(tenant_, key, value);
  }
  Status Delete(std::string_view key) override {
    return cluster_->DoDelete(tenant_, key);
  }
  Status PutBatch(std::span<const KvPair> batch) override {
    return cluster_->DoPutBatch(tenant_, batch);
  }
  Result<std::vector<BatchGetResult>> GetBatch(
      std::span<const std::string> keys) override {
    return cluster_->DoGetBatch(tenant_, keys);
  }
  Result<std::uint32_t> DeleteBatch(
      std::span<const std::string> keys) override {
    return cluster_->DoDeleteBatch(tenant_, keys);
  }
  Status Flush() override { return cluster_->DoFlush(); }

  // Observation is cluster-wide regardless of tenant: the fleet has one
  // timeline and one counter space.
  StoreSnapshot Inspect() const override { return cluster_->Inspect(); }
  void InspectInto(StoreSnapshot* out) const override {
    cluster_->InspectInto(out);
  }
  KvSsdStats GetStats() const override { return cluster_->GetStats(); }
  sim::Nanoseconds Now() const override { return cluster_->Now(); }

 private:
  KvCluster* cluster_;
  std::size_t tenant_;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

KvCluster::KvCluster(const ClusterConfig& config)
    : config_(config),
      ring_(config.num_shards, config.virtual_nodes, config.ring_seed) {}

KvCluster::~KvCluster() = default;

Result<std::unique_ptr<KvCluster>> KvCluster::Open(
    const ClusterConfig& config) {
  if (config.num_shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  if (config.virtual_nodes == 0) {
    return Status::InvalidArgument("virtual_nodes must be >= 1");
  }
  auto cluster = std::unique_ptr<KvCluster>(new KvCluster(config));
  BANDSLIM_RETURN_IF_ERROR(cluster->Assemble());
  return cluster;
}

Status KvCluster::Assemble() {
  tenants_ = config_.tenants;
  if (tenants_.empty()) tenants_.push_back(TenantConfig{});

  if (config_.attribution.enabled && !config_.fleet.enabled) {
    // The plane has no sampler of its own: its series ride the fleet grid.
    return Status::InvalidArgument(
        "attribution requires fleet telemetry (ClusterConfig::fleet.enabled)");
  }
  if (config_.attribution.slo.size() > tenants_.size()) {
    return Status::InvalidArgument(
        "attribution.slo has more entries than tenants");
  }

  std::uint16_t max_queue = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    max_queue = std::max(max_queue, tenants_[i].queue_id);
    for (std::size_t j = i + 1; j < tenants_.size(); ++j) {
      if (tenants_[i].queue_id == tenants_[j].queue_id) {
        return Status::InvalidArgument(
            "tenants must use distinct queue ids");
      }
    }
    if (tenants_[i].credits_per_window > 0) {
      if (config_.qos_refill_window_ns <= 0) {
        return Status::InvalidArgument(
            "qos_refill_window_ns must be > 0 when tenant credits are set");
      }
      qos_enabled_ = true;
    }
  }

  KvSsdOptions shard_options = config_.shard;
  shard_options.num_queues = std::max<std::uint16_t>(
      shard_options.num_queues, static_cast<std::uint16_t>(max_queue + 1));

  shards_.reserve(config_.num_shards);
  drivers_.resize(config_.num_shards);
  shard_tracers_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    auto opened = KvSsd::Open(shard_options);
    if (!opened.ok()) return opened.status();
    shards_.push_back(std::move(opened).value());
    KvSsd& dev = *shards_.back();

    // Shard-tag the tracer (s + 1; 0 means untagged) so a merged Chrome
    // trace renders one process lane per shard and trace_breakdown rows
    // carry their shard. Plain stamps — no simulated effect.
    dev.Hooks().tracer->SetShardTag(static_cast<std::uint16_t>(s + 1));
    shard_tracers_.push_back(dev.Hooks().tracer);

    drivers_[s].resize(tenants_.size(), nullptr);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      if (tenants_[t].queue_id == 0) {
        // Queue 0 rides the shard's built-in driver: with one unmetered
        // default tenant this makes the 1-shard cluster's command stream
        // byte-identical to a bare KvSsd's.
        drivers_[s][t] = dev.Hooks().driver;
      } else {
        auto made =
            dev.CreateQueueDriver(tenants_[t].queue_id, shard_options.driver);
        if (!made.ok()) return made.status();
        drivers_[s][t] = made.value();
      }
      if (tenants_[t].credits_per_window > 0) {
        dev.Hooks().transport->SetAdmissionControl(
            tenants_[t].queue_id, tenants_[t].credits_per_window,
            tenants_[t].busy_backoff_ns);
      }
    }
  }

  tenant_views_.reserve(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    tenant_views_.push_back(std::make_unique<TenantView>(this, t));
  }

  // Fleet aggregator: samples every shard's registry on the router clock's
  // interval grid. Always constructed (Poll is one branch when disabled);
  // Bind anchors the grid at router time 0.
  routed_keys_.assign(shards_.size(), 0);
  fleet_ = std::make_unique<telemetry::FleetAggregator>(&clock_,
                                                        config_.fleet);
  std::vector<telemetry::FleetAggregator::ShardSource> sources;
  sources.reserve(shards_.size());
  for (const auto& dev : shards_) {
    sources.push_back({&dev->metrics(), &dev->clock()});
  }
  fleet_->Bind(std::move(sources), &routed_keys_,
               ring_.OwnershipWeightsPermille(config_.num_shards));

  // Attribution plane: per-tenant charging against the same shard counters
  // the fleet sums, so the untagged residual reconciles exactly. Always
  // constructed (hot-path hooks are one branch when disabled).
  attribution_ = std::make_unique<telemetry::attribution::AttributionPlane>(
      config_.attribution);
  std::vector<stats::MetricsRegistry*> shard_metrics;
  shard_metrics.reserve(shards_.size());
  for (auto& dev : shards_) shard_metrics.push_back(dev->Hooks().metrics);
  std::vector<std::string> tenant_names;
  tenant_names.reserve(tenants_.size());
  for (const TenantConfig& t : tenants_) tenant_names.push_back(t.name);
  attribution_->Bind(shard_metrics, std::move(tenant_names));
  fleet_->SetAttribution(attribution_.get());
  return Status::Ok();
}

KvStore& KvCluster::Tenant(std::size_t tenant) {
  if (tenant == 0) return *this;
  return *tenant_views_[tenant];
}

// ---------------------------------------------------------------------------
// QoS credit refill
// ---------------------------------------------------------------------------

void KvCluster::MaybeRefillCredits() {
  if (!qos_enabled_) return;
  const sim::Nanoseconds now = clock_.Now();
  const sim::Nanoseconds window = config_.qos_refill_window_ns;
  if (now - last_refill_ns_ < window) return;
  const std::uint64_t elapsed =
      static_cast<std::uint64_t>(now - last_refill_ns_) /
      static_cast<std::uint64_t>(window);
  last_refill_ns_ += static_cast<sim::Nanoseconds>(elapsed) * window;
  qos_refill_windows_ += elapsed;
  // One refill per crossing, not per elapsed window: credits cap at the
  // budget anyway, so collapsed windows are indistinguishable.
  for (auto& dev : shards_) dev->Hooks().transport->RefillQueueCredits();
}

// ---------------------------------------------------------------------------
// Serial ops: advance owner shard to router time, run, follow its finish.
// ---------------------------------------------------------------------------

Status KvCluster::DoPut(std::size_t tenant, std::string_view key,
                        ByteSpan value) {
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint32_t s = ring_.OwnerOf(key);
  ++routed_keys_[s];
  // Tenant trace stamp (t + 1, like shard tags) is always on; the
  // attribution hooks bracket the op so the counter deltas the shard
  // accrues while serving it are charged to this tenant.
  const bool attr = attribution_->enabled();
  shard_tracers_[s]->SetClientOpContext(next_client_op_++);
  shard_tracers_[s]->SetTenantContext(static_cast<std::uint16_t>(tenant + 1));
  if (attr) {
    attribution_->TouchKey(ring_.HashKey(key));
    attribution_->ChargeBegin(s);
  }
  shards_[s]->Hooks().clock->AdvanceTo(start);
  const Status status = drivers_[s][tenant]->Put(key, value);
  shard_tracers_[s]->ClearClientOpContext();
  shard_tracers_[s]->ClearTenantContext();
  clock_.SetTime(std::max(start, shards_[s]->Now()));
  if (attr) {
    attribution_->ChargeEnd(tenant, s);
    attribution_->RecordOp(tenant, clock_.Now() - start, status.code(),
                           value.size());
  }
  fleet_->Poll();
  return status;
}

Result<Bytes> KvCluster::DoGet(std::size_t tenant, std::string_view key) {
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint32_t s = ring_.OwnerOf(key);
  ++routed_keys_[s];
  const bool attr = attribution_->enabled();
  shard_tracers_[s]->SetClientOpContext(next_client_op_++);
  shard_tracers_[s]->SetTenantContext(static_cast<std::uint16_t>(tenant + 1));
  if (attr) {
    attribution_->TouchKey(ring_.HashKey(key));
    attribution_->ChargeBegin(s);
  }
  shards_[s]->Hooks().clock->AdvanceTo(start);
  auto got = drivers_[s][tenant]->Get(key);
  shard_tracers_[s]->ClearClientOpContext();
  shard_tracers_[s]->ClearTenantContext();
  clock_.SetTime(std::max(start, shards_[s]->Now()));
  if (attr) {
    attribution_->ChargeEnd(tenant, s);
    attribution_->RecordOp(tenant, clock_.Now() - start, got.status().code(),
                           got.ok() ? got.value().size() : 0);
  }
  fleet_->Poll();
  return got;
}

Status KvCluster::DoGetInto(std::size_t tenant, std::string_view key,
                            Bytes* value) {
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint32_t s = ring_.OwnerOf(key);
  ++routed_keys_[s];
  const bool attr = attribution_->enabled();
  shard_tracers_[s]->SetClientOpContext(next_client_op_++);
  shard_tracers_[s]->SetTenantContext(static_cast<std::uint16_t>(tenant + 1));
  if (attr) {
    attribution_->TouchKey(ring_.HashKey(key));
    attribution_->ChargeBegin(s);
  }
  shards_[s]->Hooks().clock->AdvanceTo(start);
  const Status status = drivers_[s][tenant]->GetInto(key, value);
  shard_tracers_[s]->ClearClientOpContext();
  shard_tracers_[s]->ClearTenantContext();
  clock_.SetTime(std::max(start, shards_[s]->Now()));
  if (attr) {
    attribution_->ChargeEnd(tenant, s);
    attribution_->RecordOp(tenant, clock_.Now() - start, status.code(),
                           status.ok() ? value->size() : 0);
  }
  fleet_->Poll();
  return status;
}

Status KvCluster::DoDelete(std::size_t tenant, std::string_view key) {
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint32_t s = ring_.OwnerOf(key);
  ++routed_keys_[s];
  const bool attr = attribution_->enabled();
  shard_tracers_[s]->SetClientOpContext(next_client_op_++);
  shard_tracers_[s]->SetTenantContext(static_cast<std::uint16_t>(tenant + 1));
  if (attr) {
    attribution_->TouchKey(ring_.HashKey(key));
    attribution_->ChargeBegin(s);
  }
  shards_[s]->Hooks().clock->AdvanceTo(start);
  const Status status = drivers_[s][tenant]->Delete(key);
  shard_tracers_[s]->ClearClientOpContext();
  shard_tracers_[s]->ClearTenantContext();
  clock_.SetTime(std::max(start, shards_[s]->Now()));
  if (attr) {
    attribution_->ChargeEnd(tenant, s);
    attribution_->RecordOp(tenant, clock_.Now() - start, status.code(), 0);
  }
  fleet_->Poll();
  return status;
}

// ---------------------------------------------------------------------------
// Batch ops: scatter by owner shard from one dispatch time, gather to the
// max finish. Sub-batches preserve each record's relative order, and
// GetBatch merges shard results back into REQUEST order (the KvStore
// contract) via the recorded origin indices.
// ---------------------------------------------------------------------------

Status KvCluster::DoPutBatch(std::size_t tenant,
                             std::span<const KvPair> batch) {
  if (batch.empty()) return Status::Ok();
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint64_t client_op = next_client_op_++;
  const bool attr = attribution_->enabled();
  std::uint64_t payload_bytes = 0;
  std::vector<std::vector<KvPair>> groups(shards_.size());
  for (const KvPair& kv : batch) {
    const std::uint32_t s = ring_.OwnerOf(kv.key);
    ++routed_keys_[s];
    if (attr) attribution_->TouchKey(ring_.HashKey(kv.key));
    payload_bytes += kv.value.size();
    groups[s].push_back(kv);
  }
  sim::Nanoseconds latest = start;
  Status first_error = Status::Ok();
  std::uint32_t touched = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    ++touched;
    ++batch_subops_;
    // Every shard-local sub-batch carries the same router client op, so a
    // cross-shard batch can be reassembled from the per-shard traces.
    shard_tracers_[s]->SetClientOpContext(client_op);
    shard_tracers_[s]->SetTenantContext(
        static_cast<std::uint16_t>(tenant + 1));
    if (attr) attribution_->ChargeBegin(s);
    shards_[s]->Hooks().clock->AdvanceTo(start);
    const Status status = drivers_[s][tenant]->PutBatch(groups[s]);
    shard_tracers_[s]->ClearClientOpContext();
    shard_tracers_[s]->ClearTenantContext();
    if (attr) attribution_->ChargeEnd(tenant, s);
    if (!status.ok() && first_error.ok()) first_error = status;
    latest = std::max(latest, shards_[s]->Now());
  }
  if (touched >= 2) ++cross_shard_batches_;
  clock_.SetTime(latest);
  if (attr) {
    // One client-visible op: its latency is the gather (slowest shard).
    attribution_->RecordOp(tenant, latest - start, first_error.code(),
                           payload_bytes);
  }
  fleet_->Poll();
  return first_error;
}

Result<std::vector<KvCluster::BatchGetResult>> KvCluster::DoGetBatch(
    std::size_t tenant, std::span<const std::string> keys) {
  std::vector<BatchGetResult> merged(keys.size());
  if (keys.empty()) return merged;
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint64_t client_op = next_client_op_++;
  const bool attr = attribution_->enabled();
  std::vector<std::vector<std::string>> sub(shards_.size());
  std::vector<std::vector<std::size_t>> origin(shards_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t s = ring_.OwnerOf(keys[i]);
    ++routed_keys_[s];
    if (attr) attribution_->TouchKey(ring_.HashKey(keys[i]));
    sub[s].push_back(keys[i]);
    origin[s].push_back(i);
  }
  sim::Nanoseconds latest = start;
  std::uint32_t touched = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    ++touched;
    ++batch_subops_;
    shard_tracers_[s]->SetClientOpContext(client_op);
    shard_tracers_[s]->SetTenantContext(
        static_cast<std::uint16_t>(tenant + 1));
    if (attr) attribution_->ChargeBegin(s);
    shards_[s]->Hooks().clock->AdvanceTo(start);
    auto got = drivers_[s][tenant]->GetBatch(sub[s]);
    shard_tracers_[s]->ClearClientOpContext();
    shard_tracers_[s]->ClearTenantContext();
    if (attr) attribution_->ChargeEnd(tenant, s);
    latest = std::max(latest, shards_[s]->Now());
    if (!got.ok()) {
      clock_.SetTime(latest);
      if (attr) {
        attribution_->RecordOp(tenant, latest - start, got.status().code(),
                               0);
      }
      fleet_->Poll();
      return got.status();
    }
    std::vector<BatchGetResult>& results = got.value();
    if (results.size() != sub[s].size()) {
      clock_.SetTime(latest);
      if (attr) {
        attribution_->RecordOp(tenant, latest - start,
                               StatusCode::kCorruption, 0);
      }
      fleet_->Poll();
      return Status::Corruption(
          "shard GetBatch violated the one-result-per-key contract");
    }
    // Un-scatter: results[j] answers sub[s][j], which was request slot
    // origin[s][j]. Origin slots are unique by construction.
    for (std::size_t j = 0; j < results.size(); ++j) {
      merged[origin[s][j]] = std::move(results[j]);
    }
  }
  if (touched >= 2) ++cross_shard_batches_;
  clock_.SetTime(latest);
  if (attr) {
    std::uint64_t returned_bytes = 0;
    for (const BatchGetResult& r : merged) returned_bytes += r.value.size();
    attribution_->RecordOp(tenant, latest - start, StatusCode::kOk,
                           returned_bytes);
  }
  fleet_->Poll();
  return merged;
}

Result<std::uint32_t> KvCluster::DoDeleteBatch(
    std::size_t tenant, std::span<const std::string> keys) {
  if (keys.empty()) return std::uint32_t{0};
  MaybeRefillCredits();
  const sim::Nanoseconds start = clock_.Now();
  const std::uint64_t client_op = next_client_op_++;
  const bool attr = attribution_->enabled();
  std::vector<std::vector<std::string>> sub(shards_.size());
  for (const std::string& key : keys) {
    const std::uint32_t s = ring_.OwnerOf(key);
    ++routed_keys_[s];
    if (attr) attribution_->TouchKey(ring_.HashKey(key));
    sub[s].push_back(key);
  }
  sim::Nanoseconds latest = start;
  std::uint32_t removed = 0;
  std::uint32_t touched = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    ++touched;
    ++batch_subops_;
    shard_tracers_[s]->SetClientOpContext(client_op);
    shard_tracers_[s]->SetTenantContext(
        static_cast<std::uint16_t>(tenant + 1));
    if (attr) attribution_->ChargeBegin(s);
    shards_[s]->Hooks().clock->AdvanceTo(start);
    auto got = drivers_[s][tenant]->DeleteBatch(sub[s]);
    shard_tracers_[s]->ClearClientOpContext();
    shard_tracers_[s]->ClearTenantContext();
    if (attr) attribution_->ChargeEnd(tenant, s);
    latest = std::max(latest, shards_[s]->Now());
    if (!got.ok()) {
      clock_.SetTime(latest);
      if (attr) {
        attribution_->RecordOp(tenant, latest - start, got.status().code(),
                               0);
      }
      fleet_->Poll();
      return got.status();
    }
    removed += got.value();
  }
  if (touched >= 2) ++cross_shard_batches_;
  clock_.SetTime(latest);
  if (attr) {
    attribution_->RecordOp(tenant, latest - start, StatusCode::kOk, 0);
  }
  fleet_->Poll();
  return removed;
}

Status KvCluster::DoFlush() {
  // Flush is fleet-wide maintenance, not tenant traffic: it stays untagged,
  // so its device work lands in the attribution plane's untagged residual.
  const sim::Nanoseconds start = clock_.Now();
  const std::uint64_t client_op = next_client_op_++;
  sim::Nanoseconds latest = start;
  Status first_error = Status::Ok();
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    KvSsd& dev = *shards_[s];
    shard_tracers_[s]->SetClientOpContext(client_op);
    dev.Hooks().clock->AdvanceTo(start);
    const Status status = dev.Flush();
    shard_tracers_[s]->ClearClientOpContext();
    if (!status.ok() && first_error.ok()) first_error = status;
    latest = std::max(latest, dev.Now());
  }
  clock_.SetTime(latest);
  fleet_->Poll();
  return first_error;
}

// ---------------------------------------------------------------------------
// Default-tenant KvStore surface
// ---------------------------------------------------------------------------

Status KvCluster::Put(std::string_view key, ByteSpan value) {
  return DoPut(0, key, value);
}
Result<Bytes> KvCluster::Get(std::string_view key) { return DoGet(0, key); }
Status KvCluster::GetInto(std::string_view key, Bytes* value) {
  return DoGetInto(0, key, value);
}
Status KvCluster::Delete(std::string_view key) { return DoDelete(0, key); }
Status KvCluster::PutBatch(std::span<const KvPair> batch) {
  return DoPutBatch(0, batch);
}
Result<std::vector<KvCluster::BatchGetResult>> KvCluster::GetBatch(
    std::span<const std::string> keys) {
  return DoGetBatch(0, keys);
}
Result<std::uint32_t> KvCluster::DeleteBatch(
    std::span<const std::string> keys) {
  return DoDeleteBatch(0, keys);
}
Status KvCluster::Flush() { return DoFlush(); }

// ---------------------------------------------------------------------------
// Observation
// ---------------------------------------------------------------------------

KvSsdStats KvCluster::GetStats() const {
  KvSsdStats total;
  total.elapsed_ns = clock_.Now();
  for (const auto& dev : shards_) {
    AccumulateStats(&total, dev->GetStats());
  }
  return total;
}

StoreSnapshot KvCluster::Inspect() const {
  StoreSnapshot store;
  InspectInto(&store);
  return store;
}

void KvCluster::InspectInto(StoreSnapshot* out) const {
  out->stats = GetStats();
  out->shards.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->InspectDeviceInto(&out->shards[s]);
  }
  out->batch_subops = batch_subops_;
  out->cross_shard_batches = cross_shard_batches_;
  out->qos_refill_windows = qos_refill_windows_;
  // Fleet-level watchdog state (shard imbalance, p99 skew, ring skew,
  // straggler stall) — distinct from each shard's per-device alerts.
  const telemetry::Watchdog& wd = fleet_->watchdog();
  out->alerts.resize(wd.rules().size());
  for (std::size_t i = 0; i < wd.rules().size(); ++i) {
    const telemetry::AlertState& st = wd.states()[i];
    DeviceSnapshot::AlertInfo& a = out->alerts[i];
    a.rule.assign(wd.rules()[i].name);
    a.fired = st.fired;
    a.cleared = st.cleared;
    a.active = st.active;
    a.last_value = st.last_value;
    a.last_fire_ns = st.last_fire_ns;
  }
  out->fleet_samples = fleet_->samples_emitted();
  out->fleet_events = fleet_->event_log().total_emitted();
}

void KvCluster::SyncClockToShards() {
  sim::Nanoseconds latest = clock_.Now();
  for (const auto& dev : shards_) latest = std::max(latest, dev->Now());
  clock_.SetTime(latest);
  // Harness-driven shards may have crossed fleet interval boundaries while
  // the router clock stood still; catch up now that it is consistent.
  fleet_->Poll();
}

}  // namespace bandslim::cluster
