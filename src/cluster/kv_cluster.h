// bandslim::cluster::KvCluster — a host-side router sharding keys across a
// fleet of independent KvSsd instances behind the KvStore interface.
//
//   client ── KvCluster (hash ring + scatter/gather + tenant QoS)
//                ├── shard 0: KvSsd (own clock, metrics, telemetry, control)
//                ├── shard 1: KvSsd
//                └── ...
//
// Time-frame semantics (all virtual, fully deterministic):
//   * The cluster owns a router clock — the client-visible timeline.
//   * A serial op (Put/Get/Delete) first pulls the owner shard's clock
//     FORWARD to the router time (AdvanceTo; router time is monotone, so
//     shard clocks never move backward), runs the op on that shard, then
//     sets the router clock to the shard's finish time.
//   * A batch op scatters: every touched shard is advanced to the same
//     dispatch time T, sub-batches run in their shards' own time frames,
//     and the router clock gathers to the MAX finish — the client sees the
//     slowest shard, exactly like a host issuing the sub-batches to N
//     devices at once and waiting for all completions.
//   * With num_shards == 1 every AdvanceTo is a no-op and every gather is
//     the shard's own finish, so a 1-shard cluster is bit-identical in
//     virtual time and device counters to a bare KvSsd fed the same ops.
//
// Tenancy / QoS: each tenant maps to one NVMe queue pair ON EVERY SHARD
// (tenant i talks to queue tenants[i].queue_id of whichever shard owns the
// key). Tenants with credits_per_window > 0 get per-SQ admission control
// (nvme::NvmeTransport::SetAdmissionControl): once a tenant burns its
// credits on a shard within the refill window, further commands are shed
// with kBusy and charged the busy backoff. The cluster refills every
// shard's credits on a fixed virtual-time window grid, checked lazily at
// the next op — no callbacks, so determinism is preserved. Do not combine
// tenant credits with a control policy that also actuates per-SQ admission
// (control::AdmissionPolicy) on the same queues: both would write the same
// transport registers and the last writer wins.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/hash_ring.h"
#include "common/status.h"
#include "core/kv_store.h"
#include "core/kvssd.h"
#include "telemetry/attribution/attribution.h"
#include "telemetry/fleet.h"

namespace bandslim::cluster {

struct TenantConfig {
  std::string name = "default";
  // NVMe queue pair this tenant uses on every shard. Tenant queue ids must
  // be distinct; shard options' num_queues is raised automatically to fit.
  std::uint16_t queue_id = 0;
  // Admission credits per refill window on EACH shard; 0 = unmetered.
  std::uint32_t credits_per_window = 0;
  // Virtual time burned per shed command (models host backoff + resubmit).
  sim::Nanoseconds busy_backoff_ns = 2000;
};

struct ClusterConfig {
  std::uint32_t num_shards = 1;
  // Ring points per shard. More points = flatter key distribution.
  std::uint32_t virtual_nodes = 64;
  std::uint64_t ring_seed = 0xB5CCA11;
  // Every shard is opened from this option set (homogeneous fleet).
  KvSsdOptions shard;
  // Empty = one unmetered default tenant on queue 0.
  std::vector<TenantConfig> tenants;
  // Credit refill grid (virtual ns). Only meaningful when some tenant has
  // credits_per_window > 0.
  sim::Nanoseconds qos_refill_window_ns = 100000;
  // Fleet-level observability (telemetry/fleet.h): a cluster-wide sampler
  // on the router clock aggregating every shard's registry, with merged
  // percentiles and shard-imbalance watchdogs. Disabled by default; the
  // aggregator is observation-only either way, so enabling it changes no
  // simulated outcome.
  telemetry::FleetConfig fleet;
  // Tenant/key-space attribution plane (telemetry/attribution). Requires
  // fleet.enabled — its series ride the fleet sample grid. Per-tenant SLOs
  // in attribution.slo pair positionally with `tenants`. Observation-only:
  // enabling it changes no simulated outcome.
  telemetry::attribution::AttributionConfig attribution;
};

class KvCluster : public KvStore {
 public:
  static Result<std::unique_ptr<KvCluster>> Open(const ClusterConfig& config);
  ~KvCluster() override;

  // --- KvStore: the default tenant (index 0) -------------------------------
  using KvStore::Put;
  using KvStore::PutBatch;
  Status Put(std::string_view key, ByteSpan value) override;
  Result<Bytes> Get(std::string_view key) override;
  Status GetInto(std::string_view key, Bytes* value) override;
  Status Delete(std::string_view key) override;
  Status PutBatch(std::span<const KvPair> batch) override;
  Result<std::vector<BatchGetResult>> GetBatch(
      std::span<const std::string> keys) override;
  Result<std::uint32_t> DeleteBatch(std::span<const std::string> keys) override;
  Status Flush() override;

  // Aggregated snapshot: summed stats + one DeviceSnapshot per shard (in
  // shard-index order) + router-level batch/QoS accounting + fleet alerts.
  StoreSnapshot Inspect() const override;
  // Allocation-free in steady state: reuses `out`'s per-shard snapshots,
  // counter maps and alert strings, so a sampling loop can call this every
  // interval without touching the heap.
  void InspectInto(StoreSnapshot* out) const override;
  KvSsdStats GetStats() const override;
  sim::Nanoseconds Now() const override { return clock_.Now(); }

  // --- Topology ------------------------------------------------------------
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t ShardOf(std::string_view key) const {
    return ring_.OwnerOf(key);
  }
  KvSsd& shard(std::uint32_t index) { return *shards_[index]; }
  const KvSsd& shard(std::uint32_t index) const { return *shards_[index]; }
  const ClusterConfig& config() const { return config_; }

  // --- Tenancy -------------------------------------------------------------
  std::size_t num_tenants() const { return tenants_.size(); }
  const TenantConfig& tenant_config(std::size_t tenant) const {
    return tenants_[tenant];
  }
  // A KvStore facade routing through this cluster as tenant `tenant`.
  // Tenant 0's facade is the cluster's own KvStore surface. Lives as long
  // as the cluster.
  KvStore& Tenant(std::size_t tenant);

  // Pulls the router clock up to the latest shard-local time. For harnesses
  // (the cluster workload runner) that drive shards directly in parallel
  // time frames and must hand a consistent timeline back to the router.
  void SyncClockToShards();

  std::uint64_t qos_refill_windows() const { return qos_refill_windows_; }

  // --- Fleet observability -------------------------------------------------
  // The cluster-wide aggregator (always constructed; inert unless
  // config().fleet.enabled). Call fleet().Finalize() before exporting so
  // the closing fleet sample reconciles with GetStats().
  telemetry::FleetAggregator& fleet() { return *fleet_; }
  const telemetry::FleetAggregator& fleet() const { return *fleet_; }
  // Router placement decisions per shard (one increment per routed key,
  // including batch members) — the actual-share input to the ring-skew
  // watchdog.
  const std::vector<std::uint64_t>& routed_keys() const {
    return routed_keys_;
  }
  // The tenant/key-space attribution plane (always constructed; inert unless
  // config().attribution.enabled). Its series appear in fleet() samples.
  telemetry::attribution::AttributionPlane& attribution() {
    return *attribution_;
  }
  const telemetry::attribution::AttributionPlane& attribution() const {
    return *attribution_;
  }

 private:
  // Per-tenant KvStore facade; forwards every op with its tenant index.
  class TenantView;

  explicit KvCluster(const ClusterConfig& config);
  Status Assemble();

  driver::KvDriver* DriverFor(std::uint32_t shard, std::size_t tenant) {
    return drivers_[shard][tenant];
  }
  // Lazily refills admission credits for every elapsed window boundary.
  void MaybeRefillCredits();

  // The op core, parameterized by tenant. Each applies the time-frame
  // semantics documented above.
  Status DoPut(std::size_t tenant, std::string_view key, ByteSpan value);
  Result<Bytes> DoGet(std::size_t tenant, std::string_view key);
  Status DoGetInto(std::size_t tenant, std::string_view key, Bytes* value);
  Status DoDelete(std::size_t tenant, std::string_view key);
  Status DoPutBatch(std::size_t tenant, std::span<const KvPair> batch);
  Result<std::vector<BatchGetResult>> DoGetBatch(
      std::size_t tenant, std::span<const std::string> keys);
  Result<std::uint32_t> DoDeleteBatch(std::size_t tenant,
                                      std::span<const std::string> keys);
  Status DoFlush();

  ClusterConfig config_;
  HashRing ring_;
  sim::VirtualClock clock_;  // Router clock: the client-visible timeline.
  std::vector<std::unique_ptr<KvSsd>> shards_;
  std::vector<TenantConfig> tenants_;
  // drivers_[shard][tenant] — tenant 0 on queue 0 reuses the shard's
  // built-in driver; other tenants get CreateQueueDriver() attachments.
  std::vector<std::vector<driver::KvDriver*>> drivers_;
  std::vector<std::unique_ptr<TenantView>> tenant_views_;

  bool qos_enabled_ = false;
  sim::Nanoseconds last_refill_ns_ = 0;
  std::uint64_t qos_refill_windows_ = 0;
  std::uint64_t batch_subops_ = 0;
  std::uint64_t cross_shard_batches_ = 0;

  // Fleet observability. routed_keys_ and the tracer tagging are always on
  // (plain integer stamps, no simulated effect); the aggregator itself is a
  // single branch per Poll() when config_.fleet.enabled is false.
  std::unique_ptr<telemetry::FleetAggregator> fleet_;
  std::unique_ptr<telemetry::attribution::AttributionPlane> attribution_;
  std::vector<std::uint64_t> routed_keys_;    // One entry per shard.
  std::vector<trace::Tracer*> shard_tracers_;  // Shard-index order.
  std::uint64_t next_client_op_ = 0;  // Router-level client op ids.
};

}  // namespace bandslim::cluster
