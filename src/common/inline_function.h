// InlineFunction: a move-free, small-buffer-optimized callable holder for
// the simulator's hot paths.
//
// std::function is the wrong tool for a discrete-event engine: libstdc++'s
// inline buffer is 16 bytes, so the typical event closure (a this-pointer
// plus a stream id and an op index) heap-allocates on every Schedule() —
// one malloc/free pair per simulated event. InlineFunction stores captures
// up to `InlineBytes` in place (no allocation, no pointer chase) and only
// falls back to the heap for oversized closures, which the engine's own
// callers never produce.
//
// Deliberately narrower than std::function:
//   * construct-in-place and invoke only — no copy, no move, no rebinding.
//     Holders live in arena slots that never relocate (see EventEngine), so
//     relocation support would be dead weight on the hot path.
//   * Emplace() over a live holder requires Reset() first (asserted).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bandslim {

template <std::size_t InlineBytes = 48>
class InlineFunction {
 public:
  InlineFunction() = default;
  ~InlineFunction() { Reset(); }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  bool empty() const { return invoke_ == nullptr; }

  template <typename F>
  void Emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    assert(empty() && "Emplace over a live callback; Reset() first");
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      destroy_ = std::is_trivially_destructible_v<Fn>
                     ? nullptr
                     : +[](void* s) {
                         std::launder(reinterpret_cast<Fn*>(s))->~Fn();
                       };
      heap_ = false;
    } else {
      // Oversized capture: spill to the heap (cold path; the engine's own
      // closures are pointer+index sized and always fit inline).
      auto* p = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(storage_)) Fn*(p);
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      destroy_ = [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); };
      heap_ = true;
    }
  }

  void operator()() {
    assert(!empty());
    invoke_(storage_);
  }

  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    heap_ = false;
  }

  // Whether the current callable spilled to the heap (test introspection).
  bool on_heap() const { return heap_; }

 private:
  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  bool heap_ = false;
};

}  // namespace bandslim
