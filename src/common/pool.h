// Fixed-size buffer pooling for the per-device hot paths.
//
// Steady-state PUT/GET must not touch the allocator (DESIGN.md 2.6): the
// stack recycles its page-sized staging buffers instead of re-acquiring
// them from malloc per operation. BufferPool hands out `Bytes` of one fixed
// size; Release() returns a buffer to the free stack, and the next Acquire()
// re-zeroes it so recycled buffers are indistinguishable from fresh ones —
// determinism must not depend on what a previous op left behind.
#pragma once

#include <cstring>
#include <utility>
#include <vector>

#include "common/types.h"

namespace bandslim {

class BufferPool {
 public:
  explicit BufferPool(std::size_t buffer_size) : buffer_size_(buffer_size) {}

  // A zero-filled buffer of the pool's fixed size: recycled when the free
  // stack is non-empty, freshly allocated otherwise.
  Bytes Acquire() {
    if (free_.empty()) return Bytes(buffer_size_, 0);
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    std::memset(buf.data(), 0, buf.size());
    return buf;
  }

  void Release(Bytes buf) {
    if (buf.size() != buffer_size_) return;  // Foreign buffer: drop it.
    free_.push_back(std::move(buf));
  }

  // Pre-populates the free stack so a campaign's warm-up does not allocate
  // mid-run.
  void Reserve(std::size_t n) {
    free_.reserve(n);
    while (free_.size() < n) free_.push_back(Bytes(buffer_size_, 0));
  }

  std::size_t free_count() const { return free_.size(); }
  std::size_t buffer_size() const { return buffer_size_; }

 private:
  std::size_t buffer_size_;
  std::vector<Bytes> free_;
};

}  // namespace bandslim
