// Lightweight Status / Result types used across the library. Modeled after
// the usual absl/leveldb conventions without external dependencies.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bandslim {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kOutOfSpace,
  kIoError,
  kCorruption,
  kUnsupported,
  kResourceExhausted,
  kTimedOut,     // Command exceeded its virtual-time deadline (host watchdog).
  kMediaError,   // NAND program/read/erase failure (injected or grown defect).
  kAlreadyExists,  // Named resource (e.g. registry counter) already taken.
  kBusy,         // Host-side admission control shed the request; retry later.
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m = "not found") {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status OutOfSpace(std::string m) {
    return {StatusCode::kOutOfSpace, std::move(m)};
  }
  static Status IoError(std::string m) {
    return {StatusCode::kIoError, std::move(m)};
  }
  static Status Corruption(std::string m) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status Unsupported(std::string m) {
    return {StatusCode::kUnsupported, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status TimedOut(std::string m = "timed out") {
    return {StatusCode::kTimedOut, std::move(m)};
  }
  static Status MediaError(std::string m) {
    return {StatusCode::kMediaError, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status Busy(std::string m = "busy") {
    return {StatusCode::kBusy, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsMediaError() const { return code_ == StatusCode::kMediaError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfSpace: return "OutOfSpace";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kTimedOut: return "TimedOut";
      case StatusCode::kMediaError: return "MediaError";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kBusy: return "Busy";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bandslim

// Propagates a non-OK Status from an expression, leveldb-style.
#define BANDSLIM_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::bandslim::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)
