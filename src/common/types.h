// Core size constants and byte-level aliases shared across the BandSlim
// stack. Sizes mirror the paper's testbed: 4 KiB host memory pages (the
// PRP/DMA unit) and 16 KiB NAND flash pages (the program unit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bandslim {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutByteSpan = std::span<std::uint8_t>;

// The PRP/DMA transfer unit and the host memory page size (Section 2.2).
inline constexpr std::size_t kMemPageSize = 4096;
// The NAND program unit on the Cosmos+ OpenSSD NAND module (Section 2.3).
inline constexpr std::size_t kNandPageSize = 16384;
// An NVMe submission queue entry is always 64 bytes (Section 2.5).
inline constexpr std::size_t kNvmeCommandSize = 64;
// Piggyback capacity of the BandSlim *write* command: dword4-9 (24 B) +
// dword12-13 (8 B) + 3 spare bytes of dword11 (Section 3.2, Figure 6a).
inline constexpr std::size_t kWriteCmdPiggybackCapacity = 35;
// Piggyback capacity of the BandSlim *transfer* command: every dword except
// dword0 (opcode/flags/cid) and dword1 (nsid), i.e. 14 dwords (Figure 6b).
inline constexpr std::size_t kTransferCmdPiggybackCapacity = 56;
// Maximum key length storable inline in the NVMe KV command (dword2-3 +
// dword14-15, see Figure 6). The paper's experiments use 4-byte keys.
inline constexpr std::size_t kMaxKeySize = 16;

inline constexpr std::size_t kMemPagesPerNandPage = kNandPageSize / kMemPageSize;

// Rounds `n` up to the next multiple of `unit` (unit must be a power of two).
constexpr std::uint64_t RoundUpPow2(std::uint64_t n, std::uint64_t unit) {
  return (n + unit - 1) & ~(unit - 1);
}

constexpr std::uint64_t RoundDownPow2(std::uint64_t n, std::uint64_t unit) {
  return n & ~(unit - 1);
}

constexpr bool IsAlignedPow2(std::uint64_t n, std::uint64_t unit) {
  return (n & (unit - 1)) == 0;
}

// Number of `unit`-sized chunks needed to cover `n` bytes.
constexpr std::uint64_t CeilDiv(std::uint64_t n, std::uint64_t unit) {
  return (n + unit - 1) / unit;
}

inline ByteSpan AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string ToString(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace bandslim
