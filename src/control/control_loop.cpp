#include "control/control_loop.h"

#include <algorithm>

#include "driver/driver.h"
#include "ftl/ftl.h"
#include "lsm/lsm_tree.h"
#include "nvme/transport.h"

namespace bandslim::control {

const char* ControlRuleName(ControlRule rule) {
  switch (rule) {
    case ControlRule::kRaiseThresholds: return "raise_thresholds";
    case ControlRule::kRestoreThresholds: return "restore_thresholds";
    case ControlRule::kGcStep: return "gc_step";
    case ControlRule::kDeferFlush: return "defer_flush";
    case ControlRule::kReleaseFlush: return "release_flush";
    case ControlRule::kCompactStep: return "compact_step";
    case ControlRule::kApplyAdmission: return "apply_admission";
  }
  return "unknown";
}

LoopController::LoopController(const ControlPolicy& policy,
                               telemetry::Sampler* sampler)
    : policy_(policy), sampler_(sampler) {}

void LoopController::BindActuators(const Actuators& actuators) {
  act_ = actuators;
  if (!base_captured_ && act_.driver != nullptr) {
    base_threshold1_ = act_.driver->threshold1();
    base_threshold2_ = act_.driver->threshold2();
    base_captured_ = true;
  }
}

void LoopController::Reset() {
  breach_streak_ = 0;
  recover_streak_ = 0;
  if (act_.driver != nullptr && base_captured_) {
    // After a crash the raised thresholds are not a persisted setting to
    // recover — they are re-derived from the policy base; the loop will
    // re-raise them if the post-recovery link is still over budget.
    if (thresholds_raised_) {
      Record(ControlRule::kRestoreThresholds, 0, act_.driver->threshold1(),
             base_threshold1_);
    }
    act_.driver->SetAdaptiveThresholds(base_threshold1_, base_threshold2_);
  }
  thresholds_raised_ = false;
  if (act_.lsm != nullptr) {
    act_.lsm->SetFlushDeferralBytes(0);
  }
  flush_deferral_ = 0;
  if (policy_.admission.enabled && act_.transport != nullptr) {
    ApplyAdmission();
  }
}

std::uint64_t LoopController::SeriesValue(const telemetry::Sample& sample,
                                          const std::string& name) const {
  const std::int64_t id = sampler_->series().Find(name);
  if (id < 0) return 0;
  return sample.Value(static_cast<std::uint32_t>(id));
}

void LoopController::Record(ControlRule rule, std::uint64_t observed,
                            std::uint64_t old_setting,
                            std::uint64_t new_setting) {
  ActuationRecord rec;
  rec.t_ns = tick_t_ns_;
  rec.seq = actuations_.size();
  rec.rule = rule;
  rec.observed = observed;
  rec.old_setting = old_setting;
  rec.new_setting = new_setting;
  actuations_.push_back(rec);
  sampler_->event_log().Emit(telemetry::EventType::kControl,
                             static_cast<std::uint64_t>(rule), new_setting);
}

void LoopController::OnSample(const telemetry::Sample& sample) {
  ++ticks_;
  if (policy_.tick_every_samples > 1 &&
      ticks_ % policy_.tick_every_samples != 0) {
    return;
  }
  tick_t_ns_ = sample.t_ns;
  if (policy_.thresholds.enabled && act_.driver != nullptr) {
    TickThresholds(sample);
  }
  if (policy_.gc.enabled && act_.ftl != nullptr) TickGc();
  if (policy_.flush.enabled && act_.lsm != nullptr) TickFlush();
  if (policy_.admission.enabled && act_.transport != nullptr) {
    act_.transport->RefillQueueCredits();
  }
}

void LoopController::TickThresholds(const telemetry::Sample& sample) {
  const std::uint64_t taf = SeriesValue(sample, "rate.taf_milli");
  // Prefer the watchdog's judgement when a TAF rule is configured: its
  // alert edges already encode the fire/clear hysteresis the operator
  // chose. Without one, compare directly against the policy budget.
  const std::int64_t rule = sampler_->watchdog().FindRule("taf_over_budget");
  const bool breached =
      rule >= 0
          ? sampler_->watchdog().states()[static_cast<std::size_t>(rule)].active
          : taf > policy_.thresholds.taf_budget_milli;
  if (!thresholds_raised_) {
    recover_streak_ = 0;
    breach_streak_ = breached ? breach_streak_ + 1 : 0;
    if (breach_streak_ < policy_.thresholds.breach_intervals) return;
    Record(ControlRule::kRaiseThresholds, taf, act_.driver->threshold1(),
           policy_.thresholds.raised_threshold1);
    act_.driver->SetAdaptiveThresholds(policy_.thresholds.raised_threshold1,
                                       policy_.thresholds.raised_threshold2);
    thresholds_raised_ = true;
    breach_streak_ = 0;
    return;
  }
  breach_streak_ = 0;
  recover_streak_ = breached ? 0 : recover_streak_ + 1;
  if (recover_streak_ < policy_.thresholds.recover_intervals) return;
  Record(ControlRule::kRestoreThresholds, taf, act_.driver->threshold1(),
         base_threshold1_);
  act_.driver->SetAdaptiveThresholds(base_threshold1_, base_threshold2_);
  thresholds_raised_ = false;
  recover_streak_ = 0;
}

void LoopController::TickGc() {
  const std::uint64_t free_before = act_.ftl->free_blocks();
  if (free_before >= policy_.gc.target_free) return;
  std::uint32_t steps = 0;
  if (free_before <= policy_.gc.escalate_watermark) {
    steps = policy_.gc.escalated_steps;
  } else if (free_before < policy_.gc.soft_watermark) {
    steps = policy_.gc.steps_per_tick;
  }
  if (steps == 0) return;
  auto collected = act_.ftl->CollectBudgeted(steps, policy_.gc.target_free);
  if (!collected.ok() || collected.value() == 0) return;
  Record(ControlRule::kGcStep, free_before, free_before,
         act_.ftl->free_blocks());
}

void LoopController::TickFlush() {
  const std::uint64_t debt_before = act_.lsm->CompactionDebtBytes();
  // Drain first: a paced merge per tick keeps L0 below the inline-cascade
  // trigger, so the flush that eventually lands finds the tree tidy.
  bool merged = false;
  for (std::uint32_t i = 0; i < policy_.flush.compact_steps_per_tick; ++i) {
    auto step = act_.lsm->CompactStep(policy_.flush.l0_pace_runs);
    if (!step.ok() || !step.value()) break;
    merged = true;
  }
  if (merged) {
    Record(ControlRule::kCompactStep, debt_before, debt_before,
           act_.lsm->CompactionDebtBytes());
  }
  // Then gate flush admission on the debt that remains.
  const std::uint64_t debt = act_.lsm->CompactionDebtBytes();
  if (debt > policy_.flush.debt_bound_bytes &&
      flush_deferral_ < policy_.flush.max_deferral_bytes) {
    const std::size_t old = flush_deferral_;
    flush_deferral_ = std::min(flush_deferral_ + policy_.flush.deferral_step_bytes,
                               policy_.flush.max_deferral_bytes);
    act_.lsm->SetFlushDeferralBytes(flush_deferral_);
    Record(ControlRule::kDeferFlush, debt, old, flush_deferral_);
  } else if (flush_deferral_ > 0 && debt * 2 <= policy_.flush.debt_bound_bytes) {
    // Release through a half-bound deadband so the deferral does not
    // flap when the debt hovers at the bound.
    const std::size_t old = flush_deferral_;
    flush_deferral_ = 0;
    act_.lsm->SetFlushDeferralBytes(0);
    Record(ControlRule::kReleaseFlush, debt, old, 0);
  }
}

void LoopController::ApplyAdmission() {
  const std::uint16_t queues = act_.transport->num_queues();
  for (std::uint16_t q = 0; q < queues; ++q) {
    act_.transport->SetAdmissionControl(q, policy_.admission.credits_per_tick,
                                        policy_.admission.busy_backoff_ns);
  }
  Record(ControlRule::kApplyAdmission, queues, 0,
         policy_.admission.credits_per_tick);
}

std::string LoopController::ActuationsCsv() const {
  std::string out = "t_ns,seq,rule,observed,old_setting,new_setting\n";
  for (const ActuationRecord& rec : actuations_) {
    out += std::to_string(rec.t_ns);
    out += ',';
    out += std::to_string(rec.seq);
    out += ',';
    out += ControlRuleName(rec.rule);
    out += ',';
    out += std::to_string(rec.observed);
    out += ',';
    out += std::to_string(rec.old_setting);
    out += ',';
    out += std::to_string(rec.new_setting);
    out += '\n';
  }
  return out;
}

}  // namespace bandslim::control
