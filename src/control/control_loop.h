// The closed-loop controller (DESIGN.md 2.7): a deterministic feedback loop
// ticked on the telemetry sample grid. It observes finalized interval
// samples plus watchdog alert edges and actuates four device knobs — driver
// transfer thresholds, FTL GC pacing, MemTable-flush admission, and per-SQ
// host admission credits — so the device degrades gracefully under storms
// instead of stalling.
//
// Determinism: the controller is a SampleObserver, so it runs synchronously
// inside Sampler::TakeSample — after the watchdog evaluated this interval,
// before snapshot publication. Everything it reads is integer virtual-time
// state and everything it does is a deterministic function of that state,
// so two runs of one workload produce byte-identical actuation logs. Any
// virtual time an actuation spends (paced GC, compaction increments) is
// charged to the host op whose Poll() crossed the sample boundary — paced
// maintenance is visible in op latency, exactly like real background work
// stealing device bandwidth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/policy.h"
#include "sim/clock.h"
#include "telemetry/telemetry.h"

namespace bandslim::driver {
class KvDriver;
}
namespace bandslim::ftl {
class PageFtl;
}
namespace bandslim::lsm {
class LsmTree;
}
namespace bandslim::nvme {
class NvmeTransport;
}

namespace bandslim::control {

// Stable identifiers for actuation records and EventType::kControl emits
// (`a` = rule id, `b` = new setting). Append-only.
enum class ControlRule : std::uint8_t {
  kRaiseThresholds = 0,  // observed=taf_milli, old/new=threshold1.
  kRestoreThresholds,    // observed=taf_milli, old/new=threshold1.
  kGcStep,               // observed=free blocks before, new=free after.
  kDeferFlush,           // observed=debt bytes, old/new=deferral bytes.
  kReleaseFlush,         // observed=debt bytes, old/new=deferral bytes.
  kCompactStep,          // observed=debt bytes before, new=debt after.
  kApplyAdmission,       // observed=queue count, new=credits per tick.
};

const char* ControlRuleName(ControlRule rule);

// One actuation: which rule moved which setting, and what the controller
// observed when it decided. The log is append-only and exported verbatim,
// so two runs of one workload can be diffed actuation-by-actuation.
struct ActuationRecord {
  sim::Nanoseconds t_ns = 0;
  std::uint64_t seq = 0;  // Actuation order (monotonic).
  ControlRule rule = ControlRule::kRaiseThresholds;
  std::uint64_t observed = 0;
  std::uint64_t old_setting = 0;
  std::uint64_t new_setting = 0;
};

class LoopController : public telemetry::SampleObserver {
 public:
  // The four knobs. Pointers are non-owning; LSM is rebuilt on PowerCycle,
  // so KvSsd re-binds (and Reset()s) after every reassembly.
  struct Actuators {
    driver::KvDriver* driver = nullptr;
    ftl::PageFtl* ftl = nullptr;
    lsm::LsmTree* lsm = nullptr;
    nvme::NvmeTransport* transport = nullptr;
  };

  LoopController(const ControlPolicy& policy, telemetry::Sampler* sampler);

  // (Re)binds the actuators and applies initial settings (admission
  // credits). The first bind captures the driver's configured thresholds as
  // the restore-to base.
  void BindActuators(const Actuators& actuators);

  // Re-derives every setting from the policy base: thresholds restored,
  // flush deferral dropped, admission re-applied, hysteresis counters
  // zeroed. Called after PowerCycle/Recover — settings are a pure function
  // of policy and live state, never persisted, so a crash mid-actuation
  // cannot leave a stale setting behind.
  void Reset();

  void OnSample(const telemetry::Sample& sample) override;

  const ControlPolicy& policy() const { return policy_; }
  const std::vector<ActuationRecord>& actuations() const {
    return actuations_;
  }
  std::uint64_t actuation_count() const { return actuations_.size(); }
  bool thresholds_raised() const { return thresholds_raised_; }

  // Deterministic CSV of the actuation log:
  // t_ns,seq,rule,observed,old_setting,new_setting
  std::string ActuationsCsv() const;

 private:
  void TickThresholds(const telemetry::Sample& sample);
  void TickGc();
  void TickFlush();
  void ApplyAdmission();
  void Record(ControlRule rule, std::uint64_t observed,
              std::uint64_t old_setting, std::uint64_t new_setting);
  std::uint64_t SeriesValue(const telemetry::Sample& sample,
                            const std::string& name) const;

  ControlPolicy policy_;
  telemetry::Sampler* sampler_;
  Actuators act_;

  // Restore-to base for the driver thresholds (captured at first bind).
  bool base_captured_ = false;
  std::uint32_t base_threshold1_ = 0;
  std::uint32_t base_threshold2_ = 0;

  // Loop state (all re-derived by Reset()).
  std::uint64_t ticks_ = 0;
  sim::Nanoseconds tick_t_ns_ = 0;  // Sample stamp of the current tick.
  bool thresholds_raised_ = false;
  std::uint32_t breach_streak_ = 0;
  std::uint32_t recover_streak_ = 0;
  std::size_t flush_deferral_ = 0;

  std::vector<ActuationRecord> actuations_;
};

}  // namespace bandslim::control
