// Closed-loop control policy (DESIGN.md 2.7): every gain, bound, and
// deadband of the adaptive controller in one value-semantic struct, so a
// benchmark or test states its whole control configuration declaratively.
//
// The default-constructed policy is the NULL POLICY: `enabled` is false, no
// controller is built, and a run is bit-identical to one on a build without
// the control subsystem. Each knob additionally has its own enable so the
// loops can be exercised (and ablated) independently.
//
// Stability comes from hysteresis, not precision: every loop acts on
// finalized interval observations, requires N consecutive intervals of
// evidence before moving a setting, and releases through a deadband wider
// than its trigger so observation noise cannot make a knob oscillate.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/clock.h"

namespace bandslim::control {

// Knob 1 — driver adaptive transfer thresholds. When the PCIe TAF budget is
// breached (watchdog rule "taf_over_budget" when configured, else a direct
// comparison against `taf_budget_milli`), the controller raises the
// driver's threshold1/threshold2 so mid-size values leave the piggyback
// fragment path for page-unit DMA, trading the paper's byte savings for
// fewer commands per value while the link is saturated.
struct ThresholdPolicy {
  bool enabled = false;
  // Fallback TAF budget (fixed-point x1000) when no watchdog rule exists.
  std::uint64_t taf_budget_milli = 2000;
  std::uint32_t breach_intervals = 2;   // Evidence needed to raise.
  std::uint32_t recover_intervals = 4;  // Quiet intervals needed to restore.
  std::uint32_t raised_threshold1 = 35;  // Piggyback only when command-free.
  std::uint32_t raised_threshold2 = 0;   // No hybrid remainders while raised.
};

// Knob 2 — FTL GC pacing. Instead of letting the free pool coast down to
// gc_low_watermark and paying a stop-the-world reclamation inside some
// unlucky PUT, the controller reclaims a budgeted number of blocks per tick
// once the pool dips below `soft_watermark`, escalating as it approaches
// the hard reserve.
struct GcPacePolicy {
  bool enabled = false;
  std::uint64_t soft_watermark = 8;      // Start pacing below this.
  std::uint64_t escalate_watermark = 5;  // Work harder at or below this.
  std::uint32_t steps_per_tick = 1;      // Blocks reclaimed per tick (soft).
  std::uint32_t escalated_steps = 4;     // Blocks per tick once escalated.
  std::uint64_t target_free = 10;        // Stop reclaiming at this headroom.
};

// Knob 3 — MemTable-flush admission. While compaction debt exceeds
// `debt_bound_bytes`, flushes are deferred by granting the MemTable extra
// headroom (bounded by `max_deferral_bytes` — the hard stall ceiling, paid
// in device DRAM), and the controller runs paced compaction increments so
// the debt actually drains instead of merely being hidden.
struct FlushAdmissionPolicy {
  bool enabled = false;
  std::uint64_t debt_bound_bytes = 1024;  // Defer flushes above this debt.
  std::size_t deferral_step_bytes = 256;  // Headroom added per tick.
  std::size_t max_deferral_bytes = 2048;  // Hard ceiling on extra headroom.
  std::size_t l0_pace_runs = 2;           // CompactStep L0 merge threshold.
  std::uint32_t compact_steps_per_tick = 1;
};

// Knob 4 — host-side per-SQ admission control. Each tick refills every
// submission queue to `credits_per_tick` head-of-op credits; with credits
// exhausted the transport sheds further ops with a clean kBusy before the
// doorbell, converting unbounded queueing delay under overload into an
// explicit, retryable signal.
struct AdmissionPolicy {
  bool enabled = false;
  std::uint32_t credits_per_tick = 64;
  sim::Nanoseconds busy_backoff_ns = 2000;
};

struct ControlPolicy {
  bool enabled = false;          // Master switch; false = null policy.
  std::uint32_t tick_every_samples = 1;  // Control cadence in sample grid.
  ThresholdPolicy thresholds;
  GcPacePolicy gc;
  FlushAdmissionPolicy flush;
  AdmissionPolicy admission;
};

}  // namespace bandslim::control
