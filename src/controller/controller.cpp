#include "controller/controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "nvme/command.h"

namespace bandslim::controller {

using nvme::CqEntry;
using nvme::CqStatus;
using nvme::NvmeCommand;
using nvme::Opcode;

namespace {

// Honest completion-status mapping: keep the failure class visible to the
// host instead of collapsing everything onto one generic code.
CqStatus CqStatusFromStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return CqStatus::kSuccess;
    case StatusCode::kNotFound: return CqStatus::kNotFound;
    case StatusCode::kInvalidArgument: return CqStatus::kInvalidField;
    case StatusCode::kOutOfSpace: return CqStatus::kOutOfSpace;
    case StatusCode::kMediaError: return CqStatus::kMediaError;
    case StatusCode::kTimedOut: return CqStatus::kTimedOut;
    default: return CqStatus::kInternalError;
  }
}

}  // namespace

KvController::KvController(sim::VirtualClock* clock, const sim::CostModel* cost,
                           stats::MetricsRegistry* metrics, dma::DmaEngine* dma,
                           vlog::VLog* vlog, lsm::LsmTree* lsm,
                           ControllerConfig config, trace::Tracer* tracer)
    : clock_(clock),
      tracer_(tracer),
      cost_(cost),
      dma_(dma),
      vlog_(vlog),
      lsm_(lsm),
      config_(config),
      writes_counter_(metrics->GetCounter("controller.values_written")),
      write_bytes_counter_(metrics->GetCounter("controller.value_bytes_written")),
      reads_counter_(metrics->GetCounter("controller.values_read")),
      read_memcpy_bytes_(metrics->GetCounter("controller.read_memcpy_bytes")),
      gc_relocated_values_(metrics->GetCounter("controller.gc_relocated_values")) {}

CqEntry KvController::Fail(CqStatus status, std::uint16_t queue_id) {
  if (queue_id < pending_.size()) pending_[queue_id].active = false;
  return CqEntry{0, 0, status};
}

CqEntry KvController::FailOp(CqStatus status) { return CqEntry{0, 0, status}; }

CqEntry KvController::Handle(const NvmeCommand& cmd, std::uint16_t queue_id) {
  // All device-side processing is kKvs self-time; nested DMA / buffer /
  // NAND spans carve their own exclusive shares out of it.
  trace::SpanScope span(tracer_, trace::Category::kKvs);
  switch (cmd.opcode()) {
    case Opcode::kKvWrite: return HandleWrite(cmd, queue_id);
    case Opcode::kKvBulkWrite: return HandleBulkWrite(cmd);
    case Opcode::kKvBulkRead: return HandleBulkRead(cmd);
    case Opcode::kKvBulkDelete: return HandleBulkDelete(cmd);
    case Opcode::kKvTransfer: return HandleTransfer(cmd, queue_id);
    case Opcode::kKvRead: return HandleRead(cmd);
    case Opcode::kKvDelete: return HandleDelete(cmd);
    case Opcode::kKvExists: return HandleExists(cmd);
    case Opcode::kKvIterSeek: return HandleIterSeek(cmd);
    case Opcode::kKvIterNext: return HandleIterNext(cmd);
    case Opcode::kKvIterNextBatch: return HandleIterNextBatch(cmd);
    case Opcode::kKvIterClose: return HandleIterClose(cmd);
    case Opcode::kKvFlush: return HandleFlush();
    case Opcode::kInvalid: break;
  }
  return Fail(CqStatus::kInvalidField, queue_id);
}

CqEntry KvController::HandleWrite(const NvmeCommand& cmd,
                                  std::uint16_t queue_id) {
  PendingWrite& op = Slot(queue_id);
  if (op.active) return Fail(CqStatus::kInvalidField, queue_id);
  const std::size_t key_len = cmd.key_size();
  const std::uint32_t value_size = cmd.value_size();
  if (key_len == 0 || key_len > kMaxKeySize || value_size == 0) {
    return Fail(CqStatus::kInvalidField, queue_id);
  }

  // Reset the slot in place; `staged` keeps its capacity from earlier ops.
  op.key_len = static_cast<std::uint8_t>(
      cmd.CopyKeyTo({op.key.data(), op.key.size()}));
  op.value_size = value_size;
  op.staged.clear();
  op.piggy_received = 0;
  op.has_dma = false;
  op.reservation = {};

  if (!cmd.prp.empty()) {
    // PRP-described payload: trigger the page-unit DMA (Section 2.2).
    const std::uint64_t prp_bytes = cmd.prp.DmaBytes();
    op.has_dma = true;
    Status dma_status;
    if (config_.nand_io_enabled) {
      auto res = vlog_->buffer().ReserveDma(prp_bytes, value_size);
      if (!res.ok()) return Fail(CqStatus::kOutOfSpace, queue_id);
      op.reservation = res.value();
      dma_status = dma_->HostToDevice(
          cmd.prp, op.reservation.dest_addr, [&](std::uint64_t off) {
            return vlog_->buffer().DmaPageSlice(op.reservation, off);
          });
    } else {
      // NAND I/O disabled (Section 4.2): land in a scratch page buffer so
      // traffic and latency are still faithfully accounted.
      op.reservation = {0, prp_bytes, value_size};
      if (nand_off_scratch_.size() < prp_bytes) {
        nand_off_scratch_.resize(prp_bytes);
      }
      dma_status = dma_->HostToDevice(cmd.prp, 0, [&](std::uint64_t off) {
        return MutByteSpan(nand_off_scratch_).subspan(off, kMemPageSize);
      });
    }
    if (!dma_status.ok()) return Fail(CqStatusFromStatus(dma_status), queue_id);
    if (prp_bytes >= value_size) {
      return FinishWrite(op);  // Pure PRP transfer.
    }
    op.active = true;  // Hybrid: trailing follows.
    return CqEntry{};
  }

  // Piggybacked head fragment (Figure 6a).
  if (!cmd.piggybacked()) return Fail(CqStatus::kInvalidField, queue_id);
  const std::size_t head_bytes =
      std::min<std::size_t>(kWriteCmdPiggybackCapacity, value_size);
  op.staged.resize(head_bytes);
  nvme::codec::GetWritePiggyback(cmd, MutByteSpan(op.staged));
  op.piggy_received = head_bytes;
  if (cmd.final_fragment()) {
    if (head_bytes != value_size) return Fail(CqStatus::kInvalidField, queue_id);
    return FinishWrite(op);
  }
  op.active = true;
  return CqEntry{};
}

CqEntry KvController::HandleBulkWrite(const NvmeCommand& cmd) {
  // Host-side batching (Section 1's "existing approach"): one PRP payload
  // carries many records that the device must unpack and index one by one —
  // the per-record overhead the paper points out.
  const std::uint32_t payload_size = cmd.value_size();
  if (payload_size == 0 || cmd.prp.empty() ||
      cmd.prp.DmaBytes() < payload_size) {
    return CqEntry{0, 0, CqStatus::kInvalidField};
  }
  if (bulk_staging_.size() < cmd.prp.DmaBytes()) {
    bulk_staging_.resize(cmd.prp.DmaBytes());
  }
  Status dma_status = dma_->HostToDevice(cmd.prp, 0, [&](std::uint64_t off) {
    return MutByteSpan(bulk_staging_).subspan(off, kMemPageSize);
  });
  if (!dma_status.ok()) return CqEntry{0, 0, CqStatus::kInternalError};

  std::uint32_t records = 0;
  std::size_t off = 0;
  while (off < payload_size) {
    // [u8 klen][key][u32 vsize][value]
    const std::size_t klen = bulk_staging_[off++];
    if (klen == 0 || klen > kMaxKeySize || off + klen + 4 > payload_size) {
      return CqEntry{0, 0, CqStatus::kInvalidField};
    }
    const std::string key(reinterpret_cast<const char*>(&bulk_staging_[off]),
                          klen);
    off += klen;
    std::uint32_t vsize = 0;
    for (int i = 0; i < 4; ++i) {
      vsize |= static_cast<std::uint32_t>(bulk_staging_[off++]) << (8 * i);
    }
    if (vsize == 0 || off + vsize > payload_size) {
      return CqEntry{0, 0, CqStatus::kInvalidField};
    }
    const ByteSpan value(&bulk_staging_[off], vsize);
    off += vsize;

    // Per-record indexing work, exactly as for individual writes.
    clock_->Advance(cost_->dev_kvs_ns);
    if (config_.nand_io_enabled) {
      clock_->Advance(cost_->dev_persist_ns);
      // Unpacking = a device copy from the staging area into the buffer.
      auto addr = vlog_->buffer().PackPiggybacked(value);
      if (!addr.ok()) return CqEntry{0, 0, CqStatus::kOutOfSpace};
      if (!lsm_->Put(key, lsm::ValueRef{addr.value(), vsize, false}).ok()) {
        return CqEntry{0, 0, CqStatus::kInternalError};
      }
    }
    ++values_written_;
    value_bytes_written_ += vsize;
    writes_counter_->Increment();
    write_bytes_counter_->Add(vsize);
    ++records;
  }
  return CqEntry{records, 0, CqStatus::kSuccess};
}

std::vector<std::string> KvController::DecodeKeyBatch(
    std::uint32_t payload_size) const {
  // [u8 klen][key]* — an empty result signals a malformed payload (the
  // wire format admits no legal empty batch; the driver never sends one).
  std::vector<std::string> keys;
  std::size_t off = 0;
  while (off < payload_size) {
    const std::size_t klen = bulk_staging_[off++];
    if (klen == 0 || klen > kMaxKeySize || off + klen > payload_size) {
      return {};
    }
    keys.emplace_back(reinterpret_cast<const char*>(&bulk_staging_[off]),
                      klen);
    off += klen;
  }
  return keys;
}

CqEntry KvController::HandleBulkRead(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  const std::uint32_t payload_size = cmd.value_size();
  if (payload_size == 0 || cmd.prp.empty() ||
      cmd.prp.DmaBytes() < payload_size) {
    return CqEntry{0, 0, CqStatus::kInvalidField};
  }
  if (bulk_staging_.size() < cmd.prp.DmaBytes()) {
    bulk_staging_.resize(cmd.prp.DmaBytes());
  }
  Status dma_status = dma_->HostToDevice(cmd.prp, 0, [&](std::uint64_t off) {
    return MutByteSpan(bulk_staging_).subspan(off, kMemPageSize);
  });
  if (!dma_status.ok()) return CqEntry{0, 0, CqStatus::kInternalError};
  const std::vector<std::string> keys = DecodeKeyBatch(payload_size);
  if (keys.empty()) return CqEntry{0, 0, CqStatus::kInvalidField};

  // Pass 1: index lookups only, to size the response before touching the
  // vLog. Each key costs the per-record KVS work exactly as a single GET.
  std::vector<Result<lsm::ValueRef>> refs;
  refs.reserve(keys.size());
  std::uint64_t response_size = 0;
  for (const std::string& key : keys) {
    clock_->Advance(cost_->dev_kvs_ns);
    refs.push_back(lsm_->Get(key));
    response_size += 5;  // [u8 found][u32 vsize]
    if (refs.back().ok()) response_size += refs.back().value().size;
  }
  if (cmd.prp.DmaBytes() < response_size) {
    return CqEntry{static_cast<std::uint32_t>(response_size), 0,
                   CqStatus::kBufferTooSmall};
  }

  // Pass 2: materialize values into a page-aligned bounce buffer and DMA
  // the packed response back over the same PRP pages. The buffer is recycled
  // across commands, so every record header byte is written explicitly.
  MutByteSpan bounce = Bounce(RoundUpPow2(response_size, kMemPageSize));
  std::size_t off = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!refs[i].ok()) {
      if (!refs[i].status().IsNotFound()) {
        return FailOp(CqStatusFromStatus(refs[i].status()));
      }
      for (int b = 0; b < 5; ++b) bounce[off++] = 0;  // found=0, vsize=0.
      continue;
    }
    const lsm::ValueRef& ref = refs[i].value();
    bounce[off++] = 1;
    for (int b = 0; b < 4; ++b) {
      bounce[off++] = static_cast<std::uint8_t>(ref.size >> (8 * b));
    }
    const Status read_st =
        vlog_->Read(ref.addr, bounce.subspan(off, ref.size));
    if (!read_st.ok()) return FailOp(CqStatusFromStatus(read_st));
    clock_->Advance(cost_->MemcpyCost(ref.size));
    read_memcpy_bytes_->Add(ref.size);
    reads_counter_->Increment();
    off += ref.size;
  }
  if (!dma_->DeviceToHost(ByteSpan(bounce.data(), response_size), 0, cmd.prp)
           .ok()) {
    return FailOp(CqStatus::kInternalError);
  }
  return CqEntry{static_cast<std::uint32_t>(response_size), 0,
                 CqStatus::kSuccess};
}

CqEntry KvController::HandleBulkDelete(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  const std::uint32_t payload_size = cmd.value_size();
  if (payload_size == 0 || cmd.prp.empty() ||
      cmd.prp.DmaBytes() < payload_size) {
    return CqEntry{0, 0, CqStatus::kInvalidField};
  }
  if (bulk_staging_.size() < cmd.prp.DmaBytes()) {
    bulk_staging_.resize(cmd.prp.DmaBytes());
  }
  Status dma_status = dma_->HostToDevice(cmd.prp, 0, [&](std::uint64_t off) {
    return MutByteSpan(bulk_staging_).subspan(off, kMemPageSize);
  });
  if (!dma_status.ok()) return CqEntry{0, 0, CqStatus::kInternalError};
  const std::vector<std::string> keys = DecodeKeyBatch(payload_size);
  if (keys.empty()) return CqEntry{0, 0, CqStatus::kInvalidField};

  std::uint32_t removed = 0;
  for (const std::string& key : keys) {
    clock_->Advance(cost_->dev_kvs_ns);
    const bool present = lsm_->Get(key).ok();
    if (!present) continue;  // Absent keys are skipped, not an error.
    if (!lsm_->Delete(key).ok()) return FailOp(CqStatus::kInternalError);
    ++removed;
  }
  return CqEntry{removed, 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleTransfer(const NvmeCommand& cmd,
                                     std::uint16_t queue_id) {
  if (queue_id >= pending_.size() || !pending_[queue_id].active) {
    return Fail(CqStatus::kInvalidField, queue_id);
  }
  PendingWrite& op = pending_[queue_id];
  const std::uint64_t received =
      (op.has_dma ? op.reservation.prp_bytes : 0) + op.piggy_received;
  if (received >= op.value_size) return Fail(CqStatus::kInvalidField, queue_id);
  const std::uint64_t remaining = op.value_size - received;
  const std::size_t n =
      std::min<std::uint64_t>(kTransferCmdPiggybackCapacity, remaining);
  // Decode the fragment into a stack buffer — no per-fragment allocation.
  std::array<std::uint8_t, kTransferCmdPiggybackCapacity> fragment;
  nvme::codec::GetTransferPayload(cmd, MutByteSpan(fragment.data(), n));

  if (op.has_dma) {
    if (config_.nand_io_enabled) {
      // Hybrid trailing bytes extend the DMA extent in place (Section 3.2).
      Status st = vlog_->buffer().AppendTrailing(
          op.reservation, op.reservation.prp_bytes + op.piggy_received,
          ByteSpan(fragment.data(), n));
      if (!st.ok()) return Fail(CqStatusFromStatus(st), queue_id);
    }
  } else {
    op.staged.insert(op.staged.end(), fragment.data(), fragment.data() + n);
  }
  op.piggy_received += n;

  const bool complete = received + n == op.value_size;
  if (cmd.final_fragment() != complete) {
    return Fail(CqStatus::kInvalidField, queue_id);
  }
  if (complete) {
    op.active = false;
    return FinishWrite(op);
  }
  return CqEntry{};
}

CqEntry KvController::FinishWrite(PendingWrite& op) {
  clock_->Advance(cost_->dev_kvs_ns);
  if (!config_.nand_io_enabled) {
    ++values_written_;
    value_bytes_written_ += op.value_size;
    writes_counter_->Increment();
    write_bytes_counter_->Add(op.value_size);
    return CqEntry{};
  }
  clock_->Advance(cost_->dev_persist_ns);

  Result<std::uint64_t> addr = op.has_dma
                                   ? vlog_->buffer().CommitDma(op.reservation)
                                   : vlog_->buffer().PackPiggybacked(op.staged);
  if (!addr.ok()) return FailOp(CqStatusFromStatus(addr.status()));

  key_scratch_.assign(reinterpret_cast<const char*>(op.key.data()), op.key_len);
  Status st = lsm_->Put(key_scratch_,
                        lsm::ValueRef{addr.value(), op.value_size, false});
  if (!st.ok()) return FailOp(CqStatusFromStatus(st));

  ++values_written_;
  value_bytes_written_ += op.value_size;
  writes_counter_->Increment();
  write_bytes_counter_->Add(op.value_size);
  return CqEntry{};
}

CqEntry KvController::HandleRead(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  std::array<std::uint8_t, kMaxKeySize> key_buf;
  const std::size_t key_len = cmd.CopyKeyTo({key_buf.data(), key_buf.size()});
  key_scratch_.assign(reinterpret_cast<const char*>(key_buf.data()), key_len);
  auto ref = lsm_->Get(key_scratch_);
  if (!ref.ok()) {
    return ref.status().IsNotFound() ? FailOp(CqStatus::kNotFound)
                                     : FailOp(CqStatus::kInternalError);
  }
  const std::uint32_t size = ref.value().size;
  if (cmd.prp.DmaBytes() < size) {
    return CqEntry{size, 0, CqStatus::kBufferTooSmall};
  }
  // Stage into a page-aligned bounce buffer (the DMA engine cannot source
  // from arbitrary byte offsets), then DMA to the host. Every DMA'd byte in
  // [0, size) is written by the vLog read, so reuse is safe.
  MutByteSpan bounce = Bounce(RoundUpPow2(size, kMemPageSize));
  const Status read_st = vlog_->Read(ref.value().addr, bounce.subspan(0, size));
  if (!read_st.ok()) return FailOp(CqStatusFromStatus(read_st));
  clock_->Advance(cost_->MemcpyCost(size));
  read_memcpy_bytes_->Add(size);
  if (!dma_->DeviceToHost(ByteSpan(bounce.data(), size), 0, cmd.prp).ok()) {
    return FailOp(CqStatus::kInternalError);
  }
  reads_counter_->Increment();
  return CqEntry{size, 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleDelete(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  std::array<std::uint8_t, kMaxKeySize> key_buf;
  const std::size_t key_len = cmd.CopyKeyTo({key_buf.data(), key_buf.size()});
  key_scratch_.assign(reinterpret_cast<const char*>(key_buf.data()), key_len);
  if (!lsm_->Delete(key_scratch_).ok()) return FailOp(CqStatus::kInternalError);
  return CqEntry{};
}

CqEntry KvController::HandleExists(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  std::array<std::uint8_t, kMaxKeySize> key_buf;
  const std::size_t key_len = cmd.CopyKeyTo({key_buf.data(), key_buf.size()});
  key_scratch_.assign(reinterpret_cast<const char*>(key_buf.data()), key_len);
  auto ref = lsm_->Get(key_scratch_);
  if (!ref.ok()) return FailOp(CqStatus::kNotFound);
  return CqEntry{ref.value().size, 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleIterSeek(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  auto iter = lsm_->NewIterator();
  if (!iter.ok()) return FailOp(CqStatus::kInternalError);
  std::array<std::uint8_t, kMaxKeySize> key_buf;
  const std::size_t key_len = cmd.CopyKeyTo({key_buf.data(), key_buf.size()});
  iter.value()->Seek(
      std::string(reinterpret_cast<const char*>(key_buf.data()), key_len));
  const std::uint32_t id = next_iterator_id_++;
  iterators_[id] = std::move(iter).value();
  return CqEntry{id, 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleIterNext(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  auto it = iterators_.find(cmd.iter_handle());
  if (it == iterators_.end()) return FailOp(CqStatus::kIteratorInvalid);
  lsm::LsmTree::Iterator& iter = *it->second;
  if (!iter.Valid()) return CqEntry{0, 0, CqStatus::kIteratorExhausted};

  // Record format shipped to the host: [u8 key_len][key][u32 vsize][value].
  const std::string& key = iter.key();
  const lsm::ValueRef& ref = iter.ref();
  const std::size_t needed = 1 + key.size() + 4 + ref.size;
  if (cmd.prp.DmaBytes() < needed) {
    return CqEntry{static_cast<std::uint32_t>(needed), 0,
                   CqStatus::kBufferTooSmall};
  }
  MutByteSpan bounce = Bounce(RoundUpPow2(needed, kMemPageSize));
  std::size_t off = 0;
  bounce[off++] = static_cast<std::uint8_t>(key.size());
  std::copy(key.begin(), key.end(), bounce.begin() + static_cast<std::ptrdiff_t>(off));
  off += key.size();
  for (int i = 0; i < 4; ++i) {
    bounce[off++] = static_cast<std::uint8_t>(ref.size >> (8 * i));
  }
  const Status next_read =
      vlog_->Read(ref.addr, bounce.subspan(off, ref.size));
  if (!next_read.ok()) return FailOp(CqStatusFromStatus(next_read));
  clock_->Advance(cost_->MemcpyCost(needed));
  read_memcpy_bytes_->Add(needed);
  if (!dma_->DeviceToHost(ByteSpan(bounce.data(), needed), 0, cmd.prp).ok()) {
    return FailOp(CqStatus::kInternalError);
  }
  iter.Next();
  return CqEntry{static_cast<std::uint32_t>(needed), 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleIterNextBatch(const NvmeCommand& cmd) {
  if (!config_.nand_io_enabled) return FailOp(CqStatus::kInvalidField);
  clock_->Advance(cost_->dev_kvs_ns);
  auto it = iterators_.find(cmd.iter_handle());
  if (it == iterators_.end()) return FailOp(CqStatus::kIteratorInvalid);
  lsm::LsmTree::Iterator& iter = *it->second;
  if (!iter.Valid()) return CqEntry{0, 0, CqStatus::kIteratorExhausted};

  const std::uint64_t capacity = cmd.prp.DmaBytes();
  MutByteSpan bounce = Bounce(capacity);
  std::size_t off = 0;
  std::uint32_t records = 0;
  while (iter.Valid()) {
    const std::string& key = iter.key();
    const lsm::ValueRef& ref = iter.ref();
    const std::size_t needed = 1 + key.size() + 4 + ref.size;
    if (off + needed > capacity) break;
    bounce[off++] = static_cast<std::uint8_t>(key.size());
    std::copy(key.begin(), key.end(),
              bounce.begin() + static_cast<std::ptrdiff_t>(off));
    off += key.size();
    for (int i = 0; i < 4; ++i) {
      bounce[off++] = static_cast<std::uint8_t>(ref.size >> (8 * i));
    }
    const Status batch_read =
        vlog_->Read(ref.addr, bounce.subspan(off, ref.size));
    if (!batch_read.ok()) return FailOp(CqStatusFromStatus(batch_read));
    off += ref.size;
    ++records;
    iter.Next();
  }
  if (records == 0) {
    // A single record larger than the receive buffer: report its size.
    const std::size_t needed = 1 + iter.key().size() + 4 + iter.ref().size;
    return CqEntry{static_cast<std::uint32_t>(needed), 0,
                   CqStatus::kBufferTooSmall};
  }
  clock_->Advance(cost_->MemcpyCost(off));
  read_memcpy_bytes_->Add(off);
  if (!dma_->DeviceToHost(ByteSpan(bounce.data(), off), 0, cmd.prp).ok()) {
    return FailOp(CqStatus::kInternalError);
  }
  // Result: payload bytes; records decoded by the driver until exhausted.
  return CqEntry{static_cast<std::uint32_t>(off), 0, CqStatus::kSuccess};
}

CqEntry KvController::HandleIterClose(const NvmeCommand& cmd) {
  iterators_.erase(cmd.iter_handle());
  return CqEntry{};
}

CqEntry KvController::HandleFlush() {
  if (!config_.nand_io_enabled) return CqEntry{};
  const Status drained = vlog_->Drain();
  if (!drained.ok()) return FailOp(CqStatusFromStatus(drained));
  const Status ckpt = lsm_->Checkpoint(VlogTailCookie());
  if (!ckpt.ok()) return FailOp(CqStatusFromStatus(ckpt));
  // The checkpoint is durable: vLog segments cleaned since the previous
  // checkpoint are no longer referenced by any recoverable state.
  for (const auto& [first_lpn, count] : pending_vlog_trims_) {
    const Status trimmed = vlog_->TrimPages(first_lpn, count);
    if (!trimmed.ok()) return FailOp(CqStatusFromStatus(trimmed));
  }
  pending_vlog_trims_.clear();
  return CqEntry{};
}

std::uint64_t KvController::VlogTailCookie() const {
  return vlog_->buffer().window_base_addr() / kNandPageSize;
}

Result<std::uint64_t> KvController::CollectVlogSegment() {
  trace::SpanScope span(tracer_, trace::Category::kFtlGc);
  if (!config_.nand_io_enabled) {
    return Status::Unsupported("NAND I/O disabled");
  }
  // Advance the cursor over segments already cleaned out of order.
  while (collected_segments_.erase(vlog_gc_cursor_lpn_) > 0) {
    vlog_gc_cursor_lpn_ += config_.gc_segment_pages;
  }
  const std::uint64_t window_base_lpn =
      vlog_->buffer().window_base_addr() / kNandPageSize;
  if (vlog_gc_cursor_lpn_ >= window_base_lpn) return std::uint64_t{0};
  const std::uint64_t seg_pages = config_.gc_segment_pages;

  // Candidate segments: the next gc_scan_segments uncollected, fully
  // flushed segments starting at the cursor.
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t start = vlog_gc_cursor_lpn_;
       start + seg_pages <= window_base_lpn &&
       candidates.size() < config_.gc_scan_segments;
       start += seg_pages) {
    if (!collected_segments_.contains(start)) candidates.push_back(start);
  }
  if (candidates.empty()) {
    // Tail shorter than a full segment: clean it directly.
    candidates.push_back(vlog_gc_cursor_lpn_);
  }

  // One liveness scan scores every candidate (cost-benefit cleaning): the
  // victim is the segment with the most dead bytes.
  std::vector<std::uint64_t> live_bytes(candidates.size(), 0);
  auto segment_of = [&](vlog::VlogAddr addr) -> int {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::uint64_t lo = candidates[i] * kNandPageSize;
      if (addr >= lo && addr < lo + seg_pages * kNandPageSize) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  BANDSLIM_RETURN_IF_ERROR(lsm_->ForEachLive(
      [&](const std::string&, const lsm::ValueRef& ref) {
        const int seg = segment_of(ref.addr);
        if (seg >= 0) live_bytes[static_cast<std::size_t>(seg)] += ref.size;
      }));

  std::size_t victim = 0;
  std::int64_t best_dead = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::uint64_t used = 0;
    for (std::uint64_t p = 0; p < seg_pages; ++p) {
      used += vlog_->FlushedPageUsedBytes(candidates[i] + p);
    }
    const std::int64_t dead =
        static_cast<std::int64_t>(used) - static_cast<std::int64_t>(live_bytes[i]);
    if (dead > best_dead) {
      best_dead = dead;
      victim = i;
    }
  }
  const std::uint64_t victim_start = candidates[victim];
  const std::uint64_t victim_pages =
      std::min(seg_pages, window_base_lpn - victim_start);
  const std::uint64_t lo = victim_start * kNandPageSize;
  const std::uint64_t hi = lo + victim_pages * kNandPageSize;

  // Relocate every live value whose byte range intersects the victim —
  // values may straddle segment boundaries, and trimming a page under a
  // straddler's tail would corrupt it.
  std::vector<std::pair<std::string, lsm::ValueRef>> live;
  BANDSLIM_RETURN_IF_ERROR(lsm_->ForEachLive(
      [&](const std::string& key, const lsm::ValueRef& ref) {
        if (ref.addr < hi && ref.addr + ref.size > lo) {
          live.emplace_back(key, ref);
        }
      }));

  for (auto& [key, ref] : live) {
    Bytes value(ref.size);
    BANDSLIM_RETURN_IF_ERROR(vlog_->Read(ref.addr, MutByteSpan(value)));
    auto new_addr = vlog_->buffer().PackPiggybacked(ByteSpan(value));
    if (!new_addr.ok()) return new_addr.status();
    BANDSLIM_RETURN_IF_ERROR(
        lsm_->Put(key, lsm::ValueRef{new_addr.value(), ref.size, false}));
    gc_relocated_values_->Increment();
  }
  // Trim deferred to the next checkpoint (see HandleFlush): the values were
  // relocated, but only in device DRAM state until the manifest lands.
  pending_vlog_trims_.emplace_back(victim_start, victim_pages);
  if (victim_start == vlog_gc_cursor_lpn_) {
    vlog_gc_cursor_lpn_ += victim_pages;
  } else {
    collected_segments_.insert(victim_start);
  }
  ++vlog_gc_runs_;
  return static_cast<std::uint64_t>(live.size());
}

}  // namespace bandslim::controller
