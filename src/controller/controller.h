// BandSlim Key-Value Controller (Section 3.1): the device-side firmware.
// It fetches NVMe key-value commands, reassembles piggybacked value
// fragments (FIFO per queue, Section 3.3.1), triggers page-unit DMA for
// PRP-described payloads, packs values into the NAND page buffer under the
// configured policy, and maintains the in-device LSM-tree with fine-grained
// value addressing over the vLog.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/page_buffer.h"
#include "common/status.h"
#include "dma/dma_engine.h"
#include "lsm/lsm_tree.h"
#include "nvme/transport.h"
#include "vlog/vlog.h"

namespace bandslim::controller {

struct ControllerConfig {
  // When false, the persistence path (vLog append, LSM insert, NAND I/O) is
  // skipped entirely — the paper disables NAND I/O to isolate transfer
  // effects (Section 4.2). Reads are unsupported in this mode.
  bool nand_io_enabled = true;
  // vLog GC segment length, in logical NAND pages.
  std::uint64_t gc_segment_pages = 64;
  // Cost-benefit victim selection: how many candidate segments (starting at
  // the cleaning cursor) to score by dead-byte ratio before collecting.
  std::uint64_t gc_scan_segments = 8;
};

class KvController : public nvme::DeviceHandler {
 public:
  KvController(sim::VirtualClock* clock, const sim::CostModel* cost,
               stats::MetricsRegistry* metrics, dma::DmaEngine* dma,
               vlog::VLog* vlog, lsm::LsmTree* lsm, ControllerConfig config,
               trace::Tracer* tracer = nullptr);

  nvme::CqEntry Handle(const nvme::NvmeCommand& cmd,
                       std::uint16_t queue_id) override;

  // Relocates live values out of the oldest flushed vLog segment and trims
  // it (key-value-separated log cleaning; extension beyond the paper).
  // Returns the number of values relocated.
  Result<std::uint64_t> CollectVlogSegment();

  std::uint64_t values_written() const { return values_written_; }
  std::uint64_t value_bytes_written() const { return value_bytes_written_; }
  std::uint64_t vlog_gc_runs() const { return vlog_gc_runs_; }

 private:
  // One reassembly slot per submission queue, reused across operations: the
  // key lives in a fixed array and `staged` retains its capacity, so the
  // steady-state piggyback PUT path never touches the allocator.
  struct PendingWrite {
    std::array<std::uint8_t, kMaxKeySize> key{};
    std::uint8_t key_len = 0;
    bool active = false;
    std::uint32_t value_size = 0;
    // Piggyback reassembly staging (holds only the piggybacked bytes).
    Bytes staged;
    std::uint64_t piggy_received = 0;
    // Hybrid transfers: the landed DMA extent awaiting trailing bytes.
    bool has_dma = false;
    buffer::NandPageBuffer::DmaReservation reservation;
  };
  // The queue's reassembly slot, lazily created on first use.
  PendingWrite& Slot(std::uint16_t queue_id) {
    if (pending_.size() <= queue_id) pending_.resize(queue_id + 1u);
    return pending_[queue_id];
  }
  // Reusable page-aligned staging for read responses; returns a span of
  // exactly `n` bytes. Callers must write every byte they DMA out — the
  // buffer is recycled across commands and is NOT re-zeroed.
  MutByteSpan Bounce(std::size_t n) {
    if (bounce_scratch_.size() < n) bounce_scratch_.resize(n);
    return {bounce_scratch_.data(), n};
  }

  nvme::CqEntry HandleWrite(const nvme::NvmeCommand& cmd,
                            std::uint16_t queue_id);
  nvme::CqEntry HandleBulkWrite(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleBulkRead(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleBulkDelete(const nvme::NvmeCommand& cmd);
  // Decodes the [u8 klen][key]* request shared by bulk read/delete from
  // bulk_staging_ (already DMA'd in); empty vector = malformed payload.
  std::vector<std::string> DecodeKeyBatch(std::uint32_t payload_size) const;
  nvme::CqEntry HandleTransfer(const nvme::NvmeCommand& cmd,
                               std::uint16_t queue_id);
  nvme::CqEntry HandleRead(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleDelete(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleExists(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleIterSeek(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleIterNext(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleIterNextBatch(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleIterClose(const nvme::NvmeCommand& cmd);
  nvme::CqEntry HandleFlush();

  // Completes a reassembled/landed write: pack, index, account. Operates on
  // the slot in place (the slot's buffers are recycled for the next op).
  nvme::CqEntry FinishWrite(PendingWrite& op);
  // Fails a command in a fragment stream: aborts the queue's in-progress
  // reassembly (the stream is corrupt past this point).
  nvme::CqEntry Fail(nvme::CqStatus status, std::uint16_t queue_id);
  // Fails a self-contained command; other queues' pending reassembly state
  // is untouched (a failed read on queue 1 must not abort queue 0's write).
  nvme::CqEntry FailOp(nvme::CqStatus status);

  std::uint64_t VlogTailCookie() const;

  sim::VirtualClock* clock_;
  trace::Tracer* tracer_;  // Optional; null = untraced.
  const sim::CostModel* cost_;
  dma::DmaEngine* dma_;
  vlog::VLog* vlog_;
  lsm::LsmTree* lsm_;
  ControllerConfig config_;

  // Fragment reassembly state, indexed by submission queue: the piggyback
  // stream is FIFO within a queue (Section 3.3.1), and queues interleave.
  std::vector<PendingWrite> pending_;
  Bytes nand_off_scratch_;  // DMA landing zone when persistence is disabled.
  Bytes bulk_staging_;      // Unpack area for host-side-batched payloads.
  Bytes bounce_scratch_;    // Read-response staging (see Bounce()).
  std::string key_scratch_;  // LSM key view recycled across commands.

  std::unordered_map<std::uint32_t, std::unique_ptr<lsm::LsmTree::Iterator>>
      iterators_;
  std::uint32_t next_iterator_id_ = 1;

  std::uint64_t vlog_gc_cursor_lpn_ = 0;
  std::set<std::uint64_t> collected_segments_;  // Starts already cleaned.
  // Cleaned segments whose physical trim waits for the next checkpoint —
  // the last durable manifest may still point into them.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending_vlog_trims_;
  std::uint64_t vlog_gc_runs_ = 0;

  std::uint64_t values_written_ = 0;
  std::uint64_t value_bytes_written_ = 0;

  stats::Counter* writes_counter_;
  stats::Counter* write_bytes_counter_;
  stats::Counter* reads_counter_;
  stats::Counter* read_memcpy_bytes_;
  stats::Counter* gc_relocated_values_;
};

}  // namespace bandslim::controller
