// bandslim::KvStore — the topology-neutral client API.
//
// One handle drives any KV backend in the tree:
//   * KvSsd      — a single simulated KV-SSD (core/kvssd.h),
//   * KvCluster  — a host-side router sharding keys across a fleet of
//                  KvSsd instances (cluster/kv_cluster.h),
//   * HostKvs    — the conventional host-side stack on a block SSD the
//                  paper motivates against (hostkvs/host_kvs.h).
//
// Examples, benches, and the workload runner accept a KvStore&, so every
// harness runs unchanged against one device or a sharded fleet. The
// interface is the KV data path plus observation; device maintenance
// (power cycling, fault arming, queue drivers) stays on the concrete types.
//
// Contracts every implementation must honor:
//   * GetBatch returns EXACTLY one result per requested key, in request
//     order — even when keys land on different shards of a cluster and the
//     per-shard sub-batches complete in a different order. Absent keys are
//     reported in place as found == false, never compacted away.
//   * DeleteBatch skips absent keys (not an error) and returns how many
//     were actually removed, summed across shards.
//   * All timing is virtual: Now() is the store's client-visible clock, and
//     a run is deterministic for a given option set and op sequence.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/snapshot.h"
#include "driver/driver.h"
#include "sim/clock.h"

namespace bandslim {

// Aggregated observation point for any KvStore: the summed counter block
// plus one DeviceSnapshot per backing device. A bare KvSsd reports itself
// as a one-shard store; a KvCluster reports its router-level accounting on
// top of the per-shard snapshots.
struct StoreSnapshot {
  // Summed across shards; elapsed_ns is the store's own clock (Now()), not
  // a sum — virtual times of concurrently running shards do not add.
  KvSsdStats stats;
  std::vector<DeviceSnapshot> shards;  // Shard-index order; size 1 = device.

  // Router-level accounting (all zero for a non-clustered store).
  std::uint64_t batch_subops = 0;         // Shard-local sub-batches issued.
  std::uint64_t cross_shard_batches = 0;  // Batches spanning >= 2 shards.
  std::uint64_t qos_refill_windows = 0;   // Admission credit refills.

  // Fleet-level watchdog state (telemetry/fleet.h), one entry per configured
  // fleet rule — shard imbalance, hot-shard p99 skew, ring skew, straggler
  // stall. Empty for a non-clustered store or a disabled aggregator;
  // per-DEVICE watchdog alerts stay on each shard's DeviceSnapshot.
  std::vector<DeviceSnapshot::AlertInfo> alerts;
  // Fleet aggregator stream sizes (0 when absent or disabled).
  std::uint64_t fleet_samples = 0;
  std::uint64_t fleet_events = 0;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards.size());
  }
};

class KvStore {
 public:
  // The batch record types are the driver's: one wire format regardless of
  // which topology carries the batch.
  using KvPair = driver::KvDriver::KvPair;
  using BatchGetResult = driver::KvDriver::BatchGetResult;

  virtual ~KvStore() = default;

  // --- KV API --------------------------------------------------------------
  virtual Status Put(std::string_view key, ByteSpan value) = 0;
  Status Put(std::string_view key, std::string_view value) {
    return Put(key,
               ByteSpan(reinterpret_cast<const std::uint8_t*>(value.data()),
                        value.size()));
  }
  virtual Result<Bytes> Get(std::string_view key) = 0;
  // Allocation-free GET: fills `*value` in place, reusing its capacity.
  virtual Status GetInto(std::string_view key, Bytes* value) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // Host-side batching (Dotori/KV-CSD style, Section 1). A cluster splits
  // the batch by owner shard, dispatches the sub-batches in parallel time
  // frames, and merges results; see the ordering contract above.
  virtual Status PutBatch(std::span<const KvPair> batch) = 0;
  Status PutBatch(std::initializer_list<KvPair> batch) {
    return PutBatch(std::span<const KvPair>(batch.begin(), batch.size()));
  }
  // Bulk GET: one result per key, in REQUEST order (absent -> !found).
  virtual Result<std::vector<BatchGetResult>> GetBatch(
      std::span<const std::string> keys) = 0;
  // Bulk DELETE: returns how many keys were actually removed.
  virtual Result<std::uint32_t> DeleteBatch(
      std::span<const std::string> keys) = 0;

  // Drains buffered state to durable media on every backing device.
  virtual Status Flush() = 0;

  // --- Introspection -------------------------------------------------------
  // One-call observation point aggregating every backing device.
  virtual StoreSnapshot Inspect() const = 0;
  // In-place variant for sampling loops: refills `*out`, reusing its
  // vectors, maps and strings. Concrete stores override this to be
  // allocation-free in steady state (no structural change since the last
  // call); the default falls back to a full Inspect() copy.
  virtual void InspectInto(StoreSnapshot* out) const { *out = Inspect(); }
  // Summed counter block (cheaper than Inspect when only counters matter).
  virtual KvSsdStats GetStats() const = 0;
  // The store's client-visible virtual time.
  virtual sim::Nanoseconds Now() const = 0;

 protected:
  KvStore() = default;
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;
};

}  // namespace bandslim
