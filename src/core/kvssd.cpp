#include "core/kvssd.h"

namespace bandslim {

KvSsd::KvSsd(const KvSsdOptions& options)
    : options_(options),
      tracer_(&clock_, &metrics_, options.trace),
      fault_plan_(options.fault) {
  link_.AttachMetrics(&metrics_);
  sampler_ = std::make_unique<telemetry::Sampler>(&clock_,
                                                  options_.telemetry);
  // Event-log taps stay null on a disabled sampler: every emit site is then
  // a single pointer test and the log stays empty.
  telemetry::EventLog* elog =
      sampler_->enabled() ? &sampler_->event_log() : nullptr;
  fault_plan_.SetEventLog(elog);
  transport_ = std::make_unique<nvme::NvmeTransport>(
      &clock_, &options_.cost, &link_, &metrics_, options_.queue_depth,
      options_.num_queues, &fault_plan_, &tracer_);
  transport_->SetEventLog(elog);
  if (sampler_->enabled()) transport_->SetSampler(sampler_.get());
  dma_ = std::make_unique<dma::DmaEngine>(&clock_, &options_.cost, &link_,
                                          &host_memory_, &metrics_,
                                          options_.dma, &fault_plan_,
                                          &tracer_);
  nand_ = std::make_unique<nand::NandFlash>(options_.geometry, &clock_,
                                            &options_.cost, &metrics_,
                                            &fault_plan_, &tracer_);
  ftl_ = std::make_unique<ftl::PageFtl>(nand_.get(), &metrics_, options_.ftl,
                                        &tracer_, elog);
  AssembleDevice(options_.buffer.initial_lpn);
  driver_ = std::make_unique<driver::KvDriver>(transport_.get(), &host_memory_,
                                               options_.driver, &tracer_);
  BindTelemetry();
  // The controller ticks on the sample grid, so it exists only when both
  // the policy and telemetry are enabled; otherwise the observer slot stays
  // null and the run is bit-identical to a control-free build.
  if (options_.control.enabled && sampler_->enabled()) {
    loop_controller_ = std::make_unique<control::LoopController>(
        options_.control, sampler_.get());
    sampler_->SetObserver(loop_controller_.get());
    BindControl();
  }
}

KvSsd::~KvSsd() = default;

void KvSsd::AssembleDevice(std::uint64_t vlog_start_lpn) {
  buffer::BufferConfig buf = options_.buffer;
  buf.initial_lpn = vlog_start_lpn;
  vlog_ = std::make_unique<vlog::VLog>(ftl_.get(), &clock_, &options_.cost,
                                       &metrics_, buf,
                                       options_.retain_payloads, &tracer_);
  // Recomputed here (not captured from the ctor) because PowerCycle also
  // reassembles the device.
  telemetry::EventLog* elog =
      sampler_->enabled() ? &sampler_->event_log() : nullptr;
  lsm_ = std::make_unique<lsm::LsmTree>(ftl_.get(), &metrics_, options_.lsm,
                                        elog);
  controller_ = std::make_unique<controller::KvController>(
      &clock_, &options_.cost, &metrics_, dma_.get(), vlog_.get(), lsm_.get(),
      options_.controller, &tracer_);
  transport_->AttachDevice(controller_.get());
}

void KvSsd::BindControl() {
  control::LoopController::Actuators act;
  act.driver = driver_.get();
  act.ftl = ftl_.get();
  act.lsm = lsm_.get();
  act.transport = transport_.get();
  loop_controller_->BindActuators(act);
  loop_controller_->Reset();
}

void KvSsd::BindTelemetry() {
  if (!sampler_->enabled()) return;
  telemetry::Sampler::Sources src;
  src.metrics = &metrics_;
  src.link = &link_;
  src.transport = transport_.get();
  src.nand = nand_.get();
  src.ftl = ftl_.get();
  src.buffer = &vlog_->buffer();
  src.lsm = lsm_.get();
  sampler_->Bind(src);
}

Result<std::unique_ptr<KvSsd>> KvSsd::Open(const KvSsdOptions& options) {
  if (options.geometry.total_pages() == 0) {
    return Status::InvalidArgument("empty NAND geometry");
  }
  if (options.buffer.num_entries < 2) {
    return Status::InvalidArgument("buffer needs at least two entries");
  }
  return std::unique_ptr<KvSsd>(new KvSsd(options));
}

Result<driver::KvDriver*> KvSsd::CreateQueueDriver(
    std::uint16_t queue_id, driver::DriverConfig config) {
  if (queue_id >= options_.num_queues) {
    return Status::InvalidArgument("queue id beyond num_queues");
  }
  config.queue_id = queue_id;
  extra_drivers_.push_back(std::make_unique<driver::KvDriver>(
      transport_.get(), &host_memory_, config, &tracer_));
  return extra_drivers_.back().get();
}

Status KvSsd::Put(std::string_view key, ByteSpan value) {
  return driver_->Put(key, value);
}

Status KvSsd::PutBatch(std::span<const driver::KvDriver::KvPair> batch) {
  return driver_->PutBatch(batch);
}

Result<std::vector<driver::KvDriver::BatchGetResult>> KvSsd::GetBatch(
    std::span<const std::string> keys) {
  return driver_->GetBatch(keys);
}

Result<std::uint32_t> KvSsd::DeleteBatch(std::span<const std::string> keys) {
  return driver_->DeleteBatch(keys);
}

Result<Bytes> KvSsd::Get(std::string_view key) { return driver_->Get(key); }

Status KvSsd::GetInto(std::string_view key, Bytes* value) {
  return driver_->GetInto(key, value);
}

Status KvSsd::Delete(std::string_view key) { return driver_->Delete(key); }

Result<std::uint32_t> KvSsd::Exists(std::string_view key) {
  return driver_->Exists(key);
}

Status KvSsd::Flush() { return driver_->Flush(); }

Result<driver::KvDriver::Iterator> KvSsd::Seek(std::string_view from) {
  return driver_->Seek(from);
}

Result<std::uint64_t> KvSsd::CollectVlogGarbage() {
  trace::OpScope op(&tracer_, trace::OpType::kGc, /*queue_id=*/0);
  auto relocated = controller_->CollectVlogSegment();
  op.set_ok(relocated.ok());
  if (sampler_->enabled()) {
    if (relocated.ok()) {
      sampler_->event_log().Emit(telemetry::EventType::kVlogGc,
                                 relocated.value());
    }
    sampler_->Poll();
  }
  return relocated;
}

Status KvSsd::PowerCycle() {
  // Device DRAM contents vanish; NAND and the FTL map are the durable state
  // (a real FTL persists its map through its own journal — out of scope).
  AssembleDevice(/*vlog_start_lpn=*/0);
  auto cookie = lsm_->Restore();
  if (!cookie.ok()) return cookie.status();
  // Restart the vLog tail after the checkpointed page.
  AssembleDevice(cookie.value());
  auto again = lsm_->Restore();
  if (!again.ok()) return again.status();
  // The vLog (and so the sampler's buffer source) was rebuilt: re-bind.
  BindTelemetry();
  // The LSM actuator was rebuilt too, and control settings are re-derived
  // from the policy base, never recovered from pre-cycle state — a crash
  // mid-actuation cannot leave a stale threshold or deferral behind.
  if (loop_controller_ != nullptr) BindControl();
  if (sampler_->enabled()) {
    sampler_->event_log().Emit(telemetry::EventType::kPowerCycle);
    sampler_->Poll();
  }
  return Status::Ok();
}

Status KvSsd::Recover() {
  trace::OpScope op(&tracer_, trace::OpType::kRecovery, /*queue_id=*/0);
  // Power comes back: clear the latch so the remount's own NAND reads work,
  // then rebuild device DRAM state from the last durable checkpoint.
  fault_plan_.ClearCrash();
  BANDSLIM_RETURN_IF_ERROR(PowerCycle());
  // Mount-time consistency pass: the checkpoint cookie is the vLog tail at
  // Flush() time, and every page below it was fully programmed before the
  // manifest landed. A live reference reaching at or past that boundary
  // would let a GET return a torn (partially flushed) value — reject the
  // mount instead of serving it.
  const std::uint64_t durable_end =
      vlog_->buffer().window_base_addr();
  std::uint64_t live_refs = 0;
  Status torn = Status::Ok();
  BANDSLIM_RETURN_IF_ERROR(
      lsm_->ForEachLive([&](const std::string& key, const lsm::ValueRef& ref) {
        ++live_refs;
        if (ref.addr + ref.size > durable_end) {
          torn = Status::Corruption("torn value reference for key " + key);
        }
      }));
  BANDSLIM_RETURN_IF_ERROR(torn);
  metrics_.GetCounter("kvssd.recovery_runs")->Increment();
  metrics_.GetCounter("kvssd.recovery_replayed_refs")->Add(live_refs);
  if (sampler_->enabled()) {
    sampler_->event_log().Emit(telemetry::EventType::kRecover, live_refs);
    sampler_->Poll();
  }
  return Status::Ok();
}

// Every stat is assembled from named MetricsRegistry counters, so GetStats,
// Inspect().counters and metrics().ToString() can never disagree. Registry
// counters survive PowerCycle()/Recover() (the per-component objects are
// rebuilt, the registry is not), so all stats are monotone for the device's
// lifetime.
KvSsdStats KvSsd::GetStats() const {
  const auto c = [this](const char* name) {
    return metrics_.CounterValue(name);
  };
  KvSsdStats s;
  s.elapsed_ns = clock_.Now();
  s.commands_submitted = c("nvme.commands_submitted");
  s.pcie_h2d_bytes = c("pcie.mmio.h2d_bytes") + c("pcie.cmd_fetch.h2d_bytes") +
                     c("pcie.dma_data.h2d_bytes") +
                     c("pcie.completion.h2d_bytes");
  s.pcie_d2h_bytes = c("pcie.mmio.d2h_bytes") + c("pcie.cmd_fetch.d2h_bytes") +
                     c("pcie.dma_data.d2h_bytes") +
                     c("pcie.completion.d2h_bytes");
  s.mmio_bytes = c("pcie.mmio.h2d_bytes");
  s.dma_h2d_bytes = c("pcie.dma_data.h2d_bytes");
  s.nand_pages_programmed = c("nand.pages_programmed");
  s.nand_pages_read = c("nand.pages_read");
  s.nand_blocks_erased = c("nand.blocks_erased");
  s.vlog_pages_flushed = c("buffer.flushed_pages");
  s.lsm_pages_programmed = c("ftl.programs.lsm");
  s.gc_pages_programmed = c("ftl.programs.gc");
  s.device_memcpy_bytes =
      c("buffer.memcpy_bytes") + c("controller.read_memcpy_bytes");
  s.buffer_wasted_bytes = c("buffer.wasted_bytes");
  s.dlt_forced_evictions = c("buffer.dlt_forced_evictions");
  s.values_written = c("controller.values_written");
  s.value_bytes_written = c("controller.value_bytes_written");
  s.lsm_compactions = c("lsm.compactions");
  s.memtable_flushes = c("lsm.memtable_flushes");
  s.nvme_timeouts = c("nvme.timeouts");
  s.nvme_retries = c("nvme.retries");
  s.nand_program_failures = c("nand.program_failures");
  s.ecc_corrections = c("nand.ecc_corrections");
  s.bad_block_remaps = c("ftl.bad_block_remaps");
  s.recovery_runs = c("kvssd.recovery_runs");
  s.recovery_replayed_refs = c("kvssd.recovery_replayed_refs");
  return s;
}

StoreSnapshot KvSsd::Inspect() const {
  StoreSnapshot store;
  InspectInto(&store);
  return store;
}

void KvSsd::InspectInto(StoreSnapshot* out) const {
  out->stats = GetStats();
  out->shards.resize(1);
  InspectDeviceInto(&out->shards[0]);
  // Router-level accounting and fleet-level alerts: none on a bare device.
  out->batch_subops = 0;
  out->cross_shard_batches = 0;
  out->qos_refill_windows = 0;
  out->alerts.clear();
  out->fleet_samples = 0;
  out->fleet_events = 0;
}

DeviceSnapshot KvSsd::InspectDevice() const {
  DeviceSnapshot snap;
  InspectDeviceInto(&snap);
  return snap;
}

void KvSsd::InspectDeviceInto(DeviceSnapshot* out) const {
  out->stats = GetStats();
  out->queues.resize(transport_->num_queue_pairs());
  for (std::size_t q = 0; q < out->queues.size(); ++q) {
    const nvme::NvmeTransport::QueueInfo info =
        transport_->QueueInfoAt(static_cast<std::uint16_t>(q));
    out->queues[q] = {info.queue_id, info.depth, info.submitted,
                      info.inflight};
  }
  const buffer::NandPageBuffer& buf = vlog_->buffer();
  out->buffer_window_base = buf.window_base_addr();
  out->vlog_tail = buf.wp();
  out->buffer_dma_frontier = buf.dma_frontier();
  out->buffer_resident_bytes = buf.wp() - buf.window_base_addr();
  out->ftl_mapped_pages = ftl_->mapped_pages();
  out->ftl_free_blocks = ftl_->free_blocks();
  out->ftl_reserve_blocks = ftl_->reserve_remaining();
  out->ftl_bad_blocks = ftl_->bad_blocks();
  out->lsm_memtable_entries = lsm_->memtable_entries();
  out->lsm_memtable_bytes = lsm_->memtable_bytes();
  out->lsm_pending_trim_tables = lsm_->pending_trim_tables();
  out->lsm_compaction_debt_bytes = lsm_->CompactionDebtBytes();
  out->lsm_levels.resize(static_cast<std::size_t>(lsm_->level_count()));
  for (int l = 0; l < lsm_->level_count(); ++l) {
    out->lsm_levels[static_cast<std::size_t>(l)] = {lsm_->TableCount(l),
                                                    lsm_->LevelBytes(l)};
  }
  metrics_.SnapshotCountersInto(&out->counters);
  out->telemetry_samples = sampler_->samples_emitted();
  out->telemetry_events = sampler_->event_log().total_emitted();
  const telemetry::Watchdog& wd = sampler_->watchdog();
  out->alerts.resize(wd.rules().size());
  for (std::size_t i = 0; i < wd.rules().size(); ++i) {
    const telemetry::AlertState& st = wd.states()[i];
    DeviceSnapshot::AlertInfo& a = out->alerts[i];
    a.rule.assign(wd.rules()[i].name);  // Reuses the string's capacity.
    a.fired = st.fired;
    a.cleared = st.cleared;
    a.active = st.active;
    a.last_value = st.last_value;
    a.last_fire_ns = st.last_fire_ns;
  }
}

KvSsd::TestHooks KvSsd::Hooks() {
  TestHooks hooks;
  hooks.clock = &clock_;
  hooks.transport = transport_.get();
  hooks.fault_plan = &fault_plan_;
  hooks.driver = driver_.get();
  hooks.tracer = &tracer_;
  hooks.sampler = sampler_.get();
  hooks.metrics = &metrics_;
  return hooks;
}

}  // namespace bandslim
