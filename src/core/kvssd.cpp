#include "core/kvssd.h"

namespace bandslim {

KvSsd::KvSsd(const KvSsdOptions& options)
    : options_(options), fault_plan_(options.fault) {
  transport_ = std::make_unique<nvme::NvmeTransport>(
      &clock_, &options_.cost, &link_, &metrics_, options_.queue_depth,
      options_.num_queues, &fault_plan_);
  dma_ = std::make_unique<dma::DmaEngine>(&clock_, &options_.cost, &link_,
                                          &host_memory_, &metrics_,
                                          options_.dma, &fault_plan_);
  nand_ = std::make_unique<nand::NandFlash>(options_.geometry, &clock_,
                                            &options_.cost, &metrics_,
                                            &fault_plan_);
  ftl_ = std::make_unique<ftl::PageFtl>(nand_.get(), &metrics_, options_.ftl);
  AssembleDevice(options_.buffer.initial_lpn);
  driver_ = std::make_unique<driver::KvDriver>(transport_.get(), &host_memory_,
                                               options_.driver);
}

KvSsd::~KvSsd() = default;

void KvSsd::AssembleDevice(std::uint64_t vlog_start_lpn) {
  buffer::BufferConfig buf = options_.buffer;
  buf.initial_lpn = vlog_start_lpn;
  vlog_ = std::make_unique<vlog::VLog>(ftl_.get(), &clock_, &options_.cost,
                                       &metrics_, buf,
                                       options_.retain_payloads);
  lsm_ = std::make_unique<lsm::LsmTree>(ftl_.get(), &metrics_, options_.lsm);
  controller_ = std::make_unique<controller::KvController>(
      &clock_, &options_.cost, &metrics_, dma_.get(), vlog_.get(), lsm_.get(),
      options_.controller);
  transport_->AttachDevice(controller_.get());
}

Result<std::unique_ptr<KvSsd>> KvSsd::Open(const KvSsdOptions& options) {
  if (options.geometry.total_pages() == 0) {
    return Status::InvalidArgument("empty NAND geometry");
  }
  if (options.buffer.num_entries < 2) {
    return Status::InvalidArgument("buffer needs at least two entries");
  }
  return std::unique_ptr<KvSsd>(new KvSsd(options));
}

Result<driver::KvDriver*> KvSsd::CreateQueueDriver(
    std::uint16_t queue_id, driver::DriverConfig config) {
  if (queue_id >= options_.num_queues) {
    return Status::InvalidArgument("queue id beyond num_queues");
  }
  config.queue_id = queue_id;
  extra_drivers_.push_back(std::make_unique<driver::KvDriver>(
      transport_.get(), &host_memory_, config));
  return extra_drivers_.back().get();
}

Status KvSsd::Put(std::string_view key, ByteSpan value) {
  return driver_->Put(key, value);
}

Status KvSsd::Put(std::string_view key, std::string_view value) {
  return driver_->Put(
      key, ByteSpan(reinterpret_cast<const std::uint8_t*>(value.data()),
                    value.size()));
}

Status KvSsd::PutBatch(const std::vector<driver::KvDriver::KvPair>& batch) {
  return driver_->PutBatch(batch);
}

Result<Bytes> KvSsd::Get(std::string_view key) { return driver_->Get(key); }

Status KvSsd::Delete(std::string_view key) { return driver_->Delete(key); }

Result<std::uint32_t> KvSsd::Exists(std::string_view key) {
  return driver_->Exists(key);
}

Status KvSsd::Flush() { return driver_->Flush(); }

Result<driver::KvDriver::Iterator> KvSsd::Seek(std::string_view from) {
  return driver_->Seek(from);
}

Result<std::uint64_t> KvSsd::CollectVlogGarbage() {
  return controller_->CollectVlogSegment();
}

Status KvSsd::PowerCycle() {
  // Device DRAM contents vanish; NAND and the FTL map are the durable state
  // (a real FTL persists its map through its own journal — out of scope).
  AssembleDevice(/*vlog_start_lpn=*/0);
  auto cookie = lsm_->Restore();
  if (!cookie.ok()) return cookie.status();
  // Restart the vLog tail after the checkpointed page.
  AssembleDevice(cookie.value());
  auto again = lsm_->Restore();
  if (!again.ok()) return again.status();
  return Status::Ok();
}

Status KvSsd::Recover() {
  // Power comes back: clear the latch so the remount's own NAND reads work,
  // then rebuild device DRAM state from the last durable checkpoint.
  fault_plan_.ClearCrash();
  BANDSLIM_RETURN_IF_ERROR(PowerCycle());
  // Mount-time consistency pass: the checkpoint cookie is the vLog tail at
  // Flush() time, and every page below it was fully programmed before the
  // manifest landed. A live reference reaching at or past that boundary
  // would let a GET return a torn (partially flushed) value — reject the
  // mount instead of serving it.
  const std::uint64_t durable_end =
      vlog_->buffer().window_base_addr();
  std::uint64_t live_refs = 0;
  Status torn = Status::Ok();
  BANDSLIM_RETURN_IF_ERROR(
      lsm_->ForEachLive([&](const std::string& key, const lsm::ValueRef& ref) {
        ++live_refs;
        if (ref.addr + ref.size > durable_end) {
          torn = Status::Corruption("torn value reference for key " + key);
        }
      }));
  BANDSLIM_RETURN_IF_ERROR(torn);
  ++recovery_runs_;
  recovery_replayed_refs_ += live_refs;
  return Status::Ok();
}

KvSsdStats KvSsd::GetStats() const {
  KvSsdStats s;
  s.elapsed_ns = clock_.Now();
  s.commands_submitted = transport_->commands_submitted();
  s.pcie_h2d_bytes = link_.HostToDeviceBytes();
  s.pcie_d2h_bytes = link_.DeviceToHostBytes();
  s.mmio_bytes = link_.MmioBytes();
  s.dma_h2d_bytes = link_.BytesOf(pcie::TrafficClass::kDmaData,
                                  pcie::Direction::kHostToDevice);
  s.nand_pages_programmed = nand_->pages_programmed();
  s.nand_pages_read = nand_->pages_read();
  s.nand_blocks_erased = nand_->blocks_erased();
  s.vlog_pages_flushed = vlog_->flushed_pages();
  s.lsm_pages_programmed = metrics_.CounterValue("ftl.programs.lsm");
  s.gc_pages_programmed = metrics_.CounterValue("ftl.programs.gc");
  s.device_memcpy_bytes = metrics_.CounterValue("buffer.memcpy_bytes") +
                          metrics_.CounterValue("controller.read_memcpy_bytes");
  s.buffer_wasted_bytes = vlog_->buffer().wasted_bytes();
  s.dlt_forced_evictions = vlog_->buffer().dlt_forced_evictions();
  s.values_written = controller_->values_written();
  s.value_bytes_written = controller_->value_bytes_written();
  s.lsm_compactions = lsm_->compactions_run();
  s.memtable_flushes = lsm_->memtable_flushes();
  s.nvme_timeouts = transport_->timeouts();
  s.nvme_retries = transport_->retries();
  s.nand_program_failures = nand_->program_failures();
  s.ecc_corrections = nand_->ecc_corrections();
  s.bad_block_remaps = ftl_->bad_block_remaps();
  s.recovery_runs = recovery_runs_;
  s.recovery_replayed_refs = recovery_replayed_refs_;
  return s;
}

}  // namespace bandslim
