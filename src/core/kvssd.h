// bandslim::KvSsd — the public API. Opening a device assembles the whole
// simulated stack of Figure 5(a):
//
//   host:   KvDriver ── NvmeTransport (SQ/CQ + doorbells over PcieLink)
//   device: KvController ── DmaEngine
//                        ── NandPageBuffer (packing policies + DLT) ── vLog
//                        ── LsmTree (MemTable / SSTables)           ── FTL ── NAND
//
// All timing is virtual (sim::VirtualClock); all PCIe/NAND activity is
// accounted; a run is deterministic for a given option set.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/page_buffer.h"
#include "common/status.h"
#include "control/control_loop.h"
#include "control/policy.h"
#include "controller/controller.h"
#include "core/kv_store.h"
#include "core/snapshot.h"
#include "dma/dma_engine.h"
#include "driver/driver.h"
#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "lsm/lsm_tree.h"
#include "nand/geometry.h"
#include "nand/nand_flash.h"
#include "nvme/host_memory.h"
#include "nvme/transport.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"
#include "vlog/vlog.h"

namespace bandslim {

struct KvSsdOptions {
  driver::DriverConfig driver;
  buffer::BufferConfig buffer;
  lsm::LsmConfig lsm;
  nand::NandGeometry geometry;
  ftl::FtlConfig ftl;
  sim::CostModel cost;
  dma::DmaConfig dma;
  controller::ControllerConfig controller;
  // Deterministic fault injection (src/fault). The default config is inert:
  // no PRNG draws, no timing perturbation, bit-identical fig* outputs.
  fault::FaultConfig fault;
  // Per-command tracing (src/trace). Disabled by default: the stack then
  // pays one branch per instrumentation site and records nothing.
  trace::TraceConfig trace;
  // Continuous telemetry (src/telemetry): virtual-time periodic sampling,
  // structured event log, and watchdog alert rules. Disabled by default —
  // the stack then pays one branch per poll site, records nothing, and
  // simulated outcomes are bit-identical to a telemetry-free build.
  telemetry::TelemetryConfig telemetry;
  // Closed-loop adaptive control (src/control): a deterministic controller
  // ticked on the telemetry sample grid that actuates driver thresholds,
  // GC pacing, flush admission, and per-SQ credits. Requires telemetry to
  // be enabled (the sample grid is its clock). Disabled by default — the
  // null policy builds no controller and runs bit-identical to a build
  // without the subsystem.
  control::ControlPolicy control;
  // Keep value payloads in the NAND model so GET returns real bytes. Turn
  // off for multi-GiB write-only benches (reads then return zeros).
  bool retain_payloads = true;
  std::uint16_t queue_depth = 64;
  // NVMe submission/completion queue pairs. The built-in driver binds to
  // queue 0; CreateQueueDriver() attaches further drivers to other queues.
  std::uint16_t num_queues = 1;
};

// KvSsdStats and DeviceSnapshot moved to core/snapshot.h (re-exported via
// core/kv_store.h) so the abstract KvStore interface can speak in those
// types without depending on the concrete device.

class KvSsd : public KvStore {
 public:
  static Result<std::unique_ptr<KvSsd>> Open(const KvSsdOptions& options = {});
  ~KvSsd() override;

  // --- KV API (the KvStore interface) --------------------------------------
  // The string_view Put and initializer_list PutBatch conveniences come
  // from the base class and forward to the virtual span overloads.
  using KvStore::Put;
  using KvStore::PutBatch;
  Status Put(std::string_view key, ByteSpan value) override;
  // Host-side batching comparator (Dotori/KV-CSD style, Section 1). One
  // command carries the whole batch; see KvDriver for the trade-off notes.
  Status PutBatch(std::span<const driver::KvDriver::KvPair> batch) override;
  // Bulk GET: one result per key, in key order (absent keys -> !found).
  Result<std::vector<driver::KvDriver::BatchGetResult>> GetBatch(
      std::span<const std::string> keys) override;
  // Bulk DELETE: removes every present key (absent keys are skipped, not an
  // error) and returns how many were actually removed.
  Result<std::uint32_t> DeleteBatch(std::span<const std::string> keys) override;
  Result<Bytes> Get(std::string_view key) override;
  // Allocation-free GET: fills `*value` in place, reusing its capacity
  // (see driver::KvDriver::GetInto).
  Status GetInto(std::string_view key, Bytes* value) override;
  Status Delete(std::string_view key) override;
  Result<std::uint32_t> Exists(std::string_view key);
  // Drains the NAND page buffer and checkpoints the LSM-tree manifest.
  Status Flush() override;
  Result<driver::KvDriver::Iterator> Seek(std::string_view from);

  // --- Maintenance / fault injection ---------------------------------------
  // Relocates live values out of the oldest vLog segment (log cleaning).
  Result<std::uint64_t> CollectVlogGarbage();
  // Simulates power loss and firmware reboot: device DRAM state (MemTable,
  // window bookkeeping) is discarded and rebuilt from the last checkpoint
  // (Flush()). Data PUT after the last Flush is lost by contract.
  Status PowerCycle();
  // Arms the fault plan's power-loss latch: the first device operation at or
  // after `t` (virtual time) fails, and everything after it keeps failing —
  // in-flight DMA and flush state is effectively dropped mid-stream.
  void CrashAt(sim::Nanoseconds t) { fault_plan_.ArmCrash(t); }
  // Re-energizes a crashed device and remounts from the last checkpoint,
  // then verifies the recovered mapping: every live value reference must lie
  // entirely below the checkpointed vLog tail, so no GET can ever observe a
  // torn or partially flushed value. Returns kCorruption if any does.
  Status Recover();

  // --- Introspection --------------------------------------------------------
  // One-call observation point: everything a test, bench or operator
  // dashboard needs, as plain values, for THIS device.
  DeviceSnapshot InspectDevice() const;
  // In-place variant: refills `*out` reusing its vectors, maps and strings.
  // Steady state — no new counters, rules, queues or LSM levels since the
  // last call on the same snapshot — performs zero heap allocations, so a
  // sampling loop can Inspect every interval for free.
  void InspectDeviceInto(DeviceSnapshot* out) const;
  // KvStore view of the same data: a one-shard StoreSnapshot wrapping
  // InspectDevice(), so topology-neutral callers aggregate uniformly.
  StoreSnapshot Inspect() const override;
  void InspectInto(StoreSnapshot* out) const override;
  KvSsdStats GetStats() const override;
  sim::Nanoseconds Now() const override { return clock_.Now(); }
  const sim::VirtualClock& clock() const { return clock_; }
  const pcie::PcieLink& link() const { return link_; }
  const stats::MetricsRegistry& metrics() const { return metrics_; }
  // Per-command trace sink (records only while options().trace.enabled or
  // Hooks().tracer->SetEnabled(true)); feed to trace::ToChromeTraceJson /
  // trace::ToBreakdownCsv for export.
  const trace::Tracer& tracer() const { return tracer_; }
  // Telemetry sample stream / event log / watchdog (records only while
  // options().telemetry.enabled); feed to telemetry::ToPrometheusText /
  // ToJsonl / ToTimeSeriesCsv for export. Call Hooks().sampler->Finalize()
  // before exporting so the closing sample reconciles with GetStats().
  const telemetry::Sampler& telemetry() const { return *sampler_; }
  // The closed-loop controller (null unless options().control.enabled and
  // telemetry is on); its actuation log is the control-side export.
  const control::LoopController* control() const {
    return loop_controller_.get();
  }
  const KvSsdOptions& options() const { return options_; }

  // Narrow escape hatch for tests and benches that must *mutate* device
  // internals: time-frame juggling (multi-queue runner), arbitration
  // toggles, fault-plan arming, direct driver calls, trace control.
  // Production code should need none of these.
  struct TestHooks {
    sim::VirtualClock* clock = nullptr;
    nvme::NvmeTransport* transport = nullptr;
    fault::FaultPlan* fault_plan = nullptr;
    driver::KvDriver* driver = nullptr;  // The built-in queue-0 driver.
    trace::Tracer* tracer = nullptr;
    telemetry::Sampler* sampler = nullptr;
    // Mutable registry access: the attribution plane caches stable Counter*
    // via the find-or-create GetCounter path (it only ever reads them).
    stats::MetricsRegistry* metrics = nullptr;
  };
  TestHooks Hooks();

  // Attaches an additional host driver bound to `queue_id` (must be
  // < options().num_queues). Lives as long as the device.
  Result<driver::KvDriver*> CreateQueueDriver(std::uint16_t queue_id,
                                              driver::DriverConfig config = {});

 private:
  explicit KvSsd(const KvSsdOptions& options);
  void AssembleDevice(std::uint64_t vlog_start_lpn);
  // (Re)binds the sampler's observation points; the buffer pointer changes
  // whenever AssembleDevice rebuilds the vLog.
  void BindTelemetry();
  // (Re)binds the controller's actuators (the LSM is rebuilt on PowerCycle)
  // and re-derives every control setting from the policy base.
  void BindControl();

  KvSsdOptions options_;
  stats::MetricsRegistry metrics_;
  sim::VirtualClock clock_;
  trace::Tracer tracer_;  // Shared sink for every layer of the stack.
  pcie::PcieLink link_;
  nvme::HostMemory host_memory_;
  fault::FaultPlan fault_plan_;  // Shared by transport, DMA, and NAND.
  // Owns the event log and watchdog; components hold pointers into it, so
  // it outlives (is declared before) every component below.
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::unique_ptr<nvme::NvmeTransport> transport_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::unique_ptr<nand::NandFlash> nand_;
  std::unique_ptr<ftl::PageFtl> ftl_;
  std::unique_ptr<vlog::VLog> vlog_;
  std::unique_ptr<lsm::LsmTree> lsm_;
  std::unique_ptr<controller::KvController> controller_;
  std::unique_ptr<driver::KvDriver> driver_;
  // Distinct from `controller_` (the device-side command handler): this is
  // the host-visible closed-loop tuner. Null when control is disabled.
  std::unique_ptr<control::LoopController> loop_controller_;
  std::vector<std::unique_ptr<driver::KvDriver>> extra_drivers_;
};

}  // namespace bandslim
