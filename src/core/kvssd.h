// bandslim::KvSsd — the public API. Opening a device assembles the whole
// simulated stack of Figure 5(a):
//
//   host:   KvDriver ── NvmeTransport (SQ/CQ + doorbells over PcieLink)
//   device: KvController ── DmaEngine
//                        ── NandPageBuffer (packing policies + DLT) ── vLog
//                        ── LsmTree (MemTable / SSTables)           ── FTL ── NAND
//
// All timing is virtual (sim::VirtualClock); all PCIe/NAND activity is
// accounted; a run is deterministic for a given option set.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/page_buffer.h"
#include "common/status.h"
#include "control/control_loop.h"
#include "control/policy.h"
#include "controller/controller.h"
#include "dma/dma_engine.h"
#include "driver/driver.h"
#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "lsm/lsm_tree.h"
#include "nand/geometry.h"
#include "nand/nand_flash.h"
#include "nvme/host_memory.h"
#include "nvme/transport.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"
#include "vlog/vlog.h"

namespace bandslim {

struct KvSsdOptions {
  driver::DriverConfig driver;
  buffer::BufferConfig buffer;
  lsm::LsmConfig lsm;
  nand::NandGeometry geometry;
  ftl::FtlConfig ftl;
  sim::CostModel cost;
  dma::DmaConfig dma;
  controller::ControllerConfig controller;
  // Deterministic fault injection (src/fault). The default config is inert:
  // no PRNG draws, no timing perturbation, bit-identical fig* outputs.
  fault::FaultConfig fault;
  // Per-command tracing (src/trace). Disabled by default: the stack then
  // pays one branch per instrumentation site and records nothing.
  trace::TraceConfig trace;
  // Continuous telemetry (src/telemetry): virtual-time periodic sampling,
  // structured event log, and watchdog alert rules. Disabled by default —
  // the stack then pays one branch per poll site, records nothing, and
  // simulated outcomes are bit-identical to a telemetry-free build.
  telemetry::TelemetryConfig telemetry;
  // Closed-loop adaptive control (src/control): a deterministic controller
  // ticked on the telemetry sample grid that actuates driver thresholds,
  // GC pacing, flush admission, and per-SQ credits. Requires telemetry to
  // be enabled (the sample grid is its clock). Disabled by default — the
  // null policy builds no controller and runs bit-identical to a build
  // without the subsystem.
  control::ControlPolicy control;
  // Keep value payloads in the NAND model so GET returns real bytes. Turn
  // off for multi-GiB write-only benches (reads then return zeros).
  bool retain_payloads = true;
  std::uint16_t queue_depth = 64;
  // NVMe submission/completion queue pairs. The built-in driver binds to
  // queue 0; CreateQueueDriver() attaches further drivers to other queues.
  std::uint16_t num_queues = 1;
};

// Counter snapshot covering the quantities the paper's figures report.
struct KvSsdStats {
  sim::Nanoseconds elapsed_ns = 0;
  std::uint64_t commands_submitted = 0;
  // PCIe (Figures 3, 8, 9, 10c, 10d).
  std::uint64_t pcie_h2d_bytes = 0;
  std::uint64_t pcie_d2h_bytes = 0;
  std::uint64_t mmio_bytes = 0;
  std::uint64_t dma_h2d_bytes = 0;
  // NAND (Figures 4, 11, 12c).
  std::uint64_t nand_pages_programmed = 0;
  std::uint64_t nand_pages_read = 0;
  std::uint64_t nand_blocks_erased = 0;
  std::uint64_t vlog_pages_flushed = 0;
  std::uint64_t lsm_pages_programmed = 0;
  std::uint64_t gc_pages_programmed = 0;
  // Device packing (Figure 12d).
  std::uint64_t device_memcpy_bytes = 0;
  std::uint64_t buffer_wasted_bytes = 0;
  std::uint64_t dlt_forced_evictions = 0;
  // KVS-level.
  std::uint64_t values_written = 0;
  std::uint64_t value_bytes_written = 0;
  std::uint64_t lsm_compactions = 0;
  std::uint64_t memtable_flushes = 0;
  // Fault handling (all zero on a perfect device).
  std::uint64_t nvme_timeouts = 0;
  std::uint64_t nvme_retries = 0;
  std::uint64_t nand_program_failures = 0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t bad_block_remaps = 0;
  std::uint64_t recovery_runs = 0;
  std::uint64_t recovery_replayed_refs = 0;
};

// Read-only, value-typed snapshot of the assembled device: the stats block
// plus the live structural state a test or bench may want to assert on.
// Produced by KvSsd::Inspect(); holds no pointers into the device.
struct DeviceSnapshot {
  KvSsdStats stats;

  struct QueueInfo {
    std::uint16_t queue_id = 0;
    std::uint16_t depth = 0;        // Configured SQ/CQ depth.
    std::uint64_t submitted = 0;    // Commands ever submitted on this queue.
    std::uint64_t inflight = 0;     // Currently outstanding (unreaped).
  };
  std::vector<QueueInfo> queues;

  // NAND page buffer / vLog tail window (byte addresses into the vLog).
  std::uint64_t buffer_window_base = 0;   // First still-resident byte.
  std::uint64_t vlog_tail = 0;            // Next append address (buffer WP).
  std::uint64_t buffer_dma_frontier = 0;  // Page-aligned DMA high-water mark.
  std::uint64_t buffer_resident_bytes = 0;  // vlog_tail - buffer_window_base.

  // FTL block accounting.
  std::uint64_t ftl_mapped_pages = 0;
  std::uint64_t ftl_free_blocks = 0;
  std::uint64_t ftl_reserve_blocks = 0;  // Spare blocks left for remapping.
  std::uint64_t ftl_bad_blocks = 0;

  // LSM / compaction state.
  std::uint64_t lsm_memtable_entries = 0;
  std::uint64_t lsm_memtable_bytes = 0;
  std::uint64_t lsm_pending_trim_tables = 0;  // Dropped, awaiting checkpoint.
  std::uint64_t lsm_compaction_debt_bytes = 0;
  struct LevelInfo {
    std::uint64_t tables = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<LevelInfo> lsm_levels;  // Index 0 = L0 runs.

  // Full registry dump (every named counter, sorted by name).
  std::map<std::string, std::uint64_t> counters;

  // Watchdog alert state, one entry per configured rule (empty when
  // telemetry is disabled or no rules are set).
  struct AlertInfo {
    std::string rule;
    std::uint64_t fired = 0;     // Edge-triggered fire count.
    std::uint64_t cleared = 0;   // Deassert (recovery) edge count.
    bool active = false;         // Condition currently holding.
    std::uint64_t last_value = 0;
    sim::Nanoseconds last_fire_ns = 0;
  };
  std::vector<AlertInfo> alerts;
  // Telemetry stream sizes (0 when disabled).
  std::uint64_t telemetry_samples = 0;
  std::uint64_t telemetry_events = 0;
};

class KvSsd {
 public:
  static Result<std::unique_ptr<KvSsd>> Open(const KvSsdOptions& options = {});
  ~KvSsd();

  KvSsd(const KvSsd&) = delete;
  KvSsd& operator=(const KvSsd&) = delete;

  // --- KV API --------------------------------------------------------------
  Status Put(std::string_view key, ByteSpan value);
  Status Put(std::string_view key, std::string_view value);
  // Host-side batching comparator (Dotori/KV-CSD style, Section 1). One
  // command carries the whole batch; see KvDriver for the trade-off notes.
  Status PutBatch(std::span<const driver::KvDriver::KvPair> batch);
  Status PutBatch(std::initializer_list<driver::KvDriver::KvPair> batch);
  // Bulk GET: one result per key, in key order (absent keys -> !found).
  Result<std::vector<driver::KvDriver::BatchGetResult>> GetBatch(
      std::span<const std::string> keys);
  // Bulk DELETE: removes every present key (absent keys are skipped, not an
  // error) and returns how many were actually removed.
  Result<std::uint32_t> DeleteBatch(std::span<const std::string> keys);
  Result<Bytes> Get(std::string_view key);
  // Allocation-free GET: fills `*value` in place, reusing its capacity
  // (see driver::KvDriver::GetInto).
  Status GetInto(std::string_view key, Bytes* value);
  Status Delete(std::string_view key);
  Result<std::uint32_t> Exists(std::string_view key);
  // Drains the NAND page buffer and checkpoints the LSM-tree manifest.
  Status Flush();
  Result<driver::KvDriver::Iterator> Seek(std::string_view from);

  // --- Maintenance / fault injection ---------------------------------------
  // Relocates live values out of the oldest vLog segment (log cleaning).
  Result<std::uint64_t> CollectVlogGarbage();
  // Simulates power loss and firmware reboot: device DRAM state (MemTable,
  // window bookkeeping) is discarded and rebuilt from the last checkpoint
  // (Flush()). Data PUT after the last Flush is lost by contract.
  Status PowerCycle();
  // Arms the fault plan's power-loss latch: the first device operation at or
  // after `t` (virtual time) fails, and everything after it keeps failing —
  // in-flight DMA and flush state is effectively dropped mid-stream.
  void CrashAt(sim::Nanoseconds t) { fault_plan_.ArmCrash(t); }
  // Re-energizes a crashed device and remounts from the last checkpoint,
  // then verifies the recovered mapping: every live value reference must lie
  // entirely below the checkpointed vLog tail, so no GET can ever observe a
  // torn or partially flushed value. Returns kCorruption if any does.
  Status Recover();

  // --- Introspection --------------------------------------------------------
  // One-call observation point: everything a test, bench or operator
  // dashboard needs, as plain values. Replaces the old per-component
  // reference accessors (see the deprecated block below).
  DeviceSnapshot Inspect() const;
  KvSsdStats GetStats() const;
  const sim::VirtualClock& clock() const { return clock_; }
  const pcie::PcieLink& link() const { return link_; }
  const stats::MetricsRegistry& metrics() const { return metrics_; }
  // Per-command trace sink (records only while options().trace.enabled or
  // Hooks().tracer->SetEnabled(true)); feed to trace::ToChromeTraceJson /
  // trace::ToBreakdownCsv for export.
  const trace::Tracer& tracer() const { return tracer_; }
  // Telemetry sample stream / event log / watchdog (records only while
  // options().telemetry.enabled); feed to telemetry::ToPrometheusText /
  // ToJsonl / ToTimeSeriesCsv for export. Call Hooks().sampler->Finalize()
  // before exporting so the closing sample reconciles with GetStats().
  const telemetry::Sampler& telemetry() const { return *sampler_; }
  // The closed-loop controller (null unless options().control.enabled and
  // telemetry is on); its actuation log is the control-side export.
  const control::LoopController* control() const {
    return loop_controller_.get();
  }
  const KvSsdOptions& options() const { return options_; }

  // Narrow escape hatch for tests and benches that must *mutate* device
  // internals: time-frame juggling (multi-queue runner), arbitration
  // toggles, fault-plan arming, direct driver calls, trace control.
  // Production code should need none of these.
  struct TestHooks {
    sim::VirtualClock* clock = nullptr;
    nvme::NvmeTransport* transport = nullptr;
    fault::FaultPlan* fault_plan = nullptr;
    driver::KvDriver* driver = nullptr;  // The built-in queue-0 driver.
    trace::Tracer* tracer = nullptr;
    telemetry::Sampler* sampler = nullptr;
  };
  TestHooks Hooks();

  // Attaches an additional host driver bound to `queue_id` (must be
  // < options().num_queues). Lives as long as the device.
  Result<driver::KvDriver*> CreateQueueDriver(std::uint16_t queue_id,
                                              driver::DriverConfig config = {});

 private:
  explicit KvSsd(const KvSsdOptions& options);
  void AssembleDevice(std::uint64_t vlog_start_lpn);
  // (Re)binds the sampler's observation points; the buffer pointer changes
  // whenever AssembleDevice rebuilds the vLog.
  void BindTelemetry();
  // (Re)binds the controller's actuators (the LSM is rebuilt on PowerCycle)
  // and re-derives every control setting from the policy base.
  void BindControl();

  KvSsdOptions options_;
  stats::MetricsRegistry metrics_;
  sim::VirtualClock clock_;
  trace::Tracer tracer_;  // Shared sink for every layer of the stack.
  pcie::PcieLink link_;
  nvme::HostMemory host_memory_;
  fault::FaultPlan fault_plan_;  // Shared by transport, DMA, and NAND.
  // Owns the event log and watchdog; components hold pointers into it, so
  // it outlives (is declared before) every component below.
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::unique_ptr<nvme::NvmeTransport> transport_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::unique_ptr<nand::NandFlash> nand_;
  std::unique_ptr<ftl::PageFtl> ftl_;
  std::unique_ptr<vlog::VLog> vlog_;
  std::unique_ptr<lsm::LsmTree> lsm_;
  std::unique_ptr<controller::KvController> controller_;
  std::unique_ptr<driver::KvDriver> driver_;
  // Distinct from `controller_` (the device-side command handler): this is
  // the host-visible closed-loop tuner. Null when control is disabled.
  std::unique_ptr<control::LoopController> loop_controller_;
  std::vector<std::unique_ptr<driver::KvDriver>> extra_drivers_;
};

}  // namespace bandslim
