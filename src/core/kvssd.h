// bandslim::KvSsd — the public API. Opening a device assembles the whole
// simulated stack of Figure 5(a):
//
//   host:   KvDriver ── NvmeTransport (SQ/CQ + doorbells over PcieLink)
//   device: KvController ── DmaEngine
//                        ── NandPageBuffer (packing policies + DLT) ── vLog
//                        ── LsmTree (MemTable / SSTables)           ── FTL ── NAND
//
// All timing is virtual (sim::VirtualClock); all PCIe/NAND activity is
// accounted; a run is deterministic for a given option set.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "buffer/page_buffer.h"
#include "common/status.h"
#include "controller/controller.h"
#include "dma/dma_engine.h"
#include "driver/driver.h"
#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "lsm/lsm_tree.h"
#include "nand/geometry.h"
#include "nand/nand_flash.h"
#include "nvme/host_memory.h"
#include "nvme/transport.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "vlog/vlog.h"

namespace bandslim {

struct KvSsdOptions {
  driver::DriverConfig driver;
  buffer::BufferConfig buffer;
  lsm::LsmConfig lsm;
  nand::NandGeometry geometry;
  ftl::FtlConfig ftl;
  sim::CostModel cost;
  dma::DmaConfig dma;
  controller::ControllerConfig controller;
  // Deterministic fault injection (src/fault). The default config is inert:
  // no PRNG draws, no timing perturbation, bit-identical fig* outputs.
  fault::FaultConfig fault;
  // Keep value payloads in the NAND model so GET returns real bytes. Turn
  // off for multi-GiB write-only benches (reads then return zeros).
  bool retain_payloads = true;
  std::uint16_t queue_depth = 64;
  // NVMe submission/completion queue pairs. The built-in driver binds to
  // queue 0; CreateQueueDriver() attaches further drivers to other queues.
  std::uint16_t num_queues = 1;
};

// Counter snapshot covering the quantities the paper's figures report.
struct KvSsdStats {
  sim::Nanoseconds elapsed_ns = 0;
  std::uint64_t commands_submitted = 0;
  // PCIe (Figures 3, 8, 9, 10c, 10d).
  std::uint64_t pcie_h2d_bytes = 0;
  std::uint64_t pcie_d2h_bytes = 0;
  std::uint64_t mmio_bytes = 0;
  std::uint64_t dma_h2d_bytes = 0;
  // NAND (Figures 4, 11, 12c).
  std::uint64_t nand_pages_programmed = 0;
  std::uint64_t nand_pages_read = 0;
  std::uint64_t nand_blocks_erased = 0;
  std::uint64_t vlog_pages_flushed = 0;
  std::uint64_t lsm_pages_programmed = 0;
  std::uint64_t gc_pages_programmed = 0;
  // Device packing (Figure 12d).
  std::uint64_t device_memcpy_bytes = 0;
  std::uint64_t buffer_wasted_bytes = 0;
  std::uint64_t dlt_forced_evictions = 0;
  // KVS-level.
  std::uint64_t values_written = 0;
  std::uint64_t value_bytes_written = 0;
  std::uint64_t lsm_compactions = 0;
  std::uint64_t memtable_flushes = 0;
  // Fault handling (all zero on a perfect device).
  std::uint64_t nvme_timeouts = 0;
  std::uint64_t nvme_retries = 0;
  std::uint64_t nand_program_failures = 0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t bad_block_remaps = 0;
  std::uint64_t recovery_runs = 0;
  std::uint64_t recovery_replayed_refs = 0;
};

class KvSsd {
 public:
  static Result<std::unique_ptr<KvSsd>> Open(const KvSsdOptions& options = {});
  ~KvSsd();

  KvSsd(const KvSsd&) = delete;
  KvSsd& operator=(const KvSsd&) = delete;

  // --- KV API --------------------------------------------------------------
  Status Put(std::string_view key, ByteSpan value);
  Status Put(std::string_view key, std::string_view value);
  // Host-side batching comparator (Dotori/KV-CSD style, Section 1).
  Status PutBatch(const std::vector<driver::KvDriver::KvPair>& batch);
  Result<Bytes> Get(std::string_view key);
  Status Delete(std::string_view key);
  Result<std::uint32_t> Exists(std::string_view key);
  // Drains the NAND page buffer and checkpoints the LSM-tree manifest.
  Status Flush();
  Result<driver::KvDriver::Iterator> Seek(std::string_view from);

  // --- Maintenance / fault injection ---------------------------------------
  // Relocates live values out of the oldest vLog segment (log cleaning).
  Result<std::uint64_t> CollectVlogGarbage();
  // Simulates power loss and firmware reboot: device DRAM state (MemTable,
  // window bookkeeping) is discarded and rebuilt from the last checkpoint
  // (Flush()). Data PUT after the last Flush is lost by contract.
  Status PowerCycle();
  // Arms the fault plan's power-loss latch: the first device operation at or
  // after `t` (virtual time) fails, and everything after it keeps failing —
  // in-flight DMA and flush state is effectively dropped mid-stream.
  void CrashAt(sim::Nanoseconds t) { fault_plan_.ArmCrash(t); }
  // Re-energizes a crashed device and remounts from the last checkpoint,
  // then verifies the recovered mapping: every live value reference must lie
  // entirely below the checkpointed vLog tail, so no GET can ever observe a
  // torn or partially flushed value. Returns kCorruption if any does.
  Status Recover();

  // --- Introspection --------------------------------------------------------
  KvSsdStats GetStats() const;
  const sim::VirtualClock& clock() const { return clock_; }
  const pcie::PcieLink& link() const { return link_; }
  const stats::MetricsRegistry& metrics() const { return metrics_; }
  const nand::NandFlash& nand() const { return *nand_; }
  const ftl::PageFtl& ftl() const { return *ftl_; }
  const buffer::NandPageBuffer& page_buffer() const { return vlog_->buffer(); }
  const lsm::LsmTree& lsm() const { return *lsm_; }
  const KvSsdOptions& options() const { return options_; }
  driver::KvDriver& raw_driver() { return *driver_; }
  // Multi-queue machinery (sharded workload runner): the runner enters each
  // stream's time frame before calling into its driver, and toggles the
  // transport's parallel arbitration for the run.
  sim::VirtualClock& mutable_clock() { return clock_; }
  nvme::NvmeTransport& transport() { return *transport_; }
  const fault::FaultPlan& fault_plan() const { return fault_plan_; }
  fault::FaultPlan& mutable_fault_plan() { return fault_plan_; }

  // Attaches an additional host driver bound to `queue_id` (must be
  // < options().num_queues). Lives as long as the device.
  Result<driver::KvDriver*> CreateQueueDriver(std::uint16_t queue_id,
                                              driver::DriverConfig config = {});

 private:
  explicit KvSsd(const KvSsdOptions& options);
  void AssembleDevice(std::uint64_t vlog_start_lpn);

  KvSsdOptions options_;
  stats::MetricsRegistry metrics_;
  sim::VirtualClock clock_;
  pcie::PcieLink link_;
  nvme::HostMemory host_memory_;
  fault::FaultPlan fault_plan_;  // Shared by transport, DMA, and NAND.
  std::uint64_t recovery_runs_ = 0;
  std::uint64_t recovery_replayed_refs_ = 0;
  std::unique_ptr<nvme::NvmeTransport> transport_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::unique_ptr<nand::NandFlash> nand_;
  std::unique_ptr<ftl::PageFtl> ftl_;
  std::unique_ptr<vlog::VLog> vlog_;
  std::unique_ptr<lsm::LsmTree> lsm_;
  std::unique_ptr<controller::KvController> controller_;
  std::unique_ptr<driver::KvDriver> driver_;
  std::vector<std::unique_ptr<driver::KvDriver>> extra_drivers_;
};

}  // namespace bandslim
