// Value-typed observation structs shared by every KvStore topology: the
// counter block the paper's figures report (KvSsdStats) and the one-call
// structural snapshot of a single assembled device (DeviceSnapshot). They
// live apart from kvssd.h so the abstract KvStore interface (kv_store.h)
// can speak in these types without depending on the concrete device.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace bandslim {

// Counter snapshot covering the quantities the paper's figures report.
struct KvSsdStats {
  sim::Nanoseconds elapsed_ns = 0;
  std::uint64_t commands_submitted = 0;
  // PCIe (Figures 3, 8, 9, 10c, 10d).
  std::uint64_t pcie_h2d_bytes = 0;
  std::uint64_t pcie_d2h_bytes = 0;
  std::uint64_t mmio_bytes = 0;
  std::uint64_t dma_h2d_bytes = 0;
  // NAND (Figures 4, 11, 12c).
  std::uint64_t nand_pages_programmed = 0;
  std::uint64_t nand_pages_read = 0;
  std::uint64_t nand_blocks_erased = 0;
  std::uint64_t vlog_pages_flushed = 0;
  std::uint64_t lsm_pages_programmed = 0;
  std::uint64_t gc_pages_programmed = 0;
  // Device packing (Figure 12d).
  std::uint64_t device_memcpy_bytes = 0;
  std::uint64_t buffer_wasted_bytes = 0;
  std::uint64_t dlt_forced_evictions = 0;
  // KVS-level.
  std::uint64_t values_written = 0;
  std::uint64_t value_bytes_written = 0;
  std::uint64_t lsm_compactions = 0;
  std::uint64_t memtable_flushes = 0;
  // Fault handling (all zero on a perfect device).
  std::uint64_t nvme_timeouts = 0;
  std::uint64_t nvme_retries = 0;
  std::uint64_t nand_program_failures = 0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t bad_block_remaps = 0;
  std::uint64_t recovery_runs = 0;
  std::uint64_t recovery_replayed_refs = 0;
};

// Adds every counter of `from` into `into`, EXCEPT elapsed_ns: virtual
// times of independent devices do not sum — the caller owns the clock
// semantics (a cluster reports its own router clock). Used to aggregate a
// shard fleet into one KvSsdStats.
inline void AccumulateStats(KvSsdStats* into, const KvSsdStats& from) {
  into->commands_submitted += from.commands_submitted;
  into->pcie_h2d_bytes += from.pcie_h2d_bytes;
  into->pcie_d2h_bytes += from.pcie_d2h_bytes;
  into->mmio_bytes += from.mmio_bytes;
  into->dma_h2d_bytes += from.dma_h2d_bytes;
  into->nand_pages_programmed += from.nand_pages_programmed;
  into->nand_pages_read += from.nand_pages_read;
  into->nand_blocks_erased += from.nand_blocks_erased;
  into->vlog_pages_flushed += from.vlog_pages_flushed;
  into->lsm_pages_programmed += from.lsm_pages_programmed;
  into->gc_pages_programmed += from.gc_pages_programmed;
  into->device_memcpy_bytes += from.device_memcpy_bytes;
  into->buffer_wasted_bytes += from.buffer_wasted_bytes;
  into->dlt_forced_evictions += from.dlt_forced_evictions;
  into->values_written += from.values_written;
  into->value_bytes_written += from.value_bytes_written;
  into->lsm_compactions += from.lsm_compactions;
  into->memtable_flushes += from.memtable_flushes;
  into->nvme_timeouts += from.nvme_timeouts;
  into->nvme_retries += from.nvme_retries;
  into->nand_program_failures += from.nand_program_failures;
  into->ecc_corrections += from.ecc_corrections;
  into->bad_block_remaps += from.bad_block_remaps;
  into->recovery_runs += from.recovery_runs;
  into->recovery_replayed_refs += from.recovery_replayed_refs;
}

// Read-only, value-typed snapshot of one assembled device: the stats block
// plus the live structural state a test or bench may want to assert on.
// Produced by KvSsd::InspectDevice(); holds no pointers into the device.
struct DeviceSnapshot {
  KvSsdStats stats;

  struct QueueInfo {
    std::uint16_t queue_id = 0;
    std::uint16_t depth = 0;        // Configured SQ/CQ depth.
    std::uint64_t submitted = 0;    // Commands ever submitted on this queue.
    std::uint64_t inflight = 0;     // Currently outstanding (unreaped).
  };
  std::vector<QueueInfo> queues;

  // NAND page buffer / vLog tail window (byte addresses into the vLog).
  std::uint64_t buffer_window_base = 0;   // First still-resident byte.
  std::uint64_t vlog_tail = 0;            // Next append address (buffer WP).
  std::uint64_t buffer_dma_frontier = 0;  // Page-aligned DMA high-water mark.
  std::uint64_t buffer_resident_bytes = 0;  // vlog_tail - buffer_window_base.

  // FTL block accounting.
  std::uint64_t ftl_mapped_pages = 0;
  std::uint64_t ftl_free_blocks = 0;
  std::uint64_t ftl_reserve_blocks = 0;  // Spare blocks left for remapping.
  std::uint64_t ftl_bad_blocks = 0;

  // LSM / compaction state.
  std::uint64_t lsm_memtable_entries = 0;
  std::uint64_t lsm_memtable_bytes = 0;
  std::uint64_t lsm_pending_trim_tables = 0;  // Dropped, awaiting checkpoint.
  std::uint64_t lsm_compaction_debt_bytes = 0;
  struct LevelInfo {
    std::uint64_t tables = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<LevelInfo> lsm_levels;  // Index 0 = L0 runs.

  // Full registry dump (every named counter, sorted by name).
  std::map<std::string, std::uint64_t> counters;

  // Watchdog alert state, one entry per configured rule (empty when
  // telemetry is disabled or no rules are set).
  struct AlertInfo {
    std::string rule;
    std::uint64_t fired = 0;     // Edge-triggered fire count.
    std::uint64_t cleared = 0;   // Deassert (recovery) edge count.
    bool active = false;         // Condition currently holding.
    std::uint64_t last_value = 0;
    sim::Nanoseconds last_fire_ns = 0;
  };
  std::vector<AlertInfo> alerts;
  // Telemetry stream sizes (0 when disabled).
  std::uint64_t telemetry_samples = 0;
  std::uint64_t telemetry_events = 0;
};

}  // namespace bandslim
