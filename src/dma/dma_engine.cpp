#include "dma/dma_engine.h"

#include <algorithm>
#include <cstring>

namespace bandslim::dma {

DmaEngine::DmaEngine(sim::VirtualClock* clock, const sim::CostModel* cost,
                     pcie::PcieLink* link, nvme::HostMemory* host,
                     stats::MetricsRegistry* metrics, DmaConfig config,
                     fault::FaultPlan* fault_plan, trace::Tracer* tracer)
    : clock_(clock),
      cost_(cost),
      link_(link),
      host_(host),
      config_(config),
      fault_plan_(fault_plan),
      tracer_(tracer),
      dma_bytes_(metrics->RegisterCounter("dma.bytes")),
      dma_transfers_(metrics->RegisterCounter("dma.transfers")) {}

Status DmaEngine::CheckAlignment(std::uint64_t device_addr,
                                 std::uint64_t bytes) const {
  if (!config_.require_page_alignment) return Status::Ok();
  if (!IsAlignedPow2(device_addr, kMemPageSize)) {
    return Status::InvalidArgument("DMA device address not page-aligned");
  }
  if (!IsAlignedPow2(bytes, kMemPageSize)) {
    return Status::InvalidArgument("DMA size not page-aligned");
  }
  return Status::Ok();
}

Status DmaEngine::HostToDevice(const nvme::PrpList& prp,
                               std::uint64_t device_addr,
                               const PageSink& sink) {
  if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
    return Status::IoError("DMA: power lost");
  }
  const std::uint64_t bytes = prp.DmaBytes();
  BANDSLIM_RETURN_IF_ERROR(CheckAlignment(device_addr, bytes));
  std::size_t off = 0;
  for (nvme::PageId id : prp.pages()) {
    ByteSpan src = host_->PageData(id);
    if (src.empty()) return Status::InvalidArgument("PRP names unallocated page");
    MutByteSpan dest = sink(off);
    if (dest.size() < kMemPageSize) {
      return Status::InvalidArgument("DMA destination page too small");
    }
    std::memcpy(dest.data(), src.data(), kMemPageSize);
    off += kMemPageSize;
  }
  link_->Record(pcie::TrafficClass::kDmaData, pcie::Direction::kHostToDevice,
                bytes);
  {
    trace::SpanScope span(tracer_, trace::Category::kDma, bytes);
    clock_->Advance(cost_->DmaCost(bytes));
  }
  dma_bytes_->Add(bytes);
  dma_transfers_->Increment();
  ++transfers_;
  return Status::Ok();
}

Status DmaEngine::DeviceToHost(ByteSpan src, std::uint64_t device_addr,
                               const nvme::PrpList& prp) {
  if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
    return Status::IoError("DMA: power lost");
  }
  const std::uint64_t bytes = CeilDiv(src.size(), kMemPageSize) * kMemPageSize;
  BANDSLIM_RETURN_IF_ERROR(CheckAlignment(device_addr, bytes));
  if (prp.DmaBytes() < bytes) {
    return Status::InvalidArgument("PRP receive buffer smaller than transfer");
  }
  std::size_t off = 0;
  for (nvme::PageId id : prp.pages()) {
    if (off >= src.size()) break;
    MutByteSpan dst = host_->PageData(id);
    if (dst.empty()) return Status::InvalidArgument("PRP names unallocated page");
    const std::size_t n = std::min(kMemPageSize, src.size() - off);
    std::memcpy(dst.data(), src.data() + off, n);
    off += n;
  }
  link_->Record(pcie::TrafficClass::kDmaData, pcie::Direction::kDeviceToHost,
                bytes);
  {
    trace::SpanScope span(tracer_, trace::Category::kDma, bytes);
    clock_->Advance(cost_->DmaCost(bytes));
  }
  dma_bytes_->Add(bytes);
  dma_transfers_->Increment();
  ++transfers_;
  return Status::Ok();
}

}  // namespace bandslim::dma
