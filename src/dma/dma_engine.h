// In-device DMA engine model. Mirrors the restriction of the Cosmos+
// engine (and others, Section 2.5): transfer sizes and *device-side*
// destination addresses must be aligned to the 4 KiB memory page. This
// restriction is what forces the Selective Packing design — large values
// cannot be DMA'd to an arbitrary byte offset in the NAND page buffer.
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "nvme/host_memory.h"
#include "nvme/prp.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "trace/trace.h"

namespace bandslim::dma {

struct DmaConfig {
  // When true (the testbed default), device addresses and sizes must be
  // 4 KiB aligned. Disable to model a byte-granular engine (ablation).
  bool require_page_alignment = true;
};

class DmaEngine {
 public:
  DmaEngine(sim::VirtualClock* clock, const sim::CostModel* cost,
            pcie::PcieLink* link, nvme::HostMemory* host,
            stats::MetricsRegistry* metrics, DmaConfig config = {},
            fault::FaultPlan* fault_plan = nullptr,
            trace::Tracer* tracer = nullptr);

  // Destination resolver: returns the 4 KiB device-memory span for the page
  // at `byte_offset` within the transfer. Device buffers expose 16 KiB
  // entries; 4 KiB pages never straddle them, so per-page spans suffice.
  using PageSink = std::function<MutByteSpan(std::uint64_t byte_offset)>;

  // Page-unit DMA from host memory into device memory. `device_addr` is the
  // logical device address of the destination (alignment is validated
  // against it); whole pages always move — prp.DmaBytes() bytes — which is
  // the amplification of Problem #1.
  Status HostToDevice(const nvme::PrpList& prp, std::uint64_t device_addr,
                      const PageSink& sink);

  // Page-unit DMA from device memory into the host pages described by `prp`.
  // Moves ceil(src.size() / 4K) whole pages of traffic.
  Status DeviceToHost(ByteSpan src, std::uint64_t device_addr,
                      const nvme::PrpList& prp);

  std::uint64_t transfers() const { return transfers_; }

 private:
  Status CheckAlignment(std::uint64_t device_addr, std::uint64_t bytes) const;

  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  pcie::PcieLink* link_;
  nvme::HostMemory* host_;
  DmaConfig config_;
  fault::FaultPlan* fault_plan_;  // Optional; null = never loses power.
  trace::Tracer* tracer_;         // Optional; null = untraced.
  std::uint64_t transfers_ = 0;
  stats::Counter* dma_bytes_;
  stats::Counter* dma_transfers_;
};

}  // namespace bandslim::dma
