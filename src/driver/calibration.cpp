#include "driver/calibration.h"

#include <array>
#include <string>

namespace bandslim::driver {
namespace {

// Average virtual nanoseconds per PUT of `value_size` bytes on a fresh
// scratch device using `method`.
Result<double> MeasurePutNs(const KvSsdOptions& base, TransferMethod method,
                            std::uint32_t value_size, std::uint64_t ops) {
  KvSsdOptions options = base;
  options.driver.method = method;
  options.controller.nand_io_enabled = false;  // Isolate the transfer path.
  auto device = KvSsd::Open(options);
  if (!device.ok()) return device.status();
  KvSsd& ssd = *device.value();

  Bytes value(value_size, 0xA5);
  const auto start = ssd.clock().Now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    std::string key = "k" + std::to_string(i % 997);
    key.resize(8, '0');
    BANDSLIM_RETURN_IF_ERROR(ssd.Put(key, ByteSpan(value)));
  }
  return static_cast<double>(ssd.clock().Now() - start) /
         static_cast<double>(ops);
}

}  // namespace

Result<Thresholds> CalibrateThresholds(const KvSsdOptions& base_options,
                                       const CalibrationConfig& config) {
  Thresholds out;

  // --- threshold1: first size where piggybacking loses to PRP -------------
  // Power-of-two sweep from 4 B, matching the paper's exploratory runs
  // ("various value sizes ranging from 4 bytes to 8 KB", Section 3.2).
  constexpr std::array<std::uint32_t, 12> kSizes = {
      4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  out.threshold1 = kSizes.back();
  for (std::uint32_t size : kSizes) {
    auto piggy = MeasurePutNs(base_options, TransferMethod::kPiggyback, size,
                              config.ops_per_point);
    if (!piggy.ok()) return piggy.status();
    auto prp = MeasurePutNs(base_options, TransferMethod::kPrp, size,
                            config.ops_per_point);
    if (!prp.ok()) return prp.status();
    if (piggy.value() > prp.value()) {
      out.threshold1 = size;
      break;
    }
  }

  // --- threshold2: largest remainder where hybrid still beats PRP ----------
  constexpr std::array<std::uint32_t, 10> kRemainders = {
      4, 8, 16, 32, 56, 64, 128, 256, 512, 1024};
  out.threshold2 = 0;
  for (std::uint32_t rem : kRemainders) {
    const std::uint32_t size = static_cast<std::uint32_t>(kMemPageSize) + rem;
    auto hybrid = MeasurePutNs(base_options, TransferMethod::kHybrid, size,
                               config.ops_per_point);
    if (!hybrid.ok()) return hybrid.status();
    auto prp = MeasurePutNs(base_options, TransferMethod::kPrp, size,
                            config.ops_per_point);
    if (!prp.ok()) return prp.status();
    if (hybrid.value() <= prp.value()) {
      out.threshold2 = rem;
    } else {
      break;
    }
  }
  if (out.threshold2 == 0) out.threshold2 = 4;
  return out;
}

}  // namespace bandslim::driver
