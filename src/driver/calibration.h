// The exploratory threshold-calibration benchmark BandSlim ships
// (Section 4.1): sweeps value sizes over scratch devices with NAND I/O
// disabled, measures per-method transfer response times on the virtual
// clock, and derives the two adaptive-transfer thresholds:
//   threshold1 — the size at which piggybacking stops beating PRP transfer;
//   threshold2 — the largest sub-page remainder for which a hybrid transfer
//                still beats a pure PRP transfer.
#pragma once

#include <cstdint>

#include "core/kvssd.h"

namespace bandslim::driver {

struct Thresholds {
  std::uint32_t threshold1 = 0;
  std::uint32_t threshold2 = 0;
};

struct CalibrationConfig {
  std::uint64_t ops_per_point = 64;
};

// Runs the sweep with the cost model / geometry from `base_options`
// (transfer method and NAND settings are overridden internally).
Result<Thresholds> CalibrateThresholds(const KvSsdOptions& base_options,
                                       const CalibrationConfig& config = {});

}  // namespace bandslim::driver
