#include "driver/driver.h"

#include <algorithm>
#include <cassert>

#include "nvme/command.h"

namespace bandslim::driver {

using nvme::CqEntry;
using nvme::CqStatus;
using nvme::NvmeCommand;
using nvme::Opcode;

namespace {

// A key already validated to 1..16 bytes, viewed as bytes without copying
// through a temporary std::string.
ByteSpan KeySpan(std::string_view key) {
  return {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()};
}

}  // namespace

const char* MethodName(TransferMethod method) {
  switch (method) {
    case TransferMethod::kPrp: return "Baseline";
    case TransferMethod::kPiggyback: return "Piggyback";
    case TransferMethod::kHybrid: return "Hybrid";
    case TransferMethod::kAdaptive: return "Adaptive";
  }
  return "?";
}

KvDriver::KvDriver(nvme::NvmeTransport* transport, nvme::HostMemory* host,
                   DriverConfig config, trace::Tracer* tracer)
    : transport_(transport), host_(host), config_(config), tracer_(tracer) {
  // Pre-size the scratch buffers for a typical multi-fragment value so the
  // first ops do not grow them; larger values grow once and stick.
  cmd_scratch_.reserve(16);
  completion_scratch_.reserve(16);
  page_scratch_.reserve(8);
}

Status KvDriver::StatusFromCq(const CqEntry& cqe) {
  switch (cqe.status) {
    case CqStatus::kSuccess: return Status::Ok();
    case CqStatus::kNotFound: return Status::NotFound();
    case CqStatus::kInvalidField: return Status::InvalidArgument("device: invalid field");
    case CqStatus::kBufferTooSmall: return Status::InvalidArgument("device: buffer too small");
    case CqStatus::kIteratorInvalid: return Status::InvalidArgument("device: bad iterator");
    case CqStatus::kIteratorExhausted: return Status::NotFound("iterator exhausted");
    case CqStatus::kOutOfSpace: return Status::OutOfSpace("device full");
    case CqStatus::kInternalError: return Status::IoError("device internal error");
    case CqStatus::kMediaError: return Status::MediaError("device media error");
    case CqStatus::kTimedOut: return Status::TimedOut("command timed out");
    case CqStatus::kBusy: return Status::Busy("queue admission shed");
  }
  return Status::IoError("unknown CQ status");
}

KvDriver::Decision KvDriver::Decide(std::uint64_t size) const {
  switch (config_.method) {
    case TransferMethod::kPrp:
      return Decision::kPrp;
    case TransferMethod::kPiggyback:
      return Decision::kPiggyback;
    case TransferMethod::kHybrid:
      // A hybrid transfer needs at least one full page plus a remainder.
      return (size > kMemPageSize && size % kMemPageSize != 0)
                 ? Decision::kHybrid
                 : Decision::kPrp;
    case TransferMethod::kAdaptive: {
      if (static_cast<double>(size) <=
          config_.alpha * static_cast<double>(config_.threshold1)) {
        return Decision::kPiggyback;
      }
      const std::uint64_t remainder = size % kMemPageSize;
      if (size > kMemPageSize && remainder != 0 &&
          static_cast<double>(remainder) <=
              config_.beta * static_cast<double>(config_.threshold2)) {
        return Decision::kHybrid;
      }
      return Decision::kPrp;
    }
  }
  return Decision::kPrp;
}

NvmeCommand KvDriver::MakeWriteCommand(std::string_view key,
                                       std::uint32_t value_size) const {
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvWrite);
  cmd.set_nsid(1);
  cmd.set_key(KeySpan(key));
  cmd.set_value_size(value_size);
  return cmd;
}

void KvDriver::AppendTrailingCommands(ByteSpan rest,
                                      std::vector<NvmeCommand>* out) {
  std::size_t off = 0;
  while (off < rest.size()) {
    const std::size_t n =
        std::min(kTransferCmdPiggybackCapacity, rest.size() - off);
    NvmeCommand cmd;
    cmd.set_opcode(Opcode::kKvTransfer);
    cmd.set_nsid(1);
    nvme::codec::SetTransferPayload(cmd, rest.subspan(off, n));
    off += n;
    cmd.set_final_fragment(off == rest.size());
    out->push_back(cmd);
  }
}

Status KvDriver::SendTrailing(ByteSpan rest) {
  cmd_scratch_.clear();
  AppendTrailingCommands(rest, &cmd_scratch_);
  for (const NvmeCommand& cmd : cmd_scratch_) {
    BANDSLIM_RETURN_IF_ERROR(StatusFromCq(transport_->Submit(config_.queue_id, cmd)));
  }
  return Status::Ok();
}

Status KvDriver::SendPipelined(NvmeCommand head, ByteSpan rest) {
  cmd_scratch_.clear();
  cmd_scratch_.push_back(std::move(head));
  AppendTrailingCommands(rest, &cmd_scratch_);
  transport_->SubmitPipelined(config_.queue_id,
                              std::span<const NvmeCommand>(cmd_scratch_),
                              &completion_scratch_);
  for (const CqEntry& cqe : completion_scratch_) {
    BANDSLIM_RETURN_IF_ERROR(StatusFromCq(cqe));
  }
  return Status::Ok();
}

Status KvDriver::PutPiggyback(std::string_view key, ByteSpan value) {
  NvmeCommand cmd = MakeWriteCommand(key, static_cast<std::uint32_t>(value.size()));
  const std::size_t head =
      std::min(kWriteCmdPiggybackCapacity, value.size());
  nvme::codec::SetWritePiggyback(cmd, value.subspan(0, head));
  cmd.set_final_fragment(head == value.size());
  if (config_.pipelined_submission) {
    return SendPipelined(std::move(cmd), value.subspan(head));
  }
  BANDSLIM_RETURN_IF_ERROR(StatusFromCq(transport_->Submit(config_.queue_id, cmd)));
  if (head < value.size()) {
    BANDSLIM_RETURN_IF_ERROR(SendTrailing(value.subspan(head)));
  }
  return Status::Ok();
}

Status KvDriver::PutPrp(std::string_view key, ByteSpan value) {
  const std::size_t pages = CeilDiv(value.size(), kMemPageSize);
  host_->AllocatePagesInto(pages, &page_scratch_);
  BANDSLIM_RETURN_IF_ERROR(host_->WriteToPages(page_scratch_, value));
  NvmeCommand cmd = MakeWriteCommand(key, static_cast<std::uint32_t>(value.size()));
  cmd.set_final_fragment(true);
  nvme::codec::SetPrpPointers(cmd, nvme::PrpList(page_scratch_));
  Status st = StatusFromCq(transport_->Submit(config_.queue_id, cmd));
  host_->FreePages(page_scratch_);
  return st;
}

Status KvDriver::PutHybrid(std::string_view key, ByteSpan value) {
  const std::size_t prp_bytes = RoundDownPow2(value.size(), kMemPageSize);
  assert(prp_bytes > 0 && prp_bytes < value.size());
  host_->AllocatePagesInto(prp_bytes / kMemPageSize, &page_scratch_);
  BANDSLIM_RETURN_IF_ERROR(
      host_->WriteToPages(page_scratch_, value.subspan(0, prp_bytes)));
  NvmeCommand cmd = MakeWriteCommand(key, static_cast<std::uint32_t>(value.size()));
  cmd.set_final_fragment(false);
  nvme::codec::SetPrpPointers(cmd, nvme::PrpList(page_scratch_));
  Status st;
  if (config_.pipelined_submission) {
    st = SendPipelined(std::move(cmd), value.subspan(prp_bytes));
  } else {
    st = StatusFromCq(transport_->Submit(config_.queue_id, cmd));
    if (st.ok()) st = SendTrailing(value.subspan(prp_bytes));
  }
  host_->FreePages(page_scratch_);
  return st;
}

Status KvDriver::Put(std::string_view key, ByteSpan value) {
  trace::OpScope op(tracer_, trace::OpType::kPut, config_.queue_id,
                    value.size());
  const Status st = PutImpl(key, value);
  op.set_ok(st.ok());
  return st;
}

Status KvDriver::PutImpl(std::string_view key, ByteSpan value) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty values are not supported");
  }
  ++puts_issued_;
  switch (Decide(value.size())) {
    case Decision::kPiggyback: return PutPiggyback(key, value);
    case Decision::kPrp: return PutPrp(key, value);
    case Decision::kHybrid: return PutHybrid(key, value);
  }
  return Status::InvalidArgument("unreachable");
}

Status KvDriver::PutBatch(std::span<const KvPair> batch) {
  std::uint64_t payload_bytes = 0;
  for (const KvPair& kv : batch) payload_bytes += kv.value.size();
  trace::OpScope op(tracer_, trace::OpType::kPutBatch, config_.queue_id,
                    payload_bytes);
  const Status st = PutBatchImpl(batch);
  op.set_ok(st.ok());
  return st;
}

Status KvDriver::PutBatchImpl(std::span<const KvPair> batch) {
  if (batch.empty()) return Status::Ok();
  // Wire format, repeated per record: [u8 klen][key][u32 vsize][value].
  Bytes payload;
  for (const KvPair& kv : batch) {
    if (kv.key.empty() || kv.key.size() > kMaxKeySize) {
      return Status::InvalidArgument("key must be 1..16 bytes");
    }
    if (kv.value.empty()) {
      return Status::InvalidArgument("empty values are not supported");
    }
    payload.push_back(static_cast<std::uint8_t>(kv.key.size()));
    payload.insert(payload.end(), kv.key.begin(), kv.key.end());
    const auto vsize = static_cast<std::uint32_t>(kv.value.size());
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<std::uint8_t>(vsize >> (8 * i)));
    }
    payload.insert(payload.end(), kv.value.begin(), kv.value.end());
  }
  auto ids = host_->AllocatePages(CeilDiv(payload.size(), kMemPageSize));
  BANDSLIM_RETURN_IF_ERROR(host_->WriteToPages(ids, ByteSpan(payload)));
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvBulkWrite);
  cmd.set_nsid(1);
  cmd.set_value_size(static_cast<std::uint32_t>(payload.size()));
  cmd.set_final_fragment(true);
  nvme::codec::SetPrpPointers(cmd, nvme::PrpList(ids));
  Status st = StatusFromCq(transport_->Submit(config_.queue_id, cmd));
  host_->FreePages(ids);
  puts_issued_ += batch.size();
  return st;
}

Result<std::uint32_t> KvDriver::SubmitRead(NvmeCommand cmd, Bytes* payload,
                                           std::size_t initial_pages) {
  std::size_t pages = initial_pages;
  for (int attempt = 0; attempt < 4; ++attempt) {
    host_->AllocatePagesInto(pages, &page_scratch_);
    nvme::codec::SetPrpPointers(cmd, nvme::PrpList(page_scratch_));
    const CqEntry cqe = transport_->Submit(config_.queue_id, cmd);
    if (cqe.status == CqStatus::kBufferTooSmall) {
      host_->FreePages(page_scratch_);
      pages = CeilDiv(cqe.result, kMemPageSize);
      continue;
    }
    Status st = StatusFromCq(cqe);
    if (!st.ok()) {
      host_->FreePages(page_scratch_);
      return st;
    }
    payload->resize(cqe.result);
    st = host_->ReadFromPages(page_scratch_, MutByteSpan(*payload));
    host_->FreePages(page_scratch_);
    BANDSLIM_RETURN_IF_ERROR(st);
    return cqe.result;
  }
  return Status::IoError("receive buffer negotiation failed");
}

Result<Bytes> KvDriver::EncodeKeyBatch(std::span<const std::string> keys) {
  // Wire format, repeated per key: [u8 klen][key].
  Bytes payload;
  for (const std::string& key : keys) {
    if (key.empty() || key.size() > kMaxKeySize) {
      return Status::InvalidArgument("key must be 1..16 bytes");
    }
    payload.push_back(static_cast<std::uint8_t>(key.size()));
    payload.insert(payload.end(), key.begin(), key.end());
  }
  return payload;
}

Result<std::vector<KvDriver::BatchGetResult>> KvDriver::GetBatch(
    std::span<const std::string> keys) {
  trace::OpScope op(tracer_, trace::OpType::kGetBatch, config_.queue_id);
  auto result = GetBatchImpl(keys);
  op.set_ok(result.ok());
  return result;
}

Result<std::vector<KvDriver::BatchGetResult>> KvDriver::GetBatchImpl(
    std::span<const std::string> keys) {
  std::vector<BatchGetResult> results;
  if (keys.empty()) return results;
  auto request = EncodeKeyBatch(keys);
  if (!request.ok()) return request.status();
  const Bytes& req = request.value();

  // The PRP buffer is used in both directions: the device fetches the key
  // list from it, then overwrites it with the response. Renegotiate its
  // size on kBufferTooSmall like any PRP read.
  std::size_t pages = CeilDiv(req.size(), kMemPageSize);
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto ids = host_->AllocatePages(pages);
    Status st = host_->WriteToPages(ids, ByteSpan(req));
    if (!st.ok()) {
      host_->FreePages(ids);
      return st;
    }
    NvmeCommand cmd;
    cmd.set_opcode(Opcode::kKvBulkRead);
    cmd.set_nsid(1);
    cmd.set_value_size(static_cast<std::uint32_t>(req.size()));
    nvme::codec::SetPrpPointers(cmd, nvme::PrpList(ids));
    const CqEntry cqe = transport_->Submit(config_.queue_id, cmd);
    if (cqe.status == CqStatus::kBufferTooSmall) {
      host_->FreePages(ids);
      pages = std::max<std::size_t>(pages, CeilDiv(cqe.result, kMemPageSize));
      continue;
    }
    st = StatusFromCq(cqe);
    if (!st.ok()) {
      host_->FreePages(ids);
      return st;
    }
    Bytes payload(cqe.result);
    st = host_->ReadFromPages(ids, MutByteSpan(payload));
    host_->FreePages(ids);
    BANDSLIM_RETURN_IF_ERROR(st);
    // Decode: [u8 found][u32 vsize][value]* — one record per requested key.
    std::size_t off = 0;
    results.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (off + 5 > payload.size()) {
        return Status::Corruption("truncated bulk-read response");
      }
      BatchGetResult r;
      r.found = payload[off++] != 0;
      std::uint32_t vsize = 0;
      for (int b = 0; b < 4; ++b) {
        vsize |= static_cast<std::uint32_t>(payload[off++]) << (8 * b);
      }
      if (off + vsize > payload.size()) {
        return Status::Corruption("bulk-read record size mismatch");
      }
      r.value.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                     payload.begin() + static_cast<std::ptrdiff_t>(off + vsize));
      off += vsize;
      results.push_back(std::move(r));
    }
    return results;
  }
  return Status::IoError("receive buffer negotiation failed");
}

Result<std::uint32_t> KvDriver::DeleteBatch(std::span<const std::string> keys) {
  trace::OpScope op(tracer_, trace::OpType::kDeleteBatch, config_.queue_id);
  auto result = DeleteBatchImpl(keys);
  op.set_ok(result.ok());
  return result;
}

Result<std::uint32_t> KvDriver::DeleteBatchImpl(
    std::span<const std::string> keys) {
  if (keys.empty()) return 0u;
  auto request = EncodeKeyBatch(keys);
  if (!request.ok()) return request.status();
  const Bytes& req = request.value();
  auto ids = host_->AllocatePages(CeilDiv(req.size(), kMemPageSize));
  Status st = host_->WriteToPages(ids, ByteSpan(req));
  if (!st.ok()) {
    host_->FreePages(ids);
    return st;
  }
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvBulkDelete);
  cmd.set_nsid(1);
  cmd.set_value_size(static_cast<std::uint32_t>(req.size()));
  nvme::codec::SetPrpPointers(cmd, nvme::PrpList(ids));
  const CqEntry cqe = transport_->Submit(config_.queue_id, cmd);
  host_->FreePages(ids);
  BANDSLIM_RETURN_IF_ERROR(StatusFromCq(cqe));
  return cqe.result;
}

Result<Bytes> KvDriver::Get(std::string_view key) {
  trace::OpScope op(tracer_, trace::OpType::kGet, config_.queue_id);
  Bytes payload;
  const Status st = GetIntoImpl(key, &payload);
  op.set_ok(st.ok());
  if (!st.ok()) return st;
  return payload;
}

Status KvDriver::GetInto(std::string_view key, Bytes* value) {
  trace::OpScope op(tracer_, trace::OpType::kGet, config_.queue_id);
  const Status st = GetIntoImpl(key, value);
  op.set_ok(st.ok());
  return st;
}

Status KvDriver::GetIntoImpl(std::string_view key, Bytes* value) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvRead);
  cmd.set_nsid(1);
  cmd.set_key(KeySpan(key));
  auto size = SubmitRead(std::move(cmd), value);
  if (!size.ok()) return size.status();
  return Status::Ok();
}

Status KvDriver::Delete(std::string_view key) {
  trace::OpScope op(tracer_, trace::OpType::kDelete, config_.queue_id);
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvDelete);
  cmd.set_nsid(1);
  cmd.set_key(KeySpan(key));
  const Status st = StatusFromCq(transport_->Submit(config_.queue_id, cmd));
  op.set_ok(st.ok());
  return st;
}

Result<std::uint32_t> KvDriver::Exists(std::string_view key) {
  trace::OpScope op(tracer_, trace::OpType::kExists, config_.queue_id);
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvExists);
  cmd.set_nsid(1);
  cmd.set_key(KeySpan(key));
  const CqEntry cqe = transport_->Submit(config_.queue_id, cmd);
  const Status st = StatusFromCq(cqe);
  op.set_ok(st.ok());
  BANDSLIM_RETURN_IF_ERROR(st);
  return cqe.result;
}

Status KvDriver::Flush() {
  trace::OpScope op(tracer_, trace::OpType::kFlush, config_.queue_id);
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvFlush);
  cmd.set_nsid(1);
  const Status st = StatusFromCq(transport_->Submit(config_.queue_id, cmd));
  op.set_ok(st.ok());
  return st;
}

Result<KvDriver::Iterator> KvDriver::Seek(std::string_view from) {
  trace::OpScope op(tracer_, trace::OpType::kSeek, config_.queue_id);
  auto result = SeekImpl(from);
  op.set_ok(result.ok());
  return result;
}

Result<KvDriver::Iterator> KvDriver::SeekImpl(std::string_view from) {
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvIterSeek);
  cmd.set_nsid(1);
  cmd.set_key(KeySpan(from));
  const CqEntry cqe = transport_->Submit(config_.queue_id, cmd);
  BANDSLIM_RETURN_IF_ERROR(StatusFromCq(cqe));
  Iterator iter(this, cqe.result);
  BANDSLIM_RETURN_IF_ERROR(iter.Next());
  return iter;
}

Status KvDriver::Iterator::FetchBatch() {
  if (exhausted_) return Status::Ok();
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvIterNextBatch);
  cmd.set_nsid(1);
  cmd.set_iter_handle(handle_);
  Bytes payload;
  auto bytes = driver_->SubmitRead(std::move(cmd), &payload,
                                   /*initial_pages=*/8);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) {
      exhausted_ = true;  // Device iterator drained.
      return Status::Ok();
    }
    return bytes.status();
  }
  // Decode records: [u8 key_len][key][u32 value_size][value]*.
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t klen = payload[off++];
    if (klen == 0 || off + klen + 4 > payload.size()) {
      return Status::Corruption("truncated iterator record");
    }
    std::string key(reinterpret_cast<const char*>(payload.data() + off), klen);
    off += klen;
    std::uint32_t vsize = 0;
    for (int i = 0; i < 4; ++i) {
      vsize |= static_cast<std::uint32_t>(payload[off++]) << (8 * i);
    }
    if (off + vsize > payload.size()) {
      return Status::Corruption("iterator record size mismatch");
    }
    pending_.emplace_back(
        std::move(key),
        Bytes(payload.begin() + static_cast<std::ptrdiff_t>(off),
              payload.begin() + static_cast<std::ptrdiff_t>(off + vsize)));
    off += vsize;
  }
  return Status::Ok();
}

Status KvDriver::Iterator::Next() {
  if (driver_ == nullptr) return Status::InvalidArgument("closed iterator");
  trace::OpScope op(driver_->tracer_, trace::OpType::kNext,
                    driver_->config_.queue_id);
  if (pending_.empty()) {
    BANDSLIM_RETURN_IF_ERROR(FetchBatch());
  }
  if (pending_.empty()) {
    valid_ = false;
    return Status::Ok();  // Exhausted.
  }
  key_ = std::move(pending_.front().first);
  value_ = std::move(pending_.front().second);
  pending_.pop_front();
  valid_ = true;
  return Status::Ok();
}

void KvDriver::Iterator::Close() {
  if (driver_ == nullptr) return;
  trace::OpScope op(driver_->tracer_, trace::OpType::kOther,
                    driver_->config_.queue_id);
  NvmeCommand cmd;
  cmd.set_opcode(Opcode::kKvIterClose);
  cmd.set_nsid(1);
  cmd.set_iter_handle(handle_);
  driver_->transport_->Submit(driver_->config_.queue_id, cmd);
  driver_ = nullptr;
  valid_ = false;
}

KvDriver::Iterator::~Iterator() { Close(); }

KvDriver::Iterator::Iterator(Iterator&& other) noexcept
    : driver_(other.driver_),
      handle_(other.handle_),
      valid_(other.valid_),
      exhausted_(other.exhausted_),
      key_(std::move(other.key_)),
      value_(std::move(other.value_)),
      pending_(std::move(other.pending_)) {
  other.driver_ = nullptr;
  other.valid_ = false;
}

KvDriver::Iterator& KvDriver::Iterator::operator=(Iterator&& other) noexcept {
  if (this != &other) {
    Close();
    driver_ = other.driver_;
    handle_ = other.handle_;
    valid_ = other.valid_;
    exhausted_ = other.exhausted_;
    key_ = std::move(other.key_);
    value_ = std::move(other.value_);
    pending_ = std::move(other.pending_);
    other.driver_ = nullptr;
    other.valid_ = false;
  }
  return *this;
}

}  // namespace bandslim::driver
