// BandSlim Key-Value Driver (Sections 3.1-3.2): the host-side half. It
// turns PUT/GET/DELETE/SEEK/NEXT into NVMe key-value commands and picks a
// value-transfer method per request:
//   * kPrp       — the baseline: the value rides in host memory pages named
//                  by a PRP list; whole 4 KiB pages DMA to the device.
//   * kPiggyback — the value is inlined into the write command (35 B) plus
//                  trailing transfer commands (56 B each).
//   * kHybrid    — floor(size/4K) pages go via page-unit DMA, the sub-page
//                  remainder rides piggybacked transfer commands.
//   * kAdaptive  — threshold-reactive choice among the three (Section 3.2):
//                  piggyback for size <= alpha*threshold1; hybrid when the
//                  sub-page remainder <= beta*threshold2; PRP otherwise.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "nvme/host_memory.h"
#include "nvme/transport.h"
#include "trace/trace.h"

namespace bandslim::driver {

enum class TransferMethod { kPrp, kPiggyback, kHybrid, kAdaptive };

const char* MethodName(TransferMethod method);

struct DriverConfig {
  TransferMethod method = TransferMethod::kAdaptive;
  std::uint32_t threshold1 = 128;  // Piggyback/DMA crossover (bytes).
  std::uint32_t threshold2 = 56;   // Hybrid-remainder crossover (bytes).
  double alpha = 1.0;              // >1 favors piggyback (traffic priority).
  double beta = 1.0;               // >1 favors hybrid (traffic priority).
  // Extension: submit all commands of one value as a single pipelined batch
  // (one doorbell) instead of the paper's serialized one-at-a-time
  // passthrough. Moves the piggyback/DMA crossover up (see
  // bench/abl_pipelining).
  bool pipelined_submission = false;
  // Submission/completion queue pair this driver binds to. Fragment streams
  // are FIFO per queue (Section 3.3.1); independent drivers on different
  // queues may interleave at command granularity.
  std::uint16_t queue_id = 0;
};

class KvDriver {
 public:
  KvDriver(nvme::NvmeTransport* transport, nvme::HostMemory* host,
           DriverConfig config = {}, trace::Tracer* tracer = nullptr);

  // Which transfer path a value of `size` bytes takes (exposed for tests
  // and the calibration benchmark).
  enum class Decision { kPiggyback, kPrp, kHybrid };
  Decision Decide(std::uint64_t size) const;

  Status Put(std::string_view key, ByteSpan value);

  // Host-side batching (bulk PUT), the approach of Dotori / KV-CSD that the
  // paper contrasts in Section 1: packs all records into one PRP payload
  // and a single command. Cheaper in round trips, but the device must
  // unpack and index every record, and the whole batch sits in volatile
  // host memory until submitted (the data-loss window the paper criticizes).
  struct KvPair {
    std::string key;
    Bytes value;
  };
  Status PutBatch(std::span<const KvPair> batch);
  Status PutBatch(std::initializer_list<KvPair> batch) {
    return PutBatch(std::span<const KvPair>(batch.begin(), batch.size()));
  }

  // Bulk counterparts of GET/DELETE so host-side batching covers every op
  // type symmetrically. One command carries all keys in its PRP payload;
  // GetBatch returns one entry per key, in key order.
  struct BatchGetResult {
    bool found = false;
    Bytes value;
  };
  Result<std::vector<BatchGetResult>> GetBatch(
      std::span<const std::string> keys);
  // Deletes every present key (absent keys are skipped, not an error);
  // returns how many were actually removed.
  Result<std::uint32_t> DeleteBatch(std::span<const std::string> keys);

  Result<Bytes> Get(std::string_view key);
  // Allocation-free variant: fills `*value` in place, reusing its capacity.
  // Steady-state GET loops call this with a long-lived buffer so the host
  // side performs zero heap allocations per op (DESIGN.md §2.6).
  Status GetInto(std::string_view key, Bytes* value);
  Status Delete(std::string_view key);
  // Returns the value size if present.
  Result<std::uint32_t> Exists(std::string_view key);
  // Drains device buffers and checkpoints the device LSM-tree.
  Status Flush();

  // Host-side range-scan handle (SEEK/NEXT, after [22]). Records are
  // fetched in device-filled batches (kKvIterNextBatch) and dispensed
  // locally, so a scan costs ~one NVMe command per 32 KiB of records.
  class Iterator {
   public:
    ~Iterator();
    Iterator(Iterator&&) noexcept;
    Iterator& operator=(Iterator&&) noexcept;
    Iterator(const Iterator&) = delete;
    Iterator& operator=(const Iterator&) = delete;

    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const Bytes& value() const { return value_; }
    // Advances to the following record; invalidates at end.
    Status Next();
    void Close();

   private:
    friend class KvDriver;
    Iterator(KvDriver* driver, std::uint32_t handle)
        : driver_(driver), handle_(handle) {}
    // Pulls the next batch of records from the device.
    Status FetchBatch();

    KvDriver* driver_;
    std::uint32_t handle_;
    bool valid_ = false;
    bool exhausted_ = false;
    std::string key_;
    Bytes value_;
    std::deque<std::pair<std::string, Bytes>> pending_;
  };
  // Positions at the first key >= `from` and fetches it.
  Result<Iterator> Seek(std::string_view from);

  std::uint64_t puts_issued() const { return puts_issued_; }

  // Live adaptive-threshold override (closed-loop control). The controller
  // raises the crossovers when the PCIe TAF budget is breached — steering
  // mid-size values from piggyback fragment streams onto page-unit DMA —
  // and restores the configured base on recovery. Decide() always reads the
  // current values, so the next PUT observes the change.
  void SetAdaptiveThresholds(std::uint32_t t1, std::uint32_t t2) {
    config_.threshold1 = t1;
    config_.threshold2 = t2;
  }
  std::uint32_t threshold1() const { return config_.threshold1; }
  std::uint32_t threshold2() const { return config_.threshold2; }

 private:
  Status PutImpl(std::string_view key, ByteSpan value);
  Status PutBatchImpl(std::span<const KvPair> batch);
  Result<std::vector<BatchGetResult>> GetBatchImpl(
      std::span<const std::string> keys);
  Result<std::uint32_t> DeleteBatchImpl(std::span<const std::string> keys);
  Status GetIntoImpl(std::string_view key, Bytes* value);
  Result<KvDriver::Iterator> SeekImpl(std::string_view from);
  // Encodes the bulk-key request ([u8 klen][key]*) shared by GetBatch and
  // DeleteBatch; fails on malformed keys.
  static Result<Bytes> EncodeKeyBatch(std::span<const std::string> keys);
  Status PutPiggyback(std::string_view key, ByteSpan value);
  Status PutPrp(std::string_view key, ByteSpan value);
  Status PutHybrid(std::string_view key, ByteSpan value);
  nvme::NvmeCommand MakeWriteCommand(std::string_view key,
                                     std::uint32_t value_size) const;
  static void AppendTrailingCommands(ByteSpan rest,
                                     std::vector<nvme::NvmeCommand>* out);
  Status SendTrailing(ByteSpan rest);
  // Submits head + trailing as one pipelined batch.
  Status SendPipelined(nvme::NvmeCommand head, ByteSpan rest);
  static Status StatusFromCq(const nvme::CqEntry& cqe);
  // Issues a PRP-read style command, growing the receive buffer on
  // kBufferTooSmall. On success `payload` holds `result` bytes.
  Result<std::uint32_t> SubmitRead(nvme::NvmeCommand cmd, Bytes* payload,
                                   std::size_t initial_pages = 1);

  nvme::NvmeTransport* transport_;
  nvme::HostMemory* host_;
  DriverConfig config_;
  trace::Tracer* tracer_;  // Optional; null = untraced.
  std::uint64_t puts_issued_ = 0;
  // Per-driver scratch reused across ops so the steady-state PUT/GET path
  // never grows a vector after warm-up. Driver calls are serialized per
  // instance (one synchronous stream per queue pair), so a single set of
  // scratch buffers suffices.
  std::vector<nvme::NvmeCommand> cmd_scratch_;
  std::vector<nvme::CqEntry> completion_scratch_;
  std::vector<nvme::PageId> page_scratch_;
};

}  // namespace bandslim::driver
