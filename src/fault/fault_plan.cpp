#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>

namespace bandslim::fault {
namespace {

// Bound on the recorded trace; campaigns with high rates keep firing past it
// (counters still advance) without growing memory unboundedly.
constexpr std::size_t kMaxTraceEvents = 1 << 18;

}  // namespace

const char* SiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNandProgram: return "nand_program";
    case FaultSite::kNandRead: return "nand_read";
    case FaultSite::kNandReadEcc: return "nand_read_ecc";
    case FaultSite::kNandErase: return "nand_erase";
    case FaultSite::kCommandDrop: return "command_drop";
    case FaultSite::kCrash: return "crash";
  }
  return "unknown";
}

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {
  // Derive one independent stream per site: SplitMix64 over (seed, site)
  // keys each Xoshiro256 so adding operations at one site never shifts the
  // random sequence seen by another.
  for (int s = 0; s < kNumFaultSites; ++s) {
    rng_[s] = Xoshiro256(SplitMix64(config_.seed) ^
                         SplitMix64(0x5172e5ULL + static_cast<std::uint64_t>(s)));
  }
  for (const FaultTrigger& t : config_.triggers) {
    site_has_trigger_[static_cast<int>(t.site)] = true;
  }
  crash_at_ = config_.crash_at_ns;
  enabled_ = config_.program_fail_rate > 0.0 || config_.erase_fail_rate > 0.0 ||
             config_.read_uncorrectable_rate > 0.0 ||
             config_.read_correctable_rate > 0.0 ||
             config_.wear_fail_raise > 0.0 ||
             config_.command_drop_rate > 0.0 || config_.crash_at_ns != 0 ||
             !config_.triggers.empty();
}

void FaultPlan::Record(FaultSite site, std::uint64_t op_index,
                       std::uint64_t detail) {
  ++fired_[static_cast<int>(site)];
  if (trace_.size() < kMaxTraceEvents) {
    trace_.push_back({site, op_index, detail});
  } else {
    ++trace_dropped_;
  }
}

bool FaultPlan::Fire(FaultSite site, double rate, std::uint64_t detail) {
  const int s = static_cast<int>(site);
  const std::uint64_t op = op_counts_[s]++;
  bool fire = false;
  if (site_has_trigger_[s]) {
    for (const FaultTrigger& t : config_.triggers) {
      if (t.site == site && t.op_index == op) {
        fire = true;
        break;
      }
    }
  }
  // Draw only when the rate can fire: a trigger-only plan consumes no
  // randomness, and rate==0 sites stay PRNG-silent even in enabled plans.
  if (!fire && rate > 0.0) {
    fire = rng_[s].NextDouble() < rate;
  }
  if (fire) Record(site, op, detail);
  return fire;
}

bool FaultPlan::NextProgramFails(std::uint32_t wear, std::uint64_t detail) {
  if (!enabled_) return false;
  const double rate =
      config_.program_fail_rate + config_.wear_fail_raise * wear;
  return Fire(FaultSite::kNandProgram, std::min(rate, 1.0), detail);
}

FaultPlan::ReadOutcome FaultPlan::NextReadOutcome(std::uint32_t wear,
                                                  std::uint64_t detail) {
  if (!enabled_) return ReadOutcome::kOk;
  const double raise = config_.wear_fail_raise * wear;
  if (Fire(FaultSite::kNandRead,
           std::min(config_.read_uncorrectable_rate + raise, 1.0), detail)) {
    return ReadOutcome::kUncorrectable;
  }
  if (Fire(FaultSite::kNandReadEcc,
           std::min(config_.read_correctable_rate + raise, 1.0), detail)) {
    return ReadOutcome::kCorrectable;
  }
  return ReadOutcome::kOk;
}

bool FaultPlan::NextEraseFails(std::uint32_t wear, std::uint64_t detail) {
  if (!enabled_) return false;
  const double rate = config_.erase_fail_rate + config_.wear_fail_raise * wear;
  return Fire(FaultSite::kNandErase, std::min(rate, 1.0), detail);
}

bool FaultPlan::NextCommandDropped(std::uint64_t detail) {
  if (!enabled_) return false;
  return Fire(FaultSite::kCommandDrop, config_.command_drop_rate, detail);
}

bool FaultPlan::PowerLost(sim::Nanoseconds now) {
  if (crashed_) return true;
  if (crash_at_ != 0 && now >= crash_at_) {
    crashed_ = true;
    const std::uint64_t op =
        op_counts_[static_cast<int>(FaultSite::kCrash)]++;
    Record(FaultSite::kCrash, op, static_cast<std::uint64_t>(now));
    if (event_log_ != nullptr) {
      event_log_->Emit(telemetry::EventType::kCrash, op);
    }
    return true;
  }
  return false;
}

std::string FaultPlan::TraceString() const {
  std::string out;
  char line[96];
  for (const FaultEvent& e : trace_) {
    std::snprintf(line, sizeof line, "%s@%llu/%llu\n", SiteName(e.site),
                  static_cast<unsigned long long>(e.op_index),
                  static_cast<unsigned long long>(e.detail));
    out += line;
  }
  if (trace_dropped_ != 0) {
    std::snprintf(line, sizeof line, "...dropped=%llu\n",
                  static_cast<unsigned long long>(trace_dropped_));
    out += line;
  }
  return out;
}

}  // namespace bandslim::fault
