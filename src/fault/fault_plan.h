// Deterministic, seed-driven fault injection. A FaultPlan is the single
// source of every injected failure in a run: NAND program/read/erase
// failures (flat rate plus a wear-based raise), ECC-correctable vs.
// uncorrectable read errors, NVMe command drops (host-visible timeouts),
// and a virtual-time crash latch (power loss).
//
// Determinism contract:
//  * Every fault site draws from its own SplitMix64-derived PRNG stream and
//    keeps its own operation counter, so the decision sequence at one site
//    never shifts when another site's operation count changes.
//  * Explicit triggers fire at exact per-site operation indices regardless
//    of the rates, so single-shot scenarios ("fail the 3rd program") are
//    expressible without probability tuning.
//  * Every fired fault is appended to a bounded trace; two runs of the same
//    plan against the same workload produce bit-identical traces.
//  * A null (default) plan is inert: no PRNG draw, no clock perturbation,
//    no behavioral change anywhere in the stack — fig* outputs stay
//    byte-identical to a build without the fault layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/clock.h"
#include "telemetry/event_log.h"

namespace bandslim::fault {

enum class FaultSite : int {
  kNandProgram = 0,
  kNandRead = 1,         // Uncorrectable (beyond ECC) read error.
  kNandReadEcc = 2,      // ECC-correctable read error (retry latency only).
  kNandErase = 3,
  kCommandDrop = 4,      // NVMe command lost in transit; host watchdog fires.
  kCrash = 5,            // Virtual-time power loss.
};
inline constexpr int kNumFaultSites = 6;

const char* SiteName(FaultSite site);

// Fires the fault at the site's `op_index`-th operation (0-based), in
// addition to any probabilistic failures.
struct FaultTrigger {
  FaultSite site = FaultSite::kNandProgram;
  std::uint64_t op_index = 0;
};

struct FaultConfig {
  std::uint64_t seed = 0xFA017;

  // --- NAND media (per-operation probabilities) ---------------------------
  double program_fail_rate = 0.0;
  double erase_fail_rate = 0.0;
  // Read outcome split: uncorrectable surfaces Status::MediaError; a
  // correctable error succeeds after an ECC retry latency penalty.
  double read_uncorrectable_rate = 0.0;
  double read_correctable_rate = 0.0;
  // Wear-based raise: added to the program/erase failure probability per
  // prior erase of the block (grown-defect model; SimpleSSD/Amber treat
  // error behavior as wear-coupled the same way).
  double wear_fail_raise = 0.0;
  // Latency of one ECC read-retry round (charged on correctable errors).
  sim::Nanoseconds ecc_retry_ns = 60 * sim::kMicrosecond;

  // --- NVMe transport -----------------------------------------------------
  // Probability that a submitted command is lost before the device fetches
  // it (no completion ever arrives; the host watchdog expires).
  double command_drop_rate = 0.0;
  // Host watchdog: virtual time waited before declaring a command timed out.
  sim::Nanoseconds command_timeout_ns = 500 * sim::kMicrosecond;
  // Bounded resubmission with exponential backoff (backoff << attempt).
  std::uint32_t max_command_retries = 3;
  sim::Nanoseconds retry_backoff_ns = 100 * sim::kMicrosecond;

  // --- Crash --------------------------------------------------------------
  // First NAND/DMA/NVMe operation at or after this virtual time trips the
  // power-loss latch; everything after it fails until recovery. 0 = unarmed.
  sim::Nanoseconds crash_at_ns = 0;

  std::vector<FaultTrigger> triggers;
};

// One fired fault, recorded for reproducibility audits.
struct FaultEvent {
  FaultSite site;
  std::uint64_t op_index;  // Per-site operation counter at fire time.
  std::uint64_t detail;    // Site-specific (die, wear, attempt, ...).
};

class FaultPlan {
 public:
  FaultPlan() : FaultPlan(FaultConfig{}) {}
  explicit FaultPlan(FaultConfig config);

  // False for a default-constructed (null) plan: no site can ever fire and
  // callers skip the fault path entirely.
  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  // --- NAND decisions (called once per physical operation) ----------------
  bool NextProgramFails(std::uint32_t wear, std::uint64_t detail);
  enum class ReadOutcome { kOk, kCorrectable, kUncorrectable };
  ReadOutcome NextReadOutcome(std::uint32_t wear, std::uint64_t detail);
  bool NextEraseFails(std::uint32_t wear, std::uint64_t detail);

  // --- NVMe decision (called once per submission attempt) -----------------
  bool NextCommandDropped(std::uint64_t detail);

  // --- Crash latch ---------------------------------------------------------
  void ArmCrash(sim::Nanoseconds t) { crash_at_ = t; }
  // Latches (and records) power loss the first time `now` reaches the armed
  // crash point; returns whether power is lost.
  bool PowerLost(sim::Nanoseconds now);
  bool power_lost() const { return crashed_; }
  // Mount-time recovery re-energizes the device; the plan stays armed-off.
  void ClearCrash() {
    crashed_ = false;
    crash_at_ = 0;
  }

  // Telemetry tap (optional): the power-loss latch emits a kCrash event the
  // moment it trips, giving the interleaved timeline an exact crash point.
  void SetEventLog(telemetry::EventLog* log) { event_log_ = log; }

  // --- Reproducibility audit ------------------------------------------------
  std::uint64_t fired_count(FaultSite site) const {
    return fired_[static_cast<int>(site)];
  }
  const std::vector<FaultEvent>& trace() const { return trace_; }
  // "site@op_index/detail" lines; equal across runs of the same plan.
  std::string TraceString() const;

 private:
  // One probabilistic + trigger decision at `site`; consumes that site's
  // operation index and PRNG stream only when it can possibly fire.
  bool Fire(FaultSite site, double rate, std::uint64_t detail);
  void Record(FaultSite site, std::uint64_t op_index, std::uint64_t detail);

  FaultConfig config_;
  telemetry::EventLog* event_log_ = nullptr;  // Optional; null = untapped.
  bool enabled_ = false;
  bool crashed_ = false;
  sim::Nanoseconds crash_at_ = 0;
  Xoshiro256 rng_[kNumFaultSites];        // Independent per-site streams.
  std::uint64_t op_counts_[kNumFaultSites] = {};
  std::uint64_t fired_[kNumFaultSites] = {};
  bool site_has_trigger_[kNumFaultSites] = {};
  std::vector<FaultEvent> trace_;
  std::uint64_t trace_dropped_ = 0;  // Events beyond the bounded trace.
};

}  // namespace bandslim::fault
