#include "ftl/ftl.h"

#include <algorithm>
#include <cassert>

#include "common/random.h"

namespace bandslim::ftl {

PageFtl::PageFtl(nand::NandFlash* nand, stats::MetricsRegistry* metrics,
                 FtlConfig config, trace::Tracer* tracer,
                 telemetry::EventLog* event_log)
    : nand_(nand),
      tracer_(tracer),
      event_log_(event_log),
      config_(config),
      rmap_(nand->geometry().total_pages(), kUnmapped),
      valid_pages_(nand->geometry().total_blocks(), 0),
      block_full_(nand->geometry().total_blocks(), false),
      bad_(nand->geometry().total_blocks(), false),
      gc_relocations_(metrics->RegisterCounter("ftl.gc_relocated_pages")),
      remaps_counter_(metrics->RegisterCounter("ftl.bad_block_remaps")) {
  const std::uint64_t blocks = nand->geometry().total_blocks();
  if (config_.bad_block_rate > 0.0) {
    Xoshiro256 rng(config_.bad_block_seed);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      if (rng.NextDouble() < config_.bad_block_rate) {
        bad_[b] = true;
        ++bad_block_count_;
      }
    }
  }
  if (config_.stripe_across_dies) {
    const std::uint64_t dies = nand->geometry().dies();
    free_by_die_.resize(dies);
    // Same lowest-block-first discipline as the global list, per die.
    for (std::uint64_t b = blocks; b > 0; --b) {
      if (!bad_[b - 1]) {
        free_by_die_[nand->DieOf(b - 1)].push_back(b - 1);
        ++free_count_;
      }
    }
    active_by_die_.assign(kNumStreams, std::vector<ActiveBlock>(dies));
  } else {
    free_blocks_.reserve(blocks);
    // Pop from the back; filling lowest-numbered blocks first keeps runs
    // reproducible and easy to inspect.
    for (std::uint64_t b = blocks; b > 0; --b) {
      if (!bad_[b - 1]) free_blocks_.push_back(b - 1);
    }
  }
  // Withhold the remap reserve: highest-numbered good blocks, which sit at
  // the *front* of the lowest-block-first free lists and would be allocated
  // last anyway.
  for (std::uint32_t r = 0; r < config_.reserved_blocks; ++r) {
    std::vector<std::uint64_t>* list = &free_blocks_;
    if (config_.stripe_across_dies) {
      // Round-robin across dies so the reserve drains evenly.
      std::vector<std::uint64_t>* best = nullptr;
      for (auto& per_die : free_by_die_) {
        if (per_die.empty()) continue;
        if (best == nullptr || per_die.size() > best->size()) best = &per_die;
      }
      if (best == nullptr) break;
      list = best;
      --free_count_;
    } else {
      if (list->empty()) break;
    }
    reserve_blocks_.push_back(list->front());
    list->erase(list->begin());
  }
  stream_programs_[0] = metrics->RegisterCounter("ftl.programs.vlog");
  stream_programs_[1] = metrics->RegisterCounter("ftl.programs.lsm");
  stream_programs_[2] = metrics->RegisterCounter("ftl.programs.gc");
}

void PageFtl::Invalidate(std::uint64_t ppn) {
  if (rmap_[ppn] == kUnmapped) return;
  rmap_[ppn] = kUnmapped;
  const std::uint64_t block = nand_->geometry().BlockOf(ppn);
  assert(valid_pages_[block] > 0);
  --valid_pages_[block];
}

void PageFtl::PushFree(std::uint64_t block) {
  if (config_.stripe_across_dies) {
    free_by_die_[nand_->DieOf(block)].push_back(block);
    ++free_count_;
  } else {
    free_blocks_.push_back(block);
  }
}

bool PageFtl::PopFree(std::uint64_t want_die, std::uint64_t* out) {
  if (!config_.stripe_across_dies) {
    if (free_blocks_.empty()) return false;
    *out = free_blocks_.back();
    free_blocks_.pop_back();
    return true;
  }
  // Prefer the requested die; fall back round-robin so a die whose pool
  // drained does not wedge the stream.
  const std::uint64_t dies = free_by_die_.size();
  for (std::uint64_t i = 0; i < dies; ++i) {
    std::vector<std::uint64_t>& list = free_by_die_[(want_die + i) % dies];
    if (list.empty()) continue;
    *out = list.back();
    list.pop_back();
    --free_count_;
    return true;
  }
  return false;
}

void PageFtl::RemoveFree(std::uint64_t block) {
  std::vector<std::uint64_t>* list = &free_blocks_;
  if (config_.stripe_across_dies) list = &free_by_die_[nand_->DieOf(block)];
  for (auto it = list->begin(); it != list->end(); ++it) {
    if (*it == block) {
      list->erase(it);
      if (config_.stripe_across_dies) --free_count_;
      break;
    }
  }
}

Status PageFtl::OpenActiveBlock(ActiveBlock* active, Stream stream,
                                std::uint64_t want_die) {
  if (active->block != kUnmapped) block_full_[active->block] = true;
  // GC only when allocating for foreground streams; the GC stream draws
  // from the reserve directly to avoid re-entry.
  if (stream != Stream::kGc) {
    BANDSLIM_RETURN_IF_ERROR(MaybeCollect());
  }
  std::uint64_t block;
  if (!PopFree(want_die, &block)) {
    return Status::OutOfSpace("no free NAND blocks");
  }
  active->block = block;
  active->next_page = 0;
  return Status::Ok();
}

Result<std::uint64_t> PageFtl::AllocatePage(Stream stream) {
  const auto& geom = nand_->geometry();
  const int s = static_cast<int>(stream);
  if (config_.stripe_across_dies) {
    // Rotate dies per page so consecutive appends land on different
    // channels/ways and the parallel NAND scheduler can overlap them.
    const std::uint64_t dies = geom.dies();
    const std::uint64_t die = stripe_cursor_[s] % dies;
    stripe_cursor_[s] = (stripe_cursor_[s] + 1) % dies;
    ActiveBlock& active = active_by_die_[s][die];
    if (active.block == kUnmapped || active.next_page == geom.pages_per_block) {
      BANDSLIM_RETURN_IF_ERROR(OpenActiveBlock(&active, stream, die));
    }
    return geom.PageIndex(active.block, active.next_page++);
  }
  ActiveBlock& active = active_[s];
  if (active.block == kUnmapped || active.next_page == geom.pages_per_block) {
    BANDSLIM_RETURN_IF_ERROR(OpenActiveBlock(&active, stream, 0));
  }
  return geom.PageIndex(active.block, active.next_page++);
}

Status PageFtl::MaybeCollect() {
  if (!below_watermark_ && free_blocks() < config_.gc_low_watermark) {
    below_watermark_ = true;
    if (event_log_ != nullptr) {
      event_log_->Emit(telemetry::EventType::kWatermarkLow, free_blocks(),
                       config_.gc_low_watermark);
    }
  }
  while (free_blocks() < config_.gc_low_watermark) {
    BANDSLIM_RETURN_IF_ERROR(CollectOneBlock());
  }
  if (below_watermark_) {
    below_watermark_ = false;
    if (event_log_ != nullptr) {
      event_log_->Emit(telemetry::EventType::kWatermarkCleared, free_blocks(),
                       config_.gc_low_watermark);
    }
  }
  return Status::Ok();
}

Result<std::uint32_t> PageFtl::CollectBudgeted(std::uint32_t max_blocks,
                                               std::uint64_t target_free) {
  std::uint32_t collected = 0;
  while (collected < max_blocks && free_blocks() < target_free) {
    const Status st = CollectOneBlock();
    if (!st.ok()) {
      // No reclaimable victim: every full block is still all-valid. That is
      // the normal idle state for paced background GC, not exhaustion —
      // foreground writes will age blocks into victims.
      if (st.code() == StatusCode::kOutOfSpace) break;
      return st;
    }
    ++collected;
  }
  return collected;
}

Status PageFtl::RelocateValidPages(std::uint64_t block) {
  trace::SpanScope span(tracer_, trace::Category::kFtlGc);
  const auto& geom = nand_->geometry();
  Bytes tmp(geom.page_size);
  const std::uint64_t first = geom.PageIndex(block, 0);
  for (std::uint32_t p = 0; p < geom.pages_per_block; ++p) {
    const std::uint64_t ppn = first + p;
    const std::uint64_t lpn = rmap_[ppn];
    if (lpn == kUnmapped) continue;
    BANDSLIM_RETURN_IF_ERROR(nand_->Read(ppn, MutByteSpan(tmp)));
    const bool retain = nand_->HasRetainedData(ppn);
    // A media failure while replaying the page retries on a fresh GC
    // allocation (bounded). The failed destination page was never mapped, so
    // it simply stays garbage until its block is erased — retiring the
    // destination here would recurse into another relocation.
    std::uint64_t new_ppn = kUnmapped;
    for (std::uint32_t tries = 0;; ++tries) {
      auto dest = AllocatePage(Stream::kGc);
      if (!dest.ok()) return dest.status();
      const Status programmed = nand_->Program(dest.value(), ByteSpan(tmp), retain);
      if (programmed.ok()) {
        new_ppn = dest.value();
        break;
      }
      if (!programmed.IsMediaError()) return programmed;
      ++program_failures_;
      if (tries >= config_.max_program_retries) return programmed;
    }
    rmap_[ppn] = kUnmapped;
    rmap_[new_ppn] = lpn;
    map_[lpn] = new_ppn;
    ++valid_pages_[geom.BlockOf(new_ppn)];
    --valid_pages_[block];
    ++gc_relocated_pages_;
    gc_relocations_->Increment();
    stream_programs_[static_cast<int>(Stream::kGc)]->Increment();
  }
  assert(valid_pages_[block] == 0);
  return Status::Ok();
}

bool PageFtl::IsActive(std::uint64_t block) const {
  for (const ActiveBlock& a : active_) {
    if (a.block == block) return true;
  }
  for (const auto& per_die : active_by_die_) {
    for (const ActiveBlock& a : per_die) {
      if (a.block == block) return true;
    }
  }
  return false;
}

Status PageFtl::CollectOneBlock() {
  trace::SpanScope span(tracer_, trace::Category::kFtlGc);
  const auto& geom = nand_->geometry();
  // Victim selection: greedy on valid pages, optionally penalizing worn
  // blocks (static wear leveling, FtlConfig::wear_weight).
  std::uint32_t min_erase = ~0u;
  if (config_.wear_weight > 0.0) {
    for (std::uint64_t b = 0; b < geom.total_blocks(); ++b) {
      if (!bad_[b]) min_erase = std::min(min_erase, nand_->EraseCount(b));
    }
  }
  std::uint64_t victim = kUnmapped;
  double best_score = 1e300;
  for (std::uint64_t b = 0; b < geom.total_blocks(); ++b) {
    if (!block_full_[b] || bad_[b]) continue;
    if (valid_pages_[b] >= geom.pages_per_block) continue;  // Nothing to gain.
    double score = static_cast<double>(valid_pages_[b]);
    if (config_.wear_weight > 0.0) {
      score += config_.wear_weight *
               static_cast<double>(nand_->EraseCount(b) - min_erase);
    }
    if (score < best_score) {
      best_score = score;
      victim = b;
    }
  }
  if (victim == kUnmapped) {
    return Status::OutOfSpace("GC found no reclaimable block");
  }

  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kGcStart, victim,
                     valid_pages_[victim]);
  }
  const std::uint64_t relocated_before = gc_relocated_pages_;
  BANDSLIM_RETURN_IF_ERROR(RelocateValidPages(victim));
  const Status erased = nand_->Erase(victim);
  if (erased.IsMediaError()) {
    // Erase failure retires the block; the reserve (if any) replaces it.
    // Either way the victim leaves the candidate set, so the GC loop makes
    // progress and terminates at kOutOfSpace when nothing is reclaimable.
    ++erase_retirements_;
    BANDSLIM_RETURN_IF_ERROR(RetireBlock(victim));
    ++gc_runs_;
    if (event_log_ != nullptr) {
      event_log_->Emit(telemetry::EventType::kGcEnd, victim,
                       gc_relocated_pages_ - relocated_before);
    }
    return Status::Ok();
  }
  BANDSLIM_RETURN_IF_ERROR(erased);
  block_full_[victim] = false;
  PushFree(victim);
  ++gc_runs_;
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kGcEnd, victim,
                     gc_relocated_pages_ - relocated_before);
  }
  return Status::Ok();
}

void PageFtl::CloseActive(std::uint64_t block) {
  for (ActiveBlock& a : active_) {
    if (a.block == block) a = ActiveBlock{};
  }
  for (auto& per_die : active_by_die_) {
    for (ActiveBlock& a : per_die) {
      if (a.block == block) a = ActiveBlock{};
    }
  }
}

bool PageFtl::RefillFromReserve() {
  if (reserve_blocks_.empty()) return false;
  PushFree(reserve_blocks_.back());
  reserve_blocks_.pop_back();
  return true;
}

Status PageFtl::RetireBlock(std::uint64_t block) {
  CloseActive(block);
  BANDSLIM_RETURN_IF_ERROR(MarkBad(block));
  ++bad_block_remaps_;
  remaps_counter_->Increment();
  // With the reserve exhausted, usable capacity just shrinks; allocation
  // reports kOutOfSpace when the free pool eventually drains.
  const bool replaced = RefillFromReserve();
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kBlockRetired, block,
                     replaced ? 1 : 0);
  }
  return Status::Ok();
}

Status PageFtl::MarkBad(std::uint64_t block) {
  if (block >= nand_->geometry().total_blocks()) {
    return Status::InvalidArgument("block out of range");
  }
  if (bad_[block]) return Status::Ok();
  if (IsActive(block)) {
    return Status::InvalidArgument("cannot mark a stream-active block bad");
  }
  BANDSLIM_RETURN_IF_ERROR(RelocateValidPages(block));
  bad_[block] = true;
  ++bad_block_count_;
  block_full_[block] = false;
  // Drop it from the free pool if it was free.
  RemoveFree(block);
  return Status::Ok();
}

Status PageFtl::Write(std::uint64_t lpn, ByteSpan data, Stream stream,
                      bool retain) {
  Status last = Status::Ok();
  for (std::uint32_t attempt = 0; attempt <= config_.max_program_retries;
       ++attempt) {
    auto ppn = AllocatePage(stream);
    if (!ppn.ok()) return ppn.status();  // Clean kOutOfSpace, never retried.
    last = nand_->Program(ppn.value(), data, retain);
    if (last.ok()) {
      auto it = map_.find(lpn);
      if (it != map_.end()) Invalidate(it->second);
      map_[lpn] = ppn.value();
      rmap_[ppn.value()] = lpn;
      ++valid_pages_[nand_->geometry().BlockOf(ppn.value())];
      stream_programs_[static_cast<int>(stream)]->Increment();
      return Status::Ok();
    }
    // Only media failures are worth a retry elsewhere; power loss or
    // argument errors propagate untouched.
    if (!last.IsMediaError()) return last;
    ++program_failures_;
    // The failed page was never mapped, so retirement replays exactly the
    // surviving co-located pages of the block onto fresh blocks.
    BANDSLIM_RETURN_IF_ERROR(
        RetireBlock(nand_->geometry().BlockOf(ppn.value())));
  }
  return last;
}

Status PageFtl::Read(std::uint64_t lpn, MutByteSpan out) {
  auto it = map_.find(lpn);
  if (it == map_.end()) {
    return Status::NotFound("unmapped logical NAND page");
  }
  return nand_->Read(it->second, out);
}

Status PageFtl::ReadView(std::uint64_t lpn, std::shared_ptr<const Bytes>* out) {
  auto it = map_.find(lpn);
  if (it == map_.end()) {
    return Status::NotFound("unmapped logical NAND page");
  }
  return nand_->ReadView(it->second, out);
}

Status PageFtl::Trim(std::uint64_t lpn) {
  auto it = map_.find(lpn);
  if (it == map_.end()) return Status::Ok();
  Invalidate(it->second);
  map_.erase(it);
  return Status::Ok();
}

}  // namespace bandslim::ftl
