// Page-mapped Flash Translation Layer. The vLog and the LSM-tree address
// *logical* NAND pages (Section 2.1: "it fills logical NAND pages which are
// mapped to physical NAND pages by the FTL"); this FTL provides the mapping
// with out-of-place updates, per-stream active blocks (vLog appends, LSM
// SSTables and GC relocations go to separate blocks), and greedy garbage
// collection over fully-programmed blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "nand/nand_flash.h"
#include "stats/metrics.h"
#include "telemetry/event_log.h"
#include "trace/trace.h"

namespace bandslim::ftl {

enum class Stream : int {
  kVlog = 0,  // Value-log page appends.
  kLsm = 1,   // SSTable / manifest pages.
  kGc = 2,    // Relocations during garbage collection.
};
inline constexpr int kNumStreams = 3;

struct FtlConfig {
  // GC starts when the free-block pool drops to this many blocks.
  std::uint32_t gc_low_watermark = 4;
  // Wear-aware victim selection: score = valid_pages + wear_weight *
  // (erase_count - min_erase_count). 0 = pure greedy; >0 spreads erases.
  double wear_weight = 0.0;
  // Fraction of blocks factory-marked bad (excluded from allocation).
  double bad_block_rate = 0.0;
  std::uint64_t bad_block_seed = 0xBADB10C;
  // Good blocks withheld from the free pool at init (highest-numbered
  // first). A block that grows bad at runtime is retired and replaced from
  // this reserve — classic bad-block remapping. 0 = no reserve; retirement
  // then shrinks usable capacity until allocation returns kOutOfSpace.
  std::uint32_t reserved_blocks = 0;
  // Re-allocation attempts after a program reports a media failure (each
  // attempt retires the failed block and lands on a fresh one).
  std::uint32_t max_program_retries = 4;
  // Geometry-aware dispatch: each stream keeps one active block per die and
  // round-robins page allocations across them, so consecutive logical page
  // writes land on different channels/ways and the parallel NAND scheduler
  // (CostModel::nand_async_program) can overlap them. Off by default: the
  // sequential allocator matches the paper's firmware and keeps the figure
  // anchors bit-identical.
  bool stripe_across_dies = false;
};

class PageFtl {
 public:
  PageFtl(nand::NandFlash* nand, stats::MetricsRegistry* metrics,
          FtlConfig config = {}, trace::Tracer* tracer = nullptr,
          telemetry::EventLog* event_log = nullptr);

  // Writes one logical page (out-of-place; remaps if already mapped). A
  // program media failure retires the block — surviving co-located pages
  // are replayed onto fresh blocks byte-for-byte — and retries on a new
  // allocation up to FtlConfig::max_program_retries times.
  [[nodiscard]] Status Write(std::uint64_t lpn, ByteSpan data, Stream stream,
                             bool retain);

  [[nodiscard]] Status Read(std::uint64_t lpn, MutByteSpan out);

  // Zero-copy variant of Read: see NandFlash::ReadView. Same mapping
  // lookup, fault behaviour, and timing charges as Read.
  [[nodiscard]] Status ReadView(std::uint64_t lpn,
                                std::shared_ptr<const Bytes>* out);

  bool IsMapped(std::uint64_t lpn) const { return map_.contains(lpn); }

  // Drops the mapping; the physical page becomes garbage for GC.
  [[nodiscard]] Status Trim(std::uint64_t lpn);

  std::uint64_t free_blocks() const {
    return config_.stripe_across_dies ? free_count_ : free_blocks_.size();
  }
  std::uint64_t gc_relocated_pages() const { return gc_relocated_pages_; }
  std::uint64_t gc_runs() const { return gc_runs_; }
  std::uint64_t mapped_pages() const { return map_.size(); }
  std::uint64_t bad_blocks() const { return bad_block_count_; }
  bool IsBad(std::uint64_t block) const { return bad_[block]; }
  // Fault-handling outcomes (zero on a perfect device).
  std::uint64_t program_failures() const { return program_failures_; }
  std::uint64_t bad_block_remaps() const { return bad_block_remaps_; }
  std::uint64_t erase_retirements() const { return erase_retirements_; }
  std::uint64_t reserve_remaining() const { return reserve_blocks_.size(); }

  // Grown bad block (fault injection): relocates any valid pages, then
  // permanently excludes the block. Rejected for stream-active blocks.
  [[nodiscard]] Status MarkBad(std::uint64_t block);

  // Paced background GC (closed-loop control): reclaims up to `max_blocks`
  // victims, stopping early once the free pool reaches `target_free`.
  // Opportunistic — "no reclaimable victim" is not an error here (the pool
  // simply holds no fully-garbage-enough block yet), unlike the foreground
  // allocation path where it means the device is truly full. Returns the
  // number of blocks actually reclaimed.
  Result<std::uint32_t> CollectBudgeted(std::uint32_t max_blocks,
                                        std::uint64_t target_free);

 private:
  static constexpr std::uint64_t kUnmapped = ~0ULL;

  struct ActiveBlock {
    std::uint64_t block = kUnmapped;
    std::uint32_t next_page = 0;
  };

  // Returns the next free physical page for `stream`, running GC if the
  // free pool is low. Fails with kOutOfSpace when GC cannot reclaim.
  Result<std::uint64_t> AllocatePage(Stream stream);
  // Refills `active` from the free pool (GC first for foreground streams),
  // preferring a block on `want_die` when striping.
  Status OpenActiveBlock(ActiveBlock* active, Stream stream,
                         std::uint64_t want_die);
  // Free-pool primitives valid in both layouts (global list / per-die lists).
  void PushFree(std::uint64_t block);
  bool PopFree(std::uint64_t want_die, std::uint64_t* out);
  void RemoveFree(std::uint64_t block);
  Status MaybeCollect();
  Status CollectOneBlock();
  // Moves every valid page of `block` to the GC stream's active block.
  Status RelocateValidPages(std::uint64_t block);
  bool IsActive(std::uint64_t block) const;
  void Invalidate(std::uint64_t ppn);
  // Bad-block retirement: closes any stream pointer at `block`, relocates
  // its surviving valid pages (the packed-layout replay), excludes it, and
  // refills the free pool from the reserve when one is configured.
  Status RetireBlock(std::uint64_t block);
  void CloseActive(std::uint64_t block);
  bool RefillFromReserve();

  nand::NandFlash* nand_;
  trace::Tracer* tracer_;              // Optional; null = untraced.
  telemetry::EventLog* event_log_;     // Optional; null = no event stream.
  FtlConfig config_;
  // Latched while the free pool sits below gc_low_watermark, so the event
  // log records one kWatermarkLow/kWatermarkCleared pair per excursion.
  bool below_watermark_ = false;

  std::unordered_map<std::uint64_t, std::uint64_t> map_;  // lpn -> ppn.
  std::vector<std::uint64_t> rmap_;                       // ppn -> lpn.
  std::vector<std::uint32_t> valid_pages_;                // Per block.
  std::vector<bool> block_full_;                          // Per block.
  std::vector<bool> bad_;                                 // Per block.
  // Free pool. Non-striped: one global stack popped lowest-block-first
  // (exactly the paper-faithful allocator). Striped: one stack per die plus
  // a count, so OpenActiveBlock can target a die directly.
  std::vector<std::uint64_t> free_blocks_;
  std::vector<std::vector<std::uint64_t>> free_by_die_;
  std::uint64_t free_count_ = 0;
  ActiveBlock active_[kNumStreams];
  // Striped mode: per-stream per-die active blocks and rotation cursor.
  std::vector<std::vector<ActiveBlock>> active_by_die_;
  std::uint64_t stripe_cursor_[kNumStreams] = {0, 0, 0};
  std::uint64_t bad_block_count_ = 0;
  std::vector<std::uint64_t> reserve_blocks_;  // Bad-block remap pool.

  std::uint64_t gc_relocated_pages_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t program_failures_ = 0;
  std::uint64_t bad_block_remaps_ = 0;
  std::uint64_t erase_retirements_ = 0;

  stats::Counter* stream_programs_[kNumStreams];
  stats::Counter* gc_relocations_;
  stats::Counter* remaps_counter_;
};

}  // namespace bandslim::ftl
