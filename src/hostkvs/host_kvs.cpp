#include "hostkvs/host_kvs.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "lsm/sstable.h"

namespace bandslim::hostkvs {

namespace {
// vLog record: [u8 klen][key][u32 vsize][value]; vsize kTombstone marks a
// durable delete record carrying no value bytes.
constexpr std::uint32_t kTombstoneSize = 0xFFFFFFFFu;
}  // namespace

HostKvs::HostKvs(blockdev::BlockSsd* ssd, sim::VirtualClock* clock,
                 const sim::CostModel* cost, stats::MetricsRegistry* metrics,
                 HostKvsConfig config)
    : ssd_(ssd),
      clock_(clock),
      cost_(cost),
      metrics_(metrics),
      config_(config),
      kernel_crossings_(metrics->GetCounter("hostkvs.kernel_crossings")),
      block_ios_(metrics->GetCounter("hostkvs.block_ios")) {}

void HostKvs::ChargeKernelPath() {
  clock_->Advance(cost_->host_syscall_ns);
  kernel_crossings_->Increment();
}

Status HostKvs::SyncTail() {
  const std::uint64_t staging_base = RoundDownPow2(synced_until_, kMemPageSize);
  if (vlog_tail_ == synced_until_) return Status::Ok();
  // pwrite() of the dirty tail block range, then fsync().
  ChargeKernelPath();
  const std::uint64_t begin = staging_base;
  const std::uint64_t end = RoundUpPow2(vlog_tail_, kMemPageSize);
  Bytes io(end - begin, 0);
  // staging_ holds vLog bytes from `begin` onward.
  std::copy_n(staging_.begin(),
              std::min<std::uint64_t>(staging_.size(), vlog_tail_ - begin),
              io.begin());
  clock_->Advance(cost_->host_fs_block_ns);
  block_ios_->Increment();
  BANDSLIM_RETURN_IF_ERROR(ssd_->Write(begin / kMemPageSize, ByteSpan(io)));
  ChargeKernelPath();  // fsync().
  synced_until_ = vlog_tail_;
  // Keep only the partial last block in the page cache image.
  const std::uint64_t new_base = RoundDownPow2(vlog_tail_, kMemPageSize);
  if (new_base > begin) {
    const std::uint64_t drop = new_base - begin;
    staging_.erase(staging_.begin(),
                   staging_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  return Status::Ok();
}

Status HostKvs::Put(std::string_view key, ByteSpan value) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty values are not supported");
  }
  // write() into the page cache: one kernel crossing + user-copy.
  ChargeKernelPath();
  const std::uint64_t staging_base = RoundDownPow2(synced_until_, kMemPageSize);
  Bytes record;
  record.push_back(static_cast<std::uint8_t>(key.size()));
  record.insert(record.end(), key.begin(), key.end());
  const auto vsize = static_cast<std::uint32_t>(value.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<std::uint8_t>(vsize >> (8 * i)));
  }
  const std::uint64_t value_addr = vlog_tail_ + record.size();
  record.insert(record.end(), value.begin(), value.end());
  staging_.insert(staging_.end(), record.begin(), record.end());
  vlog_tail_ += record.size();
  index_.Put(std::string(key), lsm::ValueRef{value_addr, vsize, false});
  ++puts_issued_;
  value_bytes_written_ += value.size();

  if (config_.fsync_each_put) {
    return SyncTail();
  }
  // Page-cache mode: write back only once whole blocks have accumulated.
  if (vlog_tail_ - staging_base >= 4 * kMemPageSize) {
    // Write the full blocks; fsync is NOT issued (volatile window).
    const std::uint64_t end = RoundDownPow2(vlog_tail_, kMemPageSize);
    Bytes io(end - staging_base);
    std::copy_n(staging_.begin(), io.size(), io.begin());
    clock_->Advance(cost_->host_fs_block_ns);
    block_ios_->Increment();
    BANDSLIM_RETURN_IF_ERROR(
        ssd_->Write(staging_base / kMemPageSize, ByteSpan(io)));
    synced_until_ = end;
    staging_.erase(staging_.begin(),
                   staging_.begin() + static_cast<std::ptrdiff_t>(io.size()));
  }
  return Status::Ok();
}

Result<Bytes> HostKvs::Get(std::string_view key) {
  const lsm::ValueRef* ref = index_.Get(std::string(key));
  if (ref == nullptr || ref->tombstone) return Status::NotFound();
  Bytes out(ref->size);
  const std::uint64_t staging_base = RoundDownPow2(synced_until_, kMemPageSize);
  std::uint64_t addr = ref->addr;
  std::size_t done = 0;
  // Device-resident prefix (below the page-cache image).
  if (addr < staging_base) {
    const std::uint64_t dev_end = std::min<std::uint64_t>(
        staging_base, addr + ref->size);
    const std::uint64_t lba = addr / kMemPageSize;
    const std::uint64_t lba_end = CeilDiv(dev_end, kMemPageSize);
    Bytes blocks((lba_end - lba) * kMemPageSize);
    ChargeKernelPath();  // pread().
    clock_->Advance(cost_->host_fs_block_ns);
    block_ios_->Increment();
    BANDSLIM_RETURN_IF_ERROR(ssd_->Read(lba, MutByteSpan(blocks)));
    const std::uint64_t off = addr - lba * kMemPageSize;
    const std::size_t n = static_cast<std::size_t>(dev_end - addr);
    std::memcpy(out.data(), blocks.data() + off, n);
    done = n;
    addr = dev_end;
  }
  // Page-cache-resident suffix.
  if (done < out.size()) {
    const std::uint64_t off = addr - staging_base;
    std::memcpy(out.data() + done, staging_.data() + off, out.size() - done);
  }
  return out;
}

Status HostKvs::Delete(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  ChargeKernelPath();
  Bytes record;
  record.push_back(static_cast<std::uint8_t>(key.size()));
  record.insert(record.end(), key.begin(), key.end());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<std::uint8_t>(kTombstoneSize >> (8 * i)));
  }
  staging_.insert(staging_.end(), record.begin(), record.end());
  vlog_tail_ += record.size();
  index_.Delete(std::string(key));
  if (config_.fsync_each_put) return SyncTail();
  return Status::Ok();
}

Status HostKvs::Flush() {
  BANDSLIM_RETURN_IF_ERROR(SyncTail());
  // Serialize the index snapshot to the "index file" region (second half of
  // the LBA space) — one buffered write + fsync.
  Bytes snapshot;
  lsm::PutU32(&snapshot, static_cast<std::uint32_t>(index_.entry_count()));
  for (auto it = index_.Begin(); it.Valid(); it.Next()) {
    lsm::PutLengthPrefixed(&snapshot, it.key());
    lsm::PutU64(&snapshot, it.ref().addr);
    lsm::PutU32(&snapshot, it.ref().size);
    snapshot.push_back(it.ref().tombstone ? 1 : 0);
  }
  snapshot.resize(RoundUpPow2(snapshot.size(), kMemPageSize));
  const std::uint64_t index_lba =
      ssd_->nand().geometry().capacity_bytes() / kMemPageSize / 2;
  ChargeKernelPath();
  clock_->Advance(cost_->host_fs_block_ns);
  block_ios_->Increment();
  BANDSLIM_RETURN_IF_ERROR(ssd_->Write(index_lba, ByteSpan(snapshot)));
  ChargeKernelPath();
  return ssd_->FlushCache();
}

Status HostKvs::GetInto(std::string_view key, Bytes* value) {
  auto got = Get(key);
  if (!got.ok()) return got.status();
  *value = std::move(got).value();
  return Status::Ok();
}

// Each batch record walks the full kernel path on its own — there is no
// bulk command a block SSD understands. That per-record syscall tax is the
// conventional-stack baseline the KV-SSD batch ops are measured against.
Status HostKvs::PutBatch(std::span<const KvPair> batch) {
  for (const KvPair& kv : batch) {
    BANDSLIM_RETURN_IF_ERROR(Put(kv.key, ByteSpan(kv.value)));
  }
  return Status::Ok();
}

Result<std::vector<HostKvs::BatchGetResult>> HostKvs::GetBatch(
    std::span<const std::string> keys) {
  std::vector<BatchGetResult> results(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto got = Get(keys[i]);
    if (got.ok()) {
      results[i].found = true;
      results[i].value = std::move(got).value();
    } else if (!got.status().IsNotFound()) {
      return got.status();
    }
  }
  return results;
}

Result<std::uint32_t> HostKvs::DeleteBatch(std::span<const std::string> keys) {
  std::uint32_t removed = 0;
  for (const std::string& key : keys) {
    const lsm::ValueRef* ref = index_.Get(key);
    if (ref == nullptr || ref->tombstone) continue;  // Absent: skipped.
    BANDSLIM_RETURN_IF_ERROR(Delete(key));
    ++removed;
  }
  return removed;
}

KvSsdStats HostKvs::GetStats() const {
  KvSsdStats s;
  s.elapsed_ns = clock_->Now();
  s.values_written = puts_issued_;
  s.value_bytes_written = value_bytes_written_;
  return s;
}

StoreSnapshot HostKvs::Inspect() const {
  StoreSnapshot store;
  InspectInto(&store);
  return store;
}

void HostKvs::InspectInto(StoreSnapshot* out) const {
  out->stats = GetStats();
  out->shards.resize(1);
  DeviceSnapshot& dev = out->shards[0];
  dev.stats = out->stats;
  dev.queues.clear();
  dev.buffer_window_base = 0;
  dev.vlog_tail = vlog_tail_;
  dev.buffer_dma_frontier = 0;
  dev.buffer_resident_bytes = 0;
  dev.ftl_mapped_pages = 0;
  dev.ftl_free_blocks = 0;
  dev.ftl_reserve_blocks = 0;
  dev.ftl_bad_blocks = 0;
  dev.lsm_memtable_entries = 0;
  dev.lsm_memtable_bytes = 0;
  dev.lsm_pending_trim_tables = 0;
  dev.lsm_compaction_debt_bytes = 0;
  dev.lsm_levels.clear();
  metrics_->SnapshotCountersInto(&dev.counters);
  dev.alerts.clear();
  dev.telemetry_samples = 0;
  dev.telemetry_events = 0;
  out->batch_subops = 0;
  out->cross_shard_batches = 0;
  out->qos_refill_windows = 0;
  out->alerts.clear();
  out->fleet_samples = 0;
  out->fleet_events = 0;
}

}  // namespace bandslim::hostkvs
