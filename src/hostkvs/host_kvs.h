// Host-side key-value store (Figure 1a): the conventional stack the paper
// motivates against. A WiscKey-style design — in-host-memory index mapping
// keys to a value log stored as a "file" on a block-interface SSD — driven
// through a modeled kernel path: every operation pays user/kernel crossing
// and filesystem + block-layer costs before the NVMe round trip, and all
// media I/O happens in whole 4 KiB blocks.
//
// Durability modes:
//  * fsync_each_put = true  — every PUT rewrites the vLog tail block
//    (durability parity with a KV-SSD PUT); exhibits the block-granular
//    write amplification the paper's Problem #1/#2 generalize.
//  * fsync_each_put = false — page-cache buffering: the tail block is
//    written once full; fast, but PUTs since the last flush are volatile.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "blockdev/block_ssd.h"
#include "common/status.h"
#include "core/kv_store.h"
#include "lsm/memtable.h"

namespace bandslim::hostkvs {

struct HostKvsConfig {
  bool fsync_each_put = true;
};

// Implements the topology-neutral KvStore interface, so any harness that
// drives a KvSsd or KvCluster through a KvStore& runs unchanged against
// the conventional stack. The batch ops have no kernel bulk path on this
// design: each record pays its own syscall crossings, which IS the
// comparison the paper draws (host-side batching only helps once the
// device understands it).
class HostKvs : public KvStore {
 public:
  HostKvs(blockdev::BlockSsd* ssd, sim::VirtualClock* clock,
          const sim::CostModel* cost, stats::MetricsRegistry* metrics,
          HostKvsConfig config = {});

  using KvStore::Put;
  using KvStore::PutBatch;
  Status Put(std::string_view key, ByteSpan value) override;
  Result<Bytes> Get(std::string_view key) override;
  Status GetInto(std::string_view key, Bytes* value) override;
  Status Delete(std::string_view key) override;
  Status PutBatch(std::span<const KvPair> batch) override;
  Result<std::vector<BatchGetResult>> GetBatch(
      std::span<const std::string> keys) override;
  Result<std::uint32_t> DeleteBatch(std::span<const std::string> keys) override;
  // Writes out the buffered tail and the index snapshot, then flushes the
  // device cache (fsync + fdatasync of the index file).
  Status Flush() override;

  // KvStore introspection. The conventional stack reports what it can
  // observe from the host: kernel/block counters (via the registry dump),
  // values written, and the block device's clock.
  StoreSnapshot Inspect() const override;
  // In-place variant, allocation-free in steady state (mirrors the KvSsd /
  // KvCluster contract): refills `*out` reusing its one-shard snapshot and
  // counter map, so fleet-style sampling loops can poll the conventional
  // stack on the same terms as the KV-SSD topologies.
  void InspectInto(StoreSnapshot* out) const override;
  KvSsdStats GetStats() const override;
  sim::Nanoseconds Now() const override { return clock_->Now(); }

  std::uint64_t puts_issued() const { return puts_issued_; }
  std::uint64_t vlog_bytes() const { return vlog_tail_; }

 private:
  // Models entering the kernel and traversing VFS/FS/block layers once.
  void ChargeKernelPath();
  // Writes the dirty tail block(s) of the vLog file to the device.
  Status SyncTail();

  blockdev::BlockSsd* ssd_;
  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  stats::MetricsRegistry* metrics_;  // For the Inspect() counter dump.
  HostKvsConfig config_;
  std::uint64_t value_bytes_written_ = 0;

  lsm::MemTable index_;       // Key -> (vLog offset, size); host RAM.
  std::uint64_t vlog_tail_ = 0;       // Append offset (bytes).
  std::uint64_t synced_until_ = 0;    // All bytes below are on the device.
  Bytes staging_;                     // Page-cache image of the tail block.

  std::uint64_t puts_issued_ = 0;
  stats::Counter* kernel_crossings_;
  stats::Counter* block_ios_;
};

}  // namespace bandslim::hostkvs
