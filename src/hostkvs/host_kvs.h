// Host-side key-value store (Figure 1a): the conventional stack the paper
// motivates against. A WiscKey-style design — in-host-memory index mapping
// keys to a value log stored as a "file" on a block-interface SSD — driven
// through a modeled kernel path: every operation pays user/kernel crossing
// and filesystem + block-layer costs before the NVMe round trip, and all
// media I/O happens in whole 4 KiB blocks.
//
// Durability modes:
//  * fsync_each_put = true  — every PUT rewrites the vLog tail block
//    (durability parity with a KV-SSD PUT); exhibits the block-granular
//    write amplification the paper's Problem #1/#2 generalize.
//  * fsync_each_put = false — page-cache buffering: the tail block is
//    written once full; fast, but PUTs since the last flush are volatile.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "blockdev/block_ssd.h"
#include "common/status.h"
#include "lsm/memtable.h"

namespace bandslim::hostkvs {

struct HostKvsConfig {
  bool fsync_each_put = true;
};

class HostKvs {
 public:
  HostKvs(blockdev::BlockSsd* ssd, sim::VirtualClock* clock,
          const sim::CostModel* cost, stats::MetricsRegistry* metrics,
          HostKvsConfig config = {});

  Status Put(std::string_view key, ByteSpan value);
  Result<Bytes> Get(std::string_view key);
  Status Delete(std::string_view key);
  // Writes out the buffered tail and the index snapshot, then flushes the
  // device cache (fsync + fdatasync of the index file).
  Status Flush();

  std::uint64_t puts_issued() const { return puts_issued_; }
  std::uint64_t vlog_bytes() const { return vlog_tail_; }

 private:
  // Models entering the kernel and traversing VFS/FS/block layers once.
  void ChargeKernelPath();
  // Writes the dirty tail block(s) of the vLog file to the device.
  Status SyncTail();

  blockdev::BlockSsd* ssd_;
  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  HostKvsConfig config_;

  lsm::MemTable index_;       // Key -> (vLog offset, size); host RAM.
  std::uint64_t vlog_tail_ = 0;       // Append offset (bytes).
  std::uint64_t synced_until_ = 0;    // All bytes below are on the device.
  Bytes staging_;                     // Page-cache image of the tail block.

  std::uint64_t puts_issued_ = 0;
  stats::Counter* kernel_crossings_;
  stats::Counter* block_ios_;
};

}  // namespace bandslim::hostkvs
