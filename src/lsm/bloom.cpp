#include "lsm/bloom.h"

#include "common/random.h"

namespace bandslim::lsm {

BloomFilter::BloomFilter(std::size_t expected_keys) {
  std::size_t bits = expected_keys * kBitsPerKey;
  if (bits < 64) bits = 64;
  bits_.assign((bits + 7) / 8, 0);
  InitModMagic();
}

BloomFilter::BloomFilter(Bytes bits) : bits_(std::move(bits)) {
  InitModMagic();
}

void BloomFilter::InitModMagic() {
  nbits_ = bits_.size() * 8;
  if (nbits_ == 0) return;
  mod_magic_ = ~static_cast<unsigned __int128>(0) / nbits_ + 1;
}

std::uint64_t BloomFilter::HashKey(std::string_view key) {
  // FNV-1a folded through SplitMix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

void BloomFilter::Add(std::string_view key) {
  if (bits_.empty()) return;
  const std::uint64_t h = HashKey(key);
  std::uint64_t a = h;
  const std::uint64_t b = (h >> 32) | (h << 32);
  for (int i = 0; i < kNumProbes; ++i) {
    const std::uint64_t bit = ModBits(a);
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    a += b;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bits_.empty()) return true;  // No filter -> must check the table.
  const std::uint64_t h = HashKey(key);
  std::uint64_t a = h;
  const std::uint64_t b = (h >> 32) | (h << 32);
  for (int i = 0; i < kNumProbes; ++i) {
    const std::uint64_t bit = ModBits(a);
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    a += b;
  }
  return true;
}

}  // namespace bandslim::lsm
