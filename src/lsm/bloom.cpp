#include "lsm/bloom.h"

#include "common/random.h"

namespace bandslim::lsm {

BloomFilter::BloomFilter(std::size_t expected_keys) {
  std::size_t bits = expected_keys * kBitsPerKey;
  if (bits < 64) bits = 64;
  bits_.assign((bits + 7) / 8, 0);
}

std::uint64_t BloomFilter::HashKey(std::string_view key) {
  // FNV-1a folded through SplitMix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

void BloomFilter::Add(std::string_view key) {
  if (bits_.empty()) return;
  const std::uint64_t h = HashKey(key);
  const std::uint64_t nbits = bits_.size() * 8;
  std::uint64_t a = h;
  const std::uint64_t b = (h >> 32) | (h << 32);
  for (int i = 0; i < kNumProbes; ++i) {
    const std::uint64_t bit = a % nbits;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    a += b;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bits_.empty()) return true;  // No filter -> must check the table.
  const std::uint64_t h = HashKey(key);
  const std::uint64_t nbits = bits_.size() * 8;
  std::uint64_t a = h;
  const std::uint64_t b = (h >> 32) | (h << 32);
  for (int i = 0; i < kNumProbes; ++i) {
    const std::uint64_t bit = a % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    a += b;
  }
  return true;
}

}  // namespace bandslim::lsm
