// Bloom filter for SSTable key membership. Filters live in device DRAM
// alongside the table metadata (as PinK keeps its meta resident), so a GET
// for an absent key skips the NAND reads of loading the table. Double
// hashing over a 64-bit mix gives k probe positions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace bandslim::lsm {

class BloomFilter {
 public:
  // ~10 bits/key, k = 7: <1 % false-positive rate.
  static constexpr std::size_t kBitsPerKey = 10;
  static constexpr int kNumProbes = 7;

  BloomFilter() = default;

  // Builds a filter sized for `expected_keys`.
  explicit BloomFilter(std::size_t expected_keys);
  // Reconstructs from serialized bits.
  explicit BloomFilter(Bytes bits);

  void Add(std::string_view key);
  // False negatives never happen; false positives at the configured rate.
  bool MayContain(std::string_view key) const;

  const Bytes& bits() const { return bits_; }
  bool empty() const { return bits_.empty(); }

 private:
  static std::uint64_t HashKey(std::string_view key);
  // `x % nbits` via Lemire's fastmod (a multiply instead of a hardware
  // divide on every probe). Produces exactly the same bit positions as the
  // plain modulo, so filter contents and false-positive behaviour — and the
  // simulated timing that depends on them — are unchanged.
  std::uint64_t ModBits(std::uint64_t x) const {
    const unsigned __int128 lowbits = mod_magic_ * x;
    const unsigned __int128 bottom =
        (lowbits & ~std::uint64_t{0}) * nbits_ >> 64;
    const unsigned __int128 top = (lowbits >> 64) * nbits_;
    return static_cast<std::uint64_t>((bottom + top) >> 64);
  }
  void InitModMagic();

  Bytes bits_;
  std::uint64_t nbits_ = 0;
  unsigned __int128 mod_magic_ = 0;  // floor(2^128 / nbits_) + 1.
};

}  // namespace bandslim::lsm
