// Bloom filter for SSTable key membership. Filters live in device DRAM
// alongside the table metadata (as PinK keeps its meta resident), so a GET
// for an absent key skips the NAND reads of loading the table. Double
// hashing over a 64-bit mix gives k probe positions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace bandslim::lsm {

class BloomFilter {
 public:
  // ~10 bits/key, k = 7: <1 % false-positive rate.
  static constexpr std::size_t kBitsPerKey = 10;
  static constexpr int kNumProbes = 7;

  BloomFilter() = default;

  // Builds a filter sized for `expected_keys`.
  explicit BloomFilter(std::size_t expected_keys);
  // Reconstructs from serialized bits.
  explicit BloomFilter(Bytes bits) : bits_(std::move(bits)) {}

  void Add(std::string_view key);
  // False negatives never happen; false positives at the configured rate.
  bool MayContain(std::string_view key) const;

  const Bytes& bits() const { return bits_; }
  bool empty() const { return bits_.empty(); }

 private:
  static std::uint64_t HashKey(std::string_view key);
  Bytes bits_;
};

}  // namespace bandslim::lsm
