#include "lsm/compaction.h"

#include <queue>

namespace bandslim::lsm {

std::vector<SSTableEntry> MergeRuns(
    const std::vector<const std::vector<SSTableEntry>*>& runs,
    bool drop_tombstones) {
  // Heap element: (key, run priority, index within run). Lower priority
  // number = newer run = wins on equal keys.
  struct Cursor {
    std::size_t run;
    std::size_t index;
  };
  auto key_of = [&](const Cursor& c) -> const std::string& {
    return (*runs[c.run])[c.index].key;
  };
  auto greater = [&](const Cursor& a, const Cursor& b) {
    const std::string& ka = key_of(a);
    const std::string& kb = key_of(b);
    if (ka != kb) return ka > kb;
    return a.run > b.run;  // Newer run (smaller index) pops first.
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(greater);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r]->empty()) heap.push({r, 0});
  }

  std::vector<SSTableEntry> merged;
  std::string last_key;
  bool have_last = false;
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    const SSTableEntry& e = (*runs[c.run])[c.index];
    if (!have_last || e.key != last_key) {
      if (!(drop_tombstones && e.ref.tombstone)) merged.push_back(e);
      last_key = e.key;
      have_last = true;
    }
    if (c.index + 1 < runs[c.run]->size()) {
      heap.push({c.run, c.index + 1});
    }
  }
  return merged;
}

std::vector<std::vector<SSTableEntry>> SplitRun(std::vector<SSTableEntry> merged,
                                                std::uint64_t target_bytes) {
  std::vector<std::vector<SSTableEntry>> out;
  std::vector<SSTableEntry> current;
  std::uint64_t bytes = 0;
  for (SSTableEntry& e : merged) {
    const std::uint64_t sz = EncodedEntrySize(e);
    if (!current.empty() && bytes + sz > target_bytes) {
      out.push_back(std::move(current));
      current.clear();
      bytes = 0;
    }
    bytes += sz;
    current.push_back(std::move(e));
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace bandslim::lsm
