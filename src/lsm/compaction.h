// Merge machinery for LSM compaction. Runs are merged with newest-first
// precedence; shadowed entries are dropped and tombstones are elided only
// when merging into the bottom-most populated level (no older data can be
// resurrected). Thanks to key-value separation only references move —
// values stay put in the vLog (Section 2.1).
#pragma once

#include <vector>

#include "lsm/sstable.h"

namespace bandslim::lsm {

// `runs` are sorted entry vectors ordered newest first; each run has unique
// keys. Returns the merged, sorted, deduplicated run.
std::vector<SSTableEntry> MergeRuns(
    const std::vector<const std::vector<SSTableEntry>*>& runs,
    bool drop_tombstones);

// Splits a merged run into output tables of at most `target_bytes` of
// serialized size each (entries are never split).
std::vector<std::vector<SSTableEntry>> SplitRun(
    std::vector<SSTableEntry> merged, std::uint64_t target_bytes);

}  // namespace bandslim::lsm
