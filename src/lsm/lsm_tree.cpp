#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cassert>

namespace bandslim::lsm {

namespace {
constexpr std::uint32_t kManifestMagic = 0x4D414E46;  // "MANF"

void EncodeMeta(Bytes* out, const SSTableMeta& m) {
  PutU64(out, m.id);
  PutU64(out, m.first_lpn);
  PutU32(out, m.page_count);
  PutU32(out, m.entry_count);
  PutU64(out, m.encoded_bytes);
  PutLengthPrefixed(out, m.min_key);
  PutLengthPrefixed(out, m.max_key);
  PutU32(out, static_cast<std::uint32_t>(m.bloom.bits().size()));
  out->insert(out->end(), m.bloom.bits().begin(), m.bloom.bits().end());
  PutU32(out, static_cast<std::uint32_t>(m.fence_keys.size()));
  for (const std::string& k : m.fence_keys) PutLengthPrefixed(out, k);
}

Status DecodeMeta(ByteSpan data, std::size_t* offset, SSTableMeta* m) {
  BANDSLIM_RETURN_IF_ERROR(GetU64(data, offset, &m->id));
  BANDSLIM_RETURN_IF_ERROR(GetU64(data, offset, &m->first_lpn));
  BANDSLIM_RETURN_IF_ERROR(GetU32(data, offset, &m->page_count));
  BANDSLIM_RETURN_IF_ERROR(GetU32(data, offset, &m->entry_count));
  BANDSLIM_RETURN_IF_ERROR(GetU64(data, offset, &m->encoded_bytes));
  BANDSLIM_RETURN_IF_ERROR(GetLengthPrefixed(data, offset, &m->min_key));
  BANDSLIM_RETURN_IF_ERROR(GetLengthPrefixed(data, offset, &m->max_key));
  std::uint32_t bloom_bytes = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(data, offset, &bloom_bytes));
  if (*offset + bloom_bytes > data.size()) {
    return Status::Corruption("truncated bloom filter");
  }
  m->bloom = BloomFilter(
      Bytes(data.begin() + static_cast<std::ptrdiff_t>(*offset),
            data.begin() + static_cast<std::ptrdiff_t>(*offset + bloom_bytes)));
  *offset += bloom_bytes;
  std::uint32_t fences = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(data, offset, &fences));
  m->fence_keys.resize(fences);
  for (std::uint32_t f = 0; f < fences; ++f) {
    BANDSLIM_RETURN_IF_ERROR(GetLengthPrefixed(data, offset, &m->fence_keys[f]));
  }
  return Status::Ok();
}
}  // namespace

LsmTree::LsmTree(ftl::PageFtl* ftl, stats::MetricsRegistry* metrics,
                 LsmConfig config, telemetry::EventLog* event_log)
    : ftl_(ftl),
      config_(config),
      mem_(config.seed),
      levels_(static_cast<std::size_t>(config.max_levels)),
      compaction_counter_(metrics->GetCounter("lsm.compactions")),
      flush_counter_(metrics->GetCounter("lsm.memtable_flushes")),
      bloom_skip_counter_(metrics->GetCounter("lsm.bloom_skips")),
      stall_counter_(metrics->GetCounter("lsm.memtable_stalls")),
      compaction_bytes_counter_(
          metrics->GetCounter("lsm.compaction_bytes_written")),
      event_log_(event_log) {}

Status LsmTree::Put(const std::string& key, const ValueRef& ref) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  mem_.Put(key, ref);
  if (mem_.approximate_bytes() >=
      config_.memtable_limit_bytes + flush_deferral_bytes_) {
    return FlushMemTable();
  }
  return Status::Ok();
}

Status LsmTree::Delete(const std::string& key) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1..16 bytes");
  }
  mem_.Delete(key);
  if (mem_.approximate_bytes() >=
      config_.memtable_limit_bytes + flush_deferral_bytes_) {
    return FlushMemTable();
  }
  return Status::Ok();
}

Result<std::shared_ptr<const std::vector<SSTableEntry>>> LsmTree::LoadPage(
    const SSTableMeta& meta, std::uint32_t page_index) {
  const std::uint64_t lpn = meta.first_lpn + page_index;
  auto it = page_cache_.find(lpn);
  if (it != page_cache_.end()) return it->second;
  auto entries = ReadSSTablePage(ftl_, meta, page_index);
  if (!entries.ok()) return entries.status();
  auto page = std::make_shared<const std::vector<SSTableEntry>>(
      std::move(entries).value());
  page_cache_.emplace(lpn, page);
  page_cache_fifo_.push_back(lpn);
  while (page_cache_fifo_.size() > config_.page_cache_pages) {
    page_cache_.erase(page_cache_fifo_.front());
    page_cache_fifo_.pop_front();
  }
  return page;
}

void LsmTree::InvalidatePages(const SSTableMeta& meta) {
  for (std::uint32_t p = 0; p < meta.page_count; ++p) {
    page_cache_.erase(meta.first_lpn + p);
  }
}

Result<const ValueRef*> LsmTree::FindInTable(Table& table,
                                             const std::string& key,
                                             ValueRef* storage) {
  const SSTableMeta& meta = table.meta;
  if (key < meta.min_key || meta.max_key < key) {
    return static_cast<const ValueRef*>(nullptr);
  }
  if (!meta.bloom.MayContain(key)) {
    bloom_skip_counter_->Increment();
    return static_cast<const ValueRef*>(nullptr);
  }
  auto search = [&](const std::vector<SSTableEntry>& entries) -> const ValueRef* {
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const SSTableEntry& e, const std::string& k) { return e.key < k; });
    if (pos != entries.end() && pos->key == key) {
      *storage = pos->ref;
      return storage;
    }
    return nullptr;
  };
  if (table.cache != nullptr) {
    return search(*table.cache);
  }
  const int page = meta.PageForKey(key);
  if (page < 0) return static_cast<const ValueRef*>(nullptr);
  auto entries = LoadPage(meta, static_cast<std::uint32_t>(page));
  if (!entries.ok()) return entries.status();
  return search(*entries.value());
}

Result<ValueRef> LsmTree::Get(const std::string& key) {
  if (const ValueRef* ref = mem_.Get(key)) {
    if (ref->tombstone) return Status::NotFound();
    return *ref;
  }
  ValueRef storage;
  // L0 runs may overlap: newest (back) wins.
  auto& l0 = levels_[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    auto found = FindInTable(*it, key, &storage);
    if (!found.ok()) return found.status();
    if (found.value() != nullptr) {
      if (found.value()->tombstone) return Status::NotFound();
      return *found.value();
    }
  }
  // Deeper levels are sorted and disjoint.
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    auto& tables = levels_[level];
    auto t = std::partition_point(
        tables.begin(), tables.end(),
        [&](const Table& tab) { return tab.meta.max_key < key; });
    if (t == tables.end() || key < t->meta.min_key) continue;
    auto found = FindInTable(*t, key, &storage);
    if (!found.ok()) return found.status();
    if (found.value() != nullptr) {
      if (found.value()->tombstone) return Status::NotFound();
      return *found.value();
    }
  }
  return Status::NotFound();
}

Result<std::shared_ptr<const std::vector<SSTableEntry>>> LsmTree::Load(
    Table& table) {
  if (table.cache == nullptr) {
    auto entries = ReadSSTable(ftl_, table.meta);
    if (!entries.ok()) return entries.status();
    table.cache = std::make_shared<const std::vector<SSTableEntry>>(
        std::move(entries).value());
  }
  return table.cache;
}

Status LsmTree::FlushMemTable() {
  if (mem_.empty()) return Status::Ok();
  flush_in_progress_ = true;
  // A flush that lands while L0 already sits at its compaction trigger is a
  // write stall: the inline compaction it forces happens on the caller's
  // (virtual) time, exactly the MemTable-stall regime of RocksDB-style LSMs.
  if (levels_[0].size() + 1 >=
      static_cast<std::size_t>(config_.l0_compaction_trigger)) {
    ++memtable_stalls_;
    stall_counter_->Increment();
    if (event_log_ != nullptr) {
      event_log_->Emit(telemetry::EventType::kMemtableStall,
                       mem_.approximate_bytes(), levels_[0].size());
    }
  }
  std::vector<SSTableEntry> entries;
  entries.reserve(mem_.entry_count());
  for (auto it = mem_.Begin(); it.Valid(); it.Next()) {
    entries.push_back({it.key(), it.ref()});
  }
  auto meta = WriteSSTable(ftl_, next_table_id_++, next_lpn_, entries);
  if (!meta.ok()) {
    flush_in_progress_ = false;
    return meta.status();
  }
  next_lpn_ += meta.value().page_count;
  Table table;
  table.meta = meta.value();
  table.cache =
      std::make_shared<const std::vector<SSTableEntry>>(std::move(entries));
  levels_[0].push_back(std::move(table));
  mem_.Clear();
  ++memtable_flushes_;
  flush_counter_->Increment();
  const Status compacted = MaybeCompact();
  flush_in_progress_ = false;
  return compacted;
}

std::uint64_t LsmTree::LevelBytes(int level) const {
  std::uint64_t total = 0;
  for (const Table& t : levels_[static_cast<std::size_t>(level)]) {
    total += t.meta.encoded_bytes;
  }
  return total;
}

std::uint64_t LsmTree::TargetBytes(int level) const {
  double target = static_cast<double>(config_.level_base_bytes);
  for (int l = 1; l < level; ++l) target *= config_.level_size_ratio;
  return static_cast<std::uint64_t>(target);
}

std::uint64_t LsmTree::CompactionDebtBytes() const {
  std::uint64_t debt = 0;
  if (levels_[0].size() >=
      static_cast<std::size_t>(config_.l0_compaction_trigger)) {
    debt += LevelBytes(0);
  }
  for (int level = 1; level + 1 < config_.max_levels; ++level) {
    if (levels_[static_cast<std::size_t>(level)].empty()) continue;
    const std::uint64_t bytes = LevelBytes(level);
    const std::uint64_t target = TargetBytes(level);
    if (bytes > target) debt += bytes - target;
  }
  return debt;
}

bool LsmTree::TargetIsBottomMost(int target_level) const {
  for (std::size_t l = static_cast<std::size_t>(target_level) + 1;
       l < levels_.size(); ++l) {
    if (!levels_[l].empty()) return false;
  }
  return true;
}

Status LsmTree::DropTable(const Table& table) {
  InvalidatePages(table.meta);
  // Do NOT trim yet: the last durable manifest may still reference this
  // table; a power cycle would otherwise resurrect dangling entries.
  pending_drops_.push_back(table.meta);
  return Status::Ok();
}

Status LsmTree::TrimPendingDrops() {
  for (const SSTableMeta& meta : pending_drops_) {
    for (std::uint32_t p = 0; p < meta.page_count; ++p) {
      BANDSLIM_RETURN_IF_ERROR(ftl_->Trim(meta.first_lpn + p));
    }
  }
  pending_drops_.clear();
  return Status::Ok();
}

Status LsmTree::WriteMerged(std::vector<SSTableEntry> merged, int target_level,
                            std::uint64_t* bytes_written) {
  auto& target = levels_[static_cast<std::size_t>(target_level)];
  for (auto& out : SplitRun(std::move(merged), config_.sstable_target_bytes)) {
    auto meta = WriteSSTable(ftl_, next_table_id_++, next_lpn_, out);
    if (!meta.ok()) return meta.status();
    if (bytes_written != nullptr) *bytes_written += meta.value().encoded_bytes;
    next_lpn_ += meta.value().page_count;
    Table table;
    table.meta = meta.value();
    table.cache =
        std::make_shared<const std::vector<SSTableEntry>>(std::move(out));
    auto pos = std::lower_bound(target.begin(), target.end(), table.meta.min_key,
                                [](const Table& t, const std::string& k) {
                                  return t.meta.min_key < k;
                                });
    target.insert(pos, std::move(table));
  }
  return Status::Ok();
}

Status LsmTree::CompactL0() {
  auto& l0 = levels_[0];
  if (l0.empty()) return Status::Ok();
  compaction_in_progress_ = true;
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kCompactionStart, 0, l0.size());
  }
  std::string lo = l0.front().meta.min_key;
  std::string hi = l0.front().meta.max_key;
  for (const Table& t : l0) {
    lo = std::min(lo, t.meta.min_key);
    hi = std::max(hi, t.meta.max_key);
  }

  std::vector<const std::vector<SSTableEntry>*> runs;
  std::vector<std::shared_ptr<const std::vector<SSTableEntry>>> keepalive;
  // Newest L0 run first.
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    auto run = Load(*it);
    if (!run.ok()) return run.status();
    keepalive.push_back(run.value());
    runs.push_back(keepalive.back().get());
  }
  // Overlapping L1 tables form one older, disjoint run.
  auto& l1 = levels_[1];
  std::vector<SSTableEntry> l1_run;
  std::vector<std::size_t> l1_consumed;
  for (std::size_t i = 0; i < l1.size(); ++i) {
    if (!l1[i].meta.Overlaps(lo, hi)) continue;
    auto run = Load(l1[i]);
    if (!run.ok()) return run.status();
    l1_run.insert(l1_run.end(), run.value()->begin(), run.value()->end());
    l1_consumed.push_back(i);
  }
  if (!l1_run.empty()) runs.push_back(&l1_run);

  std::vector<SSTableEntry> merged = MergeRuns(runs, TargetIsBottomMost(1));

  for (const Table& t : l0) BANDSLIM_RETURN_IF_ERROR(DropTable(t));
  l0.clear();
  for (auto it = l1_consumed.rbegin(); it != l1_consumed.rend(); ++it) {
    BANDSLIM_RETURN_IF_ERROR(DropTable(l1[*it]));
    l1.erase(l1.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  std::uint64_t bytes_written = 0;
  if (!merged.empty()) {
    BANDSLIM_RETURN_IF_ERROR(WriteMerged(std::move(merged), 1, &bytes_written));
  }
  ++compactions_run_;
  compaction_counter_->Increment();
  compaction_bytes_written_ += bytes_written;
  compaction_bytes_counter_->Add(bytes_written);
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kCompactionEnd, 0, bytes_written);
  }
  compaction_in_progress_ = false;
  return Status::Ok();
}

Status LsmTree::CompactLevel(int level) {
  auto& src = levels_[static_cast<std::size_t>(level)];
  if (src.empty()) return Status::Ok();
  compaction_in_progress_ = true;
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kCompactionStart,
                     static_cast<std::uint64_t>(level), src.size());
  }
  // Victim: first table (simple deterministic rotation — tables re-enter
  // sorted by key, so repeated picks sweep the key space).
  Table victim = std::move(src.front());
  src.erase(src.begin());

  auto victim_run = Load(victim);
  if (!victim_run.ok()) return victim_run.status();

  auto& next = levels_[static_cast<std::size_t>(level) + 1];
  std::vector<SSTableEntry> next_run;
  std::vector<std::size_t> consumed;
  for (std::size_t i = 0; i < next.size(); ++i) {
    if (!next[i].meta.Overlaps(victim.meta.min_key, victim.meta.max_key)) continue;
    auto run = Load(next[i]);
    if (!run.ok()) return run.status();
    next_run.insert(next_run.end(), run.value()->begin(), run.value()->end());
    consumed.push_back(i);
  }

  std::vector<const std::vector<SSTableEntry>*> runs;
  runs.push_back(victim_run.value().get());
  if (!next_run.empty()) runs.push_back(&next_run);
  std::vector<SSTableEntry> merged =
      MergeRuns(runs, TargetIsBottomMost(level + 1));

  BANDSLIM_RETURN_IF_ERROR(DropTable(victim));
  for (auto it = consumed.rbegin(); it != consumed.rend(); ++it) {
    BANDSLIM_RETURN_IF_ERROR(DropTable(next[*it]));
    next.erase(next.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  std::uint64_t bytes_written = 0;
  if (!merged.empty()) {
    BANDSLIM_RETURN_IF_ERROR(
        WriteMerged(std::move(merged), level + 1, &bytes_written));
  }
  ++compactions_run_;
  compaction_counter_->Increment();
  compaction_bytes_written_ += bytes_written;
  compaction_bytes_counter_->Add(bytes_written);
  if (event_log_ != nullptr) {
    event_log_->Emit(telemetry::EventType::kCompactionEnd,
                     static_cast<std::uint64_t>(level), bytes_written);
  }
  compaction_in_progress_ = false;
  return Status::Ok();
}

Status LsmTree::MaybeCompact() {
  for (int pass = 0; pass < 64; ++pass) {
    bool did_work = false;
    if (levels_[0].size() >=
        static_cast<std::size_t>(config_.l0_compaction_trigger)) {
      BANDSLIM_RETURN_IF_ERROR(CompactL0());
      did_work = true;
    }
    for (int level = 1; level + 1 < config_.max_levels; ++level) {
      if (!levels_[static_cast<std::size_t>(level)].empty() &&
          LevelBytes(level) > TargetBytes(level)) {
        BANDSLIM_RETURN_IF_ERROR(CompactLevel(level));
        did_work = true;
      }
    }
    if (!did_work) return Status::Ok();
  }
  return Status::Ok();  // Bounded effort; remaining debt clears on later ops.
}

Result<bool> LsmTree::CompactStep(std::size_t l0_min_runs) {
  if (l0_min_runs < 1) l0_min_runs = 1;
  if (levels_[0].size() >= l0_min_runs) {
    BANDSLIM_RETURN_IF_ERROR(CompactL0());
    return true;
  }
  for (int level = 1; level + 1 < config_.max_levels; ++level) {
    if (!levels_[static_cast<std::size_t>(level)].empty() &&
        LevelBytes(level) > TargetBytes(level)) {
      BANDSLIM_RETURN_IF_ERROR(CompactLevel(level));
      return true;
    }
  }
  return false;
}

Status LsmTree::Checkpoint(std::uint64_t cookie) {
  BANDSLIM_RETURN_IF_ERROR(FlushMemTable());
  Bytes stream;
  PutU32(&stream, kManifestMagic);
  PutU32(&stream, 0);  // Page count, patched below.
  PutU64(&stream, cookie);
  PutU64(&stream, next_table_id_);
  PutU64(&stream, next_lpn_);
  PutU32(&stream, static_cast<std::uint32_t>(levels_.size()));
  for (const auto& level : levels_) {
    PutU32(&stream, static_cast<std::uint32_t>(level.size()));
    for (const Table& t : level) EncodeMeta(&stream, t.meta);
  }
  const std::uint32_t pages =
      static_cast<std::uint32_t>(CeilDiv(stream.size(), kNandPageSize));
  for (int i = 0; i < 4; ++i) {
    stream[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(pages >> (8 * i));
  }
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::size_t off = static_cast<std::size_t>(p) * kNandPageSize;
    const std::size_t n = std::min(kNandPageSize, stream.size() - off);
    BANDSLIM_RETURN_IF_ERROR(ftl_->Write(kManifestLpn + p,
                                         ByteSpan(stream).subspan(off, n),
                                         ftl::Stream::kLsm, /*retain=*/true));
  }
  // The new manifest is durable: pages referenced only by older manifests
  // can now be reclaimed.
  return TrimPendingDrops();
}

Result<std::uint64_t> LsmTree::Restore() {
  if (!ftl_->IsMapped(kManifestLpn)) {
    return Status::NotFound("no manifest");
  }
  Bytes first(kNandPageSize);
  BANDSLIM_RETURN_IF_ERROR(ftl_->Read(kManifestLpn, MutByteSpan(first)));
  std::size_t offset = 0;
  std::uint32_t magic = 0;
  std::uint32_t pages = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(ByteSpan(first), &offset, &magic));
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  BANDSLIM_RETURN_IF_ERROR(GetU32(ByteSpan(first), &offset, &pages));
  Bytes stream(static_cast<std::size_t>(pages) * kNandPageSize);
  std::copy(first.begin(), first.end(), stream.begin());
  for (std::uint32_t p = 1; p < pages; ++p) {
    BANDSLIM_RETURN_IF_ERROR(ftl_->Read(
        kManifestLpn + p,
        MutByteSpan(stream).subspan(static_cast<std::size_t>(p) * kNandPageSize,
                                    kNandPageSize)));
  }
  std::uint64_t cookie = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU64(ByteSpan(stream), &offset, &cookie));
  BANDSLIM_RETURN_IF_ERROR(GetU64(ByteSpan(stream), &offset, &next_table_id_));
  BANDSLIM_RETURN_IF_ERROR(GetU64(ByteSpan(stream), &offset, &next_lpn_));
  std::uint32_t num_levels = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(ByteSpan(stream), &offset, &num_levels));
  levels_.assign(num_levels, {});
  for (std::uint32_t l = 0; l < num_levels; ++l) {
    std::uint32_t count = 0;
    BANDSLIM_RETURN_IF_ERROR(GetU32(ByteSpan(stream), &offset, &count));
    for (std::uint32_t i = 0; i < count; ++i) {
      Table t;
      BANDSLIM_RETURN_IF_ERROR(DecodeMeta(ByteSpan(stream), &offset, &t.meta));
      levels_[l].push_back(std::move(t));
    }
  }
  mem_.Clear();
  return cookie;
}

Result<std::unique_ptr<LsmTree::Iterator>> LsmTree::NewIterator() {
  // Materialize a merged snapshot: MemTable (newest), then L0 newest-first,
  // then each deeper level as one disjoint run.
  std::vector<SSTableEntry> mem_run;
  mem_run.reserve(mem_.entry_count());
  for (auto it = mem_.Begin(); it.Valid(); it.Next()) {
    mem_run.push_back({it.key(), it.ref()});
  }
  std::vector<const std::vector<SSTableEntry>*> runs;
  std::vector<std::shared_ptr<const std::vector<SSTableEntry>>> keepalive;
  std::vector<std::vector<SSTableEntry>> level_runs;
  runs.push_back(&mem_run);
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    auto run = Load(*it);
    if (!run.ok()) return run.status();
    keepalive.push_back(run.value());
    runs.push_back(keepalive.back().get());
  }
  level_runs.reserve(levels_.size());
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    std::vector<SSTableEntry> concat;
    for (Table& t : levels_[level]) {
      auto run = Load(t);
      if (!run.ok()) return run.status();
      concat.insert(concat.end(), run.value()->begin(), run.value()->end());
    }
    if (!concat.empty()) level_runs.push_back(std::move(concat));
  }
  for (const auto& r : level_runs) runs.push_back(&r);

  auto iter = std::unique_ptr<Iterator>(new Iterator());
  iter->entries_ = MergeRuns(runs, /*drop_tombstones=*/true);
  return iter;
}

void LsmTree::Iterator::Seek(const std::string& target) {
  pos_ = static_cast<std::size_t>(
      std::lower_bound(entries_.begin(), entries_.end(), target,
                       [](const SSTableEntry& e, const std::string& k) {
                         return e.key < k;
                       }) -
      entries_.begin());
}

Status LsmTree::ForEachLive(
    const std::function<void(const std::string&, const ValueRef&)>& fn) {
  auto iter = NewIterator();
  if (!iter.ok()) return iter.status();
  for (auto& it = *iter.value(); it.Valid(); it.Next()) {
    fn(it.key(), it.ref());
  }
  return Status::Ok();
}

}  // namespace bandslim::lsm
