// The in-device LSM-tree with key-value separation (Sections 2.1, 3.4):
// a skiplist MemTable over (key -> vLog reference) entries, flushed to
// leveled SSTables stored on NAND through the FTL. Compactions merge
// reference entries only — values stay in the vLog — but their NAND I/O is
// real and shows up in the write-amplification figures (Section 2.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ftl/ftl.h"
#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "stats/metrics.h"
#include "telemetry/event_log.h"

namespace bandslim::lsm {

// Logical-page namespace partitions (the FTL maps a flat logical space;
// the vLog owns low page numbers).
inline constexpr std::uint64_t kLsmLpnBase = 1ULL << 40;
inline constexpr std::uint64_t kManifestLpn = 1ULL << 41;

struct LsmConfig {
  std::size_t memtable_limit_bytes = 1 << 20;
  int l0_compaction_trigger = 4;
  std::uint64_t level_base_bytes = 4ULL << 20;  // L1 target size.
  double level_size_ratio = 10.0;
  std::uint64_t sstable_target_bytes = 1ULL << 20;
  int max_levels = 7;
  std::uint64_t seed = 0x5eed;
  // Device-DRAM cache of decoded SSTable pages serving point lookups.
  std::size_t page_cache_pages = 128;
};

class LsmTree {
 public:
  // `event_log` may be null (telemetry disabled): every emit site is a
  // single pointer test and no simulated state depends on it.
  LsmTree(ftl::PageFtl* ftl, stats::MetricsRegistry* metrics,
          LsmConfig config = {}, telemetry::EventLog* event_log = nullptr);

  Status Put(const std::string& key, const ValueRef& ref);
  Status Delete(const std::string& key);
  // NotFound covers both absent and tombstoned keys.
  Result<ValueRef> Get(const std::string& key);

  // Flushes the MemTable to an L0 SSTable (no-op when empty) and runs any
  // due compactions.
  Status FlushMemTable();

  // Persists the manifest (level layout + allocation cursors + an opaque
  // caller cookie, used for the vLog tail) after flushing the MemTable.
  Status Checkpoint(std::uint64_t cookie);
  // Rebuilds the level layout from the manifest; returns the cookie.
  Result<std::uint64_t> Restore();

  // Snapshot iterator over live entries in key order (tombstones and
  // shadowed versions elided) — the device side of SEEK/NEXT.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    const std::string& key() const { return entries_[pos_].key; }
    const ValueRef& ref() const { return entries_[pos_].ref; }
    void Next() { ++pos_; }
    void Seek(const std::string& target);

   private:
    friend class LsmTree;
    std::vector<SSTableEntry> entries_;
    std::size_t pos_ = 0;
  };
  Result<std::unique_ptr<Iterator>> NewIterator();

  // Visits every live entry (vLog GC liveness scan).
  Status ForEachLive(
      const std::function<void(const std::string&, const ValueRef&)>& fn);

  // --- introspection ---------------------------------------------------
  std::size_t memtable_entries() const { return mem_.entry_count(); }
  std::size_t memtable_bytes() const { return mem_.approximate_bytes(); }
  int level_count() const { return static_cast<int>(levels_.size()); }
  std::size_t TableCount(int level) const { return levels_[static_cast<std::size_t>(level)].size(); }
  std::uint64_t LevelBytes(int level) const;
  std::uint64_t compactions_run() const { return compactions_run_; }
  std::uint64_t memtable_flushes() const { return memtable_flushes_; }
  // Tables dropped from the live set still awaiting trim at the next
  // Checkpoint() — the device's immutable-table queue depth.
  std::size_t pending_trim_tables() const { return pending_drops_.size(); }
  // Bytes the compactor still owes, mirroring MaybeCompact()'s triggers
  // exactly: all of L0 once it reaches the compaction trigger, plus each
  // deeper level's overage past its target size. Nonzero after a flush only
  // when the 64-pass bounded-effort budget was exhausted (or mid-command,
  // which the sampler never observes on the synchronous path).
  std::uint64_t CompactionDebtBytes() const;
  std::uint64_t memtable_stalls() const { return memtable_stalls_; }
  std::uint64_t compaction_bytes_written() const {
    return compaction_bytes_written_;
  }
  // True while the corresponding synchronous operation is on the stack
  // (visible to samplers invoked from inside it, e.g. via GC polling).
  bool flush_in_progress() const { return flush_in_progress_; }
  bool compaction_in_progress() const { return compaction_in_progress_; }

  // --- closed-loop control hooks ---------------------------------------
  // Flush admission: extra MemTable headroom past the configured limit.
  // While nonzero, Put/Delete defer the inline flush until the MemTable
  // reaches limit + extra — the controller trades bounded extra device
  // DRAM for not stacking a flush (and its inline compaction cascade) onto
  // a tree that is already behind. 0 restores the configured behaviour.
  void SetFlushDeferralBytes(std::size_t extra) {
    flush_deferral_bytes_ = extra;
  }
  std::size_t flush_deferral_bytes() const { return flush_deferral_bytes_; }

  // One increment of paced background compaction: merges all L0 runs once
  // L0 holds at least `l0_min_runs` of them, else relieves the first level
  // above its target size. Returns whether any merge actually ran. Issued
  // from the controller between ops so the inline MaybeCompact() cascade
  // inside a flush finds the tree already tidy.
  Result<bool> CompactStep(std::size_t l0_min_runs);

 private:
  struct Table {
    SSTableMeta meta;
    // Whole-table cache: present for freshly written tables (still in
    // DRAM) and for compaction inputs; point lookups otherwise go through
    // the page cache.
    std::shared_ptr<const std::vector<SSTableEntry>> cache;
  };

  Result<std::shared_ptr<const std::vector<SSTableEntry>>> Load(Table& table);
  // Point lookup within one table: bloom -> fence keys -> one page read
  // (served from the page cache when possible). nullptr = not in table.
  Result<const ValueRef*> FindInTable(Table& table, const std::string& key,
                                      ValueRef* storage);
  Result<std::shared_ptr<const std::vector<SSTableEntry>>> LoadPage(
      const SSTableMeta& meta, std::uint32_t page_index);
  void InvalidatePages(const SSTableMeta& meta);
  // Physically trims pages of dropped tables. Deferred until the next
  // Checkpoint(): the last durable manifest may still reference them, and
  // trimming earlier would break power-cycle recovery.
  Status TrimPendingDrops();
  Status MaybeCompact();
  Status CompactL0();
  Status CompactLevel(int level);
  // Merges `runs` (newest first) into `target_level`, replacing the tables
  // listed in `consumed` (level, index pairs sorted for removal).
  // `bytes_written` (optional) accumulates the encoded bytes of every
  // SSTable produced.
  Status WriteMerged(std::vector<SSTableEntry> merged, int target_level,
                     std::uint64_t* bytes_written = nullptr);
  bool TargetIsBottomMost(int target_level) const;
  Status DropTable(const Table& table);
  std::uint64_t TargetBytes(int level) const;

  ftl::PageFtl* ftl_;
  LsmConfig config_;
  MemTable mem_;
  std::vector<std::vector<Table>> levels_;  // levels_[0]: oldest..newest runs.
  // Tables removed from the live set whose pages await the next checkpoint.
  std::vector<SSTableMeta> pending_drops_;
  // Decoded-page cache (FIFO eviction), keyed by logical page number.
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<SSTableEntry>>>
      page_cache_;
  std::deque<std::uint64_t> page_cache_fifo_;
  std::uint64_t next_table_id_ = 1;
  std::uint64_t next_lpn_ = kLsmLpnBase;
  std::uint64_t compactions_run_ = 0;
  std::uint64_t memtable_flushes_ = 0;
  std::uint64_t memtable_stalls_ = 0;
  std::uint64_t compaction_bytes_written_ = 0;
  bool flush_in_progress_ = false;
  bool compaction_in_progress_ = false;
  std::size_t flush_deferral_bytes_ = 0;

  stats::Counter* compaction_counter_;
  stats::Counter* flush_counter_;
  stats::Counter* bloom_skip_counter_;
  stats::Counter* stall_counter_;
  stats::Counter* compaction_bytes_counter_;
  telemetry::EventLog* event_log_;
};

}  // namespace bandslim::lsm
