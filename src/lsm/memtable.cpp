#include "lsm/memtable.h"

namespace bandslim::lsm {

MemTable::MemTable(std::uint64_t seed) : rng_(seed) {
  head_ = std::make_unique<Node>();
  head_->next.assign(kMaxHeight, nullptr);
}

int MemTable::RandomHeight() {
  // Geometric heights with p = 1/4, as in LevelDB.
  int height = 1;
  while (height < kMaxHeight && rng_.Below(4) == 0) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(const std::string& key,
                                             Node** prev) const {
  Node* node = head_.get();
  for (int level = height_ - 1; level >= 0; --level) {
    while (node->next[level] != nullptr && node->next[level]->key < key) {
      node = node->next[level];
    }
    if (prev != nullptr) prev[level] = node;
  }
  return node->next[0];
}

void MemTable::Put(const std::string& key, const ValueRef& ref) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_.get();
  Node* found = FindGreaterOrEqual(key, prev);
  if (found != nullptr && found->key == key) {
    found->ref = ref;
    return;
  }
  const int height = RandomHeight();
  if (height > height_) height_ = height;
  auto node = std::make_unique<Node>();
  node->key = key;
  node->ref = ref;
  node->next.assign(static_cast<std::size_t>(height), nullptr);
  for (int level = 0; level < height; ++level) {
    node->next[static_cast<std::size_t>(level)] =
        prev[level]->next[static_cast<std::size_t>(level)];
    prev[level]->next[static_cast<std::size_t>(level)] = node.get();
  }
  ++count_;
  approx_bytes_ += key.size() + sizeof(ValueRef) +
                   static_cast<std::size_t>(height) * sizeof(Node*) +
                   sizeof(Node);
  arena_.push_back(std::move(node));
}

const ValueRef* MemTable::Get(const std::string& key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->key == key) return &node->ref;
  return nullptr;
}

void MemTable::Clear() {
  arena_.clear();
  head_->next.assign(kMaxHeight, nullptr);
  height_ = 1;
  count_ = 0;
  approx_bytes_ = 0;
}

MemTable::Iterator MemTable::Seek(const std::string& from) const {
  return Iterator(FindGreaterOrEqual(from, nullptr));
}

}  // namespace bandslim::lsm
