#include "lsm/memtable.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace bandslim::lsm {

MemTable::MemTable(std::uint64_t seed) : rng_(seed) {
  head_ = std::make_unique<Node>();  // Node::next zero-initializes.
}

int MemTable::RandomHeight() {
  // Geometric heights with p = 1/4, as in LevelDB.
  int height = 1;
  while (height < kMaxHeight && rng_.Below(4) == 0) ++height;
  return height;
}

std::uint64_t MemTable::PrefixOf(const std::string& key) {
  std::uint64_t p = 0;
  std::memcpy(&p, key.data(), std::min<std::size_t>(8, key.size()));
  if constexpr (std::endian::native == std::endian::little) {
    p = __builtin_bswap64(p);
  }
  return p;
}

MemTable::Node* MemTable::FindGreaterOrEqual(const std::string& key,
                                             Node** prev) const {
  const std::uint64_t kp = PrefixOf(key);
  Node* node = head_.get();
  for (int level = height_ - 1; level >= 0; --level) {
    Node* next = node->next[level];
    while (next != nullptr &&
           (next->key_prefix < kp ||
            (next->key_prefix == kp && next->key < key))) {
      node = next;
      next = node->next[level];
    }
    if (prev != nullptr) prev[level] = node;
  }
  return node->next[0];
}

void MemTable::Put(const std::string& key, const ValueRef& ref) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_.get();
  Node* found = FindGreaterOrEqual(key, prev);
  if (found != nullptr && found->key == key) {
    found->ref = ref;
    return;
  }
  const int height = RandomHeight();
  if (height > height_) height_ = height;
  auto node = std::make_unique<Node>();
  node->key = key;
  node->key_prefix = PrefixOf(key);
  node->ref = ref;
  for (int level = 0; level < height; ++level) {
    node->next[static_cast<std::size_t>(level)] =
        prev[level]->next[static_cast<std::size_t>(level)];
    prev[level]->next[static_cast<std::size_t>(level)] = node.get();
  }
  ++count_;
  // Footprint accounting deliberately models the previous layout (node
  // header plus a height-entry heap tower) rather than sizeof(Node): the
  // total drives the flush threshold, and the deterministic timing built on
  // top of it must not move when the in-memory representation does.
  static constexpr std::size_t kAccountedNodeBytes =
      sizeof(std::string) + sizeof(ValueRef) + sizeof(std::vector<Node*>);
  approx_bytes_ += key.size() + sizeof(ValueRef) +
                   static_cast<std::size_t>(height) * sizeof(Node*) +
                   kAccountedNodeBytes;
  arena_.push_back(std::move(node));
}

const ValueRef* MemTable::Get(const std::string& key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->key == key) return &node->ref;
  return nullptr;
}

void MemTable::Clear() {
  arena_.clear();
  head_->next.fill(nullptr);
  height_ = 1;
  count_ = 0;
  approx_bytes_ = 0;
}

MemTable::Iterator MemTable::Seek(const std::string& from) const {
  return Iterator(FindGreaterOrEqual(from, nullptr));
}

}  // namespace bandslim::lsm
