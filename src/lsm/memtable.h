// MemTable: the in-memory component of the device LSM-tree (Figure 2),
// mapping keys to vLog value references. Implemented as a classic skiplist
// with deterministic (seeded) tower heights so runs reproduce exactly.
// Entries are (key -> address, size) — values themselves live in the vLog;
// this is the key-value separation the paper builds on (Section 2.1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "vlog/address.h"

namespace bandslim::lsm {

struct ValueRef {
  vlog::VlogAddr addr = 0;
  std::uint32_t size = 0;
  bool tombstone = false;
};

class MemTable {
 private:
  struct Node {
    std::string key;
    // First 8 key bytes, big-endian, zero-padded: a single integer compare
    // orders two nodes whenever their prefixes differ (zero-padded
    // big-endian prefix order agrees with lexicographic order in that
    // case); the search loop falls back to a full key compare only on a
    // prefix tie.
    std::uint64_t key_prefix = 0;
    ValueRef ref;
    // Tower of forward pointers, inline in the node: the search loop then
    // costs one pointer chase per step instead of two (node -> heap tower
    // -> next node). Slots above the node's drawn height stay null and are
    // never followed. approximate_bytes() still accounts the drawn height,
    // not this fixed array, so flush thresholds are unchanged.
    std::array<Node*, 12> next{};
  };

 public:
  explicit MemTable(std::uint64_t seed = 0x5eed);

  // Inserts or overwrites.
  void Put(const std::string& key, const ValueRef& ref);
  void Delete(const std::string& key) { Put(key, ValueRef{0, 0, true}); }

  // Returns the entry (including tombstones) or nullptr.
  const ValueRef* Get(const std::string& key) const;

  std::size_t entry_count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Approximate DRAM footprint: keys + refs + tower pointers.
  std::size_t approximate_bytes() const { return approx_bytes_; }

  void Clear();

  // Forward iteration in key order, starting at the first key >= `from`.
  class Iterator {
   public:
    bool Valid() const { return node_ != nullptr; }
    const std::string& key() const { return node_->key; }
    const ValueRef& ref() const { return node_->ref; }
    void Next() { node_ = node_->next[0]; }

   private:
    friend class MemTable;
    explicit Iterator(const Node* node) : node_(node) {}
    const Node* node_;
  };
  Iterator Seek(const std::string& from) const;
  Iterator Begin() const { return Iterator(head_->next[0]); }

 private:
  static constexpr int kMaxHeight = 12;
  static_assert(kMaxHeight == std::tuple_size<decltype(Node::next)>::value,
                "tower array must cover every level");

  int RandomHeight();
  static std::uint64_t PrefixOf(const std::string& key);
  // First node with key >= `key`; when `prev` is non-null it receives the
  // last node with key < `key` at every level.
  Node* FindGreaterOrEqual(const std::string& key, Node** prev) const;

  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> arena_;
  int height_ = 1;
  std::size_t count_ = 0;
  std::size_t approx_bytes_ = 0;
  Xoshiro256 rng_;
};

}  // namespace bandslim::lsm
