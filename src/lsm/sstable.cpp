#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>

namespace bandslim::lsm {

void PutU32(Bytes* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(Bytes* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

Status GetU32(ByteSpan data, std::size_t* offset, std::uint32_t* v) {
  if (*offset + 4 > data.size()) return Status::Corruption("truncated u32");
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(data[*offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  *offset += 4;
  return Status::Ok();
}

Status GetU64(ByteSpan data, std::size_t* offset, std::uint64_t* v) {
  if (*offset + 8 > data.size()) return Status::Corruption("truncated u64");
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(data[*offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  *offset += 8;
  return Status::Ok();
}

void PutLengthPrefixed(Bytes* out, const std::string& s) {
  out->push_back(static_cast<std::uint8_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

Status GetLengthPrefixed(ByteSpan data, std::size_t* offset, std::string* s) {
  if (*offset >= data.size()) return Status::Corruption("truncated length byte");
  const std::size_t len = data[*offset];
  ++*offset;
  if (*offset + len > data.size()) return Status::Corruption("truncated string");
  s->assign(reinterpret_cast<const char*>(data.data() + *offset), len);
  *offset += len;
  return Status::Ok();
}

void EncodeEntry(Bytes* out, const SSTableEntry& entry) {
  PutLengthPrefixed(out, entry.key);
  PutU64(out, entry.ref.addr);
  PutU32(out, entry.ref.size);
  out->push_back(entry.ref.tombstone ? 1 : 0);
}

Status DecodeEntry(ByteSpan data, std::size_t* offset, SSTableEntry* out) {
  BANDSLIM_RETURN_IF_ERROR(GetLengthPrefixed(data, offset, &out->key));
  BANDSLIM_RETURN_IF_ERROR(GetU64(data, offset, &out->ref.addr));
  BANDSLIM_RETURN_IF_ERROR(GetU32(data, offset, &out->ref.size));
  if (*offset >= data.size()) return Status::Corruption("truncated flags");
  out->ref.tombstone = data[*offset] != 0;
  ++*offset;
  return Status::Ok();
}

int SSTableMeta::PageForKey(const std::string& key) const {
  // Last fence key <= key.
  auto it = std::upper_bound(fence_keys.begin(), fence_keys.end(), key);
  if (it == fence_keys.begin()) return -1;  // key < min_key.
  return static_cast<int>(it - fence_keys.begin()) - 1;
}

Result<SSTableMeta> WriteSSTable(ftl::PageFtl* ftl, std::uint64_t id,
                                 std::uint64_t first_lpn,
                                 const std::vector<SSTableEntry>& entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("empty SSTable");
  }
  SSTableMeta meta;
  meta.id = id;
  meta.first_lpn = first_lpn;
  meta.entry_count = static_cast<std::uint32_t>(entries.size());
  meta.min_key = entries.front().key;
  meta.max_key = entries.back().key;
  meta.bloom = BloomFilter(entries.size());

  Bytes page;
  std::size_t i = 0;
  std::uint32_t page_index = 0;
  while (i < entries.size()) {
    page.clear();
    PutU32(&page, kSSTableMagic);
    PutU32(&page, 0);  // Entry count, patched below (u32 keeps codec shared).
    std::uint32_t in_page = 0;
    meta.fence_keys.push_back(entries[i].key);
    while (i < entries.size() &&
           page.size() + EncodedEntrySize(entries[i]) <= kNandPageSize) {
      EncodeEntry(&page, entries[i]);
      meta.bloom.Add(entries[i].key);
      meta.encoded_bytes += EncodedEntrySize(entries[i]);
      ++in_page;
      ++i;
    }
    for (int b = 0; b < 4; ++b) {
      page[4 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(in_page >> (8 * b));
    }
    // SSTable pages are always retained: compaction must read them back.
    BANDSLIM_RETURN_IF_ERROR(ftl->Write(first_lpn + page_index, ByteSpan(page),
                                        ftl::Stream::kLsm, /*retain=*/true));
    ++page_index;
  }
  meta.page_count = page_index;
  return meta;
}

namespace {

Result<std::vector<SSTableEntry>> DecodePage(ByteSpan page) {
  std::size_t offset = 0;
  std::uint32_t magic = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(page, &offset, &magic));
  if (magic != kSSTableMagic) return Status::Corruption("bad SSTable magic");
  std::uint32_t count = 0;
  BANDSLIM_RETURN_IF_ERROR(GetU32(page, &offset, &count));
  std::vector<SSTableEntry> entries(count);
  for (std::uint32_t e = 0; e < count; ++e) {
    BANDSLIM_RETURN_IF_ERROR(DecodeEntry(page, &offset, &entries[e]));
  }
  return entries;
}

}  // namespace

Result<std::vector<SSTableEntry>> ReadSSTablePage(ftl::PageFtl* ftl,
                                                  const SSTableMeta& meta,
                                                  std::uint32_t page_index) {
  if (page_index >= meta.page_count) {
    return Status::InvalidArgument("page index out of range");
  }
  Bytes page(kNandPageSize);
  BANDSLIM_RETURN_IF_ERROR(
      ftl->Read(meta.first_lpn + page_index, MutByteSpan(page)));
  return DecodePage(ByteSpan(page));
}

Result<std::vector<SSTableEntry>> ReadSSTable(ftl::PageFtl* ftl,
                                              const SSTableMeta& meta) {
  std::vector<SSTableEntry> entries;
  entries.reserve(meta.entry_count);
  for (std::uint32_t p = 0; p < meta.page_count; ++p) {
    auto page = ReadSSTablePage(ftl, meta, p);
    if (!page.ok()) return page.status();
    for (SSTableEntry& e : page.value()) entries.push_back(std::move(e));
  }
  if (entries.size() != meta.entry_count) {
    return Status::Corruption("entry count mismatch");
  }
  return entries;
}

}  // namespace bandslim::lsm
