// SSTable: an immutable sorted run of (key -> vLog reference) entries,
// serialized across 16 KiB logical NAND pages through the FTL's LSM stream.
// With key-value separation the tables hold only references, so compaction
// never rewrites values (Section 2.1).
//
// On-NAND format is page-aligned (PinK-style): every 16 KiB page is
// self-contained, so a point lookup reads exactly one page. The table meta
// (kept in device DRAM and in the manifest) carries one fence key per page.
//
//   per page: [u32 magic][u16 entry_count]
//             entry*: [u8 key_len][key][u64 vlog_addr][u32 vsize][u8 flags]
//             [zero padding to 16 KiB]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ftl/ftl.h"
#include "lsm/bloom.h"
#include "lsm/memtable.h"

namespace bandslim::lsm {

struct SSTableEntry {
  std::string key;
  ValueRef ref;
};

struct SSTableMeta {
  std::uint64_t id = 0;
  std::uint64_t first_lpn = 0;
  std::uint32_t page_count = 0;
  std::uint32_t entry_count = 0;
  std::uint64_t encoded_bytes = 0;  // Serialized size (level-sizing metric).
  std::string min_key;
  std::string max_key;
  // DRAM-resident key filter: GETs for absent keys skip the table load.
  BloomFilter bloom;
  // First key of each page: a point lookup binary-searches these and reads
  // exactly one page.
  std::vector<std::string> fence_keys;

  bool Overlaps(const std::string& lo, const std::string& hi) const {
    return !(max_key < lo || hi < min_key);
  }

  // Index of the unique page that may hold `key`, or -1 when key < min_key.
  int PageForKey(const std::string& key) const;
};

inline constexpr std::uint32_t kSSTableMagic = 0x42534C4D;  // "BSLM"

// Serializes `entries` (must be sorted, unique keys) page-aligned starting
// at `first_lpn`. Charges one NAND program per page.
Result<SSTableMeta> WriteSSTable(ftl::PageFtl* ftl, std::uint64_t id,
                                 std::uint64_t first_lpn,
                                 const std::vector<SSTableEntry>& entries);

// Reads a table back, charging one NAND read per page.
Result<std::vector<SSTableEntry>> ReadSSTable(ftl::PageFtl* ftl,
                                              const SSTableMeta& meta);

// Reads and decodes one page of a table (one NAND read).
Result<std::vector<SSTableEntry>> ReadSSTablePage(ftl::PageFtl* ftl,
                                                  const SSTableMeta& meta,
                                                  std::uint32_t page_index);

// Flat (de)serialization of the entry stream, shared with the manifest.
void EncodeEntry(Bytes* out, const SSTableEntry& entry);
Status DecodeEntry(ByteSpan data, std::size_t* offset, SSTableEntry* out);

// Serialized size of one entry (key length byte + key + addr + size + flag).
inline std::uint64_t EncodedEntrySize(const SSTableEntry& e) {
  return 1 + e.key.size() + 8 + 4 + 1;
}

// Little-endian integer helpers used across LSM serialization.
void PutU32(Bytes* out, std::uint32_t v);
void PutU64(Bytes* out, std::uint64_t v);
Status GetU32(ByteSpan data, std::size_t* offset, std::uint32_t* v);
Status GetU64(ByteSpan data, std::size_t* offset, std::uint64_t* v);
void PutLengthPrefixed(Bytes* out, const std::string& s);
Status GetLengthPrefixed(ByteSpan data, std::size_t* offset, std::string* s);

}  // namespace bandslim::lsm
