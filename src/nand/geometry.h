// NAND flash geometry. The paper's testbed carries a 1 TB module with
// 4 channels x 8 ways and 16 KiB pages (Table 1). The simulator defaults to
// the same channel/way/page shape scaled to 64 GiB so reverse-map metadata
// stays small; geometry is fully configurable.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace bandslim::nand {

struct NandGeometry {
  std::uint32_t channels = 4;
  std::uint32_t ways = 8;            // Dies per channel.
  std::uint32_t blocks_per_die = 512;
  std::uint32_t pages_per_block = 256;
  std::size_t page_size = kNandPageSize;

  std::uint64_t dies() const {
    return static_cast<std::uint64_t>(channels) * ways;
  }
  std::uint64_t total_blocks() const { return dies() * blocks_per_die; }
  std::uint64_t total_pages() const {
    return total_blocks() * pages_per_block;
  }
  std::uint64_t capacity_bytes() const { return total_pages() * page_size; }

  // Flat physical page index helpers.
  std::uint64_t PageIndex(std::uint64_t block, std::uint32_t page) const {
    return block * pages_per_block + page;
  }
  std::uint64_t BlockOf(std::uint64_t phys_page) const {
    return phys_page / pages_per_block;
  }
  std::uint32_t PageInBlock(std::uint64_t phys_page) const {
    return static_cast<std::uint32_t>(phys_page % pages_per_block);
  }
};

}  // namespace bandslim::nand
