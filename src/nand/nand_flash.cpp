#include "nand/nand_flash.h"

#include <algorithm>
#include <cstring>

namespace bandslim::nand {

NandFlash::NandFlash(const NandGeometry& geometry, sim::VirtualClock* clock,
                     const sim::CostModel* cost, stats::MetricsRegistry* metrics)
    : geometry_(geometry),
      clock_(clock),
      cost_(cost),
      page_state_(geometry.total_pages(), 0),
      erase_counts_(geometry.total_blocks(), 0),
      die_free_at_(geometry.dies(), 0),
      programs_(metrics->GetCounter("nand.pages_programmed")),
      reads_(metrics->GetCounter("nand.pages_read")),
      erases_(metrics->GetCounter("nand.blocks_erased")) {}

Status NandFlash::Program(std::uint64_t phys_page, ByteSpan data,
                          bool retain_data) {
  if (phys_page >= geometry_.total_pages()) {
    return Status::InvalidArgument("program: physical page out of range");
  }
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("program: data larger than a NAND page");
  }
  if (page_state_[phys_page] != 0) {
    return Status::IoError("program-before-erase violation");
  }
  page_state_[phys_page] = 1;
  if (retain_data && !data.empty()) {
    data_[phys_page] = Bytes(data.begin(), data.end());
  }
  if (cost_->nand_async_program) {
    // Queue on the block's die; the issuing op does not wait.
    const std::uint64_t die = DieOf(geometry_.BlockOf(phys_page));
    const sim::Nanoseconds start =
        std::max(clock_->Now(), die_free_at_[die]);
    die_free_at_[die] = start + cost_->nand_program_ns;
    page_ready_at_[phys_page] = die_free_at_[die];
  } else {
    clock_->Advance(cost_->nand_program_ns);
  }
  ++pages_programmed_;
  programs_->Increment();
  return Status::Ok();
}

Status NandFlash::Read(std::uint64_t phys_page, MutByteSpan out) {
  if (phys_page >= geometry_.total_pages()) {
    return Status::InvalidArgument("read: physical page out of range");
  }
  if (out.size() > geometry_.page_size) {
    return Status::InvalidArgument("read: span larger than a NAND page");
  }
  if (page_state_[phys_page] == 0) {
    return Status::IoError("read of erased page");
  }
  // An in-flight program must land before the page is readable.
  auto ready = page_ready_at_.find(phys_page);
  if (ready != page_ready_at_.end()) {
    if (ready->second > clock_->Now()) {
      const sim::Nanoseconds wait = ready->second - clock_->Now();
      clock_->Advance(wait);
      ++read_stalls_;
      read_stall_ns_ += wait;
    }
    page_ready_at_.erase(ready);
  }
  auto it = data_.find(phys_page);
  if (it == data_.end()) {
    std::memset(out.data(), 0, out.size());  // Payload was not retained.
  } else {
    const std::size_t n = std::min(out.size(), it->second.size());
    std::memcpy(out.data(), it->second.data(), n);
    if (n < out.size()) std::memset(out.data() + n, 0, out.size() - n);
  }
  clock_->Advance(cost_->nand_read_ns);
  ++pages_read_;
  reads_->Increment();
  return Status::Ok();
}

Status NandFlash::Erase(std::uint64_t block) {
  if (block >= geometry_.total_blocks()) {
    return Status::InvalidArgument("erase: block out of range");
  }
  const std::uint64_t first = geometry_.PageIndex(block, 0);
  for (std::uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    page_state_[first + p] = 0;
    data_.erase(first + p);
    page_ready_at_.erase(first + p);
  }
  ++erase_counts_[block];
  if (cost_->nand_async_program) {
    const std::uint64_t die = DieOf(block);
    const sim::Nanoseconds start =
        std::max(clock_->Now(), die_free_at_[die]);
    die_free_at_[die] = start + cost_->nand_erase_ns;
  } else {
    clock_->Advance(cost_->nand_erase_ns);
  }
  ++blocks_erased_;
  erases_->Increment();
  return Status::Ok();
}

}  // namespace bandslim::nand
