#include "nand/nand_flash.h"

#include <algorithm>
#include <cstring>

namespace bandslim::nand {

NandFlash::NandFlash(const NandGeometry& geometry, sim::VirtualClock* clock,
                     const sim::CostModel* cost, stats::MetricsRegistry* metrics,
                     fault::FaultPlan* fault_plan, trace::Tracer* tracer)
    : geometry_(geometry),
      clock_(clock),
      cost_(cost),
      fault_plan_(fault_plan),
      tracer_(tracer),
      page_state_(geometry.total_pages(), 0),
      erase_counts_(geometry.total_blocks(), 0),
      die_free_at_(geometry.dies(), 0),
      channel_free_at_(geometry.channels, 0),
      die_busy_ns_(geometry.dies(), 0),
      channel_busy_ns_(geometry.channels, 0),
      die_pending_(geometry.dies()),
      programs_(metrics->RegisterCounter("nand.pages_programmed")),
      reads_(metrics->RegisterCounter("nand.pages_read")),
      erases_(metrics->RegisterCounter("nand.blocks_erased")),
      program_failures_counter_(
          metrics->RegisterCounter("nand.program_failures")),
      ecc_corrections_counter_(
          metrics->RegisterCounter("nand.ecc_corrections")) {}

void NandFlash::WaitForDieSlot(std::uint64_t die) {
  std::deque<sim::Nanoseconds>& pending = die_pending_[die];
  while (!pending.empty() && pending.front() <= clock_->Now()) {
    pending.pop_front();
  }
  if (cost_->nand_die_queue_depth == 0) return;  // Unbounded queues.
  while (pending.size() >= cost_->nand_die_queue_depth) {
    const sim::Nanoseconds wait = pending.front() - clock_->Now();
    clock_->AdvanceTo(pending.front());
    pending.pop_front();
    ++die_queue_stalls_;
    die_queue_stall_ns_ += wait;
  }
}

void NandFlash::BookProgramTiming(std::uint64_t phys_page) {
  if (cost_->nand_async_program) {
    // Channel/way scheduler: the page crosses the channel bus, then the die
    // programs it; the issuing op does not wait unless the die's command
    // queue is full.
    const std::uint64_t die = DieOf(geometry_.BlockOf(phys_page));
    const std::uint32_t channel = ChannelOf(die);
    WaitForDieSlot(die);
    const sim::Nanoseconds xfer_start =
        std::max(clock_->Now(), channel_free_at_[channel]);
    channel_free_at_[channel] = xfer_start + cost_->nand_channel_xfer_ns;
    channel_busy_ns_[channel] += cost_->nand_channel_xfer_ns;
    const sim::Nanoseconds prog_start =
        std::max(channel_free_at_[channel], die_free_at_[die]);
    die_free_at_[die] = prog_start + cost_->nand_program_ns;
    die_busy_ns_[die] += cost_->nand_program_ns;
    page_ready_at_[phys_page] = die_free_at_[die];
    die_pending_[die].push_back(die_free_at_[die]);
  } else {
    // Synchronous dispatch still occupies the die: another stream's time
    // frame must wait out an in-progress program. A single stream never
    // waits here (die_free_at_ trails its own clock).
    const std::uint64_t die = DieOf(geometry_.BlockOf(phys_page));
    clock_->AdvanceTo(die_free_at_[die]);
    clock_->Advance(cost_->nand_program_ns);
    die_free_at_[die] = clock_->Now();
    die_busy_ns_[die] += cost_->nand_program_ns;
  }
}

Status NandFlash::Program(std::uint64_t phys_page, ByteSpan data,
                          bool retain_data) {
  trace::SpanScope span(tracer_, trace::Category::kNandProgram,
                        geometry_.page_size);
  if (phys_page >= geometry_.total_pages()) {
    return Status::InvalidArgument("program: physical page out of range");
  }
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("program: data larger than a NAND page");
  }
  if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
    return Status::IoError("program: power lost");
  }
  if (page_state_[phys_page] != 0) {
    return Status::IoError("program-before-erase violation");
  }
  if (fault_plan_ != nullptr && fault_plan_->enabled() &&
      fault_plan_->NextProgramFails(
          erase_counts_[geometry_.BlockOf(phys_page)], phys_page)) {
    // The die works (and stays busy) for the full program before reporting
    // the failure; the page holds garbage until its block is erased.
    page_state_[phys_page] = 1;
    failed_pages_.insert(phys_page);
    BookProgramTiming(phys_page);
    ++program_failures_;
    program_failures_counter_->Increment();
    return Status::MediaError("program failed");
  }
  page_state_[phys_page] = 1;
  if (retain_data && !data.empty()) {
    data_[phys_page] = std::make_shared<const Bytes>(data.begin(), data.end());
  }
  BookProgramTiming(phys_page);
  ++pages_programmed_;
  programs_->Increment();
  return Status::Ok();
}

Status NandFlash::ReadImpl(std::uint64_t phys_page, std::size_t bytes,
                           std::shared_ptr<const Bytes>* payload,
                           bool* fetched) {
  trace::SpanScope span(tracer_, trace::Category::kNandRead, bytes);
  if (phys_page >= geometry_.total_pages()) {
    return Status::InvalidArgument("read: physical page out of range");
  }
  if (bytes > geometry_.page_size) {
    return Status::InvalidArgument("read: span larger than a NAND page");
  }
  if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
    return Status::IoError("read: power lost");
  }
  if (page_state_[phys_page] == 0) {
    return Status::IoError("read of erased page");
  }
  if (failed_pages_.contains(phys_page)) {
    return Status::MediaError("read of a failed-program page");
  }
  fault::FaultPlan::ReadOutcome outcome = fault::FaultPlan::ReadOutcome::kOk;
  if (fault_plan_ != nullptr && fault_plan_->enabled()) {
    outcome = fault_plan_->NextReadOutcome(
        erase_counts_[geometry_.BlockOf(phys_page)], phys_page);
  }
  // An in-flight program must land before the page is readable.
  auto ready = page_ready_at_.find(phys_page);
  if (ready != page_ready_at_.end()) {
    if (ready->second > clock_->Now()) {
      const sim::Nanoseconds wait = ready->second - clock_->Now();
      clock_->Advance(wait);
      ++read_stalls_;
      read_stall_ns_ += wait;
    }
    page_ready_at_.erase(ready);
  }
  auto it = data_.find(phys_page);
  *payload = it == data_.end() ? nullptr : it->second;
  *fetched = true;
  if (cost_->nand_async_program) {
    // Reads are synchronous to the caller but contend on the die and the
    // channel bus like any other operation.
    const std::uint64_t die = DieOf(geometry_.BlockOf(phys_page));
    const std::uint32_t channel = ChannelOf(die);
    clock_->AdvanceTo(die_free_at_[die]);
    const sim::Nanoseconds sense_end = clock_->Now() + cost_->nand_read_ns;
    die_free_at_[die] = sense_end;
    die_busy_ns_[die] += cost_->nand_read_ns;
    const sim::Nanoseconds xfer_start =
        std::max(sense_end, channel_free_at_[channel]);
    channel_free_at_[channel] = xfer_start + cost_->nand_channel_xfer_ns;
    channel_busy_ns_[channel] += cost_->nand_channel_xfer_ns;
    clock_->AdvanceTo(channel_free_at_[channel]);
  } else {
    const std::uint64_t die = DieOf(geometry_.BlockOf(phys_page));
    clock_->AdvanceTo(die_free_at_[die]);
    clock_->Advance(cost_->nand_read_ns);
    die_free_at_[die] = clock_->Now();
    die_busy_ns_[die] += cost_->nand_read_ns;
  }
  ++pages_read_;
  reads_->Increment();
  if (outcome == fault::FaultPlan::ReadOutcome::kUncorrectable) {
    ++read_uncorrectable_;
    return Status::MediaError("uncorrectable read error");
  }
  if (outcome == fault::FaultPlan::ReadOutcome::kCorrectable) {
    // ECC read-retry recovers the data at a latency penalty.
    clock_->Advance(fault_plan_->config().ecc_retry_ns);
    ++ecc_corrections_;
    ecc_corrections_counter_->Increment();
  }
  return Status::Ok();
}

Status NandFlash::Read(std::uint64_t phys_page, MutByteSpan out) {
  std::shared_ptr<const Bytes> payload;
  bool fetched = false;
  const Status st = ReadImpl(phys_page, out.size(), &payload, &fetched);
  // Mirror the historical behaviour: the buffer is filled whenever the read
  // reached the media (even when ECC then reports it uncorrectable), and
  // untouched when a pre-media check failed.
  if (fetched) {
    if (payload == nullptr) {
      std::memset(out.data(), 0, out.size());  // Payload was not retained.
    } else {
      const std::size_t n = std::min(out.size(), payload->size());
      std::memcpy(out.data(), payload->data(), n);
      if (n < out.size()) std::memset(out.data() + n, 0, out.size() - n);
    }
  }
  return st;
}

Status NandFlash::ReadView(std::uint64_t phys_page,
                           std::shared_ptr<const Bytes>* out) {
  std::shared_ptr<const Bytes> payload;
  bool fetched = false;
  BANDSLIM_RETURN_IF_ERROR(
      ReadImpl(phys_page, geometry_.page_size, &payload, &fetched));
  *out = std::move(payload);
  return Status::Ok();
}

Status NandFlash::Erase(std::uint64_t block) {
  trace::SpanScope span(tracer_, trace::Category::kNandErase);
  if (block >= geometry_.total_blocks()) {
    return Status::InvalidArgument("erase: block out of range");
  }
  if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
    return Status::IoError("erase: power lost");
  }
  if (fault_plan_ != nullptr && fault_plan_->enabled() &&
      fault_plan_->NextEraseFails(erase_counts_[block], block)) {
    // The die spends the erase time before reporting failure; page contents
    // are left as-is and the block is expected to be retired by the FTL.
    ++erase_counts_[block];
    const std::uint64_t die = DieOf(block);
    clock_->AdvanceTo(die_free_at_[die]);
    clock_->Advance(cost_->nand_erase_ns);
    die_free_at_[die] = clock_->Now();
    die_busy_ns_[die] += cost_->nand_erase_ns;
    ++erase_failures_;
    return Status::MediaError("erase failed");
  }
  const std::uint64_t first = geometry_.PageIndex(block, 0);
  for (std::uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    page_state_[first + p] = 0;
    data_.erase(first + p);
    page_ready_at_.erase(first + p);
    failed_pages_.erase(first + p);
  }
  ++erase_counts_[block];
  if (cost_->nand_async_program) {
    // No data crosses the channel; the die is busy for the erase.
    const std::uint64_t die = DieOf(block);
    WaitForDieSlot(die);
    const sim::Nanoseconds start =
        std::max(clock_->Now(), die_free_at_[die]);
    die_free_at_[die] = start + cost_->nand_erase_ns;
    die_busy_ns_[die] += cost_->nand_erase_ns;
    die_pending_[die].push_back(die_free_at_[die]);
  } else {
    const std::uint64_t die = DieOf(block);
    clock_->AdvanceTo(die_free_at_[die]);
    clock_->Advance(cost_->nand_erase_ns);
    die_free_at_[die] = clock_->Now();
    die_busy_ns_[die] += cost_->nand_erase_ns;
  }
  ++blocks_erased_;
  erases_->Increment();
  return Status::Ok();
}

}  // namespace bandslim::nand
