// NAND flash array model. Enforces the physical rules that make the FTL
// necessary: pages program in whole-page units, a page cannot be
// reprogrammed without erasing its block, and erases operate on blocks.
// Program/read/erase latencies come from the cost model; per-operation
// counters feed the paper's NAND I/O figures (Figs 4, 11, 12c).
//
// Payload retention: callers may program a page with `retain_data = false`,
// in which case only the page state (and byte count) is tracked and reads
// return zeros. Benches use this to sweep millions of multi-KiB values
// without materializing gigabytes of RAM; tests retain everything.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "nand/geometry.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "trace/trace.h"

namespace bandslim::nand {

enum class PageState : std::uint8_t { kErased = 0, kProgrammed = 1 };

class NandFlash {
 public:
  NandFlash(const NandGeometry& geometry, sim::VirtualClock* clock,
            const sim::CostModel* cost, stats::MetricsRegistry* metrics,
            fault::FaultPlan* fault_plan = nullptr,
            trace::Tracer* tracer = nullptr);

  const NandGeometry& geometry() const { return geometry_; }

  // Programs a physical page. `data` must be at most one page; shorter data
  // is implicitly zero-padded (the buffer always hands over full pages).
  // An injected program failure still occupies the die for the attempt,
  // leaves the page unreadable, and returns Status::MediaError.
  [[nodiscard]] Status Program(std::uint64_t phys_page, ByteSpan data,
                               bool retain_data);

  // Reads a physical page into `out` (up to one page). Injected ECC-
  // correctable errors succeed after a read-retry latency penalty;
  // uncorrectable errors return Status::MediaError.
  [[nodiscard]] Status Read(std::uint64_t phys_page, MutByteSpan out);

  // Zero-copy read: identical checks, fault draws, and timing charges to
  // Read(), but hands back the retained payload instead of copying a page.
  // `*out` becomes nullptr for pages programmed with retain_data = false
  // (their bytes read as zeros). The shared_ptr stays valid even if the
  // block is later erased or reprogrammed — exactly the lifetime a caller-
  // side copy would have had — because programs always install a fresh
  // immutable buffer.
  [[nodiscard]] Status ReadView(std::uint64_t phys_page,
                                std::shared_ptr<const Bytes>* out);

  [[nodiscard]] Status Erase(std::uint64_t block);

  PageState StateOf(std::uint64_t phys_page) const {
    return static_cast<PageState>(page_state_[phys_page]);
  }

  // Whether a programmed page's payload was retained (see class comment).
  bool HasRetainedData(std::uint64_t phys_page) const {
    return data_.contains(phys_page);
  }

  std::uint64_t pages_programmed() const { return pages_programmed_; }
  std::uint64_t pages_read() const { return pages_read_; }
  std::uint64_t blocks_erased() const { return blocks_erased_; }
  // Injected-fault outcomes (zero without a fault plan).
  std::uint64_t program_failures() const { return program_failures_; }
  std::uint64_t read_uncorrectable() const { return read_uncorrectable_; }
  std::uint64_t ecc_corrections() const { return ecc_corrections_; }
  std::uint64_t erase_failures() const { return erase_failures_; }
  std::uint32_t EraseCount(std::uint64_t block) const {
    return erase_counts_[block];
  }

  // Die (channel/way) that services a block: blocks stripe across dies.
  std::uint64_t DieOf(std::uint64_t block) const {
    return block % geometry_.dies();
  }
  // Channel bus a die hangs off: consecutive dies alternate channels, so
  // consecutive blocks spread across both dies *and* channels.
  std::uint32_t ChannelOf(std::uint64_t die) const {
    return static_cast<std::uint32_t>(die % geometry_.channels);
  }
  // Parallel-dispatch introspection: reads that had to stall on an
  // in-flight program, and the virtual time lost waiting.
  std::uint64_t read_stalls() const { return read_stalls_; }
  sim::Nanoseconds read_stall_ns() const { return read_stall_ns_; }
  // Issuers stalled by a full per-die command queue (backpressure), and the
  // virtual time lost waiting for a slot.
  std::uint64_t die_queue_stalls() const { return die_queue_stalls_; }
  sim::Nanoseconds die_queue_stall_ns() const { return die_queue_stall_ns_; }
  // When the given resource finishes its currently booked work.
  sim::Nanoseconds die_free_at(std::uint64_t die) const {
    return die_free_at_[die];
  }
  sim::Nanoseconds channel_free_at(std::uint32_t channel) const {
    return channel_free_at_[channel];
  }
  // Cumulative busy time booked on a resource over the device's lifetime
  // (program/read/erase occupancy on dies, transfer occupancy on channel
  // buses; failed attempts occupy the hardware and count too). The telemetry
  // sampler differences these into per-interval utilization.
  sim::Nanoseconds die_busy_ns(std::uint64_t die) const {
    return die_busy_ns_[die];
  }
  sim::Nanoseconds channel_busy_ns(std::uint32_t channel) const {
    return channel_busy_ns_[channel];
  }

 private:
  // Blocks until the die has a free command-queue slot (parallel dispatch;
  // models the bounded per-die queue in the flash controller).
  void WaitForDieSlot(std::uint64_t die);
  // Shared body of Read/ReadView: all checks, fault draws, stalls, and
  // timing. `*fetched` turns true once the media was actually sensed (the
  // point where the copying read would have filled its buffer).
  Status ReadImpl(std::uint64_t phys_page, std::size_t bytes,
                  std::shared_ptr<const Bytes>* payload, bool* fetched);
  // Books the timing of one program attempt (successful or failed — the die
  // is busy either way).
  void BookProgramTiming(std::uint64_t phys_page);
  bool PowerLost() const {
    return fault_plan_ != nullptr && fault_plan_->power_lost();
  }

  NandGeometry geometry_;
  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  fault::FaultPlan* fault_plan_;  // Optional; null = perfect media.
  trace::Tracer* tracer_;         // Optional; null = untraced.

  std::vector<std::uint8_t> page_state_;       // One entry per physical page.
  std::vector<std::uint32_t> erase_counts_;    // One entry per block (wear).
  // Sparse retained payloads. Immutable once installed (a reprogram swaps
  // in a fresh buffer), so ReadView can hand out shared references.
  std::unordered_map<std::uint64_t, std::shared_ptr<const Bytes>> data_;
  // Pages whose program failed: unreadable until their block is erased.
  std::unordered_set<std::uint64_t> failed_pages_;

  // Parallel dispatch: per-resource busy-until timelines (absolute virtual
  // time), per-die pending-completion queues (backpressure bound), and when
  // each in-flight page becomes readable.
  std::vector<sim::Nanoseconds> die_free_at_;
  std::vector<sim::Nanoseconds> channel_free_at_;
  std::vector<sim::Nanoseconds> die_busy_ns_;
  std::vector<sim::Nanoseconds> channel_busy_ns_;
  std::vector<std::deque<sim::Nanoseconds>> die_pending_;
  std::unordered_map<std::uint64_t, sim::Nanoseconds> page_ready_at_;

  std::uint64_t pages_programmed_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t blocks_erased_ = 0;
  std::uint64_t read_stalls_ = 0;
  sim::Nanoseconds read_stall_ns_ = 0;
  std::uint64_t die_queue_stalls_ = 0;
  sim::Nanoseconds die_queue_stall_ns_ = 0;
  std::uint64_t program_failures_ = 0;
  std::uint64_t read_uncorrectable_ = 0;
  std::uint64_t ecc_corrections_ = 0;
  std::uint64_t erase_failures_ = 0;

  stats::Counter* programs_;
  stats::Counter* reads_;
  stats::Counter* erases_;
  stats::Counter* program_failures_counter_;
  stats::Counter* ecc_corrections_counter_;
};

}  // namespace bandslim::nand
