#include "nvme/command.h"

#include <cassert>
#include <cstring>

namespace bandslim::nvme {

void NvmeCommand::set_key(ByteSpan key) {
  assert(key.size() <= kMaxKeySize);
  auto bytes = raw_bytes();
  // dw2-3 hold key bytes [0, 8); dw14-15 hold key bytes [8, 16).
  const std::size_t low = key.size() < 8 ? key.size() : 8;
  std::memset(bytes.data() + 8, 0, 8);
  if (low > 0) std::memcpy(bytes.data() + 8, key.data(), low);
  std::memset(bytes.data() + 56, 0, 8);
  if (key.size() > 8) {
    std::memcpy(bytes.data() + 56, key.data() + 8, key.size() - 8);
  }
  dw[11] = (dw[11] & ~0xFFu) | static_cast<std::uint32_t>(key.size());
}

Bytes NvmeCommand::key() const {
  Bytes out(key_size());
  CopyKeyTo({out.data(), out.size()});
  return out;
}

std::size_t NvmeCommand::CopyKeyTo(MutByteSpan out) const {
  // Clamp to the destination: a malformed command may claim a key length
  // beyond kMaxKeySize, and the stack buffers handlers pass here are exactly
  // kMaxKeySize bytes.
  const std::size_t n = key_size() < out.size() ? key_size() : out.size();
  auto bytes = raw_bytes();
  const std::size_t low = n < 8 ? n : 8;
  if (low > 0) std::memcpy(out.data(), bytes.data() + 8, low);
  if (n > 8) std::memcpy(out.data() + 8, bytes.data() + 56, n - 8);
  return n;
}

namespace codec {
namespace {

// Byte offsets (within the 64-byte entry) of the write command's piggyback
// area, in payload order: dw4-9 (bytes 16..40), the three spare bytes of
// dw11 (45..48), and dw12-13 (bytes 48..56). Total: 35 bytes.
struct Extent {
  std::size_t offset;
  std::size_t length;
};
constexpr Extent kWritePiggybackExtents[] = {{16, 24}, {45, 3}, {48, 8}};

constexpr Extent kTransferPayloadExtents[] = {{8, 56}};  // dw2..dw15.

template <std::size_t N>
std::size_t Scatter(NvmeCommand& cmd, ByteSpan payload, const Extent (&extents)[N]) {
  auto bytes = cmd.raw_bytes();
  std::size_t consumed = 0;
  for (const Extent& e : extents) {
    if (consumed >= payload.size()) break;
    const std::size_t n = std::min(e.length, payload.size() - consumed);
    std::memcpy(bytes.data() + e.offset, payload.data() + consumed, n);
    consumed += n;
  }
  return consumed;
}

template <std::size_t N>
void Gather(const NvmeCommand& cmd, MutByteSpan out, const Extent (&extents)[N]) {
  auto bytes = cmd.raw_bytes();
  std::size_t produced = 0;
  for (const Extent& e : extents) {
    if (produced >= out.size()) break;
    const std::size_t n = std::min(e.length, out.size() - produced);
    std::memcpy(out.data() + produced, bytes.data() + e.offset, n);
    produced += n;
  }
  assert(produced == out.size() && "payload larger than piggyback capacity");
}

}  // namespace

std::size_t SetWritePiggyback(NvmeCommand& cmd, ByteSpan payload) {
  cmd.set_piggybacked(true);
  return Scatter(cmd, payload, kWritePiggybackExtents);
}

void GetWritePiggyback(const NvmeCommand& cmd, MutByteSpan out) {
  assert(out.size() <= kWriteCmdPiggybackCapacity);
  Gather(cmd, out, kWritePiggybackExtents);
}

std::size_t SetTransferPayload(NvmeCommand& cmd, ByteSpan payload) {
  cmd.set_piggybacked(true);
  return Scatter(cmd, payload, kTransferPayloadExtents);
}

void GetTransferPayload(const NvmeCommand& cmd, MutByteSpan out) {
  assert(out.size() <= kTransferCmdPiggybackCapacity);
  Gather(cmd, out, kTransferPayloadExtents);
}

void SetPrpPointers(NvmeCommand& cmd, const PrpList& prp) {
  const auto& pages = prp.pages();
  if (!pages.empty()) {
    cmd.dw[6] = static_cast<std::uint32_t>(pages[0]);
    cmd.dw[7] = static_cast<std::uint32_t>(pages[0] >> 32);
  }
  if (pages.size() > 1) {
    // With exactly two pages PRP2 is the second page; with more it would be
    // the physical address of the PRP list page.
    cmd.dw[8] = static_cast<std::uint32_t>(pages[1]);
    cmd.dw[9] = static_cast<std::uint32_t>(pages[1] >> 32);
  }
  cmd.prp = prp;
}

std::uint64_t PiggybackCommandCount(std::uint64_t value_size) {
  if (value_size <= kWriteCmdPiggybackCapacity) return 1;
  return 1 + CeilDiv(value_size - kWriteCmdPiggybackCapacity,
                     kTransferCmdPiggybackCapacity);
}

}  // namespace codec
}  // namespace bandslim::nvme
