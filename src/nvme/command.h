// NVMe key-value command codec, following Figure 6 of the paper.
//
// A submission queue entry is 16 dwords (64 bytes):
//   dw0        opcode | flags (P = piggybacked payload, F = final fragment) | cid
//   dw1        namespace id
//   dw2-3      key bytes [0, 8)
//   dw4-5      metadata pointer (PRP)        -- piggyback area when P is set
//   dw6-9      PRP entry 1, PRP entry 2      -- piggyback area when P is set
//   dw10       value size (bytes)
//   dw11       key size (byte 0) | 2 reserved bytes + 1 vendor option byte
//                                             -- those 3 bytes piggyback too
//   dw12-13    reserved                       -- piggyback area when P is set
//   dw14-15    key bytes [8, 16)
//
// * The BandSlim *write* command (opcode kKvWrite, P set) repurposes
//   dw4-9 (24 B) + 3 spare bytes of dw11 + dw12-13 (8 B) = 35 bytes of
//   inline value payload (Section 3.2, Figure 6a).
// * The BandSlim *transfer* command (opcode kKvTransfer) carries value
//   fragments in every dword except dw0/dw1: 56 bytes (Figure 6b).
//
// Simulation note: PRP1/PRP2 are mirrored into dw6-9 for structural
// fidelity, but the authoritative page list rides in NvmeCommand::prp so
// the DMA engine does not need a reverse page-table. PRP *list page*
// fetch traffic for >2-page payloads is still accounted (see PrpList).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"
#include "nvme/prp.h"

namespace bandslim::nvme {

enum class Opcode : std::uint8_t {
  kInvalid = 0x00,
  kKvWrite = 0xC1,     // KV store; PRP payload and/or <=35 B inline payload.
  kKvTransfer = 0xC2,  // Trailing inline value fragment (56 B payload).
  kKvRead = 0xC3,      // KV retrieve; PRP describes the receive buffer.
  kKvDelete = 0xC4,
  kKvIterSeek = 0xC5,  // Position an iterator at the first key >= seek key.
  kKvIterNext = 0xC6,  // Fetch next (key, value) via the PRP receive buffer.
  kKvFlush = 0xC7,     // Drain device buffers / MemTable to NAND.
  kKvExists = 0xC8,
  kKvIterClose = 0xC9,
  // Host-side-batching comparator (the Dotori / KV-CSD approach the paper
  // contrasts in Section 1): one PRP payload carries many packed records.
  kKvBulkWrite = 0xCA,
  // Range-query batching (after [22]): fills the PRP receive buffer with as
  // many (key, value) records as fit, instead of one record per command.
  kKvIterNextBatch = 0xCB,
  // Bulk GET/DELETE counterparts of kKvBulkWrite: the PRP payload carries
  // [u8 klen][key]* . BulkRead reuses the same PRP buffer for its response
  // ([u8 found][u32 vsize][value]* , renegotiated on kBufferTooSmall);
  // BulkDelete returns the number of keys removed in the CQ result.
  kKvBulkRead = 0xCC,
  kKvBulkDelete = 0xCD,
};

// Completion queue entry status codes (vendor-specific command set).
enum class CqStatus : std::uint16_t {
  kSuccess = 0,
  kNotFound,
  kInvalidField,
  kBufferTooSmall,  // result carries the required byte count.
  kIteratorInvalid,
  kIteratorExhausted,
  kOutOfSpace,
  kInternalError,
  kMediaError,  // NAND failure survived FTL retry/remap (SCT 0x2).
  // Synthesized by the *host* transport when a command never completes
  // within its watchdog window; no device ever posts this on the wire.
  kTimedOut,
  // Synthesized by the *host* transport when per-queue admission control
  // sheds the submission before the doorbell; nothing reaches the device.
  kBusy,
};

struct CqEntry {
  std::uint32_t result = 0;  // Command-specific (e.g. value size for reads).
  std::uint16_t cid = 0;
  CqStatus status = CqStatus::kSuccess;

  bool ok() const { return status == CqStatus::kSuccess; }

  // NVMe status field split, for hosts that dispatch on SCT before SC.
  // Vendor KV statuses ride in the command-specific type (0x1); media
  // failures report SCT 0x2 like a real drive; host-synthesized statuses
  // (watchdog timeout, admission-control busy) use path-related 0x3 and
  // stay distinguishable by SC.
  std::uint8_t status_code_type() const {
    switch (status) {
      case CqStatus::kSuccess: return 0x0;
      case CqStatus::kMediaError: return 0x2;
      case CqStatus::kTimedOut: return 0x3;
      case CqStatus::kBusy: return 0x3;
      default: return 0x1;
    }
  }
  std::uint8_t status_code() const {
    return static_cast<std::uint8_t>(static_cast<std::uint16_t>(status) & 0xFF);
  }
};

struct NvmeCommand {
  std::array<std::uint32_t, 16> dw{};
  PrpList prp;  // Simulation-side carrier for the PRP-described pages.

  // --- dw0 -----------------------------------------------------------------
  Opcode opcode() const { return static_cast<Opcode>(dw[0] & 0xFF); }
  void set_opcode(Opcode op) {
    dw[0] = (dw[0] & ~0xFFu) | static_cast<std::uint32_t>(op);
  }
  // P flag: inline (piggybacked) payload present in this command.
  bool piggybacked() const { return (dw[0] >> 8) & 1; }
  void set_piggybacked(bool v) {
    dw[0] = (dw[0] & ~(1u << 8)) | (static_cast<std::uint32_t>(v) << 8);
  }
  // F flag: no trailing transfer commands follow (the value is complete).
  bool final_fragment() const { return (dw[0] >> 9) & 1; }
  void set_final_fragment(bool v) {
    dw[0] = (dw[0] & ~(1u << 9)) | (static_cast<std::uint32_t>(v) << 9);
  }
  std::uint16_t cid() const { return static_cast<std::uint16_t>(dw[0] >> 16); }
  void set_cid(std::uint16_t cid) {
    dw[0] = (dw[0] & 0xFFFFu) | (static_cast<std::uint32_t>(cid) << 16);
  }

  // --- dw1 -----------------------------------------------------------------
  std::uint32_t nsid() const { return dw[1]; }
  void set_nsid(std::uint32_t v) { dw[1] = v; }

  // --- key (dw2-3 + dw14-15) ------------------------------------------------
  void set_key(ByteSpan key);
  Bytes key() const;
  // Allocation-free variant: copies the key into `out` (which must hold at
  // least kMaxKeySize bytes) and returns the key length. The controller's
  // hot path uses this with a stack array instead of key().
  std::size_t CopyKeyTo(MutByteSpan out) const;
  std::size_t key_size() const { return dw[11] & 0xFF; }

  // --- value size (dw10) ------------------------------------------------------
  std::uint32_t value_size() const { return dw[10]; }
  void set_value_size(std::uint32_t v) { dw[10] = v; }

  // --- iterator handle (dw12, only used by iterator commands) ---------------
  std::uint32_t iter_handle() const { return dw[12]; }
  void set_iter_handle(std::uint32_t h) { dw[12] = h; }

  // Raw byte view of the 64-byte SQ entry.
  MutByteSpan raw_bytes() {
    return {reinterpret_cast<std::uint8_t*>(dw.data()), kNvmeCommandSize};
  }
  ByteSpan raw_bytes() const {
    return {reinterpret_cast<const std::uint8_t*>(dw.data()), kNvmeCommandSize};
  }
};

static_assert(sizeof(std::array<std::uint32_t, 16>) == kNvmeCommandSize);

// Inline-payload (piggyback) codecs for the two BandSlim command layouts.
namespace codec {

// Writes up to kWriteCmdPiggybackCapacity (35) bytes into the write
// command's repurposed fields; returns bytes consumed from `payload`.
std::size_t SetWritePiggyback(NvmeCommand& cmd, ByteSpan payload);
// Extracts `n` piggybacked bytes from a write command.
void GetWritePiggyback(const NvmeCommand& cmd, MutByteSpan out);

// Same for the transfer command's 56-byte payload area.
std::size_t SetTransferPayload(NvmeCommand& cmd, ByteSpan payload);
void GetTransferPayload(const NvmeCommand& cmd, MutByteSpan out);

// Mirrors the first two PRP pages into dw6-9 (structural fidelity only).
void SetPrpPointers(NvmeCommand& cmd, const PrpList& prp);

// Number of NVMe commands a pure piggyback transfer of `value_size` bytes
// needs: one write command (35 B) plus 56 B transfer commands (Section 3.2).
std::uint64_t PiggybackCommandCount(std::uint64_t value_size);

}  // namespace codec

}  // namespace bandslim::nvme
