#include "nvme/host_memory.h"

#include <algorithm>
#include <cstring>

namespace bandslim::nvme {

PageId HostMemory::Acquire() {
  // Recycled pages are NOT re-zeroed here: the only way page bytes become
  // device-visible is a host-to-device DMA, and every such page is first
  // filled through WriteToPages, which zeroes the tail beyond the payload.
  // Receive pages (device-to-host) are read back for exactly the completed
  // byte count, so stale bytes past it are never observed. This keeps the
  // steady-state GET path free of a 4 KiB memset per op while recycled
  // pages stay indistinguishable from fresh ones everywhere they matter.
  if (!free_ids_.empty()) {
    const PageId id = free_ids_.back();
    free_ids_.pop_back();
    allocated_[id - 1] = 1;
    ++live_;
    return id;
  }
  slots_.push_back(Bytes(kMemPageSize, 0));
  allocated_.push_back(1);
  ++live_;
  return static_cast<PageId>(slots_.size());
}

std::vector<PageId> HostMemory::AllocatePages(std::size_t n) {
  std::vector<PageId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(Acquire());
  return ids;
}

void HostMemory::AllocatePagesInto(std::size_t n, std::vector<PageId>* out) {
  out->clear();
  for (std::size_t i = 0; i < n; ++i) out->push_back(Acquire());
}

void HostMemory::FreePages(std::span<const PageId> pages) {
  for (PageId id : pages) {
    if (!IsAllocated(id)) continue;
    allocated_[id - 1] = 0;
    free_ids_.push_back(id);
    --live_;
  }
}

MutByteSpan HostMemory::PageData(PageId id) {
  if (!IsAllocated(id)) return {};
  Bytes& buf = slots_[id - 1];
  return {buf.data(), buf.size()};
}

ByteSpan HostMemory::PageData(PageId id) const {
  if (!IsAllocated(id)) return {};
  const Bytes& buf = slots_[id - 1];
  return {buf.data(), buf.size()};
}

Status HostMemory::WriteToPages(std::span<const PageId> pages, ByteSpan data) {
  if (pages.size() * kMemPageSize < data.size()) {
    return Status::InvalidArgument("host pages too small for payload");
  }
  std::size_t off = 0;
  for (PageId id : pages) {
    if (off >= data.size()) break;
    MutByteSpan dst = PageData(id);
    if (dst.empty()) return Status::InvalidArgument("unallocated host page");
    const std::size_t n = std::min(kMemPageSize, data.size() - off);
    std::memcpy(dst.data(), data.data() + off, n);
    // Page-unit DMA ships whole 4 KiB pages: zero the tail so a recycled
    // page's stale bytes never reach the device (see Acquire()).
    if (n < kMemPageSize) std::memset(dst.data() + n, 0, kMemPageSize - n);
    off += n;
  }
  return Status::Ok();
}

Status HostMemory::ReadFromPages(std::span<const PageId> pages,
                                 MutByteSpan out) const {
  if (pages.size() * kMemPageSize < out.size()) {
    return Status::InvalidArgument("host pages too small for read");
  }
  std::size_t off = 0;
  for (PageId id : pages) {
    if (off >= out.size()) break;
    ByteSpan src = PageData(id);
    if (src.empty()) return Status::InvalidArgument("unallocated host page");
    const std::size_t n = std::min(kMemPageSize, out.size() - off);
    std::memcpy(out.data() + off, src.data(), n);
    off += n;
  }
  return Status::Ok();
}

}  // namespace bandslim::nvme
