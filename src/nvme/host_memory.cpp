#include "nvme/host_memory.h"

#include <algorithm>
#include <cstring>

namespace bandslim::nvme {

std::vector<PageId> HostMemory::AllocatePages(std::size_t n) {
  std::vector<PageId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PageId id = next_id_++;
    pages_.emplace(id, Bytes(kMemPageSize, 0));
    ids.push_back(id);
  }
  return ids;
}

void HostMemory::FreePages(const std::vector<PageId>& pages) {
  for (PageId id : pages) pages_.erase(id);
}

MutByteSpan HostMemory::PageData(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end()) return {};
  return {it->second.data(), it->second.size()};
}

ByteSpan HostMemory::PageData(PageId id) const {
  auto it = pages_.find(id);
  if (it == pages_.end()) return {};
  return {it->second.data(), it->second.size()};
}

Status HostMemory::WriteToPages(const std::vector<PageId>& pages, ByteSpan data) {
  if (pages.size() * kMemPageSize < data.size()) {
    return Status::InvalidArgument("host pages too small for payload");
  }
  std::size_t off = 0;
  for (PageId id : pages) {
    if (off >= data.size()) break;
    MutByteSpan dst = PageData(id);
    if (dst.empty()) return Status::InvalidArgument("unallocated host page");
    const std::size_t n = std::min(kMemPageSize, data.size() - off);
    std::memcpy(dst.data(), data.data() + off, n);
    off += n;
  }
  return Status::Ok();
}

Status HostMemory::ReadFromPages(const std::vector<PageId>& pages,
                                 MutByteSpan out) const {
  if (pages.size() * kMemPageSize < out.size()) {
    return Status::InvalidArgument("host pages too small for read");
  }
  std::size_t off = 0;
  for (PageId id : pages) {
    if (off >= out.size()) break;
    ByteSpan src = PageData(id);
    if (src.empty()) return Status::InvalidArgument("unallocated host page");
    const std::size_t n = std::min(kMemPageSize, out.size() - off);
    std::memcpy(out.data() + off, src.data(), n);
    off += n;
  }
  return Status::Ok();
}

}  // namespace bandslim::nvme
