// Simulated host DRAM, managed at memory-page (4 KiB) granularity — the
// allocation unit the NVMe block stack hands to PRP-based DMA. The driver
// stages values here exactly like the kernel driver pins pages for DMA; the
// device-side DMA engine reads/writes these pages through PrpList.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace bandslim::nvme {

using PageId = std::uint64_t;

class HostMemory {
 public:
  // Allocates `n` memory pages (zero-filled). Pages need not be physically
  // contiguous — that is the raison d'être of the PRP list.
  std::vector<PageId> AllocatePages(std::size_t n);

  void FreePages(const std::vector<PageId>& pages);

  // Direct access to a page's 4 KiB of backing storage.
  MutByteSpan PageData(PageId id);
  ByteSpan PageData(PageId id) const;

  bool IsAllocated(PageId id) const { return pages_.contains(id); }

  // Scatters `data` across the given pages in order (first page first).
  Status WriteToPages(const std::vector<PageId>& pages, ByteSpan data);
  // Gathers `out.size()` bytes from the given pages in order.
  Status ReadFromPages(const std::vector<PageId>& pages, MutByteSpan out) const;

  std::size_t allocated_pages() const { return pages_.size(); }

 private:
  std::unordered_map<PageId, Bytes> pages_;
  PageId next_id_ = 1;
};

}  // namespace bandslim::nvme
