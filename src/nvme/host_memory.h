// Simulated host DRAM, managed at memory-page (4 KiB) granularity — the
// allocation unit the NVMe block stack hands to PRP-based DMA. The driver
// stages values here exactly like the kernel driver pins pages for DMA; the
// device-side DMA engine reads/writes these pages through PrpList.
//
// Pages are slots in a flat arena indexed by (PageId - 1) with a free list
// of recycled ids: steady-state allocate/free cycles reuse slots (and their
// 4 KiB backing buffers) instead of churning a hash map. Recycled pages are
// not re-zeroed on allocation; instead WriteToPages zeroes the written
// page's tail, so a run's DMA'd page bytes still never depend on what a
// previous operation left behind (see Acquire() for the full argument).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace bandslim::nvme {

using PageId = std::uint64_t;

class HostMemory {
 public:
  // Allocates `n` memory pages. Pages need not be physically contiguous —
  // that is the raison d'être of the PRP list.
  std::vector<PageId> AllocatePages(std::size_t n);

  // Allocation-free variant: clears `*out` and fills it with `n` fresh page
  // ids, reusing the vector's capacity. The hot path's staging loop calls
  // this with a per-driver scratch vector.
  void AllocatePagesInto(std::size_t n, std::vector<PageId>* out);

  void FreePages(std::span<const PageId> pages);

  // Direct access to a page's 4 KiB of backing storage.
  MutByteSpan PageData(PageId id);
  ByteSpan PageData(PageId id) const;

  bool IsAllocated(PageId id) const {
    return id >= 1 && id <= slots_.size() && allocated_[id - 1];
  }

  // Scatters `data` across the given pages in order (first page first).
  Status WriteToPages(std::span<const PageId> pages, ByteSpan data);
  // Gathers `out.size()` bytes from the given pages in order.
  Status ReadFromPages(std::span<const PageId> pages, MutByteSpan out) const;

  std::size_t allocated_pages() const { return live_; }

 private:
  PageId Acquire();

  std::vector<Bytes> slots_;          // Slot i backs PageId i + 1.
  std::vector<std::uint8_t> allocated_;
  std::vector<PageId> free_ids_;
  std::size_t live_ = 0;
};

}  // namespace bandslim::nvme
