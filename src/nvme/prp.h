// Physical Region Page (PRP) list: the NVMe descriptor for payload in host
// memory (Section 2.2). PRP1/PRP2 live inside the command; longer payloads
// spill into a PRP list page that the controller must additionally fetch
// from host memory — we account that fetch traffic too.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "nvme/host_memory.h"

namespace bandslim::nvme {

class PrpList {
 public:
  PrpList() = default;
  explicit PrpList(std::vector<PageId> pages) : pages_(std::move(pages)) {}

  const std::vector<PageId>& pages() const { return pages_; }
  std::size_t page_count() const { return pages_.size(); }
  bool empty() const { return pages_.empty(); }

  // PRP semantics: the first two entries ride inside the command (PRP1 and
  // PRP2); with three or more pages, PRP2 points at a list page that holds
  // one 8-byte entry per remaining page. Returns the number of bytes the
  // controller must fetch from host memory to learn the page addresses
  // (beyond the command itself).
  std::uint64_t ListFetchBytes() const {
    if (pages_.size() <= 2) return 0;
    return (pages_.size() - 1) * 8;  // PRP2 points to the list; entries are 8 B.
  }

  // Total bytes a page-unit DMA over this list moves (always whole pages —
  // the amplification at the heart of the paper's Problem #1).
  std::uint64_t DmaBytes() const { return pages_.size() * kMemPageSize; }

 private:
  std::vector<PageId> pages_;
};

}  // namespace bandslim::nvme
