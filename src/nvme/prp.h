// Physical Region Page (PRP) list: the NVMe descriptor for payload in host
// memory (Section 2.2). PRP1/PRP2 live inside the command; longer payloads
// spill into a PRP list page that the controller must additionally fetch
// from host memory — we account that fetch traffic too.
//
// Up to kInlinePages entries are stored inline (covering values up to one
// NAND page), so the common small-value commands copy through submission/
// completion rings without touching the allocator; longer lists spill to a
// heap vector, mirroring how a real PRP list spills into a list page.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "nvme/host_memory.h"

namespace bandslim::nvme {

class PrpList {
 public:
  static constexpr std::size_t kInlinePages = 4;

  PrpList() = default;
  explicit PrpList(const std::vector<PageId>& pages) {
    Assign({pages.data(), pages.size()});
  }
  explicit PrpList(std::span<const PageId> pages) { Assign(pages); }

  void Assign(std::span<const PageId> pages) {
    count_ = pages.size();
    if (count_ <= kInlinePages) {
      std::copy(pages.begin(), pages.end(), inline_.begin());
      spill_.clear();
    } else {
      spill_.assign(pages.begin(), pages.end());
    }
  }

  std::span<const PageId> pages() const {
    return count_ <= kInlinePages
               ? std::span<const PageId>(inline_.data(), count_)
               : std::span<const PageId>(spill_.data(), count_);
  }
  std::size_t page_count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // PRP semantics: the first two entries ride inside the command (PRP1 and
  // PRP2); with three or more pages, PRP2 points at a list page that holds
  // one 8-byte entry per remaining page. Returns the number of bytes the
  // controller must fetch from host memory to learn the page addresses
  // (beyond the command itself).
  std::uint64_t ListFetchBytes() const {
    if (count_ <= 2) return 0;
    return (count_ - 1) * 8;  // PRP2 points to the list; entries are 8 B.
  }

  // Total bytes a page-unit DMA over this list moves (always whole pages —
  // the amplification at the heart of the paper's Problem #1).
  std::uint64_t DmaBytes() const { return count_ * kMemPageSize; }

 private:
  std::array<PageId, kInlinePages> inline_{};
  std::vector<PageId> spill_;
  std::size_t count_ = 0;
};

}  // namespace bandslim::nvme
