// NVMe submission / completion queue rings. The simulation drives them
// synchronously (the paper's passthrough path keeps exactly one command in
// flight, Section 4.2), but the ring mechanics — depth, head/tail indices,
// phase bit — are kept structurally faithful so asynchronous drivers can be
// layered on later.
#pragma once

#include <cstdint>
#include <vector>

#include "nvme/command.h"

namespace bandslim::nvme {

class SubmissionQueue {
 public:
  explicit SubmissionQueue(std::uint16_t depth) : ring_(depth) {}

  bool Full() const { return Count() == ring_.size() - 1; }
  bool Empty() const { return head_ == tail_; }
  std::size_t Count() const {
    return (tail_ + ring_.size() - head_) % ring_.size();
  }

  // Host side: place a command at the tail. The caller then rings the
  // doorbell (modeled by NvmeTransport).
  bool Push(const NvmeCommand& cmd) {
    if (Full()) return false;
    ring_[tail_] = cmd;
    tail_ = (tail_ + 1) % ring_.size();
    return true;
  }

  // Device side: fetch the command at the head.
  bool Pop(NvmeCommand* out) {
    if (Empty()) return false;
    *out = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    return true;
  }

  std::size_t head() const { return head_; }
  std::size_t tail() const { return tail_; }

 private:
  std::vector<NvmeCommand> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(std::uint16_t depth) : ring_(depth) {}

  bool Full() const { return Count() == ring_.size() - 1; }
  bool Empty() const { return head_ == tail_; }
  std::size_t Count() const {
    return (tail_ + ring_.size() - head_) % ring_.size();
  }

  bool Push(const CqEntry& entry) {
    if (Full()) return false;
    ring_[tail_] = entry;
    tail_ = (tail_ + 1) % ring_.size();
    return true;
  }

  bool Pop(CqEntry* out) {
    if (Empty()) return false;
    *out = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    return true;
  }

 private:
  std::vector<CqEntry> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace bandslim::nvme
