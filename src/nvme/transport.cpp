#include "nvme/transport.h"

#include <cassert>

namespace bandslim::nvme {

NvmeTransport::NvmeTransport(sim::VirtualClock* clock, const sim::CostModel* cost,
                             pcie::PcieLink* link, stats::MetricsRegistry* metrics,
                             std::uint16_t queue_depth, std::uint16_t num_queues)
    : clock_(clock),
      cost_(cost),
      link_(link),
      submit_counter_(metrics->GetCounter("nvme.commands_submitted")) {
  assert(num_queues >= 1);
  queues_.reserve(num_queues);
  for (std::uint16_t q = 0; q < num_queues; ++q) {
    queues_.emplace_back(queue_depth);
  }
}

CqEntry NvmeTransport::Submit(std::uint16_t queue_id, const NvmeCommand& cmd) {
  assert(device_ != nullptr && "no device attached");
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];

  NvmeCommand entry = cmd;
  entry.set_cid(next_cid_++);

  // Host: write the SQ entry (host memory, not PCIe) and ring the doorbell.
  const bool pushed = qp.sq.Push(entry);
  assert(pushed && "synchronous transport never fills the queue");
  (void)pushed;
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);

  // Device: fetch the command (and the PRP list page, if any) from host
  // memory across PCIe.
  NvmeCommand fetched;
  qp.sq.Pop(&fetched);
  link_->Record(pcie::TrafficClass::kCommandFetch, pcie::Direction::kHostToDevice,
                cost_->cmd_fetch_bytes + fetched.prp.ListFetchBytes());

  // One synchronous round trip of latency per command (submit + fetch +
  // interpret + complete + host wakeup). Device-side work (DMA, memcpy,
  // NAND) advances the clock inside the handler.
  clock_->Advance(cost_->cmd_round_trip_ns);

  CqEntry cqe = device_->Handle(fetched, queue_id);
  cqe.cid = fetched.cid();

  // Device: post the completion entry to host memory across PCIe.
  const bool cq_pushed = qp.cq.Push(cqe);
  assert(cq_pushed);
  (void)cq_pushed;
  link_->Record(pcie::TrafficClass::kCompletion, pcie::Direction::kDeviceToHost,
                cost_->cqe_bytes);

  CqEntry reaped;
  qp.cq.Pop(&reaped);
  ++commands_submitted_;
  submit_counter_->Increment();
  return reaped;
}

std::vector<CqEntry> NvmeTransport::SubmitPipelined(
    std::uint16_t queue_id, const std::vector<NvmeCommand>& cmds) {
  assert(device_ != nullptr && "no device attached");
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];
  std::vector<CqEntry> completions;
  completions.reserve(cmds.size());
  if (cmds.empty()) return completions;

  // One doorbell ring covers the whole batch.
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);

  bool first = true;
  for (const NvmeCommand& cmd : cmds) {
    NvmeCommand entry = cmd;
    entry.set_cid(next_cid_++);
    // The ring may be smaller than the batch; with the device draining
    // entries synchronously here, push/pop per command is equivalent.
    const bool pushed = qp.sq.Push(entry);
    assert(pushed);
    (void)pushed;
    NvmeCommand fetched;
    qp.sq.Pop(&fetched);
    link_->Record(pcie::TrafficClass::kCommandFetch,
                  pcie::Direction::kHostToDevice,
                  cost_->cmd_fetch_bytes + fetched.prp.ListFetchBytes());
    clock_->Advance(first ? cost_->cmd_round_trip_ns : cost_->cmd_pipelined_ns);
    first = false;

    CqEntry cqe = device_->Handle(fetched, queue_id);
    cqe.cid = fetched.cid();
    const bool cq_pushed = qp.cq.Push(cqe);
    assert(cq_pushed);
    (void)cq_pushed;
    link_->Record(pcie::TrafficClass::kCompletion,
                  pcie::Direction::kDeviceToHost, cost_->cqe_bytes);
    CqEntry reaped;
    qp.cq.Pop(&reaped);
    completions.push_back(reaped);
    ++commands_submitted_;
    submit_counter_->Increment();
  }
  return completions;
}

}  // namespace bandslim::nvme
