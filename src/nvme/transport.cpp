#include "nvme/transport.h"

#include <algorithm>
#include <cassert>

namespace bandslim::nvme {

NvmeTransport::NvmeTransport(sim::VirtualClock* clock, const sim::CostModel* cost,
                             pcie::PcieLink* link, stats::MetricsRegistry* metrics,
                             std::uint16_t queue_depth, std::uint16_t num_queues)
    : clock_(clock),
      cost_(cost),
      link_(link),
      submit_counter_(metrics->GetCounter("nvme.commands_submitted")) {
  assert(num_queues >= 1);
  queues_.reserve(num_queues);
  for (std::uint16_t q = 0; q < num_queues; ++q) {
    queues_.emplace_back(queue_depth);
  }
}

std::uint16_t NvmeTransport::AllocateCid(QueuePair* qp) {
  const std::uint16_t cid = qp->next_cid++;
  const bool inserted = qp->inflight_cids.insert(cid).second;
  assert(inserted && "CID reused while still in flight on this queue");
  (void)inserted;
  return cid;
}

void NvmeTransport::ChargeCommand(bool first_in_batch) {
  if (parallel_arbitration_) {
    // The shared fetch/interpret unit takes commands one at a time; the
    // submitter's frame jumps to when its command clears arbitration plus
    // the host-visible latency for its position in the batch.
    const sim::Nanoseconds arb = std::max(clock_->Now(), fetch_busy_until_);
    fetch_busy_until_ = arb + cost_->cmd_pipelined_ns;
    clock_->SetTime(arb + (first_in_batch ? cost_->cmd_round_trip_ns
                                          : cost_->cmd_pipelined_ns));
  } else {
    clock_->Advance(first_in_batch ? cost_->cmd_round_trip_ns
                                   : cost_->cmd_pipelined_ns);
  }
}

CqEntry NvmeTransport::Submit(std::uint16_t queue_id, const NvmeCommand& cmd) {
  assert(device_ != nullptr && "no device attached");
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];

  NvmeCommand entry = cmd;
  entry.set_cid(AllocateCid(&qp));

  // Host: write the SQ entry (host memory, not PCIe) and ring the doorbell.
  const bool pushed = qp.sq.Push(entry);
  assert(pushed && "synchronous transport never fills the queue");
  (void)pushed;
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);

  // Device: fetch the command (and the PRP list page, if any) from host
  // memory across PCIe.
  NvmeCommand fetched;
  qp.sq.Pop(&fetched);
  link_->Record(pcie::TrafficClass::kCommandFetch, pcie::Direction::kHostToDevice,
                cost_->cmd_fetch_bytes + fetched.prp.ListFetchBytes());

  // One round trip of latency per command (submit + fetch + interpret +
  // complete + host wakeup). Device-side work (DMA, memcpy, NAND) advances
  // the clock inside the handler.
  ChargeCommand(/*first_in_batch=*/true);

  CqEntry cqe = device_->Handle(fetched, queue_id);
  cqe.cid = fetched.cid();

  // Device: post the completion entry to host memory across PCIe.
  const bool cq_pushed = qp.cq.Push(cqe);
  assert(cq_pushed);
  (void)cq_pushed;
  link_->Record(pcie::TrafficClass::kCompletion, pcie::Direction::kDeviceToHost,
                cost_->cqe_bytes);

  CqEntry reaped;
  qp.cq.Pop(&reaped);
  qp.inflight_cids.erase(reaped.cid);
  ++commands_submitted_;
  submit_counter_->Increment();
  return reaped;
}

std::vector<CqEntry> NvmeTransport::SubmitPipelined(
    std::uint16_t queue_id, const std::vector<NvmeCommand>& cmds) {
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];
  std::vector<CqEntry> completions;
  completions.reserve(cmds.size());
  if (cmds.empty()) return completions;  // Nothing fetched; device untouched.
  assert(device_ != nullptr && "no device attached");

  // One doorbell ring covers the whole batch.
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);

  bool first = true;
  for (const NvmeCommand& cmd : cmds) {
    NvmeCommand entry = cmd;
    entry.set_cid(AllocateCid(&qp));
    // The ring may be smaller than the batch; with the device draining
    // entries synchronously here, push/pop per command is equivalent.
    const bool pushed = qp.sq.Push(entry);
    assert(pushed);
    (void)pushed;
    NvmeCommand fetched;
    qp.sq.Pop(&fetched);
    link_->Record(pcie::TrafficClass::kCommandFetch,
                  pcie::Direction::kHostToDevice,
                  cost_->cmd_fetch_bytes + fetched.prp.ListFetchBytes());
    ChargeCommand(first);
    first = false;

    CqEntry cqe = device_->Handle(fetched, queue_id);
    cqe.cid = fetched.cid();
    const bool cq_pushed = qp.cq.Push(cqe);
    assert(cq_pushed);
    (void)cq_pushed;
    link_->Record(pcie::TrafficClass::kCompletion,
                  pcie::Direction::kDeviceToHost, cost_->cqe_bytes);
    CqEntry reaped;
    qp.cq.Pop(&reaped);
    qp.inflight_cids.erase(reaped.cid);
    completions.push_back(reaped);
    ++commands_submitted_;
    submit_counter_->Increment();
  }
  return completions;
}

}  // namespace bandslim::nvme
