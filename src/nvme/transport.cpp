#include "nvme/transport.h"

#include <algorithm>
#include <cassert>

#include "telemetry/telemetry.h"

namespace bandslim::nvme {

NvmeTransport::NvmeTransport(sim::VirtualClock* clock, const sim::CostModel* cost,
                             pcie::PcieLink* link, stats::MetricsRegistry* metrics,
                             std::uint16_t queue_depth, std::uint16_t num_queues,
                             fault::FaultPlan* fault_plan, trace::Tracer* tracer)
    : clock_(clock),
      cost_(cost),
      link_(link),
      fault_plan_(fault_plan),
      tracer_(tracer),
      queue_depth_(queue_depth),
      metrics_(metrics),
      submit_counter_(metrics->RegisterCounter("nvme.commands_submitted")),
      timeout_counter_(metrics->RegisterCounter("nvme.timeouts")),
      retry_counter_(metrics->RegisterCounter("nvme.retries")) {
  assert(num_queues >= 1);
  queues_.reserve(num_queues);
  for (std::uint16_t q = 0; q < num_queues; ++q) {
    queues_.emplace_back(queue_depth);
  }
}

std::uint16_t NvmeTransport::AllocateCid(QueuePair* qp) {
  const std::uint16_t cid = qp->next_cid++;
  assert(!qp->inflight_cids[cid] &&
         "CID reused while still in flight on this queue");
  qp->inflight_cids[cid] = 1;
  ++qp->inflight_count;
  return cid;
}

void NvmeTransport::ChargeCommand(bool first_in_batch) {
  if (parallel_arbitration_) {
    // The shared fetch/interpret unit takes commands one at a time; the
    // submitter's frame jumps to when its command clears arbitration plus
    // the host-visible latency for its position in the batch.
    const sim::Nanoseconds arb = std::max(clock_->Now(), fetch_busy_until_);
    fetch_busy_until_ = arb + cost_->cmd_pipelined_ns;
    clock_->SetTime(arb + (first_in_batch ? cost_->cmd_round_trip_ns
                                          : cost_->cmd_pipelined_ns));
  } else {
    clock_->Advance(first_in_batch ? cost_->cmd_round_trip_ns
                                   : cost_->cmd_pipelined_ns);
  }
}

CqEntry NvmeTransport::SubmitOne(QueuePair& qp, std::uint16_t queue_id,
                                 const NvmeCommand& cmd, bool first_in_batch) {
  const std::uint32_t max_attempts =
      fault_plan_ == nullptr ? 1
                             : 1 + fault_plan_->config().max_command_retries;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // With power lost no completion will ever arrive: the host watchdog
    // expires once and the command degrades to a synthetic timeout (a dead
    // device is not worth retrying).
    if (fault_plan_ != nullptr && fault_plan_->PowerLost(clock_->Now())) {
      {
        trace::SpanScope wait(tracer_, trace::Category::kTimeout);
        clock_->Advance(fault_plan_->config().command_timeout_ns);
      }
      ++timeouts_;
      timeout_counter_->Increment();
      if (event_log_ != nullptr) {
        event_log_->Emit(telemetry::EventType::kTimeout, queue_id, attempt);
      }
      CqEntry dead;
      dead.status = CqStatus::kTimedOut;
      dead.cid = cmd.cid();
      return dead;
    }
    // The SQ/CQ rings are modeled but not exercised by the synchronous
    // transport: a submission is fetched (and a completion reaped) before
    // the next one is pushed, so the entry would round-trip through the
    // ring untouched. The copies are skipped — ring capacity semantics are
    // covered by the ring's own unit tests, and command latency is charged
    // below via ChargeCommand, not by ring data movement. The CID never
    // has to be written into the command either: the device handlers don't
    // read it, so it is carried alongside and stamped on the completion.
    const std::uint16_t cid = AllocateCid(&qp);
    if (trace::Active(tracer_)) tracer_->SetCommandCid(cid);
    if (attempt > 0) {
      // Resubmission rings its own doorbell (the caller paid the first).
      link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                    cost_->mmio_doorbell_bytes);
      if (trace::Active(tracer_)) {
        tracer_->InstantSpan(trace::Category::kDoorbell,
                             cost_->mmio_doorbell_bytes);
      }
    }

    if (fault_plan_ != nullptr && fault_plan_->enabled() &&
        fault_plan_->NextCommandDropped(cid)) {
      // The command is lost before the device fetches it: the host waits
      // out the watchdog, reclaims the slot, and backs off exponentially
      // before resubmitting.
      ReleaseCid(&qp, cid);
      {
        trace::SpanScope wait(tracer_, trace::Category::kTimeout);
        clock_->Advance(fault_plan_->config().command_timeout_ns);
      }
      ++timeouts_;
      timeout_counter_->Increment();
      if (event_log_ != nullptr) {
        event_log_->Emit(telemetry::EventType::kTimeout, queue_id, attempt);
      }
      if (attempt + 1 >= max_attempts) break;
      {
        trace::SpanScope backoff(tracer_, trace::Category::kRetryBackoff);
        clock_->Advance(fault_plan_->config().retry_backoff_ns << attempt);
      }
      ++retries_;
      retry_counter_->Increment();
      if (event_log_ != nullptr) {
        event_log_->Emit(telemetry::EventType::kRetryBackoff, queue_id,
                         attempt);
      }
      continue;
    }

    // Device: fetch the command (and the PRP list page, if any) from host
    // memory across PCIe.
    const std::uint64_t fetch_bytes =
        cost_->cmd_fetch_bytes + cmd.prp.ListFetchBytes();
    link_->Record(pcie::TrafficClass::kCommandFetch,
                  pcie::Direction::kHostToDevice, fetch_bytes);
    if (trace::Active(tracer_)) {
      tracer_->InstantSpan(trace::Category::kCmdFetch, fetch_bytes);
    }

    // One round trip of latency per command (submit + fetch + interpret +
    // complete + host wakeup); a resubmission always pays a full round
    // trip. Device-side work (DMA, memcpy, NAND) advances the clock inside
    // the handler.
    {
      trace::SpanScope arb(tracer_, trace::Category::kSubmission);
      ChargeCommand(first_in_batch || attempt > 0);
    }

    CqEntry cqe = device_->Handle(cmd, queue_id);
    cqe.cid = cid;

    // Device: post the completion entry to host memory across PCIe.
    link_->Record(pcie::TrafficClass::kCompletion,
                  pcie::Direction::kDeviceToHost, cost_->cqe_bytes);
    if (trace::Active(tracer_)) {
      tracer_->InstantSpan(trace::Category::kCompletion, cost_->cqe_bytes);
    }

    ReleaseCid(&qp, cqe.cid);
    ++commands_submitted_;
    ++qp.submitted;
    submit_counter_->Increment();
    return cqe;
  }
  // Retries exhausted: degrade gracefully to a host-synthesized timeout
  // completion rather than asserting.
  CqEntry timed_out;
  timed_out.status = CqStatus::kTimedOut;
  timed_out.cid = cmd.cid();
  return timed_out;
}

void NvmeTransport::SetAdmissionControl(std::uint16_t queue_id,
                                        std::uint32_t credits,
                                        sim::Nanoseconds busy_backoff_ns) {
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];
  qp.admission_budget = credits;
  qp.admission_credits = credits;
  qp.busy_backoff_ns = busy_backoff_ns;
  // GetCounter (find-or-create) rather than RegisterCounter: admission may
  // be re-enabled after a PowerCycle rebind, and the counter must only
  // exist at all when the feature was turned on (export byte-identity for
  // control-free runs).
  if (credits > 0 && busy_counter_ == nullptr) {
    busy_counter_ = metrics_->GetCounter("nvme.busy_rejections");
  }
}

void NvmeTransport::RefillQueueCredits() {
  for (QueuePair& qp : queues_) {
    if (qp.admission_budget > 0) qp.admission_credits = qp.admission_budget;
  }
}

bool NvmeTransport::ShedIfOutOfCredits(QueuePair* qp, const NvmeCommand& cmd,
                                       CqEntry* rejected) {
  if (qp->admission_budget == 0) return false;
  // Trailing fragments ride on the head write's credit; shedding one would
  // tear the per-queue reassembly stream mid-value.
  if (cmd.opcode() == Opcode::kKvTransfer) return false;
  if (qp->admission_credits > 0) {
    --qp->admission_credits;
    return false;
  }
  // Out of credits: shed before the doorbell. The host waits out the
  // backoff (so shed-and-retry loops make forward progress in virtual
  // time), nothing is recorded on the PCIe link, and the device never sees
  // the command.
  clock_->Advance(qp->busy_backoff_ns);
  ++busy_rejections_;
  if (busy_counter_ != nullptr) busy_counter_->Increment();
  rejected->result = 0;
  rejected->cid = cmd.cid();
  rejected->status = CqStatus::kBusy;
  return true;
}

CqEntry NvmeTransport::Submit(std::uint16_t queue_id, const NvmeCommand& cmd) {
  assert(device_ != nullptr && "no device attached");
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];

  CqEntry rejected;
  if (ShedIfOutOfCredits(&qp, cmd, &rejected)) {
    if (sampler_ != nullptr) sampler_->Poll();
    return rejected;
  }

  trace::CommandScope scope(tracer_, queue_id,
                            static_cast<std::uint8_t>(cmd.opcode()));
  // Host rings the doorbell for this submission.
  link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                cost_->mmio_doorbell_bytes);
  if (trace::Active(tracer_)) {
    tracer_->InstantSpan(trace::Category::kDoorbell,
                         cost_->mmio_doorbell_bytes);
  }
  const CqEntry reaped = SubmitOne(qp, queue_id, cmd, /*first_in_batch=*/true);
  scope.Finish(static_cast<std::uint16_t>(reaped.status));
  if (sampler_ != nullptr) sampler_->Poll();
  return reaped;
}

void NvmeTransport::SubmitPipelined(std::uint16_t queue_id,
                                    std::span<const NvmeCommand> cmds,
                                    std::vector<CqEntry>* out) {
  assert(queue_id < queues_.size());
  QueuePair& qp = queues_[queue_id];
  std::vector<CqEntry>& completions = *out;
  completions.clear();
  completions.reserve(cmds.size());
  if (cmds.empty()) return;  // Nothing fetched; device untouched.
  assert(device_ != nullptr && "no device attached");

  // Admission is all-or-nothing per batch: one credit covers the whole
  // op (head + trailing fragments). Shedding mid-batch would leave the
  // device holding a partial fragment stream.
  CqEntry rejected;
  if (ShedIfOutOfCredits(&qp, cmds.front(), &rejected)) {
    completions.push_back(rejected);
    if (sampler_ != nullptr) sampler_->Poll();
    return;
  }

  bool first = true;
  for (const NvmeCommand& cmd : cmds) {
    trace::CommandScope scope(tracer_, queue_id,
                              static_cast<std::uint8_t>(cmd.opcode()));
    if (first) {
      // One doorbell ring covers the whole batch; attribute it to the
      // first command's window.
      link_->Record(pcie::TrafficClass::kMmio, pcie::Direction::kHostToDevice,
                    cost_->mmio_doorbell_bytes);
      if (trace::Active(tracer_)) {
        tracer_->InstantSpan(trace::Category::kDoorbell,
                             cost_->mmio_doorbell_bytes);
      }
    }
    // The ring may be smaller than the batch; with the device draining
    // entries synchronously here, push/pop per command is equivalent.
    completions.push_back(SubmitOne(qp, queue_id, cmd, first));
    scope.Finish(static_cast<std::uint16_t>(completions.back().status));
    if (sampler_ != nullptr) sampler_->Poll();
    first = false;
  }
}

std::vector<NvmeTransport::QueueInfo> NvmeTransport::QueueInfos() const {
  std::vector<QueueInfo> infos;
  infos.reserve(queues_.size());
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    infos.push_back(QueueInfoAt(static_cast<std::uint16_t>(q)));
  }
  return infos;
}

NvmeTransport::QueueInfo NvmeTransport::QueueInfoAt(
    std::uint16_t queue_id) const {
  QueueInfo info;
  info.queue_id = queue_id;
  info.depth = queue_depth_;
  info.submitted = queues_[queue_id].submitted;
  info.inflight = queues_[queue_id].inflight_count;
  return info;
}

}  // namespace bandslim::nvme
