// NvmeTransport couples the host driver to the device controller through
// submission/completion queues, accounting every PCIe transaction the NVMe
// protocol generates (Section 4.2):
//   * an 8 B doorbell MMIO write per submission,
//   * a 64 B command fetch (plus PRP-list page fetch for >2-page payloads),
//   * a 16 B completion entry,
// and one synchronous command round trip of latency — the passthrough path
// on the testbed "mandatorily handles only one command at any given time".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_plan.h"
#include "nvme/command.h"
#include "nvme/queue.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "stats/metrics.h"
#include "trace/trace.h"

// Forward-declared: telemetry.h includes this header, so the transport only
// holds pointers and the .cpp includes the full definitions.
namespace bandslim::telemetry {
class EventLog;
class Sampler;
}  // namespace bandslim::telemetry

namespace bandslim::nvme {

// Implemented by the device-side controller. `queue_id` identifies the
// submission queue a command was fetched from — piggybacked fragment
// streams are FIFO *per queue* (Section 3.3.1), so the controller keys its
// reassembly state by it.
class DeviceHandler {
 public:
  virtual ~DeviceHandler() = default;
  virtual CqEntry Handle(const NvmeCommand& cmd, std::uint16_t queue_id) = 0;
};

class NvmeTransport {
 public:
  NvmeTransport(sim::VirtualClock* clock, const sim::CostModel* cost,
                pcie::PcieLink* link, stats::MetricsRegistry* metrics,
                std::uint16_t queue_depth = 64, std::uint16_t num_queues = 1,
                fault::FaultPlan* fault_plan = nullptr,
                trace::Tracer* tracer = nullptr);

  void AttachDevice(DeviceHandler* handler) { device_ = handler; }

  std::uint16_t num_queues() const {
    return static_cast<std::uint16_t>(queues_.size());
  }

  // Synchronous submit on queue 0 (the paper's passthrough path).
  CqEntry Submit(const NvmeCommand& cmd) { return Submit(0, cmd); }
  // Synchronous submit on a specific queue pair.
  CqEntry Submit(std::uint16_t queue_id, const NvmeCommand& cmd);

  // Pipelined batch submit (extension beyond the paper's serialized
  // passthrough, Section 4.2): all entries are written to the SQ and the
  // doorbell rings ONCE; the first command pays the full round trip and
  // each subsequent one only the device-side cadence. Commands execute in
  // order, so multi-command values stay correct.
  std::vector<CqEntry> SubmitPipelined(const std::vector<NvmeCommand>& cmds) {
    return SubmitPipelined(0, cmds);
  }
  std::vector<CqEntry> SubmitPipelined(std::uint16_t queue_id,
                                       const std::vector<NvmeCommand>& cmds) {
    std::vector<CqEntry> completions;
    SubmitPipelined(queue_id, std::span<const NvmeCommand>(cmds), &completions);
    return completions;
  }
  // Allocation-free variant: clears `*out` and fills it with one completion
  // per command, reusing the vector's capacity. The driver's hot path calls
  // this with a per-driver scratch vector.
  void SubmitPipelined(std::uint16_t queue_id, std::span<const NvmeCommand> cmds,
                       std::vector<CqEntry>* out);

  std::uint64_t commands_submitted() const { return commands_submitted_; }
  // Host-watchdog expirations (lost commands) and bounded resubmissions
  // performed because of them; zero without a fault plan.
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retries() const { return retries_; }

  // Multi-queue-pair timing: when on, submissions from different queue
  // pairs contend only on the controller's shared command fetch/interpret
  // unit (an absolute-time busy timeline, cmd_pipelined_ns per command)
  // instead of serializing whole round trips. A single stream sees
  // identical timing either way because the round trip dominates the
  // fetch cadence; the sharded workload runner turns this on.
  void SetParallelArbitration(bool on) { parallel_arbitration_ = on; }
  bool parallel_arbitration() const { return parallel_arbitration_; }

  // Read-only per-queue-pair state for DeviceSnapshot.
  struct QueueInfo {
    std::uint16_t queue_id = 0;
    std::uint16_t depth = 0;
    std::uint64_t submitted = 0;
    std::uint64_t inflight = 0;
  };
  std::vector<QueueInfo> QueueInfos() const;
  // Allocation-free per-queue access for reusable snapshots
  // (KvSsd::InspectDeviceInto).
  std::size_t num_queue_pairs() const { return queues_.size(); }
  QueueInfo QueueInfoAt(std::uint16_t queue_id) const;

  // Telemetry taps (optional, null = untapped). The transport is the one
  // deterministic choke point every host op funnels through — including
  // sharded-runner drivers that bypass KvSsd's public API — so the sampler
  // polls here after every command completes, and the event log records
  // watchdog timeouts and retry backoffs as they happen.
  void SetEventLog(telemetry::EventLog* log) { event_log_ = log; }
  void SetSampler(telemetry::Sampler* sampler) { sampler_ = sampler; }

  // --- per-queue admission control (closed-loop load shedding) ----------
  // With `credits` > 0, each head-of-op submission on `queue_id` consumes
  // one credit; at zero credits the transport sheds the submission with a
  // host-synthesized kBusy completion (nothing crosses PCIe) after waiting
  // out `busy_backoff_ns` of host time — the shed is not free, otherwise a
  // rejected caller could livelock retrying at the same virtual instant.
  // Trailing kKvTransfer fragments are NEVER shed: the head write already
  // consumed the credit and tearing a fragment stream would corrupt
  // reassembly. `credits` == 0 disables shedding on the queue. The
  // controller refills every enabled queue to its configured budget once
  // per control tick via RefillQueueCredits().
  void SetAdmissionControl(std::uint16_t queue_id, std::uint32_t credits,
                           sim::Nanoseconds busy_backoff_ns);
  void RefillQueueCredits();
  std::uint64_t busy_rejections() const { return busy_rejections_; }

 private:
  struct QueuePair {
    SubmissionQueue sq;
    CompletionQueue cq;
    // CIDs are per submission queue in NVMe; each pair allocates its own
    // and tracks which are in flight so reuse trips an assert. A flat
    // bitmap over the 16-bit CID space (64 KiB, allocated once per queue)
    // keeps the per-command bookkeeping allocation- and hash-free.
    std::uint16_t next_cid = 0;
    std::vector<std::uint8_t> inflight_cids;
    std::uint64_t inflight_count = 0;
    std::uint64_t submitted = 0;
    // Admission control (disabled unless SetAdmissionControl was called).
    std::uint32_t admission_budget = 0;  // 0 = shedding disabled.
    std::uint32_t admission_credits = 0;
    sim::Nanoseconds busy_backoff_ns = 0;
    QueuePair(std::uint16_t depth) : sq(depth), cq(depth), inflight_cids(65536, 0) {}
  };

  // Allocates the queue's next CID and registers it in flight.
  std::uint16_t AllocateCid(QueuePair* qp);
  static void ReleaseCid(QueuePair* qp, std::uint16_t cid) {
    if (qp->inflight_cids[cid]) {
      qp->inflight_cids[cid] = 0;
      --qp->inflight_count;
    }
  }
  // Charges one command's latency: a full round trip serialized on the
  // clock (sync), or arbitration through the shared fetch unit (parallel).
  void ChargeCommand(bool first_in_batch);
  // One command through the SQ/CQ machinery, including the watchdog/retry
  // loop for injected command drops. The caller records the doorbell for
  // the first attempt; resubmissions ring their own.
  CqEntry SubmitOne(QueuePair& qp, std::uint16_t queue_id,
                    const NvmeCommand& cmd, bool first_in_batch);
  // True when admission control sheds this submission; fills `*rejected`
  // with the synthesized kBusy completion and charges the backoff wait.
  bool ShedIfOutOfCredits(QueuePair* qp, const NvmeCommand& cmd,
                          CqEntry* rejected);

  sim::VirtualClock* clock_;
  const sim::CostModel* cost_;
  pcie::PcieLink* link_;
  fault::FaultPlan* fault_plan_;  // Optional; null = lossless link.
  trace::Tracer* tracer_;         // Optional; null = untraced.
  telemetry::EventLog* event_log_ = nullptr;  // Optional; null = untapped.
  telemetry::Sampler* sampler_ = nullptr;     // Optional; null = unsampled.
  DeviceHandler* device_ = nullptr;
  std::uint16_t queue_depth_;
  std::vector<QueuePair> queues_;
  bool parallel_arbitration_ = false;
  sim::Nanoseconds fetch_busy_until_ = 0;
  std::uint64_t commands_submitted_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t busy_rejections_ = 0;
  stats::MetricsRegistry* metrics_;
  stats::Counter* submit_counter_;
  stats::Counter* timeout_counter_;
  stats::Counter* retry_counter_;
  // Registered lazily on the first SetAdmissionControl enable: a counter
  // that exists only when the feature is on keeps the Prometheus export of
  // control-free runs byte-identical to builds without this feature.
  stats::Counter* busy_counter_ = nullptr;
};

}  // namespace bandslim::nvme
