#include "pcie/link.h"

#include <sstream>

namespace bandslim::pcie {
namespace {

const char* ClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kMmio: return "mmio";
    case TrafficClass::kCommandFetch: return "cmd_fetch";
    case TrafficClass::kDmaData: return "dma_data";
    case TrafficClass::kCompletion: return "completion";
  }
  return "?";
}

}  // namespace

void PcieLink::AttachMetrics(stats::MetricsRegistry* metrics) {
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    for (int d = 0; d < 2; ++d) {
      const auto cls = static_cast<TrafficClass>(c);
      const auto dir = static_cast<Direction>(d);
      const std::string name = std::string("pcie.") + ClassName(cls) +
                               (d == 0 ? ".h2d_bytes" : ".d2h_bytes");
      mirror_[Index(cls, dir)] = metrics->RegisterCounter(name);
      // Back-fill traffic recorded before attachment so counter and
      // internal totals agree no matter when the mirror is installed.
      mirror_[Index(cls, dir)]->Add(BytesOf(cls, dir));
    }
  }
}

std::uint64_t PcieLink::HostToDeviceBytes() const {
  std::uint64_t total = 0;
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    total += BytesOf(static_cast<TrafficClass>(c), Direction::kHostToDevice);
  }
  return total;
}

std::uint64_t PcieLink::DeviceToHostBytes() const {
  std::uint64_t total = 0;
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    total += BytesOf(static_cast<TrafficClass>(c), Direction::kDeviceToHost);
  }
  return total;
}

double PcieLink::TrafficAmplificationFactor(
    std::uint64_t requested_payload_bytes) const {
  if (requested_payload_bytes == 0) return 0.0;
  return static_cast<double>(HostToDeviceBytes()) /
         static_cast<double>(requested_payload_bytes);
}

void PcieLink::Reset() {
  for (auto& c : bytes_) c.Reset();
  for (auto& c : transactions_) c.Reset();
}

std::string PcieLink::ToString() const {
  std::ostringstream os;
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    for (int d = 0; d < 2; ++d) {
      const auto cls = static_cast<TrafficClass>(c);
      const auto dir = static_cast<Direction>(d);
      const auto b = BytesOf(cls, dir);
      if (b == 0) continue;
      os << ClassName(cls) << (d == 0 ? " h2d " : " d2h ") << b << " B in "
         << TransactionsOf(cls, dir) << " txns\n";
    }
  }
  return os.str();
}

}  // namespace bandslim::pcie
