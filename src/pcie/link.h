// PCIe link model. Stands in for the testbed's PCIe Gen2 x8 interconnect +
// Intel PCM: every protocol transaction (doorbell MMIO, command fetch, PRP
// DMA, completion) is accounted by category, direction and byte count, so
// the paper's traffic metrics (total GB moved, Traffic Amplification
// Factor, MMIO share in Fig 10d) can be reproduced exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stats/counter.h"
#include "stats/metrics.h"

namespace bandslim::pcie {

enum class TrafficClass : int {
  kMmio = 0,          // Host doorbell writes (Memory-Mapped I/O).
  kCommandFetch = 1,  // 64 B SQ entries fetched by the controller.
  kDmaData = 2,       // PRP page-unit DMA payload.
  kCompletion = 3,    // 16 B CQ entries posted by the controller.
};
inline constexpr int kNumTrafficClasses = 4;

enum class Direction : int {
  kHostToDevice = 0,
  kDeviceToHost = 1,
};

// Traffic semantics follow the paper's PCM methodology (Section 2.4): the
// "PCIe traffic" figures count bytes moved from host memory to the device.
// Command fetches and PRP-write DMA move host memory to the device (they
// are device-issued reads of host memory); doorbells are host MMIO writes;
// completions move device state into host memory.
class PcieLink {
 public:
  // Mirror every subsequent Record() into registry counters named
  // "pcie.<class>.<h2d|d2h>_bytes", so device-level stats can be assembled
  // purely from the MetricsRegistry. Call before any traffic flows.
  void AttachMetrics(stats::MetricsRegistry* metrics);

  void Record(TrafficClass cls, Direction dir, std::uint64_t bytes) {
    bytes_[Index(cls, dir)].Add(bytes);
    transactions_[Index(cls, dir)].Increment();
    if (mirror_[Index(cls, dir)] != nullptr) {
      mirror_[Index(cls, dir)]->Add(bytes);
    }
  }

  std::uint64_t BytesOf(TrafficClass cls, Direction dir) const {
    return bytes_[Index(cls, dir)].value();
  }
  std::uint64_t TransactionsOf(TrafficClass cls, Direction dir) const {
    return transactions_[Index(cls, dir)].value();
  }

  // Host-to-device byte total: MMIO + command fetch + write-DMA payload.
  // This is the quantity plotted in Figures 3, 8, 9 and 10(c).
  std::uint64_t HostToDeviceBytes() const;
  std::uint64_t DeviceToHostBytes() const;
  std::uint64_t TotalBytes() const { return HostToDeviceBytes() + DeviceToHostBytes(); }

  // Host MMIO bytes (doorbell rings), the quantity in Figure 10(d).
  std::uint64_t MmioBytes() const {
    return BytesOf(TrafficClass::kMmio, Direction::kHostToDevice);
  }

  // Traffic Amplification Factor (Section 2.4): host-to-device traffic
  // divided by the payload bytes the application actually requested.
  double TrafficAmplificationFactor(std::uint64_t requested_payload_bytes) const;

  void Reset();
  std::string ToString() const;

 private:
  static std::size_t Index(TrafficClass cls, Direction dir) {
    return static_cast<std::size_t>(cls) * 2 + static_cast<std::size_t>(dir);
  }

  std::array<stats::Counter, kNumTrafficClasses * 2> bytes_;
  std::array<stats::Counter, kNumTrafficClasses * 2> transactions_;
  std::array<stats::Counter*, kNumTrafficClasses * 2> mirror_{};
};

}  // namespace bandslim::pcie
