// Virtual clock. All latency in the simulation is accounted by advancing
// this clock from the cost model; no wall-clock time is ever read, so every
// run is deterministic and independent of the build machine.
#pragma once

#include <cstdint>

namespace bandslim::sim {

using Nanoseconds = std::uint64_t;

inline constexpr Nanoseconds kMicrosecond = 1000;
inline constexpr Nanoseconds kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanoseconds kSecond = 1000 * kMillisecond;

class VirtualClock {
 public:
  Nanoseconds Now() const { return now_ns_; }
  void Advance(Nanoseconds delta_ns) { now_ns_ += delta_ns; }
  void Reset() { now_ns_ = 0; }

 private:
  Nanoseconds now_ns_ = 0;
};

}  // namespace bandslim::sim
