// Virtual clock. All latency in the simulation is accounted by advancing
// this clock from the cost model; no wall-clock time is ever read, so every
// run is deterministic and independent of the build machine.
#pragma once

#include <cassert>
#include <cstdint>

namespace bandslim::sim {

using Nanoseconds = std::uint64_t;

inline constexpr Nanoseconds kMicrosecond = 1000;
inline constexpr Nanoseconds kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanoseconds kSecond = 1000 * kMillisecond;

class VirtualClock {
 public:
  Nanoseconds Now() const { return now_ns_; }

  void Advance(Nanoseconds delta_ns) {
    // Multiple schedulers now compute future timestamps from Now(); a
    // silent wrap would reorder every resource timeline. ~584 years of
    // virtual time fit in 64 bits, so a wrap is always a computation bug.
    assert(now_ns_ + delta_ns >= now_ns_ && "virtual clock overflow");
    now_ns_ += delta_ns;
  }

  // Moves forward to `t`; no-op if the clock is already past it. Used by
  // resource timelines ("wait until the die/channel frees up").
  void AdvanceTo(Nanoseconds t) {
    if (t > now_ns_) now_ns_ = t;
  }

  // Enters an arbitrary time frame — may move the clock BACKWARD. Reserved
  // for the multi-queue machinery (EventEngine, sharded workload runner)
  // which interleaves per-stream time frames; all shared resource timelines
  // are absolute, so bookings stay consistent across frames.
  void SetTime(Nanoseconds t) { now_ns_ = t; }

  void Reset() { now_ns_ = 0; }

 private:
  Nanoseconds now_ns_ = 0;
};

}  // namespace bandslim::sim
