// Latency and traffic cost model standing in for the paper's testbed
// (Cosmos+ OpenSSD: Zynq-7000 ARM Cortex-A9 SoC, PCIe Gen2 x8, 16 KiB NAND
// pages; Xeon Gold 6226R host). Absolute numbers are calibrated so the
// paper's anchor observations hold — see DESIGN.md §2 for the derivation:
//
//  * Piggyback(<=35 B) response ~= half of Baseline (Fig 8)  => t_cmd == t_dma.
//  * Piggyback(64 B, two commands) == Baseline (Fig 8).
//  * Adaptive threshold1 lands at 128 B (Sec 4.2).
//  * Baseline per-PUT PCIe bytes 4184, Piggyback 88 => 97.9 % cut (Sec 4.2).
//  * Packing cuts 32 B write response by ~2/3 (Fig 11b).
//  * Cosmos+ firmware memcpy is slow (~40 MB/s) (Fig 12d).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/clock.h"

namespace bandslim::sim {

struct CostModel {
  // --- Latency -----------------------------------------------------------
  // One synchronous NVMe command round trip: driver submit + doorbell +
  // controller fetch + interpret + completion + driver wakeup. The paper's
  // passthrough path serializes commands, so every command pays this.
  Nanoseconds cmd_round_trip_ns = 5 * kMicrosecond;
  // Per-command cadence within a pipelined batch (extension: an async
  // driver keeps the queue full, so trailing commands only pay device-side
  // fetch+interpret, not the host round trip).
  Nanoseconds cmd_pipelined_ns = 1 * kMicrosecond;
  // PRP page-unit DMA: per-4KiB-page cost (engine setup amortized in).
  Nanoseconds dma_page_ns = 5 * kMicrosecond;
  // In-device KVS work on the non-persistence path (MemTable insert etc.).
  Nanoseconds dev_kvs_ns = 5 * kMicrosecond;
  // Extra in-device work on the persistence path (vLog append bookkeeping,
  // FTL map update, flush scheduling) paid per PUT when NAND I/O is enabled.
  Nanoseconds dev_persist_ns = 35 * kMicrosecond;
  // NAND page program / read (16 KiB page).
  Nanoseconds nand_program_ns = 400 * kMicrosecond;
  Nanoseconds nand_read_ns = 80 * kMicrosecond;
  Nanoseconds nand_erase_ns = 3 * kMillisecond;
  // When true, programs/erases are dispatched through the channel/way
  // scheduler (per-channel and per-die busy-until timelines, bounded
  // per-die command queues) and the issuing op does not wait; reads of a
  // still-in-flight page stall until it lands and contend on the die and
  // channel like any other operation. The Cosmos+ firmware path the paper
  // measures is synchronous (false) — see bench/abl_nand_parallel and
  // DESIGN.md §2 for the busy model.
  bool nand_async_program = false;
  // Channel-bus occupancy to shuttle one 16 KiB page between the controller
  // and a die's register (parallel dispatch only; the synchronous path folds
  // transfer into nand_program_ns/nand_read_ns). 40 us == ~400 MB/s ONFI.
  Nanoseconds nand_channel_xfer_ns = 40 * kMicrosecond;
  // Per-die command queue bound (parallel dispatch only): a program/erase
  // finding this many operations still pending on its die stalls the issuer
  // until the oldest completes. 0 = unbounded (no backpressure).
  std::uint32_t nand_die_queue_depth = 8;
  // Device-side memcpy (firmware copy loop on the Cortex-A9): ns per byte.
  // 25 ns/B == 40 MB/s.
  Nanoseconds memcpy_ns_per_byte = 25;

  // --- Host software stack (Figure 1a comparator) --------------------------
  // One user/kernel crossing (syscall entry+exit, copy_from_user path).
  Nanoseconds host_syscall_ns = 2 * kMicrosecond;
  // File system + block layer software path per submitted block I/O
  // (VFS, allocation, bio assembly, scheduler) — what KV-SSDs eliminate.
  Nanoseconds host_fs_block_ns = 8 * kMicrosecond;

  // --- PCIe traffic accounting (bytes) ------------------------------------
  // Submission queue entry fetched by the controller (host -> device).
  std::uint64_t cmd_fetch_bytes = kNvmeCommandSize;  // 64
  // Doorbell MMIO write by the host driver per ring.
  std::uint64_t mmio_doorbell_bytes = 8;
  // Completion queue entry posted by the controller (device -> host).
  std::uint64_t cqe_bytes = 16;

  Nanoseconds DmaCost(std::uint64_t bytes) const {
    return CeilDiv(bytes, kMemPageSize) * dma_page_ns;
  }
  Nanoseconds MemcpyCost(std::uint64_t bytes) const {
    return bytes * memcpy_ns_per_byte;
  }
};

}  // namespace bandslim::sim
