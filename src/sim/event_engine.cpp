#include "sim/event_engine.h"

#include <algorithm>

namespace bandslim::sim {

void EventEngine::AddChunk() {
  chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
  const std::uint32_t base =
      (static_cast<std::uint32_t>(chunks_.size()) - 1) << kChunkShift;
  // Push indices in reverse so AcquireNode() hands them out in ascending
  // order — purely cosmetic (locality), not a correctness requirement.
  for (std::uint32_t i = kChunkSize; i > 0; --i) {
    free_nodes_.push_back(base + i - 1);
  }
}

void EventEngine::Execute(const Entry& e) {
  // Enter the event's time frame. This may rewind the clock: a later stream
  // may already have run ahead. Resource timelines are absolute, so bookings
  // made "in the past" still order correctly against earlier ones.
  clock_->SetTime(e.time);
  ++events_run_;
  Callback& cb = NodeAt(e.node);
  cb();
  // Recycle the slot only after the callback returns: the callback body
  // (and its captures) must stay live while it runs, even if it schedules
  // new events that acquire other slots.
  cb.Reset();
  free_nodes_.push_back(e.node);
}

bool EventEngine::RunOne() {
  const bool have_run = run_pos_ < run_.size();
  if (!have_run && heap_.empty()) return false;
  Entry e;
  if (have_run && (heap_.empty() || Earlier(run_[run_pos_], heap_.front()))) {
    e = run_[run_pos_++];
    if (!draining_ && run_pos_ == run_.size()) {
      run_.clear();
      run_pos_ = 0;
    }
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    e = heap_.back();
    heap_.pop_back();
  }
  Execute(e);
  return true;
}

void EventEngine::RunUntilIdle() {
  assert(!draining_ && "RunUntilIdle is not reentrant");
  draining_ = true;
  while (true) {
    if (run_pos_ == run_.size()) {
      run_.clear();
      run_pos_ = 0;
      if (heap_.empty()) break;
      // Refill: pop the entire same-timestamp run in one pass. Entries pop
      // in seq order (the heap is keyed on (time, seq)).
      batch_time_ = heap_.front().time;
      do {
        std::pop_heap(heap_.begin(), heap_.end(), Later);
        run_.push_back(heap_.back());
        heap_.pop_back();
      } while (!heap_.empty() && heap_.front().time == batch_time_);
    }
    const Entry e = run_[run_pos_];
    // A callback may have scheduled work earlier than the rest of the
    // current batch (a stream re-entering a past frame). Drain those heap
    // events first so the global (time, seq) order is preserved exactly.
    while (!heap_.empty() && Earlier(heap_.front(), e)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      const Entry h = heap_.back();
      heap_.pop_back();
      Execute(h);
    }
    ++run_pos_;
    Execute(e);
  }
  draining_ = false;
}

void EventEngine::Reserve(std::size_t n) {
  heap_.reserve(n);
  run_.reserve(n);
  free_nodes_.reserve(((n + kChunkSize - 1) / kChunkSize) * kChunkSize);
  while (free_nodes_.size() < n) AddChunk();
}

Nanoseconds EventEngine::NextEventTime() const {
  assert(pending() > 0 && "NextEventTime() on an idle engine");
  const bool have_run = run_pos_ < run_.size();
  if (!have_run) return heap_.empty() ? kNoEventTime : heap_.front().time;
  if (heap_.empty()) return run_[run_pos_].time;
  return std::min(heap_.front().time, run_[run_pos_].time);
}

}  // namespace bandslim::sim
