#include "sim/event_engine.h"

#include <algorithm>
#include <utility>

namespace bandslim::sim {

std::uint64_t EventEngine::Schedule(Nanoseconds when, Callback fn) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{when, seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  return seq;
}

bool EventEngine::RunOne() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  // Enter the event's time frame. This may rewind the clock: a later stream
  // may already have run ahead. Resource timelines are absolute, so bookings
  // made "in the past" still order correctly against earlier ones.
  clock_->SetTime(ev.time);
  ++events_run_;
  ev.fn();
  return true;
}

void EventEngine::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace bandslim::sim
