// Deterministic discrete-event engine. Events are keyed by (time, sequence):
// the sequence number is assigned at Schedule() time and breaks ties, so two
// runs of the same program pop events in exactly the same order — determinism
// does not depend on heap implementation details or callback addresses.
//
// The engine is the arbiter of the multi-queue execution mode: each host
// stream (one NVMe queue pair driven synchronously) schedules its next
// submission at its own stream time, the engine pops the earliest one, sets
// the virtual clock to that time frame, and the stream runs its command
// against the device's resource timelines (NAND channel/way busy intervals,
// the shared command-fetch unit). Completions therefore drain in global
// completion order while each queue's command stream stays FIFO — the
// invariant the controller's fragment reassembly relies on (Section 3.3.1).
//
// The clock may move *backward* when the engine re-enters an earlier
// stream's frame; all resource timelines are kept in absolute virtual time,
// so bookings stay consistent (see VirtualClock::SetTime).
//
// Hot-path layout (DESIGN.md §2.6): the heap stores 24-byte POD entries
// (time, seq, node index) and the callbacks live in a chunked arena of
// InlineFunction slots recycled through a free list. Steady state therefore
// performs zero heap allocations per event: no std::function boxing, no
// node churn. RunUntilIdle() additionally drains same-timestamp runs in one
// batch — the run is popped off the heap once, and callbacks that schedule
// follow-on work into the *same* time frame append to the batch in O(1)
// instead of round-tripping through the heap.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "sim/clock.h"

namespace bandslim::sim {

class EventEngine {
 public:
  // Inline capture budget. The engine's own closures (a function pointer or
  // two plus a stream id and an op index) are well under this; oversized
  // captures still work but spill to the heap inside InlineFunction.
  using Callback = InlineFunction<48>;

  // Returned by NextEventTime() when nothing is pending (release builds;
  // debug builds assert first). No real event can carry this timestamp:
  // VirtualClock would overflow-assert long before ~584 years of virtual
  // time.
  static constexpr Nanoseconds kNoEventTime =
      std::numeric_limits<Nanoseconds>::max();

  explicit EventEngine(VirtualClock* clock) : clock_(clock) {}

  // Enqueues `fn` to run at virtual time `when`. Returns the event's
  // sequence number (monotonic; the tie-break key).
  template <typename F>
  std::uint64_t Schedule(Nanoseconds when, F&& fn) {
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t node = AcquireNode();
    NodeAt(node).Emplace(std::forward<F>(fn));
    if (draining_ && when == batch_time_) {
      // Same-frame fast path: the new event's seq is larger than every
      // entry already in the batch, so appending preserves (time, seq)
      // order without touching the heap.
      run_.push_back(Entry{when, seq, node});
    } else {
      heap_.push_back(Entry{when, seq, node});
      std::push_heap(heap_.begin(), heap_.end(), Later);
    }
    return seq;
  }

  // Pops the earliest (time, seq) event, sets the clock to its time, and
  // runs it. Returns false when no event is pending.
  bool RunOne();

  // Drains the heap, including events scheduled by running events, popping
  // same-timestamp runs as a batch. Not reentrant.
  void RunUntilIdle();

  // Pre-sizes the heap, the batch buffer, and the callback arena for `n`
  // simultaneously pending events, so a campaign's steady state never grows
  // a container mid-run.
  void Reserve(std::size_t n);

  std::size_t pending() const {
    return heap_.size() + (run_.size() - run_pos_);
  }
  std::uint64_t events_run() const { return events_run_; }

  // Earliest pending event time. Asserts non-empty in debug builds and
  // returns kNoEventTime when idle in release builds — never reads a
  // nonexistent heap front.
  Nanoseconds NextEventTime() const;

 private:
  // POD heap/batch entry; the callback body lives in the arena at `node`.
  struct Entry {
    Nanoseconds time;
    std::uint64_t seq;
    std::uint32_t node;
  };
  // Min-heap on (time, seq) via std:: heap algorithms.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static constexpr std::uint32_t kChunkShift = 6;  // 64 callback slots/chunk.
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  Callback& NodeAt(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  std::uint32_t AcquireNode() {
    if (free_nodes_.empty()) AddChunk();
    const std::uint32_t n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }

  void AddChunk();
  // Enters the entry's time frame, runs its callback, and recycles the node.
  void Execute(const Entry& e);

  VirtualClock* clock_;
  std::vector<Entry> heap_;
  // Current same-timestamp batch (entries [run_pos_, size) still pending).
  std::vector<Entry> run_;
  std::size_t run_pos_ = 0;
  Nanoseconds batch_time_ = 0;
  bool draining_ = false;
  // Callback arena: fixed-size chunks so slots never relocate while live
  // (InlineFunction is neither copyable nor movable), plus a free list of
  // recycled slot indices.
  std::vector<std::unique_ptr<Callback[]>> chunks_;
  std::vector<std::uint32_t> free_nodes_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_run_ = 0;
};

}  // namespace bandslim::sim
