// Deterministic discrete-event engine. Events are keyed by (time, sequence):
// the sequence number is assigned at Schedule() time and breaks ties, so two
// runs of the same program pop events in exactly the same order — determinism
// does not depend on heap implementation details or callback addresses.
//
// The engine is the arbiter of the multi-queue execution mode: each host
// stream (one NVMe queue pair driven synchronously) schedules its next
// submission at its own stream time, the engine pops the earliest one, sets
// the virtual clock to that time frame, and the stream runs its command
// against the device's resource timelines (NAND channel/way busy intervals,
// the shared command-fetch unit). Completions therefore drain in global
// completion order while each queue's command stream stays FIFO — the
// invariant the controller's fragment reassembly relies on (Section 3.3.1).
//
// The clock may move *backward* when the engine re-enters an earlier
// stream's frame; all resource timelines are kept in absolute virtual time,
// so bookings stay consistent (see VirtualClock::SetTime).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.h"

namespace bandslim::sim {

class EventEngine {
 public:
  using Callback = std::function<void()>;

  explicit EventEngine(VirtualClock* clock) : clock_(clock) {}

  // Enqueues `fn` to run at virtual time `when`. Returns the event's
  // sequence number (monotonic; the tie-break key).
  std::uint64_t Schedule(Nanoseconds when, Callback fn);

  // Pops the earliest (time, seq) event, sets the clock to its time, and
  // runs it. Returns false when no event is pending.
  bool RunOne();

  // Drains the heap, including events scheduled by running events.
  void RunUntilIdle();

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_run() const { return events_run_; }
  // Earliest pending event time (undefined when empty; check pending()).
  Nanoseconds NextEventTime() const { return heap_.front().time; }

 private:
  struct Event {
    Nanoseconds time;
    std::uint64_t seq;
    Callback fn;
  };
  // Min-heap on (time, seq) via std:: heap algorithms (priority_queue would
  // force a copy of the callback out of a const top()).
  static bool Later(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  VirtualClock* clock_;
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_run_ = 0;
};

}  // namespace bandslim::sim
