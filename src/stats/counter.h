// Simple named counters. The simulation is single-threaded per device
// instance (the paper's passthrough path is serialized), so plain integers
// suffice; no atomics on the hot path.
#pragma once

#include <cstdint>

namespace bandslim::stats {

class Counter {
 public:
  void Add(std::uint64_t n) { value_ += n; }
  void Increment() { ++value_; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace bandslim::stats
