#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace bandslim::stats {

int Histogram::BucketFor(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min(kNumBuckets - 1, 64 - std::countl_zero(value));
}

void Histogram::Record(std::uint64_t value) {
  ++buckets_[static_cast<std::size_t>(BucketFor(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Bucket i holds values in [2^(i-1), 2^i); interpolate.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_);
}

std::uint64_t Histogram::QuantileFromBuckets(const BucketArray& buckets,
                                             std::uint64_t count,
                                             std::uint32_t permille) {
  if (count == 0) return 0;
  if (permille > 1000) permille = 1000;
  // 1-based rank of the requested quantile; permille = 0 reads the minimum.
  std::uint64_t rank = (count * permille + 999) / 1000;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const std::uint64_t lo = BucketLowerBound(i);
      const std::uint64_t hi = BucketUpperBound(i);
      // Position within the bucket, 1..in_bucket; anchor at the lower edge
      // so a single-value bucket reports exactly its lower bound. The
      // intermediate product needs 128 bits: (hi - lo) can reach 2^62.
      const std::uint64_t pos = rank - cumulative;
      return lo + static_cast<std::uint64_t>(
                      static_cast<unsigned __int128>(hi - lo) * (pos - 1) /
                      in_bucket);
    }
    cumulative += in_bucket;
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::MergeFrom(const BucketArray& buckets, std::uint64_t count,
                          std::uint64_t sum) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    buckets_[static_cast<std::size_t>(i)] += n;
    min_ = std::min(min_, BucketLowerBound(i));
    max_ = std::max(max_, BucketLowerBound(i));
  }
  count_ += count;
  sum_ += sum;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << min()
     << " p50=" << Percentile(50) << " p99=" << Percentile(99) << " max=" << max_;
  return os.str();
}

}  // namespace bandslim::stats
