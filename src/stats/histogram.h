// Log-bucketed histogram for latency distributions. Buckets grow
// geometrically (x2) from 1 ns, so percentile error is bounded by the
// bucket width while memory stays constant.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bandslim::stats {

class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;
  // Percentile in [0, 100]; interpolates linearly within a bucket.
  double Percentile(double p) const;

  void Merge(const Histogram& other);
  void Reset();

  std::string ToString() const;

 private:
  static int BucketFor(std::uint64_t value);

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace bandslim::stats
