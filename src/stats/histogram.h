// Log-bucketed histogram for latency distributions. Buckets grow
// geometrically (x2) from 1 ns, so percentile error is bounded by the
// bucket width while memory stays constant.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bandslim::stats {

class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  using BucketArray = std::array<std::uint64_t, kNumBuckets>;

  void Record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;
  // Percentile in [0, 100]; interpolates linearly within a bucket.
  double Percentile(double p) const;

  // Raw cumulative bucket counts. Bucket 0 holds the value 0; bucket i >= 1
  // holds [2^(i-1), 2^i). The telemetry sampler subtracts two snapshots of
  // this array to get the histogram of one sample interval.
  const BucketArray& bucket_counts() const { return buckets_; }
  static std::uint64_t BucketLowerBound(int bucket) {
    return bucket == 0 ? 0 : 1ULL << (bucket - 1);
  }
  static std::uint64_t BucketUpperBound(int bucket) {
    return bucket == 0 ? 1 : (bucket >= 63 ? ~0ULL : 1ULL << bucket);
  }

  // Fixed-point integer quantile estimate (permille in [0, 1000]): finds
  // the bucket holding rank ceil(permille/1000 * count) and interpolates
  // linearly inside it in pure integer arithmetic, anchored at the bucket's
  // lower bound. Deterministic across platforms — no floating point — and
  // 0 for an empty histogram. `count` must equal the sum of `buckets`.
  static std::uint64_t QuantileFromBuckets(const BucketArray& buckets,
                                           std::uint64_t count,
                                           std::uint32_t permille);
  std::uint64_t QuantilePermille(std::uint32_t permille) const {
    return QuantileFromBuckets(buckets_, count_, permille);
  }

  void Merge(const Histogram& other);
  // Merges a detached bucket snapshot (the shape MetricsRegistry hands out
  // as HistogramBuckets) into this histogram. Counts, sums, and every
  // quantile computed via QuantileFromBuckets are exact — merging N shards'
  // bucket arrays and taking a quantile equals taking the quantile over the
  // union of their recordings, because the bucket boundaries are shared.
  // min/max are recovered at bucket resolution only (the snapshot does not
  // carry them): min snaps to the lowest non-empty bucket's lower bound,
  // max to the highest non-empty bucket's lower bound.
  void MergeFrom(const BucketArray& buckets, std::uint64_t count,
                 std::uint64_t sum);
  void Reset();

  std::string ToString() const;

 private:
  static int BucketFor(std::uint64_t value);

  BucketArray buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace bandslim::stats
