#include "stats/metrics.h"

#include <cassert>
#include <sstream>

namespace bandslim::stats {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &histograms_[name];
}

Result<Counter*> MetricsRegistry::TryRegisterCounter(const std::string& name) {
  auto [it, inserted] = counters_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("counter '" + name +
                                 "' is already registered");
  }
  return &it->second;
}

Result<Histogram*> MetricsRegistry::TryRegisterHistogram(
    const std::string& name) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("histogram '" + name +
                                 "' is already registered");
  }
  return &it->second;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  auto result = TryRegisterCounter(name);
  assert(result.ok() && "duplicate counter registration");
  return result.ok() ? result.value() : GetCounter(name);
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name) {
  auto result = TryRegisterHistogram(name);
  assert(result.ok() && "duplicate histogram registration");
  return result.ok() ? result.value() : GetHistogram(name);
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::map<std::string, std::uint64_t> MetricsRegistry::SnapshotCounters() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

void MetricsRegistry::SnapshotCountersInto(
    std::map<std::string, std::uint64_t>* out) const {
  // Both maps iterate in name order, so one lockstep sweep updates matching
  // nodes in place; inserts (a counter created since the previous call) and
  // erases (only possible with a different registry) stay off the steady
  // state path.
  auto it = out->begin();
  for (const auto& [name, c] : counters_) {
    while (it != out->end() && it->first < name) it = out->erase(it);
    if (it != out->end() && it->first == name) {
      it->second = c.value();
      ++it;
    } else {
      it = out->emplace_hint(it, name, c.value());
      ++it;
    }
  }
  out->erase(it, out->end());
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::SnapshotHistograms()
    const {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    out.emplace(name,
                HistogramSnapshot{h.count(), h.sum(), h.min(), h.max(),
                                  h.Mean(), h.Percentile(50.0),
                                  h.Percentile(99.0), h.QuantilePermille(500),
                                  h.QuantilePermille(950),
                                  h.QuantilePermille(990)});
  }
  return out;
}

std::map<std::string, HistogramBuckets>
MetricsRegistry::SnapshotHistogramBuckets() const {
  std::map<std::string, HistogramBuckets> out;
  for (const auto& [name, h] : histograms_) {
    out.emplace(name, HistogramBuckets{h.bucket_counts(), h.count(), h.sum()});
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " : " << h.ToString() << "\n";
  }
  return os.str();
}

}  // namespace bandslim::stats
