// MetricsRegistry: a named collection of counters and histograms owned by a
// device instance. Components hold stable pointers obtained at construction
// (the registry never invalidates them), so hot-path updates are a single
// integer add with no map lookup.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "stats/counter.h"
#include "stats/histogram.h"

namespace bandslim::stats {

// Point-in-time summary of one histogram, detached from the live object.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  // Integer quantile estimates (Histogram::QuantilePermille) — the exact
  // fixed-point values the telemetry percentile series reconcile against.
  std::uint64_t q50 = 0;
  std::uint64_t q95 = 0;
  std::uint64_t q99 = 0;
};

// Full cumulative bucket contents of one histogram. Two snapshots taken at
// consecutive sample boundaries subtract element-wise into the histogram of
// that interval (counts are monotone, so the difference is well-formed).
struct HistogramBuckets {
  Histogram::BucketArray buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

class MetricsRegistry {
 public:
  // Returns the counter/histogram with `name`, creating it on first use.
  // Pointers remain valid for the registry's lifetime. Find-or-create is the
  // RE-ATTACH path: components that are rebuilt over the device's lifetime
  // (PowerCycle recreates the vLog/LSM/controller/buffer) use it to pick
  // their live counters back up. Components that exist once per registry
  // must use RegisterCounter/RegisterHistogram instead, so two writers
  // accidentally sharing a name fail loudly instead of silently summing
  // into one counter.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Registration path for once-per-registry owners: creating a name that
  // already exists is an error. TryRegister* reports kAlreadyExists;
  // Register* asserts (and, with assertions compiled out, degrades to the
  // find-or-create alias rather than crashing a release binary).
  Result<Counter*> TryRegisterCounter(const std::string& name);
  Result<Histogram*> TryRegisterHistogram(const std::string& name);
  Counter* RegisterCounter(const std::string& name);
  Histogram* RegisterHistogram(const std::string& name);

  // Heterogeneous lookup: a string literal or string_view probes the map
  // without materializing a std::string, so stat assembly (KvSsd::GetStats)
  // stays allocation-free.
  std::uint64_t CounterValue(std::string_view name) const;

  // Flat snapshot of every counter (name -> value), sorted by name.
  std::map<std::string, std::uint64_t> SnapshotCounters() const;

  // In-place variant for sampling loops: updates `*out` to mirror the
  // current counter set, reusing existing nodes. Steady state — when no
  // counter was created since the previous call — performs zero heap
  // allocations; new names are inserted and stale ones erased otherwise.
  void SnapshotCountersInto(std::map<std::string, std::uint64_t>* out) const;

  // Summary snapshot of every histogram (name -> summary), sorted by name.
  // Empty histograms are included (count = 0).
  std::map<std::string, HistogramSnapshot> SnapshotHistograms() const;

  // Full bucket snapshot of every histogram, sorted by name. The telemetry
  // sampler diffs consecutive snapshots to build per-interval histograms.
  std::map<std::string, HistogramBuckets> SnapshotHistogramBuckets() const;

  void ResetAll();

  // Human-readable dump of all counters and histogram summaries.
  std::string ToString() const;

 private:
  // std::less<> enables find(string_view) without a temporary std::string.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace bandslim::stats
