#include "telemetry/attribution/attribution.h"

#include <algorithm>
#include <sstream>

namespace bandslim::telemetry::attribution {

namespace {

std::uint64_t PerSecondMilli(std::uint64_t delta,
                             sim::Nanoseconds interval_ns) {
  if (interval_ns == 0) return 0;
  return delta * sim::kSecond / interval_ns * kMilliScale +
         delta * sim::kSecond % interval_ns * kMilliScale / interval_ns;
}

std::uint64_t RatioMilli(std::uint64_t numer, std::uint64_t denom) {
  if (denom == 0) return 0;
  return numer * kMilliScale / denom;
}

// The counters a tenant op is charged against — the same four families the
// fleet's delta.* series track, so the residual reconciles exactly.
constexpr const char* kOpsCounter = "nvme.commands_submitted";
constexpr const char* kValueBytesCounter = "controller.value_bytes_written";
constexpr const char* kNandPagesCounter = "nand.pages_programmed";
constexpr const char* kH2dCounters[4] = {
    "pcie.mmio.h2d_bytes", "pcie.cmd_fetch.h2d_bytes",
    "pcie.dma_data.h2d_bytes", "pcie.completion.h2d_bytes"};

// Allowed bad share in permille; floored at 1 so the burn-rate quotient is
// always defined (a 100.0% availability target reads as 99.9%).
std::uint64_t AllowedBadPermille(const SloConfig& slo) {
  const std::uint32_t target =
      std::min<std::uint32_t>(slo.availability_target_permille, 1000);
  return std::max<std::uint64_t>(1, 1000 - target);
}

// bad / (good + bad) / (allowed/1000), x1000: fixed-point burn rate.
std::uint64_t BurnMilli(std::uint64_t good, std::uint64_t bad,
                        std::uint64_t allowed_permille) {
  const std::uint64_t total = good + bad;
  if (total == 0 || bad == 0) return 0;
  return bad * 1000 * kMilliScale / (total * allowed_permille);
}

}  // namespace

WatchdogRule TenantBurnRateFastRule(std::size_t tenant,
                                    std::uint64_t burn_milli, std::uint32_t n,
                                    std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "slo_burn_fast_t" + std::to_string(tenant);
  r.series = "tenant" + std::to_string(tenant) + ".slo.burn_fast_milli";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = burn_milli;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  r.tenant = static_cast<std::uint16_t>(tenant + 1);
  return r;
}

WatchdogRule TenantBurnRateSlowRule(std::size_t tenant,
                                    std::uint64_t burn_milli, std::uint32_t n,
                                    std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "slo_burn_slow_t" + std::to_string(tenant);
  r.series = "tenant" + std::to_string(tenant) + ".slo.burn_slow_milli";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = burn_milli;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  r.tenant = static_cast<std::uint16_t>(tenant + 1);
  return r;
}

WatchdogRule HotRangeRule(std::uint64_t share_permille, std::uint32_t n,
                          std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "hot_key_range";
  r.series = "heat.max_share_permille";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = share_permille;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  return r;
}

AttributionPlane::AttributionPlane(const AttributionConfig& config)
    : config_(config) {
  if (config_.heat_fanout == 0) config_.heat_fanout = 1;
  if (config_.heat_decay_keep_permille > 1000) {
    config_.heat_decay_keep_permille = 1000;
  }
  heat_.assign(config_.heat_fanout, 0);
}

void AttributionPlane::Bind(
    const std::vector<stats::MetricsRegistry*>& shard_metrics,
    std::vector<std::string> tenant_names) {
  shard_counters_.clear();
  shard_counters_.reserve(shard_metrics.size());
  for (stats::MetricsRegistry* metrics : shard_metrics) {
    CounterRefs refs;
    // GetCounter is the find-or-create RE-ATTACH path: these names are
    // registered by the device components at assembly, so this only looks
    // up stable pointers — the plane reads them, never writes.
    refs.ops = metrics->GetCounter(kOpsCounter);
    refs.value_bytes = metrics->GetCounter(kValueBytesCounter);
    for (int c = 0; c < 4; ++c) {
      refs.h2d[c] = metrics->GetCounter(kH2dCounters[c]);
    }
    refs.nand_pages = metrics->GetCounter(kNandPagesCounter);
    shard_counters_.push_back(refs);
  }

  tenant_names_ = std::move(tenant_names);
  const std::size_t n = tenant_names_.size();
  slo_configs_ = config_.slo;
  slo_configs_.resize(n);
  for (SloConfig& slo : slo_configs_) {
    slo.fast_windows = std::max<std::uint32_t>(1, slo.fast_windows);
    slo.slow_windows = std::max(slo.fast_windows, slo.slow_windows);
  }
  tenants_.assign(n, TenantCharges{});
  prev_tenants_.assign(n, TenantCharges{});
  latency_.assign(n, stats::Histogram{});
  prev_latency_buckets_.assign(n, stats::Histogram::BucketArray{});
  prev_latency_counts_.assign(n, 0);
  windows_.assign(n, {});
  slo_.assign(n, SloState{});
  untagged_ = TenantCharges{};
  prev_untagged_ = TenantCharges{};
}

AttributionPlane::CounterRead AttributionPlane::ReadShard(
    std::uint32_t shard) const {
  const CounterRefs& refs = shard_counters_[shard];
  CounterRead r;
  r.ops = refs.ops->value();
  r.value_bytes = refs.value_bytes->value();
  for (int c = 0; c < 4; ++c) r.pcie_h2d_bytes += refs.h2d[c]->value();
  r.nand_pages = refs.nand_pages->value();
  return r;
}

void AttributionPlane::ChargeBegin(std::uint32_t shard) {
  charge_base_ = ReadShard(shard);
}

void AttributionPlane::ChargeEnd(std::size_t tenant, std::uint32_t shard) {
  const CounterRead now = ReadShard(shard);
  TenantCharges& t = tenants_[tenant];
  t.dev_ops += now.ops - charge_base_.ops;
  t.value_bytes += now.value_bytes - charge_base_.value_bytes;
  t.pcie_h2d_bytes += now.pcie_h2d_bytes - charge_base_.pcie_h2d_bytes;
  t.nand_pages += now.nand_pages - charge_base_.nand_pages;
}

void AttributionPlane::RecordOp(std::size_t tenant,
                                sim::Nanoseconds latency_ns, StatusCode code,
                                std::uint64_t requested_bytes) {
  TenantCharges& t = tenants_[tenant];
  ++t.ops;
  t.requested_bytes += requested_bytes;
  latency_[tenant].Record(static_cast<std::uint64_t>(latency_ns));
  // SLO classification: kNotFound is a well-formed answer, not a failure.
  const bool answered = code == StatusCode::kOk || code == StatusCode::kNotFound;
  if (code == StatusCode::kBusy) {
    ++t.shed_ops;
  } else if (answered) {
    ++t.ok_ops;
  } else {
    ++t.error_ops;
  }
  const SloConfig& slo = slo_configs_[tenant];
  const bool within_target =
      slo.latency_target_ns == 0 || latency_ns <= slo.latency_target_ns;
  if (answered && within_target) {
    ++t.good_ops;
  } else {
    ++t.bad_ops;
  }
}

void AttributionPlane::TouchKey(std::uint64_t key_hash) {
  // Contiguous range bucket: floor(hash * fanout / 2^64).
  const std::size_t bucket = static_cast<std::size_t>(
      (static_cast<unsigned __int128>(key_hash) * config_.heat_fanout) >> 64);
  ++heat_[bucket];
  ++heat_touches_;
}

void AttributionPlane::OnFleetSample(Sample* s, SeriesTable* series,
                                     const FleetTotals& totals) {
  const auto set = [&](const std::string& name, std::uint64_t value) {
    s->Set(series->Intern(name), value);
  };

  // --- Untagged residual: fleet totals minus the sum of tenant charges ----
  // Both sides are read at the same instant (inside TakeSample, after the
  // op that crossed the boundary fully completed), so the residual is exact
  // and every per-interval identity below holds by construction.
  TenantCharges sums;
  for (const TenantCharges& t : tenants_) {
    sums.dev_ops += t.dev_ops;
    sums.value_bytes += t.value_bytes;
    sums.pcie_h2d_bytes += t.pcie_h2d_bytes;
    sums.nand_pages += t.nand_pages;
  }
  untagged_.dev_ops = totals.ops - sums.dev_ops;
  untagged_.value_bytes = totals.value_bytes - sums.value_bytes;
  untagged_.pcie_h2d_bytes = totals.pcie_h2d_bytes - sums.pcie_h2d_bytes;
  untagged_.nand_pages = totals.nand_pages - sums.nand_pages;
  set("untagged.dev.ops", untagged_.dev_ops);
  set("untagged.delta.dev.ops", untagged_.dev_ops - prev_untagged_.dev_ops);
  set("untagged.value_bytes", untagged_.value_bytes);
  set("untagged.delta.value_bytes",
      untagged_.value_bytes - prev_untagged_.value_bytes);
  set("untagged.pcie.h2d_bytes", untagged_.pcie_h2d_bytes);
  set("untagged.delta.pcie.h2d_bytes",
      untagged_.pcie_h2d_bytes - prev_untagged_.pcie_h2d_bytes);
  set("untagged.nand.pages_programmed", untagged_.nand_pages);
  set("untagged.delta.nand.pages_programmed",
      untagged_.nand_pages - prev_untagged_.nand_pages);
  prev_untagged_ = untagged_;

  // --- Per-tenant series ---------------------------------------------------
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantCharges& t = tenants_[i];
    const TenantCharges& p = prev_tenants_[i];
    const std::string base = "tenant" + std::to_string(i);
    set(base + ".ops", t.ops);
    set(base + ".delta.ops", t.ops - p.ops);
    set(base + ".shed", t.shed_ops);
    set(base + ".delta.shed", t.shed_ops - p.shed_ops);
    set(base + ".errors", t.error_ops);
    set(base + ".requested_bytes", t.requested_bytes);
    set(base + ".dev.ops", t.dev_ops);
    set(base + ".delta.dev.ops", t.dev_ops - p.dev_ops);
    set(base + ".value_bytes", t.value_bytes);
    set(base + ".delta.value_bytes", t.value_bytes - p.value_bytes);
    set(base + ".pcie.h2d_bytes", t.pcie_h2d_bytes);
    set(base + ".delta.pcie.h2d_bytes",
        t.pcie_h2d_bytes - p.pcie_h2d_bytes);
    set(base + ".nand.pages_programmed", t.nand_pages);
    set(base + ".delta.nand.pages_programmed", t.nand_pages - p.nand_pages);
    set(base + ".rate.ops_per_sec_milli",
        PerSecondMilli(t.ops - p.ops, s->interval_ns));
    set(base + ".rate.taf_milli",
        RatioMilli(t.pcie_h2d_bytes - p.pcie_h2d_bytes,
                   t.value_bytes - p.value_bytes));
    set(base + ".total.taf_milli",
        RatioMilli(t.pcie_h2d_bytes, t.value_bytes));

    // Interval latency percentiles from the tenant histogram's bucket delta
    // — same shared-boundary exactness as the fleet's merged percentiles.
    const stats::Histogram::BucketArray& cur = latency_[i].bucket_counts();
    stats::Histogram::BucketArray delta{};
    for (int b = 0; b < stats::Histogram::kNumBuckets; ++b) {
      delta[static_cast<std::size_t>(b)] =
          cur[static_cast<std::size_t>(b)] -
          prev_latency_buckets_[i][static_cast<std::size_t>(b)];
    }
    const std::uint64_t d_count = latency_[i].count() - prev_latency_counts_[i];
    set(base + ".p50",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 500));
    set(base + ".p95",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 950));
    set(base + ".p99",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 990));
    set(base + ".lifetime.p99", latency_[i].QuantilePermille(990));
    prev_latency_buckets_[i] = cur;
    prev_latency_counts_[i] = latency_[i].count();

    // SLO ledger: advance the trailing windows by this interval's good/bad
    // deltas, then derive burn rates and lifetime budget spend.
    const SloConfig& slo = slo_configs_[i];
    const std::uint64_t allowed = AllowedBadPermille(slo);
    auto& win = windows_[i];
    win.emplace_back(t.good_ops - p.good_ops, t.bad_ops - p.bad_ops);
    while (win.size() > slo.slow_windows) win.pop_front();
    std::uint64_t fast_good = 0, fast_bad = 0, slow_good = 0, slow_bad = 0;
    const std::size_t fast_from =
        win.size() > slo.fast_windows ? win.size() - slo.fast_windows : 0;
    for (std::size_t w = 0; w < win.size(); ++w) {
      slow_good += win[w].first;
      slow_bad += win[w].second;
      if (w >= fast_from) {
        fast_good += win[w].first;
        fast_bad += win[w].second;
      }
    }
    SloState& state = slo_[i];
    state.burn_fast_milli = BurnMilli(fast_good, fast_bad, allowed);
    state.burn_slow_milli = BurnMilli(slow_good, slow_bad, allowed);
    // bad-share / allowed-share, in permille of the whole budget: spend is
    // (bad/ops) / (allowed/1000), rendered x1000 — so 1000 means the
    // lifetime budget is exactly exhausted.
    state.budget_spent_permille =
        t.ops == 0 ? 0 : t.bad_ops * 1000 * 1000 / (t.ops * allowed);
    set(base + ".slo.good", t.good_ops);
    set(base + ".slo.bad", t.bad_ops);
    set(base + ".slo.delta.bad", t.bad_ops - p.bad_ops);
    set(base + ".slo.burn_fast_milli", state.burn_fast_milli);
    set(base + ".slo.burn_slow_milli", state.burn_slow_milli);
    set(base + ".slo.budget_spent_permille", state.budget_spent_permille);
    prev_tenants_[i] = t;
  }

  // --- Key-space heat: shares over the decayed weights, then decay --------
  std::uint64_t total = 0, max_weight = 0;
  heat_hot_range_ = 0;
  for (std::size_t b = 0; b < heat_.size(); ++b) {
    total += heat_[b];
    if (heat_[b] > max_weight) {
      max_weight = heat_[b];
      heat_hot_range_ = b;
    }
  }
  heat_max_share_permille_ = total == 0 ? 0 : max_weight * 1000 / total;
  set("heat.touches", heat_touches_);
  set("heat.weight", total);
  set("heat.max_share_permille", heat_max_share_permille_);
  set("heat.hot_range", heat_hot_range_);
  for (std::uint64_t& w : heat_) {
    w = w * config_.heat_decay_keep_permille / 1000;
  }
}

void AttributionPlane::AppendPrometheus(std::string* out,
                                        std::uint64_t ts_ms) const {
  std::ostringstream os;
  // Tenant-labeled block: one family per ledger column, every tenant plus
  // the untagged residual row where the column is a device charge.
  const auto family = [&](const char* name, const char* type,
                          bool with_untagged, auto getter) {
    os << "# TYPE " << name << " " << type << "\n";
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      os << name << "{tenant=\"" << tenant_names_[i] << "\"} "
         << getter(tenants_[i]) << " " << ts_ms << "\n";
    }
    if (with_untagged) {
      os << name << "{tenant=\"untagged\"} " << getter(untagged_) << " "
         << ts_ms << "\n";
    }
  };
  family("bandslim_tenant_ops_total", "counter", false,
         [](const TenantCharges& t) { return t.ops; });
  family("bandslim_tenant_shed_total", "counter", false,
         [](const TenantCharges& t) { return t.shed_ops; });
  family("bandslim_tenant_dev_ops_total", "counter", true,
         [](const TenantCharges& t) { return t.dev_ops; });
  family("bandslim_tenant_value_bytes_total", "counter", true,
         [](const TenantCharges& t) { return t.value_bytes; });
  family("bandslim_tenant_pcie_h2d_bytes_total", "counter", true,
         [](const TenantCharges& t) { return t.pcie_h2d_bytes; });
  family("bandslim_tenant_nand_pages_programmed_total", "counter", true,
         [](const TenantCharges& t) { return t.nand_pages; });
  family("bandslim_tenant_slo_bad_total", "counter", false,
         [](const TenantCharges& t) { return t.bad_ops; });
  const auto slo_family = [&](const char* name, auto getter) {
    os << "# TYPE " << name << " gauge\n";
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      os << name << "{tenant=\"" << tenant_names_[i] << "\"} "
         << getter(slo_[i]) << " " << ts_ms << "\n";
    }
  };
  slo_family("bandslim_tenant_slo_burn_fast_milli",
             [](const SloState& s) { return s.burn_fast_milli; });
  slo_family("bandslim_tenant_slo_burn_slow_milli",
             [](const SloState& s) { return s.burn_slow_milli; });
  slo_family("bandslim_tenant_slo_budget_spent_permille",
             [](const SloState& s) { return s.budget_spent_permille; });
  os << "# TYPE bandslim_tenant_p99_ns gauge\n";
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    os << "bandslim_tenant_p99_ns{tenant=\"" << tenant_names_[i] << "\"} "
       << latency_[i].QuantilePermille(990) << " " << ts_ms << "\n";
  }
  // Key-space heat: the decayed range histogram, one row per hash range.
  os << "# TYPE bandslim_keyspace_heat gauge\n";
  for (std::size_t b = 0; b < heat_.size(); ++b) {
    os << "bandslim_keyspace_heat{range=\"" << b << "\"} " << heat_[b] << " "
       << ts_ms << "\n";
  }
  os << "# TYPE bandslim_keyspace_heat_max_share_permille gauge\n";
  os << "bandslim_keyspace_heat_max_share_permille "
     << heat_max_share_permille_ << " " << ts_ms << "\n";
  os << "# TYPE bandslim_keyspace_hot_range gauge\n";
  os << "bandslim_keyspace_hot_range " << heat_hot_range_ << " " << ts_ms
     << "\n";
  *out += os.str();
}

std::string AttributionPlane::SloJsonl() const {
  if (!config_.enabled || tenants_.empty()) return "";
  std::ostringstream os;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantCharges& t = tenants_[i];
    const SloConfig& slo = slo_configs_[i];
    os << "{\"tenant\":" << i << ",\"name\":\"" << tenant_names_[i]
       << "\",\"ops\":" << t.ops << ",\"good\":" << t.good_ops
       << ",\"bad\":" << t.bad_ops << ",\"shed\":" << t.shed_ops
       << ",\"errors\":" << t.error_ops
       << ",\"latency_target_ns\":" << slo.latency_target_ns
       << ",\"availability_target_permille\":"
       << slo.availability_target_permille
       << ",\"allowed_bad_permille\":" << AllowedBadPermille(slo)
       << ",\"budget_spent_permille\":" << slo_[i].budget_spent_permille
       << ",\"burn_fast_milli\":" << slo_[i].burn_fast_milli
       << ",\"burn_slow_milli\":" << slo_[i].burn_slow_milli
       << ",\"p99_ns\":" << latency_[i].QuantilePermille(990)
       << ",\"dev_ops\":" << t.dev_ops << ",\"value_bytes\":" << t.value_bytes
       << ",\"pcie_h2d_bytes\":" << t.pcie_h2d_bytes
       << ",\"nand_pages_programmed\":" << t.nand_pages
       << ",\"taf_milli\":" << RatioMilli(t.pcie_h2d_bytes, t.value_bytes)
       << "}\n";
  }
  return os.str();
}

}  // namespace bandslim::telemetry::attribution
