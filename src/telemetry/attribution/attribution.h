// Per-tenant and key-space attribution plane (DESIGN.md 2.10): the layer
// that turns the fleet's "what is the cluster doing" telemetry into "who is
// doing it to whom". A KvCluster owns one AttributionPlane and brackets
// every routed client op with it:
//
//   TouchKey(hash)   key-space heat: which hash range this op landed in
//   ChargeBegin/End  device-counter deltas (commands, value bytes, PCIe
//                    H2D bytes, NAND pages) charged to the issuing tenant
//   RecordOp         router-observed latency + status (kBusy = shed) into
//                    the tenant's log-bucket histogram and SLO ledger
//
// The plane does not run its own sampler: FleetAggregator::TakeSample calls
// OnFleetSample so every tenant/heat/SLO series lands in the SAME interval
// grid, timeline, and watchdog pass as the fleet series (one merged
// /timeline.jsonl, burn-rate rules ride the existing hysteresis engine and
// surface in StoreSnapshot::alerts).
//
// Attribution invariants (asserted by tests/attribution_test and enforced
// by bench/tenant_slo_report exiting nonzero):
//  * Exact reconciliation. Tenant device charges are before/after reads of
//    the owner shard's live counters around each routed op; the untagged
//    bucket is the residual against the summed fleet counters at the sample
//    instant (background work: flushes, recovery, harness-driven direct
//    shard traffic). So for every interval
//        sum over tenants of tenant<t>.delta.dev.* + untagged.delta.*
//          == fleet delta.*                                      exactly,
//    and the deltas telescope to the summed final GetStats() counters —
//    the PR 9 invariant, sliced one level finer.
//  * Observation only. The plane never advances a clock and never touches
//    device state: every hook is reads + private accumulation, disabled
//    attribution is one branch per op, and an attribution-off run is
//    bit-identical in virtual time and device counters.
//  * Determinism. All series are integral/fixed-point (x1000 milli ratios,
//    permille shares); exports render byte-identically across runs.
//
// TenantId convention (shared with trace and event-log stamps): 0 means
// untagged/background; cluster tenant index t is stamped as t + 1. Series
// and export labels use the cluster tenant INDEX (tenant0 = first
// configured tenant); the untagged residual renders as "untagged".
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/clock.h"
#include "stats/histogram.h"
#include "stats/metrics.h"
#include "telemetry/sample.h"
#include "telemetry/watchdog.h"

namespace bandslim::telemetry::attribution {

// 0 = untagged/background; cluster tenant index t stamps as t + 1.
using TenantId = std::uint16_t;

// Declarative per-tenant service-level objective. An op is GOOD when it
// completed OK and (if latency_target_ns > 0) within the latency target;
// everything else — errors, kBusy admission sheds, too-slow ops — is BAD.
// The error budget is the allowed bad fraction, 1000 - availability target,
// in permille; burn rate is the bad fraction over a trailing window divided
// by that allowance (1000 milli = burning the budget exactly at the allowed
// rate; 4000 = 4x too fast).
struct SloConfig {
  // Per-op latency objective on the router timeline (virtual ns); 0
  // disables the latency criterion (availability-only SLO).
  sim::Nanoseconds latency_target_ns = 0;
  // Availability objective in permille: 990 = 99.0% of ops must be good.
  std::uint32_t availability_target_permille = 990;
  // Multi-window burn-rate horizons, in fleet sample intervals. The fast
  // window catches sharp regressions (page-now), the slow window catches
  // sustained slow burns (ticket); fast_windows is clamped to slow_windows.
  std::uint32_t fast_windows = 3;
  std::uint32_t slow_windows = 12;
};

struct AttributionConfig {
  bool enabled = false;
  // Fixed-fanout range histogram over the 64-bit key hash space: bucket i
  // covers hashes in [i, i+1) * 2^64 / heat_fanout. Contiguous ranges, so a
  // hot BUCKET names a hot slice of the hash ring.
  std::uint32_t heat_fanout = 64;
  // Exponential decay applied to every heat bucket at each sample boundary:
  // the bucket keeps keep_permille/1000 of its weight per interval, so heat
  // is a trailing-window gauge (500 = half-life of one interval), not a
  // lifetime counter.
  std::uint32_t heat_decay_keep_permille = 500;
  // Per-tenant SLOs, indexed by cluster tenant index; tenants beyond the
  // vector get the default SloConfig.
  std::vector<SloConfig> slo;
};

// --- Canned attribution rules ---------------------------------------------
// Rule table (inputs are series OnFleetSample folds into the fleet grid;
// all read 0 before the first sample, so quiet runs stay silent):
//
//   series                              what it measures
//   tenant<t>.slo.burn_fast_milli
//       bad-op share over the FAST window / allowed bad share, x1000.
//   tenant<t>.slo.burn_slow_milli
//       same over the SLOW window — the sustained-burn signal.
//   heat.max_share_permille
//       hottest key-range bucket's share of decayed heat, in permille.
//
// Burn-rate rules carry the tenant stamp (index + 1) so their kAlert /
// kAlertCleared events are attributable in /timeline.jsonl.

// Tenant's fast-window burn rate at least `burn_milli` (default 4x the
// allowed rate, the classic page-now threshold) for `n` intervals.
WatchdogRule TenantBurnRateFastRule(std::size_t tenant,
                                    std::uint64_t burn_milli = 4000,
                                    std::uint32_t n = 2,
                                    std::uint32_t clear_n = 2);
// Tenant's slow-window burn rate at least `burn_milli` (default 1x: the
// budget is being spent faster than it accrues) for `n` intervals.
WatchdogRule TenantBurnRateSlowRule(std::size_t tenant,
                                    std::uint64_t burn_milli = 1000,
                                    std::uint32_t n = 4,
                                    std::uint32_t clear_n = 4);
// Hottest key-range bucket holds at least `share_permille` of the decayed
// heat for `n` intervals — the "this shard-imbalance fire is a hot key
// range, not a bad ring" explainer.
WatchdogRule HotRangeRule(std::uint64_t share_permille, std::uint32_t n,
                          std::uint32_t clear_n = 2);

class AttributionPlane {
 public:
  // Cumulative attribution ledger for one tenant slot. Slot semantics: the
  // router-level fields (ops/ok/shed/error/requested_bytes, latency, SLO)
  // are counted at RecordOp; the dev.* fields are the device-counter deltas
  // charged by ChargeBegin/End bracketing.
  struct TenantCharges {
    std::uint64_t ops = 0;              // Routed client ops.
    std::uint64_t ok_ops = 0;
    std::uint64_t shed_ops = 0;         // kBusy admission sheds.
    std::uint64_t error_ops = 0;        // Non-OK, non-busy completions.
    std::uint64_t requested_bytes = 0;  // Client-requested value bytes.
    std::uint64_t dev_ops = 0;          // nvme.commands_submitted charged.
    std::uint64_t value_bytes = 0;      // controller.value_bytes_written.
    std::uint64_t pcie_h2d_bytes = 0;   // Sum of the four pcie.*.h2d_bytes.
    std::uint64_t nand_pages = 0;       // nand.pages_programmed.
    std::uint64_t good_ops = 0;         // SLO-good (ok and within target).
    std::uint64_t bad_ops = 0;          // SLO-bad (error, shed, or slow).
  };

  // Summed fleet cumulatives at a sample instant (the untagged residual's
  // minuend); FleetAggregator fills this from its per-shard reads.
  struct FleetTotals {
    std::uint64_t ops = 0;
    std::uint64_t value_bytes = 0;
    std::uint64_t pcie_h2d_bytes = 0;
    std::uint64_t nand_pages = 0;
  };

  // Per-tenant SLO state as of the latest sample (what /slo.jsonl renders).
  struct SloState {
    std::uint64_t burn_fast_milli = 0;
    std::uint64_t burn_slow_milli = 0;
    // Lifetime budget spent: bad share / allowed bad share, in permille of
    // the whole budget (1000 = budget exhausted; can exceed 1000).
    std::uint64_t budget_spent_permille = 0;
  };

  explicit AttributionPlane(const AttributionConfig& config);

  bool enabled() const { return config_.enabled; }
  const AttributionConfig& config() const { return config_; }

  // Binds the per-shard counter observation points (cached stable Counter*
  // via the registry's find-or-create re-attach path — reads only) and the
  // tenant roster. Must be called before any hot-path hook.
  void Bind(const std::vector<stats::MetricsRegistry*>& shard_metrics,
            std::vector<std::string> tenant_names);

  // --- Hot path (cluster router; call only when enabled()) ----------------
  // Snapshot the owner shard's counters before dispatch...
  void ChargeBegin(std::uint32_t shard);
  // ...and charge the deltas to `tenant` (cluster tenant index) after.
  void ChargeEnd(std::size_t tenant, std::uint32_t shard);
  // Record one routed client op's router-observed outcome.
  void RecordOp(std::size_t tenant, sim::Nanoseconds latency_ns,
                StatusCode code, std::uint64_t requested_bytes);
  // Count one routed key (batch members individually) into its heat bucket.
  void TouchKey(std::uint64_t key_hash);

  // --- Sample grid (FleetAggregator::TakeSample) --------------------------
  // Folds tenant/heat/SLO series into the fleet sample being built, updates
  // the untagged residual against `totals`, advances burn windows, and
  // decays the heat buckets. Must run before the sample's values are sorted
  // and before the watchdog evaluates it.
  void OnFleetSample(Sample* s, SeriesTable* series,
                     const FleetTotals& totals);

  // --- Exports -------------------------------------------------------------
  // Appends tenant-labeled Prometheus families (and key-space heat gauges)
  // to a /metrics exposition; `ts_ms` is the sample timestamp.
  void AppendPrometheus(std::string* out, std::uint64_t ts_ms) const;
  // The /slo.jsonl document: one JSON object per tenant with its SLO
  // config, ledger, burn rates, and budget state as of the latest sample.
  // Empty when disabled (the exporter answers 404).
  std::string SloJsonl() const;

  // --- Introspection (tests / benches) -------------------------------------
  std::size_t num_tenants() const { return tenants_.size(); }
  const std::string& tenant_name(std::size_t tenant) const {
    return tenant_names_[tenant];
  }
  const TenantCharges& tenant_charges(std::size_t tenant) const {
    return tenants_[tenant];
  }
  // Residual (fleet totals minus tenant charges) as of the latest sample.
  const TenantCharges& untagged() const { return untagged_; }
  const SloState& slo_state(std::size_t tenant) const { return slo_[tenant]; }
  const SloConfig& slo_config(std::size_t tenant) const {
    return slo_configs_[tenant];
  }
  const stats::Histogram& tenant_latency(std::size_t tenant) const {
    return latency_[tenant];
  }
  const std::vector<std::uint64_t>& heat() const { return heat_; }
  std::uint64_t heat_touches() const { return heat_touches_; }

 private:
  struct CounterRefs {
    stats::Counter* ops = nullptr;
    stats::Counter* value_bytes = nullptr;
    stats::Counter* h2d[4] = {nullptr, nullptr, nullptr, nullptr};
    stats::Counter* nand_pages = nullptr;
  };
  struct CounterRead {
    std::uint64_t ops = 0;
    std::uint64_t value_bytes = 0;
    std::uint64_t pcie_h2d_bytes = 0;
    std::uint64_t nand_pages = 0;
  };
  CounterRead ReadShard(std::uint32_t shard) const;

  AttributionConfig config_;
  std::vector<CounterRefs> shard_counters_;
  std::vector<std::string> tenant_names_;
  std::vector<SloConfig> slo_configs_;  // Padded to the tenant count.

  std::vector<TenantCharges> tenants_;
  TenantCharges untagged_;  // Residual, recomputed at each sample.
  CounterRead charge_base_;  // ChargeBegin snapshot (ops are serial).

  std::vector<stats::Histogram> latency_;  // Per-tenant router latency.
  // Previous-sample cumulative state, for per-interval series.
  std::vector<TenantCharges> prev_tenants_;
  TenantCharges prev_untagged_;
  std::vector<stats::Histogram::BucketArray> prev_latency_buckets_;
  std::vector<std::uint64_t> prev_latency_counts_;
  // Trailing good/bad interval deltas per tenant (ring of slow_windows).
  std::vector<std::deque<std::pair<std::uint64_t, std::uint64_t>>> windows_;
  std::vector<SloState> slo_;

  std::vector<std::uint64_t> heat_;  // Decayed per-range weight.
  std::uint64_t heat_touches_ = 0;   // Lifetime touch count (no decay).
  std::uint64_t heat_hot_range_ = 0;
  std::uint64_t heat_max_share_permille_ = 0;
};

}  // namespace bandslim::telemetry::attribution
