#include "telemetry/event_log.h"

namespace bandslim::telemetry {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kGcStart: return "gc_start";
    case EventType::kGcEnd: return "gc_end";
    case EventType::kVlogGc: return "vlog_gc";
    case EventType::kBlockRetired: return "block_retired";
    case EventType::kTimeout: return "timeout";
    case EventType::kRetryBackoff: return "retry_backoff";
    case EventType::kCrash: return "crash";
    case EventType::kRecover: return "recover";
    case EventType::kPowerCycle: return "power_cycle";
    case EventType::kWatermarkLow: return "watermark_low";
    case EventType::kWatermarkCleared: return "watermark_cleared";
    case EventType::kAlert: return "alert";
    case EventType::kCompactionStart: return "compaction_start";
    case EventType::kCompactionEnd: return "compaction_end";
    case EventType::kMemtableStall: return "memtable_stall";
    case EventType::kAlertCleared: return "alert_cleared";
    case EventType::kControl: return "control";
  }
  return "unknown";
}

}  // namespace bandslim::telemetry
