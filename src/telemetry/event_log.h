// Structured event log (DESIGN.md 2.4). Components append typed, fixed-shape
// records — GC start/end, block retirement, command timeout/backoff, crash
// and recovery, free-pool watermark crossings, watchdog alerts — stamped
// from the shared sim::VirtualClock. The log is the discrete counterpart of
// the periodic sample stream: exporters interleave the two by virtual
// timestamp, so a TAF spike in the time series can be lined up with the GC
// run or timeout storm that caused it.
//
// This header depends only on sim/clock.h so that low layers (fault, nand,
// ftl, nvme) can hold an EventLog* without pulling in the sampler, which
// itself includes their headers. A null EventLog* is the disabled state:
// every emit site is a single pointer test.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "sim/clock.h"

namespace bandslim::telemetry {

enum class EventType : std::uint8_t {
  kGcStart = 0,      // a = victim block, b = valid pages to relocate.
  kGcEnd,            // a = victim block, b = pages relocated.
  kVlogGc,           // a = values relocated out of the oldest segment.
  kBlockRetired,     // a = block, b = 1 if replaced from the reserve pool.
  kTimeout,          // a = queue id, b = attempt index.
  kRetryBackoff,     // a = queue id, b = attempt index.
  kCrash,            // a = per-site op index at the power-loss latch.
  kRecover,          // a = live references verified at mount.
  kPowerCycle,       // Planned power cycle (device DRAM rebuilt).
  kWatermarkLow,     // a = free blocks, b = configured low watermark.
  kWatermarkCleared, // a = free blocks, b = configured low watermark.
  kAlert,            // a = watchdog rule index, b = observed series value.
  kCompactionStart,  // a = source level, b = tables in the source level.
  kCompactionEnd,    // a = source level, b = SSTable bytes written.
  kMemtableStall,    // a = MemTable bytes at flush, b = L0 run count.
  kAlertCleared,     // a = watchdog rule index, b = observed series value.
  kControl,          // a = control rule id, b = new setting (control loop).
};
inline constexpr int kNumEventTypes = 17;

const char* EventTypeName(EventType type);

// One fixed-shape record. `a`/`b` are type-specific details (see EventType);
// keeping them integral keeps the log allocation-free and its export
// byte-deterministic.
struct EventRecord {
  sim::Nanoseconds t_ns = 0;
  std::uint64_t seq = 0;  // Global emit order; tie-break for equal t_ns.
  EventType type = EventType::kGcStart;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  // Tenant attribution: 0 = untagged (device-internal or pre-attribution
  // emit sites), t+1 = cluster tenant index t. Last field so existing
  // positional aggregate initialization keeps working.
  std::uint16_t tenant = 0;
};

class EventLog {
 public:
  EventLog(const sim::VirtualClock* clock, std::size_t capacity)
      : clock_(clock), capacity_(capacity) {}

  void Emit(EventType type, std::uint64_t a = 0, std::uint64_t b = 0,
            std::uint16_t tenant = 0) {
    if (records_.size() == capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(
        EventRecord{clock_->Now(), next_seq_++, type, a, b, tenant});
    ++counts_[static_cast<int>(type)];
  }

  const std::deque<EventRecord>& records() const { return records_; }
  // Total emits of `type` over the log's lifetime (not clipped by the ring).
  std::uint64_t count(EventType type) const {
    return counts_[static_cast<int>(type)];
  }
  std::uint64_t total_emitted() const { return next_seq_; }
  std::uint64_t dropped() const { return dropped_; }

  void Clear() {
    records_.clear();
    counts_.fill(0);
    next_seq_ = 0;
    dropped_ = 0;
  }

 private:
  const sim::VirtualClock* clock_;
  std::size_t capacity_;
  std::deque<EventRecord> records_;
  std::array<std::uint64_t, kNumEventTypes> counts_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bandslim::telemetry
