#include "telemetry/export.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace bandslim::telemetry {

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string PrometheusTextCore(const std::deque<Sample>& samples,
                               const SeriesTable& series,
                               const Watchdog& watchdog,
                               std::uint64_t samples_emitted,
                               const char* counter_name,
                               const char* counter_help) {
  std::ostringstream os;
  os << "# HELP " << counter_name << " " << counter_help << "\n";
  os << "# TYPE " << counter_name << " counter\n";
  os << counter_name << " " << samples_emitted << "\n";
  if (!samples.empty()) {
    const Sample& last = samples.back();
    const std::uint64_t ts_ms = last.t_ns / sim::kMillisecond;
    // Stable order: sort the latest sample's series by name.
    std::map<std::string, std::uint64_t> by_name;
    for (const auto& [id, value] : last.values) {
      by_name.emplace(SanitizeMetricName(series.NameOf(id)), value);
    }
    for (const auto& [name, value] : by_name) {
      os << "# TYPE bandslim_" << name << " gauge\n";
      os << "bandslim_" << name << " " << value << " " << ts_ms << "\n";
    }
  }
  for (std::size_t i = 0; i < watchdog.rules().size(); ++i) {
    if (i == 0) {
      os << "# HELP bandslim_watchdog_alerts_total Edge-triggered watchdog "
            "rule fires.\n";
      os << "# TYPE bandslim_watchdog_alerts_total counter\n";
    }
    os << "bandslim_watchdog_alerts_total{rule=\""
       << SanitizeMetricName(watchdog.rules()[i].name) << "\"} "
       << watchdog.states()[i].fired << "\n";
  }
  return os.str();
}

std::string ToPrometheusText(const Sampler& sampler) {
  return PrometheusTextCore(
      sampler.samples(), sampler.series(), sampler.watchdog(),
      sampler.samples_emitted(), "bandslim_telemetry_samples_total",
      "Samples emitted by the virtual-time sampler.");
}

std::string TimelineJsonlCore(const std::deque<Sample>& samples,
                              const SeriesTable& series,
                              const EventLog& event_log,
                              const Watchdog& watchdog) {
  std::ostringstream os;
  const auto& events = event_log.records();
  const auto& rules = watchdog.rules();

  const auto emit_event = [&](const EventRecord& e) {
    os << "{\"kind\":\"event\",\"t_ns\":" << e.t_ns << ",\"seq\":" << e.seq
       << ",\"type\":\"" << EventTypeName(e.type) << "\"";
    if (e.type == EventType::kAlert && e.a < rules.size()) {
      os << ",\"rule\":\"" << rules[static_cast<std::size_t>(e.a)].name
         << "\"";
    }
    os << ",\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"tenant\":" << e.tenant << "}\n";
  };
  const auto emit_sample = [&](const Sample& s) {
    os << "{\"kind\":\"sample\",\"t_ns\":" << s.t_ns << ",\"seq\":" << s.seq
       << ",\"interval_ns\":" << s.interval_ns << ",\"values\":{";
    bool first = true;
    for (const auto& [id, value] : s.values) {
      if (!first) os << ",";
      first = false;
      os << "\"" << series.NameOf(id) << "\":" << value;
    }
    os << "}}\n";
  };

  // Merge by timestamp. An event at t belongs to the interval that a sample
  // stamped >= t closes, so events sort before an equal-stamped sample —
  // except events the sample itself emitted (watchdog alerts, recognized by
  // seq >= events_before), which sort after it.
  std::size_t si = 0, ei = 0;
  while (si < samples.size() || ei < events.size()) {
    const bool take_event =
        ei < events.size() &&
        (si >= samples.size() || events[ei].t_ns < samples[si].t_ns ||
         (events[ei].t_ns == samples[si].t_ns &&
          events[ei].seq < samples[si].events_before));
    if (take_event) {
      emit_event(events[ei++]);
    } else {
      emit_sample(samples[si++]);
    }
  }
  return os.str();
}

std::string ToJsonl(const Sampler& sampler) {
  return TimelineJsonlCore(sampler.samples(), sampler.series(),
                           sampler.event_log(), sampler.watchdog());
}

std::string ToTimeSeriesCsv(const Sampler& sampler,
                            const std::vector<std::string>& series_names) {
  std::ostringstream os;
  os << "t_ns,interval_ns";
  std::vector<std::int64_t> ids;
  ids.reserve(series_names.size());
  for (const std::string& name : series_names) {
    os << "," << name;
    ids.push_back(sampler.series().Find(name));
  }
  os << "\n";
  for (const Sample& s : sampler.samples()) {
    os << s.t_ns << "," << s.interval_ns;
    for (std::int64_t id : ids) {
      os << ","
         << (id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id)));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bandslim::telemetry
