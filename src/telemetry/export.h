// Deterministic exporters for the telemetry sample stream and event log.
// All three formats are produced from the same in-memory data with fixed
// integer formatting and stable ordering, so two runs of the same workload
// write byte-identical files.
//
//  * Prometheus text exposition (one scrape of the LATEST sample, plus
//    watchdog alert totals) — what a /metrics endpoint would serve.
//  * JSONL: the full time series, samples and typed events interleaved by
//    virtual timestamp (events sort before the sample that closes their
//    interval; ties break on emit order).
//  * CSV: selected series as columns, one row per sample — the shape the
//    fig* plots consume.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace bandslim::telemetry {

// Prometheus text exposition format (version 0.0.4): `# TYPE` header per
// metric, `bandslim_<sanitized_series>` gauge lines carrying the latest
// sample's values with millisecond timestamps, and
// `bandslim_watchdog_alerts_total{rule="..."}` counters. Empty sampler
// yields only the build-info line.
std::string ToPrometheusText(const Sampler& sampler);

// One JSON object per line:
//   {"kind":"sample","t_ns":..,"seq":..,"interval_ns":..,"values":{..}}
//   {"kind":"event","t_ns":..,"seq":..,"type":"gc_start","a":..,"b":..}
// Alert events additionally carry "rule":"<name>".
std::string ToJsonl(const Sampler& sampler);

// Component-parameterized cores behind the two renderers above. The device
// Sampler and the fleet aggregator (telemetry/fleet.h) hold the same pieces
// — a sample deque, an interning table, an event log, a watchdog — so both
// render through one implementation and their exports stay format-identical
// by construction. `counter_name`/`counter_help` label the leading
// samples-emitted counter ("bandslim_telemetry_samples_total" for the
// device sampler, "bandslim_fleet_samples_total" for the fleet).
std::string PrometheusTextCore(const std::deque<Sample>& samples,
                               const SeriesTable& series,
                               const Watchdog& watchdog,
                               std::uint64_t samples_emitted,
                               const char* counter_name,
                               const char* counter_help);
std::string TimelineJsonlCore(const std::deque<Sample>& samples,
                              const SeriesTable& series,
                              const EventLog& event_log,
                              const Watchdog& watchdog);

// Time-series CSV with the named series as columns (missing values print
// as 0). The first two columns are always t_ns and interval_ns.
std::string ToTimeSeriesCsv(const Sampler& sampler,
                            const std::vector<std::string>& series_names);

// "a.b-c" -> "a_b_c": Prometheus metric names admit [a-zA-Z0-9_:] only.
std::string SanitizeMetricName(const std::string& name);

}  // namespace bandslim::telemetry
