#include "telemetry/fleet.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "telemetry/attribution/attribution.h"
#include "telemetry/export.h"

namespace bandslim::telemetry {

namespace {

std::uint64_t PerSecondMilli(std::uint64_t delta,
                             sim::Nanoseconds interval_ns) {
  if (interval_ns == 0) return 0;
  return delta * sim::kSecond / interval_ns * kMilliScale +
         delta * sim::kSecond % interval_ns * kMilliScale / interval_ns;
}

std::uint64_t RatioMilli(std::uint64_t numer, std::uint64_t denom) {
  if (denom == 0) return 0;
  return numer * kMilliScale / denom;
}

// "trace.op.put.latency_ns" -> "trace.op.put", as in the device sampler, so
// fleet percentile series share the per-device naming scheme.
std::string PercentileBase(const std::string& hist_name) {
  static constexpr char kLatencySuffix[] = ".latency_ns";
  static constexpr char kNsSuffix[] = "_ns";
  if (hist_name.size() > sizeof(kLatencySuffix) - 1 &&
      hist_name.compare(hist_name.size() - (sizeof(kLatencySuffix) - 1),
                        sizeof(kLatencySuffix) - 1, kLatencySuffix) == 0) {
    return hist_name.substr(0,
                            hist_name.size() - (sizeof(kLatencySuffix) - 1));
  }
  if (hist_name.size() > sizeof(kNsSuffix) - 1 &&
      hist_name.compare(hist_name.size() - (sizeof(kNsSuffix) - 1),
                        sizeof(kNsSuffix) - 1, kNsSuffix) == 0) {
    return hist_name.substr(0, hist_name.size() - (sizeof(kNsSuffix) - 1));
  }
  return hist_name;
}

// The registry mirrors PCIe bytes as one counter per traffic class
// ("pcie.mmio.h2d_bytes" ... "pcie.completion.h2d_bytes"); their sum is the
// link's host-to-device byte total, exactly as KvSsd::GetStats computes it.
bool IsPcieH2dBytes(const std::string& name) {
  static constexpr char kPrefix[] = "pcie.";
  static constexpr char kSuffix[] = ".h2d_bytes";
  return name.size() > sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1 &&
         name.compare(0, sizeof(kPrefix) - 1, kPrefix) == 0 &&
         name.compare(name.size() - (sizeof(kSuffix) - 1),
                      sizeof(kSuffix) - 1, kSuffix) == 0;
}

constexpr char kOpLatencyHist[] = "trace.op.latency_ns";

}  // namespace

WatchdogRule ShardImbalanceRule(std::uint64_t ratio_milli, std::uint32_t n,
                                std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "shard_imbalance";
  r.series = "fleet.imbalance.ops_max_over_mean_milli";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = ratio_milli;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  return r;
}

WatchdogRule HotShardP99SkewRule(std::uint64_t ratio_milli, std::uint32_t n,
                                 std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "hot_shard_p99_skew";
  r.series = "fleet.skew.p99_max_over_fleet_milli";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = ratio_milli;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  return r;
}

WatchdogRule RingSkewRule(std::uint64_t skew_permille, std::uint32_t n) {
  WatchdogRule r;
  r.name = "ring_skew";
  r.series = "fleet.ring.skew_permille";
  r.cmp = WatchdogRule::Cmp::kAbove;
  r.threshold = skew_permille;
  r.for_intervals = n;
  return r;
}

WatchdogRule StragglerShardRule(std::uint32_t n, std::uint32_t clear_n) {
  WatchdogRule r;
  r.name = "straggler_shard";
  r.series = "fleet.straggler.stalled_shards";
  r.cmp = WatchdogRule::Cmp::kAtLeast;
  r.threshold = 1;
  r.for_intervals = n;
  r.clear_for_intervals = clear_n;
  return r;
}

FleetAggregator::FleetAggregator(const sim::VirtualClock* router_clock,
                                 const FleetConfig& config)
    : clock_(router_clock),
      config_(config),
      event_log_(router_clock, config.event_capacity),
      watchdog_(config.rules) {}

void FleetAggregator::Bind(std::vector<ShardSource> shards,
                           const std::vector<std::uint64_t>* routed_keys,
                           std::vector<std::uint64_t> expected_share_permille) {
  shards_ = std::move(shards);
  routed_keys_ = routed_keys;
  expected_share_permille_ = std::move(expected_share_permille);
  windows_.assign(shards_.size(), ShardWindow{});
  prev_shard_ops_.assign(shards_.size(), 0);
  last_shard_op_hist_.assign(shards_.size(), stats::HistogramBuckets{});
  if (!anchored_) {
    anchored_ = true;
    anchor_ns_ = clock_->Now();
    last_sample_ns_ = anchor_ns_;
    next_boundary_ns_ = anchor_ns_ + config_.sample_interval_ns;
  }
}

void FleetAggregator::Poll() {
  if (!config_.enabled || !anchored_) return;
  const sim::Nanoseconds now = clock_->Now();
  if (now < next_boundary_ns_) return;
  const sim::Nanoseconds stamp =
      anchor_ns_ +
      (now - anchor_ns_) / config_.sample_interval_ns *
          config_.sample_interval_ns;
  TakeSample(stamp);
  next_boundary_ns_ = stamp + config_.sample_interval_ns;
}

void FleetAggregator::Finalize() {
  if (!config_.enabled || !anchored_) return;
  const sim::Nanoseconds now = clock_->Now();
  if (now <= last_sample_ns_ && next_seq_ > 0) {
    PublishSnapshot();
    return;
  }
  TakeSample(now);
  PublishSnapshot();
  if (next_boundary_ns_ <= now) {
    next_boundary_ns_ =
        anchor_ns_ +
        ((now - anchor_ns_) / config_.sample_interval_ns + 1) *
            config_.sample_interval_ns;
  }
}

std::uint64_t FleetAggregator::Latest(const std::string& name) const {
  if (samples_.empty()) return 0;
  const std::int64_t id = series_.Find(name);
  if (id < 0) return 0;
  return samples_.back().Value(static_cast<std::uint32_t>(id));
}

void FleetAggregator::TakeSample(sim::Nanoseconds stamp) {
  Sample s;
  s.t_ns = stamp;
  s.interval_ns = stamp - last_sample_ns_;
  s.seq = next_seq_++;
  const Sample* prev = samples_.empty() ? nullptr : &samples_.back();
  const auto prev_of = [&](std::uint32_t id) -> std::uint64_t {
    return prev == nullptr ? 0 : prev->Value(id);
  };
  const auto set = [&](const std::string& name, std::uint64_t value) {
    s.Set(series_.Intern(name), value);
  };
  const auto cumulative = [&](const std::string& name,
                              std::uint64_t value) -> std::uint64_t {
    const std::uint32_t id = series_.Intern(name);
    s.Set(id, value);
    return value - prev_of(id);
  };

  // --- Per-shard reads: one instant, one pass ----------------------------
  // Every shard's counters are read while the routed op that crossed the
  // boundary is complete on its device, so the summed cluster series and
  // the per-shard windows describe the same cut — the reconciliation
  // invariant (fleet delta == sum of shard deltas) is exact by construction.
  const std::size_t n = shards_.size();
  summed_.clear();
  merged_hist_.clear();
  std::uint64_t max_shard_p99 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ShardSource& src = shards_[i];
    ShardWindow& w = windows_[i];
    w.p99_ns = 0;
    if (src.metrics != nullptr) {
      for (const auto& [name, value] : src.metrics->SnapshotCounters()) {
        summed_[name] += value;
      }
      for (const auto& [name, cur] :
           src.metrics->SnapshotHistogramBuckets()) {
        if (cur.count == 0) continue;
        stats::HistogramBuckets& merged = merged_hist_[name];
        for (int b = 0; b < stats::Histogram::kNumBuckets; ++b) {
          merged.buckets[static_cast<std::size_t>(b)] +=
              cur.buckets[static_cast<std::size_t>(b)];
        }
        merged.count += cur.count;
        merged.sum += cur.sum;
        if (name == kOpLatencyHist) {
          stats::HistogramBuckets& last = last_shard_op_hist_[i];
          stats::Histogram::BucketArray delta{};
          for (int b = 0; b < stats::Histogram::kNumBuckets; ++b) {
            delta[static_cast<std::size_t>(b)] =
                cur.buckets[static_cast<std::size_t>(b)] -
                last.buckets[static_cast<std::size_t>(b)];
          }
          w.p99_ns = stats::Histogram::QuantileFromBuckets(
              delta, cur.count - last.count, 990);
          max_shard_p99 = std::max(max_shard_p99, w.p99_ns);
          last = cur;
        }
      }
      w.ops = src.metrics->CounterValue("nvme.commands_submitted");
      w.value_bytes =
          src.metrics->CounterValue("controller.value_bytes_written");
      w.pcie_h2d_bytes =
          src.metrics->CounterValue("pcie.mmio.h2d_bytes") +
          src.metrics->CounterValue("pcie.cmd_fetch.h2d_bytes") +
          src.metrics->CounterValue("pcie.dma_data.h2d_bytes") +
          src.metrics->CounterValue("pcie.completion.h2d_bytes");
      w.nand_pages_programmed =
          src.metrics->CounterValue("nand.pages_programmed");
    }
    w.delta_ops = w.ops - prev_shard_ops_[i];
    prev_shard_ops_[i] = w.ops;
    w.routed_keys = routed_keys_ != nullptr && i < routed_keys_->size()
                        ? (*routed_keys_)[i]
                        : 0;
    w.shard_now_ns = src.clock != nullptr ? src.clock->Now() : 0;
  }

  // --- Cluster cumulative series: summed shard counters, verbatim names --
  std::uint64_t cum_ops = 0, cum_vb = 0, cum_h2d = 0, cum_pages = 0;
  std::uint64_t d_ops = 0, d_vb = 0, d_pages = 0, d_h2d = 0;
  for (const auto& [name, value] : summed_) {
    const std::uint64_t delta = cumulative(name, value);
    if (name == "nvme.commands_submitted") {
      cum_ops = value;
      d_ops = delta;
    } else if (name == "controller.value_bytes_written") {
      cum_vb = value;
      d_vb = delta;
    } else if (name == "nand.pages_programmed") {
      cum_pages = value;
      d_pages = delta;
    } else if (IsPcieH2dBytes(name)) {
      cum_h2d += value;
      d_h2d += delta;
    }
  }

  // --- Merged-histogram percentiles ---------------------------------------
  // Interval series mirror the device sampler (<base>.p50/.p95/.p99 over
  // the bucket delta); the lifetime.* variants are quantiles over the full
  // merged cumulative buckets — by the shared-boundary argument these equal
  // the quantiles over the union of every shard's recordings, which the
  // fleet test asserts against a replayed union histogram.
  std::uint64_t fleet_p99 = 0;
  for (const auto& [name, cur] : merged_hist_) {
    stats::HistogramBuckets& last = last_hist_[name];
    stats::Histogram::BucketArray delta{};
    for (int b = 0; b < stats::Histogram::kNumBuckets; ++b) {
      delta[static_cast<std::size_t>(b)] =
          cur.buckets[static_cast<std::size_t>(b)] -
          last.buckets[static_cast<std::size_t>(b)];
    }
    const std::uint64_t d_count = cur.count - last.count;
    const std::uint64_t d_sum = cur.sum - last.sum;
    const std::string base = PercentileBase(name);
    set("hist." + base + ".count", cur.count);
    set("delta." + base + ".count", d_count);
    set("delta." + base + ".sum", d_sum);
    set(base + ".p50",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 500));
    set(base + ".p95",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 950));
    set(base + ".p99",
        stats::Histogram::QuantileFromBuckets(delta, d_count, 990));
    set("lifetime." + base + ".p50",
        stats::Histogram::QuantileFromBuckets(cur.buckets, cur.count, 500));
    set("lifetime." + base + ".p95",
        stats::Histogram::QuantileFromBuckets(cur.buckets, cur.count, 950));
    set("lifetime." + base + ".p99",
        stats::Histogram::QuantileFromBuckets(cur.buckets, cur.count, 990));
    if (name == kOpLatencyHist) {
      fleet_p99 = stats::Histogram::QuantileFromBuckets(delta, d_count, 990);
    }
    last = cur;
  }

  // --- Per-shard series and imbalance inputs ------------------------------
  std::uint64_t max_delta_ops = 0, stalled = 0, total_routed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ShardWindow& w = windows_[i];
    const std::string base = "shard" + std::to_string(i);
    set(base + ".ops", w.ops);
    set(base + ".delta.ops", w.delta_ops);
    set(base + ".routed_keys", w.routed_keys);
    set(base + ".p99_ns", w.p99_ns);
    max_delta_ops = std::max(max_delta_ops, w.delta_ops);
    if (w.delta_ops == 0) ++stalled;
    total_routed += w.routed_keys;
  }
  std::uint64_t ring_skew = 0;
  if (total_routed > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t actual =
          windows_[i].routed_keys * 1000 / total_routed;
      const std::uint64_t expected =
          i < expected_share_permille_.size() ? expected_share_permille_[i]
                                              : 0;
      ring_skew = std::max(
          ring_skew, actual > expected ? actual - expected : expected - actual);
    }
  }

  // --- Fleet derived series and watchdog rule inputs ----------------------
  set("fleet.shards", n);
  set("delta.ops", d_ops);
  set("delta.value_bytes", d_vb);
  set("delta.pcie.h2d_bytes", d_h2d);
  set("delta.nand.pages_programmed", d_pages);
  set("rate.ops_per_sec_milli", PerSecondMilli(d_ops, s.interval_ns));
  set("rate.taf_milli", RatioMilli(d_h2d, d_vb));
  set("total.taf_milli", RatioMilli(cum_h2d, cum_vb));
  // max/mean x1000 == max * N * 1000 / total; 0 on an idle interval so the
  // imbalance rule never fires while the fleet is quiet.
  set("fleet.imbalance.ops_max_over_mean_milli",
      d_ops == 0 ? 0 : max_delta_ops * n * kMilliScale / d_ops);
  set("fleet.skew.p99_max_over_fleet_milli",
      fleet_p99 == 0 ? 0 : max_shard_p99 * kMilliScale / fleet_p99);
  set("fleet.ring.skew_permille", ring_skew);
  set("fleet.straggler.stalled_shards", d_ops > 0 ? stalled : 0);

  // --- Tenant/key-space attribution series --------------------------------
  // Folded into THIS sample before the sort and the watchdog pass, so the
  // burn-rate and hot-range rules evaluate against the same interval cut as
  // every fleet rule, and the untagged residual reconciles against the
  // exact cumulative counters captured above.
  if (attribution_ != nullptr && attribution_->enabled()) {
    attribution::AttributionPlane::FleetTotals totals;
    totals.ops = cum_ops;
    totals.value_bytes = cum_vb;
    totals.pcie_h2d_bytes = cum_h2d;
    totals.nand_pages = cum_pages;
    attribution_->OnFleetSample(&s, &series_, totals);
  }

  std::sort(s.values.begin(), s.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  s.events_before = event_log_.total_emitted();

  last_sample_ns_ = stamp;
  if (samples_.size() == config_.sample_capacity) {
    samples_.pop_front();
    ++dropped_samples_;
  }
  samples_.push_back(std::move(s));
  watchdog_.Evaluate(samples_.back(), series_, &event_log_);

  if (config_.publish_every != 0 &&
      samples_.back().seq % config_.publish_every == 0) {
    PublishSnapshot();
  }
}

std::string FleetAggregator::ToPrometheusText() const {
  std::string out = PrometheusTextCore(
      samples_, series_, watchdog_, next_seq_, "bandslim_fleet_samples_total",
      "Fleet samples emitted by the cluster aggregator.");
  if (samples_.empty() || windows_.empty()) return out;
  const std::uint64_t ts_ms = samples_.back().t_ns / sim::kMillisecond;
  std::ostringstream os;
  // Federated per-shard block: the same scrape carries every shard's view
  // under a `shard` label, so one endpoint serves the whole cluster.
  const auto family = [&](const char* name, const char* type, auto getter) {
    os << "# TYPE " << name << " " << type << "\n";
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      os << name << "{shard=\"" << i << "\"} " << getter(windows_[i]) << " "
         << ts_ms << "\n";
    }
  };
  family("bandslim_shard_ops_total", "counter",
         [](const ShardWindow& w) { return w.ops; });
  family("bandslim_shard_delta_ops", "gauge",
         [](const ShardWindow& w) { return w.delta_ops; });
  family("bandslim_shard_value_bytes_total", "counter",
         [](const ShardWindow& w) { return w.value_bytes; });
  family("bandslim_shard_pcie_h2d_bytes_total", "counter",
         [](const ShardWindow& w) { return w.pcie_h2d_bytes; });
  family("bandslim_shard_nand_pages_programmed_total", "counter",
         [](const ShardWindow& w) { return w.nand_pages_programmed; });
  family("bandslim_shard_routed_keys_total", "counter",
         [](const ShardWindow& w) { return w.routed_keys; });
  family("bandslim_shard_p99_ns", "gauge",
         [](const ShardWindow& w) { return w.p99_ns; });
  out += os.str();
  if (attribution_ != nullptr && attribution_->enabled()) {
    attribution_->AppendPrometheus(&out, ts_ms);
  }
  return out;
}

std::string FleetAggregator::ToJsonl() const {
  return TimelineJsonlCore(samples_, series_, event_log_, watchdog_);
}

std::string FleetAggregator::ShardsJsonl() const {
  std::ostringstream os;
  const sim::Nanoseconds t = samples_.empty() ? 0 : samples_.back().t_ns;
  std::uint64_t total_routed = 0;
  for (const ShardWindow& w : windows_) total_routed += w.routed_keys;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const ShardWindow& w = windows_[i];
    const std::uint64_t expected =
        i < expected_share_permille_.size() ? expected_share_permille_[i] : 0;
    const std::uint64_t actual =
        total_routed == 0 ? 0 : w.routed_keys * 1000 / total_routed;
    os << "{\"shard\":" << i << ",\"t_ns\":" << t << ",\"shard_t_ns\":"
       << w.shard_now_ns << ",\"ops\":" << w.ops << ",\"delta_ops\":"
       << w.delta_ops << ",\"value_bytes\":" << w.value_bytes
       << ",\"pcie_h2d_bytes\":" << w.pcie_h2d_bytes
       << ",\"nand_pages_programmed\":" << w.nand_pages_programmed
       << ",\"routed_keys\":" << w.routed_keys << ",\"p99_ns\":" << w.p99_ns
       << ",\"expected_share_permille\":" << expected
       << ",\"actual_share_permille\":" << actual << "}\n";
  }
  return os.str();
}

void FleetAggregator::PublishSnapshot() {
  if (sink_ == nullptr || samples_.empty() ||
      samples_.back().seq == last_published_seq_) {
    return;
  }
  auto snap = std::make_shared<PublishedSnapshot>();
  snap->sample_seq = samples_.back().seq;
  snap->t_ns = samples_.back().t_ns;
  snap->metrics_text = ToPrometheusText();
  snap->timeline_jsonl = ToJsonl();
  snap->shards_jsonl = ShardsJsonl();
  if (attribution_ != nullptr && attribution_->enabled()) {
    snap->slo_jsonl = attribution_->SloJsonl();
  }
  std::string health = "{\"status\":\"ok\",\"sample_seq\":";
  health += std::to_string(snap->sample_seq);
  health += ",\"t_ns\":";
  health += std::to_string(snap->t_ns);
  health += ",\"samples\":";
  health += std::to_string(next_seq_);
  health += ",\"events\":";
  health += std::to_string(event_log_.total_emitted());
  health += ",\"alerts_fired\":";
  health += std::to_string(watchdog_.total_fired());
  health += ",\"shards\":";
  health += std::to_string(windows_.size());
  health += "}\n";
  snap->healthz_json = std::move(health);
  last_published_seq_ = snap->sample_seq;
  sink_->Publish(std::move(snap));
}

}  // namespace bandslim::telemetry
