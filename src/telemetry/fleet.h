// Fleet-level observability for a sharded KvCluster (DESIGN.md 2.9): one
// aggregator that samples every shard's metrics registry on the ROUTER
// clock's interval grid and renders a cluster-wide timeline next to the
// shards' own per-device samplers.
//
// Aggregation invariants (asserted by tests/fleet_test and enforced by
// bench/fleet_timeline exiting nonzero):
//  * Exact reconciliation. A cluster cumulative series is the plain sum of
//    the shard counters read at one instant, so every per-interval fleet
//    delta equals the sum of the per-shard deltas over the same interval,
//    and the deltas telescope to the summed final GetStats() counters — no
//    rounding, no sampling skew.
//  * Mergeable percentiles. Shard latency histograms share log-bucket
//    boundaries, so summing bucket arrays (Histogram::MergeFrom) and taking
//    a quantile equals taking the quantile over the union of the shards'
//    recordings. The fleet's trace.op.*.p50/.p95/.p99 series are computed
//    from merged buckets and are exact, not approximations.
//  * Observation only. The aggregator never advances any clock and never
//    touches device state: enabling it changes no simulated outcome, and a
//    disabled aggregator is one branch per Poll().
//
// Determinism: sampling happens at deterministic Poll() points (after each
// router-level op), stamps land on router-clock interval boundaries, all
// series are integral/fixed-point, and exports render byte-identically
// across runs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "stats/metrics.h"
#include "telemetry/event_log.h"
#include "telemetry/sample.h"
#include "telemetry/telemetry.h"
#include "telemetry/watchdog.h"

namespace bandslim::telemetry {

namespace attribution {
class AttributionPlane;
}

struct FleetConfig {
  bool enabled = false;
  // Virtual time between fleet samples, on the router clock.
  sim::Nanoseconds sample_interval_ns = sim::kMillisecond;
  std::size_t sample_capacity = 1u << 16;
  std::size_t event_capacity = 1u << 14;
  // Fleet watchdog rules (see the canned constructors below); evaluated on
  // every fleet sample with the same assert/deassert hysteresis engine the
  // per-device sampler uses.
  std::vector<WatchdogRule> rules;
  // Snapshot publication cadence, as in TelemetryConfig::publish_every.
  std::uint64_t publish_every = 64;
};

// --- Canned fleet rules ----------------------------------------------------
// Rule table (all inputs are fleet series the aggregator derives; series
// read 0 before the first interval with traffic, so quiet runs stay silent):
//
//   series                                what it measures
//   fleet.imbalance.ops_max_over_mean_milli
//       busiest shard's interval ops over the fleet mean, x1000. Uniform
//       routing holds this near 1000; a Zipfian hot shard drives it up.
//   fleet.skew.p99_max_over_fleet_milli
//       worst shard's interval op p99 over the fleet-merged p99, x1000.
//   fleet.ring.skew_permille
//       max over shards of |actual routed-key share - expected share from
//       the hash ring's virtual-node arc weights|, in permille.
//   fleet.straggler.stalled_shards
//       number of shards with zero ops in an interval where the fleet as a
//       whole made progress.

// Busiest shard at least `ratio_milli` x the mean for `n` intervals.
WatchdogRule ShardImbalanceRule(std::uint64_t ratio_milli, std::uint32_t n,
                                std::uint32_t clear_n = 2);
// Worst shard p99 at least `ratio_milli` x the fleet p99 for `n` intervals.
WatchdogRule HotShardP99SkewRule(std::uint64_t ratio_milli, std::uint32_t n,
                                 std::uint32_t clear_n = 2);
// Routed-key share deviates from the ring's expected share by more than
// `skew_permille` for `n` intervals.
WatchdogRule RingSkewRule(std::uint64_t skew_permille, std::uint32_t n);
// At least one shard stalled (zero ops while the fleet progressed) for `n`
// consecutive intervals.
WatchdogRule StragglerShardRule(std::uint32_t n, std::uint32_t clear_n = 2);

class FleetAggregator {
 public:
  // One shard's observation points. Pointers are observed, never mutated.
  struct ShardSource {
    const stats::MetricsRegistry* metrics = nullptr;
    const sim::VirtualClock* clock = nullptr;
  };

  // Per-shard view of the latest fleet interval, also rendered to
  // /shards.jsonl. All cumulative fields are raw counter reads.
  struct ShardWindow {
    std::uint64_t ops = 0;         // nvme.commands_submitted, cumulative.
    std::uint64_t delta_ops = 0;   // Ops in the latest fleet interval.
    std::uint64_t value_bytes = 0;
    std::uint64_t pcie_h2d_bytes = 0;
    std::uint64_t nand_pages_programmed = 0;
    std::uint64_t routed_keys = 0;  // Router placement decisions, cumulative.
    std::uint64_t p99_ns = 0;       // Interval op-latency p99 (0 untraced).
    sim::Nanoseconds shard_now_ns = 0;  // The shard clock at the sample.
  };

  FleetAggregator(const sim::VirtualClock* router_clock,
                  const FleetConfig& config);

  bool enabled() const { return config_.enabled; }
  const FleetConfig& config() const { return config_; }

  // Binds the shard observation points; anchors the interval grid at the
  // router clock's current time on first call. `routed_keys` points at the
  // router's per-shard placement counters (one entry per shard, owned by
  // the cluster); `expected_share_permille` is the hash ring's arc-weight
  // baseline (HashRing::OwnershipWeightsPermille) the ring-skew rule
  // compares actual shares against.
  void Bind(std::vector<ShardSource> shards,
            const std::vector<std::uint64_t>* routed_keys,
            std::vector<std::uint64_t> expected_share_permille);

  // Emits one fleet sample if a router-clock interval boundary has passed;
  // called by the cluster after every routed op. Disabled = one branch.
  void Poll();
  // Closing sample at the current router time, so the last sample's
  // cumulative series equal the summed final shard counters exactly.
  // Idempotent at a given time.
  void Finalize();

  const std::deque<Sample>& samples() const { return samples_; }
  const SeriesTable& series() const { return series_; }
  std::uint64_t samples_emitted() const { return next_seq_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  EventLog& event_log() { return event_log_; }
  const EventLog& event_log() const { return event_log_; }
  Watchdog& watchdog() { return watchdog_; }
  const Watchdog& watchdog() const { return watchdog_; }
  const std::vector<ShardWindow>& shard_windows() const { return windows_; }

  // Value of `name` in the latest fleet sample (0 when absent).
  std::uint64_t Latest(const std::string& name) const;

  // Federated exports. ToPrometheusText serves the cluster series plus a
  // `shard`-labeled per-shard block from one scrape; ShardsJsonl is one
  // JSON object per shard (the /shards.jsonl document).
  std::string ToPrometheusText() const;
  std::string ToJsonl() const;
  std::string ShardsJsonl() const;

  // Installs (or clears) the snapshot consumer, e.g. the HTTP exporter.
  void SetSink(SnapshotSink* sink) { sink_ = sink; }

  // Attaches (or clears) the tenant/key-space attribution plane. The plane
  // folds its per-tenant and heat series into THIS aggregator's samples —
  // there is no second sampler — so its burn-rate rules ride the fleet
  // watchdog and its exports share the fleet's publish cadence. Observed
  // convention: the cluster calls this once at assembly when
  // ClusterConfig::attribution.enabled.
  void SetAttribution(attribution::AttributionPlane* plane) {
    attribution_ = plane;
  }
  const attribution::AttributionPlane* attribution() const {
    return attribution_;
  }

 private:
  void TakeSample(sim::Nanoseconds stamp);
  void PublishSnapshot();

  const sim::VirtualClock* clock_;  // Router clock: the fleet time base.
  FleetConfig config_;
  EventLog event_log_;
  Watchdog watchdog_;
  SeriesTable series_;

  std::vector<ShardSource> shards_;
  const std::vector<std::uint64_t>* routed_keys_ = nullptr;
  std::vector<std::uint64_t> expected_share_permille_;

  std::deque<Sample> samples_;
  std::vector<ShardWindow> windows_;
  // Previous-sample cumulative state, for per-interval deltas.
  std::map<std::string, stats::HistogramBuckets> last_hist_;
  std::vector<std::uint64_t> prev_shard_ops_;
  std::vector<stats::HistogramBuckets> last_shard_op_hist_;
  // Scratch rebuilt each sample: shard counters summed by name, and shard
  // histogram buckets merged by name.
  std::map<std::string, std::uint64_t> summed_;
  std::map<std::string, stats::HistogramBuckets> merged_hist_;

  SnapshotSink* sink_ = nullptr;
  attribution::AttributionPlane* attribution_ = nullptr;
  std::uint64_t last_published_seq_ = ~0ULL;
  bool anchored_ = false;
  sim::Nanoseconds anchor_ns_ = 0;
  sim::Nanoseconds next_boundary_ns_ = 0;
  sim::Nanoseconds last_sample_ns_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_samples_ = 0;
};

}  // namespace bandslim::telemetry
