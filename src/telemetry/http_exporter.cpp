#include "telemetry/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bandslim::telemetry {

namespace {

// Upper bound on an accepted request (method + path + headers). Anything
// larger is not a scrape and gets dropped.
constexpr std::size_t kMaxRequestBytes = 8192;
// Accept-loop poll period: how quickly Stop() is noticed.
constexpr int kPollMs = 50;

bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// `head_only` sends the full header block — including the Content-Length the
// body WOULD have — but suppresses the body itself: HEAD semantics.
// `extra_header` is a complete "Name: value" line or null.
void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body, bool head_only = false,
                  const char* extra_header = nullptr) {
  std::string head = "HTTP/1.1 ";
  head += status_line;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  if (extra_header != nullptr) {
    head += "\r\n";
    head += extra_header;
  }
  head += "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size()) && !head_only) {
    SendAll(fd, body.data(), body.size());
  }
}

// Method + path of one request; empty method = malformed/oversized input.
struct RequestLine {
  std::string method;
  std::string path;
};

RequestLine ReadRequestLine(int fd) {
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  RequestLine line;
  const std::size_t method_end = req.find(' ');
  if (method_end == std::string::npos || method_end == 0) return line;
  const std::size_t path_end = req.find(' ', method_end + 1);
  if (path_end == std::string::npos) return line;
  const std::string method = req.substr(0, method_end);
  // A method token is ASCII upper-case letters; anything else is garbage,
  // not a verb worth a 405.
  for (char c : method) {
    if (c < 'A' || c > 'Z') return line;
  }
  line.method = method;
  line.path = req.substr(method_end + 1, path_end - method_end - 1);
  return line;
}

}  // namespace

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("http exporter already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::Publish(std::shared_ptr<const PublishedSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const PublishedSnapshot> HttpExporter::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

void HttpExporter::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpExporter::HandleConnection(int fd) {
  const RequestLine req = ReadRequestLine(fd);
  requests_served_.fetch_add(1, std::memory_order_acq_rel);
  if (req.method.empty()) {
    SendResponse(fd, "400 Bad Request", "text/plain; charset=utf-8",
                 "bad request\n");
    return;
  }
  if (req.method != "GET" && req.method != "HEAD") {
    SendResponse(fd, "405 Method Not Allowed", "text/plain; charset=utf-8",
                 "method not allowed\n", /*head_only=*/false,
                 "Allow: GET, HEAD");
    return;
  }
  // HEAD is GET with the body suppressed: identical routing, identical
  // status and headers (Content-Length included), zero body bytes.
  const bool head_only = req.method == "HEAD";
  const std::string& path = req.path;
  const std::shared_ptr<const PublishedSnapshot> snap = Current();
  if (path == "/healthz") {
    // Liveness is meaningful before the first sample too.
    SendResponse(fd, "200 OK", "application/json",
                 snap != nullptr ? snap->healthz_json
                                 : "{\"status\":\"starting\"}\n",
                 head_only);
    return;
  }
  if (snap == nullptr) {
    SendResponse(fd, "503 Service Unavailable", "text/plain; charset=utf-8",
                 "no snapshot published yet\n", head_only);
    return;
  }
  if (path == "/metrics") {
    SendResponse(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                 snap->metrics_text, head_only);
  } else if (path == "/timeline.jsonl") {
    SendResponse(fd, "200 OK", "application/x-ndjson", snap->timeline_jsonl,
                 head_only);
  } else if (path == "/shards.jsonl" && !snap->shards_jsonl.empty()) {
    // Federated per-shard snapshots; only the fleet aggregator publishes
    // them, so a single-device sampler keeps 404-ing here.
    SendResponse(fd, "200 OK", "application/x-ndjson", snap->shards_jsonl,
                 head_only);
  } else if (path == "/slo.jsonl" && !snap->slo_jsonl.empty()) {
    // Per-tenant SLO ledger; published only by a fleet aggregator with an
    // attribution plane attached.
    SendResponse(fd, "200 OK", "application/x-ndjson", snap->slo_jsonl,
                 head_only);
  } else {
    SendResponse(fd, "404 Not Found", "text/plain; charset=utf-8",
                 "unknown path\n", head_only);
  }
}

Result<std::string> HttpRequestRaw(std::uint16_t port,
                                   const std::string& method,
                                   const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (!SendAll(fd, req.data(), req.size())) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("send: " + err);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.find("\r\n\r\n") == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  return response;
}

Result<std::string> HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (!SendAll(fd, req.data(), req.size())) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("send: " + err);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
    const std::size_t eol = response.find("\r\n");
    return Status::IoError("HTTP error: " + response.substr(0, eol));
  }
  return response.substr(body_at + 4);
}

}  // namespace bandslim::telemetry
