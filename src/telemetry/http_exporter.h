// Live scrape endpoint for the telemetry stream (DESIGN.md 2.5). A minimal,
// dependency-free HTTP/1.1 server over POSIX sockets that serves
//
//   GET /metrics        Prometheus text exposition 0.0.4 (ToPrometheusText)
//   GET /timeline.jsonl the full sample/event timeline so far (ToJsonl)
//   GET /shards.jsonl   per-shard snapshots (fleet aggregator only)
//   GET /slo.jsonl      per-tenant SLO ledger (attribution plane only)
//   GET /healthz        a tiny JSON liveness document
//
// from the most recent PublishedSnapshot the Sampler handed to Publish().
// HEAD mirrors GET (same status/headers/Content-Length, no body); any other
// method answers 405 with an Allow header.
//
// Concurrency model: the simulation stays single-threaded and deterministic.
// The Sampler renders each snapshot on the simulation thread and swaps it in
// under a mutex; the single server thread only ever copies that shared_ptr
// (same mutex) and reads the immutable strings behind it. Enabling the
// server cannot perturb virtual-time results — the scraped bytes at sample
// seq N are identical to the file export taken at the same point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "telemetry/telemetry.h"

namespace bandslim::telemetry {

class HttpExporter : public SnapshotSink {
 public:
  HttpExporter() = default;
  ~HttpExporter() override;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the server thread.
  Status Start(std::uint16_t port);
  // Stops the server thread and closes the socket. Safe to call twice.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolved after Start when an ephemeral port was asked).
  std::uint16_t port() const { return port_; }
  // Requests served since Start (any path, including 404s).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_acquire);
  }

  // SnapshotSink: called on the simulation thread at each sample boundary.
  void Publish(std::shared_ptr<const PublishedSnapshot> snapshot) override;

  // Most recent snapshot (null before the first Publish). Thread-safe.
  std::shared_ptr<const PublishedSnapshot> Current() const;

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  mutable std::mutex mutex_;
  std::shared_ptr<const PublishedSnapshot> snapshot_;
};

// Blocking one-shot HTTP/1.1 GET against 127.0.0.1:`port`; returns the
// response body on 200, an error Status otherwise. Used by the bench/CI
// self-scrape to prove the over-the-wire bytes match the file export.
Result<std::string> HttpGet(std::uint16_t port, const std::string& path);

// Blocking one-shot request with an arbitrary method; returns the FULL
// response (status line + headers + body) regardless of status code, so
// tests can assert on 405 Allow headers and HEAD Content-Length.
Result<std::string> HttpRequestRaw(std::uint16_t port,
                                   const std::string& method,
                                   const std::string& path);

}  // namespace bandslim::telemetry
