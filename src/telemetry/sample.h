// Time-series sample model shared by the sampler, the watchdog and the
// exporters. A Sample is a sparse vector of (series id, integer value)
// pairs stamped with a virtual timestamp; series names are interned once in
// a SeriesTable so samples stay allocation-light (two machine words per
// series) and comparisons/exports are deterministic.
//
// Everything is integral. Derived quantities that are naturally fractional
// (rates, amplification factors, utilization) are carried in fixed point —
// `*_milli` series are scaled by 1000, `*_permille` are parts-per-thousand —
// so exports are byte-identical across runs and platforms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace bandslim::telemetry {

// Fixed-point scale used by the derived `*_milli` series.
inline constexpr std::uint64_t kMilliScale = 1000;

// Append-only name <-> id interning table. Ids are dense, stable for the
// table's lifetime, and assigned in first-appearance order.
class SeriesTable {
 public:
  std::uint32_t Intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  // -1 when the series has never been interned.
  std::int64_t Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

  const std::string& NameOf(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> ids_;
};

struct Sample {
  sim::Nanoseconds t_ns = 0;        // Stamp (an interval boundary, or the
                                    // run end for the finalizing sample).
  sim::Nanoseconds interval_ns = 0; // t_ns minus the previous sample's t_ns.
  std::uint64_t seq = 0;
  // Event-log emit count when this sample was taken. Disambiguates the
  // timeline order at equal timestamps: events with seq < events_before
  // happened inside the interval this sample closes (sort before it), while
  // events this sample itself caused — watchdog alerts — sort after it.
  std::uint64_t events_before = 0;

  // Sorted by series id (the sampler appends in interning order, which is
  // ascending by construction; Value() relies on it).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> values;

  void Set(std::uint32_t series, std::uint64_t value) {
    values.emplace_back(series, value);
  }

  // Value of `series` in this sample; `fallback` when absent.
  std::uint64_t Value(std::uint32_t series, std::uint64_t fallback = 0) const {
    auto it = std::lower_bound(
        values.begin(), values.end(), series,
        [](const auto& pair, std::uint32_t id) { return pair.first < id; });
    if (it == values.end() || it->first != series) return fallback;
    return it->second;
  }
};

}  // namespace bandslim::telemetry
