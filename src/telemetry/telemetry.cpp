#include "telemetry/telemetry.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "lsm/lsm_tree.h"
#include "telemetry/export.h"

namespace bandslim::telemetry {

namespace {

// Integer rate helpers. All quantities fit 64 bits comfortably: deltas are
// bounded by bytes-per-interval (<= GB) and intervals by the run length, so
// the largest intermediate (delta * 1e12) stays under 2^63 for any workload
// the benches run.
std::uint64_t PerSecond(std::uint64_t delta, sim::Nanoseconds interval_ns) {
  if (interval_ns == 0) return 0;
  return delta * sim::kSecond / interval_ns;
}

std::uint64_t PerSecondMilli(std::uint64_t delta,
                             sim::Nanoseconds interval_ns) {
  if (interval_ns == 0) return 0;
  return delta * sim::kSecond / interval_ns * kMilliScale +
         delta * sim::kSecond % interval_ns * kMilliScale / interval_ns;
}

std::uint64_t RatioMilli(std::uint64_t numer, std::uint64_t denom) {
  if (denom == 0) return 0;
  return numer * kMilliScale / denom;
}

// Histogram "trace.op.put.latency_ns" yields percentile series
// "trace.op.put.p50" etc.; a bare "..._ns" histogram just drops the unit
// suffix.
std::string PercentileBase(const std::string& hist_name) {
  static constexpr char kLatencySuffix[] = ".latency_ns";
  static constexpr char kNsSuffix[] = "_ns";
  if (hist_name.size() > sizeof(kLatencySuffix) - 1 &&
      hist_name.compare(hist_name.size() - (sizeof(kLatencySuffix) - 1),
                        sizeof(kLatencySuffix) - 1, kLatencySuffix) == 0) {
    return hist_name.substr(0, hist_name.size() - (sizeof(kLatencySuffix) - 1));
  }
  if (hist_name.size() > sizeof(kNsSuffix) - 1 &&
      hist_name.compare(hist_name.size() - (sizeof(kNsSuffix) - 1),
                        sizeof(kNsSuffix) - 1, kNsSuffix) == 0) {
    return hist_name.substr(0, hist_name.size() - (sizeof(kNsSuffix) - 1));
  }
  return hist_name;
}

const char* PcieClassName(pcie::TrafficClass cls) {
  switch (cls) {
    case pcie::TrafficClass::kMmio: return "mmio";
    case pcie::TrafficClass::kCommandFetch: return "cmd_fetch";
    case pcie::TrafficClass::kDmaData: return "dma_data";
    case pcie::TrafficClass::kCompletion: return "completion";
  }
  return "?";
}

}  // namespace

Sampler::Sampler(const sim::VirtualClock* clock, const TelemetryConfig& config)
    : clock_(clock),
      config_(config),
      event_log_(clock, config.event_capacity),
      watchdog_(config.rules) {}

void Sampler::Bind(const Sources& sources) {
  src_ = sources;
  if (!anchored_) {
    anchored_ = true;
    anchor_ns_ = clock_->Now();
    last_sample_ns_ = anchor_ns_;
    next_boundary_ns_ = anchor_ns_ + config_.sample_interval_ns;
  }
}

void Sampler::Poll() {
  if (!config_.enabled || !anchored_) return;
  const sim::Nanoseconds now = clock_->Now();
  if (now < next_boundary_ns_) return;
  // Stamp at the last boundary the clock has passed; everything since the
  // previous sample is attributed to the single interval ending there.
  const sim::Nanoseconds stamp =
      anchor_ns_ +
      (now - anchor_ns_) / config_.sample_interval_ns *
          config_.sample_interval_ns;
  TakeSample(stamp);
  next_boundary_ns_ = stamp + config_.sample_interval_ns;
}

void Sampler::Finalize() {
  if (!config_.enabled || !anchored_) return;
  const sim::Nanoseconds now = clock_->Now();
  // Idempotent: a repeated Finalize with no clock progress — or one landing
  // on a stamp Poll() already emitted — is a no-op, never a duplicate
  // closing sample. (Only the very first sample may be stamped at the
  // anchor itself, hence the next_seq_ guard.)
  if (now <= last_sample_ns_ && next_seq_ > 0) {
    // Still guarantee the final state is live: the last Poll() sample may
    // have fallen between publish cadence points.
    PublishSnapshot();
    return;
  }
  TakeSample(now);
  PublishSnapshot();
  if (next_boundary_ns_ <= now) {
    next_boundary_ns_ =
        anchor_ns_ +
        ((now - anchor_ns_) / config_.sample_interval_ns + 1) *
            config_.sample_interval_ns;
  }
}

std::uint64_t Sampler::Latest(const std::string& name) const {
  if (samples_.empty()) return 0;
  const std::int64_t id = series_.Find(name);
  if (id < 0) return 0;
  return samples_.back().Value(static_cast<std::uint32_t>(id));
}

void Sampler::TakeSample(sim::Nanoseconds stamp) {
  Sample s;
  s.t_ns = stamp;
  s.interval_ns = stamp - last_sample_ns_;
  s.seq = next_seq_++;
  const Sample* prev = samples_.empty() ? nullptr : &samples_.back();
  // Reads a cumulative series' value at the previous sample (0 before the
  // first one), for delta derivation.
  const auto prev_of = [&](std::uint32_t id) -> std::uint64_t {
    return prev == nullptr ? 0 : prev->Value(id);
  };
  const auto set = [&](const std::string& name, std::uint64_t value) {
    s.Set(series_.Intern(name), value);
  };
  // Interns a cumulative series, records its current value, and returns the
  // per-interval delta.
  const auto cumulative = [&](const std::string& name,
                              std::uint64_t value) -> std::uint64_t {
    const std::uint32_t id = series_.Intern(name);
    s.Set(id, value);
    return value - prev_of(id);
  };

  // --- Metrics registry: every named counter, verbatim -------------------
  std::uint64_t cum_ops = 0, cum_value_bytes = 0, cum_pages = 0;
  std::uint64_t cum_timeouts = 0, cum_retries = 0, cum_prog_fail = 0,
                cum_ecc = 0;
  std::uint64_t d_ops = 0, d_value_bytes = 0, d_pages = 0, d_timeouts = 0,
                d_retries = 0, d_prog_fail = 0, d_ecc = 0;
  std::uint64_t d_stalls = 0, d_compactions = 0, d_comp_bytes = 0;
  if (src_.metrics != nullptr) {
    for (const auto& [name, value] : src_.metrics->SnapshotCounters()) {
      const std::uint64_t delta = cumulative(name, value);
      if (name == "nvme.commands_submitted") {
        cum_ops = value;
        d_ops = delta;
      } else if (name == "controller.value_bytes_written") {
        cum_value_bytes = value;
        d_value_bytes = delta;
      } else if (name == "nand.pages_programmed") {
        cum_pages = value;
        d_pages = delta;
      } else if (name == "nvme.timeouts") {
        cum_timeouts = value;
        d_timeouts = delta;
      } else if (name == "nvme.retries") {
        cum_retries = value;
        d_retries = delta;
      } else if (name == "nand.program_failures") {
        cum_prog_fail = value;
        d_prog_fail = delta;
      } else if (name == "nand.ecc_corrections") {
        cum_ecc = value;
        d_ecc = delta;
      } else if (name == "lsm.memtable_stalls") {
        d_stalls = delta;
      } else if (name == "lsm.compactions") {
        d_compactions = delta;
      } else if (name == "lsm.compaction_bytes_written") {
        d_comp_bytes = delta;
      }
    }
  }

  // --- PCIe link: direction totals and per-class transaction counts ------
  std::uint64_t cum_h2d = 0, cum_d2h = 0, d_h2d = 0, d_d2h = 0;
  if (src_.link != nullptr) {
    cum_h2d = src_.link->HostToDeviceBytes();
    cum_d2h = src_.link->DeviceToHostBytes();
    d_h2d = cumulative("pcie.h2d_bytes", cum_h2d);
    d_d2h = cumulative("pcie.d2h_bytes", cum_d2h);
    for (int c = 0; c < pcie::kNumTrafficClasses; ++c) {
      const auto cls = static_cast<pcie::TrafficClass>(c);
      const std::string base = std::string("pcie.") + PcieClassName(cls);
      cumulative(base + ".h2d_txns",
                 src_.link->TransactionsOf(cls,
                                           pcie::Direction::kHostToDevice));
      // Per-class byte rates: the cumulative series is the registry mirror
      // snapshotted above; the current value comes straight from the link
      // (identical by construction).
      const std::uint64_t cls_bytes =
          src_.link->BytesOf(cls, pcie::Direction::kHostToDevice);
      const std::int64_t id = series_.Find(base + ".h2d_bytes");
      const std::uint64_t prev_bytes =
          id < 0 ? 0 : prev_of(static_cast<std::uint32_t>(id));
      set("rate." + base + ".h2d_bytes_per_sec",
          PerSecond(cls_bytes - prev_bytes, s.interval_ns));
    }
  }

  // --- NVMe queues --------------------------------------------------------
  if (src_.transport != nullptr) {
    for (const auto& q : src_.transport->QueueInfos()) {
      const std::string base = "queue" + std::to_string(q.queue_id);
      set("gauge." + base + ".depth", q.depth);
      set("gauge." + base + ".inflight", q.inflight);
      cumulative(base + ".submitted", q.submitted);
    }
  }

  // --- NAND channel/way busy time ----------------------------------------
  if (src_.nand != nullptr) {
    const nand::NandGeometry& g = src_.nand->geometry();
    for (std::uint32_t c = 0; c < g.channels; ++c) {
      const std::uint64_t d_busy = cumulative(
          "nand.ch" + std::to_string(c) + ".busy_ns",
          static_cast<std::uint64_t>(src_.nand->channel_busy_ns(c)));
      set("gauge.nand.ch" + std::to_string(c) + ".busy_permille",
          s.interval_ns == 0 ? 0 : d_busy * kMilliScale / s.interval_ns);
    }
    for (std::uint64_t d = 0; d < g.dies(); ++d) {
      cumulative("nand.die" + std::to_string(d) + ".busy_ns",
                 static_cast<std::uint64_t>(src_.nand->die_busy_ns(d)));
    }
  }

  // --- FTL block accounting and GC activity ------------------------------
  if (src_.ftl != nullptr) {
    set("gauge.ftl.free_blocks", src_.ftl->free_blocks());
    set("gauge.ftl.reserve_blocks", src_.ftl->reserve_remaining());
    set("gauge.ftl.bad_blocks", src_.ftl->bad_blocks());
    set("gauge.ftl.mapped_pages", src_.ftl->mapped_pages());
    cumulative("ftl.gc_runs", src_.ftl->gc_runs());
  }

  // --- Page buffer window -------------------------------------------------
  if (src_.buffer != nullptr) {
    set("gauge.buffer.wp", src_.buffer->wp());
    set("gauge.buffer.window_base", src_.buffer->window_base_addr());
    set("gauge.buffer.resident_bytes",
        src_.buffer->wp() - src_.buffer->window_base_addr());
    set("gauge.buffer.dma_frontier", src_.buffer->dma_frontier());
    set("gauge.buffer.dlt_pending", src_.buffer->dlt().size());
  }

  // --- LSM / compaction state ---------------------------------------------
  if (src_.lsm != nullptr) {
    set("gauge.lsm.memtable_bytes", src_.lsm->memtable_bytes());
    set("gauge.lsm.memtable_entries", src_.lsm->memtable_entries());
    set("gauge.lsm.pending_trim_tables", src_.lsm->pending_trim_tables());
    set("gauge.lsm.compaction_debt_bytes", src_.lsm->CompactionDebtBytes());
    set("gauge.lsm.flush_in_progress", src_.lsm->flush_in_progress() ? 1 : 0);
    set("gauge.lsm.compaction_in_progress",
        src_.lsm->compaction_in_progress() ? 1 : 0);
    for (int l = 0; l < src_.lsm->level_count(); ++l) {
      const std::string base = "gauge.lsm.l" + std::to_string(l);
      set(base + ".tables", src_.lsm->TableCount(l));
      set(base + ".bytes", src_.lsm->LevelBytes(l));
    }
  }

  // --- Per-interval histogram percentiles ---------------------------------
  // Only histograms that have ever recorded a value emit series (the tracer
  // registers its full taxonomy up front; exports stay compact when tracing
  // is off). An interval with no recordings emits zeros consistently —
  // QuantileFromBuckets is 0 on an all-zero delta.
  if (src_.metrics != nullptr) {
    for (const auto& [name, cur] : src_.metrics->SnapshotHistogramBuckets()) {
      if (cur.count == 0) continue;
      stats::HistogramBuckets& last = last_hist_[name];
      stats::Histogram::BucketArray delta{};
      for (int i = 0; i < stats::Histogram::kNumBuckets; ++i) {
        delta[static_cast<std::size_t>(i)] =
            cur.buckets[static_cast<std::size_t>(i)] -
            last.buckets[static_cast<std::size_t>(i)];
      }
      const std::uint64_t d_count = cur.count - last.count;
      const std::uint64_t d_sum = cur.sum - last.sum;
      const std::string base = PercentileBase(name);
      set("hist." + base + ".count", cur.count);
      set("delta." + base + ".count", d_count);
      set("delta." + base + ".sum", d_sum);
      set(base + ".p50",
          stats::Histogram::QuantileFromBuckets(delta, d_count, 500));
      set(base + ".p95",
          stats::Histogram::QuantileFromBuckets(delta, d_count, 950));
      set(base + ".p99",
          stats::Histogram::QuantileFromBuckets(delta, d_count, 990));
      last = cur;
    }
  }

  // --- Per-interval deltas and fixed-point rates --------------------------
  set("delta.ops", d_ops);
  set("delta.pcie.h2d_bytes", d_h2d);
  set("delta.pcie.d2h_bytes", d_d2h);
  set("delta.value_bytes", d_value_bytes);
  set("delta.nand.pages_programmed", d_pages);
  set("delta.nvme.timeouts", d_timeouts);
  set("delta.nvme.retries", d_retries);
  set("delta.nand.program_failures", d_prog_fail);
  set("delta.nand.ecc_corrections", d_ecc);
  set("delta.lsm.memtable_stalls", d_stalls);
  set("delta.lsm.compactions", d_compactions);
  set("delta.lsm.compaction_bytes_written", d_comp_bytes);

  set("rate.ops_per_sec_milli", PerSecondMilli(d_ops, s.interval_ns));
  set("rate.pcie.h2d_bytes_per_sec", PerSecond(d_h2d, s.interval_ns));
  set("rate.pcie.d2h_bytes_per_sec", PerSecond(d_d2h, s.interval_ns));
  set("rate.taf_milli", RatioMilli(d_h2d, d_value_bytes));
  const std::size_t page_size =
      src_.nand != nullptr ? src_.nand->geometry().page_size : kNandPageSize;
  set("rate.waf_milli", RatioMilli(d_pages * page_size, d_value_bytes));
  set("total.taf_milli", RatioMilli(cum_h2d, cum_value_bytes));
  set("total.waf_milli", RatioMilli(cum_pages * page_size, cum_value_bytes));
  (void)cum_ops;
  (void)cum_d2h;
  (void)cum_timeouts;
  (void)cum_retries;
  (void)cum_prog_fail;
  (void)cum_ecc;

  // Series ids are assigned in first-appearance order; a counter created
  // mid-run lands mid-snapshot with a high id, so restore id order for
  // Sample::Value()'s binary search.
  std::sort(s.values.begin(), s.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Events emitted from here on (watchdog alerts) belong *after* this
  // sample in the timeline; the exporters use this to break timestamp ties.
  s.events_before = event_log_.total_emitted();

  last_sample_ns_ = stamp;
  if (samples_.size() == config_.sample_capacity) {
    samples_.pop_front();
    ++dropped_samples_;
  }
  samples_.push_back(std::move(s));
  watchdog_.Evaluate(samples_.back(), series_, &event_log_);

  // Control tick: the observer sees the finalized sample plus this
  // interval's watchdog edges, and may actuate device knobs. Any clock time
  // it spends is charged to the op whose Poll() crossed the boundary.
  if (observer_ != nullptr) observer_->OnSample(samples_.back());

  // Rendering is O(samples), so publish on a sample-count cadence only;
  // Finalize publishes the closing sample regardless.
  if (config_.publish_every != 0 &&
      samples_.back().seq % config_.publish_every == 0) {
    PublishSnapshot();
  }
}

void Sampler::PublishSnapshot() {
  if (sink_ == nullptr || samples_.empty() ||
      samples_.back().seq == last_published_seq_) {
    return;
  }
  auto snap = std::make_shared<PublishedSnapshot>();
  snap->sample_seq = samples_.back().seq;
  snap->t_ns = samples_.back().t_ns;
  snap->metrics_text = ToPrometheusText(*this);
  snap->timeline_jsonl = ToJsonl(*this);
  std::string health = "{\"status\":\"ok\",\"sample_seq\":";
  health += std::to_string(snap->sample_seq);
  health += ",\"t_ns\":";
  health += std::to_string(snap->t_ns);
  health += ",\"samples\":";
  health += std::to_string(next_seq_);
  health += ",\"events\":";
  health += std::to_string(event_log_.total_emitted());
  health += ",\"alerts_fired\":";
  health += std::to_string(watchdog_.total_fired());
  health += "}\n";
  snap->healthz_json = std::move(health);
  last_published_seq_ = snap->sample_seq;
  sink_->Publish(std::move(snap));
}

}  // namespace bandslim::telemetry
