// Continuous telemetry: a deterministic, virtual-time periodic sampler over
// the assembled device (DESIGN.md 2.4). Every `sample_interval_ns` of
// simulated time the sampler snapshots the metrics registry plus live
// component state — PCIe per-class byte/transaction counters, NAND
// per-channel/way busy time, FTL block accounting and GC activity, per-queue
// depth/inflight, page-buffer window occupancy, fault/retry/timeout
// counters — and derives per-interval deltas and fixed-point rate gauges
// (bytes/s, ops/s in milli-units, instantaneous TAF/WAF x1000), so the
// paper's rates-over-time curves can be produced from one run.
//
// Determinism contract:
//  * Sampling is driven by Poll() calls at deterministic points (end of each
//    device command / host op); no wall clock, no threads. Samples are
//    stamped at interval boundaries of the virtual clock; a long operation
//    that crosses several boundaries yields ONE sample stamped at the last
//    crossed boundary whose rates divide by the true elapsed interval.
//  * All derived series are integer / fixed-point; exports (telemetry/
//    export.h) are byte-identical across runs and platforms.
//  * Telemetry never advances the clock or touches device state: enabling it
//    changes no simulated outcome, and the disabled sampler is a single
//    branch per Poll().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/page_buffer.h"
#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "nvme/transport.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "stats/metrics.h"
#include "telemetry/event_log.h"
#include "telemetry/sample.h"
#include "telemetry/watchdog.h"

namespace bandslim::lsm {
class LsmTree;
}

namespace bandslim::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  // Virtual time between samples. 1 ms of simulated time resolves the
  // paper's second-scale runs into ~thousands of points.
  sim::Nanoseconds sample_interval_ns = sim::kMillisecond;
  // Ring capacities; the oldest record is dropped (and counted) on overflow.
  std::size_t sample_capacity = 1u << 16;
  std::size_t event_capacity = 1u << 14;
  // Declarative alert rules evaluated on every sample (telemetry/watchdog.h).
  std::vector<WatchdogRule> rules;
  // With a SnapshotSink attached, publish a rendered snapshot every Nth
  // sample (and always at Finalize). Rendering the timeline is O(samples),
  // so publishing every sample would make a run quadratic in its length; a
  // live scraper polls at wall-clock timescales and never notices the gap.
  std::uint64_t publish_every = 64;
};

// One fully-rendered observation of the run, published by the Sampler at
// every sample boundary. All fields are immutable after construction, so a
// snapshot can be handed to another thread (the HTTP exporter) as a
// shared_ptr<const> with no further synchronization.
struct PublishedSnapshot {
  std::uint64_t sample_seq = 0;   // Seq of the sample that triggered publish.
  sim::Nanoseconds t_ns = 0;      // That sample's virtual timestamp.
  std::string metrics_text;       // Prometheus 0.0.4, == ToPrometheusText().
  std::string timeline_jsonl;     // Full timeline so far, == ToJsonl().
  std::string healthz_json;       // Tiny liveness document for /healthz.
  // Per-shard snapshot stream for /shards.jsonl. Only the fleet aggregator
  // fills this; the single-device Sampler leaves it empty and the exporter
  // answers 404 for the route, keeping single-device serving unchanged.
  std::string shards_jsonl;
  // Per-tenant SLO ledger for /slo.jsonl. Filled only by a fleet aggregator
  // with an attribution plane attached; empty = route answers 404.
  std::string slo_jsonl;
};

// Consumer of published snapshots. Publish() is called on the simulation
// thread at each sample boundary; implementations must not block (the HTTP
// exporter just swaps a shared_ptr under a mutex).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void Publish(std::shared_ptr<const PublishedSnapshot> snapshot) = 0;
};

// Observer of finalized samples, called synchronously from inside
// TakeSample after the watchdog has evaluated (so alert edges for this
// interval are visible) and before snapshot publication. The closed-loop
// controller implements this: ticking on the sample grid means control
// decisions always see completed interval deltas, never a torn mid-interval
// view. Unlike the Sampler itself, an observer MAY mutate device state
// (actuate knobs) — the sampler has already captured this interval.
class SampleObserver {
 public:
  virtual ~SampleObserver() = default;
  virtual void OnSample(const Sample& sample) = 0;
};

class Sampler {
 public:
  // What one sample reads. All pointers are observed, never mutated;
  // `buffer` is re-bound after PowerCycle() reassembles the device.
  struct Sources {
    const stats::MetricsRegistry* metrics = nullptr;
    const pcie::PcieLink* link = nullptr;
    const nvme::NvmeTransport* transport = nullptr;
    const nand::NandFlash* nand = nullptr;
    const ftl::PageFtl* ftl = nullptr;
    const buffer::NandPageBuffer* buffer = nullptr;
    const lsm::LsmTree* lsm = nullptr;
  };

  Sampler(const sim::VirtualClock* clock, const TelemetryConfig& config);

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }

  // (Re)binds the observation points; the first bind anchors the interval
  // grid at the current virtual time.
  void Bind(const Sources& sources);

  // Emits one sample if at least one interval boundary has passed since the
  // last emission. Called after every device command and host-level op; a
  // disabled sampler returns after one branch.
  void Poll();

  // Emits a closing sample stamped at the current virtual time (regardless
  // of boundary alignment), so the last sample's cumulative series equal
  // the final registry counters exactly. Idempotent at a given time.
  void Finalize();

  const std::deque<Sample>& samples() const { return samples_; }
  const SeriesTable& series() const { return series_; }
  std::uint64_t samples_emitted() const { return next_seq_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }

  EventLog& event_log() { return event_log_; }
  const EventLog& event_log() const { return event_log_; }
  Watchdog& watchdog() { return watchdog_; }
  const Watchdog& watchdog() const { return watchdog_; }

  // Convenience: value of `name` in the latest sample (0 when absent or no
  // samples yet).
  std::uint64_t Latest(const std::string& name) const;

  // Installs (or clears, with nullptr) the snapshot consumer. While set,
  // every `publish_every`th sample (and the Finalize closing sample) renders
  // the exports and calls sink->Publish(); the simulated outcome is
  // unchanged either way.
  void SetSink(SnapshotSink* sink) { sink_ = sink; }

  // Installs (or clears, with nullptr) the per-sample observer. Exactly one
  // observer is supported — the control loop; no simulated consumer beyond
  // it exists, and a list would cost an iteration on the hot path.
  void SetObserver(SampleObserver* observer) { observer_ = observer; }

 private:
  void TakeSample(sim::Nanoseconds stamp);
  // Renders the current state into a PublishedSnapshot and hands it to the
  // sink. No-op when no sink is set or the latest sample was already
  // published, so Finalize can call it unconditionally.
  void PublishSnapshot();

  const sim::VirtualClock* clock_;
  TelemetryConfig config_;
  Sources src_;
  EventLog event_log_;
  Watchdog watchdog_;
  SeriesTable series_;

  std::deque<Sample> samples_;
  // Cumulative bucket contents of every active histogram at the previous
  // sample; the difference against the current registry state is the
  // interval histogram the percentile series are computed from.
  std::map<std::string, stats::HistogramBuckets> last_hist_;
  SnapshotSink* sink_ = nullptr;
  SampleObserver* observer_ = nullptr;
  std::uint64_t last_published_seq_ = ~0ULL;
  bool anchored_ = false;
  sim::Nanoseconds anchor_ns_ = 0;        // Interval grid origin.
  sim::Nanoseconds next_boundary_ns_ = 0;
  sim::Nanoseconds last_sample_ns_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_samples_ = 0;
};

}  // namespace bandslim::telemetry
