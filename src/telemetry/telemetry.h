// Continuous telemetry: a deterministic, virtual-time periodic sampler over
// the assembled device (DESIGN.md 2.4). Every `sample_interval_ns` of
// simulated time the sampler snapshots the metrics registry plus live
// component state — PCIe per-class byte/transaction counters, NAND
// per-channel/way busy time, FTL block accounting and GC activity, per-queue
// depth/inflight, page-buffer window occupancy, fault/retry/timeout
// counters — and derives per-interval deltas and fixed-point rate gauges
// (bytes/s, ops/s in milli-units, instantaneous TAF/WAF x1000), so the
// paper's rates-over-time curves can be produced from one run.
//
// Determinism contract:
//  * Sampling is driven by Poll() calls at deterministic points (end of each
//    device command / host op); no wall clock, no threads. Samples are
//    stamped at interval boundaries of the virtual clock; a long operation
//    that crosses several boundaries yields ONE sample stamped at the last
//    crossed boundary whose rates divide by the true elapsed interval.
//  * All derived series are integer / fixed-point; exports (telemetry/
//    export.h) are byte-identical across runs and platforms.
//  * Telemetry never advances the clock or touches device state: enabling it
//    changes no simulated outcome, and the disabled sampler is a single
//    branch per Poll().
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "buffer/page_buffer.h"
#include "ftl/ftl.h"
#include "nand/nand_flash.h"
#include "nvme/transport.h"
#include "pcie/link.h"
#include "sim/clock.h"
#include "stats/metrics.h"
#include "telemetry/event_log.h"
#include "telemetry/sample.h"
#include "telemetry/watchdog.h"

namespace bandslim::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  // Virtual time between samples. 1 ms of simulated time resolves the
  // paper's second-scale runs into ~thousands of points.
  sim::Nanoseconds sample_interval_ns = sim::kMillisecond;
  // Ring capacities; the oldest record is dropped (and counted) on overflow.
  std::size_t sample_capacity = 1u << 16;
  std::size_t event_capacity = 1u << 14;
  // Declarative alert rules evaluated on every sample (telemetry/watchdog.h).
  std::vector<WatchdogRule> rules;
};

class Sampler {
 public:
  // What one sample reads. All pointers are observed, never mutated;
  // `buffer` is re-bound after PowerCycle() reassembles the device.
  struct Sources {
    const stats::MetricsRegistry* metrics = nullptr;
    const pcie::PcieLink* link = nullptr;
    const nvme::NvmeTransport* transport = nullptr;
    const nand::NandFlash* nand = nullptr;
    const ftl::PageFtl* ftl = nullptr;
    const buffer::NandPageBuffer* buffer = nullptr;
  };

  Sampler(const sim::VirtualClock* clock, const TelemetryConfig& config);

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }

  // (Re)binds the observation points; the first bind anchors the interval
  // grid at the current virtual time.
  void Bind(const Sources& sources);

  // Emits one sample if at least one interval boundary has passed since the
  // last emission. Called after every device command and host-level op; a
  // disabled sampler returns after one branch.
  void Poll();

  // Emits a closing sample stamped at the current virtual time (regardless
  // of boundary alignment), so the last sample's cumulative series equal
  // the final registry counters exactly. Idempotent at a given time.
  void Finalize();

  const std::deque<Sample>& samples() const { return samples_; }
  const SeriesTable& series() const { return series_; }
  std::uint64_t samples_emitted() const { return next_seq_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }

  EventLog& event_log() { return event_log_; }
  const EventLog& event_log() const { return event_log_; }
  Watchdog& watchdog() { return watchdog_; }
  const Watchdog& watchdog() const { return watchdog_; }

  // Convenience: value of `name` in the latest sample (0 when absent or no
  // samples yet).
  std::uint64_t Latest(const std::string& name) const;

 private:
  void TakeSample(sim::Nanoseconds stamp);

  const sim::VirtualClock* clock_;
  TelemetryConfig config_;
  Sources src_;
  EventLog event_log_;
  Watchdog watchdog_;
  SeriesTable series_;

  std::deque<Sample> samples_;
  bool anchored_ = false;
  sim::Nanoseconds anchor_ns_ = 0;        // Interval grid origin.
  sim::Nanoseconds next_boundary_ns_ = 0;
  sim::Nanoseconds last_sample_ns_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_samples_ = 0;
};

}  // namespace bandslim::telemetry
