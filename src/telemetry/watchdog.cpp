#include "telemetry/watchdog.h"

namespace bandslim::telemetry {

WatchdogRule ZeroOpStallRule(std::uint32_t n) {
  return WatchdogRule{"zero_op_stall", "delta.ops", WatchdogRule::Cmp::kEqual,
                      0, n};
}

WatchdogRule TafBudgetRule(std::uint64_t taf_milli, std::uint32_t n) {
  return WatchdogRule{"taf_over_budget", "rate.taf_milli",
                      WatchdogRule::Cmp::kAbove, taf_milli, n};
}

WatchdogRule RetryStormRule(std::uint64_t retries, std::uint32_t n,
                            std::uint32_t clear_n) {
  WatchdogRule rule{"retry_storm", "delta.nvme.retries",
                    WatchdogRule::Cmp::kAtLeast, retries, n};
  rule.clear_for_intervals = clear_n;
  return rule;
}

WatchdogRule QueueSaturationRule(std::uint16_t q, std::uint64_t inflight,
                                 std::uint32_t n) {
  return WatchdogRule{"queue" + std::to_string(q) + "_saturated",
                      "gauge.queue" + std::to_string(q) + ".inflight",
                      WatchdogRule::Cmp::kAtLeast, inflight, n};
}

WatchdogRule FreeBlocksLowRule(std::uint64_t blocks, std::uint32_t n) {
  return WatchdogRule{"free_blocks_low", "gauge.ftl.free_blocks",
                      WatchdogRule::Cmp::kAtMost, blocks, n};
}

WatchdogRule CompactionDebtRule(std::uint64_t budget_bytes, std::uint32_t n) {
  return WatchdogRule{"compaction_debt_over_budget",
                      "gauge.lsm.compaction_debt_bytes",
                      WatchdogRule::Cmp::kAbove, budget_bytes, n};
}

WatchdogRule L0PileupRule(std::uint64_t tables, std::uint32_t n) {
  return WatchdogRule{"l0_pileup", "gauge.lsm.l0.tables",
                      WatchdogRule::Cmp::kAtLeast, tables, n};
}

WatchdogRule MemtableStallRule(std::uint64_t stalls, std::uint32_t n) {
  return WatchdogRule{"memtable_stall", "delta.lsm.memtable_stalls",
                      WatchdogRule::Cmp::kAtLeast, stalls, n};
}

namespace {

bool Holds(WatchdogRule::Cmp cmp, std::uint64_t value,
           std::uint64_t threshold) {
  switch (cmp) {
    case WatchdogRule::Cmp::kAbove: return value > threshold;
    case WatchdogRule::Cmp::kAtLeast: return value >= threshold;
    case WatchdogRule::Cmp::kBelow: return value < threshold;
    case WatchdogRule::Cmp::kAtMost: return value <= threshold;
    case WatchdogRule::Cmp::kEqual: return value == threshold;
  }
  return false;
}

}  // namespace

void Watchdog::Evaluate(const Sample& sample, const SeriesTable& table,
                        EventLog* log) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const WatchdogRule& rule = rules_[i];
    AlertState& state = states_[i];
    // A series the sampler has never produced reads as 0 — this keeps rules
    // like zero-op stall meaningful from the very first sample.
    const std::int64_t id = table.Find(rule.series);
    const std::uint64_t value =
        id < 0 ? 0 : sample.Value(static_cast<std::uint32_t>(id));

    if (state.active) {
      // While active, only the recovery condition matters: the negated firing
      // predicate against the (possibly deadbanded) clear threshold, held for
      // clear_for_intervals consecutive samples.
      if (!Holds(rule.cmp, value, rule.effective_clear_threshold())) {
        ++state.recovering;
        if (state.recovering < rule.clear_for_intervals) continue;
        state.active = false;
        state.recovering = 0;
        state.holding = 0;
        ++state.cleared;
        ++total_cleared_;
        state.last_clear_ns = sample.t_ns;
        if (log != nullptr) {
          log->Emit(EventType::kAlertCleared, static_cast<std::uint64_t>(i),
                    value, rule.tenant);
        }
      } else {
        state.recovering = 0;
      }
      continue;
    }

    if (!Holds(rule.cmp, value, rule.threshold)) {
      state.holding = 0;
      continue;
    }
    ++state.holding;
    if (state.holding < rule.for_intervals) continue;
    state.active = true;
    state.recovering = 0;
    ++state.fired;
    ++total_fired_;
    state.last_value = value;
    state.last_fire_ns = sample.t_ns;
    if (log != nullptr) {
      log->Emit(EventType::kAlert, static_cast<std::uint64_t>(i), value,
                rule.tenant);
    }
  }
}

std::int64_t Watchdog::FindRule(const std::string& name) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace bandslim::telemetry
