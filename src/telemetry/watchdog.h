// Deterministic watchdog rule engine (DESIGN.md 2.4). Rules are declarative
// thresholds over the telemetry sample stream: "series S has been OP
// threshold for N consecutive samples". The watchdog is evaluated once per
// emitted sample, entirely in integer arithmetic on virtual-time data, so
// two runs of the same workload raise bit-identical alert streams.
//
// Alert semantics are edge-triggered: a rule FIRES when its condition has
// held for `for_intervals` consecutive samples, stays ACTIVE while the
// condition keeps holding (no re-fire), and re-arms the moment one sample
// breaks the condition. Each fire appends an EventType::kAlert record to the
// event log (a = rule index, b = the observed series value).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/sample.h"

namespace bandslim::telemetry {

struct WatchdogRule {
  std::string name;    // Alert name, e.g. "taf_over_budget".
  std::string series;  // Series the condition tests (absent reads as 0).

  enum class Cmp : std::uint8_t {
    kAbove,    // value >  threshold
    kAtLeast,  // value >= threshold
    kBelow,    // value <  threshold
    kAtMost,   // value <= threshold
    kEqual,    // value == threshold
  };
  Cmp cmp = Cmp::kAbove;
  std::uint64_t threshold = 0;
  // Consecutive samples the condition must hold before the rule fires.
  std::uint32_t for_intervals = 1;
};

// --- Canned rules for the failure modes the paper's workloads exhibit ----

// No command completed for `n` consecutive intervals (zero-op stall).
WatchdogRule ZeroOpStallRule(std::uint32_t n);
// Instantaneous TAF above `taf_milli` (fixed-point x1000) for `n` intervals.
WatchdogRule TafBudgetRule(std::uint64_t taf_milli, std::uint32_t n);
// At least `retries` NVMe resubmissions within each of `n` intervals
// (fault-retry storm).
WatchdogRule RetryStormRule(std::uint64_t retries, std::uint32_t n);
// Queue `q` has >= `inflight` commands outstanding at `n` consecutive
// sample points. (The synchronous passthrough path drains between ops, so
// this fires only under pipelined/multi-queue pressure.)
WatchdogRule QueueSaturationRule(std::uint16_t q, std::uint64_t inflight,
                                 std::uint32_t n);
// FTL free-block pool at or below `blocks` for `n` intervals (GC pressure).
WatchdogRule FreeBlocksLowRule(std::uint64_t blocks, std::uint32_t n);
// LSM compaction debt (bytes past each level's trigger) above `budget_bytes`
// at `n` consecutive sample points — the bounded-effort compactor is not
// keeping up with the ingest rate.
WatchdogRule CompactionDebtRule(std::uint64_t budget_bytes, std::uint32_t n);
// At least `tables` L0 runs at `n` consecutive sample points (read-path
// pileup: every L0 run is an extra overlapping probe per GET).
WatchdogRule L0PileupRule(std::uint64_t tables, std::uint32_t n);
// At least `stalls` MemTable flush stalls within each of `n` intervals
// (a flush landed while L0 was already at its compaction trigger).
WatchdogRule MemtableStallRule(std::uint64_t stalls, std::uint32_t n);

struct AlertState {
  std::uint64_t fired = 0;     // Edge-triggered fire count.
  std::uint32_t holding = 0;   // Consecutive samples the condition held.
  bool active = false;         // Condition currently past for_intervals.
  std::uint64_t last_value = 0;  // Series value at the most recent fire.
  sim::Nanoseconds last_fire_ns = 0;
};

class Watchdog {
 public:
  explicit Watchdog(std::vector<WatchdogRule> rules)
      : rules_(std::move(rules)), states_(rules_.size()) {}

  // Evaluates every rule against `sample`; fires append to `log` (optional).
  void Evaluate(const Sample& sample, const SeriesTable& table,
                EventLog* log);

  const std::vector<WatchdogRule>& rules() const { return rules_; }
  const std::vector<AlertState>& states() const { return states_; }
  std::uint64_t total_fired() const { return total_fired_; }

 private:
  std::vector<WatchdogRule> rules_;
  std::vector<AlertState> states_;
  std::uint64_t total_fired_ = 0;
};

}  // namespace bandslim::telemetry
