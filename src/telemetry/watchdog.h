// Deterministic watchdog rule engine (DESIGN.md 2.4). Rules are declarative
// thresholds over the telemetry sample stream: "series S has been OP
// threshold for N consecutive samples". The watchdog is evaluated once per
// emitted sample, entirely in integer arithmetic on virtual-time data, so
// two runs of the same workload raise bit-identical alert streams.
//
// Alert semantics are edge-triggered on BOTH transitions: a rule FIRES when
// its condition has held for `for_intervals` consecutive samples, stays
// ACTIVE while it keeps holding (no re-fire), and CLEARS — the deassert
// (recovery) edge — once the recovery condition has held for
// `clear_for_intervals` consecutive samples. The recovery condition is the
// negation of the firing condition evaluated against `clear_threshold`
// (default: the firing threshold), so a rule can carry a deadband: e.g.
// fire above 2000, clear only below 1500. Fires append EventType::kAlert,
// clears append EventType::kAlertCleared (a = rule index, b = observed
// value), so consumers — the closed-loop controller foremost — see clean
// state transitions instead of re-deriving them. The defaults
// (clear_for_intervals = 1, clear_threshold = threshold) reproduce the
// historical clear-on-first-break behaviour exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/sample.h"

namespace bandslim::telemetry {

struct WatchdogRule {
  std::string name;    // Alert name, e.g. "taf_over_budget".
  std::string series;  // Series the condition tests (absent reads as 0).

  enum class Cmp : std::uint8_t {
    kAbove,    // value >  threshold
    kAtLeast,  // value >= threshold
    kBelow,    // value <  threshold
    kAtMost,   // value <= threshold
    kEqual,    // value == threshold
  };
  Cmp cmp = Cmp::kAbove;
  std::uint64_t threshold = 0;
  // Consecutive samples the condition must hold before the rule fires.
  std::uint32_t for_intervals = 1;
  // Deassert hysteresis: consecutive samples the recovery condition (the
  // negated firing condition, tested against the clear threshold) must hold
  // before an active alert clears. 1 = clear on the first breaking sample.
  std::uint32_t clear_for_intervals = 1;
  // Clear-side deadband threshold; kInheritThreshold = reuse `threshold`.
  static constexpr std::uint64_t kInheritThreshold = ~0ULL;
  std::uint64_t clear_threshold = kInheritThreshold;
  // Tenant the rule attributes to (0 = untagged): stamped onto the
  // kAlert/kAlertCleared event records so alert edges in the timeline are
  // attributable. Last field — the canned rules aggregate-initialize.
  std::uint16_t tenant = 0;

  std::uint64_t effective_clear_threshold() const {
    return clear_threshold == kInheritThreshold ? threshold : clear_threshold;
  }
};

// --- Canned rules for the failure modes the paper's workloads exhibit ----

// No command completed for `n` consecutive intervals (zero-op stall).
WatchdogRule ZeroOpStallRule(std::uint32_t n);
// Instantaneous TAF above `taf_milli` (fixed-point x1000) for `n` intervals.
WatchdogRule TafBudgetRule(std::uint64_t taf_milli, std::uint32_t n);
// At least `retries` NVMe resubmissions within each of `n` intervals
// (fault-retry storm). A sustained drop storm is bursty at sample
// granularity — the watchdog-timeout wait spans intervals whose retry delta
// is 0 — so without deassert hysteresis the rule re-fired on every bursty
// interval; `clear_n` quiet intervals must pass before it re-arms.
WatchdogRule RetryStormRule(std::uint64_t retries, std::uint32_t n,
                            std::uint32_t clear_n = 4);
// Queue `q` has >= `inflight` commands outstanding at `n` consecutive
// sample points. (The synchronous passthrough path drains between ops, so
// this fires only under pipelined/multi-queue pressure.)
WatchdogRule QueueSaturationRule(std::uint16_t q, std::uint64_t inflight,
                                 std::uint32_t n);
// FTL free-block pool at or below `blocks` for `n` intervals (GC pressure).
WatchdogRule FreeBlocksLowRule(std::uint64_t blocks, std::uint32_t n);
// LSM compaction debt (bytes past each level's trigger) above `budget_bytes`
// at `n` consecutive sample points — the bounded-effort compactor is not
// keeping up with the ingest rate.
WatchdogRule CompactionDebtRule(std::uint64_t budget_bytes, std::uint32_t n);
// At least `tables` L0 runs at `n` consecutive sample points (read-path
// pileup: every L0 run is an extra overlapping probe per GET).
WatchdogRule L0PileupRule(std::uint64_t tables, std::uint32_t n);
// At least `stalls` MemTable flush stalls within each of `n` intervals
// (a flush landed while L0 was already at its compaction trigger).
WatchdogRule MemtableStallRule(std::uint64_t stalls, std::uint32_t n);

struct AlertState {
  std::uint64_t fired = 0;     // Edge-triggered fire count.
  std::uint64_t cleared = 0;   // Deassert (recovery) edge count.
  std::uint32_t holding = 0;   // Consecutive samples the condition held.
  // Consecutive samples the recovery condition held while active.
  std::uint32_t recovering = 0;
  bool active = false;         // Fired and not yet cleared.
  std::uint64_t last_value = 0;  // Series value at the most recent fire.
  sim::Nanoseconds last_fire_ns = 0;
  sim::Nanoseconds last_clear_ns = 0;
};

class Watchdog {
 public:
  explicit Watchdog(std::vector<WatchdogRule> rules)
      : rules_(std::move(rules)), states_(rules_.size()) {}

  // Evaluates every rule against `sample`; fires append to `log` (optional).
  void Evaluate(const Sample& sample, const SeriesTable& table,
                EventLog* log);

  const std::vector<WatchdogRule>& rules() const { return rules_; }
  const std::vector<AlertState>& states() const { return states_; }
  std::uint64_t total_fired() const { return total_fired_; }
  std::uint64_t total_cleared() const { return total_cleared_; }

  // Index of the rule named `name`, or -1 — the controller resolves the
  // alert edges it consumes once, by name.
  std::int64_t FindRule(const std::string& name) const;

 private:
  std::vector<WatchdogRule> rules_;
  std::vector<AlertState> states_;
  std::uint64_t total_fired_ = 0;
  std::uint64_t total_cleared_ = 0;
};

}  // namespace bandslim::telemetry
