#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

namespace bandslim::trace {

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kDoorbell: return "doorbell";
    case Category::kCmdFetch: return "cmd_fetch";
    case Category::kSubmission: return "submission";
    case Category::kCompletion: return "completion";
    case Category::kTimeout: return "timeout";
    case Category::kRetryBackoff: return "retry_backoff";
    case Category::kKvs: return "kvs";
    case Category::kDma: return "dma";
    case Category::kBufferCopy: return "buffer_copy";
    case Category::kVlogFlush: return "vlog_flush";
    case Category::kVlogRead: return "vlog_read";
    case Category::kFtlGc: return "ftl_gc";
    case Category::kNandProgram: return "nand_program";
    case Category::kNandRead: return "nand_read";
    case Category::kNandErase: return "nand_erase";
    case Category::kOther: return "other";
  }
  return "?";
}

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kPut: return "put";
    case OpType::kGet: return "get";
    case OpType::kDelete: return "delete";
    case OpType::kExists: return "exists";
    case OpType::kFlush: return "flush";
    case OpType::kSeek: return "seek";
    case OpType::kNext: return "next";
    case OpType::kPutBatch: return "put_batch";
    case OpType::kGetBatch: return "get_batch";
    case OpType::kDeleteBatch: return "delete_batch";
    case OpType::kGc: return "gc";
    case OpType::kRecovery: return "recovery";
    case OpType::kOther: return "other";
  }
  return "?";
}

std::uint64_t StageBreakdown::TotalNs() const {
  std::uint64_t total = 0;
  for (auto v : ns) total += v;
  return total;
}

std::uint64_t StageBreakdown::TotalBytes() const {
  std::uint64_t total = 0;
  for (auto v : bytes) total += v;
  return total;
}

void StageBreakdown::Accumulate(const StageBreakdown& other) {
  for (int i = 0; i < kNumCategories; ++i) {
    ns[i] += other.ns[i];
    bytes[i] += other.bytes[i];
  }
}

Tracer::Tracer(sim::VirtualClock* clock, stats::MetricsRegistry* metrics,
               TraceConfig config)
    : clock_(clock), config_(config), enabled_(config.enabled) {
  op_latency_hist_ = metrics->RegisterHistogram("trace.op.latency_ns");
  cmd_latency_hist_ = metrics->RegisterHistogram("trace.cmd.latency_ns");
  for (int i = 0; i < kNumCategories; ++i) {
    stage_hists_[i] = metrics->RegisterHistogram(
        std::string("trace.stage.") +
        CategoryName(static_cast<Category>(i)) + "_ns");
  }
  for (int i = 0; i < kNumOpTypes; ++i) {
    op_type_hists_[i] = metrics->RegisterHistogram(
        std::string("trace.op.") + OpTypeName(static_cast<OpType>(i)) +
        ".latency_ns");
  }
  span_stack_.reserve(16);
}

void Tracer::SetEnabled(bool on) {
  assert(span_stack_.empty() && !cmd_active_ && !op_active_);
  enabled_ = on;
}

void Tracer::BeginOp(OpType type, std::uint16_t queue_id,
                     std::uint64_t payload_bytes) {
  if (op_active_) {
    // Nested driver call (e.g. recovery replaying user ops): fold it into
    // the outer operation instead of starting a new record.
    ++op_nesting_;
    return;
  }
  op_active_ = true;
  // Sampling decision (deterministic op counter, never time): op 0, N, 2N,
  // ... are recorded. sample_every <= 1 records everything (exact mode).
  op_recording_ = config_.sample_every <= 1 ||
                  op_counter_ % config_.sample_every == 0;
  ++op_counter_;
  if (!op_recording_) {
    ++ops_sampled_out_;
    return;  // Cheap mode: no record init, no clock read.
  }
  cur_op_ = OpRecord{};
  cur_op_.seq = next_op_seq_++;
  cur_op_.type = type;
  cur_op_.queue_id = queue_id;
  cur_op_.shard_id = shard_tag_;
  cur_op_.client_op = client_op_ctx_;
  cur_op_.tenant = tenant_ctx_;
  cur_op_.payload_bytes = payload_bytes;
  cur_op_.start_ns = clock_->Now();
}

void Tracer::SetOpResult(bool ok) {
  if (op_active_ && op_recording_ && op_nesting_ == 0) cur_op_.ok = ok;
}

void Tracer::EndOp() {
  if (op_nesting_ > 0) {
    --op_nesting_;
    return;
  }
  assert(op_active_ && !cmd_active_ && span_stack_.empty());
  if (!op_recording_) {
    op_active_ = false;
    op_recording_ = true;
    return;
  }
  cur_op_.end_ns = clock_->Now();
  op_latency_hist_->Record(cur_op_.end_ns - cur_op_.start_ns);
  op_type_hists_[static_cast<int>(cur_op_.type)]->Record(cur_op_.end_ns -
                                                         cur_op_.start_ns);
  if (ops_.size() == config_.op_capacity) {
    ops_.pop_front();
    ++dropped_ops_;
  }
  ops_.push_back(cur_op_);
  op_active_ = false;
}

void Tracer::BeginCommand(std::uint16_t queue_id, std::uint8_t opcode) {
  assert(!cmd_active_ && span_stack_.empty());
  cmd_active_ = true;
  // A command inside an unsampled op is suppressed with it; op-less
  // commands (internal traffic) are always recorded.
  cmd_recording_ = !op_active_ || op_recording_;
  if (!cmd_recording_) return;
  cur_cmd_ = CommandRecord{};
  cur_cmd_.seq = next_cmd_seq_++;
  cur_cmd_.op_seq = op_active_ ? cur_op_.seq : kNoSeq;
  cur_cmd_.shard_id = shard_tag_;
  cur_cmd_.tenant = tenant_ctx_;
  cur_cmd_.queue_id = queue_id;
  cur_cmd_.opcode = opcode;
  cur_cmd_.start_ns = clock_->Now();
}

void Tracer::SetCommandCid(std::uint16_t cid) {
  if (cmd_active_ && cmd_recording_) cur_cmd_.cid = cid;
}

void Tracer::EndCommand(std::uint16_t cq_status) {
  assert(cmd_active_ && span_stack_.empty());
  if (!cmd_recording_) {
    cmd_active_ = false;
    cmd_recording_ = true;
    return;
  }
  cur_cmd_.end_ns = clock_->Now();
  cur_cmd_.cq_status = cq_status;
  const std::uint64_t total = cur_cmd_.end_ns - cur_cmd_.start_ns;
  // Exclusive times of all instrumented spans never exceed the command
  // window (the virtual clock is monotone within a command), so the
  // residual is what no span covered.
  const std::uint64_t covered = cur_cmd_.stages.TotalNs();
  assert(covered <= total);
  cur_cmd_.stages.ns[static_cast<int>(Category::kOther)] += total - covered;
  cmd_latency_hist_->Record(total);
  RecordStageHistograms(cur_cmd_.stages, total);
  if (op_active_) {
    cur_op_.stages.Accumulate(cur_cmd_.stages);
    ++cur_op_.num_commands;
    cur_op_.commands_ns += total;
  }
  if (commands_.size() == config_.command_capacity) {
    commands_.pop_front();
    ++dropped_commands_;
  }
  commands_.push_back(cur_cmd_);
  cmd_active_ = false;
}

void Tracer::RecordStageHistograms(const StageBreakdown& stages,
                                   sim::Nanoseconds total_ns) {
  (void)total_ns;
  for (int i = 0; i < kNumCategories; ++i) {
    if (stages.ns[i] > 0 || stages.bytes[i] > 0) {
      stage_hists_[i]->Record(stages.ns[i]);
    }
  }
}

void Tracer::OpenSpan(Category category, std::uint64_t bytes) {
  // Spans inside an unsampled context are suppressed entirely (no clock
  // read, no stack push); a depth counter keeps Open/Close balanced. The
  // context can only change at op/command boundaries, where the span stack
  // is empty, so a suppressed open always meets a suppressed close.
  const bool suppressed = cmd_active_
                              ? !cmd_recording_
                              : (op_active_ && !op_recording_);
  if (suppressed) {
    ++suppressed_spans_;
    return;
  }
  span_stack_.push_back(OpenSpanState{
      category, clock_->Now(), bytes, /*child_ns=*/0,
      static_cast<std::uint16_t>(span_stack_.size())});
}

void Tracer::CloseSpan() {
  if (suppressed_spans_ > 0) {
    --suppressed_spans_;
    return;
  }
  assert(!span_stack_.empty());
  const OpenSpanState state = span_stack_.back();
  span_stack_.pop_back();
  const sim::Nanoseconds end = clock_->Now();
  const std::uint64_t duration = end - state.start_ns;
  const std::uint64_t self_ns = duration - state.child_ns;
  if (!span_stack_.empty()) span_stack_.back().child_ns += duration;

  StageBreakdown* stages = nullptr;
  if (cmd_active_) {
    stages = &cur_cmd_.stages;
  } else if (op_active_) {
    stages = &cur_op_.stages;
  } else {
    ++orphan_spans_;
  }
  if (stages != nullptr) {
    stages->ns[static_cast<int>(state.category)] += self_ns;
    stages->bytes[static_cast<int>(state.category)] += state.bytes;
  }

  SpanRecord rec;
  rec.cmd_seq = cmd_active_ ? cur_cmd_.seq : kNoSeq;
  rec.op_seq = op_active_ ? cur_op_.seq : kNoSeq;
  rec.category = state.category;
  rec.shard_id = shard_tag_;
  rec.queue_id = cmd_active_ ? cur_cmd_.queue_id
                             : (op_active_ ? cur_op_.queue_id : 0);
  rec.cid = cmd_active_ ? cur_cmd_.cid : 0;
  rec.depth = state.depth;
  rec.start_ns = state.start_ns;
  rec.end_ns = end;
  rec.bytes = state.bytes;
  if (spans_.size() == config_.span_capacity) {
    spans_.pop_front();
    ++dropped_spans_;
  }
  spans_.push_back(rec);
}

void Tracer::InstantSpan(Category category, std::uint64_t bytes) {
  OpenSpan(category, bytes);
  CloseSpan();
}

StageBreakdown Tracer::AggregateCommandStages() const {
  StageBreakdown total;
  for (const auto& cmd : commands_) total.Accumulate(cmd.stages);
  return total;
}

void Tracer::Clear() {
  assert(span_stack_.empty() && suppressed_spans_ == 0 && !cmd_active_ &&
         !op_active_);
  ops_.clear();
  commands_.clear();
  spans_.clear();
  dropped_ops_ = dropped_commands_ = dropped_spans_ = 0;
  orphan_spans_ = 0;
  op_counter_ = ops_sampled_out_ = 0;
}

namespace {

// Mnemonics mirror nvme::Opcode (src/nvme/command.h); kept local so the
// trace layer stays independent of the transport headers.
const char* OpcodeMnemonic(std::uint8_t opcode) {
  switch (opcode) {
    case 0xC1: return "KvWrite";
    case 0xC2: return "KvTransfer";
    case 0xC3: return "KvRead";
    case 0xC4: return "KvDelete";
    case 0xC5: return "KvIterSeek";
    case 0xC6: return "KvIterNext";
    case 0xC7: return "KvFlush";
    case 0xC8: return "KvExists";
    case 0xC9: return "KvIterClose";
    case 0xCA: return "KvBulkWrite";
    case 0xCB: return "KvIterNextBatch";
    case 0xCC: return "KvBulkRead";
    case 0xCD: return "KvBulkDelete";
    default: return "Unknown";
  }
}

// Fixed-point microsecond rendering of a nanosecond value ("%u.%03u"):
// avoids floating point so exports are byte-deterministic.
void AppendMicros(std::string* out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out->append(buf);
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

struct ChromeEvent {
  sim::Nanoseconds start_ns;
  sim::Nanoseconds end_ns;
  int rank;  // 0 = op, 1 = command, 2 = span (outer first at equal ts).
  std::uint64_t seq;
  std::uint16_t depth;
  std::string name;
  const char* cat;
  std::uint16_t pid;
  std::uint16_t tid;
  std::string args;
};

// Untagged tracers (single device) keep the historical pid 1; a cluster
// shard's tag s + 1 becomes its pid, so a merged multi-shard trace renders
// one process lane per shard in chrome://tracing.
std::uint16_t PidOf(std::uint16_t shard_tag) {
  return shard_tag == 0 ? 1 : shard_tag;
}

}  // namespace

std::string ToChromeTraceJson(const Tracer& tracer) {
  std::vector<ChromeEvent> events;
  events.reserve(tracer.ops().size() + tracer.commands().size() +
                 tracer.spans().size());
  for (const auto& op : tracer.ops()) {
    ChromeEvent e;
    e.start_ns = op.start_ns;
    e.end_ns = op.end_ns;
    e.rank = 0;
    e.seq = op.seq;
    e.depth = 0;
    e.name = OpTypeName(op.type);
    e.cat = "op";
    e.pid = PidOf(op.shard_id);
    e.tid = op.queue_id;
    e.args = "{\"seq\":";
    AppendU64(&e.args, op.seq);
    if (op.client_op != kNoSeq) {
      e.args += ",\"client_op\":";
      AppendU64(&e.args, op.client_op);
    }
    e.args += ",\"payload_bytes\":";
    AppendU64(&e.args, op.payload_bytes);
    e.args += ",\"commands\":";
    AppendU64(&e.args, op.num_commands);
    e.args += op.ok ? ",\"ok\":true}" : ",\"ok\":false}";
    events.push_back(std::move(e));
  }
  for (const auto& cmd : tracer.commands()) {
    ChromeEvent e;
    e.start_ns = cmd.start_ns;
    e.end_ns = cmd.end_ns;
    e.rank = 1;
    e.seq = cmd.seq;
    e.depth = 0;
    e.name = OpcodeMnemonic(cmd.opcode);
    e.cat = "cmd";
    e.pid = PidOf(cmd.shard_id);
    e.tid = cmd.queue_id;
    e.args = "{\"seq\":";
    AppendU64(&e.args, cmd.seq);
    e.args += ",\"cid\":";
    AppendU64(&e.args, cmd.cid);
    e.args += ",\"cq_status\":";
    AppendU64(&e.args, cmd.cq_status);
    e.args += "}";
    events.push_back(std::move(e));
  }
  for (const auto& span : tracer.spans()) {
    ChromeEvent e;
    e.start_ns = span.start_ns;
    e.end_ns = span.end_ns;
    e.rank = 2;
    e.seq = span.cmd_seq;
    e.depth = span.depth;
    e.name = CategoryName(span.category);
    e.cat = "span";
    e.pid = PidOf(span.shard_id);
    e.tid = span.queue_id;
    e.args = "{\"cmd_seq\":";
    AppendU64(&e.args, span.cmd_seq);
    e.args += ",\"bytes\":";
    AppendU64(&e.args, span.bytes);
    e.args += "}";
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.seq != b.seq) return a.seq < b.seq;
                     return a.depth < b.depth;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat;
    out += "\",\"ph\":\"X\",\"pid\":";
    AppendU64(&out, e.pid);
    out += ",\"tid\":";
    AppendU64(&out, e.tid);
    out += ",\"ts\":";
    AppendMicros(&out, e.start_ns);
    out += ",\"dur\":";
    AppendMicros(&out, e.end_ns - e.start_ns);
    out += ",\"args\":";
    out += e.args;
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string ToBreakdownCsv(const Tracer& tracer) {
  std::string out =
      "cmd_seq,op_seq,op,opcode,queue,cid,cq_status,start_ns,latency_ns";
  for (int i = 0; i < kNumCategories; ++i) {
    const char* name = CategoryName(static_cast<Category>(i));
    out += ",";
    out += name;
    out += "_ns,";
    out += name;
    out += "_bytes";
  }
  out += ",shard,client_op,tenant\n";

  struct OpInfo {
    OpType type;
    std::uint64_t client_op;
  };
  std::unordered_map<std::uint64_t, OpInfo> op_types;
  op_types.reserve(tracer.ops().size());
  for (const auto& op : tracer.ops()) {
    op_types.emplace(op.seq, OpInfo{op.type, op.client_op});
  }

  for (const auto& cmd : tracer.commands()) {
    AppendU64(&out, cmd.seq);
    out += ",";
    if (cmd.op_seq == kNoSeq) {
      out += "-";
    } else {
      AppendU64(&out, cmd.op_seq);
    }
    out += ",";
    const auto it = op_types.find(cmd.op_seq);
    out += it != op_types.end() ? OpTypeName(it->second.type) : "-";
    out += ",";
    out += OpcodeMnemonic(cmd.opcode);
    out += ",";
    AppendU64(&out, cmd.queue_id);
    out += ",";
    AppendU64(&out, cmd.cid);
    out += ",";
    AppendU64(&out, cmd.cq_status);
    out += ",";
    AppendU64(&out, cmd.start_ns);
    out += ",";
    AppendU64(&out, cmd.end_ns - cmd.start_ns);
    for (int i = 0; i < kNumCategories; ++i) {
      out += ",";
      AppendU64(&out, cmd.stages.ns[i]);
      out += ",";
      AppendU64(&out, cmd.stages.bytes[i]);
    }
    // Shard tag (s + 1 on a cluster shard, "-" untagged) and the router
    // client op this shard op belongs to, so a cross-shard batch can be
    // reassembled from the flat per-command rows.
    out += ",";
    if (cmd.shard_id == 0) {
      out += "-";
    } else {
      AppendU64(&out, static_cast<std::uint64_t>(cmd.shard_id - 1));
    }
    out += ",";
    if (it != op_types.end() && it->second.client_op != kNoSeq) {
      AppendU64(&out, it->second.client_op);
    } else {
      out += "-";
    }
    // Tenant tag (t + 1 stamped by the cluster, "-" untagged), same
    // convention as the shard column.
    out += ",";
    if (cmd.tenant == 0) {
      out += "-";
    } else {
      AppendU64(&out, static_cast<std::uint64_t>(cmd.tenant - 1));
    }
    out += "\n";
  }
  return out;
}

}  // namespace bandslim::trace
