// Per-command tracing and latency attribution (DESIGN.md 2.3).
//
// A Tracer stamps every host operation (PUT/GET/...) and every NVMe command
// with begin/end timestamps from the shared sim::VirtualClock, and records
// typed spans as the command flows driver -> transport -> controller ->
// DMA -> page buffer / vLog -> FTL -> NAND. Attribution is *exclusive*
// (self-time): a span's nanoseconds exclude time spent in spans nested
// inside it, so for every command
//
//     sum over categories of stages.ns[c]  ==  end_ns - start_ns   exactly,
//
// with Category::kOther holding the residual that no instrumented span
// covered. Timestamps come from the virtual clock, so traces are
// deterministic and bit-reproducible across runs.
//
// Zero overhead when disabled: every component holds a `Tracer*` that is
// nullptr (or a disabled tracer) by default, and each RAII scope checks
// `Active(tracer)` exactly once at construction — one predictable branch
// on the hot path, no allocation, no clock read.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/clock.h"
#include "stats/metrics.h"

namespace bandslim::trace {

// Span taxonomy. One category per stage of the stack that can consume
// virtual time or move bytes. Leaf stages (DMA, NAND, buffer copies) are
// charged exclusively; composite stages (kKvs) keep only their self-time.
enum class Category : std::uint8_t {
  kDoorbell = 0,    // Host doorbell MMIO ring (bytes only; MMIO is untimed).
  kCmdFetch,        // SQ entry + PRP list fetch over PCIe (bytes only).
  kSubmission,      // SQ wait + command fetch/arbitration latency.
  kCompletion,      // CQ entry posting (bytes only).
  kTimeout,         // Host watchdog waiting out a dropped command.
  kRetryBackoff,    // Exponential backoff before a resubmission.
  kKvs,             // Controller KV processing (index ops, persist barrier).
  kDma,             // PRP data DMA, either direction.
  kBufferCopy,      // NAND page buffer memcpy (value packing / staging).
  kVlogFlush,       // Page buffer eviction flushing a 16 KiB page.
  kVlogRead,        // vLog read miss serviced from NAND.
  kFtlGc,           // FTL garbage collection / failure relocation.
  kNandProgram,     // NAND page program (includes die/channel stalls).
  kNandRead,        // NAND page read (includes stalls + ECC retry).
  kNandErase,       // NAND block erase.
  kOther,           // Residual: command window not covered by any span.
};
inline constexpr int kNumCategories = 16;
const char* CategoryName(Category c);

enum class OpType : std::uint8_t {
  kPut = 0,
  kGet,
  kDelete,
  kExists,
  kFlush,
  kSeek,
  kNext,
  kPutBatch,
  kGetBatch,
  kDeleteBatch,
  kGc,
  kRecovery,
  kOther,
};
inline constexpr int kNumOpTypes = 13;
const char* OpTypeName(OpType t);

struct TraceConfig {
  bool enabled = false;
  // Ring capacities; the oldest record is dropped (and counted) on overflow.
  std::size_t op_capacity = 1u << 15;
  std::size_t command_capacity = 1u << 16;
  std::size_t span_capacity = 1u << 18;
  // Sampled tracing (DESIGN.md 2.6): record every Nth host operation.
  // 1 (the default) is exact mode — every op, command, and span is recorded
  // and all exports are bit-identical to the pre-sampling tracer. N > 1 is
  // cheap mode: unsampled ops skip ring writes, clock reads, and histogram
  // updates entirely (their commands and spans are suppressed with them);
  // the per-op sampling decision is a deterministic counter, never time or
  // randomness, so a sampled run is still bit-reproducible. Commands issued
  // outside any op (e.g. internal recovery traffic) are always recorded.
  std::uint64_t sample_every = 1;
};

inline constexpr std::uint64_t kNoSeq = ~0ULL;

// Per-category exclusive nanoseconds and byte counts.
struct StageBreakdown {
  std::array<std::uint64_t, kNumCategories> ns{};
  std::array<std::uint64_t, kNumCategories> bytes{};

  std::uint64_t TotalNs() const;
  std::uint64_t TotalBytes() const;
  void Accumulate(const StageBreakdown& other);
};

// One host-visible operation (a driver API call). Aggregates the stage
// breakdowns of every command it issued; `commands_ns` is the sum of the
// individual command windows (host-side framing is the remainder).
struct OpRecord {
  std::uint64_t seq = kNoSeq;
  OpType type = OpType::kOther;
  std::uint16_t queue_id = 0;
  // Shard tag of the tracer that recorded this op (0 = untagged / single
  // device; a KvCluster tags shard s as s + 1).
  std::uint16_t shard_id = 0;
  // Router-level client operation this shard-local op served (kNoSeq when
  // not dispatched through a cluster). One cross-shard batch fans out into
  // N shard ops sharing the same client_op, which is how trace_breakdown
  // stitches a fleet-wide request back together.
  std::uint64_t client_op = kNoSeq;
  // Tenant that issued the op (0 = untagged; a KvCluster tags tenant t as
  // t + 1, mirroring shard_id).
  std::uint16_t tenant = 0;
  bool ok = true;
  std::uint64_t payload_bytes = 0;
  sim::Nanoseconds start_ns = 0;
  sim::Nanoseconds end_ns = 0;
  std::uint32_t num_commands = 0;
  std::uint64_t commands_ns = 0;
  StageBreakdown stages;
};

// One NVMe command, submit doorbell to completion reap. The breakdown's
// category sum equals end_ns - start_ns exactly (kOther is the residual).
struct CommandRecord {
  std::uint64_t seq = kNoSeq;
  std::uint64_t op_seq = kNoSeq;
  std::uint16_t shard_id = 0;  // See OpRecord::shard_id.
  std::uint16_t tenant = 0;    // See OpRecord::tenant.
  std::uint16_t queue_id = 0;
  std::uint16_t cid = 0;
  std::uint8_t opcode = 0;
  std::uint16_t cq_status = 0;
  sim::Nanoseconds start_ns = 0;
  sim::Nanoseconds end_ns = 0;
  StageBreakdown stages;
};

// One raw span as recorded by an instrumentation site. `depth` is the
// nesting depth within the enclosing command (0 = direct child).
struct SpanRecord {
  std::uint64_t cmd_seq = kNoSeq;
  std::uint64_t op_seq = kNoSeq;
  Category category = Category::kOther;
  std::uint16_t shard_id = 0;  // See OpRecord::shard_id.
  std::uint16_t queue_id = 0;
  std::uint16_t cid = 0;
  std::uint16_t depth = 0;
  sim::Nanoseconds start_ns = 0;
  sim::Nanoseconds end_ns = 0;
  std::uint64_t bytes = 0;
};

class Tracer {
 public:
  Tracer(sim::VirtualClock* clock, stats::MetricsRegistry* metrics,
         TraceConfig config = {});

  bool enabled() const { return enabled_; }
  // Toggling mid-operation is not supported: all scopes must be closed.
  void SetEnabled(bool on);
  const TraceConfig& config() const { return config_; }

  // --- Fleet attribution (cluster routing). A KvCluster tags each shard's
  // tracer once at assembly (shard s -> tag s + 1; 0 means untagged) and
  // brackets every dispatched sub-operation with the router-level client-op
  // sequence, so shard-local records can be stitched back into the
  // cross-shard request that caused them. Both are plain stamps copied onto
  // records at Begin*: they never touch the clock or the rings.
  void SetShardTag(std::uint16_t tag) { shard_tag_ = tag; }
  std::uint16_t shard_tag() const { return shard_tag_; }
  void SetClientOpContext(std::uint64_t client_op) {
    client_op_ctx_ = client_op;
  }
  void ClearClientOpContext() { client_op_ctx_ = kNoSeq; }
  // Tenant stamp for ops/commands begun while set (0 = untagged; cluster
  // tenant t stamps t + 1). Same plain-stamp semantics as the client-op
  // context: never touches the clock or the rings.
  void SetTenantContext(std::uint16_t tenant) { tenant_ctx_ = tenant; }
  void ClearTenantContext() { tenant_ctx_ = 0; }
  std::uint16_t tenant_context() const { return tenant_ctx_; }

  // --- Operation lifecycle (driver API calls). Ops may nest (e.g. a
  // recovery op replaying PUTs); inner ops fold into the outermost one.
  void BeginOp(OpType type, std::uint16_t queue_id,
               std::uint64_t payload_bytes);
  void SetOpResult(bool ok);
  void EndOp();

  // --- Command lifecycle (transport). Commands never nest.
  void BeginCommand(std::uint16_t queue_id, std::uint8_t opcode);
  void SetCommandCid(std::uint16_t cid);
  void EndCommand(std::uint16_t cq_status);

  // --- Spans. OpenSpan/CloseSpan must be balanced; `bytes` is attributed
  // at open. InstantSpan records a zero-duration byte-accounting event.
  void OpenSpan(Category category, std::uint64_t bytes);
  void CloseSpan();
  void InstantSpan(Category category, std::uint64_t bytes);

  // --- Sinks (bounded rings; oldest dropped first).
  const std::deque<OpRecord>& ops() const { return ops_; }
  const std::deque<CommandRecord>& commands() const { return commands_; }
  const std::deque<SpanRecord>& spans() const { return spans_; }
  std::uint64_t dropped_ops() const { return dropped_ops_; }
  std::uint64_t dropped_commands() const { return dropped_commands_; }
  std::uint64_t dropped_spans() const { return dropped_spans_; }
  // Spans recorded outside any command or op (should stay 0).
  std::uint64_t orphan_spans() const { return orphan_spans_; }
  bool command_active() const { return cmd_active_; }
  bool op_active() const { return op_active_; }
  // Host ops seen (sampled or not) and ops skipped by sampling.
  std::uint64_t ops_seen() const { return op_counter_; }
  std::uint64_t ops_sampled_out() const { return ops_sampled_out_; }

  // Aggregate breakdown over all retained commands.
  StageBreakdown AggregateCommandStages() const;

  void Clear();

 private:
  struct OpenSpanState {
    Category category;
    sim::Nanoseconds start_ns;
    std::uint64_t bytes;
    std::uint64_t child_ns;
    std::uint16_t depth;
  };

  void RecordStageHistograms(const StageBreakdown& stages,
                             sim::Nanoseconds total_ns);

  sim::VirtualClock* clock_;
  TraceConfig config_;
  bool enabled_;

  std::deque<OpRecord> ops_;
  std::deque<CommandRecord> commands_;
  std::deque<SpanRecord> spans_;
  std::uint64_t dropped_ops_ = 0;
  std::uint64_t dropped_commands_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t orphan_spans_ = 0;

  std::vector<OpenSpanState> span_stack_;
  bool op_active_ = false;
  int op_nesting_ = 0;
  OpRecord cur_op_;
  bool cmd_active_ = false;
  CommandRecord cur_cmd_;
  std::uint64_t next_op_seq_ = 0;
  std::uint64_t next_cmd_seq_ = 0;
  // Sampling state (see TraceConfig::sample_every). `op_recording_` is
  // decided once at the outermost BeginOp; `cmd_recording_` follows the
  // enclosing op (true for op-less commands). `suppressed_spans_` balances
  // OpenSpan/CloseSpan pairs inside unsampled contexts without touching the
  // span stack or the clock.
  bool op_recording_ = true;
  bool cmd_recording_ = true;
  std::uint16_t shard_tag_ = 0;
  std::uint64_t client_op_ctx_ = kNoSeq;
  std::uint16_t tenant_ctx_ = 0;
  std::uint64_t op_counter_ = 0;
  std::uint64_t ops_sampled_out_ = 0;
  std::uint64_t suppressed_spans_ = 0;

  stats::Histogram* op_latency_hist_;
  stats::Histogram* cmd_latency_hist_;
  std::array<stats::Histogram*, kNumCategories> stage_hists_;
  // Per-op-type latency ("trace.op.put.latency_ns", ...) feeding the
  // sampler's per-interval p50/p95/p99 series.
  std::array<stats::Histogram*, kNumOpTypes> op_type_hists_;
};

// Single hot-path check shared by all scopes and instrumentation sites.
inline bool Active(const Tracer* t) { return t != nullptr && t->enabled(); }

class SpanScope {
 public:
  SpanScope(Tracer* tracer, Category category, std::uint64_t bytes = 0)
      : tracer_(Active(tracer) ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->OpenSpan(category, bytes);
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->CloseSpan();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
};

class OpScope {
 public:
  OpScope(Tracer* tracer, OpType type, std::uint16_t queue_id,
          std::uint64_t payload_bytes = 0)
      : tracer_(Active(tracer) ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->BeginOp(type, queue_id, payload_bytes);
  }
  ~OpScope() {
    if (tracer_ != nullptr) tracer_->EndOp();
  }
  void set_ok(bool ok) {
    if (tracer_ != nullptr) tracer_->SetOpResult(ok);
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  Tracer* tracer_;
};

class CommandScope {
 public:
  CommandScope(Tracer* tracer, std::uint16_t queue_id, std::uint8_t opcode)
      : tracer_(Active(tracer) ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->BeginCommand(queue_id, opcode);
  }
  void SetCid(std::uint16_t cid) {
    if (tracer_ != nullptr) tracer_->SetCommandCid(cid);
  }
  void Finish(std::uint16_t cq_status) {
    if (tracer_ != nullptr) {
      tracer_->EndCommand(cq_status);
      tracer_ = nullptr;
    }
  }
  ~CommandScope() {
    if (tracer_ != nullptr) tracer_->EndCommand(/*cq_status=*/0);
  }
  CommandScope(const CommandScope&) = delete;
  CommandScope& operator=(const CommandScope&) = delete;

 private:
  Tracer* tracer_;
};

// --- Deterministic exports. Both produce byte-identical output for
// identical runs (virtual timestamps, fixed formatting, stable sort).

// Chrome trace_event JSON ("traceEvents" array of ph:"X" complete events,
// pid = 1, tid = queue_id, ts/dur in microseconds with fixed 3-decimal
// nanosecond precision). Loadable in chrome://tracing and Perfetto.
std::string ToChromeTraceJson(const Tracer& tracer);

// Per-command CSV: one row per command with start/latency and the full
// per-category exclusive ns + bytes breakdown.
std::string ToBreakdownCsv(const Tracer& tracer);

}  // namespace bandslim::trace
