// Value-log addressing (Section 3.4). BandSlim's fine-grained packing needs
// byte-level addresses over the vLog; the baseline's block packing only
// needs 4 KiB-slot addresses. Both are carried as a 64-bit byte address in
// the simulator; the helpers here expose the bit-width arithmetic the paper
// discusses (e.g. a 1 TB vLog with 16 KiB pages needs 26 page bits, plus
// 14 byte-offset bits fine-grained vs 2 slot bits block-grained).
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace bandslim::vlog {

using VlogAddr = std::uint64_t;  // Byte address within vLog logical space.

constexpr std::uint64_t LpnOf(VlogAddr addr) { return addr / kNandPageSize; }
constexpr std::uint64_t PageOffsetOf(VlogAddr addr) {
  return addr % kNandPageSize;
}
constexpr VlogAddr MakeAddr(std::uint64_t lpn, std::uint64_t offset) {
  return lpn * kNandPageSize + offset;
}

constexpr int BitsFor(std::uint64_t distinct_values) {
  return distinct_values <= 1 ? 0 : std::bit_width(distinct_values - 1);
}

// Bits needed to address a value at byte granularity (fine-grained, §3.4).
constexpr int FineAddressBits(std::uint64_t capacity_bytes) {
  return BitsFor(capacity_bytes / kNandPageSize) + BitsFor(kNandPageSize);
}

// Bits needed at 4 KiB slot granularity (the block-interface baseline).
constexpr int CoarseAddressBits(std::uint64_t capacity_bytes) {
  return BitsFor(capacity_bytes / kNandPageSize) + BitsFor(kMemPagesPerNandPage);
}

}  // namespace bandslim::vlog
