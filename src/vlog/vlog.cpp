#include "vlog/vlog.h"

#include <algorithm>
#include <cstring>

namespace bandslim::vlog {

VLog::VLog(ftl::PageFtl* ftl, sim::VirtualClock* clock,
           const sim::CostModel* cost, stats::MetricsRegistry* metrics,
           const buffer::BufferConfig& buf_config, bool retain_payloads,
           trace::Tracer* tracer)
    : ftl_(ftl),
      tracer_(tracer),
      retain_payloads_(retain_payloads),
      buffer_(buf_config, clock, cost, metrics,
              [this](std::uint64_t lpn, ByteSpan page, std::uint32_t used) {
                return FlushPage(lpn, page, used);
              },
              tracer) {}

Status VLog::FlushPage(std::uint64_t lpn, ByteSpan page,
                       std::uint32_t used_bytes) {
  page_used_[lpn] = used_bytes;
  return ftl_->Write(lpn, page, ftl::Stream::kVlog, retain_payloads_);
}

Status VLog::Read(VlogAddr addr, MutByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const VlogAddr a = addr + done;
    const std::uint64_t lpn = LpnOf(a);
    const std::uint64_t offset = PageOffsetOf(a);
    const std::size_t n =
        std::min<std::size_t>(kNandPageSize - offset, out.size() - done);
    if (a >= buffer_.window_base_addr()) {
      BANDSLIM_RETURN_IF_ERROR(
          buffer_.ReadRange(a, out.subspan(done, n)));
    } else {
      if (lpn != cached_lpn_) {
        cached_lpn_ = ~0ULL;  // Stay invalid if the FTL read fails.
        {
          trace::SpanScope span(tracer_, trace::Category::kVlogRead,
                                kNandPageSize);
          BANDSLIM_RETURN_IF_ERROR(ftl_->ReadView(lpn, &cached_page_));
        }
        cached_lpn_ = lpn;
      } else {
        ++read_cache_hits_;
      }
      // The view may be shorter than a page (partial retention) or absent
      // (payload retention off): bytes past it read as zeros, exactly as
      // the copying read zero-filled its page buffer.
      const std::size_t have =
          cached_page_ == nullptr ? 0 : cached_page_->size();
      std::uint8_t* dst = out.data() + done;
      std::size_t copied = 0;
      if (offset < have) {
        copied = std::min<std::size_t>(n, have - offset);
        std::memcpy(dst, cached_page_->data() + offset, copied);
      }
      if (copied < n) std::memset(dst + copied, 0, n - copied);
    }
    done += n;
  }
  return Status::Ok();
}

Status VLog::TrimPages(std::uint64_t first_lpn, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    BANDSLIM_RETURN_IF_ERROR(ftl_->Trim(first_lpn + i));
    page_used_.erase(first_lpn + i);
  }
  if (cached_lpn_ >= first_lpn && cached_lpn_ < first_lpn + count) {
    cached_lpn_ = ~0ULL;
  }
  return Status::Ok();
}

std::uint64_t VLog::FlushedPageUsedBytes(std::uint64_t lpn) const {
  auto it = page_used_.find(lpn);
  return it == page_used_.end() ? 0 : it->second;
}

}  // namespace bandslim::vlog
