// Value Log: the linear logical NAND address space values are appended to
// (Section 2.1). The tail of the log lives in the NAND page buffer; flushed
// pages are persisted through the FTL. Reads transparently source each
// 16 KiB-page segment from the buffer window or from NAND.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "buffer/page_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "ftl/ftl.h"
#include "vlog/address.h"

namespace bandslim::vlog {

class VLog {
 public:
  VLog(ftl::PageFtl* ftl, sim::VirtualClock* clock, const sim::CostModel* cost,
       stats::MetricsRegistry* metrics, const buffer::BufferConfig& buf_config,
       bool retain_payloads, trace::Tracer* tracer = nullptr);

  // The controller drives the write path directly through the buffer.
  buffer::NandPageBuffer& buffer() { return buffer_; }
  const buffer::NandPageBuffer& buffer() const { return buffer_; }

  // Reads `out.size()` bytes starting at byte address `addr`, mixing buffer
  // and NAND segments as needed.
  [[nodiscard]] Status Read(VlogAddr addr, MutByteSpan out);

  // Drains the buffer to NAND.
  [[nodiscard]] Status Drain() { return buffer_.FlushAll(); }

  // Drops `count` flushed logical pages starting at `first_lpn` (all values
  // inside must have been relocated; used by vLog garbage collection).
  [[nodiscard]] Status TrimPages(std::uint64_t first_lpn, std::uint64_t count);

  // Payload bytes recorded per flushed page (GC accounting).
  std::uint64_t FlushedPageUsedBytes(std::uint64_t lpn) const;
  std::uint64_t flushed_pages() const { return buffer_.flushed_pages(); }

  std::uint64_t read_cache_hits() const { return read_cache_hits_; }

 private:
  Status FlushPage(std::uint64_t lpn, ByteSpan page, std::uint32_t used_bytes);

  ftl::PageFtl* ftl_;
  trace::Tracer* tracer_;  // Optional; null = untraced.
  bool retain_payloads_;
  std::unordered_map<std::uint64_t, std::uint32_t> page_used_;
  // Single-page read cache (device DRAM): sequential scans and co-located
  // GETs of densely packed values avoid re-reading the same NAND page.
  // Holds a zero-copy reference to the retained NAND payload (nullptr when
  // payload retention is off — those bytes read as zeros); the shared_ptr
  // keeps the content alive across GC relocations, exactly as a private
  // copy would.
  std::uint64_t cached_lpn_ = ~0ULL;
  std::shared_ptr<const Bytes> cached_page_;
  std::uint64_t read_cache_hits_ = 0;
  buffer::NandPageBuffer buffer_;  // Must follow fields FlushPage captures.
};

}  // namespace bandslim::vlog
