#include "workload/key_gen.h"

#include <cmath>

namespace bandslim::workload {
namespace {

std::string KeyFromU32(std::uint32_t v) {
  std::string key(4, '\0');
  key[0] = static_cast<char>(v >> 24);
  key[1] = static_cast<char>(v >> 16);
  key[2] = static_cast<char>(v >> 8);
  key[3] = static_cast<char>(v);
  return key;
}

}  // namespace

std::string SequentialKeyGenerator::Next() { return KeyFromU32(next_++); }

std::uint32_t UniqueHashKeyGenerator::Mix32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

std::string UniqueHashKeyGenerator::Next() {
  return KeyFromU32(Mix32(next_++ + seed_));
}

ZipfianKeyChooser::ZipfianKeyChooser(std::uint64_t num_keys, double theta,
                                     std::uint64_t seed)
    : num_keys_(num_keys), theta_(theta), rng_(seed) {
  zetan_ = Zeta(num_keys_);
  const double zeta2 = Zeta(2);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianKeyChooser::Zeta(std::uint64_t n) const {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  return sum;
}

std::uint64_t ZipfianKeyChooser::NextIndex() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  std::uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(
        static_cast<double>(num_keys_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= num_keys_) rank = num_keys_ - 1;
  }
  // Scatter ranks across the key space with a multiplicative permutation
  // (the prime is coprime with any realistic key count), so hot keys are
  // not adjacent and every rank maps to a distinct key.
  return (rank * 0x9E3779B1ULL) % num_keys_;
}

}  // namespace bandslim::workload
