// Key generators matching Section 4.1: 4-byte unique keys, either
// sequential (db_bench fillseq, Workload A) or scrambled through an
// invertible 32-bit hash so random-order workloads still never repeat a key.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"

namespace bandslim::workload {

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual std::string Next() = 0;
  virtual void Reset() = 0;
};

// Big-endian 4-byte counter: keys arrive in ascending order.
class SequentialKeyGenerator : public KeyGenerator {
 public:
  explicit SequentialKeyGenerator(std::uint32_t start = 0) : start_(start), next_(start) {}
  std::string Next() override;
  void Reset() override { next_ = start_; }

 private:
  std::uint32_t start_;
  std::uint32_t next_;
};

// counter -> bijective 32-bit mix (murmur3 finalizer, which is invertible):
// uniformly random-looking order, guaranteed unique.
class UniqueHashKeyGenerator : public KeyGenerator {
 public:
  explicit UniqueHashKeyGenerator(std::uint32_t seed = 0x9e3779b9)
      : seed_(seed) {}
  std::string Next() override;
  void Reset() override { next_ = 0; }

  static std::uint32_t Mix32(std::uint32_t x);

 private:
  std::uint32_t seed_;
  std::uint32_t next_ = 0;
};

// Zipfian key popularity over a fixed key space (YCSB's request
// distribution), using the Gray et al. rejection-free generator. Keys
// repeat — use for read/update mixes, not unique-insert loads.
class ZipfianKeyChooser {
 public:
  explicit ZipfianKeyChooser(std::uint64_t num_keys, double theta = 0.99,
                             std::uint64_t seed = 1);
  // Index in [0, num_keys), skew-distributed, scattered by a hash so the
  // hottest keys are not clustered.
  std::uint64_t NextIndex();

 private:
  double Zeta(std::uint64_t n) const;

  std::uint64_t num_keys_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Xoshiro256 rng_;
};

}  // namespace bandslim::workload
