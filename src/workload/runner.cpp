#include "workload/runner.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

#include "sim/event_engine.h"
#include "workload/key_gen.h"

namespace bandslim::workload {

KvSsdStats StatsDelta(const KvSsdStats& after, const KvSsdStats& before) {
  KvSsdStats d;
  d.elapsed_ns = after.elapsed_ns - before.elapsed_ns;
  d.commands_submitted = after.commands_submitted - before.commands_submitted;
  d.pcie_h2d_bytes = after.pcie_h2d_bytes - before.pcie_h2d_bytes;
  d.pcie_d2h_bytes = after.pcie_d2h_bytes - before.pcie_d2h_bytes;
  d.mmio_bytes = after.mmio_bytes - before.mmio_bytes;
  d.dma_h2d_bytes = after.dma_h2d_bytes - before.dma_h2d_bytes;
  d.nand_pages_programmed =
      after.nand_pages_programmed - before.nand_pages_programmed;
  d.nand_pages_read = after.nand_pages_read - before.nand_pages_read;
  d.nand_blocks_erased = after.nand_blocks_erased - before.nand_blocks_erased;
  d.vlog_pages_flushed = after.vlog_pages_flushed - before.vlog_pages_flushed;
  d.lsm_pages_programmed =
      after.lsm_pages_programmed - before.lsm_pages_programmed;
  d.gc_pages_programmed = after.gc_pages_programmed - before.gc_pages_programmed;
  d.device_memcpy_bytes = after.device_memcpy_bytes - before.device_memcpy_bytes;
  d.buffer_wasted_bytes = after.buffer_wasted_bytes - before.buffer_wasted_bytes;
  d.dlt_forced_evictions =
      after.dlt_forced_evictions - before.dlt_forced_evictions;
  d.values_written = after.values_written - before.values_written;
  d.value_bytes_written =
      after.value_bytes_written - before.value_bytes_written;
  d.lsm_compactions = after.lsm_compactions - before.lsm_compactions;
  d.memtable_flushes = after.memtable_flushes - before.memtable_flushes;
  return d;
}

RunResult RunPutWorkload(KvStore& store, const WorkloadSpec& spec,
                         const std::string& config_label) {
  RunResult result;
  result.workload = spec.name;
  result.config = config_label;
  result.ops = spec.ops;

  Xoshiro256 rng(spec.seed);
  Bytes value(spec.sizes->MaxSize(), 0xA5);
  spec.keys->Reset();

  const KvSsdStats before = store.GetStats();
  const sim::Nanoseconds start = store.Now();

  for (std::uint64_t i = 0; i < spec.ops; ++i) {
    const std::string key = spec.keys->Next();
    const std::size_t size = spec.sizes->Next(rng);
    // Stamp the op index so payloads differ without a full refill.
    for (int b = 0; b < 8 && static_cast<std::size_t>(b) < size; ++b) {
      value[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    const sim::Nanoseconds op_start = store.Now();
    const Status st = store.Put(key, ByteSpan(value).subspan(0, size));
    if (!st.ok()) {
      // Surface failures loudly: a bench must not silently keep going.
      result.workload += " [FAILED: " + st.ToString() + "]";
      break;
    }
    result.latency_ns.Record(store.Now() - op_start);
    result.requested_value_bytes += size;
  }

  result.elapsed_ns = store.Now() - start;
  result.delta = StatsDelta(store.GetStats(), before);
  return result;
}

RunResult RunShardedPutWorkload(KvSsd& ssd, const WorkloadSpec& spec,
                                std::uint16_t num_streams,
                                const std::string& config_label) {
  assert(num_streams >= 1);
  assert(num_streams <= ssd.options().num_queues);
  RunResult result;
  result.workload = spec.name;
  result.config = config_label;
  result.ops = spec.ops;

  // Pre-draw the op sequence in the exact order RunPutWorkload would, so a
  // one-stream sharded run issues byte-identical PUTs.
  struct Op {
    std::string key;
    std::size_t size = 0;
  };
  std::vector<Op> ops(spec.ops);
  {
    Xoshiro256 rng(spec.seed);
    spec.keys->Reset();
    for (std::uint64_t i = 0; i < spec.ops; ++i) {
      ops[i].key = spec.keys->Next();
      ops[i].size = spec.sizes->Next(rng);
    }
  }

  // Stream s gets ops s, s+S, s+2S, ... and its own driver/queue pair;
  // stream 0 rides the device's built-in queue-0 driver.
  KvSsd::TestHooks hooks = ssd.Hooks();
  std::vector<driver::KvDriver*> drivers(num_streams, hooks.driver);
  for (std::uint16_t s = 1; s < num_streams; ++s) {
    auto d = ssd.CreateQueueDriver(s, ssd.options().driver);
    assert(d.ok());
    drivers[s] = d.value();
  }

  sim::VirtualClock& clock = *hooks.clock;
  const bool was_parallel = hooks.transport->parallel_arbitration();
  hooks.transport->SetParallelArbitration(true);

  const KvSsdStats before = ssd.GetStats();
  const sim::Nanoseconds start = clock.Now();
  sim::Nanoseconds latest_finish = start;
  bool failed = false;

  // One value buffer per stream: a stream's buffer must stay intact while
  // other streams interleave between its fragments' submissions.
  std::vector<Bytes> values(num_streams, Bytes(spec.sizes->MaxSize(), 0xA5));

  sim::EventEngine engine(&clock);
  // At most one in-flight turn per stream, so the heap and the callback
  // arena never hold more than num_streams entries: pre-size both (plus
  // slack for the drain buffer) so the run loop never grows them.
  engine.Reserve(2u * num_streams + 4u);
  // Each stream's turn runs one PUT in that stream's time frame, then books
  // the stream's next turn at its new local time. The engine always picks
  // the stream with the smallest local time (ties by schedule order), so
  // the interleaving is deterministic.
  std::function<void(std::uint16_t, std::uint64_t)> run_op =
      [&](std::uint16_t stream, std::uint64_t index) {
        if (failed) return;
        const Op& op = ops[index];
        Bytes& value = values[stream];
        for (int b = 0; b < 8 && static_cast<std::size_t>(b) < op.size; ++b) {
          value[static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(index >> (8 * b));
        }
        const sim::Nanoseconds op_start = clock.Now();
        const Status st =
            drivers[stream]->Put(op.key, ByteSpan(value).subspan(0, op.size));
        if (!st.ok()) {
          result.workload += " [FAILED: " + st.ToString() + "]";
          failed = true;
          return;
        }
        result.latency_ns.Record(clock.Now() - op_start);
        result.requested_value_bytes += op.size;
        latest_finish = std::max(latest_finish, clock.Now());
        const std::uint64_t next = index + num_streams;
        if (next < spec.ops) {
          engine.Schedule(clock.Now(),
                          [&run_op, stream, next] { run_op(stream, next); });
        }
      };
  for (std::uint16_t s = 0; s < num_streams && s < spec.ops; ++s) {
    const std::uint16_t stream = s;
    engine.Schedule(start, [&run_op, stream] {
      run_op(stream, stream);
    });
  }
  engine.RunUntilIdle();

  // Leave the clock at the run's end (the last event may have been an
  // earlier-finishing stream's frame).
  clock.SetTime(std::max(clock.Now(), latest_finish));
  hooks.transport->SetParallelArbitration(was_parallel);

  result.elapsed_ns = latest_finish - start;
  result.delta = StatsDelta(ssd.GetStats(), before);
  return result;
}


// --- Mixed read/write workloads --------------------------------------------

namespace {

struct MixedOp {
  std::uint64_t key_index = 0;
  bool is_get = false;
};

// Pre-draws the full op sequence in canonical order: the serial and the
// cluster-parallel runner consume the SAME draws, so they issue identical
// ops (only the time frames differ).
std::vector<MixedOp> DrawMixedOps(const MixedWorkloadSpec& spec) {
  std::vector<MixedOp> ops(spec.ops);
  Xoshiro256 rng(spec.seed);
  ZipfianKeyChooser zipf(spec.num_keys, spec.zipf_theta, spec.seed + 1);
  for (std::uint64_t i = 0; i < spec.ops; ++i) {
    ops[i].is_get = (rng() % 1000) < spec.get_permille;
    ops[i].key_index =
        spec.zipfian ? zipf.NextIndex() : rng() % spec.num_keys;
  }
  return ops;
}

// Stamps the key index into the value head so updates carry distinct bytes.
void StampValue(Bytes* value, std::uint64_t key_index) {
  for (int b = 0; b < 8 && static_cast<std::size_t>(b) < value->size(); ++b) {
    (*value)[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(key_index >> (8 * b));
  }
}

// spec.key_prefix + canonical name; the default "" prefix concatenates to
// the historical key byte-for-byte.
std::string SpecKeyName(const MixedWorkloadSpec& spec, std::uint64_t index) {
  return spec.key_prefix + MixedKeyName(index);
}

}  // namespace

std::string MixedKeyName(std::uint64_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08llx",
                static_cast<unsigned long long>(index));
  return buf;
}

Status PreloadMixedKeys(KvStore& store, const MixedWorkloadSpec& spec) {
  Bytes value(spec.value_size, 0x5A);
  for (std::uint64_t i = 0; i < spec.num_keys; ++i) {
    StampValue(&value, i);
    BANDSLIM_RETURN_IF_ERROR(store.Put(SpecKeyName(spec, i), ByteSpan(value)));
  }
  return store.Flush();
}

RunResult RunMixedWorkload(KvStore& store, const MixedWorkloadSpec& spec,
                           const std::string& config_label) {
  RunResult result;
  result.workload = spec.name;
  result.config = config_label;
  result.ops = spec.ops;

  const std::vector<MixedOp> ops = DrawMixedOps(spec);
  Bytes value(spec.value_size, 0x5A);
  Bytes got;

  const KvSsdStats before = store.GetStats();
  const sim::Nanoseconds start = store.Now();

  for (const MixedOp& op : ops) {
    const std::string key = SpecKeyName(spec, op.key_index);
    const sim::Nanoseconds op_start = store.Now();
    Status st = Status::Ok();
    if (op.is_get) {
      st = store.GetInto(key, &got);
    } else {
      StampValue(&value, op.key_index);
      st = store.Put(key, ByteSpan(value));
      result.requested_value_bytes += value.size();
    }
    if (!st.ok()) {
      result.workload += " [FAILED: " + st.ToString() + "]";
      break;
    }
    result.latency_ns.Record(store.Now() - op_start);
  }

  result.elapsed_ns = store.Now() - start;
  result.delta = StatsDelta(store.GetStats(), before);
  return result;
}

RunResult RunClusterMixedWorkload(cluster::KvCluster& cluster,
                                  const MixedWorkloadSpec& spec,
                                  const std::string& config_label) {
  RunResult result;
  result.workload = spec.name;
  result.config = config_label;
  result.ops = spec.ops;

  const std::vector<MixedOp> ops = DrawMixedOps(spec);

  // Partition the canonical sequence by owner shard; each shard runs its
  // sub-sequence as one closed-loop stream.
  const std::uint32_t num_shards = cluster.num_shards();
  std::vector<std::vector<std::uint64_t>> stream(num_shards);
  for (std::uint64_t i = 0; i < ops.size(); ++i) {
    stream[cluster.ShardOf(SpecKeyName(spec, ops[i].key_index))].push_back(i);
  }

  // Common dispatch barrier: every shard starts in the router's frame.
  const sim::Nanoseconds start = cluster.Now();
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    cluster.shard(s).Hooks().clock->AdvanceTo(start);
  }

  const KvSsdStats before = cluster.GetStats();
  sim::Nanoseconds latest_finish = start;
  bool failed = false;

  std::vector<Bytes> values(num_shards, Bytes(spec.value_size, 0x5A));
  std::vector<Bytes> gots(num_shards);

  // The engine orders stream turns by each shard's LOCAL time on a scratch
  // clock; the shards themselves keep their own clocks. Shards share no
  // simulated resources, so the interleaving affects only host-side append
  // order (deterministic either way) — but it mirrors how a real multi-
  // device host drains completions in global time order.
  sim::VirtualClock scratch;
  scratch.SetTime(start);
  sim::EventEngine engine(&scratch);
  engine.Reserve(2u * num_shards + 4u);
  std::function<void(std::uint32_t, std::size_t)> run_op =
      [&](std::uint32_t s, std::size_t pos) {
        if (failed) return;
        const MixedOp& op = ops[stream[s][pos]];
        const std::string key = SpecKeyName(spec, op.key_index);
        KvSsd& dev = cluster.shard(s);
        const sim::Nanoseconds op_start = dev.Now();
        Status st = Status::Ok();
        if (op.is_get) {
          st = dev.GetInto(key, &gots[s]);
        } else {
          StampValue(&values[s], op.key_index);
          st = dev.Put(key, ByteSpan(values[s]));
          result.requested_value_bytes += values[s].size();
        }
        if (!st.ok()) {
          result.workload += " [FAILED: " + st.ToString() + "]";
          failed = true;
          return;
        }
        result.latency_ns.Record(dev.Now() - op_start);
        latest_finish = std::max(latest_finish, dev.Now());
        if (pos + 1 < stream[s].size()) {
          engine.Schedule(dev.Now(), [&run_op, s, pos] { run_op(s, pos + 1); });
        }
      };
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (stream[s].empty()) continue;
    const std::uint32_t shard = s;
    engine.Schedule(start, [&run_op, shard] { run_op(shard, 0); });
  }
  engine.RunUntilIdle();

  // Hand the router a consistent timeline: the run ends when the slowest
  // shard finishes.
  cluster.SyncClockToShards();

  result.elapsed_ns = latest_finish - start;
  result.delta = StatsDelta(cluster.GetStats(), before);
  result.delta.elapsed_ns = result.elapsed_ns;
  return result;
}

// --- Tenant blends ----------------------------------------------------------

std::vector<std::uint16_t> DrawTenantInterleave(const TenantBlendSpec& spec) {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> remaining(spec.tenants.size(), 0);
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    remaining[t] = spec.tenants[t].ops;
    total += remaining[t];
  }
  std::vector<std::uint16_t> order;
  order.reserve(total);
  Xoshiro256 rng(spec.seed);
  while (total > 0) {
    // Weighted draw over REMAINING budgets: pick the tenant owning the
    // `pick`-th undrawn op. Keeps the blend's mix ratio steady through the
    // whole run instead of front-loading the heavy tenant.
    std::uint64_t pick = rng() % total;
    for (std::uint16_t t = 0; t < remaining.size(); ++t) {
      if (pick < remaining[t]) {
        order.push_back(t);
        --remaining[t];
        --total;
        break;
      }
      pick -= remaining[t];
    }
  }
  return order;
}

Status PreloadTenantBlend(cluster::KvCluster& cluster,
                          const TenantBlendSpec& spec) {
  // Harness-driven direct shard traffic: PUT each key on its owner shard,
  // bypassing the router, so the preload is NOT charged to any tenant — it
  // lands in the attribution plane's untagged residual, exactly like any
  // other background/setup work.
  for (const MixedWorkloadSpec& tenant : spec.tenants) {
    Bytes value(tenant.value_size, 0x5A);
    for (std::uint64_t i = 0; i < tenant.num_keys; ++i) {
      StampValue(&value, i);
      const std::string key = SpecKeyName(tenant, i);
      BANDSLIM_RETURN_IF_ERROR(
          cluster.shard(cluster.ShardOf(key)).Put(key, ByteSpan(value)));
    }
  }
  cluster.SyncClockToShards();
  return cluster.Flush();
}

BlendRunResult RunTenantBlendWorkload(cluster::KvCluster& cluster,
                                      const TenantBlendSpec& spec,
                                      const std::string& config_label) {
  BlendRunResult result;
  result.workload = config_label;
  result.tenants.resize(spec.tenants.size());

  // Each tenant consumes its OWN canonical op sequence in order; the
  // interleave only decides whose turn the next router slot is.
  std::vector<std::vector<MixedOp>> ops(spec.tenants.size());
  std::vector<std::size_t> cursor(spec.tenants.size(), 0);
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    ops[t] = DrawMixedOps(spec.tenants[t]);
  }
  const std::vector<std::uint16_t> order = DrawTenantInterleave(spec);

  std::vector<Bytes> values;
  values.reserve(spec.tenants.size());
  for (const MixedWorkloadSpec& tenant : spec.tenants) {
    values.emplace_back(tenant.value_size, 0x5A);
  }
  Bytes got;

  const sim::Nanoseconds start = cluster.Now();
  for (const std::uint16_t t : order) {
    const MixedOp& op = ops[t][cursor[t]++];
    const std::string key = SpecKeyName(spec.tenants[t], op.key_index);
    KvStore& surface = cluster.Tenant(t);
    const sim::Nanoseconds op_start = cluster.Now();
    Status st = Status::Ok();
    if (op.is_get) {
      st = surface.GetInto(key, &got);
    } else {
      StampValue(&values[t], op.key_index);
      st = surface.Put(key, ByteSpan(values[t]));
      result.tenants[t].requested_value_bytes += values[t].size();
    }
    result.tenants[t].ops += 1;
    if (st.code() == StatusCode::kBusy) {
      // QoS shed: the admission throttle rejected the command. Count it and
      // move on — that back-pressure IS the scenario a blend exercises.
      result.tenants[t].shed += 1;
    } else if (!st.ok()) {
      result.workload += " [FAILED: " + st.ToString() + "]";
      break;
    }
    result.tenants[t].latency_ns.Record(cluster.Now() - op_start);
  }

  result.elapsed_ns = cluster.Now() - start;
  return result;
}

}  // namespace bandslim::workload
