#include "workload/runner.h"

namespace bandslim::workload {

KvSsdStats StatsDelta(const KvSsdStats& after, const KvSsdStats& before) {
  KvSsdStats d;
  d.elapsed_ns = after.elapsed_ns - before.elapsed_ns;
  d.commands_submitted = after.commands_submitted - before.commands_submitted;
  d.pcie_h2d_bytes = after.pcie_h2d_bytes - before.pcie_h2d_bytes;
  d.pcie_d2h_bytes = after.pcie_d2h_bytes - before.pcie_d2h_bytes;
  d.mmio_bytes = after.mmio_bytes - before.mmio_bytes;
  d.dma_h2d_bytes = after.dma_h2d_bytes - before.dma_h2d_bytes;
  d.nand_pages_programmed =
      after.nand_pages_programmed - before.nand_pages_programmed;
  d.nand_pages_read = after.nand_pages_read - before.nand_pages_read;
  d.nand_blocks_erased = after.nand_blocks_erased - before.nand_blocks_erased;
  d.vlog_pages_flushed = after.vlog_pages_flushed - before.vlog_pages_flushed;
  d.lsm_pages_programmed =
      after.lsm_pages_programmed - before.lsm_pages_programmed;
  d.gc_pages_programmed = after.gc_pages_programmed - before.gc_pages_programmed;
  d.device_memcpy_bytes = after.device_memcpy_bytes - before.device_memcpy_bytes;
  d.buffer_wasted_bytes = after.buffer_wasted_bytes - before.buffer_wasted_bytes;
  d.dlt_forced_evictions =
      after.dlt_forced_evictions - before.dlt_forced_evictions;
  d.values_written = after.values_written - before.values_written;
  d.value_bytes_written =
      after.value_bytes_written - before.value_bytes_written;
  d.lsm_compactions = after.lsm_compactions - before.lsm_compactions;
  d.memtable_flushes = after.memtable_flushes - before.memtable_flushes;
  return d;
}

RunResult RunPutWorkload(KvSsd& ssd, const WorkloadSpec& spec,
                         const std::string& config_label) {
  RunResult result;
  result.workload = spec.name;
  result.config = config_label;
  result.ops = spec.ops;

  Xoshiro256 rng(spec.seed);
  Bytes value(spec.sizes->MaxSize(), 0xA5);
  spec.keys->Reset();

  const KvSsdStats before = ssd.GetStats();
  const sim::Nanoseconds start = ssd.clock().Now();

  for (std::uint64_t i = 0; i < spec.ops; ++i) {
    const std::string key = spec.keys->Next();
    const std::size_t size = spec.sizes->Next(rng);
    // Stamp the op index so payloads differ without a full refill.
    for (int b = 0; b < 8 && static_cast<std::size_t>(b) < size; ++b) {
      value[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    const sim::Nanoseconds op_start = ssd.clock().Now();
    const Status st = ssd.Put(key, ByteSpan(value).subspan(0, size));
    if (!st.ok()) {
      // Surface failures loudly: a bench must not silently keep going.
      result.workload += " [FAILED: " + st.ToString() + "]";
      break;
    }
    result.latency_ns.Record(ssd.clock().Now() - op_start);
    result.requested_value_bytes += size;
  }

  result.elapsed_ns = ssd.clock().Now() - start;
  result.delta = StatsDelta(ssd.GetStats(), before);
  return result;
}

}  // namespace bandslim::workload
