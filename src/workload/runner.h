// Workload runner: drives any KvStore (bare KvSsd, sharded KvCluster, or
// the conventional HostKvs stack) through a workload spec on the virtual
// clock, collecting the per-op latency histogram and the counter deltas the
// paper's figures are built from.
#pragma once

#include <string>

#include "cluster/kv_cluster.h"
#include "core/kv_store.h"
#include "core/kvssd.h"
#include "stats/histogram.h"
#include "workload/workloads.h"

namespace bandslim::workload {

struct RunResult {
  std::string workload;
  std::string config;
  std::uint64_t ops = 0;
  std::uint64_t requested_value_bytes = 0;
  sim::Nanoseconds elapsed_ns = 0;
  stats::Histogram latency_ns;

  // Counter deltas across the run.
  KvSsdStats delta;

  double MeanResponseUs() const { return latency_ns.Mean() / 1000.0; }
  double P99ResponseUs() const { return latency_ns.Percentile(99) / 1000.0; }
  double KopsPerSec() const {
    if (elapsed_ns == 0) return 0.0;
    return static_cast<double>(ops) / (static_cast<double>(elapsed_ns) / 1e9) /
           1000.0;
  }
  // Host-to-device traffic per op / amplification factor.
  double TrafficPerOpBytes() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(delta.pcie_h2d_bytes) /
                          static_cast<double>(ops);
  }
  double TrafficAmplification() const {
    return requested_value_bytes == 0
               ? 0.0
               : static_cast<double>(delta.pcie_h2d_bytes) /
                     static_cast<double>(requested_value_bytes);
  }
  double WriteAmplification() const {
    return requested_value_bytes == 0
               ? 0.0
               : static_cast<double>(delta.nand_pages_programmed) *
                     static_cast<double>(kNandPageSize) /
                     static_cast<double>(requested_value_bytes);
  }
};

// Subtracts counters (after - before).
KvSsdStats StatsDelta(const KvSsdStats& after, const KvSsdStats& before);

// Issues `spec.ops` PUTs. Value contents are a cheap deterministic pattern
// (benches measure transfer/packing, not data entropy). Topology-neutral:
// accepts anything behind the KvStore interface.
RunResult RunPutWorkload(KvStore& store, const WorkloadSpec& spec,
                         const std::string& config_label);

// Issues the same PUT sequence sharded across `num_streams` NVMe queue
// pairs (op i goes to stream i % num_streams; the device must be opened
// with num_queues >= num_streams). Each stream advances in its own time
// frame; the event engine interleaves streams deterministically by
// (time, sequence) and the transport's parallel arbitration plus the NAND
// channel/way scheduler decide how much of the work overlaps. elapsed_ns
// is the latest stream finish time. With num_streams == 1 the run is
// op-for-op identical to RunPutWorkload (see tests/figure_anchor_test).
RunResult RunShardedPutWorkload(KvSsd& ssd, const WorkloadSpec& spec,
                                std::uint16_t num_streams,
                                const std::string& config_label);

// --- Mixed read/write workloads over a preloaded key space -----------------

// A GET/PUT mix over `num_keys` preloaded keys; the knob set the shard
// scaling ablation sweeps. Key popularity is either uniform or Zipfian
// (YCSB request distribution). Fully deterministic for a given spec.
struct MixedWorkloadSpec {
  std::string name = "mixed";
  std::uint64_t ops = 0;
  std::uint64_t num_keys = 4096;   // Preloaded key-space size.
  std::size_t value_size = 128;
  std::uint32_t get_permille = 500;  // GET share per mille; the rest update.
  bool zipfian = false;
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
  // Prepended to every MixedKeyName — disjoint prefixes give tenants in a
  // blend disjoint key spaces (and steer which hash ranges they heat up).
  // "" (the default) reproduces the historical key names byte-for-byte.
  std::string key_prefix;
};

// The canonical key name for key-space index `i` ("k" + 8 hex digits).
std::string MixedKeyName(std::uint64_t index);

// PUTs every key of the spec's key space once (serially, through the
// store's normal path) so the mixed run's GETs always hit.
Status PreloadMixedKeys(KvStore& store, const MixedWorkloadSpec& spec);

// Serial mixed run: ops issue back-to-back on the store's own timeline.
// On a KvCluster this is the router's serial path (each op waits for its
// owner shard) — the closed-loop single-client view.
RunResult RunMixedWorkload(KvStore& store, const MixedWorkloadSpec& spec,
                           const std::string& config_label);

// Parallel mixed run against a cluster: the SAME op sequence is pre-drawn,
// partitioned by owner shard, and each shard executes its sub-sequence as
// an independent closed-loop stream in its own time frame; the event
// engine interleaves streams deterministically by (local time, sequence).
// elapsed_ns is the latest shard finish minus the common dispatch time —
// the open-loop N-client view the shard scaling ablation measures. With
// num_shards == 1 the run is op-for-op identical to RunMixedWorkload on
// the same cluster (one stream, no interleaving).
RunResult RunClusterMixedWorkload(cluster::KvCluster& cluster,
                                  const MixedWorkloadSpec& spec,
                                  const std::string& config_label);

// --- Tenant blends: several mixed workloads interleaved on one cluster -----

// One mixed spec per cluster tenant (index-paired with ClusterConfig's
// tenants). Give the specs disjoint key_prefix values so tenants own
// disjoint key spaces.
struct TenantBlendSpec {
  std::vector<MixedWorkloadSpec> tenants;
  // Seed for the interleaving draw (which tenant issues the next op) —
  // independent of each tenant's own op-sequence seed.
  std::uint64_t seed = 7;
};

// The serial interleaving order: element i names the tenant that issues the
// i-th client op. Drawn weighted by each tenant's REMAINING op budget, so a
// 10:1 blend stays 10:1 throughout the run, deterministically for a given
// seed. Exposed so the pinned-seed regression test can assert blends stay
// reproducible across refactors.
std::vector<std::uint16_t> DrawTenantInterleave(const TenantBlendSpec& spec);

// Preloads every tenant's key space by PUTting each key directly on its
// owner shard (bypassing the router, so the setup work stays UNTAGGED in
// the attribution plane rather than charged to tenant 0), then syncs the
// router clock and flushes.
Status PreloadTenantBlend(cluster::KvCluster& cluster,
                          const TenantBlendSpec& spec);

// Per-tenant outcome of a blend run. `ops` counts client ops issued
// (including shed ones); `shed` counts the kBusy rejections among them —
// sheds are the QoS mechanism working, not a workload failure.
struct TenantRunResult {
  std::uint64_t ops = 0;
  std::uint64_t shed = 0;
  std::uint64_t requested_value_bytes = 0;
  stats::Histogram latency_ns;
};

struct BlendRunResult {
  std::string workload;  // Carries " [FAILED: ...]" on a non-kBusy error.
  sim::Nanoseconds elapsed_ns = 0;
  std::vector<TenantRunResult> tenants;
};

// Serial blend run: client ops issue back-to-back on the router timeline in
// DrawTenantInterleave order, each through its tenant's KvStore facade
// (cluster.Tenant(t)), so QoS credits, tracer tenant stamps, and the
// attribution plane all see the real tenant. kBusy is counted and skipped;
// any other failure aborts the run.
BlendRunResult RunTenantBlendWorkload(cluster::KvCluster& cluster,
                                      const TenantBlendSpec& spec,
                                      const std::string& config_label);

}  // namespace bandslim::workload
