#include "workload/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "workload/value_gen.h"

namespace bandslim::workload {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}  // namespace

std::string HexEncode(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() * 2);
  for (unsigned char c : raw) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xF]);
  }
  return out;
}

Result<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) return Status::InvalidArgument("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

void WriteTrace(const Trace& trace, std::ostream& out) {
  for (const TraceRecord& r : trace) {
    switch (r.op) {
      case TraceOp::kPut:
        out << "put " << HexEncode(r.key) << ' ' << r.value_size << '\n';
        break;
      case TraceOp::kGet:
        out << "get " << HexEncode(r.key) << '\n';
        break;
      case TraceOp::kDelete:
        out << "del " << HexEncode(r.key) << '\n';
        break;
    }
  }
}

Result<Trace> ReadTrace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    std::string hexkey;
    ls >> op >> hexkey;
    if (ls.fail()) {
      return Status::Corruption("trace line " + std::to_string(lineno));
    }
    auto key = HexDecode(hexkey);
    if (!key.ok()) return key.status();
    TraceRecord record;
    record.key = std::move(key).value();
    if (op == "put") {
      ls >> record.value_size;
      if (ls.fail() || record.value_size == 0) {
        return Status::Corruption("bad put size, line " + std::to_string(lineno));
      }
      record.op = TraceOp::kPut;
    } else if (op == "get") {
      record.op = TraceOp::kGet;
    } else if (op == "del") {
      record.op = TraceOp::kDelete;
    } else {
      return Status::Corruption("unknown op '" + op + "', line " +
                                std::to_string(lineno));
    }
    trace.push_back(std::move(record));
  }
  return trace;
}

Trace TraceFromSpec(const WorkloadSpec& spec) {
  Trace trace;
  trace.reserve(spec.ops);
  Xoshiro256 rng(spec.seed);
  spec.keys->Reset();
  for (std::uint64_t i = 0; i < spec.ops; ++i) {
    trace.push_back({TraceOp::kPut, spec.keys->Next(),
                     static_cast<std::uint32_t>(spec.sizes->Next(rng))});
  }
  return trace;
}

Result<ReplayResult> ReplayTrace(KvSsd& ssd, const Trace& trace) {
  ReplayResult result;
  std::size_t max_size = 0;
  for (const TraceRecord& r : trace) {
    max_size = std::max<std::size_t>(max_size, r.value_size);
  }
  Bytes value(max_size, 0xA5);
  const sim::Nanoseconds start = ssd.clock().Now();
  for (const TraceRecord& r : trace) {
    switch (r.op) {
      case TraceOp::kPut:
        BANDSLIM_RETURN_IF_ERROR(
            ssd.Put(r.key, ByteSpan(value).subspan(0, r.value_size)));
        ++result.puts;
        break;
      case TraceOp::kGet: {
        auto v = ssd.Get(r.key);
        if (!v.ok()) {
          if (!v.status().IsNotFound()) return v.status();
          ++result.get_misses;
        }
        ++result.gets;
        break;
      }
      case TraceOp::kDelete:
        BANDSLIM_RETURN_IF_ERROR(ssd.Delete(r.key));
        ++result.deletes;
        break;
    }
  }
  result.elapsed_ns = ssd.clock().Now() - start;
  return result;
}

}  // namespace bandslim::workload
