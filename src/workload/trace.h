// Operation traces: a plain-text format for recording and replaying KV
// operation streams (one op per line: `put <hexkey> <size>`,
// `get <hexkey>`, `del <hexkey>`), so runs can be captured from generators
// or external tools and replayed bit-identically against any device
// configuration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/kvssd.h"
#include "workload/workloads.h"

namespace bandslim::workload {

enum class TraceOp : std::uint8_t { kPut, kGet, kDelete };

struct TraceRecord {
  TraceOp op = TraceOp::kPut;
  std::string key;
  std::uint32_t value_size = 0;  // PUT only.
};

using Trace = std::vector<TraceRecord>;

// Serialization. Keys are hex-encoded (they may contain arbitrary bytes).
void WriteTrace(const Trace& trace, std::ostream& out);
Result<Trace> ReadTrace(std::istream& in);

std::string HexEncode(const std::string& raw);
Result<std::string> HexDecode(const std::string& hex);

// Captures `spec` as a PUT trace without touching a device.
Trace TraceFromSpec(const WorkloadSpec& spec);

struct ReplayResult {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t get_misses = 0;
  sim::Nanoseconds elapsed_ns = 0;
};

// Replays a trace against a device. PUT payloads are deterministic pattern
// bytes of the recorded size.
Result<ReplayResult> ReplayTrace(KvSsd& ssd, const Trace& trace);

}  // namespace bandslim::workload
