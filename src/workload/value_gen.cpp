#include "workload/value_gen.h"

#include <algorithm>
#include <cmath>

namespace bandslim::workload {

std::size_t UniformChoice::MaxSize() const {
  return *std::max_element(sizes_.begin(), sizes_.end());
}

std::size_t MixgraphSizes::Next(Xoshiro256& rng) {
  const double u = rng.NextDouble();
  const double x = sigma_ / k_ * (std::pow(1.0 - u, -k_) - 1.0);
  const auto size = static_cast<std::size_t>(std::llround(x));
  return std::clamp(size, min_, cap_);
}

void FillValue(MutByteSpan out, std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t state = SplitMix64(seed ^ (tag * 0x9e3779b97f4a7c15ULL));
  std::size_t i = 0;
  while (i < out.size()) {
    state = SplitMix64(state);
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(state >> (8 * b));
    }
  }
}

Bytes MakeValue(std::size_t size, std::uint64_t seed, std::uint64_t tag) {
  Bytes value(size);
  FillValue(MutByteSpan(value), seed, tag);
  return value;
}

}  // namespace bandslim::workload
