// Value-size distributions for the paper's workloads (Section 4.1):
// fixed sizes (Workload A sweeps), two-point mixes (B and C), a uniform
// size set (D), and a mixgraph-style heavy-tailed distribution (M) modeled
// as a generalized Pareto capped at 1 KiB with ~70-80 % of values under
// 35 bytes — the shape Cao et al. report for Meta's production RocksDB.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace bandslim::workload {

class ValueSizeDistribution {
 public:
  virtual ~ValueSizeDistribution() = default;
  virtual std::size_t Next(Xoshiro256& rng) = 0;
  virtual std::size_t MaxSize() const = 0;
};

class FixedSize : public ValueSizeDistribution {
 public:
  explicit FixedSize(std::size_t size) : size_(size) {}
  std::size_t Next(Xoshiro256&) override { return size_; }
  std::size_t MaxSize() const override { return size_; }

 private:
  std::size_t size_;
};

// Emits `small_size` with probability `small_ratio`, else `large_size`.
class TwoPointMix : public ValueSizeDistribution {
 public:
  TwoPointMix(std::size_t small_size, std::size_t large_size, double small_ratio)
      : small_(small_size), large_(large_size), small_ratio_(small_ratio) {}
  std::size_t Next(Xoshiro256& rng) override {
    return rng.NextDouble() < small_ratio_ ? small_ : large_;
  }
  std::size_t MaxSize() const override { return large_ > small_ ? large_ : small_; }

 private:
  std::size_t small_;
  std::size_t large_;
  double small_ratio_;
};

// Uniform choice among a fixed size set (Workload D).
class UniformChoice : public ValueSizeDistribution {
 public:
  explicit UniformChoice(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)) {}
  std::size_t Next(Xoshiro256& rng) override {
    return sizes_[rng.Below(sizes_.size())];
  }
  std::size_t MaxSize() const override;

 private:
  std::vector<std::size_t> sizes_;
};

// Generalized-Pareto sizes: F^-1(u) = sigma/k * ((1-u)^-k - 1), clamped to
// [min, cap]. Defaults give P(size < 35 B) ~= 0.75 and P(size > 128 B)
// ~= 0.9% — the near-exponential small-value shape of Meta's production
// workloads that mixgraph models (values "nearly not reaching a hundred
// bytes on average", ~70 % under 35 B, capped at 1 KiB).
class MixgraphSizes : public ValueSizeDistribution {
 public:
  MixgraphSizes(double sigma = 24.0, double k = 0.05, std::size_t min_size = 1,
                std::size_t cap = 1024)
      : sigma_(sigma), k_(k), min_(min_size), cap_(cap) {}
  std::size_t Next(Xoshiro256& rng) override;
  std::size_t MaxSize() const override { return cap_; }

 private:
  double sigma_;
  double k_;
  std::size_t min_;
  std::size_t cap_;
};

// Deterministic value content derived from (seed, tag): lets tests verify
// GET results without storing expected payloads.
void FillValue(MutByteSpan out, std::uint64_t seed, std::uint64_t tag);
Bytes MakeValue(std::size_t size, std::uint64_t seed, std::uint64_t tag);

}  // namespace bandslim::workload
