#include "workload/workloads.h"

namespace bandslim::workload {

WorkloadSpec MakeWorkloadA(std::size_t value_size, std::uint64_t ops,
                           std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "A(fillseq," + std::to_string(value_size) + "B)";
  spec.keys = std::make_unique<SequentialKeyGenerator>();
  spec.sizes = std::make_unique<FixedSize>(value_size);
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

WorkloadSpec MakeWorkloadB(std::uint64_t ops, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "W(B)";
  spec.keys = std::make_unique<UniqueHashKeyGenerator>(
      static_cast<std::uint32_t>(seed * 0x9e3779b9u + 1));
  spec.sizes = std::make_unique<TwoPointMix>(8, 2048, 0.9);
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

WorkloadSpec MakeWorkloadC(std::uint64_t ops, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "W(C)";
  spec.keys = std::make_unique<UniqueHashKeyGenerator>(
      static_cast<std::uint32_t>(seed * 0x9e3779b9u + 2));
  spec.sizes = std::make_unique<TwoPointMix>(8, 2048, 0.1);
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

WorkloadSpec MakeWorkloadD(std::uint64_t ops, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "W(D)";
  spec.keys = std::make_unique<UniqueHashKeyGenerator>(
      static_cast<std::uint32_t>(seed * 0x9e3779b9u + 3));
  spec.sizes = std::make_unique<UniformChoice>(
      std::vector<std::size_t>{8, 16, 32, 64, 128, 256, 512, 1024, 2048});
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

WorkloadSpec MakeWorkloadM(std::uint64_t ops, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "W(M)";
  spec.keys = std::make_unique<UniqueHashKeyGenerator>(
      static_cast<std::uint32_t>(seed * 0x9e3779b9u + 4));
  spec.sizes = std::make_unique<MixgraphSizes>();
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

}  // namespace bandslim::workload
