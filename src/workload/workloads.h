// The paper's evaluation workloads (Section 4.1):
//   A — db_bench fillseq: sequential keys, one fixed value size.
//   B — 1 M random pairs, value 8 B : 2 KiB at 9:1.
//   C — like B with the ratio reversed (1:9).
//   D — sizes {8,16,32,64,128,256,512,1024,2048} B in random order, equal mix.
//   M — db_bench mixgraph All_random: heavy-tailed sizes, <=1 KiB,
//       ~70-80 % under 35 B.
// All keys are 4-byte unique (hash-scrambled except A).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workload/key_gen.h"
#include "workload/value_gen.h"

namespace bandslim::workload {

struct WorkloadSpec {
  std::string name;
  std::unique_ptr<KeyGenerator> keys;
  std::unique_ptr<ValueSizeDistribution> sizes;
  std::uint64_t ops = 0;
  std::uint64_t seed = 0;
};

WorkloadSpec MakeWorkloadA(std::size_t value_size, std::uint64_t ops,
                           std::uint64_t seed = 1);
WorkloadSpec MakeWorkloadB(std::uint64_t ops, std::uint64_t seed = 2);
WorkloadSpec MakeWorkloadC(std::uint64_t ops, std::uint64_t seed = 3);
WorkloadSpec MakeWorkloadD(std::uint64_t ops, std::uint64_t seed = 4);
WorkloadSpec MakeWorkloadM(std::uint64_t ops, std::uint64_t seed = 5);

}  // namespace bandslim::workload
