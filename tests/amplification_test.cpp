// Paper-anchor tests: the headline quantitative observations of BandSlim
// must hold on the simulated stack (Sections 2.4 and 4.2-4.3). These are
// small-scale versions of the bench harnesses, pinned as regressions.
#include <gtest/gtest.h>

#include "core/kvssd.h"
#include "workload/runner.h"
#include "workload/workloads.h"

namespace bandslim {
namespace {

KvSsdOptions BenchOptions(driver::TransferMethod method,
                          buffer::PackingPolicy policy, bool nand_io) {
  KvSsdOptions o;
  o.geometry.channels = 4;
  o.geometry.ways = 8;
  o.geometry.blocks_per_die = 64;
  o.geometry.pages_per_block = 64;
  o.driver.method = method;
  o.buffer.policy = policy;
  o.controller.nand_io_enabled = nand_io;
  o.retain_payloads = false;
  return o;
}

workload::RunResult RunSweep(driver::TransferMethod method,
                        buffer::PackingPolicy policy, bool nand_io,
                        std::size_t value_size, std::uint64_t ops) {
  auto ssd = KvSsd::Open(BenchOptions(method, policy, nand_io)).value();
  auto spec = workload::MakeWorkloadA(value_size, ops);
  return workload::RunPutWorkload(*ssd, spec, "anchor");
}

using driver::TransferMethod;
using buffer::PackingPolicy;

TEST(AmplificationAnchors, BaselineTafAt32BytesIs130) {
  // Figure 3(b): a 32 B PUT moves ~130x its size across PCIe.
  auto r = RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 32, 2000);
  EXPECT_NEAR(r.TrafficAmplification(), 130.0, 2.0);
}

TEST(AmplificationAnchors, BaselineTafHalvesPerDoubling) {
  // Figure 3(b): TAF 130 / 65 / 32.5 / 16.3 / 8.1 / 4.1.
  const double taf32 =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 32, 1000)
          .TrafficAmplification();
  const double taf64 =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 64, 1000)
          .TrafficAmplification();
  const double taf1k =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 1024, 1000)
          .TrafficAmplification();
  EXPECT_NEAR(taf32 / taf64, 2.0, 0.05);
  EXPECT_NEAR(taf1k, 4.1, 0.2);
}

TEST(AmplificationAnchors, BaselineTrafficStepsAt4KBoundaries) {
  // Figure 3(a): traffic is flat within (4k(n-1), 4kn] and doubles across.
  auto t = [&](std::size_t size) {
    return RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, size, 500)
        .TrafficPerOpBytes();
  };
  EXPECT_DOUBLE_EQ(t(1024), t(4096));
  EXPECT_NEAR(t(4097) - t(4096), kMemPageSize, 1.0);
  EXPECT_DOUBLE_EQ(t(8192), t(5000));
}

TEST(AmplificationAnchors, PiggybackCutsTrafficBy98PercentAt32B) {
  // Section 4.2: "Piggyback reduces traffic by up to 97.9%".
  const double base =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 32, 2000)
          .TrafficPerOpBytes();
  const double piggy =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 32, 2000)
          .TrafficPerOpBytes();
  const double reduction = 1.0 - piggy / base;
  EXPECT_NEAR(reduction, 0.979, 0.005);
}

TEST(AmplificationAnchors, PiggybackResponseHalfOfBaselineAt32B) {
  // Figure 8: "approximately a half of the Baseline for 32 bytes and below".
  const double base =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 32, 1000)
          .MeanResponseUs();
  const double piggy =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 32, 1000)
          .MeanResponseUs();
  EXPECT_NEAR(piggy / base, 0.5, 0.17);
}

TEST(AmplificationAnchors, PiggybackResponseEqualAt64B) {
  // Figure 8: two commands for 64 B make the response "almost identical".
  const double base =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 64, 1000)
          .MeanResponseUs();
  const double piggy =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 64, 1000)
          .MeanResponseUs();
  EXPECT_NEAR(piggy / base, 1.0, 0.05);
}

TEST(AmplificationAnchors, PiggybackDegradesFrom128B) {
  // Figure 8: serialized trailing commands hurt from 128 B on.
  const double base =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 128, 1000)
          .MeanResponseUs();
  const double piggy =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 128, 1000)
          .MeanResponseUs();
  EXPECT_GT(piggy, base * 1.2);
}

TEST(AmplificationAnchors, PiggybackTrafficCrossoverNear2K) {
  // Figure 8: piggyback traffic approaches Baseline at 2 KiB and exceeds
  // it at 4 KiB.
  const double base2k =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 2048, 500)
          .TrafficPerOpBytes();
  const double piggy2k =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 2048, 500)
          .TrafficPerOpBytes();
  EXPECT_LT(piggy2k, base2k);
  EXPECT_GT(piggy2k, 0.6 * base2k);
  const double base4k =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 4096, 500)
          .TrafficPerOpBytes();
  const double piggy4k =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kBlock, false, 4096, 500)
          .TrafficPerOpBytes();
  EXPECT_GT(piggy4k, base4k);
}

TEST(AmplificationAnchors, WafMirrorsTafAt32B) {
  // Figure 4(b): WAF ~= TAF (129.9 at 32 B) including LSM compaction I/O.
  auto r = RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, true, 32, 4000);
  EXPECT_NEAR(r.WriteAmplification(), 130.0, 8.0);
}

TEST(AmplificationAnchors, PackingCutsNandWritesBy98Percent) {
  // Figure 11(a): fine-grained packing reduces NAND writes by 98.1 % for
  // 4-32 B values.
  auto block = RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, true, 32, 4000);
  auto packed = RunSweep(TransferMethod::kPrp, PackingPolicy::kAll, true, 32, 4000);
  const double reduction =
      1.0 - static_cast<double>(packed.delta.nand_pages_programmed) /
                static_cast<double>(block.delta.nand_pages_programmed);
  EXPECT_GT(reduction, 0.95);
}

TEST(AmplificationAnchors, PackingCutsWriteResponseByTwoThirds) {
  // Figure 11(b): at 32 B the response time drops by ~67.6 %.
  auto block = RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, true, 32, 4000);
  auto packed = RunSweep(TransferMethod::kPrp, PackingPolicy::kAll, true, 32, 4000);
  const double reduction = 1.0 - packed.MeanResponseUs() / block.MeanResponseUs();
  EXPECT_NEAR(reduction, 0.676, 0.06);
}

TEST(AmplificationAnchors, PiggyPackAddsAFewPercentMore) {
  // Figure 11(b): piggyback + packing shaves an extra ~4 % at 32 B.
  auto packed = RunSweep(TransferMethod::kPrp, PackingPolicy::kAll, true, 32, 4000);
  auto piggypack =
      RunSweep(TransferMethod::kPiggyback, PackingPolicy::kAll, true, 32, 4000);
  EXPECT_LT(piggypack.MeanResponseUs(), packed.MeanResponseUs());
  const double extra =
      1.0 - piggypack.MeanResponseUs() / packed.MeanResponseUs();
  EXPECT_NEAR(extra, 0.06, 0.05);
}

TEST(AmplificationAnchors, HybridBeatsBaselineTrafficUpTo6K) {
  // Figure 9(a): hybrid is traffic-optimal for 4 KiB + trailing <= ~2 KiB.
  for (std::size_t trailing : {32u, 512u, 2048u}) {
    const double base = RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false,
                            4096 + trailing, 500)
                            .TrafficPerOpBytes();
    const double hybrid = RunSweep(TransferMethod::kHybrid, PackingPolicy::kBlock,
                              false, 4096 + trailing, 500)
                              .TrafficPerOpBytes();
    EXPECT_LT(hybrid, base) << "trailing " << trailing;
  }
  // ... but loses at +4 KiB trailing.
  const double base8k =
      RunSweep(TransferMethod::kPrp, PackingPolicy::kBlock, false, 8192, 500)
          .TrafficPerOpBytes();
  const double hybrid8k =
      RunSweep(TransferMethod::kHybrid, PackingPolicy::kBlock, false, 8191, 500)
          .TrafficPerOpBytes();
  EXPECT_GT(hybrid8k, base8k * 0.95);
}

}  // namespace
}  // namespace bandslim
