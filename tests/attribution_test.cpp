// Attribution-plane tests (telemetry/attribution, DESIGN.md 2.10): the
// hand-computable unit arithmetic of the SLO ledger / charge bracketing /
// key-space heat decay, plus the cluster-level invariants — exact
// per-interval reconciliation of tenant + untagged deltas against the fleet
// timeline, burn-rate alerts riding the fleet watchdog with tenant-stamped
// events, observation-only neutrality when disabled, byte-identical
// double-run exports, and tenant stamps in the per-shard trace CSV.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/kv_cluster.h"
#include "core/kvssd.h"
#include "stats/metrics.h"
#include "telemetry/attribution/attribution.h"
#include "telemetry/fleet.h"
#include "telemetry/sample.h"
#include "telemetry/watchdog.h"
#include "trace/trace.h"

namespace bandslim::telemetry::attribution {
namespace {

using cluster::ClusterConfig;
using cluster::KvCluster;
using cluster::TenantConfig;

std::uint64_t V(const SeriesTable& table, const Sample& s,
                const std::string& name) {
  const std::int64_t id = table.Find(name);
  return id < 0 ? 0 : s.Value(static_cast<std::uint32_t>(id));
}

std::uint64_t FleetValue(const FleetAggregator& fleet, const Sample& s,
                         const std::string& name) {
  return V(fleet.series(), s, name);
}

// --- Unit level: the plane driven directly ----------------------------------

TEST(AttributionPlaneTest, SloLedgerHandComputed) {
  AttributionConfig cfg;
  cfg.enabled = true;
  cfg.heat_fanout = 4;
  SloConfig slo;
  slo.latency_target_ns = 1000;
  slo.availability_target_permille = 990;  // Allowed bad: 10 permille.
  slo.fast_windows = 1;
  slo.slow_windows = 2;
  cfg.slo = {slo};
  AttributionPlane plane(cfg);
  stats::MetricsRegistry reg;
  plane.Bind({&reg}, {"t0"});

  // Five ops: two good, one answered-but-slow, one shed, one error.
  plane.RecordOp(0, 500, StatusCode::kOk, 64);
  plane.RecordOp(0, 500, StatusCode::kNotFound, 0);  // Answered = not bad.
  plane.RecordOp(0, 2000, StatusCode::kOk, 0);       // Over latency target.
  plane.RecordOp(0, 700, StatusCode::kBusy, 0);      // Admission shed.
  plane.RecordOp(0, 900, StatusCode::kIoError, 0);

  const AttributionPlane::TenantCharges& t = plane.tenant_charges(0);
  EXPECT_EQ(t.ops, 5u);
  EXPECT_EQ(t.ok_ops, 3u);  // kOk, kNotFound, and the slow kOk all answered.
  EXPECT_EQ(t.shed_ops, 1u);
  EXPECT_EQ(t.error_ops, 1u);
  EXPECT_EQ(t.good_ops, 2u);
  EXPECT_EQ(t.bad_ops, 3u);
  EXPECT_EQ(t.requested_bytes, 64u);
  EXPECT_EQ(plane.tenant_latency(0).count(), 5u);

  SeriesTable table;
  AttributionPlane::FleetTotals totals;
  Sample s1;
  s1.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s1, &table, totals);

  // Burn = bad-share / allowed-share x1000: 3 bad of 5 ops = 600 permille
  // bad over a 10-permille allowance -> 60000 milli on both windows; the
  // lifetime budget spend is the same ratio in permille of the budget.
  EXPECT_EQ(V(table, s1, "tenant0.slo.good"), 2u);
  EXPECT_EQ(V(table, s1, "tenant0.slo.bad"), 3u);
  EXPECT_EQ(V(table, s1, "tenant0.slo.delta.bad"), 3u);
  EXPECT_EQ(V(table, s1, "tenant0.slo.burn_fast_milli"), 60000u);
  EXPECT_EQ(V(table, s1, "tenant0.slo.burn_slow_milli"), 60000u);
  EXPECT_EQ(V(table, s1, "tenant0.slo.budget_spent_permille"), 60000u);
  EXPECT_EQ(V(table, s1, "tenant0.ops"), 5u);
  EXPECT_EQ(V(table, s1, "tenant0.delta.ops"), 5u);
  EXPECT_EQ(V(table, s1, "tenant0.shed"), 1u);
  EXPECT_EQ(V(table, s1, "tenant0.errors"), 1u);
  EXPECT_EQ(plane.slo_state(0).burn_fast_milli, 60000u);

  // A quiet interval: the fast window (1 interval) empties and reads 0, the
  // slow window (2 intervals) still holds the bad burst; lifetime budget
  // spend does not decay.
  Sample s2;
  s2.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s2, &table, totals);
  EXPECT_EQ(V(table, s2, "tenant0.slo.delta.bad"), 0u);
  EXPECT_EQ(V(table, s2, "tenant0.slo.burn_fast_milli"), 0u);
  EXPECT_EQ(V(table, s2, "tenant0.slo.burn_slow_milli"), 60000u);
  EXPECT_EQ(V(table, s2, "tenant0.slo.budget_spent_permille"), 60000u);

  // One more quiet interval rolls the burst out of the slow window too.
  Sample s3;
  s3.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s3, &table, totals);
  EXPECT_EQ(V(table, s3, "tenant0.slo.burn_slow_milli"), 0u);
  EXPECT_EQ(V(table, s3, "tenant0.slo.budget_spent_permille"), 60000u);
}

TEST(AttributionPlaneTest, ChargeBracketingAndUntaggedResidual) {
  AttributionConfig cfg;
  cfg.enabled = true;
  AttributionPlane plane(cfg);
  stats::MetricsRegistry reg;
  plane.Bind({&reg}, {"t0"});

  // Bind cached these counters via the registry's find-or-create path; the
  // test mutates the same objects the way a shard op would.
  stats::Counter* ops = reg.GetCounter("nvme.commands_submitted");
  stats::Counter* value_bytes = reg.GetCounter("controller.value_bytes_written");
  stats::Counter* mmio = reg.GetCounter("pcie.mmio.h2d_bytes");
  stats::Counter* dma = reg.GetCounter("pcie.dma_data.h2d_bytes");
  stats::Counter* nand = reg.GetCounter("nand.pages_programmed");

  plane.ChargeBegin(0);
  ops->Add(3);
  value_bytes->Add(100);
  mmio->Add(10);
  dma->Add(30);
  nand->Add(2);
  plane.ChargeEnd(0, 0);
  // Background (unbracketed) work: charged to nobody, lands in the residual.
  ops->Add(5);
  value_bytes->Add(7);

  const AttributionPlane::TenantCharges& t = plane.tenant_charges(0);
  EXPECT_EQ(t.dev_ops, 3u);
  EXPECT_EQ(t.value_bytes, 100u);
  EXPECT_EQ(t.pcie_h2d_bytes, 40u);
  EXPECT_EQ(t.nand_pages, 2u);

  SeriesTable table;
  AttributionPlane::FleetTotals totals;
  totals.ops = 8;
  totals.value_bytes = 107;
  totals.pcie_h2d_bytes = 40;
  totals.nand_pages = 2;
  Sample s1;
  s1.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s1, &table, totals);

  EXPECT_EQ(plane.untagged().dev_ops, 5u);
  EXPECT_EQ(plane.untagged().value_bytes, 7u);
  EXPECT_EQ(plane.untagged().pcie_h2d_bytes, 0u);
  EXPECT_EQ(V(table, s1, "tenant0.dev.ops"), 3u);
  EXPECT_EQ(V(table, s1, "tenant0.delta.dev.ops"), 3u);
  EXPECT_EQ(V(table, s1, "untagged.dev.ops"), 5u);
  EXPECT_EQ(V(table, s1, "untagged.delta.dev.ops"), 5u);
  EXPECT_EQ(V(table, s1, "untagged.delta.value_bytes"), 7u);

  // No traffic since: cumulatives hold, every delta reads 0.
  Sample s2;
  s2.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s2, &table, totals);
  EXPECT_EQ(V(table, s2, "tenant0.dev.ops"), 3u);
  EXPECT_EQ(V(table, s2, "tenant0.delta.dev.ops"), 0u);
  EXPECT_EQ(V(table, s2, "untagged.delta.dev.ops"), 0u);
  EXPECT_EQ(V(table, s2, "untagged.delta.value_bytes"), 0u);
}

TEST(AttributionPlaneTest, HeatSharesComputeBeforeDecay) {
  AttributionConfig cfg;
  cfg.enabled = true;
  cfg.heat_fanout = 4;              // Bucket i covers [i, i+1) * 2^62.
  cfg.heat_decay_keep_permille = 500;  // Half-life of one interval.
  AttributionPlane plane(cfg);
  stats::MetricsRegistry reg;
  plane.Bind({&reg}, {"t0"});

  const std::uint64_t bucket3_hash = 0xC000000000000000ull;  // 3 * 2^62.
  for (int i = 0; i < 8; ++i) plane.TouchKey(bucket3_hash);
  plane.TouchKey(0);
  plane.TouchKey(0);

  SeriesTable table;
  AttributionPlane::FleetTotals totals;
  Sample s1;
  s1.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s1, &table, totals);
  // Shares are computed on the PRE-decay weights (8 of 10 in bucket 3),
  // then every bucket keeps 500 permille.
  EXPECT_EQ(V(table, s1, "heat.touches"), 10u);
  EXPECT_EQ(V(table, s1, "heat.weight"), 10u);
  EXPECT_EQ(V(table, s1, "heat.max_share_permille"), 800u);
  EXPECT_EQ(V(table, s1, "heat.hot_range"), 3u);
  EXPECT_EQ(plane.heat()[3], 4u);
  EXPECT_EQ(plane.heat()[0], 1u);

  // No touches: the trailing-window gauge decays toward zero but the share
  // stays pinned on the same hot range until it fully evaporates.
  Sample s2;
  s2.interval_ns = sim::kMillisecond;
  plane.OnFleetSample(&s2, &table, totals);
  EXPECT_EQ(V(table, s2, "heat.touches"), 10u);  // Lifetime, no decay.
  EXPECT_EQ(V(table, s2, "heat.weight"), 5u);
  EXPECT_EQ(V(table, s2, "heat.max_share_permille"), 800u);
  EXPECT_EQ(plane.heat()[3], 2u);
  EXPECT_EQ(plane.heat()[0], 0u);
}

TEST(AttributionRulesTest, CannedRuleShapes) {
  const WatchdogRule fast = TenantBurnRateFastRule(1);
  EXPECT_EQ(fast.name, "slo_burn_fast_t1");
  EXPECT_EQ(fast.series, "tenant1.slo.burn_fast_milli");
  EXPECT_EQ(fast.cmp, WatchdogRule::Cmp::kAtLeast);
  EXPECT_EQ(fast.threshold, 4000u);  // Default: 4x the allowed burn rate.
  EXPECT_EQ(fast.tenant, 2u);        // Event stamp = tenant index + 1.

  const WatchdogRule slow = TenantBurnRateSlowRule(0);
  EXPECT_EQ(slow.name, "slo_burn_slow_t0");
  EXPECT_EQ(slow.series, "tenant0.slo.burn_slow_milli");
  EXPECT_EQ(slow.threshold, 1000u);  // Default: spending faster than accrual.
  EXPECT_EQ(slow.for_intervals, 4u);
  EXPECT_EQ(slow.tenant, 1u);

  const WatchdogRule hot = HotRangeRule(300, 2);
  EXPECT_EQ(hot.name, "hot_key_range");
  EXPECT_EQ(hot.series, "heat.max_share_permille");
  EXPECT_EQ(hot.threshold, 300u);
  EXPECT_EQ(hot.tenant, 0u);  // Key-space heat is not tenant-attributed.
}

// --- Cluster level -----------------------------------------------------------

KvSsdOptions ShardOptions() {
  KvSsdOptions o;
  o.geometry.channels = 2;
  o.geometry.ways = 2;
  o.geometry.blocks_per_die = 256;
  o.geometry.pages_per_block = 32;
  o.buffer.num_entries = 32;
  o.buffer.dlt_entries = 32;
  o.lsm.memtable_limit_bytes = 16 * 1024;
  return o;
}

ClusterConfig AttrCluster(std::uint32_t shards) {
  ClusterConfig c;
  c.num_shards = shards;
  c.shard = ShardOptions();
  c.tenants = {TenantConfig{"frontend", 0, 0, 2000},
               TenantConfig{"batch", 1, 0, 2000}};
  c.fleet.enabled = true;
  c.fleet.sample_interval_ns = 20 * sim::kMicrosecond;
  c.attribution.enabled = true;
  return c;
}

Bytes ValueFor(std::uint64_t i, std::size_t size = 64) {
  Bytes v(size, 0x5A);
  for (int b = 0; b < 8; ++b) {
    v[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(i >> (8 * b));
  }
  return v;
}

TEST(AttributionClusterTest, OpenRequiresFleetTelemetryAndMatchingSlos) {
  ClusterConfig no_fleet = AttrCluster(2);
  no_fleet.fleet.enabled = false;
  const auto r1 = KvCluster::Open(no_fleet);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("requires fleet telemetry"),
            std::string::npos);

  ClusterConfig extra_slo = AttrCluster(2);
  extra_slo.attribution.slo.resize(3);  // Only two tenants configured.
  const auto r2 = KvCluster::Open(extra_slo);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("more entries than tenants"),
            std::string::npos);
}

TEST(AttributionClusterTest, ChargesReconcileExactlyAndTelescope) {
  auto fleet = KvCluster::Open(AttrCluster(3)).value();

  // Untagged preload: harness-driven direct shard traffic the router never
  // sees — must land in the residual, not a tenant ledger.
  for (std::uint64_t i = 0; i < 24; ++i) {
    const std::string key = "bg" + std::to_string(i);
    ASSERT_TRUE(fleet->shard(fleet->ShardOf(key))
                    .Put(key, ByteSpan(ValueFor(i, 96)))
                    .ok());
  }
  fleet->SyncClockToShards();

  // Tenant traffic through the facades: serial ops only, so the ledger op
  // counts are exactly the issued counts.
  KvStore& frontend = fleet->Tenant(0);
  KvStore& batch = fleet->Tenant(1);
  std::uint64_t frontend_ops = 0, batch_ops = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        frontend.Put("f" + std::to_string(i), ByteSpan(ValueFor(i, 128))).ok());
    ++frontend_ops;
  }
  Bytes out;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(frontend.GetInto("f" + std::to_string(i), &out).ok());
    ++frontend_ops;
  }
  EXPECT_TRUE(frontend.GetInto("missing-key", &out).IsNotFound());
  ++frontend_ops;  // kNotFound is still a routed, charged op.
  for (std::uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        batch.Put("b" + std::to_string(i), ByteSpan(ValueFor(i, 256))).ok());
    ++batch_ops;
  }
  ASSERT_TRUE(fleet->Flush().ok());  // Background: flushes join the residual.
  fleet->fleet().Finalize();

  const AttributionPlane& plane = fleet->attribution();
  EXPECT_EQ(plane.tenant_charges(0).ops, frontend_ops);
  EXPECT_EQ(plane.tenant_charges(1).ops, batch_ops);
  EXPECT_GT(plane.tenant_charges(0).dev_ops, 0u);
  EXPECT_GT(plane.untagged().dev_ops, 0u);  // Preload + flush are residual.
  EXPECT_GT(plane.heat_touches(), 0u);

  // Exact reconciliation, every interval, all four charge dimensions:
  // tenant deltas + untagged delta == the fleet delta.
  const FleetAggregator& agg = fleet->fleet();
  ASSERT_GE(agg.samples().size(), 3u);
  struct Dim {
    const char* fleet_delta;
    const char* tenant_suffix;
    const char* untagged_delta;
  };
  const Dim dims[] = {
      {"delta.ops", ".delta.dev.ops", "untagged.delta.dev.ops"},
      {"delta.value_bytes", ".delta.value_bytes",
       "untagged.delta.value_bytes"},
      {"delta.pcie.h2d_bytes", ".delta.pcie.h2d_bytes",
       "untagged.delta.pcie.h2d_bytes"},
      {"delta.nand.pages_programmed", ".delta.nand.pages_programmed",
       "untagged.delta.nand.pages_programmed"},
  };
  for (const Sample& s : agg.samples()) {
    for (const Dim& d : dims) {
      std::uint64_t attributed = FleetValue(agg, s, d.untagged_delta);
      for (std::size_t t = 0; t < plane.num_tenants(); ++t) {
        attributed += FleetValue(
            agg, s, "tenant" + std::to_string(t) + d.tenant_suffix);
      }
      EXPECT_EQ(attributed, FleetValue(agg, s, d.fleet_delta))
          << d.fleet_delta << " seq " << s.seq;
    }
  }

  // And the ledgers telescope to the summed final GetStats() counters.
  const KvSsdStats stats = fleet->GetStats();
  EXPECT_EQ(plane.tenant_charges(0).dev_ops + plane.tenant_charges(1).dev_ops +
                plane.untagged().dev_ops,
            stats.commands_submitted);
  EXPECT_EQ(plane.tenant_charges(0).value_bytes +
                plane.tenant_charges(1).value_bytes +
                plane.untagged().value_bytes,
            stats.value_bytes_written);
  EXPECT_EQ(plane.tenant_charges(0).pcie_h2d_bytes +
                plane.tenant_charges(1).pcie_h2d_bytes +
                plane.untagged().pcie_h2d_bytes,
            stats.pcie_h2d_bytes);
  EXPECT_EQ(plane.tenant_charges(0).nand_pages +
                plane.tenant_charges(1).nand_pages +
                plane.untagged().nand_pages,
            stats.nand_pages_programmed);
}

TEST(AttributionClusterTest, BurnAlertFiresWithTenantStampedEvent) {
  ClusterConfig cc = AttrCluster(1);
  // Tenant 1 gets 2 admission credits and a refill window longer than the
  // run: everything past the first two ops sheds with kBusy.
  cc.tenants[1].credits_per_window = 2;
  cc.qos_refill_window_ns = 10 * sim::kMillisecond;
  cc.fleet.rules = {TenantBurnRateFastRule(1, 1000, 1, 1)};
  auto fleet = KvCluster::Open(cc).value();

  KvStore& batch = fleet->Tenant(1);
  std::uint64_t sheds = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const Status st = batch.Put("s" + std::to_string(i), ByteSpan(ValueFor(i)));
    if (st.IsBusy()) {
      ++sheds;
    } else {
      ASSERT_TRUE(st.ok());
    }
  }
  ASSERT_TRUE(fleet->Flush().ok());
  fleet->fleet().Finalize();

  EXPECT_GT(sheds, 0u);
  EXPECT_EQ(fleet->attribution().tenant_charges(1).shed_ops, sheds);
  EXPECT_GE(fleet->attribution().slo_state(1).burn_fast_milli, 1000u);

  // The burn-rate rule fires through the fleet watchdog and surfaces in the
  // aggregated snapshot's alerts.
  bool found = false;
  for (const auto& alert : fleet->Inspect().alerts) {
    if (alert.rule == "slo_burn_fast_t1") {
      found = true;
      EXPECT_GE(alert.fired, 1u);
    }
  }
  EXPECT_TRUE(found);

  // The kAlert event in the merged timeline carries the rule name and the
  // tenant stamp (index 1 -> stamp 2), so pages are attributable.
  const std::string jsonl = fleet->fleet().ToJsonl();
  const std::size_t pos = jsonl.find("\"rule\":\"slo_burn_fast_t1\"");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = jsonl.find('\n', pos);
  const std::string line =
      jsonl.substr(jsonl.rfind('\n', pos) + 1, eol - jsonl.rfind('\n', pos) - 1);
  EXPECT_NE(line.find("\"tenant\":2"), std::string::npos) << line;
}

// Drives identical traffic against a cluster with attribution on/off and
// returns the outcome fingerprint that must not move: virtual time plus the
// summed device counters.
struct RunFingerprint {
  sim::Nanoseconds now = 0;
  KvSsdStats stats;
  std::string slo_jsonl;
  std::string prometheus;
  std::string timeline;
};

RunFingerprint RunBlend(bool attribution_enabled) {
  ClusterConfig cc = AttrCluster(2);
  cc.attribution.enabled = attribution_enabled;
  cc.attribution.slo = {SloConfig{100 * sim::kMicrosecond, 990, 2, 4},
                        SloConfig{}};
  auto fleet = KvCluster::Open(cc).value();
  KvStore& frontend = fleet->Tenant(0);
  KvStore& batch = fleet->Tenant(1);
  Bytes out;
  for (std::uint64_t i = 0; i < 80; ++i) {
    EXPECT_TRUE(
        frontend.Put("f" + std::to_string(i), ByteSpan(ValueFor(i, 128))).ok());
    if (i % 2 == 0) {
      EXPECT_TRUE(
          batch.Put("b" + std::to_string(i), ByteSpan(ValueFor(i, 512))).ok());
    }
    if (i % 5 == 0) {
      EXPECT_TRUE(frontend.GetInto("f" + std::to_string(i), &out).ok());
    }
  }
  EXPECT_TRUE(fleet->Flush().ok());
  fleet->fleet().Finalize();
  RunFingerprint fp;
  fp.now = fleet->Now();
  fp.stats = fleet->GetStats();
  fp.slo_jsonl = fleet->attribution().SloJsonl();
  fp.prometheus = fleet->fleet().ToPrometheusText();
  fp.timeline = fleet->fleet().ToJsonl();
  return fp;
}

TEST(AttributionClusterTest, DisabledAttributionIsObservationNeutral) {
  const RunFingerprint on = RunBlend(true);
  const RunFingerprint off = RunBlend(false);
  EXPECT_EQ(on.now, off.now);
  EXPECT_EQ(on.stats.commands_submitted, off.stats.commands_submitted);
  EXPECT_EQ(on.stats.value_bytes_written, off.stats.value_bytes_written);
  EXPECT_EQ(on.stats.pcie_h2d_bytes, off.stats.pcie_h2d_bytes);
  EXPECT_EQ(on.stats.nand_pages_programmed, off.stats.nand_pages_programmed);
  // Disabled attribution exports nothing (the HTTP route answers 404).
  EXPECT_TRUE(off.slo_jsonl.empty());
  EXPECT_FALSE(on.slo_jsonl.empty());
  EXPECT_EQ(off.prometheus.find("bandslim_tenant_"), std::string::npos);
}

TEST(AttributionClusterTest, ExportsAreByteIdenticalAndTenantLabeled) {
  const RunFingerprint a = RunBlend(true);
  const RunFingerprint b = RunBlend(true);
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.slo_jsonl, b.slo_jsonl);
  // Families are labeled with the configured tenant NAMES, and the SLO
  // document carries the budget key the CI schema check requires.
  EXPECT_NE(a.prometheus.find("bandslim_tenant_ops_total{tenant=\"frontend\"}"),
            std::string::npos);
  EXPECT_NE(a.prometheus.find("bandslim_tenant_ops_total{tenant=\"batch\"}"),
            std::string::npos);
  EXPECT_NE(a.prometheus.find("bandslim_keyspace_heat"), std::string::npos);
  EXPECT_NE(a.slo_jsonl.find("\"budget_spent_permille\":"), std::string::npos);
  EXPECT_NE(a.timeline.find("\"tenant0.slo.burn_fast_milli\":"),
            std::string::npos);
}

TEST(AttributionClusterTest, TraceCsvStampsTenantColumn) {
  ClusterConfig cc = AttrCluster(1);
  cc.shard.trace.enabled = true;
  auto fleet = KvCluster::Open(cc).value();
  ASSERT_TRUE(fleet->Put("d0", ByteSpan(ValueFor(0))).ok());  // Default = t0.
  ASSERT_TRUE(fleet->Tenant(1).Put("t1", ByteSpan(ValueFor(1))).ok());

  const std::string csv = trace::ToBreakdownCsv(fleet->shard(0).tracer());
  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find(",shard,client_op,tenant"), std::string::npos);
  std::set<std::string> tenant_cols;
  while (std::getline(lines, line)) {
    tenant_cols.insert(line.substr(line.rfind(',') + 1));
  }
  // Both tenants' ops landed in the same shard trace, distinguishable by
  // the stamp column (rendered as the cluster tenant index).
  EXPECT_TRUE(tenant_cols.count("0"));
  EXPECT_TRUE(tenant_cols.count("1"));
}

}  // namespace
}  // namespace bandslim::telemetry::attribution
