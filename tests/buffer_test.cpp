#include <gtest/gtest.h>

#include <map>

#include "buffer/dma_log_table.h"
#include "buffer/page_buffer.h"
#include "workload/value_gen.h"

namespace bandslim::buffer {
namespace {

TEST(DmaLogTableTest, FifoCircularQueue) {
  DmaLogTable dlt(3);
  EXPECT_TRUE(dlt.Empty());
  EXPECT_TRUE(dlt.Push(4096, 100));
  EXPECT_TRUE(dlt.Push(8192, 200));
  EXPECT_TRUE(dlt.Push(12288, 300));
  EXPECT_TRUE(dlt.Full());
  EXPECT_FALSE(dlt.Push(16384, 400));
  EXPECT_EQ(dlt.Oldest()->dest_addr, 4096u);
  dlt.ConsumeOldest();
  EXPECT_EQ(dlt.Oldest()->dest_addr, 8192u);
  EXPECT_TRUE(dlt.Push(16384, 400));  // Wraps around.
  dlt.ConsumeOldest();
  dlt.ConsumeOldest();
  EXPECT_EQ(dlt.Oldest()->dest_addr, 16384u);
  EXPECT_EQ(dlt.Oldest()->end(), 16784u);
}

TEST(DmaLogTableTest, CompactEncodingRoundTrip) {
  // Section 3.3.3: (logical page number, memory-page offset) instead of a
  // full byte address — destinations are always 4 KiB aligned.
  for (std::uint64_t lpn : {0ull, 1ull, 12345ull}) {
    for (std::uint64_t slot = 0; slot < kMemPagesPerNandPage; ++slot) {
      const std::uint64_t addr = lpn * kNandPageSize + slot * kMemPageSize;
      EXPECT_EQ(DmaLogTable::DecodeCompact(DmaLogTable::EncodeCompact(addr)),
                addr);
    }
  }
}

// ---------------------------------------------------------------------------

struct FlushCapture {
  struct Page {
    Bytes data;
    std::uint32_t used;
  };
  std::map<std::uint64_t, Page> pages;

  FlushFn Fn() {
    return [this](std::uint64_t lpn, ByteSpan page, std::uint32_t used) {
      EXPECT_FALSE(pages.contains(lpn)) << "double flush of lpn " << lpn;
      pages[lpn] = Page{Bytes(page.begin(), page.end()), used};
      return Status::Ok();
    };
  }
};

class PolicyTest : public ::testing::Test {
 protected:
  std::unique_ptr<NandPageBuffer> MakeBuffer(PackingPolicy policy,
                                             std::size_t entries = 64,
                                             std::size_t dlt = 8) {
    BufferConfig config;
    config.policy = policy;
    config.num_entries = entries;
    config.dlt_entries = dlt;
    return std::make_unique<NandPageBuffer>(config, &clock_, &cost_, &metrics_,
                                            capture_.Fn());
  }

  std::uint64_t Pack(NandPageBuffer& buf, std::size_t size, std::uint64_t tag) {
    Bytes v = workload::MakeValue(size, 99, tag);
    auto r = buf.PackPiggybacked(ByteSpan(v));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  // Simulates a landed DMA value of `size` bytes (the page-unit payload is
  // written through DmaPageSlice like the engine does).
  std::uint64_t Dma(NandPageBuffer& buf, std::size_t size, std::uint64_t tag) {
    const std::uint64_t prp_bytes = RoundUpPow2(size, kMemPageSize);
    auto res = buf.ReserveDma(prp_bytes, size);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    Bytes v = workload::MakeValue(RoundUpPow2(size, kMemPageSize), 99, tag);
    for (std::uint64_t off = 0; off < prp_bytes; off += kMemPageSize) {
      auto slice = buf.DmaPageSlice(res.value(), off);
      std::copy_n(v.begin() + static_cast<std::ptrdiff_t>(off), kMemPageSize,
                  slice.begin());
    }
    auto addr = buf.CommitDma(res.value());
    EXPECT_TRUE(addr.ok()) << addr.status().ToString();
    return addr.value();
  }

  void ExpectResident(NandPageBuffer& buf, std::uint64_t addr, std::size_t size,
                      std::uint64_t tag) {
    Bytes expected = workload::MakeValue(size, 99, tag);
    if (size > expected.size()) expected.resize(size);
    Bytes back(size);
    ASSERT_TRUE(buf.ReadRange(addr, MutByteSpan(back)).ok());
    EXPECT_TRUE(std::equal(back.begin(), back.end(), expected.begin()));
  }

  sim::VirtualClock clock_;
  sim::CostModel cost_;
  stats::MetricsRegistry metrics_;
  FlushCapture capture_;
};

TEST_F(PolicyTest, BlockPacksAtPageSlots) {
  auto buf = MakeBuffer(PackingPolicy::kBlock);
  EXPECT_EQ(Pack(*buf, 32, 1), 0u);
  EXPECT_EQ(buf->wp(), kMemPageSize);  // A 32 B value consumed a 4 KiB slot.
  EXPECT_EQ(Pack(*buf, 32, 2), kMemPageSize);
  EXPECT_EQ(Pack(*buf, 5000, 3), 2 * kMemPageSize);  // 2 slots for 5000 B.
  EXPECT_EQ(buf->wp(), 4 * kMemPageSize);
  // WP crossed the 16 KiB entry boundary: one NAND page flushed, carrying
  // only 32+32+5000 useful bytes.
  ASSERT_TRUE(capture_.pages.contains(0));
  EXPECT_EQ(capture_.pages[0].used, 32u + 32u + 5000u);
  EXPECT_EQ(buf->wasted_bytes(), kNandPageSize - 5064u);
}

TEST_F(PolicyTest, BlockDmaConsumesPageMultiples) {
  auto buf = MakeBuffer(PackingPolicy::kBlock);
  EXPECT_EQ(Dma(*buf, 2048, 1), 0u);
  EXPECT_EQ(buf->wp(), kMemPageSize);
  EXPECT_EQ(Dma(*buf, 4100, 2), kMemPageSize);
  EXPECT_EQ(buf->wp(), 3 * kMemPageSize);
}

TEST_F(PolicyTest, AllPacksDensely) {
  auto buf = MakeBuffer(PackingPolicy::kAll);
  EXPECT_EQ(Pack(*buf, 32, 1), 0u);
  EXPECT_EQ(Pack(*buf, 100, 2), 32u);
  EXPECT_EQ(buf->wp(), 132u);
  // DMA lands at the next page boundary, then is copied back to the WP.
  const std::uint64_t before_memcpy = buf->memcpy_bytes();
  EXPECT_EQ(Dma(*buf, 2048, 3), 132u);
  EXPECT_EQ(buf->wp(), 132u + 2048u);
  EXPECT_EQ(buf->memcpy_bytes() - before_memcpy, 2048u);
  ExpectResident(*buf, 132, 2048, 3);
}

TEST_F(PolicyTest, AllSkipsCopyWhenAligned) {
  auto buf = MakeBuffer(PackingPolicy::kAll);
  // WP is at 0 (page aligned): DMA lands in place, no copy (Section 3.3.1).
  const std::uint64_t before = buf->memcpy_bytes();
  EXPECT_EQ(Dma(*buf, 2048, 1), 0u);
  EXPECT_EQ(buf->memcpy_bytes(), before);
  EXPECT_EQ(buf->wp(), 2048u);
}

TEST_F(PolicyTest, SelectiveLeavesGapAndMovesWp) {
  auto buf = MakeBuffer(PackingPolicy::kSelective);
  Pack(*buf, 32, 1);   // A
  Pack(*buf, 100, 2);  // B
  const std::uint64_t before_memcpy = buf->memcpy_bytes();
  const std::uint64_t c = Dma(*buf, 2048, 3);  // C: page-aligned, no copy.
  EXPECT_EQ(c, kMemPageSize);
  EXPECT_EQ(buf->memcpy_bytes(), before_memcpy);  // No memcpy for DMA value.
  EXPECT_EQ(buf->wp(), kMemPageSize + 2048);      // WP moves past C.
  // D packs right after C (Figure 7a).
  EXPECT_EQ(Pack(*buf, 64, 4), kMemPageSize + 2048);
}

TEST_F(PolicyTest, BackfillKeepsWpAndBackfills) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill);
  Pack(*buf, 32, 1);   // A
  Pack(*buf, 100, 2);  // B
  const std::uint64_t c = Dma(*buf, 2048, 3);  // C
  EXPECT_EQ(c, kMemPageSize);
  EXPECT_EQ(buf->wp(), 132u);  // WP did NOT move (Figure 7b).
  EXPECT_EQ(buf->dlt().size(), 1u);
  // D backfills the gap before C.
  EXPECT_EQ(Pack(*buf, 64, 4), 132u);
  EXPECT_EQ(buf->wp(), 196u);
}

TEST_F(PolicyTest, BackfillLeapsOverExtentWhenValueNoLongerFits) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill);
  Pack(*buf, 32, 1);
  const std::uint64_t c = Dma(*buf, 2048, 2);  // Extent [4096, 6144).
  EXPECT_EQ(c, kMemPageSize);
  // Fill the gap up to 4000 bytes.
  EXPECT_EQ(Pack(*buf, 3968, 3), 32u);
  EXPECT_EQ(buf->wp(), 4000u);
  // The next 200 B value would cross the extent start: WP leaps to 6144.
  EXPECT_EQ(Pack(*buf, 200, 4), 6144u);
  EXPECT_TRUE(buf->dlt().Empty());  // Extent consumed by the leap.
  EXPECT_EQ(buf->wp(), 6344u);
}

TEST_F(PolicyTest, BackfillExactFitDoesNotLeap) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill);
  Pack(*buf, 32, 1);
  Dma(*buf, 2048, 2);  // Extent at [4096, 6144).
  // 4064 B ends exactly at the extent start: fits, no leap.
  EXPECT_EQ(Pack(*buf, 4064, 3), 32u);
  EXPECT_EQ(buf->wp(), 4096u);
  EXPECT_EQ(buf->dlt().size(), 1u);
}

TEST_F(PolicyTest, BackfillSecondDmaStacksAfterFirst) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill);
  Pack(*buf, 32, 1);
  const std::uint64_t c1 = Dma(*buf, 2048, 2);
  const std::uint64_t c2 = Dma(*buf, 2048, 3);
  EXPECT_EQ(c1, kMemPageSize);
  EXPECT_EQ(c2, 2 * kMemPageSize);  // Next aligned slot after extent 1.
  EXPECT_EQ(buf->dlt().size(), 2u);
  EXPECT_EQ(buf->wp(), 32u);
}

TEST_F(PolicyTest, BackfillDltOverflowEvictsOldest) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill, 64, /*dlt=*/2);
  Pack(*buf, 32, 1);
  Dma(*buf, 2048, 2);  // Extent A.
  Dma(*buf, 2048, 3);  // Extent B.
  EXPECT_TRUE(buf->dlt().Full());
  Dma(*buf, 2048, 4);  // Extent C forces eviction of A.
  EXPECT_EQ(buf->dlt_forced_evictions(), 1u);
  // WP abandoned the gap before A and sits at A's end.
  EXPECT_EQ(buf->wp(), kMemPageSize + 2048);
}

TEST_F(PolicyTest, HybridTrailingBytesExtendExtent) {
  auto buf = MakeBuffer(PackingPolicy::kSelective);
  // A hybrid value: 4096 B by DMA + 32 trailing bytes.
  auto res = buf->ReserveDma(kMemPageSize, kMemPageSize + 32);
  ASSERT_TRUE(res.ok());
  Bytes head = workload::MakeValue(kMemPageSize, 99, 7);
  auto slice = buf->DmaPageSlice(res.value(), 0);
  std::copy(head.begin(), head.end(), slice.begin());
  Bytes tail = workload::MakeValue(32, 99, 8);
  ASSERT_TRUE(buf->AppendTrailing(res.value(), kMemPageSize, ByteSpan(tail)).ok());
  auto addr = buf->CommitDma(res.value());
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(buf->wp(), addr.value() + kMemPageSize + 32);
  Bytes back(32);
  ASSERT_TRUE(buf->ReadRange(addr.value() + kMemPageSize, MutByteSpan(back)).ok());
  EXPECT_EQ(back, tail);
}

TEST_F(PolicyTest, TrailingBeyondExtentRejected) {
  auto buf = MakeBuffer(PackingPolicy::kSelective);
  auto res = buf->ReserveDma(kMemPageSize, kMemPageSize + 16);
  ASSERT_TRUE(res.ok());
  Bytes tail(32);
  EXPECT_FALSE(
      buf->AppendTrailing(res.value(), kMemPageSize, ByteSpan(tail)).ok());
}

TEST_F(PolicyTest, FlushHappensWhenWpPassesEntry) {
  auto buf = MakeBuffer(PackingPolicy::kAll);
  Pack(*buf, kNandPageSize - 10, 1);
  EXPECT_TRUE(capture_.pages.empty());
  Pack(*buf, 20, 2);  // Crosses the 16 KiB boundary.
  ASSERT_TRUE(capture_.pages.contains(0));
  EXPECT_EQ(capture_.pages[0].used, kNandPageSize);  // Byte-dense page.
  EXPECT_EQ(buf->wasted_bytes(), 0u);
}

TEST_F(PolicyTest, WindowPressureForceFlushesWithWaste) {
  // Two-entry window, backfill: extents stack ahead while the WP lags; the
  // third entry's allocation force-flushes the first with its gap unfilled.
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill, /*entries=*/2);
  Pack(*buf, 32, 1);
  // Seven 2 KiB DMA extents stack at slots 1..7, filling the 2-entry
  // (32 KiB) window while the WP lags at byte 32.
  for (std::uint64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(Dma(*buf, 2048, 2 + i), (i + 1) * kMemPageSize);
  }
  EXPECT_TRUE(capture_.pages.empty());
  // The eighth extent needs a third entry: entry 0 is force-flushed with its
  // gaps unfilled, and its extents leave the DLT.
  EXPECT_EQ(Dma(*buf, 2048, 9), 8 * kMemPageSize);
  ASSERT_TRUE(capture_.pages.contains(0));
  EXPECT_EQ(capture_.pages[0].used, 32u + 3 * 2048u);
  EXPECT_GT(buf->wasted_bytes(), 0u);
  // WP advanced past the flushed entry.
  EXPECT_GE(buf->wp(), kNandPageSize);
}

TEST_F(PolicyTest, FlushAllDrainsEverything) {
  auto buf = MakeBuffer(PackingPolicy::kSelectiveBackfill);
  Pack(*buf, 32, 1);
  Dma(*buf, 2048, 2);
  Pack(*buf, 64, 3);
  ASSERT_TRUE(buf->FlushAll().ok());
  EXPECT_FALSE(capture_.pages.empty());
  EXPECT_TRUE(buf->dlt().Empty());
  // Window restarts at a page boundary.
  EXPECT_EQ(buf->wp() % kNandPageSize, 0u);
  EXPECT_EQ(buf->wp(), buf->window_base_addr());
  // All three values' bytes are accounted in flushed pages.
  std::uint64_t used = 0;
  for (auto& [lpn, page] : capture_.pages) used += page.used;
  EXPECT_EQ(used, 32u + 2048u + 64u);
}

TEST_F(PolicyTest, ReadRangeReturnsPackedBytes) {
  auto buf = MakeBuffer(PackingPolicy::kAll);
  const std::uint64_t a = Pack(*buf, 300, 1);
  const std::uint64_t b = Pack(*buf, 5000, 2);  // Crosses an entry boundary.
  ExpectResident(*buf, a, 300, 1);
  ExpectResident(*buf, b, 5000, 2);
  Bytes sink(4);
  EXPECT_FALSE(buf->ReadRange(1 << 30, MutByteSpan(sink)).ok());
}

TEST_F(PolicyTest, MemcpyChargesVirtualTime) {
  auto buf = MakeBuffer(PackingPolicy::kAll);
  const auto before = clock_.Now();
  Pack(*buf, 1000, 1);
  EXPECT_EQ(clock_.Now() - before, cost_.MemcpyCost(1000));
}

TEST_F(PolicyTest, OversizedValueRejected) {
  auto buf = MakeBuffer(PackingPolicy::kAll, /*entries=*/4);
  Bytes huge(4 * kNandPageSize);
  EXPECT_FALSE(buf->PackPiggybacked(ByteSpan(huge)).ok());
  EXPECT_FALSE(buf->ReserveDma(4 * kNandPageSize, 4 * kNandPageSize).ok());
}

TEST_F(PolicyTest, PolicyNames) {
  EXPECT_STREQ(PolicyName(PackingPolicy::kBlock), "Block");
  EXPECT_STREQ(PolicyName(PackingPolicy::kAll), "All");
  EXPECT_STREQ(PolicyName(PackingPolicy::kSelective), "Select");
  EXPECT_STREQ(PolicyName(PackingPolicy::kSelectiveBackfill), "Backfill");
}

// Property sweep: under every policy, any mix of piggyback/DMA arrivals
// keeps values byte-exact while resident, and flushed pages never overlap.
class PackingPropertyTest
    : public PolicyTest,
      public ::testing::WithParamInterface<PackingPolicy> {};

TEST_P(PackingPropertyTest, RandomMixRemainsReadable) {
  auto buf = MakeBuffer(GetParam(), /*entries=*/32, /*dlt=*/16);
  Xoshiro256 rng(42);
  struct Placed {
    std::uint64_t addr;
    std::size_t size;
    std::uint64_t tag;
  };
  std::vector<Placed> placed;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const bool dma = rng.NextDouble() < 0.2;
    const std::size_t size =
        dma ? 1024 + rng.Below(8192) : 1 + rng.Below(512);
    const std::uint64_t addr =
        dma ? Dma(*buf, size, i) : Pack(*buf, size, i);
    placed.push_back({addr, size, i});
  }
  ASSERT_TRUE(buf->FlushAll().ok());

  // Every value must be byte-exact in the union of flushed pages.
  auto read_byte = [&](std::uint64_t a) -> std::uint8_t {
    const std::uint64_t lpn = a / kNandPageSize;
    EXPECT_TRUE(capture_.pages.contains(lpn)) << "addr " << a;
    return capture_.pages[lpn].data[a % kNandPageSize];
  };
  for (const Placed& p : placed) {
    Bytes expected = workload::MakeValue(p.size, 99, p.tag);
    for (std::size_t b = 0; b < p.size; ++b) {
      ASSERT_EQ(read_byte(p.addr + b), expected[b])
          << "value " << p.tag << " byte " << b << " policy "
          << PolicyName(GetParam());
    }
  }
}

TEST_P(PackingPropertyTest, UsedBytesNeverExceedPageSize) {
  auto buf = MakeBuffer(GetParam(), 16, 8);
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    if (rng.NextDouble() < 0.3) {
      Dma(*buf, 512 + rng.Below(6000), static_cast<std::uint64_t>(i));
    } else {
      Pack(*buf, 1 + rng.Below(300), static_cast<std::uint64_t>(i));
    }
  }
  ASSERT_TRUE(buf->FlushAll().ok());
  for (auto& [lpn, page] : capture_.pages) {
    EXPECT_LE(page.used, kNandPageSize) << "lpn " << lpn;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PackingPropertyTest,
                         ::testing::Values(PackingPolicy::kBlock,
                                           PackingPolicy::kAll,
                                           PackingPolicy::kSelective,
                                           PackingPolicy::kSelectiveBackfill),
                         [](const auto& info) {
                           return PolicyName(info.param);
                         });

}  // namespace
}  // namespace bandslim::buffer
