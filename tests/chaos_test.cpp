// Full-stack chaos test: random PUT/GET/DELETE interleaved with vLog GC,
// checkpoints and power cycles, validated against a reference model that
// tracks the durability contract (un-checkpointed mutations die with the
// power cycle).
#include <gtest/gtest.h>

#include <map>

#include "core/kvssd.h"
#include "workload/value_gen.h"

namespace bandslim {
namespace {

struct ChaosParams {
  driver::TransferMethod method;
  buffer::PackingPolicy policy;
  std::uint64_t seed;
};

std::string ChaosName(const ::testing::TestParamInfo<ChaosParams>& info) {
  return std::string(driver::MethodName(info.param.method)) + "_" +
         buffer::PolicyName(info.param.policy) + "_s" +
         std::to_string(info.param.seed);
}

class ChaosTest : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ChaosTest, SurvivesEverythingAtOnce) {
  KvSsdOptions o;
  o.geometry.channels = 2;
  o.geometry.ways = 2;
  o.geometry.blocks_per_die = 256;
  o.geometry.pages_per_block = 32;
  o.buffer.num_entries = 16;
  o.buffer.dlt_entries = 16;
  o.lsm.memtable_limit_bytes = 8 * 1024;
  o.controller.gc_segment_pages = 8;
  o.driver.method = GetParam().method;
  o.buffer.policy = GetParam().policy;
  auto ssd = KvSsd::Open(o).value();

  std::map<std::string, Bytes> model;       // Current visible state.
  std::map<std::string, Bytes> checkpoint;  // State at the last Flush().
  bool checkpointed = false;
  Xoshiro256 rng(GetParam().seed);

  for (int i = 0; i < 1500; ++i) {
    const std::string key = "c" + std::to_string(rng.Below(120));
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      Bytes v = workload::MakeValue(1 + rng.Below(3500), GetParam().seed,
                                    static_cast<std::uint64_t>(i));
      ASSERT_TRUE(ssd->Put(key, ByteSpan(v)).ok()) << "op " << i;
      model[key] = std::move(v);
    } else if (dice < 0.70) {
      ASSERT_TRUE(ssd->Delete(key).ok()) << "op " << i;
      model.erase(key);
    } else {
      auto got = ssd->Get(key);
      auto want = model.find(key);
      if (want == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << "op " << i;
      } else {
        ASSERT_TRUE(got.ok()) << "op " << i << ": " << got.status().ToString();
        EXPECT_EQ(got.value(), want->second) << "op " << i;
      }
    }
    if (i % 311 == 310) {
      ASSERT_TRUE(ssd->Flush().ok()) << "op " << i;
      checkpoint = model;
      checkpointed = true;
    }
    if (i % 401 == 400) {
      ASSERT_TRUE(ssd->CollectVlogGarbage().ok()) << "op " << i;
    }
    if (checkpointed && i % 733 == 732) {
      ASSERT_TRUE(ssd->PowerCycle().ok()) << "op " << i;
      model = checkpoint;  // Everything since the checkpoint is gone.
    }
  }

  // Final audit.
  ASSERT_TRUE(ssd->Flush().ok());
  for (const auto& [key, expected] : model) {
    auto got = ssd->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), expected) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChaosTest,
    ::testing::Values(
        ChaosParams{driver::TransferMethod::kAdaptive,
                    buffer::PackingPolicy::kSelectiveBackfill, 1},
        ChaosParams{driver::TransferMethod::kAdaptive,
                    buffer::PackingPolicy::kSelectiveBackfill, 2},
        ChaosParams{driver::TransferMethod::kPiggyback,
                    buffer::PackingPolicy::kAll, 3},
        ChaosParams{driver::TransferMethod::kPrp,
                    buffer::PackingPolicy::kBlock, 4},
        ChaosParams{driver::TransferMethod::kHybrid,
                    buffer::PackingPolicy::kSelective, 5}),
    ChaosName);

}  // namespace
}  // namespace bandslim
