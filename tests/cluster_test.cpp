// KvCluster tests: consistent-hash ring determinism and balance, the
// 1-shard == bare-device bit-identity guarantee, the GetBatch request-order
// contract under adversarial cross-shard interleavings, double-run
// determinism of a full 4-shard campaign (byte-compared telemetry and
// actuation exports per shard), tenant QoS credit shedding/refill, and
// aggregation invariants of the StoreSnapshot.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/kv_cluster.h"
#include "common/random.h"
#include "control/control_loop.h"
#include "core/kvssd.h"
#include "telemetry/export.h"
#include "workload/runner.h"

namespace bandslim::cluster {
namespace {

KvSsdOptions TestOptions() {
  KvSsdOptions o;
  o.geometry.channels = 2;
  o.geometry.ways = 2;
  o.geometry.blocks_per_die = 256;
  o.geometry.pages_per_block = 32;
  o.buffer.num_entries = 32;
  o.buffer.dlt_entries = 32;
  o.lsm.memtable_limit_bytes = 16 * 1024;
  return o;
}

ClusterConfig TestCluster(std::uint32_t shards) {
  ClusterConfig c;
  c.num_shards = shards;
  c.shard = TestOptions();
  return c;
}

Bytes ValueFor(std::uint64_t i, std::size_t size = 64) {
  Bytes v(size, 0x5A);
  for (int b = 0; b < 8; ++b) {
    v[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(i >> (8 * b));
  }
  return v;
}

// Field-by-field stats equality with readable failure output.
void ExpectStatsEq(const KvSsdStats& a, const KvSsdStats& b) {
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.commands_submitted, b.commands_submitted);
  EXPECT_EQ(a.pcie_h2d_bytes, b.pcie_h2d_bytes);
  EXPECT_EQ(a.pcie_d2h_bytes, b.pcie_d2h_bytes);
  EXPECT_EQ(a.mmio_bytes, b.mmio_bytes);
  EXPECT_EQ(a.dma_h2d_bytes, b.dma_h2d_bytes);
  EXPECT_EQ(a.nand_pages_programmed, b.nand_pages_programmed);
  EXPECT_EQ(a.nand_pages_read, b.nand_pages_read);
  EXPECT_EQ(a.nand_blocks_erased, b.nand_blocks_erased);
  EXPECT_EQ(a.vlog_pages_flushed, b.vlog_pages_flushed);
  EXPECT_EQ(a.lsm_pages_programmed, b.lsm_pages_programmed);
  EXPECT_EQ(a.device_memcpy_bytes, b.device_memcpy_bytes);
  EXPECT_EQ(a.buffer_wasted_bytes, b.buffer_wasted_bytes);
  EXPECT_EQ(a.values_written, b.values_written);
  EXPECT_EQ(a.value_bytes_written, b.value_bytes_written);
  EXPECT_EQ(a.lsm_compactions, b.lsm_compactions);
  EXPECT_EQ(a.memtable_flushes, b.memtable_flushes);
}

// --- Hash ring ---------------------------------------------------------------

TEST(HashRingTest, DeterministicAndReasonablyBalanced) {
  const HashRing ring(4, 64, 0xB5CCA11);
  const HashRing twin(4, 64, 0xB5CCA11);
  std::map<std::uint32_t, std::uint64_t> share;
  const std::uint64_t kKeys = 20000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::uint32_t owner = ring.OwnerOf(key);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(owner, twin.OwnerOf(key));  // Pure function of the config.
    ++share[owner];
  }
  // 64 virtual nodes keep every shard within a loose band of fair share
  // (25% +- 15 points). A plain mod-4 ring without virtual nodes would
  // pass too — the point is no shard is starved or doubled.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(share[s], kKeys / 10) << "shard " << s;
    EXPECT_LT(share[s], kKeys * 45 / 100) << "shard " << s;
  }
  // A different seed induces a different placement of the same key set.
  const HashRing reseeded(4, 64, 0xD15EA5E);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    moved += ring.OwnerOf(key) != reseeded.OwnerOf(key) ? 1 : 0;
  }
  EXPECT_GT(moved, 100u);
}

TEST(HashRingTest, ArcWeightsPredictKeyDistribution) {
  // Chi-square-style goodness of fit: keys-per-shard across seeds and
  // virtual-node counts must match the EXPECTED shares implied by the
  // ring's arc weights (OwnershipWeightsPermille) — the baseline the fleet
  // ring-skew watchdog compares routed counts against. 7.81 is the 95th
  // percentile of chi-square with 3 degrees of freedom; the deterministic
  // configurations below all sit under 3.
  const std::uint64_t kKeys = 20000;
  for (const std::uint32_t vnodes : {16u, 64u, 256u}) {
    for (const std::uint64_t seed :
         {0xB5CCA11ull, 0xD15EA5Eull, 0x5EEDull}) {
      const HashRing ring(4, vnodes, seed);
      const std::vector<std::uint64_t> weights =
          ring.OwnershipWeightsPermille(4);
      std::uint64_t total_weight = 0;
      for (const std::uint64_t w : weights) total_weight += w;
      // Truncation loses at most num_shards - 1 permille.
      EXPECT_GE(total_weight, 997u);
      EXPECT_LE(total_weight, 1000u);

      std::vector<std::uint64_t> share(4, 0);
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        ++share[ring.OwnerOf("key-" + std::to_string(i))];
      }
      double chi2_arcs = 0.0, chi2_fair = 0.0;
      for (int s = 0; s < 4; ++s) {
        const double expected =
            static_cast<double>(weights[static_cast<std::size_t>(s)]) *
            static_cast<double>(kKeys) / 1000.0;
        const double observed =
            static_cast<double>(share[static_cast<std::size_t>(s)]);
        chi2_arcs += (observed - expected) * (observed - expected) / expected;
        const double fair = static_cast<double>(kKeys) / 4.0;
        chi2_fair += (observed - fair) * (observed - fair) / fair;
      }
      EXPECT_LT(chi2_arcs, 7.81)
          << "vnodes " << vnodes << " seed " << seed;
      // At low virtual-node counts the ring is legitimately lumpy: the arc
      // weights explain the placement where a naive fair-share model does
      // not — that asymmetry is exactly what makes them the right watchdog
      // baseline.
      if (vnodes == 16) {
        EXPECT_GT(chi2_fair, 100.0) << "seed " << seed;
      }
    }
  }
}

TEST(HashRingTest, SeededPlacementIsPinned) {
  // Regression pin: the default cluster ring (4 shards, 64 virtual nodes,
  // seed 0xB5CCA11) places these keys exactly here. Any change to the hash,
  // the mixer, or the point construction shows up as a diff in this table —
  // and would silently reshuffle every persisted placement.
  const HashRing ring(4, 64, 0xB5CCA11);
  const std::pair<const char*, std::uint32_t> pinned[] = {
      {"key-0", 0u}, {"key-1", 1u}, {"key-2", 0u}, {"key-3", 0u},
      {"key-4", 0u}, {"key-5", 0u}, {"key-6", 0u}, {"key-7", 1u},
  };
  for (const auto& [key, owner] : pinned) {
    EXPECT_EQ(ring.OwnerOf(key), owner) << key;
  }
  // The arc weights of the default ring are pinned too (they feed the
  // ring-skew rule's expected shares).
  EXPECT_EQ(ring.OwnershipWeightsPermille(4),
            (std::vector<std::uint64_t>{282u, 261u, 259u, 195u}));
  // A single-shard ring owns the whole keyspace by definition.
  const HashRing solo(1, 64, 0xB5CCA11);
  EXPECT_EQ(solo.OwnershipWeightsPermille(1),
            (std::vector<std::uint64_t>{1000u}));
}

// --- 1-shard bit-identity ----------------------------------------------------

TEST(KvClusterTest, SingleShardMatchesBareDeviceBitIdentically) {
  auto bare = KvSsd::Open(TestOptions()).value();
  auto fleet = KvCluster::Open(TestCluster(1)).value();
  ASSERT_EQ(fleet->num_shards(), 1u);

  // The same mixed sequence — serial ops, batches, deletes, flush — against
  // both stores through the SAME KvStore surface.
  const auto drive = [](KvStore& store) {
    for (std::uint64_t i = 0; i < 60; ++i) {
      ASSERT_TRUE(
          store.Put("key" + std::to_string(i), ByteSpan(ValueFor(i))).ok());
    }
    Bytes got;
    for (std::uint64_t i = 0; i < 60; i += 3) {
      ASSERT_TRUE(store.GetInto("key" + std::to_string(i), &got).ok());
    }
    std::vector<KvStore::KvPair> batch;
    for (std::uint64_t i = 100; i < 116; ++i) {
      batch.push_back({"key" + std::to_string(i), ValueFor(i, 200)});
    }
    ASSERT_TRUE(store.PutBatch(batch).ok());
    std::vector<std::string> keys;
    for (std::uint64_t i = 95; i < 120; ++i) {
      keys.push_back("key" + std::to_string(i));
    }
    auto bulk = store.GetBatch(keys);
    ASSERT_TRUE(bulk.ok());
    auto removed = store.DeleteBatch(keys);
    ASSERT_TRUE(removed.ok());
    EXPECT_EQ(removed.value(), 16u);  // Only key100..115 exist in the range.
    ASSERT_TRUE(store.Flush().ok());
  };
  drive(*bare);
  drive(*fleet);

  // Bit-identical virtual time and device counters.
  EXPECT_EQ(bare->Now(), fleet->Now());
  ExpectStatsEq(bare->GetStats(), fleet->GetStats());
  // The full registry dump matches too — same commands, same costs.
  EXPECT_EQ(bare->InspectDevice().counters, fleet->shard(0).InspectDevice().counters);
}

// --- GetBatch ordering contract ---------------------------------------------

TEST(KvClusterTest, GetBatchPreservesRequestOrderAcrossShards) {
  auto fleet = KvCluster::Open(TestCluster(4)).value();
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        fleet->Put("key" + std::to_string(i), ByteSpan(ValueFor(i))).ok());
  }
  // Present and absent keys deliberately interleaved, with duplicates, in
  // an order that hops shards on nearly every step.
  std::vector<std::string> keys;
  for (std::uint64_t i = 64; i-- > 0;) {
    keys.push_back("key" + std::to_string(i));
    if (i % 5 == 0) keys.push_back("missing" + std::to_string(i));
    if (i % 7 == 0) keys.push_back("key" + std::to_string(i));  // Duplicate.
  }
  auto bulk = fleet->GetBatch(keys);
  ASSERT_TRUE(bulk.ok());
  ASSERT_EQ(bulk.value().size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto& r = bulk.value()[i];
    if (keys[i].rfind("missing", 0) == 0) {
      EXPECT_FALSE(r.found) << "slot " << i;
    } else {
      ASSERT_TRUE(r.found) << "slot " << i << " key " << keys[i];
      const std::uint64_t idx = std::stoull(keys[i].substr(3));
      EXPECT_EQ(r.value, ValueFor(idx)) << "slot " << i;
    }
  }
  const StoreSnapshot snap = fleet->Inspect();
  EXPECT_GE(snap.cross_shard_batches, 1u);
  EXPECT_GE(snap.batch_subops, 2u);
}

TEST(KvClusterTest, BatchOrderingPropertyUnderAdversarialInterleavings) {
  auto fleet = KvCluster::Open(TestCluster(4)).value();
  const std::uint64_t kSpace = 128;
  for (std::uint64_t i = 0; i < kSpace; ++i) {
    ASSERT_TRUE(fleet->Put("p" + std::to_string(i), ByteSpan(ValueFor(i))).ok());
  }
  Xoshiro256 rng(0xC0FFEE);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + rng() % 32;
    std::vector<std::string> keys;
    std::vector<bool> expect_found;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t idx = rng() % (2 * kSpace);
      // Upper half of the draw space = absent keys.
      keys.push_back((idx < kSpace ? "p" : "absent") + std::to_string(idx));
      expect_found.push_back(idx < kSpace);
    }
    auto bulk = fleet->GetBatch(keys);
    ASSERT_TRUE(bulk.ok());
    ASSERT_EQ(bulk.value().size(), n) << "round " << round;
    for (std::size_t j = 0; j < n; ++j) {
      const auto& r = bulk.value()[j];
      ASSERT_EQ(r.found, expect_found[j])
          << "round " << round << " slot " << j << " key " << keys[j];
      if (r.found) {
        const std::uint64_t idx = std::stoull(keys[j].substr(1));
        ASSERT_EQ(r.value, ValueFor(idx)) << "round " << round << " slot " << j;
      }
    }
  }
}

// --- Double-run determinism of a full campaign ------------------------------

struct CampaignExports {
  std::vector<std::string> prom, jsonl, actuations;
  sim::Nanoseconds finish = 0;
};

CampaignExports RunFourShardCampaign() {
  ClusterConfig cc = TestCluster(4);
  cc.shard.telemetry.enabled = true;
  cc.shard.telemetry.sample_interval_ns = 20 * sim::kMicrosecond;
  cc.shard.control.enabled = true;
  auto fleet = KvCluster::Open(cc).value();

  workload::MixedWorkloadSpec spec;
  spec.ops = 600;
  spec.num_keys = 256;
  spec.value_size = 200;
  spec.seed = 7;
  EXPECT_TRUE(workload::PreloadMixedKeys(*fleet, spec).ok());
  // Serial mixed phase (router timeline), then batch traffic, then the
  // parallel per-shard phase, then a flush barrier.
  (void)workload::RunMixedWorkload(*fleet, spec, "serial");
  std::vector<KvStore::KvPair> batch;
  for (std::uint64_t i = 0; i < 64; ++i) {
    batch.push_back({workload::MixedKeyName(i), ValueFor(i, 300)});
  }
  EXPECT_TRUE(fleet->PutBatch(batch).ok());
  spec.zipfian = true;
  (void)workload::RunClusterMixedWorkload(*fleet, spec, "parallel");
  EXPECT_TRUE(fleet->Flush().ok());

  CampaignExports out;
  out.finish = fleet->Now();
  for (std::uint32_t s = 0; s < fleet->num_shards(); ++s) {
    KvSsd& dev = fleet->shard(s);
    dev.Hooks().sampler->Finalize();
    out.prom.push_back(telemetry::ToPrometheusText(dev.telemetry()));
    out.jsonl.push_back(telemetry::ToJsonl(dev.telemetry()));
    out.actuations.push_back(dev.control() ? dev.control()->ActuationsCsv()
                                           : "");
  }
  return out;
}

TEST(KvClusterTest, FourShardCampaignIsByteIdenticalAcrossRuns) {
  const CampaignExports a = RunFourShardCampaign();
  const CampaignExports b = RunFourShardCampaign();
  EXPECT_EQ(a.finish, b.finish);
  ASSERT_EQ(a.prom.size(), b.prom.size());
  for (std::size_t s = 0; s < a.prom.size(); ++s) {
    EXPECT_EQ(a.prom[s], b.prom[s]) << "shard " << s << " telemetry text";
    EXPECT_EQ(a.jsonl[s], b.jsonl[s]) << "shard " << s << " timeline";
    EXPECT_EQ(a.actuations[s], b.actuations[s]) << "shard " << s << " log";
  }
}

// --- Tenant QoS --------------------------------------------------------------

TEST(KvClusterTest, TenantCreditsShedWithBusyAndRefillOnWindow) {
  ClusterConfig cc = TestCluster(2);
  cc.qos_refill_window_ns = 200 * sim::kMicrosecond;
  TenantConfig metered;
  metered.name = "metered";
  metered.queue_id = 1;
  metered.credits_per_window = 2;
  metered.busy_backoff_ns = 5 * sim::kMicrosecond;
  cc.tenants = {TenantConfig{}, metered};
  auto fleet = KvCluster::Open(cc).value();
  ASSERT_EQ(fleet->num_tenants(), 2u);

  // Keys all owned by shard 0, so the per-shard credit pool is hit by
  // every op.
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; keys.size() < 8; ++i) {
    const std::string key = "qos" + std::to_string(i);
    if (fleet->ShardOf(key) == 0) keys.push_back(key);
  }

  KvStore& metered_view = fleet->Tenant(1);
  std::uint64_t ok = 0, busy = 0;
  for (const std::string& key : keys) {
    const Status st = metered_view.Put(key, ByteSpan(ValueFor(1)));
    if (st.IsBusy()) {
      ++busy;
    } else {
      ASSERT_TRUE(st.ok());
      ++ok;
    }
  }
  EXPECT_EQ(ok, 2u) << "two credits per window";
  EXPECT_EQ(busy, keys.size() - 2);

  // The default tenant is unmetered: it proceeds while tenant 1 is shed.
  ASSERT_TRUE(fleet->Put(keys[0], ByteSpan(ValueFor(2))).ok());

  // Busy backoffs burn virtual time; retry until the refill window grid is
  // crossed and credits return. This must terminate deterministically.
  std::uint64_t retries = 0;
  Status st = metered_view.Put(keys[3], ByteSpan(ValueFor(3)));
  while (st.IsBusy()) {
    ASSERT_LT(++retries, 200u) << "credits never refilled";
    st = metered_view.Put(keys[3], ByteSpan(ValueFor(3)));
  }
  ASSERT_TRUE(st.ok());
  EXPECT_GE(fleet->qos_refill_windows(), 1u);
  EXPECT_GE(fleet->Inspect().qos_refill_windows, 1u);
}

// --- Aggregation and runner equivalence --------------------------------------

TEST(KvClusterTest, InspectAggregatesShardSnapshots) {
  auto fleet = KvCluster::Open(TestCluster(4)).value();
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        fleet->Put("agg" + std::to_string(i), ByteSpan(ValueFor(i))).ok());
  }
  ASSERT_TRUE(fleet->Flush().ok());
  const StoreSnapshot snap = fleet->Inspect();
  ASSERT_EQ(snap.num_shards(), 4u);
  KvSsdStats summed;
  summed.elapsed_ns = fleet->Now();
  for (const DeviceSnapshot& dev : snap.shards) {
    AccumulateStats(&summed, dev.stats);
  }
  ExpectStatsEq(snap.stats, summed);
  EXPECT_EQ(summed.values_written, 200u);
  // Every shard took a nonzero slice of a 200-key uniform load.
  for (const DeviceSnapshot& dev : snap.shards) {
    EXPECT_GT(dev.stats.values_written, 0u);
  }
}

TEST(KvClusterTest, ParallelRunnerMatchesSerialOnOneShard) {
  workload::MixedWorkloadSpec spec;
  spec.ops = 400;
  spec.num_keys = 128;
  spec.value_size = 96;
  spec.seed = 11;

  auto serial = KvCluster::Open(TestCluster(1)).value();
  ASSERT_TRUE(workload::PreloadMixedKeys(*serial, spec).ok());
  const workload::RunResult a =
      workload::RunMixedWorkload(*serial, spec, "serial");

  auto parallel = KvCluster::Open(TestCluster(1)).value();
  ASSERT_TRUE(workload::PreloadMixedKeys(*parallel, spec).ok());
  const workload::RunResult b =
      workload::RunClusterMixedWorkload(*parallel, spec, "parallel");

  // One stream == the serial loop: identical virtual time and counters.
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(serial->Now(), parallel->Now());
  ExpectStatsEq(a.delta, b.delta);
  EXPECT_EQ(a.latency_ns.count(), b.latency_ns.count());
  EXPECT_EQ(a.latency_ns.Mean(), b.latency_ns.Mean());
}

TEST(KvClusterTest, FourShardParallelMixedBeatsOneShard) {
  workload::MixedWorkloadSpec spec;
  spec.ops = 800;
  spec.num_keys = 512;
  spec.value_size = 128;
  spec.seed = 13;

  auto one = KvCluster::Open(TestCluster(1)).value();
  ASSERT_TRUE(workload::PreloadMixedKeys(*one, spec).ok());
  const auto r1 = workload::RunClusterMixedWorkload(*one, spec, "n1");

  auto four = KvCluster::Open(TestCluster(4)).value();
  ASSERT_TRUE(workload::PreloadMixedKeys(*four, spec).ok());
  const auto r4 = workload::RunClusterMixedWorkload(*four, spec, "n4");

  ASSERT_GT(r1.elapsed_ns, 0);
  ASSERT_GT(r4.elapsed_ns, 0);
  const double speedup = static_cast<double>(r1.elapsed_ns) /
                         static_cast<double>(r4.elapsed_ns);
  EXPECT_GE(speedup, 3.0) << "4-shard mixed speedup " << speedup;
}

TEST(KvClusterTest, OpenRejectsInvalidConfigs) {
  ClusterConfig zero = TestCluster(0);
  EXPECT_FALSE(KvCluster::Open(zero).ok());
  ClusterConfig dup = TestCluster(2);
  dup.tenants = {TenantConfig{}, TenantConfig{}};  // Same queue id twice.
  EXPECT_FALSE(KvCluster::Open(dup).ok());
}

}  // namespace
}  // namespace bandslim::cluster
