#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace bandslim {
namespace {

TEST(TypesTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(0, 4096), 0u);
  EXPECT_EQ(RoundUpPow2(1, 4096), 4096u);
  EXPECT_EQ(RoundUpPow2(4096, 4096), 4096u);
  EXPECT_EQ(RoundUpPow2(4097, 4096), 8192u);
}

TEST(TypesTest, RoundDownPow2) {
  EXPECT_EQ(RoundDownPow2(0, 4096), 0u);
  EXPECT_EQ(RoundDownPow2(4095, 4096), 0u);
  EXPECT_EQ(RoundDownPow2(4096, 4096), 4096u);
  EXPECT_EQ(RoundDownPow2(8191, 4096), 4096u);
}

TEST(TypesTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4096), 0u);
  EXPECT_EQ(CeilDiv(1, 4096), 1u);
  EXPECT_EQ(CeilDiv(4096, 4096), 1u);
  EXPECT_EQ(CeilDiv(4097, 4096), 2u);
  EXPECT_EQ(CeilDiv(16384, 4096), 4u);
}

TEST(TypesTest, IsAlignedPow2) {
  EXPECT_TRUE(IsAlignedPow2(0, 4096));
  EXPECT_TRUE(IsAlignedPow2(8192, 4096));
  EXPECT_FALSE(IsAlignedPow2(100, 4096));
}

TEST(TypesTest, PaperConstants) {
  // The paper's sizes: 4 KiB memory pages, 16 KiB NAND pages, 64 B commands,
  // 35 B + 56 B piggyback capacities (Section 3.2).
  EXPECT_EQ(kMemPageSize, 4096u);
  EXPECT_EQ(kNandPageSize, 16384u);
  EXPECT_EQ(kNvmeCommandSize, 64u);
  EXPECT_EQ(kWriteCmdPiggybackCapacity, 35u);
  EXPECT_EQ(kTransferCmdPiggybackCapacity, 56u);
  EXPECT_EQ(kMemPagesPerNandPage, 4u);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status nf = Status::NotFound();
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_NE(Status::Corruption("bad").ToString().find("Corruption"),
            std::string::npos);
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  Result<int> e(Status::IoError("io"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(RandomTest, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RandomTest, SeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  EXPECT_NE(a(), b());
}

TEST(RandomTest, NextDoubleInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BelowBound) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
  EXPECT_EQ(rng.Below(0), 0u);
}

}  // namespace
}  // namespace bandslim
