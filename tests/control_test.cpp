// Closed-loop control tests: watchdog deassert hysteresis (deadband, streak
// reset, retry-storm re-fire fix), the null-policy zero-overhead guarantee
// (byte-identical exports), deterministic actuation logs across double runs,
// threshold-knob breach/recover hysteresis, crash-mid-actuation recovery
// (settings re-derived from the policy base, never persisted stale), and
// kBusy admission-shed propagation through the host API.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/control_loop.h"
#include "core/kvssd.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "workload/value_gen.h"

namespace bandslim::control {
namespace {

// --- Watchdog deassert hysteresis (unit, hand-driven clock) -----------------

class WatchdogHysteresisTest : public ::testing::Test {
 protected:
  telemetry::Sampler MakeSampler(telemetry::TelemetryConfig cfg) {
    cfg.enabled = true;
    cfg.sample_interval_ns = sim::kMillisecond;
    telemetry::Sampler sampler(&clock_, cfg);
    telemetry::Sampler::Sources src;
    src.metrics = &metrics_;
    sampler.Bind(src);
    return sampler;
  }

  sim::VirtualClock clock_;
  stats::MetricsRegistry metrics_;
};

TEST_F(WatchdogHysteresisTest, DeadbandClearRequiresConsecutiveQuiet) {
  // Fire above 2000 ops/interval; clear only after 2 consecutive samples at
  // or below 1500 — values inside the 1500..2000 deadband neither re-fire
  // nor make recovery progress.
  telemetry::WatchdogRule rule{"ops_surge", "delta.ops",
                               telemetry::WatchdogRule::Cmp::kAbove, 2000, 1};
  rule.clear_threshold = 1500;
  rule.clear_for_intervals = 2;
  telemetry::TelemetryConfig cfg;
  cfg.rules = {rule};
  telemetry::Sampler sampler = MakeSampler(cfg);
  stats::Counter* ops = metrics_.GetCounter("nvme.commands_submitted");

  const auto step = [&](std::uint64_t add_ops) {
    ops->Add(add_ops);
    clock_.Advance(sim::kMillisecond);
    sampler.Poll();
  };
  const auto& state = [&]() -> const telemetry::AlertState& {
    return sampler.watchdog().states()[0];
  };

  step(2500);  // Above threshold: fires immediately (for_intervals = 1).
  EXPECT_EQ(state().fired, 1u);
  EXPECT_TRUE(state().active);

  step(1800);  // Deadband: stays active, no recovery progress.
  EXPECT_TRUE(state().active);
  EXPECT_EQ(state().recovering, 0u);

  step(1000);  // Below clear line: recovering = 1, still active.
  EXPECT_TRUE(state().active);
  EXPECT_EQ(state().recovering, 1u);

  step(1600);  // Back into the deadband: the quiet streak resets.
  EXPECT_TRUE(state().active);
  EXPECT_EQ(state().recovering, 0u);

  step(1200);  // Quiet again: recovering = 1.
  step(1100);  // Second consecutive quiet sample: CLEARS.
  EXPECT_FALSE(state().active);
  EXPECT_EQ(state().cleared, 1u);
  EXPECT_EQ(sampler.watchdog().total_cleared(), 1u);
  EXPECT_EQ(sampler.event_log().count(telemetry::EventType::kAlertCleared),
            1u);

  step(3000);  // Re-fires after a genuine clear.
  EXPECT_EQ(state().fired, 2u);
  EXPECT_TRUE(state().active);
}

TEST_F(WatchdogHysteresisTest, RetryStormHoldsThroughBurstGaps) {
  // The historical bug: with clear-on-first-break, a bursty drop storm
  // (retries, quiet, retries, quiet ...) re-fired the alert every burst.
  // With deassert hysteresis of 4 the alert stays active across the gaps
  // and fires once per storm, not once per burst.
  telemetry::TelemetryConfig cfg;
  cfg.rules = {telemetry::RetryStormRule(/*retries=*/1, /*n=*/1,
                                         /*clear_n=*/4)};
  telemetry::Sampler sampler = MakeSampler(cfg);
  metrics_.GetCounter("nvme.commands_submitted");
  stats::Counter* retries = metrics_.GetCounter("nvme.retries");

  const auto step = [&](std::uint64_t add_retries) {
    retries->Add(add_retries);
    clock_.Advance(sim::kMillisecond);
    sampler.Poll();
  };

  for (int burst = 0; burst < 5; ++burst) {
    step(3);  // Burst interval.
    step(0);  // Gap: quiet streak 1 of 4 — must NOT clear.
    step(0);  // Gap: quiet streak 2 of 4.
  }
  EXPECT_EQ(sampler.watchdog().states()[0].fired, 1u);
  EXPECT_TRUE(sampler.watchdog().states()[0].active);

  step(0);
  step(0);  // 4 consecutive quiet intervals since the last burst: clears.
  EXPECT_FALSE(sampler.watchdog().states()[0].active);
  EXPECT_EQ(sampler.watchdog().states()[0].cleared, 1u);

  step(2);  // The next storm is a fresh edge.
  EXPECT_EQ(sampler.watchdog().states()[0].fired, 2u);
}

// --- Full-device control tests ----------------------------------------------

KvSsdOptions ControlOptions() {
  KvSsdOptions o;
  o.telemetry.enabled = true;
  o.telemetry.sample_interval_ns = 20 * sim::kMicrosecond;
  return o;
}

void RunSmallWorkload(KvSsd& ssd, int ops) {
  for (int i = 0; i < ops; ++i) {
    const std::size_t size = (i % 3 == 0) ? 300 : 48;
    Bytes value = workload::MakeValue(size, 1, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(ssd.Put("key" + std::to_string(i), ByteSpan(value)).ok());
  }
  ASSERT_TRUE(ssd.Flush().ok());
}

struct Exports {
  std::string prom, jsonl;
};

Exports RunAndExport(const KvSsdOptions& o) {
  auto ssd = KvSsd::Open(o).value();
  RunSmallWorkload(*ssd, 200);
  ssd->Hooks().sampler->Finalize();
  return {telemetry::ToPrometheusText(ssd->telemetry()),
          telemetry::ToJsonl(ssd->telemetry())};
}

TEST(ControlDeviceTest, NullPolicyIsBitIdentical) {
  // Three flavors of "control off" must be indistinguishable, byte for byte:
  // no control at all, the master switch on with every knob off (controller
  // built and ticked), and knobs configured under a disabled master switch.
  const Exports off = RunAndExport(ControlOptions());

  KvSsdOptions null_policy = ControlOptions();
  null_policy.control.enabled = true;
  const Exports nul = RunAndExport(null_policy);

  KvSsdOptions disabled_master = ControlOptions();
  disabled_master.control.gc.enabled = true;
  disabled_master.control.flush.enabled = true;  // Master stays off.
  const Exports dis = RunAndExport(disabled_master);

  EXPECT_EQ(off.prom, nul.prom);
  EXPECT_EQ(off.jsonl, nul.jsonl);
  EXPECT_EQ(off.prom, dis.prom);
  EXPECT_EQ(off.jsonl, dis.jsonl);
}

TEST(ControlDeviceTest, NullPolicyBuildsNoController) {
  auto off = KvSsd::Open(ControlOptions()).value();
  EXPECT_EQ(off->control(), nullptr);

  KvSsdOptions on = ControlOptions();
  on.control.enabled = true;
  auto dev = KvSsd::Open(on).value();
  ASSERT_NE(dev->control(), nullptr);
  RunSmallWorkload(*dev, 50);
  EXPECT_EQ(dev->control()->actuation_count(), 0u);  // No knob, no actuation.
}

// A storm-shaped LSM (tiny memtable, hair-trigger L0) with the flush knob on
// actuates every few ticks — the workhorse config for determinism tests.
KvSsdOptions StormOptions() {
  KvSsdOptions o = ControlOptions();
  o.lsm.memtable_limit_bytes = 512;
  o.lsm.l0_compaction_trigger = 2;
  o.lsm.level_base_bytes = 1024;
  o.lsm.sstable_target_bytes = 128;
  o.lsm.max_levels = 3;
  o.control.enabled = true;
  o.control.flush.enabled = true;
  o.control.flush.l0_pace_runs = 1;
  o.control.gc.enabled = true;
  return o;
}

TEST(ControlDeviceTest, ActuationLogIsDeterministicAcrossRuns) {
  std::string csv[2];
  for (int pass = 0; pass < 2; ++pass) {
    auto ssd = KvSsd::Open(StormOptions()).value();
    RunSmallWorkload(*ssd, 300);
    ssd->Hooks().sampler->Finalize();
    ASSERT_NE(ssd->control(), nullptr);
    csv[pass] = ssd->control()->ActuationsCsv();
    EXPECT_GE(ssd->control()->actuation_count(), 1u);
    // Every actuation is mirrored into the event log as a kControl record.
    EXPECT_EQ(
        ssd->Hooks().sampler->event_log().count(telemetry::EventType::kControl),
        ssd->control()->actuation_count());
  }
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(ControlDeviceTest, ThresholdKnobRaisesAfterBreachStreak) {
  KvSsdOptions o = ControlOptions();
  o.control.enabled = true;
  o.control.thresholds.enabled = true;
  o.control.thresholds.taf_budget_milli = 1;  // Any traffic breaches.
  o.control.thresholds.breach_intervals = 3;
  o.control.thresholds.raised_threshold1 = 35;
  o.control.thresholds.raised_threshold2 = 16;
  auto ssd = KvSsd::Open(o).value();
  const std::uint32_t base1 = ssd->Hooks().driver->threshold1();

  RunSmallWorkload(*ssd, 200);
  ASSERT_NE(ssd->control(), nullptr);
  ASSERT_GE(ssd->control()->actuation_count(), 1u);
  const ActuationRecord& first = ssd->control()->actuations().front();
  EXPECT_EQ(first.rule, ControlRule::kRaiseThresholds);
  EXPECT_EQ(first.old_setting, base1);
  EXPECT_EQ(first.new_setting, 35u);
  // Breach hysteresis: the raise lands exactly on the 3rd breaching tick,
  // not the 1st — its stamp is the 3rd sample boundary.
  const auto& samples = ssd->Hooks().sampler->samples();
  ASSERT_GE(samples.size(), 3u);
  EXPECT_EQ(static_cast<std::uint64_t>(first.t_ns), samples[2].t_ns);
  EXPECT_TRUE(ssd->control()->thresholds_raised());
  EXPECT_EQ(ssd->Hooks().driver->threshold1(), 35u);
  EXPECT_EQ(ssd->Hooks().driver->threshold2(), 16u);
}

TEST(ControlDeviceTest, PowerCycleRederivesSettingsFromPolicyBase) {
  KvSsdOptions o = ControlOptions();
  o.control.enabled = true;
  o.control.thresholds.enabled = true;
  o.control.thresholds.taf_budget_milli = 1;
  o.control.thresholds.breach_intervals = 1;
  o.control.thresholds.raised_threshold1 = 35;
  auto ssd = KvSsd::Open(o).value();
  const std::uint32_t base1 = ssd->Hooks().driver->threshold1();
  const std::uint32_t base2 = ssd->Hooks().driver->threshold2();

  RunSmallWorkload(*ssd, 100);
  ASSERT_TRUE(ssd->control()->thresholds_raised());
  ASSERT_EQ(ssd->Hooks().driver->threshold1(), 35u);

  // Crash mid-actuation: the raised threshold is live device state, not a
  // persisted setting. Recovery must re-derive from the policy base — a
  // stale raise surviving the reboot would be a correctness bug.
  ASSERT_TRUE(ssd->PowerCycle().ok());
  EXPECT_FALSE(ssd->control()->thresholds_raised());
  EXPECT_EQ(ssd->Hooks().driver->threshold1(), base1);
  EXPECT_EQ(ssd->Hooks().driver->threshold2(), base2);
  // The restore itself is in the actuation log (audit trail of the reset).
  bool restored = false;
  for (const ActuationRecord& rec : ssd->control()->actuations()) {
    if (rec.rule == ControlRule::kRestoreThresholds) restored = true;
  }
  EXPECT_TRUE(restored);

  // The device keeps working, and the loop re-raises post-recovery if the
  // link is still over budget.
  for (int i = 0; i < 100; ++i) {
    Bytes value = workload::MakeValue(48, 2, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(
        ssd->Put("post" + std::to_string(i), ByteSpan(value)).ok());
  }
  EXPECT_TRUE(ssd->control()->thresholds_raised());
}

TEST(ControlDeviceTest, AdmissionShedReturnsBusyAndRecovers) {
  KvSsdOptions o = ControlOptions();
  // One sample per virtual second: credits are effectively never refilled
  // inside this test, so exhaustion is observable deterministically.
  o.telemetry.sample_interval_ns = sim::kSecond;
  o.control.enabled = true;
  o.control.admission.enabled = true;
  o.control.admission.credits_per_tick = 4;
  o.control.admission.busy_backoff_ns = 1000;
  auto ssd = KvSsd::Open(o).value();

  Bytes value = workload::MakeValue(48, 3, 1);
  bool saw_busy = false;
  for (int i = 0; i < 16 && !saw_busy; ++i) {
    const Status st = ssd->Put("b" + std::to_string(i), ByteSpan(value));
    if (st.IsBusy()) {
      saw_busy = true;
    } else {
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }
  ASSERT_TRUE(saw_busy);
  EXPECT_GE(ssd->Hooks().transport->busy_rejections(), 1u);

  // Every host entry point surfaces the shed as kBusy, not as data loss.
  EXPECT_TRUE(ssd->Get("b0").status().IsBusy());
  const std::vector<std::string> keys = {"b0", "b1"};
  EXPECT_TRUE(ssd->GetBatch(keys).status().IsBusy());
  EXPECT_TRUE(ssd->DeleteBatch(keys).status().IsBusy());

  // A credit refill (normally the controller's per-tick duty) restores
  // service; the shed dropped requests cleanly, never corrupted state.
  ssd->Hooks().transport->RefillQueueCredits();
  auto got = ssd->Get("b0");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), workload::MakeValue(48, 3, 1));
}

TEST(ControlDeviceTest, BusyMapsToVendorStatusCodeType) {
  // NVMe SCT 0x3 = path-related/host-side: the shed never reached the
  // device, and the driver must translate it to StatusCode::kBusy.
  nvme::CqEntry entry;
  entry.status = nvme::CqStatus::kBusy;
  EXPECT_EQ(entry.status_code_type(), 0x3);
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_EQ(Status::Busy().code(), StatusCode::kBusy);
}

}  // namespace
}  // namespace bandslim::control
